// Perpetual gossip: the setting the paper's §1 motivates.
//
// A fixed fleet of tokens performs never-ending random walks over a
// datacenter-style overlay; services publish updates ("rumors") at random
// vertices over time, and every update rides the same walks. This example
// releases a stream of updates, reports per-update delivery latency, and
// shows the latency histogram — demonstrating that the shared substrate
// serves a stream of rumors with stable, interference-free latency.
#include <cstdio>
#include <vector>

#include "core/multi_rumor.hpp"
#include "graph/generators.hpp"
#include "support/stats.hpp"

int main() {
  using namespace rumor;

  constexpr Vertex kNodes = 4096;
  constexpr std::size_t kUpdates = 48;
  constexpr Round kEvery = 3;  // a new update every 3 rounds

  Rng rng(1);
  const Graph overlay = gen::random_regular(kNodes, 16, rng);
  std::printf(
      "overlay: %u nodes, 16-regular; %zu updates released every %llu "
      "rounds,\ncarried by %u perpetual walkers\n\n",
      kNodes, kUpdates, static_cast<unsigned long long>(kEvery), kNodes);

  Rng source_rng(7);
  std::vector<RumorSpec> updates;
  for (std::size_t i = 0; i < kUpdates; ++i) {
    updates.push_back({static_cast<Vertex>(source_rng.below(kNodes)),
                       static_cast<Round>(kEvery * i)});
  }

  MultiRumorVisitExchange process(overlay, updates, /*seed=*/42);
  const MultiRumorResult result = process.run();
  if (!result.completed) {
    std::printf("dissemination did not complete before the cutoff\n");
    return 1;
  }

  std::vector<double> latencies;
  for (Round lat : result.latency) {
    latencies.push_back(static_cast<double>(lat));
  }
  const Summary s = Summary::of(latencies);
  std::printf("delivery latency (rounds from release to full coverage):\n");
  std::printf("  mean %.1f  sd %.1f  min %.0f  median %.1f  max %.0f\n\n",
              s.mean, s.stddev, s.min, s.median, s.max);

  Histogram h(s.min - 0.5, s.max + 0.5, 8);
  for (double lat : latencies) h.add(lat);
  std::printf("%s\n", h.render(40).c_str());

  // Show that late updates are served as fast as early ones.
  std::vector<double> early(latencies.begin(),
                            latencies.begin() + kUpdates / 2);
  std::vector<double> late(latencies.begin() + kUpdates / 2,
                           latencies.end());
  std::printf("early updates: mean %.1f rounds; late updates: mean %.1f "
              "rounds\n",
              Summary::of(early).mean, Summary::of(late).mean);
  std::printf(
      "\nThe walker fleet never resets, yet latency is flat across the\n"
      "stream: perpetual walks remain stationary, which is precisely the\n"
      "paper's justification for the stationary-start assumption.\n");
  return 0;
}

// Quickstart: build a graph, run all four protocols on it, print the
// broadcast times. This is the five-minute tour of the public API.
#include <cstdio>

#include "core/meet_exchange.hpp"
#include "core/push.hpp"
#include "core/push_pull.hpp"
#include "core/visit_exchange.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

int main() {
  using namespace rumor;

  // A 16-regular random graph on 4096 vertices: the regime of Theorem 1
  // (degree >= log2 n = 12), where push and visit-exchange should land
  // within a constant factor of each other.
  Rng graph_rng(7);
  const Graph g = gen::random_regular(4096, 16, graph_rng);
  std::printf("graph: n=%u, m=%zu, regular=%s, diameter>=%u\n",
              g.num_vertices(), g.num_edges(), g.is_regular() ? "yes" : "no",
              diameter_lower_bound(g, 4, /*seed=*/1));

  const Vertex source = 0;
  const std::uint64_t seed = 42;

  const RunResult push = run_push(g, source, seed);
  std::printf("push:           %llu rounds\n",
              static_cast<unsigned long long>(push.rounds));

  const RunResult ppull = run_push_pull(g, source, seed);
  std::printf("push-pull:      %llu rounds\n",
              static_cast<unsigned long long>(ppull.rounds));

  // Agent-based protocols: |A| = n agents started from the stationary
  // distribution (the paper's setting).
  const RunResult visitx = run_visit_exchange(g, source, seed);
  std::printf("visit-exchange: %llu rounds (all agents informed by %llu)\n",
              static_cast<unsigned long long>(visitx.rounds),
              static_cast<unsigned long long>(visitx.agent_rounds));

  const RunResult meetx = run_meet_exchange(g, source, seed);
  std::printf("meet-exchange:  %llu rounds (agents)\n",
              static_cast<unsigned long long>(meetx.rounds));

  return 0;
}

// Scenario API tour: parse declarative specs, run them through the
// simulator registry, and render the shared report — the programmatic face
// of what `rumor_run` does with a scenario file.
#include <cstdio>
#include <sstream>

#include "core/registry.hpp"
#include "experiments/scenario.hpp"

int main() {
  using namespace rumor;

  // Every simulator in the tree is reachable by name: the registry maps
  // spec heads to factories, defaults, and option parsers.
  std::printf("registered simulators:");
  for (const SimulatorEntry& entry : SimulatorRegistry::instance().all()) {
    std::printf(" %s", entry.name.c_str());
  }
  std::printf("\n\n");

  // A spec is one line of text; parse(name()) round-trips, so specs can be
  // generated and replayed losslessly.
  const char* lines[] = {
      "star(leaves=4096) push source=1 trials=10 label=push",
      "star(leaves=4096) push-pull source=1 trials=10 label=push-pull",
      "star(leaves=4096) visit-exchange source=1 trials=10 label=walks",
      "star(leaves=4096) frog(frogs=2) source=1 trials=10 label=frogs",
  };
  std::vector<ScenarioSpec> specs;
  for (const char* line : lines) {
    std::string error;
    auto spec = ScenarioSpec::parse(line, &error);
    if (!spec) {
      std::fprintf(stderr, "parse error: %s\n", error.c_str());
      return 1;
    }
    std::printf("canonical: %s\n", spec->name().c_str());
    specs.push_back(std::move(*spec));
  }

  // Trials fan out over the process thread pool with per-worker arenas;
  // samples depend only on (seed, trial index).
  std::string error;
  const auto run = run_scenarios(specs, &error);
  if (!run) {
    std::fprintf(stderr, "run error: %s\n", error.c_str());
    return 1;
  }
  const std::vector<ScenarioResult>& results = *run;
  std::printf("\n%s", scenario_table(results).c_str());

  // The star separation (paper Lemma 2): neighbor calling pays
  // Omega(n log n), walks pay O(log n).
  const double push_mean = results[0].set.summary().mean;
  const double walk_mean = results[2].set.summary().mean;
  std::printf("\npush/visit-exchange mean ratio on the star: %.0fx\n",
              push_mean / walk_mean);
  return 0;
}

// Run the four protocols on a user-supplied graph.
//
// Usage:
//   custom_graph <edge-list-file> [source] [trials]
//   custom_graph --demo            (writes a demo graph and analyzes it)
//
// Edge-list format: "n m" header line, then m lines "u v" (see graph/io.hpp).
// Prints structural properties, a protocol comparison, and a DOT rendering
// path for small graphs.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "core/meet_exchange.hpp"
#include "core/push.hpp"
#include "core/push_pull.hpp"
#include "core/visit_exchange.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace rumor;

int analyze(const Graph& g, Vertex source, int trials) {
  if (!is_connected(g)) {
    std::fprintf(stderr,
                 "error: graph is disconnected; broadcast cannot complete\n");
    return 1;
  }
  const auto deg = degree_stats(g);
  std::printf("graph: n=%u m=%zu degree[min=%u mean=%.1f max=%u]%s%s\n",
              g.num_vertices(), g.num_edges(), deg.min, deg.mean, deg.max,
              g.is_regular() ? " regular" : "",
              is_bipartite(g) ? " bipartite" : "");
  std::printf("source: %u, trials: %d\n\n", source, trials);
  if (is_bipartite(g)) {
    std::printf(
        "note: bipartite graph — meet-exchange runs with lazy walks (the\n"
        "paper's §3 convention), other protocols unaffected.\n\n");
  }

  TextTable table({"protocol", "mean", "min", "median", "max"});
  auto add = [&](const std::string& name, auto&& runner) {
    std::vector<double> samples;
    for (int seed = 0; seed < trials; ++seed) {
      const RunResult r = runner(g, source, std::uint64_t(seed));
      if (!r.completed) {
        std::fprintf(stderr, "warning: %s hit the round cutoff\n",
                     name.c_str());
      }
      samples.push_back(double(r.rounds));
    }
    const Summary s = Summary::of(samples);
    table.add_row({name, TextTable::num(s.mean, 1), TextTable::num(s.min, 0),
                   TextTable::num(s.median, 1), TextTable::num(s.max, 0)});
  };
  add("push", [](const Graph& g2, Vertex s, std::uint64_t seed) {
    return run_push(g2, s, seed);
  });
  add("push-pull", [](const Graph& g2, Vertex s, std::uint64_t seed) {
    return run_push_pull(g2, s, seed);
  });
  add("visit-exchange", [](const Graph& g2, Vertex s, std::uint64_t seed) {
    return run_visit_exchange(g2, s, seed);
  });
  add("meet-exchange", [](const Graph& g2, Vertex s, std::uint64_t seed) {
    return run_meet_exchange(g2, s, seed);
  });
  std::printf("%s\n", table.render_plain().c_str());

  if (g.num_vertices() <= 64) {
    const char* dot_path = "custom_graph.dot";
    std::ofstream dot(dot_path);
    export_dot(g, dot);
    std::printf("wrote %s (render with: dot -Tpng %s -o graph.png)\n",
                dot_path, dot_path);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rumor;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <edge-list-file> [source] [trials]\n"
                 "       %s --demo\n",
                 argv[0], argv[0]);
    return 2;
  }

  try {
    if (std::string(argv[1]) == "--demo") {
      const char* path = "demo_barbell.edges";
      save_edge_list_file(gen::barbell(12), path);
      std::printf("wrote demo graph to %s\n\n", path);
      return analyze(load_edge_list_file(path), 0, 20);
    }
    const Graph g = load_edge_list_file(argv[1]);
    const Vertex source =
        argc > 2 ? static_cast<Vertex>(std::strtoul(argv[2], nullptr, 10))
                 : 0;
    if (source >= g.num_vertices()) {
      std::fprintf(stderr, "error: source %u out of range (n=%u)\n", source,
                   g.num_vertices());
      return 2;
    }
    const int trials =
        argc > 3 ? static_cast<int>(std::strtol(argv[3], nullptr, 10)) : 20;
    if (trials < 1) {
      std::fprintf(stderr, "error: trials must be positive\n");
      return 2;
    }
    return analyze(g, source, trials);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// Bandwidth fairness, visualized.
//
// The paper attributes the agent protocols' wins to "locally fair use of
// bandwidth: all edges are used with the same frequency". This example
// traces per-edge utilization of push-pull and visit-exchange on the double
// star over a fixed window and prints utilization histograms plus the
// bridge-edge rate — the starving critical edge is plainly visible.
#include <cstdio>
#include <vector>

#include "core/push_pull.hpp"
#include "core/visit_exchange.hpp"
#include "graph/generators.hpp"
#include "support/stats.hpp"

namespace {

using namespace rumor;

constexpr Vertex kLeaves = 1024;
constexpr Round kWindow = 300;

EdgeId bridge_edge(const Graph& g) {
  for (std::uint32_t i = 0; i < g.degree(0); ++i) {
    if (g.neighbor(0, i) == 1) return g.edge_id(0, i);
  }
  return 0;
}

void show(const char* title, const Graph& g,
          const std::vector<std::uint64_t>& traffic) {
  std::printf("--- %s (per-edge crossings over %llu rounds) ---\n", title,
              static_cast<unsigned long long>(kWindow));
  Histogram h(0.0, 2.0 * kWindow, 8);
  for (std::uint64_t c : traffic) h.add(static_cast<double>(c));
  std::printf("%s", h.render(36).c_str());
  std::printf("bridge edge: %llu crossings (%.4f per round)\n\n",
              static_cast<unsigned long long>(traffic[bridge_edge(g)]),
              static_cast<double>(traffic[bridge_edge(g)]) / kWindow);
}

}  // namespace

int main() {
  using namespace rumor;

  const Graph g = gen::double_star(kLeaves);
  std::printf(
      "double star: 2 centers + 2x%u leaves; the center-center bridge is\n"
      "the only route between the halves.\n\n",
      kLeaves);

  {
    PushPullOptions options;
    options.trace.edge_traffic = true;
    options.max_rounds = kWindow;
    PushPullProcess process(g, 2, /*seed=*/1, options);
    for (Round t = 0; t < kWindow; ++t) process.step();
    const RunResult r = process.run();
    show("push-pull", g, r.edge_traffic);
  }
  {
    WalkOptions options;
    options.trace.edge_traffic = true;
    VisitExchangeProcess process(g, 2, /*seed=*/1, options);
    for (Round t = 0; t < kWindow; ++t) process.step();
    const RunResult r = process.run();
    show("visit-exchange", g, r.edge_traffic);
  }

  std::printf(
      "push-pull calls concentrate on leaf edges (every leaf calls its only\n"
      "edge each round) while the bridge starves at ~2/n crossings/round;\n"
      "the stationary random walks cross EVERY edge, including the bridge,\n"
      "at the same Theta(1) rate. That is Lemma 3 in one picture.\n");
  return 0;
}

// The Figure-1 tour: "call your neighbors or take a walk?"
//
// Runs all four protocols on each of the paper's five separating families
// and prints a comparison table — the empirical answer to the paper's title
// question: it depends on the topology.
#include <cstdio>
#include <vector>

#include "core/meet_exchange.hpp"
#include "core/push.hpp"
#include "core/push_pull.hpp"
#include "core/visit_exchange.hpp"
#include "graph/generators.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace {

using namespace rumor;

struct Scenario {
  std::string name;
  Graph graph;
  Vertex source;
  std::string winner;  // who the paper says wins
};

double mean_rounds(const Graph& g, Vertex source, int trials,
                   RunResult (*runner)(const Graph&, Vertex, std::uint64_t)) {
  std::vector<double> samples;
  for (int seed = 0; seed < trials; ++seed) {
    samples.push_back(static_cast<double>(runner(g, source, seed).rounds));
  }
  return Summary::of(samples).mean;
}

RunResult push_runner(const Graph& g, Vertex s, std::uint64_t seed) {
  return run_push(g, s, seed);
}
RunResult ppull_runner(const Graph& g, Vertex s, std::uint64_t seed) {
  return run_push_pull(g, s, seed);
}
RunResult visitx_runner(const Graph& g, Vertex s, std::uint64_t seed) {
  return run_visit_exchange(g, s, seed);
}
RunResult meetx_runner(const Graph& g, Vertex s, std::uint64_t seed) {
  return run_meet_exchange(g, s, seed);
}

}  // namespace

int main() {
  using namespace rumor;

  std::vector<Scenario> scenarios;
  scenarios.push_back(
      {"star (1a)", gen::star(4096), 1, "push-pull / agents"});
  scenarios.push_back(
      {"double star (1b)", gen::double_star(2048), 2, "agents"});
  scenarios.push_back({"heavy tree (1c)", gen::heavy_binary_tree(4095), 4094,
                       "push / meet-exchange"});
  scenarios.push_back(
      {"siamese trees (1d)", gen::siamese_heavy_tree(2047), 2046, "push"});
  scenarios.push_back({"cycle-stars-cliques (1e)",
                       gen::cycle_stars_cliques(12), 12 + 144,
                       "visit-exchange (vs meetx)"});

  constexpr int kTrials = 8;
  TextTable table({"graph", "n", "push", "push-pull", "visit-x", "meet-x",
                   "paper's winner"});
  for (const auto& sc : scenarios) {
    std::printf("running %s ...\n", sc.name.c_str());
    table.add_row({
        sc.name,
        std::to_string(sc.graph.num_vertices()),
        TextTable::num(mean_rounds(sc.graph, sc.source, kTrials, push_runner),
                       0),
        TextTable::num(
            mean_rounds(sc.graph, sc.source, kTrials, ppull_runner), 0),
        TextTable::num(
            mean_rounds(sc.graph, sc.source, kTrials, visitx_runner), 0),
        TextTable::num(
            mean_rounds(sc.graph, sc.source, kTrials, meetx_runner), 0),
        sc.winner,
    });
  }

  std::printf("\nmean broadcast time in rounds (%d trials each):\n\n%s\n",
              kTrials, table.render_plain().c_str());
  std::printf(
      "Reading: no protocol dominates. Walk-based protocols win where "
      "high-degree\nhubs starve randomized calls (1a/1b); calling wins where "
      "the stationary\ndistribution starves sparse cuts (1c/1d). On regular "
      "graphs push and\nvisit-exchange tie (Theorem 1).\n");
  return 0;
}

// The paper's Section 5 proof, executed.
//
// This example runs the coupled push/visit-exchange processes on a random
// regular graph and narrates the proof objects: the shared neighbor choices
// w_u(i), the C-counters, the reconstructed information path of one vertex,
// and the Lemma 13 inequality τ_u ≤ C_u(t_u) for every vertex.
#include <algorithm>
#include <cstdio>

#include "core/coupling/coupled_push_visitx.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace rumor;

  Rng rng(7);
  const Graph g = gen::random_regular(256, 12, rng);
  std::printf(
      "coupled run on a random 12-regular graph, n=256, |A|=n agents\n\n");

  CoupledOptions options;
  options.record_occupancy_history = true;
  CoupledPushVisitx coupled(g, /*source=*/0, /*seed=*/42, options);
  const CoupledResult r = coupled.run();

  std::printf("T_visitx = %llu rounds, coupled T_push = %llu rounds\n",
              static_cast<unsigned long long>(r.visitx_rounds),
              static_cast<unsigned long long>(r.push_rounds));
  std::printf("max_u C_u(t_u) = %llu  (Theorem 10 bounds T_push by this)\n\n",
              static_cast<unsigned long long>(r.max_ccounter));

  // Lemma 13 check over every vertex.
  std::size_t violations = 0;
  double worst_slack = 0;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (r.push_inform_round[u] > r.ccounter_at_inform[u]) ++violations;
    worst_slack = std::max(
        worst_slack, static_cast<double>(r.push_inform_round[u]) /
                         std::max<double>(1.0, double(r.ccounter_at_inform[u])));
  }
  std::printf("Lemma 13 (tau_u <= C_u(t_u)): %zu violations / %u vertices; "
              "tightest ratio %.2f\n\n",
              violations, g.num_vertices(), worst_slack);

  // Narrate the information path of the last-informed vertex.
  Vertex last = 0;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (r.visitx_inform_round[u] > r.visitx_inform_round[last]) last = u;
  }
  std::printf("information path to the last-informed vertex %u "
              "(t_u = %u, C_u(t_u) = %llu, tau_u = %u):\n",
              last, r.visitx_inform_round[last],
              static_cast<unsigned long long>(r.ccounter_at_inform[last]),
              r.push_inform_round[last]);
  std::vector<Vertex> path;
  for (Vertex v = last; v != kNoVertex; v = r.parent[v]) path.push_back(v);
  std::reverse(path.begin(), path.end());
  for (Vertex v : path) {
    std::printf("  vertex %3u informed at round %3u  (C = %llu)\n", v,
                r.visitx_inform_round[v],
                static_cast<unsigned long long>(r.ccounter_at_inform[v]));
  }
  std::printf(
      "\nEach hop is a member of S_u — an informed neighbor whose agent\n"
      "delivered the rumor — with the minimal C-counter, exactly the path\n"
      "used in the proofs of Lemmas 13 and 14.\n");
  return 0;
}

// Peer-to-peer overlay scenario.
//
// Random d-regular graphs are the standard model of unstructured p2p
// overlays (each peer keeps d neighbor links). This example disseminates a
// block announcement through a 10k-peer overlay and examines:
//   1. protocol choice on the healthy overlay (Theorem 1 regime),
//   2. behaviour under message loss (push-pull) and token churn
//      (visit-exchange with a dynamic agent population, paper §9),
//   3. the hybrid protocol as a robust default.
#include <cstdio>
#include <vector>

#include "core/dynamic_agents.hpp"
#include "core/hybrid.hpp"
#include "core/push_pull.hpp"
#include "core/visit_exchange.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace rumor;

  constexpr Vertex kPeers = 10000;
  constexpr std::uint32_t kDegree = 16;
  constexpr int kTrials = 10;

  Rng rng(2019);
  const Graph overlay = gen::random_regular(kPeers, kDegree, rng);
  std::printf("overlay: %u peers, degree %u, diameter >= %u\n\n",
              overlay.num_vertices(), kDegree,
              diameter_lower_bound(overlay, 4, 1));

  auto average = [&](auto&& run_once) {
    std::vector<double> samples;
    for (int seed = 0; seed < kTrials; ++seed) {
      samples.push_back(run_once(static_cast<std::uint64_t>(seed)));
    }
    return Summary::of(samples).mean;
  };

  TextTable table({"configuration", "mean rounds"});

  table.add_row({"push-pull, healthy",
                 TextTable::num(average([&](std::uint64_t seed) {
                   return double(run_push_pull(overlay, 0, seed).rounds);
                 }))});

  PushPullOptions lossy;
  lossy.loss_probability = 0.3;
  table.add_row({"push-pull, 30% message loss",
                 TextTable::num(average([&](std::uint64_t seed) {
                   return double(
                       run_push_pull(overlay, 0, seed, lossy).rounds);
                 }))});

  table.add_row({"visit-exchange, healthy",
                 TextTable::num(average([&](std::uint64_t seed) {
                   return double(run_visit_exchange(overlay, 0, seed).rounds);
                 }))});

  DynamicAgentOptions churny;
  churny.churn = 0.1;  // 10% of tokens lost+reissued per round
  table.add_row({"visit-exchange, 10% token churn",
                 TextTable::num(average([&](std::uint64_t seed) {
                   return double(
                       run_dynamic_visit_exchange(overlay, 0, seed, churny)
                           .rounds);
                 }))});

  DynamicAgentOptions partition;
  partition.loss_round = 4;
  partition.loss_fraction = 0.75;
  table.add_row({"visit-exchange, 75% tokens lost at round 4",
                 TextTable::num(average([&](std::uint64_t seed) {
                   return double(
                       run_dynamic_visit_exchange(overlay, 0, seed, partition)
                           .rounds);
                 }))});

  table.add_row({"hybrid (push-pull + walks), healthy",
                 TextTable::num(average([&](std::uint64_t seed) {
                   return double(run_hybrid(overlay, 0, seed).rounds);
                 }))});

  std::printf("%s\n", table.render_plain().c_str());
  std::printf(
      "Takeaway: on a healthy regular overlay all protocols are within\n"
      "constant factors (Theorem 1); the dissemination asymmetries of\n"
      "Figure 1 only appear on skewed topologies. Losses degrade both\n"
      "mechanisms gracefully, and the hybrid inherits the faster side.\n");
  return 0;
}

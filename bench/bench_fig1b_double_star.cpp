// E2 — Figure 1(b) / Lemma 3: the double star S2_n.
//
// Paper claims: E[T_ppull] = Ω(n) (the bridge between the centers is
// sampled with probability O(1/n) per round); T_visitx and T_meetx are
// O(log n) w.h.p. — the paper's showcase for the agent protocols' "locally
// fair bandwidth" advantage.
#include <cstdio>

#include "common.hpp"
#include "graph/generators.hpp"

namespace {

using namespace rumor;
using namespace rumor::bench;

const std::vector<Vertex> kLeafCounts = {1 << 10, 1 << 11, 1 << 12, 1 << 13,
                                         1 << 14};

void register_all() {
  for (Vertex leaves : kLeafCounts) {
    const double n = 2.0 * leaves + 2;  // total vertices
    for (Protocol p : {Protocol::push_pull, Protocol::visit_exchange,
                       Protocol::meet_exchange}) {
      const std::string series = protocol_name(p);
      register_point("fig1b/" + series + "/leaves=" + std::to_string(leaves),
                     [leaves, n, p, series](benchmark::State& state) {
                       const Graph g = gen::double_star(leaves);
                       // Source is a leaf of star A (vertex 2).
                       measure_point(state, series, n, g, default_spec(p),
                                     /*source=*/2, trials_or(20));
                     });
    }
  }
}

void report() {
  auto& registry = SeriesRegistry::instance();
  std::printf(
      "\n=== Figure 1(b) / Lemma 3 — double star S2_n, leaf source ===\n");
  std::printf("%s\n",
              series_table({"push-pull", "visit-exchange", "meet-exchange"})
                  .c_str());

  const auto ppull = registry.series("push-pull");
  const auto visitx = registry.series("visit-exchange");
  const auto meetx = registry.series("meet-exchange");

  const LawVerdict ppull_law = classify_series(ppull);
  print_claim(ppull_law.power_exponent > 0.8,
              "Lemma 3(a): E[T_ppull] = Omega(n)",
              "fit: " + ppull_law.describe());
  const LawVerdict visitx_law = classify_series(visitx);
  print_claim(visitx_law.power_exponent < 0.35,
              "Lemma 3(b): T_visitx = O(log n)",
              "fit: " + visitx_law.describe());
  const LawVerdict meetx_law = classify_series(meetx);
  print_claim(meetx_law.power_exponent < 0.35,
              "Lemma 3(c): T_meetx = O(log n)",
              "fit: " + meetx_law.describe());
  print_claim(max_ratio(visitx, ppull) < 0.2,
              "separation: push-pull >> visit-exchange on the double star",
              "max T_visitx/T_ppull across sizes = " +
                  TextTable::num(max_ratio(visitx, ppull), 4));

  maybe_dump_csv("fig1b_double_star", registry.all());
}

}  // namespace

RUMOR_BENCH_MAIN(register_all, report)

#!/usr/bin/env python3
"""Compare a fresh BENCH_micro.json against the checked-in baseline.

The walk-kernel series is the perf contract of the batched stepping engine
(docs/perf.md). Absolute steps/sec are machine-dependent — a CI runner and a
developer laptop differ by integer factors — so the default comparison is
*relative*: for every batched benchmark the script computes its speedup over
the scalar-checked benchmark of the same variant and size from the SAME run,
and fails if that speedup regressed by more than the threshold against the
baseline's speedup. A change that slows the batched kernel (or "speeds up"
the scalar baseline by miscompiling it) shows up in this ratio on any
machine.

Pass --absolute to additionally compare raw steps/sec per benchmark — only
meaningful when fresh and baseline JSON come from the same machine (e.g.
refreshing bench/baselines/ locally).

Exit codes: 0 ok, 1 regression, 2 usage/data error.

Refreshing the baseline (same-machine, quiet load; repetitions matter —
the script compares median-of-N, which is what keeps noisy runners from
flaking the gate — and random interleaving spreads each benchmark's
repetitions across the whole run, so a multi-second host-load phase
perturbs every series equally instead of landing on one ratio side):
    RUMOR_RESULTS_DIR=/tmp ./build/bench_micro \
        --benchmark_filter='WalkKernel|TrialArena|RunProtocol|Scheduler|Transmission|GraphBackend|Sharded' \
        --benchmark_min_time=0.4 --benchmark_repetitions=5 \
        --benchmark_enable_random_interleaving
    cp /tmp/BENCH_micro.json bench/baselines/BENCH_micro.json
CI skips the comparison when the PR carries the `bench-baseline-reset`
label (see .github/workflows/ci.yml).
"""

import argparse
import json
import sys


def load_rates(path):
    """name -> steps/sec (falls back to items_per_second).

    When the run used --benchmark_repetitions, the median aggregate is
    preferred over individual iterations: single runs on shared/noisy
    machines swing well past any reasonable threshold, medians don't.
    """
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    rates = {}
    from_median = set()
    for b in doc.get("benchmarks", []):
        rate = b.get("steps_per_sec") or b.get("items_per_second")
        if not rate:
            continue
        name = b.get("run_name", b["name"])
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                rates[name] = float(rate)
                from_median.add(name)
        elif name not in from_median and name not in rates:
            rates[name] = float(rate)
    if not rates:
        print(f"error: no benchmark rates in {path}", file=sys.stderr)
        sys.exit(2)
    return rates


# Each series is a (numerator, denominator, threshold) triple; benchmark
# names matching the numerator substring pair with the same name after
# substitution. Ratios are machine-independent, which is what makes the
# gate portable:
#   Batched/Scalar          — the walk-kernel speedup contract
#                             (docs/perf.md)
#   Registry/Direct         — run_protocol dispatch overhead (~1.0; a
#                             per-trial allocation or lookup regression
#                             shows up here)
#   SteadyState/FreshAlloc  — TrialArena reuse vs per-trial owned buffers
#                             (same trajectories; allocation cost only).
#                             Measured noise of this ratio at
#                             --benchmark_repetitions=5 median: ~6% on a
#                             shared 1-core VM, so 0.20 gives 3x headroom.
#   Interleaved/Barrier     — cross-scenario trial scheduling vs
#                             per-scenario barriers on a mixed-tail file
#                             (fixed 4-worker pool). The ratio is ~1.0 at
#                             1 core and ~2 at >=4 cores, so the widened
#                             0.35 threshold absorbs core-count variation
#                             on top of timing noise; a regression here
#                             means the global queue itself got slower.
#   PushTransmissionUniform/PushTransmissionHeterogeneous
#   WalkTransmissionUniform/WalkTransmissionHeterogeneous
#                           — the homogeneous fast-path contract of the
#                             transmission-model layer, for the push layer
#                             (circulant) and the walk layer (Fig 1a
#                             star): the default tp=1 trial (compile-time
#                             Uniform instantiation, byte-identical to the
#                             pre-transmission engine) vs the
#                             heterogeneous path (geometric skip sampling
#                             / per-vertex field draws) on the same graph
#                             and seeds. A drop means the trivial-model
#                             path picked up per-contact overhead.
#   GraphBackendImplicit/GraphBackendOwned
#                           — the implicit-adjacency dispatch contract:
#                             push trials on the same torus through the
#                             arithmetic backend vs the materialized CSR
#                             (bit-identical trajectories, so the ratio is
#                             pure per-accessor dispatch cost). A drop
#                             means the closed forms or the backend branch
#                             picked up per-access work, taxing every
#                             large-n implicit scenario.
#   ShardedPushK/ShardedPush1, ShardedWalkK/ShardedWalk1,
#   ShardedMeetK/ShardedMeet1, ShardedHybridK/ShardedHybrid1
#                           — the frontier-sharded round contract, one
#                             pair per sharded simulator path: one trial
#                             on the 10^7 implicit star at width 4 vs
#                             width 1 on a fixed 4-worker pool, SAME
#                             engine and trajectories (docs/perf.md). Like
#                             Interleaved/Barrier the ratio is ~1.0 on a
#                             1-core host (fan-out neither costs nor buys)
#                             and >=2.5 with 4 real cores, so the widened
#                             0.35 threshold absorbs core-count variation;
#                             a regression means the range fan-out itself
#                             got slower relative to the inline path.
#   ShardedCsrBuildK/ShardedCsrBuild1
#                           — the parallel owned-CSR build contract: the
#                             same 10^7-edge strided-permutation list
#                             built at width 4 vs width 1, byte-identical
#                             output (tier-1 pinned). Unlike the round
#                             pairs the width-K build does real extra
#                             work at 1 core (log(width) pairwise merge
#                             passes over the chunk-sorted runs), so the
#                             1-core ratio reads ~0.7, not ~1.0; the gate
#                             pins that this serial-merge tax doesn't
#                             silently grow. Same widened threshold.
RATIO_SERIES = (
    ("Batched", "Scalar", 0.15),
    ("Registry", "Direct", 0.15),
    ("SteadyState", "FreshAlloc", 0.20),
    ("Interleaved", "Barrier", 0.35),
    ("PushTransmissionUniform", "PushTransmissionHeterogeneous", 0.15),
    ("WalkTransmissionUniform", "WalkTransmissionHeterogeneous", 0.15),
    ("GraphBackendImplicit", "GraphBackendOwned", 0.20),
    ("ShardedPushK", "ShardedPush1", 0.35),
    ("ShardedWalkK", "ShardedWalk1", 0.35),
    ("ShardedMeetK", "ShardedMeet1", 0.35),
    ("ShardedHybridK", "ShardedHybrid1", 0.35),
    ("ShardedCsrBuildK", "ShardedCsrBuild1", 0.35),
)

# Absolute caps on the Uniform/Heterogeneous ratio itself: the
# heterogeneous-transmission speed contract says skip sampling + counter
# RNG keep degree-scaled push within ~1.3x of the draw-free uniform path
# (median-of-7 on the shared 1-core reference host reads 1.32–1.34; the
# residual over the uniform path is the process law itself — the
# heterogeneous chain makes ~2x the per-call events, each with a
# data-dependent branch and a geometric gap draw at ~2.3 ns — so the cap
# is set at 1.35 to gate deterministically on what the hardware
# reproducibly shows, not on the noise floor). The committed baseline
# (captured on a quiet machine, median of 5+ repetitions) is gated
# STRICTLY at the cap — a baseline refresh that bakes in a slower
# heterogeneous path fails here deterministically. The fresh run is gated
# at cap * (1 + CAP_NOISE): single CI runs on shared 1-core machines
# swing ±20% between boost and sustained clock phases, so the fresh check
# only catches real structural regressions (e.g. the heterogeneous path
# falling back to per-contact draws, which reads ~3x); chasing the last
# 25% is the drift gate's job above.
CAP_SERIES = (
    ("PushTransmissionUniform", "PushTransmissionHeterogeneous", 1.35),
)
CAP_NOISE = 0.25


def speedup_pairs(rates):
    """(variant, size) -> (ratio, threshold), for pairs present."""
    pairs = {}
    for name, rate in rates.items():
        for numer, denom, threshold in RATIO_SERIES:
            if numer not in name:
                continue
            other = name.replace(numer, denom)
            if other in rates and rates[other] > 0:
                pairs[name] = (rate / rates[other], threshold)
    return pairs


def cap_failures(rates, slack, label):
    """Rows whose Uniform/Heterogeneous ratio exceeds its cap * (1+slack)."""
    rows = []
    failed = False
    for name, rate in rates.items():
        for numer, denom, cap in CAP_SERIES:
            if numer not in name:
                continue
            other = name.replace(numer, denom)
            if other not in rates or rates[other] <= 0:
                continue
            ratio = rate / rates[other]
            bound = cap * (1.0 + slack)
            ok = ratio <= bound
            verdict = "ok" if ok else f"ABOVE CAP {bound:.2f}x"
            rows.append(f"{name + ' [' + label + ']':58} "
                        f"{ratio:8.2f}x {bound:8.2f}x  {verdict}")
            failed |= not ok
    return rows, failed


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("fresh", help="freshly generated BENCH_micro.json")
    ap.add_argument("baseline", help="bench/baselines/BENCH_micro.json")
    ap.add_argument("--threshold", type=float, default=None,
                    help="allowed fractional regression; overrides the "
                         "per-series defaults (0.15 walk-kernel/dispatch, "
                         "0.20 arena reuse, 0.35 scheduler)")
    ap.add_argument("--absolute", action="store_true",
                    help="also compare raw steps/sec (same machine only)")
    args = ap.parse_args()

    fresh = load_rates(args.fresh)
    base = load_rates(args.baseline)
    fresh_speedups = speedup_pairs(fresh)
    base_speedups = speedup_pairs(base)

    common = sorted(set(fresh_speedups) & set(base_speedups))
    if not common:
        print("error: no common batched/scalar pairs between fresh and "
              "baseline", file=sys.stderr)
        sys.exit(2)

    failed = False
    print(f"{'benchmark':58} {'baseline':>9} {'fresh':>9}  verdict")
    for name in common:
        (b, threshold), (f, _) = base_speedups[name], fresh_speedups[name]
        if args.threshold is not None:
            threshold = args.threshold
        ok = f >= b * (1.0 - threshold)
        verdict = "ok" if ok else f"REGRESSED >{threshold:.0%}"
        print(f"{name:58} {b:8.2f}x {f:8.2f}x  {verdict}")
        failed |= not ok
    missing = sorted(set(base_speedups) - set(fresh_speedups))
    for name in missing:
        print(f"{name:58} {'':>9} {'':>9}  MISSING from fresh run")
        failed = True

    base_caps, base_cap_failed = cap_failures(base, 0.0, "baseline")
    fresh_caps, fresh_cap_failed = cap_failures(fresh, CAP_NOISE, "fresh")
    if base_caps or fresh_caps:
        print()
        print(f"{'heterogeneous-transmission cap':58} {'ratio':>9} "
              f"{'bound':>9}  verdict")
        for row in base_caps + fresh_caps:
            print(row)
        failed |= base_cap_failed or fresh_cap_failed

    if args.absolute:
        abs_threshold = 0.15 if args.threshold is None else args.threshold
        print()
        print(f"{'benchmark (absolute steps/sec)':58} {'baseline':>11} "
              f"{'fresh':>11}  verdict")
        for name in sorted(set(fresh) & set(base)):
            b, f = base[name], fresh[name]
            ok = f >= b * (1.0 - abs_threshold)
            verdict = "ok" if ok else f"REGRESSED >{abs_threshold:.0%}"
            print(f"{name:58} {b:11.3g} {f:11.3g}  {verdict}")
            failed |= not ok

    if failed:
        print("\nperf regression detected (see rows above). "
              "If intentional, refresh bench/baselines/BENCH_micro.json or "
              "apply the bench-baseline-reset PR label.", file=sys.stderr)
        return 1
    print("\nno perf-ratio regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())

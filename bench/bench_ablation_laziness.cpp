// E10 — §3's bipartite complication: non-lazy meet-exchange on a bipartite
// graph may never finish (T = ∞); lazy walks restore E[T] < ∞ at a ~2x
// slowdown on non-bipartite graphs.
//
// Two panels: (i) completion rate of non-lazy vs lazy meet-exchange on the
// (bipartite) star within a generous cutoff; (ii) lazy-vs-non-lazy cost on
// a non-bipartite graph where both terminate.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/meet_exchange.hpp"
#include "graph/generators.hpp"

namespace {

using namespace rumor;
using namespace rumor::bench;

constexpr Vertex kLeaves = 1 << 12;

void register_all() {
  for (const bool lazy : {false, true}) {
    const std::string series = lazy ? "star/lazy" : "star/non-lazy";
    register_point(
        "laziness/" + series,
        [lazy, series](benchmark::State& state) {
          const Graph g = gen::star(kLeaves);
          ProtocolSpec spec = default_spec(Protocol::meet_exchange);
          spec.walk().lazy = lazy ? LazyMode::always : LazyMode::never;
          // Cutoff: far beyond the lazy completion scale — a non-lazy run
          // that hits it is genuinely stuck, not merely slow.
          spec.walk().max_rounds =
              static_cast<Round>(400 * std::log2(double(kLeaves)));
          TrialSet set;
          for (auto _ : state) {
            set = run_trials(g, spec, /*source=*/1, trials_or(20),
                             master_seed());
          }
          SeriesRegistry::instance().record(series,
                                            static_cast<double>(kLeaves),
                                            set.summary());
          state.counters["incomplete"] = static_cast<double>(set.incomplete);
          SeriesRegistry::instance().record(
              series + "/incomplete", static_cast<double>(kLeaves),
              Summary::of(std::vector<double>{
                  static_cast<double>(set.incomplete)}));
        });
  }
  for (const bool lazy : {false, true}) {
    const std::string series = lazy ? "odd-circulant/lazy"
                                    : "odd-circulant/non-lazy";
    register_point("laziness/" + series, [lazy, series](benchmark::State&
                                                            state) {
      // Odd circulant: non-bipartite, both modes terminate.
      const Graph g = gen::circulant(4097, 12);
      ProtocolSpec spec = default_spec(Protocol::meet_exchange);
      spec.walk().lazy = lazy ? LazyMode::always : LazyMode::never;
      measure_point(state, series, 4097.0, g, spec, 0, trials_or(20));
    });
  }
}

void report() {
  auto& registry = SeriesRegistry::instance();
  std::printf("\n=== E10 — laziness ablation for meet-exchange ===\n");
  std::printf("%s\n", series_table({"star/non-lazy", "star/lazy",
                                    "odd-circulant/non-lazy",
                                    "odd-circulant/lazy"},
                                   "n")
                          .c_str());

  const double nonlazy_stuck =
      registry.series("star/non-lazy/incomplete").points.front().summary.mean;
  const double lazy_stuck =
      registry.series("star/lazy/incomplete").points.front().summary.mean;
  print_claim(nonlazy_stuck > 0 && lazy_stuck == 0,
              "E10: non-lazy meetx stalls on the bipartite star, lazy "
              "completes",
              "incomplete trials: non-lazy " +
                  TextTable::num(nonlazy_stuck, 0) + ", lazy " +
                  TextTable::num(lazy_stuck, 0));

  const double lazy_cost =
      registry.series("odd-circulant/lazy").points.front().summary.mean /
      registry.series("odd-circulant/non-lazy").points.front().summary.mean;
  print_claim(lazy_cost > 1.2 && lazy_cost < 3.5,
              "E10: lazy walks cost ~2x where both modes terminate",
              "T_lazy/T_nonlazy = " + TextTable::num(lazy_cost, 2));

  maybe_dump_csv("ablation_laziness", registry.all());
}

}  // namespace

RUMOR_BENCH_MAIN(register_all, report)

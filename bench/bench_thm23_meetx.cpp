// E7 — Theorem 23: on d-regular graphs with d = Ω(log n),
// P[T_visitx <= k + c ln n] >= P[T_meetx <= k] - n^{-λ}; in expectation,
// T_visitx <= T_meetx + c ln n. We measure both protocols plus R_visitx
// (the all-agents-informed time, the quantity the proof couples) across
// regular families.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/visit_exchange.hpp"
#include "graph/generators.hpp"

namespace {

using namespace rumor;
using namespace rumor::bench;

struct Case {
  std::string name;
  GraphSpec spec;
  double x;
};

std::vector<Case> cases() {
  std::vector<Case> out;
  for (Vertex n : {1 << 10, 1 << 11, 1 << 12, 1 << 13}) {
    auto d = static_cast<std::uint64_t>(
        1.5 * std::log2(static_cast<double>(n)));
    if ((n * d) % 2 != 0) ++d;
    out.push_back({"random-regular", GraphSpec{Family::random_regular, n, d},
                   static_cast<double>(n)});
  }
  for (Vertex groups : {32, 64, 128}) {
    out.push_back({"clique-ring", GraphSpec{Family::clique_ring, groups, 16},
                   static_cast<double>(groups) * 16});
  }
  return out;
}

void register_all() {
  for (const auto& c : cases()) {
    register_point(
        "thm23/" + c.name + "/n=" + std::to_string(static_cast<long>(c.x)),
        [c](benchmark::State& state) {
          Rng rng(master_seed() ^ 0xBEEFu);
          const Graph g = c.spec.make(rng);
          const std::size_t trials = trials_or(20);

          // visit-exchange: record both T_visitx and R_visitx.
          std::vector<double> t_visitx, r_visitx;
          TrialSet meetx;
          for (auto _ : state) {
            for (std::size_t i = 0; i < trials; ++i) {
              const RunResult rv = run_visit_exchange(
                  g, 0, derive_seed(master_seed(), i));
              t_visitx.push_back(static_cast<double>(rv.rounds));
              r_visitx.push_back(static_cast<double>(rv.agent_rounds));
            }
            meetx = run_trials(g, default_spec(Protocol::meet_exchange), 0,
                               trials, master_seed() + 1);
          }

          auto& reg = SeriesRegistry::instance();
          reg.record(c.name + "/T_visitx", c.x, Summary::of(t_visitx));
          reg.record(c.name + "/R_visitx", c.x, Summary::of(r_visitx));
          reg.record(c.name + "/T_meetx", c.x, meetx.summary());
          state.counters["visitx"] = Summary::of(t_visitx).mean;
          state.counters["meetx"] = meetx.summary().mean;
        });
  }
}

void report() {
  auto& registry = SeriesRegistry::instance();
  std::printf(
      "\n=== Theorem 23 — T_visitx <= T_meetx + c ln n on regular graphs "
      "===\n");
  for (const std::string family : {"random-regular", "clique-ring"}) {
    const auto visitx = registry.series(family + "/T_visitx");
    const auto r_visitx = registry.series(family + "/R_visitx");
    const auto meetx = registry.series(family + "/T_meetx");
    std::printf("%s\n", series_table({family + "/T_visitx",
                                      family + "/R_visitx",
                                      family + "/T_meetx"})
                            .c_str());
    // Find the smallest c making the additive-log bound hold, then check
    // it is a modest constant.
    double worst_c = 0.0;
    for (std::size_t i = 0; i < visitx.points.size(); ++i) {
      const double gap =
          visitx.points[i].summary.mean - meetx.points[i].summary.mean;
      worst_c = std::max(worst_c, gap / std::log(visitx.points[i].n));
    }
    print_claim(worst_c < 6.0,
                "Theorem 23 [" + family + "]: T_visitx <= T_meetx + c ln n",
                "smallest adequate c = " + TextTable::num(worst_c, 3));
    // The proof's intermediate inequality: R_visitx <= T_meetx under the
    // natural coupling; in means it should hold with margin even across
    // independent runs.
    print_claim(max_ratio(r_visitx, meetx) <= 1.15,
                "coupling step [" + family + "]: R_visitx <~ T_meetx",
                "max mean ratio = " +
                    TextTable::num(max_ratio(r_visitx, meetx), 3));
  }
  maybe_dump_csv("thm23_meetx", registry.all());
}

}  // namespace

RUMOR_BENCH_MAIN(register_all, report)

// E1 — Figure 1(a) / Lemma 2: the star S_n.
//
// Paper claims: E[T_push] = Ω(n log n); T_ppull ≤ 2; T_visitx = O(log n)
// w.h.p.; T_meetx = O(log n) w.h.p. (lazy walks — the star is bipartite).
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "graph/generators.hpp"

namespace {

using namespace rumor;
using namespace rumor::bench;

const std::vector<Vertex> kSizes = {1 << 11, 1 << 12, 1 << 13, 1 << 14,
                                    1 << 15};

void register_all() {
  for (Vertex leaves : kSizes) {
    for (Protocol p : {Protocol::push, Protocol::push_pull,
                       Protocol::visit_exchange, Protocol::meet_exchange}) {
      const std::string series = protocol_name(p);
      // Each point is the scenario line a rumor_run file would hold
      // (examples/scenarios/fig1a.scn): source is a leaf — the hardest
      // case for push (the center must coupon-collect the other leaves).
      const std::string scenario = "star(leaves=" + std::to_string(leaves) +
                                   ") " + series + " source=1";
      register_point(
          "fig1a/" + series + "/leaves=" + std::to_string(leaves),
          [leaves, series, scenario](benchmark::State& state) {
            measure_scenario(state, series, static_cast<double>(leaves),
                             scenario);
          });
    }
  }
}

void report() {
  auto& registry = SeriesRegistry::instance();
  std::printf("\n=== Figure 1(a) / Lemma 2 — star S_n, leaf source ===\n");
  std::printf("%s\n",
              series_table({"push", "push-pull", "visit-exchange",
                            "meet-exchange"},
                           "leaves")
                  .c_str());

  const auto push = registry.series("push");
  const auto ppull = registry.series("push-pull");
  const auto visitx = registry.series("visit-exchange");
  const auto meetx = registry.series("meet-exchange");

  // (a) push is linearithmic.
  const LawVerdict push_law = classify_series(push);
  print_claim(push_law.power_exponent > 0.8,
              "Lemma 2(a): E[T_push] = Omega(n log n)",
              "fit: " + push_law.describe());

  // (b) push-pull completes in <= 2 rounds at every size.
  bool ppull_ok = true;
  for (const auto& pt : ppull.points) ppull_ok &= pt.summary.max <= 2.0;
  print_claim(ppull_ok, "Lemma 2(b): T_ppull <= 2",
              "max over sizes/trials: " +
                  TextTable::num(registry.series("push-pull").points.back()
                                     .summary.max,
                                 0));

  // (c, d) agent protocols are logarithmic.
  const LawVerdict visitx_law = classify_series(visitx);
  print_claim(visitx_law.power_exponent < 0.35,
              "Lemma 2(c): T_visitx = O(log n)",
              "fit: " + visitx_law.describe());
  const LawVerdict meetx_law = classify_series(meetx);
  print_claim(meetx_law.power_exponent < 0.35,
              "Lemma 2(d): T_meetx = O(log n), lazy walks",
              "fit: " + meetx_law.describe());

  // The separation itself.
  print_claim(max_ratio(visitx, push) < 0.2,
              "separation: push >> visit-exchange on the star",
              "max T_visitx/T_push across sizes = " +
                  TextTable::num(max_ratio(visitx, push), 4));

  maybe_dump_csv("fig1a_star", registry.all());
}

}  // namespace

RUMOR_BENCH_MAIN(register_all, report)

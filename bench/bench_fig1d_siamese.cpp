// E4 — Figure 1(d) / Lemma 8: Siamese heavy binary trees D_n (two heavy
// trees sharing one root).
//
// Paper claims: T_push = O(log n) w.h.p.; E[T_visitx] = Ω(n) AND
// E[T_meetx] = Ω(n) — information held by agents in one tree can only reach
// the other tree through the root, which stationary walks rarely visit.
#include <cstdio>

#include "common.hpp"
#include "graph/generators.hpp"

namespace {

using namespace rumor;
using namespace rumor::bench;

// n is the per-copy size; the graph has 2n-1 vertices.
const std::vector<Vertex> kSizes = {(1 << 9) - 1, (1 << 10) - 1,
                                    (1 << 11) - 1, (1 << 12) - 1};

void register_all() {
  for (Vertex n : kSizes) {
    for (Protocol p : {Protocol::push, Protocol::visit_exchange,
                       Protocol::meet_exchange}) {
      const std::string series = protocol_name(p);
      register_point("fig1d/" + series + "/n=" + std::to_string(n),
                     [n, p, series](benchmark::State& state) {
                       const Graph g = gen::siamese_heavy_tree(n);
                       // Source: a leaf of copy 0.
                       measure_point(state, series,
                                     static_cast<double>(2 * n - 1), g,
                                     default_spec(p), /*source=*/n - 1,
                                     trials_or(12));
                     });
    }
  }
}

void report() {
  auto& registry = SeriesRegistry::instance();
  std::printf(
      "\n=== Figure 1(d) / Lemma 8 — Siamese heavy trees D_n, leaf source "
      "===\n");
  std::printf("%s\n",
              series_table({"push", "visit-exchange", "meet-exchange"})
                  .c_str());

  const auto push = registry.series("push");
  const auto visitx = registry.series("visit-exchange");
  const auto meetx = registry.series("meet-exchange");

  const LawVerdict push_law = classify_series(push);
  print_claim(push_law.power_exponent < 0.35,
              "Lemma 8(a): T_push = O(log n)", "fit: " + push_law.describe());
  const LawVerdict visitx_law = classify_series(visitx);
  print_claim(visitx_law.power_exponent > 0.7,
              "Lemma 8(b): E[T_visitx] = Omega(n)",
              "fit: " + visitx_law.describe());
  const LawVerdict meetx_law = classify_series(meetx);
  print_claim(meetx_law.power_exponent > 0.7,
              "Lemma 8(c): E[T_meetx] = Omega(n)",
              "fit: " + meetx_law.describe());
  print_claim(max_ratio(push, visitx) < 0.5 && max_ratio(push, meetx) < 0.5,
              "separation: both agent protocols >> push on D_n",
              "max T_push/T_visitx = " +
                  TextTable::num(max_ratio(push, visitx), 4) +
                  ", max T_push/T_meetx = " +
                  TextTable::num(max_ratio(push, meetx), 4));

  maybe_dump_csv("fig1d_siamese", registry.all());
}

}  // namespace

RUMOR_BENCH_MAIN(register_all, report)

// E16 — §9 robustness: the paper notes classical rumor spreading tolerates
// faults while the agent protocols risk "losing" agents, and sketches a
// dynamic agent population (age/die/birth) as the fix. We measure:
//   (i)  push / push-pull under per-call message loss (the classical
//        robustness baseline),
//   (ii) visit-exchange with dynamic agent churn (die + uninformed rebirth),
//   (iii) visit-exchange surviving a one-shot loss of half the agents.
#include <cstdio>

#include "common.hpp"
#include "core/dynamic_agents.hpp"
#include "graph/generators.hpp"

namespace {

using namespace rumor;
using namespace rumor::bench;

constexpr Vertex kN = 1 << 12;

Graph make_graph() {
  Rng rng(master_seed() ^ 0x0B057u);
  return gen::random_regular(kN, 16, rng);
}

void register_all() {
  // (i) lossy push-pull.
  for (double loss : {0.0, 0.25, 0.5}) {
    register_point(
        "robust/push-pull/loss=" + std::to_string(loss),
        [loss](benchmark::State& state) {
          const Graph g = make_graph();
          ProtocolSpec spec = default_spec(Protocol::push_pull);
          spec.push_pull().loss_probability = loss;
          measure_point(state, "push-pull vs loss", loss, g, spec, 0,
                        trials_or(20));
        });
  }
  // (ii) agent churn.
  for (double churn : {0.0, 0.05, 0.2}) {
    register_point(
        "robust/visitx/churn=" + std::to_string(churn),
        [churn](benchmark::State& state) {
          const Graph g = make_graph();
          TrialArena arena;  // reused across trials: measures protocol cost
          std::vector<double> rounds;
          std::size_t incomplete = 0;
          for (auto _ : state) {
            for (std::size_t i = 0; i < trials_or(20); ++i) {
              DynamicAgentOptions options;
              options.churn = churn;
              const RunResult r = run_dynamic_visit_exchange(
                  g, 0, derive_seed(master_seed(), i), options, &arena);
              rounds.push_back(static_cast<double>(r.rounds));
              if (!r.completed) ++incomplete;
            }
          }
          SeriesRegistry::instance().record("visitx vs churn", churn,
                                            Summary::of(rounds));
          state.counters["incomplete"] = static_cast<double>(incomplete);
        });
  }
  // (iii) bulk agent loss at round 5.
  for (double loss : {0.0, 0.5, 0.9}) {
    register_point(
        "robust/visitx/bulk=" + std::to_string(loss),
        [loss](benchmark::State& state) {
          const Graph g = make_graph();
          TrialArena arena;  // reused across trials: measures protocol cost
          std::vector<double> rounds;
          for (auto _ : state) {
            for (std::size_t i = 0; i < trials_or(20); ++i) {
              DynamicAgentOptions options;
              options.loss_round = 5;
              options.loss_fraction = loss;
              const RunResult r = run_dynamic_visit_exchange(
                  g, 0, derive_seed(master_seed(), i), options, &arena);
              rounds.push_back(static_cast<double>(r.rounds));
            }
          }
          SeriesRegistry::instance().record("visitx vs bulk loss", loss,
                                            Summary::of(rounds));
        });
  }
}

void report() {
  auto& registry = SeriesRegistry::instance();
  std::printf("\n=== E16 — robustness (random 16-regular, n=%u) ===\n", kN);
  std::printf("%s\n", series_table({"push-pull vs loss"}, "loss p").c_str());
  std::printf("%s\n",
              series_table({"visitx vs churn"}, "churn p").c_str());
  std::printf("%s\n",
              series_table({"visitx vs bulk loss"}, "lost frac").c_str());

  const auto loss = registry.series("push-pull vs loss");
  print_claim(loss.points.back().summary.mean <
                  3.0 * loss.points.front().summary.mean,
              "E16(i): push-pull degrades gracefully under 50% message loss",
              "T: " + TextTable::num(loss.points.front().summary.mean, 1) +
                  " -> " + TextTable::num(loss.points.back().summary.mean, 1));

  const auto churn = registry.series("visitx vs churn");
  print_claim(churn.points.back().summary.mean <
                  4.0 * churn.points.front().summary.mean,
              "E16(ii): visit-exchange completes despite 20% per-round agent "
              "churn (dynamic population, paper §9)",
              "T: " + TextTable::num(churn.points.front().summary.mean, 1) +
                  " -> " + TextTable::num(churn.points.back().summary.mean, 1));

  const auto bulk = registry.series("visitx vs bulk loss");
  print_claim(bulk.points.back().summary.mean <
                  12.0 * bulk.points.front().summary.mean,
              "E16(iii): one-shot loss of 90% of agents delays but does not "
              "kill the broadcast",
              "T: " + TextTable::num(bulk.points.front().summary.mean, 1) +
                  " -> " + TextTable::num(bulk.points.back().summary.mean, 1));

  maybe_dump_csv("robustness", registry.all());
}

}  // namespace

RUMOR_BENCH_MAIN(register_all, report)

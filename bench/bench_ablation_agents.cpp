// E9 — §9 open problem: sub-linear (and super-linear) agent counts.
//
// The paper assumes |A| = Θ(n) and asks what happens with fewer agents. We
// sweep α = |A|/n over three decades on a random regular graph and report
// how T_visitx and T_meetx scale with agent density.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "graph/generators.hpp"

namespace {

using namespace rumor;
using namespace rumor::bench;

const std::vector<double> kAlphas = {0.0625, 0.125, 0.25, 0.5,
                                     1.0,    2.0,   4.0};
constexpr Vertex kN = 1 << 12;

void register_all() {
  for (double alpha : kAlphas) {
    for (Protocol p : {Protocol::visit_exchange, Protocol::meet_exchange}) {
      const std::string series = protocol_name(p);
      register_point(
          "agents/" + series + "/alpha=" + std::to_string(alpha),
          [alpha, p, series](benchmark::State& state) {
            Rng rng(master_seed() ^ 0xA1FAu);
            const Graph g = gen::random_regular(kN, 18, rng);
            ProtocolSpec spec = default_spec(p);
            spec.walk().alpha = alpha;
            measure_point(state, series, alpha, g, spec, 0, trials_or(20));
          });
    }
  }
}

void report() {
  auto& registry = SeriesRegistry::instance();
  std::printf(
      "\n=== E9 — agent density sweep (random 18-regular, n=%u) ===\n", kN);
  std::printf("%s\n",
              series_table({"visit-exchange", "meet-exchange"}, "alpha")
                  .c_str());

  for (const std::string series : {"visit-exchange", "meet-exchange"}) {
    const auto s = registry.series(series);
    // Broadcast time must be monotone non-increasing in agent density
    // (allow small statistical wiggle).
    bool monotone = true;
    for (std::size_t i = 1; i < s.points.size(); ++i) {
      monotone &= s.points[i].summary.mean <=
                  1.15 * s.points[i - 1].summary.mean;
    }
    print_claim(monotone, "E9 [" + series + "]: T decreases with alpha",
                "T(alpha=1/16) = " +
                    TextTable::num(s.points.front().summary.mean, 1) +
                    " -> T(alpha=4) = " +
                    TextTable::num(s.points.back().summary.mean, 1));
    // Scaling law of T vs 1/alpha in the sub-linear regime.
    std::vector<double> inv_alpha, t;
    for (const auto& pt : s.points) {
      if (pt.n <= 1.0) {  // sub-linear half of the sweep
        inv_alpha.push_back(1.0 / pt.n);
        t.push_back(pt.summary.mean);
      }
    }
    const LinearFit fit = fit_power(inv_alpha, t);
    std::printf("    %s: T ~ (1/alpha)^%.2f in the sub-linear regime "
                "(R2=%.3f)\n",
                series.c_str(), fit.slope, fit.r_squared);
  }
  maybe_dump_csv("ablation_agents", registry.all());
}

}  // namespace

RUMOR_BENCH_MAIN(register_all, report)

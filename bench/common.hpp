// Shared harness for the reproduction bench binaries.
//
// Each binary registers one google-benchmark entry per (series, size) point;
// the body runs R seeded trials and deposits the Summary in a global
// registry. After RunSpecifiedBenchmarks, the binary's report function reads
// the registry, prints the paper-claim table (the "rows the paper reports"),
// and emits [ OK ]/[WARN] verdict lines. Environment knobs:
//   RUMOR_TRIALS      override per-point trial counts (min 3)
//   RUMOR_SEED        master seed (default 20190729, the PODC'19 date)
//   RUMOR_RESULTS_DIR if set, benches drop CSV artifacts there
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/scaling.hpp"
#include "experiments/report.hpp"
#include "experiments/specs.hpp"
#include "experiments/trials.hpp"
#include "support/table.hpp"

namespace rumor::bench {

// Trial-count override (RUMOR_TRIALS) with a per-bench default.
[[nodiscard]] std::size_t trials_or(std::size_t default_trials);

// Master seed (RUMOR_SEED override).
[[nodiscard]] std::uint64_t master_seed();

class SeriesRegistry {
 public:
  static SeriesRegistry& instance();

  void record(const std::string& series, double x, const Summary& summary);

  // Series with points sorted by x; empty if unknown.
  [[nodiscard]] ScalingSeries series(const std::string& label) const;
  [[nodiscard]] std::vector<ScalingSeries> all() const;

 private:
  std::vector<ScalingSeries> series_;
};

// Registers a single benchmark point (Iterations(1), ms units).
void register_point(const std::string& name,
                    std::function<void(benchmark::State&)> body);

// Standard body: run R trials of `spec` on graph `g`, record the summary
// under `series` at size coordinate x, and surface counters in the
// benchmark output.
Summary measure_point(benchmark::State& state, const std::string& series,
                      double x, const Graph& g, const ProtocolSpec& spec,
                      Vertex source, std::size_t trials);

// As above with a fresh random graph per trial.
Summary measure_point_fresh(benchmark::State& state, const std::string& series,
                            double x, const GraphSpec& graph_spec,
                            const ProtocolSpec& spec, Vertex source,
                            std::size_t trials);

// Runs a full scenario line (the spec grammar of docs/scenarios.md) and
// records its summary — figure benches register points from the same text
// a rumor_run scenario file holds. RUMOR_TRIALS / RUMOR_SEED override the
// line's plan, as everywhere in the bench harness.
Summary measure_scenario(benchmark::State& state, const std::string& series,
                         double x, const std::string& scenario_line);

// Renders a sizes-by-series table of mean±stderr for the report section.
[[nodiscard]] std::string series_table(
    const std::vector<std::string>& series_labels,
    const std::string& x_header = "n");

}  // namespace rumor::bench

// Entry point boilerplate: register → run benchmarks → print report.
// report_fn: void(); should print tables and claim lines.
#define RUMOR_BENCH_MAIN(register_fn, report_fn)                          \
  int main(int argc, char** argv) {                                      \
    register_fn();                                                       \
    benchmark::Initialize(&argc, argv);                                  \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;    \
    benchmark::RunSpecifiedBenchmarks();                                 \
    benchmark::Shutdown();                                               \
    report_fn();                                                         \
    return 0;                                                            \
  }

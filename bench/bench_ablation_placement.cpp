// E13 — the remark after Lemma 11: the regular-graph results hold not only
// for stationary starts but also when exactly one agent starts from each
// vertex. (On regular graphs the two initial laws coincide in expectation;
// one-per-vertex is simply less variable.) We also include the uniform
// placement, which differs from stationary only on non-regular graphs.
#include <cstdio>

#include "common.hpp"
#include "graph/generators.hpp"

namespace {

using namespace rumor;
using namespace rumor::bench;

const std::vector<Vertex> kSizes = {1 << 10, 1 << 12, 1 << 14};

void register_all() {
  for (Vertex n : kSizes) {
    for (Placement placement : {Placement::stationary,
                                Placement::one_per_vertex,
                                Placement::uniform}) {
      const std::string series =
          placement == Placement::stationary
              ? "stationary"
              : (placement == Placement::one_per_vertex ? "one-per-vertex"
                                                        : "uniform");
      register_point(
          "placement/" + series + "/n=" + std::to_string(n),
          [n, placement, series](benchmark::State& state) {
            Rng rng(master_seed() ^ 0x97ACEu);
            const Graph g = gen::random_regular(n, 16, rng);
            ProtocolSpec spec = default_spec(Protocol::visit_exchange);
            spec.walk().placement = placement;
            if (placement == Placement::one_per_vertex) {
              spec.walk().agent_count = n;
            }
            measure_point(state, series, static_cast<double>(n), g, spec, 0,
                          trials_or(20));
          });
    }
  }
}

void report() {
  auto& registry = SeriesRegistry::instance();
  std::printf(
      "\n=== E13 — initial placement ablation (visit-exchange, random "
      "16-regular) ===\n");
  std::printf("%s\n",
              series_table({"stationary", "one-per-vertex", "uniform"})
                  .c_str());
  const auto stationary = registry.series("stationary");
  const auto one_per = registry.series("one-per-vertex");
  const auto uniform = registry.series("uniform");
  print_claim(ratio_bounded(stationary, one_per, 1.5),
              "Lemma 11 remark: one-per-vertex start ~= stationary start",
              "max mean ratio spread = " +
                  TextTable::num(max_ratio(stationary, one_per), 3) + " / " +
                  TextTable::num(max_ratio(one_per, stationary), 3));
  print_claim(ratio_bounded(stationary, uniform, 1.5),
              "regular graphs: uniform placement ~= stationary (they "
              "coincide in law)",
              "max mean ratio = " +
                  TextTable::num(max_ratio(stationary, uniform), 3));
  maybe_dump_csv("ablation_placement", registry.all());
}

}  // namespace

RUMOR_BENCH_MAIN(register_all, report)

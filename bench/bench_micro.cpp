// E17 — engineering microbenchmarks: substrate throughput (wall time, not
// broadcast rounds). These are conventional google-benchmark timings.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "core/push.hpp"
#include "core/visit_exchange.hpp"
#include "graph/generators.hpp"
#include "walk/agents.hpp"

namespace {

using namespace rumor;

void BM_AgentStepThroughput(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  Rng rng(1);
  const Graph g = gen::random_regular(n, 16, rng);
  AgentSystem agents(g, n, Placement::stationary, rng);
  for (auto _ : state) {
    agents.step_all(rng, Laziness::none);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AgentStepThroughput)->Arg(1 << 12)->Arg(1 << 16);

void BM_GraphGenRandomRegular(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::random_regular(n, 16, rng));
  }
}
BENCHMARK(BM_GraphGenRandomRegular)->Arg(1 << 12)->Arg(1 << 14);

void BM_GraphGenHeavyTree(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::heavy_binary_tree(n));
  }
}
BENCHMARK(BM_GraphGenHeavyTree)->Arg(1 << 10)->Arg(1 << 12);

void BM_PushBroadcastCompleteGraph(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  const Graph g = gen::complete(n);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_push(g, 0, ++seed));
  }
}
BENCHMARK(BM_PushBroadcastCompleteGraph)->Arg(1 << 10)->Arg(1 << 12);

void BM_VisitExchangeRound(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  Rng rng(3);
  const Graph g = gen::random_regular(n, 16, rng);
  VisitExchangeProcess process(g, 0, 7);
  for (auto _ : state) {
    process.step();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_VisitExchangeRound)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();

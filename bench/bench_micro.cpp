// E17 — engineering microbenchmarks: substrate throughput (wall time, not
// broadcast rounds). These are conventional google-benchmark timings.
//
// The walk-kernel series is the perf contract of the batched stepping
// engine: BM_WalkKernel{Scalar,Batched} measure steps/sec for the checked
// scalar baseline vs. the batched unchecked kernel at n ∈ {2^14, 2^18,
// 2^22} (degree-16 circulant: the pow2 fast path) plus a non-pow2 pair
// (degree-12) isolating the generic Lemire path. Trajectories are
// bit-identical across engines, so the comparison is pure overhead.
//
// The binary always writes a machine-readable BENCH_micro.json (into
// RUMOR_RESULTS_DIR if set, else the working directory) unless the caller
// passes an explicit --benchmark_out.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common.hpp"
#include "core/hybrid.hpp"
#include "core/meet_exchange.hpp"
#include "core/push.hpp"
#include "core/visit_exchange.hpp"
#include "experiments/trials.hpp"
#include "graph/generators.hpp"
#include "graph/implicit.hpp"
#include "support/assert.hpp"
#include "support/thread_pool.hpp"
#include "walk/agents.hpp"
#include "walk/step_kernel.hpp"

namespace {

using namespace rumor;

// ---- Walk-kernel series ----------------------------------------------

void walk_kernel_bench(benchmark::State& state, std::uint32_t half_degree,
                       Laziness lazy, StepEngine engine) {
  const auto n = static_cast<Vertex>(state.range(0));
  const Graph g = gen::circulant(n, half_degree);
  Rng rng(1);
  std::vector<Vertex> positions(n);
  for (Vertex v = 0; v < n; ++v) positions[v] = v;
  for (auto _ : state) {
    step_walks(g, positions, rng, lazy, nullptr, engine);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["steps_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}

void BM_WalkKernelScalar(benchmark::State& state) {
  walk_kernel_bench(state, 8, Laziness::none, StepEngine::scalar_checked);
}
BENCHMARK(BM_WalkKernelScalar)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 22);

void BM_WalkKernelBatched(benchmark::State& state) {
  walk_kernel_bench(state, 8, Laziness::none, StepEngine::batched);
}
BENCHMARK(BM_WalkKernelBatched)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 22);

void BM_WalkKernelScalarNonPow2(benchmark::State& state) {
  walk_kernel_bench(state, 6, Laziness::none, StepEngine::scalar_checked);
}
BENCHMARK(BM_WalkKernelScalarNonPow2)->Arg(1 << 14)->Arg(1 << 18);

void BM_WalkKernelBatchedNonPow2(benchmark::State& state) {
  walk_kernel_bench(state, 6, Laziness::none, StepEngine::batched);
}
BENCHMARK(BM_WalkKernelBatchedNonPow2)->Arg(1 << 14)->Arg(1 << 18);

void BM_WalkKernelScalarLazy(benchmark::State& state) {
  walk_kernel_bench(state, 8, Laziness::half, StepEngine::scalar_checked);
}
BENCHMARK(BM_WalkKernelScalarLazy)->Arg(1 << 14)->Arg(1 << 18);

void BM_WalkKernelBatchedLazy(benchmark::State& state) {
  walk_kernel_bench(state, 8, Laziness::half, StepEngine::batched);
}
BENCHMARK(BM_WalkKernelBatchedLazy)->Arg(1 << 14)->Arg(1 << 18);

// ---- Substrate series (pre-engine micro set) --------------------------

void BM_AgentStepThroughput(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  Rng rng(1);
  const Graph g = gen::random_regular(n, 16, rng);
  AgentSystem agents(g, n, Placement::stationary, rng);
  for (auto _ : state) {
    agents.step_all(rng, Laziness::none);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AgentStepThroughput)->Arg(1 << 12)->Arg(1 << 16);

void BM_GraphGenRandomRegular(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::random_regular(n, 16, rng));
  }
}
BENCHMARK(BM_GraphGenRandomRegular)->Arg(1 << 12)->Arg(1 << 14);

void BM_GraphGenHeavyTree(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen::heavy_binary_tree(n));
  }
}
BENCHMARK(BM_GraphGenHeavyTree)->Arg(1 << 10)->Arg(1 << 12);

void BM_PushBroadcastCompleteGraph(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  const Graph g = gen::complete(n);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_push(g, 0, ++seed));
  }
}
BENCHMARK(BM_PushBroadcastCompleteGraph)->Arg(1 << 10)->Arg(1 << 12);

void BM_PushTrialArenaSteadyState(benchmark::State& state) {
  // Per-trial cost with a reused arena — the run_trials steady state.
  const auto n = static_cast<Vertex>(state.range(0));
  const Graph g = gen::circulant(n, 8);
  TrialArena arena;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PushProcess(g, 0, ++seed, {}, &arena).run());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PushTrialArenaSteadyState)->Arg(1 << 10)->Arg(1 << 14);

void BM_PushTrialArenaFreshAlloc(benchmark::State& state) {
  // Same trial without a lent arena: the process owns (and allocates) its
  // buffers every run — the pre-arena shape. The SteadyState/FreshAlloc
  // trials/sec ratio is the arena-reuse contract compare_bench.py gates
  // (machine-independent: same code, same trajectories, allocation and
  // zeroing cost is the only difference).
  const auto n = static_cast<Vertex>(state.range(0));
  const Graph g = gen::circulant(n, 8);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PushProcess(g, 0, ++seed, {}, nullptr).run());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PushTrialArenaFreshAlloc)->Arg(1 << 10)->Arg(1 << 14);

// The allocation-dominated regime: push-pull on the star completes in ~2
// rounds, so per-trial O(n) buffer allocation + zeroing is a constant
// fraction of the whole trial and arena reuse shows as a measurable
// (~1.1-1.5x, allocator-dependent) trials/sec win (vs ~1.0x for the
// long circulant broadcasts above,
// where simulation work swamps setup). Both ratios are gated: the star
// pair contracts "arena reuse keeps winning where allocation matters",
// the circulant pair "the arena path adds no overhead where it doesn't".
void push_pull_star_trial_arena_bench(benchmark::State& state, TrialArena* arena) {
  const auto n = static_cast<Vertex>(state.range(0));
  const Graph g = gen::star(n);
  const ProtocolSpec spec = default_spec(Protocol::push_pull);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_protocol(g, spec, 1, ++seed, arena));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_PushPullStarTrialArenaSteadyState(benchmark::State& state) {
  TrialArena arena;
  push_pull_star_trial_arena_bench(state, &arena);
}
BENCHMARK(BM_PushPullStarTrialArenaSteadyState)->Arg(1 << 14);

void BM_PushPullStarTrialArenaFreshAlloc(benchmark::State& state) {
  push_pull_star_trial_arena_bench(state, nullptr);
}
BENCHMARK(BM_PushPullStarTrialArenaFreshAlloc)->Arg(1 << 14);

void BM_VisitExchangeRound(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  Rng rng(3);
  const Graph g = gen::random_regular(n, 16, rng);
  VisitExchangeProcess process(g, 0, 7);
  for (auto _ : state) {
    process.step();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_VisitExchangeRound)->Arg(1 << 12)->Arg(1 << 16);

// ---- run_protocol dispatch series -------------------------------------
//
// Registry-path vs direct-construction throughput for one arena-backed
// trial. The Registry/Direct ratio (≈1.0) is the dispatch-overhead
// contract of the scenario API: like the batched/scalar walk-kernel
// pairs it is machine-independent, so bench/compare_bench.py gates on it
// in CI. Trajectories are identical by construction (same simulator, same
// seed), making the comparison pure dispatch overhead.

void run_protocol_trial_bench(benchmark::State& state, bool registry_path,
                              bool walks) {
  const auto n = static_cast<Vertex>(state.range(0));
  const Graph g = gen::circulant(n, 8);
  const ProtocolSpec spec =
      default_spec(walks ? Protocol::visit_exchange : Protocol::push);
  TrialArena arena;
  std::uint64_t seed = 0;
  double acc = 0.0;
  for (auto _ : state) {
    if (registry_path) {
      acc += run_protocol(g, spec, 0, ++seed, &arena).rounds;
    } else if (walks) {
      acc += static_cast<double>(
          VisitExchangeProcess(g, 0, ++seed, std::get<WalkOptions>(spec.options),
                               &arena)
              .run()
              .rounds);
    } else {
      acc += static_cast<double>(
          PushProcess(g, 0, ++seed, std::get<PushOptions>(spec.options),
                      &arena)
              .run()
              .rounds);
    }
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}

void BM_RunProtocolDirectPush(benchmark::State& state) {
  run_protocol_trial_bench(state, /*registry_path=*/false, /*walks=*/false);
}
BENCHMARK(BM_RunProtocolDirectPush)->Arg(1 << 10)->Arg(1 << 14);

void BM_RunProtocolRegistryPush(benchmark::State& state) {
  run_protocol_trial_bench(state, /*registry_path=*/true, /*walks=*/false);
}
BENCHMARK(BM_RunProtocolRegistryPush)->Arg(1 << 10)->Arg(1 << 14);

void BM_RunProtocolDirectVisitX(benchmark::State& state) {
  run_protocol_trial_bench(state, /*registry_path=*/false, /*walks=*/true);
}
BENCHMARK(BM_RunProtocolDirectVisitX)->Arg(1 << 10)->Arg(1 << 14);

void BM_RunProtocolRegistryVisitX(benchmark::State& state) {
  run_protocol_trial_bench(state, /*registry_path=*/true, /*walks=*/true);
}
BENCHMARK(BM_RunProtocolRegistryVisitX)->Arg(1 << 10)->Arg(1 << 14);

// ---- Transmission-model series -----------------------------------------
//
// Uniform = the default push spec: tp=1, no interventions, i.e. the
// compile-time `transmission::Uniform` fast path whose attempt() folds
// away — trajectories are byte-identical to the pre-transmission engine.
// Heterogeneous = degree-scaled receive probabilities (tp=deg^-0.5)
// through the General instantiation: per-vertex field reads plus one
// success draw per state-changing delivery. Same graph, same seeds; the
// Uniform/Heterogeneous trials/sec ratio is the fast-path contract
// compare_bench.py gates (machine-independent): if the Uniform series
// slows down relative to the General one — e.g. a homogeneous-path branch
// or draw sneaks into the inner loop — the ratio drops and CI fails.

void push_transmission_bench(benchmark::State& state, const char* spec_text) {
  const auto n = static_cast<Vertex>(state.range(0));
  const Graph g = gen::circulant(n, 8);
  const auto spec = ProtocolSpec::parse(spec_text);
  TrialArena arena;
  std::uint64_t seed = 0;
  double acc = 0.0;
  for (auto _ : state) {
    acc += run_protocol(g, *spec, 0, ++seed, &arena).rounds;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}

void BM_PushTransmissionUniform(benchmark::State& state) {
  push_transmission_bench(state, "push");
}
BENCHMARK(BM_PushTransmissionUniform)->Arg(1 << 10)->Arg(1 << 14);

void BM_PushTransmissionHeterogeneous(benchmark::State& state) {
  push_transmission_bench(state, "push(tp=deg^-0.5)");
}
BENCHMARK(BM_PushTransmissionHeterogeneous)->Arg(1 << 10)->Arg(1 << 14);

// Walk-layer twin of the series above: visit-exchange on the Fig 1a star,
// the graph where the paper separates push from visit-exchange. Uniform is
// the default spec (tp=1 trivial model, zero per-visit transmission work);
// Heterogeneous is a constant tp=0.5 field — on the star deg^-0.5 would
// collapse the leaf probabilities to near-zero and turn every trial into a
// round-cutoff crawl, so the flat field is the honest walk-side measure of
// per-delivery skip-sampling overhead. Same gate shape as the push pair:
// compare_bench.py bounds the Uniform/Heterogeneous trials/sec ratio drift
// and caps the baseline ratio.
void walk_transmission_bench(benchmark::State& state, const char* spec_text) {
  const auto n = static_cast<Vertex>(state.range(0));
  const Graph g = gen::star(n);
  const auto spec = ProtocolSpec::parse(spec_text);
  TrialArena arena;
  std::uint64_t seed = 0;
  double acc = 0.0;
  for (auto _ : state) {
    acc += run_protocol(g, *spec, 0, ++seed, &arena).rounds;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}

void BM_WalkTransmissionUniform(benchmark::State& state) {
  walk_transmission_bench(state, "visit-exchange");
}
BENCHMARK(BM_WalkTransmissionUniform)->Arg(1 << 10)->Arg(1 << 12);

void BM_WalkTransmissionHeterogeneous(benchmark::State& state) {
  walk_transmission_bench(state, "visit-exchange(tp=0.5)");
}
BENCHMARK(BM_WalkTransmissionHeterogeneous)->Arg(1 << 10)->Arg(1 << 12);

// ---- Graph-backend series ----------------------------------------------
//
// Implicit (arithmetic adjacency) vs owned (materialized CSR) push trials
// on the same torus: trajectories are bit-identical — the implicit
// accessors reproduce the sorted CSR neighbor order slot-for-slot — so
// the Implicit/Owned trials/sec ratio is pure dispatch overhead (one
// backend branch plus the closed-form arithmetic per accessor against an
// array load). compare_bench.py gates the ratio: a drop means the
// implicit dispatch grew per-access work, which would silently tax every
// large-n implicit scenario.

void graph_backend_bench(benchmark::State& state, bool implicit_backend) {
  const auto rows = static_cast<Vertex>(state.range(0));
  const Graph g = [&] {
    if (implicit_backend) {
      ImplicitDesc desc;
      RUMOR_REQUIRE(
          make_implicit_desc(ImplicitKind::torus, rows, rows, desc));
      return Graph::make_implicit(desc);
    }
    return gen::torus2d(rows, rows);
  }();
  const auto spec = ProtocolSpec::parse("push");
  TrialArena arena;
  std::uint64_t seed = 0;
  double acc = 0.0;
  for (auto _ : state) {
    acc += run_protocol(g, *spec, 0, ++seed, &arena).rounds;
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations());
}

void BM_GraphBackendImplicitPush(benchmark::State& state) {
  graph_backend_bench(state, /*implicit_backend=*/true);
}
BENCHMARK(BM_GraphBackendImplicitPush)->Arg(1 << 5)->Arg(1 << 7);

void BM_GraphBackendOwnedPush(benchmark::State& state) {
  graph_backend_bench(state, /*implicit_backend=*/false);
}
BENCHMARK(BM_GraphBackendOwnedPush)->Arg(1 << 5)->Arg(1 << 7);

// ---- Cross-scenario scheduler series -----------------------------------
//
// A mixed-tail experiment file: long-tail push-on-star scenarios (coupon
// collector, hundreds of rounds) alternating with quick visit-exchange
// scenarios, every scenario with fewer trials than workers — the sweep
// shape, where per-scenario barriers idle most of the pool on each
// long-tail point. Barrier = one run_trial_batches call per scenario in
// sequence (the pre-sweep run_scenarios); Interleaved = ONE call draining
// all scenarios through the global (scenario, trial) queue. Same trials,
// same seeds, identical sample vectors — wall clock is the only
// difference, so the Interleaved/Barrier scenarios/sec ratio is the
// scheduling contract: ~1.0 on a single core (the shared queue costs
// nothing) and >1 with real parallelism (~2x at 4 cores). A fixed 4-worker
// pool keeps the ratio comparable across machines; compare_bench.py gates
// it with a widened threshold for core-count variation.

void scheduler_bench(benchmark::State& state, bool interleaved) {
  constexpr std::size_t kScenarios = 8;
  constexpr std::size_t kTrials = 2;
  const Graph slow_g = gen::star(512);
  const Graph fast_g = gen::circulant(512, 4);
  const ProtocolSpec slow_spec = default_spec(Protocol::push);
  const ProtocolSpec fast_spec = default_spec(Protocol::visit_exchange);
  ThreadPool pool(4);
  std::vector<TrialSet> sets(kScenarios);
  std::vector<TrialBatch> batches(kScenarios);
  for (std::size_t i = 0; i < kScenarios; ++i) {
    const bool slow = i % 2 == 0;
    batches[i].graph = slow ? &slow_g : &fast_g;
    batches[i].protocol = slow ? &slow_spec : &fast_spec;
    batches[i].source = slow ? 1 : 0;  // leaf source = push's hard case
    batches[i].trials = kTrials;
    batches[i].master_seed = 100 + i;
    batches[i].out = &sets[i];
  }
  for (auto _ : state) {
    if (interleaved) {
      run_trial_batches(batches, {}, &pool);
    } else {
      for (const TrialBatch& batch : batches) {
        run_trial_batches({batch}, {}, &pool);
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * kScenarios);
}

// UseRealTime: the work happens on pool threads, so the main thread's CPU
// clock (the default rate denominator) would measure only its own
// blocking overhead.
void BM_SchedulerBarrier(benchmark::State& state) {
  scheduler_bench(state, /*interleaved=*/false);
}
BENCHMARK(BM_SchedulerBarrier)->UseRealTime();

void BM_SchedulerInterleaved(benchmark::State& state) {
  scheduler_bench(state, /*interleaved=*/true);
}
BENCHMARK(BM_SchedulerInterleaved)->UseRealTime();

// ---- Frontier-sharded round series -------------------------------------
//
// One trial on the whole pool: the 10^7-leaf implicit star (O(1) graph
// memory, so the benchmark measures kernels, not allocation). The 1/K
// pairs run the SAME sharded engine — identical trajectories by
// construction — at width 1 vs. width 4 on a fixed 4-worker pool, so the
// K/1 ratio isolates what the range fan-out buys. Like the scheduler
// series the ratio is ~1.0 on a single core (fan-out costs nothing but
// buys nothing) and >=2.5 with 4 real cores; compare_bench.py gates it
// with the widened cross-machine threshold.
//
// BM_ShardedPush: a trial's dominant cost on the star is the hub's
// informed-neighbor bump (10^7 counter adds inside inform()), the
// parallel-bump path for deg >= 2^16. BM_ShardedWalk: one sharded kernel
// pass over 10^7 walkers, per-slot Philox draws.

constexpr std::uint64_t kHugeStarLeaves = 10'000'000;
constexpr Round kShardedPushRounds = 4;

const Graph& huge_star() {
  static const Graph g = [] {
    ImplicitDesc desc;
    std::string why;
    RUMOR_REQUIRE(
        make_implicit_desc(ImplicitKind::star, kHugeStarLeaves, 0, desc, &why));
    return Graph::make_implicit(desc);
  }();
  return g;
}

void sharded_push_bench(benchmark::State& state, std::uint32_t shards) {
  const Graph& g = huge_star();
  ThreadPool pool(4);
  ThreadPool* prev = set_shard_pool(&pool);
  PushOptions opt;
  opt.shards = shards;
  opt.max_rounds = kShardedPushRounds;
  TrialArena arena;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    PushProcess p(g, 0, seed++, opt, &arena);
    benchmark::DoNotOptimize(p.run().informed);
  }
  set_shard_pool(prev);
  state.SetItemsProcessed(state.iterations() * kShardedPushRounds);
  state.counters["rounds_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kShardedPushRounds,
      benchmark::Counter::kIsRate);
}

void BM_ShardedPush1(benchmark::State& state) { sharded_push_bench(state, 1); }
BENCHMARK(BM_ShardedPush1)->UseRealTime();

void BM_ShardedPushK(benchmark::State& state) { sharded_push_bench(state, 4); }
BENCHMARK(BM_ShardedPushK)->UseRealTime();

void sharded_walk_bench(benchmark::State& state, std::uint32_t shards) {
  const Graph& g = huge_star();
  const auto n = g.num_vertices();
  ThreadPool pool(4);
  ThreadPool* prev = set_shard_pool(&pool);
  std::vector<Vertex> positions(n);
  for (Vertex v = 0; v < n; ++v) positions[v] = v;
  std::uint64_t round = 0;
  for (auto _ : state) {
    step_walks_sharded(g, positions, /*trial_seed=*/7, ++round,
                       Laziness::none, shards);
  }
  set_shard_pool(prev);
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["steps_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * n, benchmark::Counter::kIsRate);
}

void BM_ShardedWalk1(benchmark::State& state) { sharded_walk_bench(state, 1); }
BENCHMARK(BM_ShardedWalk1)->UseRealTime();

void BM_ShardedWalkK(benchmark::State& state) { sharded_walk_bench(state, 4); }
BENCHMARK(BM_ShardedWalkK)->UseRealTime();

// BM_ShardedMeet / BM_ShardedHybrid: whole sharded trials of the two
// simulators this series now covers — 10^7 + 1 agents (one per vertex, so
// construction is a deterministic fill rather than 10^7 alias-sampler
// draws) stepping on the huge star for kShardedPushRounds rounds. The
// process constructor is serial at either width and would dilute the K/1
// ratio, so it runs under PauseTiming; the timed region is exactly the
// sharded round loop (walk kernel + mark/meet or push/pull/agent passes +
// serial merges).

void sharded_meet_bench(benchmark::State& state, std::uint32_t shards) {
  const Graph& g = huge_star();
  ThreadPool pool(4);
  ThreadPool* prev = set_shard_pool(&pool);
  WalkOptions opt = MeetExchangeProcess::default_options();
  opt.shards = shards;
  opt.max_rounds = kShardedPushRounds;
  opt.placement = Placement::one_per_vertex;
  opt.agent_count = g.num_vertices();
  TrialArena arena;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    MeetExchangeProcess p(g, 0, seed++, opt, &arena);
    state.ResumeTiming();
    benchmark::DoNotOptimize(p.run().informed);
  }
  set_shard_pool(prev);
  state.SetItemsProcessed(state.iterations() * kShardedPushRounds);
  state.counters["rounds_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kShardedPushRounds,
      benchmark::Counter::kIsRate);
}

void BM_ShardedMeet1(benchmark::State& state) { sharded_meet_bench(state, 1); }
BENCHMARK(BM_ShardedMeet1)->UseRealTime();

void BM_ShardedMeetK(benchmark::State& state) { sharded_meet_bench(state, 4); }
BENCHMARK(BM_ShardedMeetK)->UseRealTime();

void sharded_hybrid_bench(benchmark::State& state, std::uint32_t shards) {
  const Graph& g = huge_star();
  ThreadPool pool(4);
  ThreadPool* prev = set_shard_pool(&pool);
  WalkOptions opt;
  opt.shards = shards;
  opt.max_rounds = kShardedPushRounds;
  opt.placement = Placement::one_per_vertex;
  opt.agent_count = g.num_vertices();
  TrialArena arena;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    HybridProcess p(g, 0, seed++, opt, &arena);
    state.ResumeTiming();
    benchmark::DoNotOptimize(p.run().informed);
  }
  set_shard_pool(prev);
  state.SetItemsProcessed(state.iterations() * kShardedPushRounds);
  state.counters["rounds_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kShardedPushRounds,
      benchmark::Counter::kIsRate);
}

void BM_ShardedHybrid1(benchmark::State& state) {
  sharded_hybrid_bench(state, 1);
}
BENCHMARK(BM_ShardedHybrid1)->UseRealTime();

void BM_ShardedHybridK(benchmark::State& state) {
  sharded_hybrid_bench(state, 4);
}
BENCHMARK(BM_ShardedHybridK)->UseRealTime();

// BM_ShardedCsrBuild: the owned-CSR construction path at explicit width 1
// vs. 4 on the same fixed pool. The input is a 10^7-edge degree-4
// circulant emitted in a strided permutation (stride coprime to m), so
// the parallel chunk-sort + merge does real reordering work instead of
// detecting sorted input. Content is byte-identical across widths (the
// tier-1 ShardedCsrBuild tests pin that), so the K/1 ratio is pure
// build-parallelism: sort, reverse-index, degree count, and the
// first-touch row fill.

constexpr Vertex kCsrBuildVertices = 5'000'000;

const std::vector<std::pair<Vertex, Vertex>>& huge_edge_list() {
  static const std::vector<std::pair<Vertex, Vertex>> edges = [] {
    const std::size_t m = std::size_t{2} * kCsrBuildVertices;
    constexpr std::size_t kStride = 7919;  // prime, coprime to m = 2^a 5^b
    std::vector<std::pair<Vertex, Vertex>> out(m);
    for (std::size_t e = 0; e < m; ++e) {
      const auto u = static_cast<Vertex>(e % kCsrBuildVertices);
      const auto v = static_cast<Vertex>(
          (u + 1 + e / kCsrBuildVertices) % kCsrBuildVertices);
      out[(e * kStride) % m] = {u, v};
    }
    return out;
  }();
  return edges;
}

void sharded_csr_build_bench(benchmark::State& state, std::uint32_t shards) {
  const auto& edges = huge_edge_list();
  ThreadPool pool(4);
  ThreadPool* prev = set_shard_pool(&pool);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Graph::build_owned(kCsrBuildVertices, edges, shards).num_edges());
  }
  set_shard_pool(prev);
  state.SetItemsProcessed(state.iterations() * edges.size());
  state.counters["edges_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * edges.size(),
      benchmark::Counter::kIsRate);
}

void BM_ShardedCsrBuild1(benchmark::State& state) {
  sharded_csr_build_bench(state, 1);
}
BENCHMARK(BM_ShardedCsrBuild1)->UseRealTime();

void BM_ShardedCsrBuildK(benchmark::State& state) {
  sharded_csr_build_bench(state, 4);
}
BENCHMARK(BM_ShardedCsrBuildK)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    // Exact flag (or --benchmark_out=path); must not match
    // --benchmark_out_format, which alone should still get the default
    // JSON artifact.
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0 ||
        std::strcmp(argv[i], "--benchmark_out") == 0) {
      has_out = true;
    }
  }
  std::string out_flag;
  std::string format_flag;
  if (!has_out) {
    std::string path = "BENCH_micro.json";
    if (const char* dir = std::getenv("RUMOR_RESULTS_DIR")) {
      path = std::string(dir) + "/" + path;
    }
    out_flag = "--benchmark_out=" + path;
    format_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

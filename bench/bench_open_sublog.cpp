// E18 — §9 open problem, probed empirically:
//
//   "The most obvious question to ask is whether our results for regular
//    graphs hold also when the graph degree is sub-logarithmic."
//
// Theorem 1's proof needs d = Ω(log n); nothing is known below. We measure
// T_push / T_visitx on constant-degree regular families (cycle d=2, torus
// d=4, random 3- and 5-regular) across sizes and report whether the ratio
// looks constant (evidence the theorem extends) or drifts. The verdict
// lines here are REPORTS, not pass/fail reproductions — the paper makes no
// claim in this regime.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "graph/generators.hpp"

namespace {

using namespace rumor;
using namespace rumor::bench;

struct FamilyCase {
  std::string name;
  std::vector<std::pair<double, GraphSpec>> sizes;
};

std::vector<FamilyCase> cases() {
  std::vector<FamilyCase> out;
  FamilyCase cyc{"cycle(d=2)", {}};
  for (Vertex n : {256, 512, 1024, 2048}) {
    cyc.sizes.push_back({double(n), GraphSpec{Family::cycle, n}});
  }
  out.push_back(cyc);
  FamilyCase tor{"torus(d=4)", {}};
  for (Vertex side : {16, 24, 32, 48}) {
    tor.sizes.push_back({double(side) * side,
                         GraphSpec{Family::torus, side, side}});
  }
  out.push_back(tor);
  FamilyCase r3{"random-3-regular", {}};
  for (Vertex n : {1 << 10, 1 << 11, 1 << 12, 1 << 13}) {
    r3.sizes.push_back({double(n), GraphSpec{Family::random_regular, n, 3}});
  }
  out.push_back(r3);
  FamilyCase r5{"random-5-regular", {}};
  for (Vertex n : {1 << 10, 1 << 11, 1 << 12, 1 << 13}) {
    r5.sizes.push_back({double(n), GraphSpec{Family::random_regular, n, 5}});
  }
  out.push_back(r5);
  return out;
}

void register_all() {
  for (const auto& fc : cases()) {
    for (const auto& [x, gspec] : fc.sizes) {
      for (Protocol p : {Protocol::push, Protocol::visit_exchange}) {
        const std::string series = fc.name + "/" + protocol_name(p);
        register_point(
            "sublog/" + series + "/n=" + std::to_string(long(x)),
            [x, gspec, p, series](benchmark::State& state) {
              Rng rng(master_seed() ^ 0x5AB106u);
              const Graph g = gspec.make(rng);
              measure_point(state, series, x, g, default_spec(p), 0,
                            trials_or(15));
            });
      }
    }
  }
}

void report() {
  auto& registry = SeriesRegistry::instance();
  std::printf(
      "\n=== E18 — open problem: does Theorem 1 extend below log-degree? "
      "===\n");
  for (const auto& fc : cases()) {
    const auto push = registry.series(fc.name + "/push");
    const auto visitx = registry.series(fc.name + "/visit-exchange");
    std::printf("%s\n",
                series_table({fc.name + "/push", fc.name + "/visit-exchange"})
                    .c_str());
    double lo = 1e300, hi = 0;
    for (std::size_t i = 0; i < push.points.size(); ++i) {
      const double r =
          push.points[i].summary.mean / visitx.points[i].summary.mean;
      lo = std::min(lo, r);
      hi = std::max(hi, r);
    }
    // Built up with += to sidestep a GCC 12 -Wrestrict false positive
    // (PR105651) on chained const char* + std::string concatenation.
    std::string measured = "[";
    measured += TextTable::num(lo, 2);
    measured += ", ";
    measured += TextTable::num(hi, 2);
    measured += "], spread ";
    measured += TextTable::num(hi / lo, 2);
    measured += hi / lo <= 2.0 ? "x — consistent with an extension"
                               : "x — noticeable drift";
    print_claim(true,  // informational: the paper makes no claim here
                "E18 [" + fc.name + "]: T_push/T_visitx ratio across sweep",
                measured);
  }
  maybe_dump_csv("open_sublog", registry.all());
}

}  // namespace

RUMOR_BENCH_MAIN(register_all, report)

// E8 — Theorems 24 & 25: on any d-regular graph with d = Ω(log n),
// T_visitx and T_meetx are Ω(log n) w.h.p., with |A| = O(n) agents.
//
// We measure the MINIMUM broadcast time over many trials (the w.h.p. lower
// bound binds the whole distribution) on the most favorable regular graphs
// — complete graphs and dense circulants — and check min T / ln n stays
// bounded away from zero while n grows 64x.
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "graph/generators.hpp"

namespace {

using namespace rumor;
using namespace rumor::bench;

// Complete graphs are quadratic in memory, so they stop at 2^12; the dense
// circulant (m = n log n) carries the sweep up to 2^16.
const std::vector<Vertex> kCompleteSizes = {1 << 9, 1 << 10, 1 << 11,
                                            1 << 12};
const std::vector<Vertex> kCirculantSizes = {1 << 10, 1 << 12, 1 << 14,
                                             1 << 16};

void register_all() {
  for (const bool complete_graph : {true, false}) {
    const std::string family = complete_graph ? "complete" : "circulant";
    for (Vertex n : complete_graph ? kCompleteSizes : kCirculantSizes) {
      for (Protocol p :
           {Protocol::visit_exchange, Protocol::meet_exchange}) {
        const std::string series = family + "/" + protocol_name(p);
        register_point(
            "lb/" + series + "/n=" + std::to_string(n),
            [n, p, series, complete_graph](benchmark::State& state) {
              // Dense circulant: degree ~ 4 log2 n.
              const Graph g =
                  complete_graph
                      ? gen::complete(n)
                      : gen::circulant(
                            n, static_cast<std::uint32_t>(
                                   2 * std::log2(static_cast<double>(n))));
              measure_point(state, series, static_cast<double>(n), g,
                            default_spec(p), 0, trials_or(20));
            });
      }
    }
  }
}

void report() {
  auto& registry = SeriesRegistry::instance();
  std::printf(
      "\n=== Theorems 24/25 — Omega(log n) lower bounds for the agent "
      "protocols ===\n");
  std::printf("%s\n", series_table({"complete/visit-exchange",
                                    "complete/meet-exchange",
                                    "circulant/visit-exchange",
                                    "circulant/meet-exchange"})
                          .c_str());
  for (const std::string series :
       {"complete/visit-exchange", "complete/meet-exchange",
        "circulant/visit-exchange", "circulant/meet-exchange"}) {
    const auto s = registry.series(series);
    double min_coeff = 1e300;
    for (const auto& pt : s.points) {
      min_coeff = std::min(min_coeff, pt.summary.min / std::log(pt.n));
    }
    print_claim(min_coeff > 0.25,
                "Thm 24/25 [" + series + "]: min T / ln n bounded below",
                "min coefficient across sizes = " +
                    TextTable::num(min_coeff, 3));
  }
  maybe_dump_csv("thm_lower_bounds", registry.all());
}

}  // namespace

RUMOR_BENCH_MAIN(register_all, report)

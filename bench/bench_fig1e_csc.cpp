// E5 — Figure 1(e) / Lemma 9: the cycle of stars of cliques (k hubs in a
// ring, k star leaves per hub, a (k+1)-clique per leaf; n = k + k² + k³).
//
// Paper claims: E[T_visitx] = O(n^{2/3}) and E[T_meetx] = Ω(n^{2/3} log n).
// This is the only (almost-)regular separation in the paper, and the gap is
// a log factor, so the check is (i) both fit exponent ≈ 2/3 in n, and
// (ii) the meetx/visitx ratio GROWS with n.
#include <cstdio>

#include "common.hpp"
#include "graph/generators.hpp"

namespace {

using namespace rumor;
using namespace rumor::bench;

const std::vector<Vertex> kParams = {6, 8, 11, 14, 18,
                                     23};  // k; n = k + k^2 + k^3

void register_all() {
  for (Vertex k : kParams) {
    const double n = static_cast<double>(k) + static_cast<double>(k) * k +
                     static_cast<double>(k) * k * k;
    for (Protocol p : {Protocol::visit_exchange, Protocol::meet_exchange}) {
      const std::string series = protocol_name(p);
      register_point("fig1e/" + series + "/k=" + std::to_string(k),
                     [k, n, p, series](benchmark::State& state) {
                       const Graph g = gen::cycle_stars_cliques(k);
                       // Source inside a clique Q_{0,0} (the paper's setup).
                       const Vertex source = k + k * k;
                       measure_point(state, series, n, g, default_spec(p),
                                     source, trials_or(15));
                     });
    }
  }
}

void report() {
  auto& registry = SeriesRegistry::instance();
  std::printf(
      "\n=== Figure 1(e) / Lemma 9 — cycle of stars of cliques, clique "
      "source ===\n");
  std::printf("%s\n",
              series_table({"visit-exchange", "meet-exchange"}).c_str());

  const auto visitx = registry.series("visit-exchange");
  const auto meetx = registry.series("meet-exchange");

  // Upper-bound claim: the exponent must be clearly polynomial yet at most
  // ~2/3 (log-term corrections pull the small-k fit below 2/3, which is
  // still consistent with the O(n^{2/3}) bound).
  const LawVerdict visitx_law = classify_series(visitx);
  print_claim(visitx_law.power_exponent > 0.25 &&
                  visitx_law.power_exponent < 0.85,
              "Lemma 9(a): E[T_visitx] = O(n^{2/3})",
              "fit: " + visitx_law.describe());
  const LawVerdict meetx_law = classify_series(meetx);
  print_claim(meetx_law.power_exponent > visitx_law.power_exponent,
              "Lemma 9(b): E[T_meetx] = Omega(n^{2/3} log n) — steeper than "
              "visitx",
              "fit: " + meetx_law.describe());

  // The ratio meetx/visitx should increase across sizes (log-factor gap).
  double first_ratio = 0.0, last_ratio = 0.0;
  if (!visitx.points.empty() && visitx.points.size() == meetx.points.size()) {
    first_ratio = meetx.points.front().summary.mean /
                  visitx.points.front().summary.mean;
    last_ratio =
        meetx.points.back().summary.mean / visitx.points.back().summary.mean;
  }
  print_claim(last_ratio > 1.0 && last_ratio >= 0.9 * first_ratio,
              "gap: T_meetx/T_visitx > 1 and non-shrinking in n",
              "ratio " + TextTable::num(first_ratio, 2) + " -> " +
                  TextTable::num(last_ratio, 2));

  maybe_dump_csv("fig1e_csc", registry.all());
}

}  // namespace

RUMOR_BENCH_MAIN(register_all, report)

// E3 — Figure 1(c) / Lemma 4: the heavy binary tree B_n (balanced binary
// tree plus a clique over the leaves).
//
// Paper claims: T_push = O(log n) w.h.p.; E[T_visitx] = Ω(n) (nearly all
// stationary mass sits on the leaf clique, so the root waits Θ(n) rounds
// for its first agent); from a LEAF source, T_meetx = O(log n) w.h.p.
// — the converse separation: here rumor spreading beats the walkers.
#include <cstdio>

#include "common.hpp"
#include "graph/generators.hpp"

namespace {

using namespace rumor;
using namespace rumor::bench;

const std::vector<Vertex> kSizes = {(1 << 10) - 1, (1 << 11) - 1,
                                    (1 << 12) - 1, (1 << 13) - 1};

void register_all() {
  for (Vertex n : kSizes) {
    for (Protocol p : {Protocol::push, Protocol::visit_exchange,
                       Protocol::meet_exchange}) {
      const std::string series = protocol_name(p);
      register_point("fig1c/" + series + "/n=" + std::to_string(n),
                     [n, p, series](benchmark::State& state) {
                       const Graph g = gen::heavy_binary_tree(n);
                       // Leaf source (Lemma 4(c) requires it for meetx).
                       measure_point(state, series, static_cast<double>(n), g,
                                     default_spec(p), /*source=*/n - 1,
                                     trials_or(15));
                     });
    }
  }
}

void report() {
  auto& registry = SeriesRegistry::instance();
  std::printf(
      "\n=== Figure 1(c) / Lemma 4 — heavy binary tree B_n, leaf source "
      "===\n");
  std::printf("%s\n",
              series_table({"push", "visit-exchange", "meet-exchange"})
                  .c_str());

  const auto push = registry.series("push");
  const auto visitx = registry.series("visit-exchange");
  const auto meetx = registry.series("meet-exchange");

  const LawVerdict push_law = classify_series(push);
  print_claim(push_law.power_exponent < 0.35,
              "Lemma 4(a): T_push = O(log n)", "fit: " + push_law.describe());
  const LawVerdict visitx_law = classify_series(visitx);
  print_claim(visitx_law.power_exponent > 0.7,
              "Lemma 4(b): E[T_visitx] = Omega(n)",
              "fit: " + visitx_law.describe());
  const LawVerdict meetx_law = classify_series(meetx);
  print_claim(meetx_law.power_exponent < 0.35,
              "Lemma 4(c): T_meetx = O(log n) from a leaf source",
              "fit: " + meetx_law.describe());
  print_claim(max_ratio(push, visitx) < 0.5,
              "separation: visit-exchange >> push on the heavy tree",
              "max T_push/T_visitx across sizes = " +
                  TextTable::num(max_ratio(push, visitx), 4));

  maybe_dump_csv("fig1c_heavy_tree", registry.all());
}

}  // namespace

RUMOR_BENCH_MAIN(register_all, report)

// E14 — the Section 5/6 proof machinery, measured.
//
// For the Section 5 coupling we report, per size: T_visitx, the coupled
// T_push, the maximum C-counter (the congestion bound on T_push), the
// congestion-per-round constant max_u C_u(t_u) / T_visitx (Theorem 10 says
// it is O(1)), and the Lemma 13 violation count (must be 0 — the lemma is
// almost-sure). For Section 6 we report the empirical Lemma 22 constant
// max_u t'_u / (τ_u + ln n).
#include <cstdio>

#include "common.hpp"
#include "core/coupling/coupled_push_visitx.hpp"
#include "core/coupling/odd_even_coupling.hpp"
#include "graph/generators.hpp"

namespace {

using namespace rumor;
using namespace rumor::bench;

const std::vector<Vertex> kSizes = {1 << 8, 1 << 9, 1 << 10, 1 << 11};

void register_all() {
  for (Vertex n : kSizes) {
    register_point(
        "coupling/sec5/n=" + std::to_string(n),
        [n](benchmark::State& state) {
          Rng rng(master_seed() ^ 0xC0DEu);
          const Graph g = gen::random_regular(n, 14, rng);
          std::vector<double> t_visitx, t_push, max_c, c_ratio;
          std::size_t violations = 0;
          for (auto _ : state) {
            for (std::size_t i = 0; i < trials_or(10); ++i) {
              CoupledPushVisitx coupled(g, 0, derive_seed(master_seed(), i));
              const CoupledResult r = coupled.run();
              if (!r.lemma13_holds) ++violations;
              t_visitx.push_back(static_cast<double>(r.visitx_rounds));
              t_push.push_back(static_cast<double>(r.push_rounds));
              max_c.push_back(static_cast<double>(r.max_ccounter));
              c_ratio.push_back(static_cast<double>(r.max_ccounter) /
                                static_cast<double>(r.visitx_rounds));
            }
          }
          auto& reg = SeriesRegistry::instance();
          reg.record("T_visitx", n, Summary::of(t_visitx));
          reg.record("T_push(coupled)", n, Summary::of(t_push));
          reg.record("max C_u(t_u)", n, Summary::of(max_c));
          reg.record("congestion/round", n, Summary::of(c_ratio));
          reg.record("lemma13 violations", n,
                     Summary::of(std::vector<double>{
                         static_cast<double>(violations)}));
          state.counters["violations"] = static_cast<double>(violations);
        });

    register_point(
        "coupling/sec6/n=" + std::to_string(n),
        [n](benchmark::State& state) {
          Rng rng(master_seed() ^ 0x0DDEu);
          const Graph g = gen::random_regular(n, 14, rng);
          std::vector<double> ratios;
          for (auto _ : state) {
            for (std::size_t i = 0; i < trials_or(10); ++i) {
              const OddEvenResult r =
                  run_odd_even_coupling(g, 0, derive_seed(master_seed(), i));
              if (r.push_completed && r.visitx_completed) {
                ratios.push_back(r.max_ratio);
              }
            }
          }
          SeriesRegistry::instance().record("lemma22 constant", n,
                                            Summary::of(ratios));
          state.counters["max_ratio"] = Summary::of(ratios).max;
        });
  }
}

void report() {
  auto& registry = SeriesRegistry::instance();
  std::printf(
      "\n=== E14 — executable Section 5/6 couplings (random 14-regular) "
      "===\n");
  std::printf("%s\n",
              series_table({"T_visitx", "T_push(coupled)", "max C_u(t_u)",
                            "congestion/round", "lemma22 constant"})
                  .c_str());

  double total_violations = 0;
  for (const auto& pt : registry.series("lemma13 violations").points) {
    total_violations += pt.summary.mean;
  }
  print_claim(total_violations == 0,
              "Lemma 13 holds a.s. under the coupling (tau_u <= C_u(t_u))",
              TextTable::num(total_violations, 0) + " violations");

  const auto c_ratio = registry.series("congestion/round");
  double worst = 0;
  for (const auto& pt : c_ratio.points) worst = std::max(worst, pt.summary.max);
  print_claim(worst < 25.0,
              "Theorem 10: congestion max_u C_u(t_u) = O(T_visitx), small "
              "constant",
              "worst congestion/round = " + TextTable::num(worst, 2));

  const auto lemma22 = registry.series("lemma22 constant");
  double worst22 = 0;
  for (const auto& pt : lemma22.points) {
    worst22 = std::max(worst22, pt.summary.max);
  }
  print_claim(worst22 < 40.0,
              "Lemma 22: t'_u <= c (tau_u + ln n) with modest c",
              "worst empirical c = " + TextTable::num(worst22, 2));

  maybe_dump_csv("coupling", registry.all());
}

}  // namespace

RUMOR_BENCH_MAIN(register_all, report)

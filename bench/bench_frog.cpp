// E20 — related-work §2 comparison: the frog model (sleeping walkers woken
// by visits) vs visit-exchange vs push.
//
// The frog model starts with one walker and recruits; visit-exchange starts
// with Θ(n) walkers. On expanders both are logarithmic; on the heavy tree
// the frog model inherits visit-exchange's Ω(n) root-starvation problem
// only PARTIALLY (woken leaf frogs stay near the clique, but the awake
// population grows), so the comparison maps out where recruitment helps.
#include <cstdio>

#include "common.hpp"
#include "graph/generators.hpp"

namespace {

using namespace rumor;
using namespace rumor::bench;

struct Case {
  std::string family;
  GraphSpec spec;
  Vertex source;
  double x;
};

std::vector<Case> cases() {
  std::vector<Case> out;
  for (Vertex n : {1 << 10, 1 << 11, 1 << 12}) {
    out.push_back({"random-regular",
                   GraphSpec{Family::random_regular, n, 12}, 0, double(n)});
  }
  for (Vertex n : {(1 << 10) - 1, (1 << 11) - 1, (1 << 12) - 1}) {
    out.push_back({"heavy-tree", GraphSpec{Family::heavy_tree, n},
                   static_cast<Vertex>(n - 1), double(n)});
  }
  return out;
}

void register_all() {
  for (const auto& c : cases()) {
    register_point(
        "frog/" + c.family + "/n=" + std::to_string(long(c.x)),
        [c](benchmark::State& state) {
          Rng rng(master_seed() ^ 0xF406u);
          const Graph g = c.spec.make(rng);
          // All three protocols go through the unified registry path:
          // run_trials fans the trials over the pool with per-worker
          // arenas, so the timed section measures protocol cost.
          TrialSet frog;
          for (auto _ : state) {
            frog = run_trials(g, default_spec(Protocol::frog), c.source,
                              trials_or(12), master_seed());
          }
          auto& reg = SeriesRegistry::instance();
          reg.record(c.family + "/frog", c.x, frog.summary());
          const TrialSet push =
              run_trials(g, default_spec(Protocol::push), c.source,
                         trials_or(12), master_seed() + 1);
          const TrialSet visitx =
              run_trials(g, default_spec(Protocol::visit_exchange), c.source,
                         trials_or(12), master_seed() + 2);
          reg.record(c.family + "/push", c.x, push.summary());
          reg.record(c.family + "/visit-exchange", c.x, visitx.summary());
        });
  }
}

void report() {
  auto& registry = SeriesRegistry::instance();
  std::printf("\n=== E20 — frog model vs the paper's protocols ===\n");
  for (const std::string family : {"random-regular", "heavy-tree"}) {
    std::printf("%s\n", series_table({family + "/push",
                                      family + "/visit-exchange",
                                      family + "/frog"})
                            .c_str());
  }
  const auto rr_frog = registry.series("random-regular/frog");
  const auto rr_visitx = registry.series("random-regular/visit-exchange");
  print_claim(classify_series(rr_frog).power_exponent < 0.35,
              "E20: frog model is polylogarithmic on expanders",
              "fit: " + classify_series(rr_frog).describe());
  const auto ht_frog = registry.series("heavy-tree/frog");
  const auto ht_visitx = registry.series("heavy-tree/visit-exchange");
  print_claim(ht_frog.points.back().summary.mean <
                  ht_visitx.points.back().summary.mean,
              "E20: recruitment makes frogs faster than visit-exchange on "
              "the heavy tree",
              "at the largest size: frog " +
                  TextTable::num(ht_frog.points.back().summary.mean, 1) +
                  " vs visitx " +
                  TextTable::num(ht_visitx.points.back().summary.mean, 1));
  maybe_dump_csv("frog", registry.all());
}

}  // namespace

RUMOR_BENCH_MAIN(register_all, report)

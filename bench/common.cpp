#include "common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "experiments/scenario.hpp"

namespace rumor::bench {

std::size_t trials_or(std::size_t default_trials) {
  if (const char* env = std::getenv("RUMOR_TRIALS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 3) return static_cast<std::size_t>(v);
  }
  return default_trials;
}

std::uint64_t master_seed() {
  if (const char* env = std::getenv("RUMOR_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20190729ULL;
}

SeriesRegistry& SeriesRegistry::instance() {
  static SeriesRegistry registry;
  return registry;
}

void SeriesRegistry::record(const std::string& series, double x,
                            const Summary& summary) {
  for (auto& s : series_) {
    if (s.label == series) {
      s.points.push_back({x, summary});
      return;
    }
  }
  series_.push_back({series, {{x, summary}}});
}

ScalingSeries SeriesRegistry::series(const std::string& label) const {
  for (const auto& s : series_) {
    if (s.label == label) {
      ScalingSeries sorted = s;
      std::sort(sorted.points.begin(), sorted.points.end(),
                [](const ScalePoint& a, const ScalePoint& b) {
                  return a.n < b.n;
                });
      return sorted;
    }
  }
  return {label, {}};
}

std::vector<ScalingSeries> SeriesRegistry::all() const {
  std::vector<ScalingSeries> out;
  out.reserve(series_.size());
  for (const auto& s : series_) out.push_back(series(s.label));
  return out;
}

void register_point(const std::string& name,
                    std::function<void(benchmark::State&)> body) {
  benchmark::RegisterBenchmark(name.c_str(),
                               [body = std::move(body)](benchmark::State& st) {
                                 body(st);
                               })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

namespace {

Summary finish_point(benchmark::State& state, const std::string& series,
                     double x, const TrialSet& set) {
  const Summary summary = set.summary();
  SeriesRegistry::instance().record(series, x, summary);
  state.counters["mean_rounds"] = summary.mean;
  state.counters["sd"] = summary.stddev;
  state.counters["incomplete"] = static_cast<double>(set.incomplete);
  return summary;
}

}  // namespace

Summary measure_point(benchmark::State& state, const std::string& series,
                      double x, const Graph& g, const ProtocolSpec& spec,
                      Vertex source, std::size_t trials) {
  TrialSet set;
  for (auto _ : state) {
    set = run_trials(g, spec, source, trials, master_seed());
  }
  return finish_point(state, series, x, set);
}

Summary measure_point_fresh(benchmark::State& state,
                            const std::string& series, double x,
                            const GraphSpec& graph_spec,
                            const ProtocolSpec& spec, Vertex source,
                            std::size_t trials) {
  TrialSet set;
  for (auto _ : state) {
    set = run_trials_fresh_graph(graph_spec, spec, source, trials,
                                 master_seed());
  }
  return finish_point(state, series, x, set);
}

Summary measure_scenario(benchmark::State& state, const std::string& series,
                         double x, const std::string& scenario_line) {
  std::string error;
  auto scenario = ScenarioSpec::parse(scenario_line, &error);
  if (!scenario) {
    std::fprintf(stderr, "bad scenario \"%s\": %s\n", scenario_line.c_str(),
                 error.c_str());
  }
  RUMOR_REQUIRE(scenario.has_value());
  // Env knobs override the line's plan only when actually set (matching
  // trials_or, which keeps the line's trial count otherwise).
  scenario->plan.trials = trials_or(scenario->plan.trials);
  if (std::getenv("RUMOR_SEED") != nullptr) {
    scenario->plan.seed = master_seed();
  }
  std::optional<ScenarioResult> result;
  for (auto _ : state) {
    result = run_scenario(*scenario, &error);
  }
  if (!result) {
    std::fprintf(stderr, "scenario \"%s\": %s\n", scenario_line.c_str(),
                 error.c_str());
  }
  RUMOR_REQUIRE(result.has_value());
  return finish_point(state, series, x, result->set);
}

std::string series_table(const std::vector<std::string>& series_labels,
                         const std::string& x_header) {
  auto& registry = SeriesRegistry::instance();
  std::vector<ScalingSeries> series;
  series.reserve(series_labels.size());
  for (const auto& label : series_labels) {
    series.push_back(registry.series(label));
  }

  std::vector<std::string> header{x_header};
  for (const auto& s : series) header.push_back(s.label);
  TextTable table(header);

  // Row per distinct x across all series (series may cover different sizes).
  std::vector<double> xs;
  for (const auto& s : series) {
    for (const auto& p : s.points) xs.push_back(p.n);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  for (double x : xs) {
    const bool integral = x == std::floor(x);
    std::vector<std::string> row{TextTable::num(x, integral ? 0 : 4)};
    for (const auto& s : series) {
      const auto it =
          std::find_if(s.points.begin(), s.points.end(),
                       [x](const ScalePoint& p) { return p.n == x; });
      row.push_back(it != s.points.end() ? fmt_mean_pm(it->summary) : "-");
    }
    table.add_row(std::move(row));
  }
  return table.render_plain();
}

}  // namespace rumor::bench

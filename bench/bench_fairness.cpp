// E11 — §1's "locally fair bandwidth" claim, measured.
//
// On the double star, push-pull selects the center-center bridge with
// probability O(1/n) per round while visit-exchange routes agents across
// it at constant rate — this is WHY the agent protocols win Fig. 1(b).
// We trace per-edge utilization for both protocols over a fixed horizon and
// report (i) bridge crossings per round and (ii) the starvation statistic
// min-edge/mean-edge utilization ("all edges are used with the same
// frequency" means this ratio is Θ(1); push-pull starves the bridge, so
// its ratio collapses to O(1/n)).
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "core/push_pull.hpp"
#include "core/visit_exchange.hpp"
#include "graph/generators.hpp"

namespace {

using namespace rumor;
using namespace rumor::bench;

constexpr Vertex kLeaves = 1 << 11;
constexpr Round kHorizon = 400;  // fixed window for rate estimation

struct TrafficStats {
  double bridge_per_round = 0.0;
  double min_over_mean = 0.0;  // starvation statistic
};

TrafficStats traffic_stats(std::span<const std::uint64_t> edge_traffic,
                           Round rounds, EdgeId bridge) {
  TrafficStats out;
  out.bridge_per_round =
      static_cast<double>(edge_traffic[bridge]) / static_cast<double>(rounds);
  std::uint64_t min_edge = ~0ULL, total = 0;
  for (std::uint64_t c : edge_traffic) {
    min_edge = std::min(min_edge, c);
    total += c;
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(edge_traffic.size());
  out.min_over_mean = mean > 0 ? static_cast<double>(min_edge) / mean : 0.0;
  return out;
}

EdgeId find_bridge(const Graph& g) {
  for (std::uint32_t i = 0; i < g.degree(0); ++i) {
    if (g.neighbor(0, i) == 1) return g.edge_id(0, i);
  }
  RUMOR_CHECK(false);
  return 0;
}

void record(const std::string& prefix, const std::vector<double>& bridge,
            const std::vector<double>& fairness) {
  auto& reg = SeriesRegistry::instance();
  reg.record(prefix + "/bridge-per-round", kLeaves, Summary::of(bridge));
  reg.record(prefix + "/min-over-mean", kLeaves, Summary::of(fairness));
}

void register_all() {
  register_point("fairness/push-pull", [](benchmark::State& state) {
    const Graph g = gen::double_star(kLeaves);
    const EdgeId bridge = find_bridge(g);
    std::vector<double> bridge_rate, fairness;
    for (auto _ : state) {
      for (std::size_t i = 0; i < trials_or(8); ++i) {
        PushPullOptions options;
        options.trace.edge_traffic = true;
        options.max_rounds = kHorizon;  // run the full window even if done
        PushPullProcess process(g, 2, derive_seed(master_seed(), i), options);
        for (Round t = 0; t < kHorizon; ++t) process.step();
        const RunResult r = process.run();  // collects traces; already done
        const TrafficStats s = traffic_stats(r.edge_traffic, kHorizon, bridge);
        bridge_rate.push_back(s.bridge_per_round);
        fairness.push_back(s.min_over_mean);
      }
    }
    record("push-pull", bridge_rate, fairness);
    state.counters["bridge_per_round"] = Summary::of(bridge_rate).mean;
  });

  register_point("fairness/visit-exchange", [](benchmark::State& state) {
    const Graph g = gen::double_star(kLeaves);
    const EdgeId bridge = find_bridge(g);
    std::vector<double> bridge_rate, fairness;
    for (auto _ : state) {
      for (std::size_t i = 0; i < trials_or(8); ++i) {
        WalkOptions options;
        options.trace.edge_traffic = true;
        VisitExchangeProcess process(g, 2, derive_seed(master_seed() + 7, i),
                                     options);
        for (Round t = 0; t < kHorizon; ++t) process.step();
        const RunResult r = process.run();
        const TrafficStats s = traffic_stats(r.edge_traffic, kHorizon, bridge);
        bridge_rate.push_back(s.bridge_per_round);
        fairness.push_back(s.min_over_mean);
      }
    }
    record("visit-exchange", bridge_rate, fairness);
    state.counters["bridge_per_round"] = Summary::of(bridge_rate).mean;
  });
}

void report() {
  auto& registry = SeriesRegistry::instance();
  std::printf(
      "\n=== E11 — bandwidth fairness on the double star (leaves=%u, "
      "%llu-round window) ===\n",
      kLeaves, static_cast<unsigned long long>(kHorizon));
  std::printf("%s\n", series_table({"push-pull/bridge-per-round",
                                    "visit-exchange/bridge-per-round",
                                    "push-pull/min-over-mean",
                                    "visit-exchange/min-over-mean"},
                                   "leaves")
                          .c_str());

  const double ppull_bridge =
      registry.series("push-pull/bridge-per-round").points.front().summary.mean;
  const double visitx_bridge = registry.series("visit-exchange/bridge-per-round")
                                   .points.front()
                                   .summary.mean;
  print_claim(ppull_bridge < 20.0 / kLeaves,
              "E11: push-pull uses the bridge O(1/n) per round",
              TextTable::num(ppull_bridge, 5) + " crossings/round");
  print_claim(visitx_bridge > 0.3,
              "E11: visit-exchange uses the bridge Theta(1) per round",
              TextTable::num(visitx_bridge, 3) + " crossings/round");
  print_claim(visitx_bridge / std::max(ppull_bridge, 1e-9) > kLeaves / 20.0,
              "E11: fairness gap explains the Fig 1(b) separation",
              "rate ratio = " +
                  TextTable::num(visitx_bridge / std::max(ppull_bridge, 1e-9),
                                 1));

  const double visitx_fair =
      registry.series("visit-exchange/min-over-mean").points.front().summary.mean;
  const double ppull_fair =
      registry.series("push-pull/min-over-mean").points.front().summary.mean;
  print_claim(visitx_fair > 0.3 && ppull_fair < 0.05,
              "E11: no edge starves under visit-exchange; push-pull starves "
              "its critical edge",
              "min/mean edge utilization: visitx " +
                  TextTable::num(visitx_fair, 3) + " vs push-pull " +
                  TextTable::num(ppull_fair, 4));

  maybe_dump_csv("fairness", registry.all());
}

}  // namespace

RUMOR_BENCH_MAIN(register_all, report)

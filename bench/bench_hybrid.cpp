// E12 — §1: "agent-based information dissemination, separately or IN
// COMBINATION with push-pull, can significantly improve the broadcast
// time." The hybrid protocol (push-pull + visit-exchange on shared vertex
// state) should track the better component on every Fig. 1 family.
#include <cstdio>

#include "common.hpp"
#include "graph/generators.hpp"

namespace {

using namespace rumor;
using namespace rumor::bench;

struct Scenario {
  std::string name;
  GraphSpec spec;
  Vertex source;
};

std::vector<Scenario> scenarios() {
  return {
      {"star", GraphSpec{Family::star, 1 << 13}, 1},
      {"double-star", GraphSpec{Family::double_star, 1 << 12}, 2},
      {"heavy-tree", GraphSpec{Family::heavy_tree, (1 << 12) - 1},
       (1 << 12) - 2},
      {"siamese", GraphSpec{Family::siamese, (1 << 11) - 1}, (1 << 11) - 2},
      {"random-regular", GraphSpec{Family::random_regular, 1 << 12, 16}, 0},
  };
}

void register_all() {
  for (const auto& sc : scenarios()) {
    for (Protocol p : {Protocol::push_pull, Protocol::visit_exchange,
                       Protocol::hybrid}) {
      const std::string series = sc.name + "/" + protocol_name(p);
      register_point("hybrid/" + series, [sc, p, series](benchmark::State&
                                                             state) {
        Rng rng(master_seed() ^ 0x4B1Du);
        const Graph g = sc.spec.make(rng);
        measure_point(state, series, static_cast<double>(g.num_vertices()),
                      g, default_spec(p), sc.source, trials_or(15));
      });
    }
  }
}

void report() {
  auto& registry = SeriesRegistry::instance();
  std::printf("\n=== E12 — hybrid (push-pull + visit-exchange) ===\n");
  bool all_ok = true;
  TextTable table({"graph", "push-pull", "visit-exchange", "hybrid",
                   "hybrid <= 1.5*min?"});
  for (const auto& sc : scenarios()) {
    const double ppull =
        registry.series(sc.name + "/push-pull").points.front().summary.mean;
    const double visitx = registry.series(sc.name + "/visit-exchange")
                              .points.front()
                              .summary.mean;
    const double hybrid =
        registry.series(sc.name + "/hybrid").points.front().summary.mean;
    const bool ok = hybrid <= 1.5 * std::min(ppull, visitx) + 2.0;
    all_ok &= ok;
    table.add_row({sc.name, TextTable::num(ppull, 1),
                   TextTable::num(visitx, 1), TextTable::num(hybrid, 1),
                   ok ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render_plain().c_str());
  print_claim(all_ok,
              "E12: hybrid tracks the better of its components on every "
              "family",
              "per-family table above");
  maybe_dump_csv("hybrid", registry.all());
}

}  // namespace

RUMOR_BENCH_MAIN(register_all, report)

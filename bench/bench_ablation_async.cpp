// E15 — §2 related work (Sauerwald '10; Giakkoupis–Nazari–Woelfel '16):
// synchronous and asynchronous push-pull have broadcast times within
// constant factors on regular graphs. We sweep random regular graphs and
// compare synchronous rounds with asynchronous time units (ticks / n).
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "graph/generators.hpp"

namespace {

using namespace rumor;
using namespace rumor::bench;

const std::vector<Vertex> kSizes = {1 << 10, 1 << 11, 1 << 12, 1 << 13,
                                    1 << 14};

void register_all() {
  for (Vertex n : kSizes) {
    register_point(
        "async/n=" + std::to_string(n), [n](benchmark::State& state) {
          Rng rng(master_seed() ^ 0xA57Cu);
          const Graph g = gen::random_regular(n, 16, rng);
          // Both models go through the unified registry path; the async
          // simulator reports rounds in time units (ticks / n), directly
          // comparable to synchronous rounds.
          TrialSet async_set;
          for (auto _ : state) {
            async_set =
                run_trials(g, default_spec(Protocol::async_push_pull), 0,
                           trials_or(20), master_seed());
          }
          SeriesRegistry::instance().record("async (ticks/n)", n,
                                            async_set.summary());
          const TrialSet sync =
              run_trials(g, default_spec(Protocol::push_pull), 0,
                         trials_or(20), master_seed() + 3);
          SeriesRegistry::instance().record("sync (rounds)", n,
                                            sync.summary());
          state.counters["async"] = async_set.summary().mean;
          state.counters["sync"] = sync.summary().mean;
        });
  }
}

void report() {
  auto& registry = SeriesRegistry::instance();
  std::printf(
      "\n=== E15 — sync vs async push-pull (random 16-regular) ===\n");
  std::printf("%s\n",
              series_table({"sync (rounds)", "async (ticks/n)"}).c_str());
  const auto sync = registry.series("sync (rounds)");
  const auto async = registry.series("async (ticks/n)");
  print_claim(ratio_bounded(async, sync, 2.0),
              "E15: async/sync ratio constant across n",
              "ratio at extremes: " +
                  TextTable::num(async.points.front().summary.mean /
                                     sync.points.front().summary.mean,
                                 2) +
                  " -> " +
                  TextTable::num(async.points.back().summary.mean /
                                     sync.points.back().summary.mean,
                                 2));
  maybe_dump_csv("ablation_async", registry.all());
}

}  // namespace

RUMOR_BENCH_MAIN(register_all, report)

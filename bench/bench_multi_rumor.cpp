// E19 — the §1 perpetual-dissemination setting: many rumors released over
// time through ONE shared agent population (or one shared call schedule for
// push-pull).
//
// Claims measured:
//   (i)  non-interference — per-rumor latency with R parallel rumors matches
//        the single-rumor broadcast time (the protocols exchange "all the
//        information they have", so rumors ride the same exchanges);
//   (ii) steady state — latency is flat in release time: the perpetual
//        random walks stay stationary, which is exactly why the paper's
//        stationary-start assumption is the right model.
#include <cstdio>

#include "common.hpp"
#include "core/multi_rumor.hpp"
#include "graph/generators.hpp"

namespace {

using namespace rumor;
using namespace rumor::bench;

constexpr Vertex kN = 1 << 12;

const std::vector<std::size_t> kRumorCounts = {1, 4, 16, 64};

void register_all() {
  for (std::size_t rumor_count : kRumorCounts) {
    for (const bool walks : {false, true}) {
      const std::string series =
          walks ? "visit-exchange" : "push-pull";
      register_point(
          "multi/" + series + "/R=" + std::to_string(rumor_count),
          [rumor_count, walks, series](benchmark::State& state) {
            Rng rng(master_seed() ^ 0x316B5u);
            const Graph g = gen::random_regular(kN, 16, rng);
            TrialArena arena;  // reused across trials
            std::vector<double> latencies;
            for (auto _ : state) {
              for (std::size_t trial = 0; trial < trials_or(10); ++trial) {
                // Sources spread across the graph, all released at round 0.
                Rng source_rng(derive_seed(master_seed() + 5, trial));
                std::vector<RumorSpec> rumors;
                for (std::size_t r = 0; r < rumor_count; ++r) {
                  rumors.push_back(
                      {static_cast<Vertex>(source_rng.below(kN)), 0});
                }
                const std::uint64_t seed = derive_seed(master_seed(), trial);
                const MultiRumorResult result =
                    walks ? MultiRumorVisitExchange(g, rumors, seed, {},
                                                    &arena)
                                .run()
                          : MultiRumorPushPull(g, rumors, seed, 0, &arena)
                                .run();
                for (Round lat : result.latency) {
                  latencies.push_back(static_cast<double>(lat));
                }
              }
            }
            SeriesRegistry::instance().record(
                series, static_cast<double>(rumor_count),
                Summary::of(latencies));
            state.counters["mean_latency"] = Summary::of(latencies).mean;
          });
    }
  }

  // Steady-state panel: 32 rumors released every 4 rounds via walks.
  register_point("multi/stream", [](benchmark::State& state) {
    Rng rng(master_seed() ^ 0x57EAAu);
    const Graph g = gen::random_regular(kN, 16, rng);
    TrialArena arena;  // reused across trials
    std::vector<double> first_half, second_half;
    for (auto _ : state) {
      for (std::size_t trial = 0; trial < trials_or(10); ++trial) {
        Rng source_rng(derive_seed(master_seed() + 9, trial));
        std::vector<RumorSpec> rumors;
        for (std::size_t r = 0; r < 32; ++r) {
          rumors.push_back({static_cast<Vertex>(source_rng.below(kN)),
                            static_cast<Round>(4 * r)});
        }
        const MultiRumorResult result =
            MultiRumorVisitExchange(g, rumors,
                                    derive_seed(master_seed(), trial), {},
                                    &arena)
                .run();
        for (std::size_t r = 0; r < 16; ++r) {
          first_half.push_back(static_cast<double>(result.latency[r]));
        }
        for (std::size_t r = 16; r < 32; ++r) {
          second_half.push_back(static_cast<double>(result.latency[r]));
        }
      }
    }
    auto& reg = SeriesRegistry::instance();
    reg.record("stream/early-releases", 16, Summary::of(first_half));
    reg.record("stream/late-releases", 16, Summary::of(second_half));
  });
}

void report() {
  auto& registry = SeriesRegistry::instance();
  std::printf(
      "\n=== E19 — parallel and perpetual rumors (random 16-regular, "
      "n=%u) ===\n",
      kN);
  std::printf("%s\n",
              series_table({"push-pull", "visit-exchange"}, "rumors R")
                  .c_str());

  for (const std::string series : {"push-pull", "visit-exchange"}) {
    const auto s = registry.series(series);
    const double at1 = s.points.front().summary.mean;
    const double at64 = s.points.back().summary.mean;
    print_claim(at64 < 1.25 * at1 + 1.0,
                "E19(i) [" + series + "]: 64 parallel rumors, single-rumor "
                "latency",
                "mean latency R=1: " + TextTable::num(at1, 1) +
                    ", R=64: " + TextTable::num(at64, 1));
  }

  const double early =
      registry.series("stream/early-releases").points.front().summary.mean;
  const double late =
      registry.series("stream/late-releases").points.front().summary.mean;
  print_claim(std::abs(early - late) < 0.2 * early + 1.0,
              "E19(ii): perpetual stream latency is flat in release time "
              "(stationarity)",
              "early " + TextTable::num(early, 1) + " vs late " +
                  TextTable::num(late, 1));

  maybe_dump_csv("multi_rumor", registry.all());
}

}  // namespace

RUMOR_BENCH_MAIN(register_all, report)

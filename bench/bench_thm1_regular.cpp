// E6 — Theorem 1 (Theorems 10 + 19): on d-regular graphs with
// d = Ω(log n), T_push and T_visitx agree to constant factors, both in
// expectation and w.h.p.
//
// Four regular families probe different mixing regimes:
//   random d-regular (d = 1.5 log2 n)  — expander, T = Θ(log n)
//   hypercube (d = log2 n)             — structured, T = Θ(log n)
//   circulant C_n(1..log n)            — high clustering
//   clique ring (d+1-regular)          — slow mixing, T = Θ(n/d)
// The claim is a bounded max/min spread of T_push / T_visitx across the
// size sweep, per family.
#include <cmath>
#include <cstdio>

#include "analysis/cdf.hpp"
#include "common.hpp"
#include "graph/generators.hpp"

namespace {

using namespace rumor;
using namespace rumor::bench;

std::uint32_t log_degree(Vertex n) {
  return static_cast<std::uint32_t>(1.5 * std::log2(static_cast<double>(n)));
}

struct FamilyCase {
  std::string name;
  std::vector<std::pair<double, GraphSpec>> sizes;  // (x, spec)
  Vertex source = 0;
};

std::vector<FamilyCase> cases() {
  std::vector<FamilyCase> out;

  FamilyCase rr{"random-regular", {}, 0};
  for (Vertex n : {1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14}) {
    std::uint32_t d = log_degree(n);
    if ((static_cast<std::uint64_t>(n) * d) % 2 != 0) ++d;
    rr.sizes.push_back({static_cast<double>(n),
                        GraphSpec{Family::random_regular, n, d}});
  }
  out.push_back(rr);

  FamilyCase hc{"hypercube", {}, 0};
  for (std::uint64_t dim : {10, 11, 12, 13, 14}) {
    hc.sizes.push_back({std::pow(2.0, static_cast<double>(dim)),
                        GraphSpec{Family::hypercube, dim}});
  }
  out.push_back(hc);

  FamilyCase circ{"circulant", {}, 0};
  for (Vertex n : {1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14}) {
    circ.sizes.push_back(
        {static_cast<double>(n),
         GraphSpec{Family::circulant, n, log_degree(n)}});
  }
  out.push_back(circ);

  // Slow-mixing: groups grow, clique size fixed at 16 (17-regular).
  FamilyCase ring{"clique-ring", {}, 0};
  for (Vertex groups : {16, 32, 64, 128, 256}) {
    ring.sizes.push_back({static_cast<double>(groups) * 16,
                          GraphSpec{Family::clique_ring, groups, 16}});
  }
  out.push_back(ring);

  return out;
}

void register_all() {
  for (const auto& fc : cases()) {
    for (const auto& [x, gspec] : fc.sizes) {
      for (Protocol p : {Protocol::push, Protocol::visit_exchange}) {
        const std::string series = fc.name + "/" + protocol_name(p);
        register_point(
            "thm1/" + series + "/n=" + std::to_string(static_cast<long>(x)),
            [x, gspec, p, series, source = fc.source](benchmark::State& state) {
              Rng rng(master_seed() ^ 0x5EEDu);
              const Graph g = gspec.make(rng);
              measure_point(state, series, x, g, default_spec(p), source,
                            trials_or(20));
            });
      }
    }
    // Distribution-level panel at the family's largest size: the theorems
    // are statements about P[T <= k], not only about means. We record the
    // minimal stretch constants c with a small Monte-Carlo slack.
    const auto [x, gspec] = fc.sizes.back();
    register_point(
        "thm1/" + fc.name + "/cdf-dominance",
        [gspec, source = fc.source, name = fc.name](benchmark::State& state) {
          Rng rng(master_seed() ^ 0x5EEDu);
          const Graph g = gspec.make(rng);
          TrialSet push, visitx;
          for (auto _ : state) {
            push = run_trials(g, default_spec(Protocol::push), source,
                              trials_or(20) * 3, master_seed() + 11);
            visitx = run_trials(g, default_spec(Protocol::visit_exchange),
                                source, trials_or(20) * 3, master_seed() + 12);
          }
          const EmpiricalCdf push_cdf(push.rounds);
          const EmpiricalCdf visitx_cdf(visitx.rounds);
          const double c10 = minimal_stretch(push_cdf, visitx_cdf, 0.1);
          const double c19 = minimal_stretch(visitx_cdf, push_cdf, 0.1);
          auto& reg = SeriesRegistry::instance();
          reg.record(name + "/thm10 stretch c", 0,
                     Summary::of(std::vector<double>{c10}));
          reg.record(name + "/thm19 stretch c", 0,
                     Summary::of(std::vector<double>{c19}));
          state.counters["c10"] = c10;
          state.counters["c19"] = c19;
        });
  }
}

void report() {
  auto& registry = SeriesRegistry::instance();
  std::printf(
      "\n=== Theorem 1 (Thms 10+19) — T_push vs T_visitx on regular graphs "
      "===\n");
  for (const auto& fc : cases()) {
    const auto push = registry.series(fc.name + "/push");
    const auto visitx = registry.series(fc.name + "/visit-exchange");
    std::printf("%s\n",
                series_table({fc.name + "/push", fc.name + "/visit-exchange"})
                    .c_str());
    // Constant-factor band: the pointwise ratio spread across the sweep.
    double lo = 1e300, hi = 0;
    for (std::size_t i = 0; i < push.points.size(); ++i) {
      const double r =
          push.points[i].summary.mean / visitx.points[i].summary.mean;
      lo = std::min(lo, r);
      hi = std::max(hi, r);
    }
    print_claim(
        ratio_bounded(push, visitx, 3.0),
        "Theorem 1 [" + fc.name + "]: T_push/T_visitx constant across n",
        "ratio range [" + TextTable::num(lo, 2) + ", " +
            TextTable::num(hi, 2) + "], spread " +
            TextTable::num(hi / lo, 2) + "x (<= 3x band)");
    const double c10 =
        registry.series(fc.name + "/thm10 stretch c").points.front().summary.mean;
    const double c19 =
        registry.series(fc.name + "/thm19 stretch c").points.front().summary.mean;
    print_claim(c10 <= 4.0 && c19 <= 4.0,
                "Thms 10+19 [" + fc.name + "]: CDF dominance "
                "P[T_A <= c k] >= P[T_B <= k] - 0.1, both directions",
                "minimal c: push-vs-visitx " + TextTable::num(c10, 2) +
                    ", visitx-vs-push " + TextTable::num(c19, 2));
  }
  maybe_dump_csv("thm1_regular", registry.all());
}

}  // namespace

RUMOR_BENCH_MAIN(register_all, report)

#include "analysis/scaling.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/assert.hpp"

namespace rumor {

std::vector<double> ScalingSeries::sizes() const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(p.n);
  return out;
}

std::vector<double> ScalingSeries::means() const {
  std::vector<double> out;
  out.reserve(points.size());
  for (const auto& p : points) out.push_back(p.summary.mean);
  return out;
}

LawVerdict classify_series(const ScalingSeries& series) {
  return classify_growth(series.sizes(), series.means());
}

double max_ratio(const ScalingSeries& a, const ScalingSeries& b) {
  RUMOR_REQUIRE(a.points.size() == b.points.size());
  RUMOR_REQUIRE(!a.points.empty());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    RUMOR_REQUIRE(b.points[i].summary.mean > 0.0);
    worst = std::max(worst, a.points[i].summary.mean / b.points[i].summary.mean);
  }
  return worst;
}

bool ratio_bounded(const ScalingSeries& a, const ScalingSeries& b,
                   double band) {
  RUMOR_REQUIRE(a.points.size() == b.points.size());
  RUMOR_REQUIRE(!a.points.empty());
  RUMOR_REQUIRE(band >= 1.0);
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    RUMOR_REQUIRE(b.points[i].summary.mean > 0.0);
    const double r = a.points[i].summary.mean / b.points[i].summary.mean;
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  return hi / lo <= band;
}

bool within_additive_log(const ScalingSeries& a, const ScalingSeries& b,
                         double c) {
  RUMOR_REQUIRE(a.points.size() == b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    const double bound =
        b.points[i].summary.mean + c * std::log(a.points[i].n);
    if (a.points[i].summary.mean > bound) return false;
  }
  return true;
}

}  // namespace rumor

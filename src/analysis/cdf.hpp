// Empirical CDFs and the stretched stochastic dominance used by
// Theorems 10/19/23.
//
// The paper's regular-graph theorems are distribution-level statements of
// the form  P[T_A <= c*k + d] >= P[T_B <= k] - eps  for all k. Given trial
// samples of T_A and T_B, dominates_with_stretch checks the sample version
// of exactly that inequality.
#pragma once

#include <span>
#include <vector>

namespace rumor {

class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::span<const double> samples);

  // P[X <= x] under the empirical measure.
  [[nodiscard]] double at(double x) const;

  // Smallest sample value q with P[X <= q] >= p; p in (0, 1].
  [[nodiscard]] double quantile(double p) const;

  [[nodiscard]] std::size_t sample_count() const { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted_samples() const {
    return sorted_;
  }

 private:
  std::vector<double> sorted_;
};

// Checks  P[A <= stretch*k + shift] >= P[B <= k] - slack  at every support
// point k of B. With stretch=1, shift=0, slack=0 this is classical
// first-order stochastic dominance of A over B.
[[nodiscard]] bool dominates_with_stretch(const EmpiricalCdf& a,
                                          const EmpiricalCdf& b,
                                          double stretch, double shift = 0.0,
                                          double slack = 0.0);

// Smallest stretch c (no shift) making the dominance hold with the given
// slack, found by bisection over [1/64, 64]; useful for reporting "the
// empirical Theorem-10 constant".
[[nodiscard]] double minimal_stretch(const EmpiricalCdf& a,
                                     const EmpiricalCdf& b,
                                     double slack = 0.0);

}  // namespace rumor

#include "analysis/cdf.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace rumor {

EmpiricalCdf::EmpiricalCdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  RUMOR_REQUIRE(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double p) const {
  RUMOR_REQUIRE(p > 0.0 && p <= 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted_.size())));
  return sorted_[std::min(rank, sorted_.size()) - 1];
}

bool dominates_with_stretch(const EmpiricalCdf& a, const EmpiricalCdf& b,
                            double stretch, double shift, double slack) {
  RUMOR_REQUIRE(stretch > 0.0);
  RUMOR_REQUIRE(slack >= 0.0);
  // It suffices to check at B's support points: P[B <= k] only increases
  // there, and P[A <= stretch*k + shift] is monotone in k.
  for (double k : b.sorted_samples()) {
    if (a.at(stretch * k + shift) < b.at(k) - slack) return false;
  }
  return true;
}

double minimal_stretch(const EmpiricalCdf& a, const EmpiricalCdf& b,
                       double slack) {
  double lo = 1.0 / 64.0;
  double hi = 64.0;
  if (dominates_with_stretch(a, b, lo, 0.0, slack)) return lo;
  if (!dominates_with_stretch(a, b, hi, 0.0, slack)) return hi;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (dominates_with_stretch(a, b, mid, 0.0, slack)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace rumor

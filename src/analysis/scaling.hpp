// Claim checking for scaling experiments.
//
// A ScalingSeries is the measured broadcast time of one protocol across a
// geometric range of sizes. The helpers here turn series into the verdicts
// EXPERIMENTS.md reports: fitted growth laws, constant-ratio bands
// (Theorem 1), and additive-logarithmic gaps (Theorem 23).
#pragma once

#include <string>
#include <vector>

#include "support/fit.hpp"
#include "support/stats.hpp"

namespace rumor {

struct ScalePoint {
  double n = 0.0;  // instance size the claim scales in
  Summary summary;
};

struct ScalingSeries {
  std::string label;
  std::vector<ScalePoint> points;

  [[nodiscard]] std::vector<double> sizes() const;
  [[nodiscard]] std::vector<double> means() const;
};

// Growth-law verdict on the series means (requires >= 3 points).
[[nodiscard]] LawVerdict classify_series(const ScalingSeries& series);

// True iff max_i(a_i/b_i) / min_i(a_i/b_i) <= band, i.e. the two series stay
// within a constant factor of each other across sizes (Theorem 1's shape).
[[nodiscard]] bool ratio_bounded(const ScalingSeries& a,
                                 const ScalingSeries& b, double band);

// Largest pointwise ratio mean(a)/mean(b).
[[nodiscard]] double max_ratio(const ScalingSeries& a,
                               const ScalingSeries& b);

// True iff mean(a_i) <= mean(b_i) + c*ln(n_i) at every point (Theorem 23's
// shape).
[[nodiscard]] bool within_additive_log(const ScalingSeries& a,
                                       const ScalingSeries& b, double c);

}  // namespace rumor

#include "experiments/scenario.hpp"

#include <fstream>
#include <sstream>

#include "support/spec_text.hpp"

namespace rumor {

namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  while (!line.empty()) {
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string_view::npos) break;
    line.remove_prefix(start);
    const std::size_t end = line.find_first_of(" \t");
    tokens.push_back(line.substr(0, end));
    if (end == std::string_view::npos) break;
    line.remove_prefix(end);
  }
  return tokens;
}

// Applies one trailing `key=value` plan token; false = not a plan key.
bool set_plan_option(TrialPlan& plan, std::string& label,
                     std::string_view key, std::string_view value,
                     std::string* error) {
  if (key == "trials") {
    const auto v = spec_text::parse_u64(value);
    if (!v || *v == 0) {
      set_error(error, "bad value trials=" + std::string(value));
      return false;
    }
    plan.trials = static_cast<std::size_t>(*v);
  } else if (key == "seed") {
    const auto v = spec_text::parse_u64(value);
    if (!v) {
      set_error(error, "bad value seed=" + std::string(value));
      return false;
    }
    plan.seed = *v;
  } else if (key == "source") {
    const auto v = spec_text::parse_u64(value);
    if (!v) {
      set_error(error, "bad value source=" + std::string(value));
      return false;
    }
    plan.source = static_cast<Vertex>(*v);
  } else if (key == "fresh") {
    const auto v = spec_text::parse_bool(value);
    if (!v) {
      set_error(error, "bad value fresh=" + std::string(value));
      return false;
    }
    plan.fresh_graph = *v;
  } else if (key == "label") {
    // '#' would be stripped as a comment when the canonical line is
    // written to a scenario file and re-read.
    if (value.empty() || value.find('#') != std::string_view::npos) {
      set_error(error, "bad label \"" + std::string(value) +
                           "\" (must be non-empty, no '#')");
      return false;
    }
    label = std::string(value);
  } else {
    set_error(error, "unknown scenario option \"" + std::string(key) + "\"");
    return false;
  }
  return true;
}

// ---- Sweep expansion ---------------------------------------------------
//
// Expansion is textual: the line is sliced into literal pieces and sweep
// slots, every combination is re-assembled and handed to the ordinary
// scalar parser. That keeps one grammar — an expanded line is valid input
// by construction, and every parse diagnostic comes from one place.

// One swept key=value site in a line.
struct SweepSlot {
  std::string key;
  std::vector<std::string> values;
};

// A line sliced at its sweep values: literal text in `text`, or a
// substitution point referencing slots[slot].
struct LinePiece {
  std::string text;
  int slot = -1;
};

void add_literal(std::vector<LinePiece>& pieces, std::string_view text) {
  if (text.empty()) return;
  pieces.push_back({std::string(text), -1});
}

// Registers `value` as a sweep slot if it uses sweep syntax; returns
// false only on a malformed sweep. Scalar values stay literal. The label
// is free text, so a ".." inside it is not a range ("label=run1..2" was
// always legal) — but a {...} list still sweeps it.
bool add_value(std::vector<LinePiece>& pieces, std::vector<SweepSlot>& slots,
               std::string_view key, std::string_view value,
               std::string* error) {
  const bool label_range =
      key == "label" && (value.empty() || value.front() != '{');
  if (label_range || !spec_text::is_sweep_value(value)) {
    add_literal(pieces, value);
    return true;
  }
  auto expanded = spec_text::expand_sweep_value(value, error);
  if (!expanded) return false;
  pieces.push_back({std::string(), static_cast<int>(slots.size())});
  slots.push_back({std::string(key), std::move(*expanded)});
  return true;
}

// Slices one whitespace token ("key=value", "head(k=v,...)", or a bare
// head) into pieces/slots. Structurally odd tokens pass through literal —
// the scalar parser owns their diagnostics.
bool scan_token(std::vector<LinePiece>& pieces, std::vector<SweepSlot>& slots,
                std::string_view token, std::string* error) {
  const std::size_t open = token.find('(');
  if (open == std::string_view::npos) {
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      add_literal(pieces, token);
      return true;
    }
    add_literal(pieces, token.substr(0, eq + 1));
    return add_value(pieces, slots, token.substr(0, eq),
                     token.substr(eq + 1), error);
  }
  if (token.back() != ')') {
    add_literal(pieces, token);
    return true;
  }
  add_literal(pieces, token.substr(0, open + 1));
  std::string_view args = token.substr(open + 1, token.size() - open - 2);
  bool first = true;
  while (!args.empty()) {
    const std::size_t comma = spec_text::find_top_level_comma(args);
    const std::string_view item =
        comma == std::string_view::npos ? args : args.substr(0, comma);
    args = comma == std::string_view::npos ? std::string_view{}
                                           : args.substr(comma + 1);
    if (!first) add_literal(pieces, ",");
    first = false;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      add_literal(pieces, item);
      continue;
    }
    add_literal(pieces, item.substr(0, eq + 1));
    if (!add_value(pieces, slots, spec_text::trim(item.substr(0, eq)),
                   item.substr(eq + 1), error)) {
      return false;
    }
  }
  add_literal(pieces, ")");
  return true;
}

// "/2k" for 2048, "/0.5" for list items that aren't plain integers.
std::string label_suffix(const std::string& value) {
  if (const auto v = spec_text::parse_u64(value)) {
    return "/" + spec_text::fmt_magnitude(*v);
  }
  return "/" + value;
}

}  // namespace

std::optional<std::vector<ScenarioSpec>> expand_scenario_line(
    std::string_view line, std::string* error) {
  std::vector<LinePiece> pieces;
  std::vector<SweepSlot> slots;
  for (const std::string_view token : split_tokens(line)) {
    if (!pieces.empty()) add_literal(pieces, " ");
    if (!scan_token(pieces, slots, token, error)) return std::nullopt;
  }
  if (slots.empty()) {
    auto spec = ScenarioSpec::parse(line, error);
    if (!spec) return std::nullopt;
    return std::vector<ScenarioSpec>{std::move(*spec)};
  }
  std::size_t total = 1;
  for (const SweepSlot& slot : slots) {
    total *= slot.values.size();  // each factor <= kMaxSweepPoints
    if (total > spec_text::kMaxSweepPoints) {
      set_error(error,
                "sweep cross product exceeds " +
                    std::to_string(spec_text::kMaxSweepPoints) +
                    " scenarios");
      return std::nullopt;
    }
  }
  std::vector<ScenarioSpec> specs;
  specs.reserve(total);
  std::vector<std::size_t> idx(slots.size(), 0);
  for (;;) {
    std::string text;
    for (const LinePiece& piece : pieces) {
      text += piece.slot < 0 ? piece.text : slots[piece.slot].values[idx[piece.slot]];
    }
    auto spec = ScenarioSpec::parse(text, error);
    if (!spec) return std::nullopt;
    if (!spec->label.empty()) {
      // Derive one "/<value>" per swept key so every expanded series
      // point reports under a distinct label. A swept label already
      // distinguishes itself.
      for (std::size_t s = 0; s < slots.size(); ++s) {
        if (slots[s].key == "label") continue;
        spec->label += label_suffix(slots[s].values[idx[s]]);
      }
    }
    specs.push_back(std::move(*spec));
    // Odometer: rightmost slot varies fastest (leftmost slowest).
    std::size_t s = slots.size();
    while (s > 0 && ++idx[s - 1] == slots[s - 1].values.size()) {
      idx[--s] = 0;
    }
    if (s == 0) break;
  }
  return specs;
}

std::string ScenarioSpec::name() const {
  std::string out = graph.name() + " " + protocol.name();
  const TrialPlan defaults;
  if (plan.trials != defaults.trials) {
    out += " trials=" + std::to_string(plan.trials);
  }
  if (plan.seed != defaults.seed) {
    out += " seed=" + std::to_string(plan.seed);
  }
  if (plan.source != defaults.source) {
    out += " source=" + std::to_string(plan.source);
  }
  if (plan.fresh_graph) out += " fresh=on";
  if (!label.empty()) out += " label=" + label;
  return out;
}

std::string ScenarioSpec::display_label() const {
  if (!label.empty()) return label;
  return graph.name() + " " + protocol.name();
}

std::optional<ScenarioSpec> ScenarioSpec::parse(std::string_view line,
                                                std::string* error) {
  const std::vector<std::string_view> tokens = split_tokens(line);
  if (tokens.size() < 2) {
    set_error(error,
              "expected \"<graph-spec> <protocol-spec> [key=value...]\"");
    return std::nullopt;
  }
  ScenarioSpec spec;
  auto graph = GraphSpec::parse(tokens[0], error);
  if (!graph) return std::nullopt;
  spec.graph = *graph;
  auto protocol = ProtocolSpec::parse(tokens[1], error);
  if (!protocol) return std::nullopt;
  spec.protocol = *protocol;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      set_error(error, "expected key=value, got \"" + std::string(token) +
                           "\"");
      return std::nullopt;
    }
    if (!set_plan_option(spec.plan, spec.label, token.substr(0, eq),
                         token.substr(eq + 1), error)) {
      return std::nullopt;
    }
  }
  if (spec.plan.fresh_graph && !spec.graph.is_random()) {
    set_error(error, "fresh=on requires a random graph family, got " +
                         spec.graph.name());
    return std::nullopt;
  }
  return spec;
}

std::optional<std::vector<ScenarioSpec>> parse_scenario_stream(
    std::istream& in, std::string* error) {
  std::vector<ScenarioSpec> specs;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view text(line);
    const std::size_t hash = text.find('#');
    if (hash != std::string_view::npos) text = text.substr(0, hash);
    text = spec_text::trim(text);
    if (text.empty()) continue;
    std::string reason;
    auto expanded = expand_scenario_line(text, &reason);
    if (!expanded) {
      set_error(error,
                "line " + std::to_string(line_number) + ": " + reason);
      return std::nullopt;
    }
    for (ScenarioSpec& spec : *expanded) specs.push_back(std::move(spec));
  }
  return specs;
}

std::optional<std::vector<ScenarioSpec>> load_scenario_file(
    const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    set_error(error, "cannot open \"" + path + "\"");
    return std::nullopt;
  }
  return parse_scenario_stream(in, error);
}

// Validates the scenario and fills the result's size columns WITHOUT
// building deterministic graphs: probe() answers n/m from the closed forms
// (or the file cache header), so validating a 10^8-vertex sweep costs
// arithmetic, not allocation. Sizes are fixed by the spec, so the source
// check covers every fresh draw too (the per-draw RUMOR_REQUIRE in the
// runner stays as backstop).
bool prepare_scenario(const ScenarioSpec& spec, ScenarioResult& result,
                      PreparedScenario& prep, std::string* error) {
  result.spec = spec;
  if (spec.graph.is_random()) {
    // The graph draw uses a seed stream disjoint from the trial seeds (and,
    // for fresh mode, matches trial 0's draw), so a scenario is
    // reproducible from its text alone.
    Rng graph_rng(derive_seed(spec.plan.seed ^ kGraphSeedSalt, 0));
    Graph g = spec.graph.make(graph_rng);
    result.n = g.num_vertices();
    result.edges = g.num_edges();
    // Fresh-graph scenarios redraw per trial; dropping the validation
    // draw immediately keeps it from pinning memory for the whole run.
    if (!spec.plan.fresh_graph) prep.graph = std::move(g);
  } else {
    std::string why;
    const auto probe = spec.graph.probe(&why);
    if (!probe) {
      set_error(error,
                "scenario \"" + spec.name() + "\": " + spec.graph.name() +
                    ": " + why);
      return false;
    }
    result.n = probe->n;
    result.edges = static_cast<std::size_t>(probe->m);
    prep.lazy = true;
  }
  if (spec.plan.source >= result.n) {
    set_error(error, "scenario \"" + spec.name() + "\": source=" +
                         std::to_string(spec.plan.source) +
                         " is out of range for " + spec.graph.name() +
                         " (n=" + std::to_string(result.n) + ")");
    return false;
  }
  if (const WalkOptions* walk = spec.protocol.walk_if();
      walk != nullptr && walk->placement == Placement::at_vertex &&
      walk->placement_anchor != kNoVertex &&
      walk->placement_anchor >= result.n) {
    set_error(error, "scenario \"" + spec.name() + "\": anchor=" +
                         std::to_string(walk->placement_anchor) +
                         " is out of range for " + spec.graph.name() +
                         " (n=" + std::to_string(result.n) + ")");
    return false;
  }
  // The sharded round engine's incompatibilities, rejected here with a
  // typed message; the RUMOR_REQUIREs in the process constructors are
  // abort-on-bug backstops, not user-input validation.
  if (spec.protocol.shards() != 0) {
    if (const TraceOptions* trace = spec.protocol.trace();
        trace != nullptr && trace->edge_traffic) {
      set_error(error, "scenario \"" + spec.name() +
                           "\": shards= is incompatible with "
                           "edge_traffic=on (the exact-bandwidth trace "
                           "needs the serial engine)");
      return false;
    }
    if (const WalkOptions* walk = spec.protocol.walk_if();
        walk != nullptr && walk->engine != StepEngine::batched) {
      set_error(error, "scenario \"" + spec.name() +
                           "\": shards= replaces the stepping engine; "
                           "drop the engine= key");
      return false;
    }
  }
  return true;
}

std::optional<ScenarioResult> run_scenario(const ScenarioSpec& spec,
                                           std::string* error) {
  auto results = run_scenarios({spec}, error);
  if (!results) return std::nullopt;
  return std::move(results->front());
}

bool validate_scenarios(const std::vector<ScenarioSpec>& specs,
                        std::string* error) {
  for (const ScenarioSpec& spec : specs) {
    ScenarioResult scratch;
    PreparedScenario prep;
    if (!prepare_scenario(spec, scratch, prep, error)) return false;
  }
  return true;
}

std::optional<std::vector<ScenarioResult>> run_scenarios(
    const std::vector<ScenarioSpec>& specs, std::string* error,
    const ScenarioRunOptions& options) {
  // Phase 1 — validate every scenario before any trial runs: a bad line at
  // the bottom of the file fails fast instead of after hours of
  // simulation. Deterministic graphs are validated analytically and built
  // lazily by the scheduler (when their first trial is claimed, released
  // when their trials drain); only random non-fresh scenarios build here,
  // because their one draw is part of the result.
  std::vector<ScenarioResult> results(specs.size());
  std::vector<PreparedScenario> prepared(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (!prepare_scenario(specs[i], results[i], prepared[i], error)) {
      return std::nullopt;
    }
  }
  // Phase 2 — one global (scenario, trial) queue across the whole file.
  std::vector<TrialBatch> batches(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    TrialBatch& batch = batches[i];
    if (specs[i].plan.fresh_graph) {
      batch.fresh_spec = &specs[i].graph;
    } else if (prepared[i].lazy) {
      batch.lazy_spec = &specs[i].graph;
    } else {
      batch.graph = &*prepared[i].graph;
    }
    batch.protocol = &specs[i].protocol;
    batch.source = specs[i].plan.source;
    batch.trials = specs[i].plan.trials;
    batch.master_seed = specs[i].plan.seed;
    // Expected-cost heuristic for --order=longest-first: per-trial work is
    // roughly proportional to the graph size.
    batch.cost_hint = static_cast<std::size_t>(results[i].n) *
                      specs[i].plan.trials;
    batch.out = &results[i].set;
  }
  TrialRunOptions run_options;
  run_options.order = options.order;
  run_options.stop = options.stop;
  run_options.counters = options.counters;
  if (options.on_result) {
    run_options.on_batch_done = [&](std::size_t i) {
      options.on_result(results[i], i);
    };
  }
  try {
    const TrialRunOutcome outcome = run_trial_batches(batches, run_options);
    if (outcome.stopped) {
      // An interrupt is not a trial failure, but the result set is just as
      // partial: report it the same way so callers mark their artifacts
      // truncated instead of presenting an incomplete sweep as complete.
      set_error(error, "interrupted: stopped before all trials completed");
      return std::nullopt;
    }
  } catch (const TrialBatchError& e) {
    // Name the failing scenario: scenario files are user input, and "which
    // line died" is the difference between a fixable report and a bare
    // abort three hours in.
    set_error(error, "scenario \"" + specs[e.batch_index()].name() +
                         "\" failed: " + e.what());
    return std::nullopt;
  }
  return results;
}

// scenario_table / write_scenario_csv live in experiments/report.cpp next
// to their streaming variants so the row formats cannot drift apart.

}  // namespace rumor

#include "experiments/scenario.hpp"

#include <fstream>
#include <sstream>

#include "experiments/report.hpp"
#include "support/csv.hpp"
#include "support/spec_text.hpp"
#include "support/table.hpp"

namespace rumor {

namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

std::vector<std::string_view> split_tokens(std::string_view line) {
  std::vector<std::string_view> tokens;
  while (!line.empty()) {
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string_view::npos) break;
    line.remove_prefix(start);
    const std::size_t end = line.find_first_of(" \t");
    tokens.push_back(line.substr(0, end));
    if (end == std::string_view::npos) break;
    line.remove_prefix(end);
  }
  return tokens;
}

// Applies one trailing `key=value` plan token; false = not a plan key.
bool set_plan_option(TrialPlan& plan, std::string& label,
                     std::string_view key, std::string_view value,
                     std::string* error) {
  if (key == "trials") {
    const auto v = spec_text::parse_u64(value);
    if (!v || *v == 0) {
      set_error(error, "bad value trials=" + std::string(value));
      return false;
    }
    plan.trials = static_cast<std::size_t>(*v);
  } else if (key == "seed") {
    const auto v = spec_text::parse_u64(value);
    if (!v) {
      set_error(error, "bad value seed=" + std::string(value));
      return false;
    }
    plan.seed = *v;
  } else if (key == "source") {
    const auto v = spec_text::parse_u64(value);
    if (!v) {
      set_error(error, "bad value source=" + std::string(value));
      return false;
    }
    plan.source = static_cast<Vertex>(*v);
  } else if (key == "fresh") {
    const auto v = spec_text::parse_bool(value);
    if (!v) {
      set_error(error, "bad value fresh=" + std::string(value));
      return false;
    }
    plan.fresh_graph = *v;
  } else if (key == "label") {
    // '#' would be stripped as a comment when the canonical line is
    // written to a scenario file and re-read.
    if (value.empty() || value.find('#') != std::string_view::npos) {
      set_error(error, "bad label \"" + std::string(value) +
                           "\" (must be non-empty, no '#')");
      return false;
    }
    label = std::string(value);
  } else {
    set_error(error, "unknown scenario option \"" + std::string(key) + "\"");
    return false;
  }
  return true;
}

}  // namespace

std::string ScenarioSpec::name() const {
  std::string out = graph.name() + " " + protocol.name();
  const TrialPlan defaults;
  if (plan.trials != defaults.trials) {
    out += " trials=" + std::to_string(plan.trials);
  }
  if (plan.seed != defaults.seed) {
    out += " seed=" + std::to_string(plan.seed);
  }
  if (plan.source != defaults.source) {
    out += " source=" + std::to_string(plan.source);
  }
  if (plan.fresh_graph) out += " fresh=on";
  if (!label.empty()) out += " label=" + label;
  return out;
}

std::string ScenarioSpec::display_label() const {
  if (!label.empty()) return label;
  return graph.name() + " " + protocol.name();
}

std::optional<ScenarioSpec> ScenarioSpec::parse(std::string_view line,
                                                std::string* error) {
  const std::vector<std::string_view> tokens = split_tokens(line);
  if (tokens.size() < 2) {
    set_error(error,
              "expected \"<graph-spec> <protocol-spec> [key=value...]\"");
    return std::nullopt;
  }
  ScenarioSpec spec;
  auto graph = GraphSpec::parse(tokens[0], error);
  if (!graph) return std::nullopt;
  spec.graph = *graph;
  auto protocol = ProtocolSpec::parse(tokens[1], error);
  if (!protocol) return std::nullopt;
  spec.protocol = *protocol;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      set_error(error, "expected key=value, got \"" + std::string(token) +
                           "\"");
      return std::nullopt;
    }
    if (!set_plan_option(spec.plan, spec.label, token.substr(0, eq),
                         token.substr(eq + 1), error)) {
      return std::nullopt;
    }
  }
  if (spec.plan.fresh_graph && !spec.graph.is_random()) {
    set_error(error, "fresh=on requires a random graph family, got " +
                         spec.graph.name());
    return std::nullopt;
  }
  return spec;
}

std::optional<std::vector<ScenarioSpec>> parse_scenario_stream(
    std::istream& in, std::string* error) {
  std::vector<ScenarioSpec> specs;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view text(line);
    const std::size_t hash = text.find('#');
    if (hash != std::string_view::npos) text = text.substr(0, hash);
    text = spec_text::trim(text);
    if (text.empty()) continue;
    std::string reason;
    auto spec = ScenarioSpec::parse(text, &reason);
    if (!spec) {
      set_error(error,
                "line " + std::to_string(line_number) + ": " + reason);
      return std::nullopt;
    }
    specs.push_back(std::move(*spec));
  }
  return specs;
}

std::optional<std::vector<ScenarioSpec>> load_scenario_file(
    const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    set_error(error, "cannot open \"" + path + "\"");
    return std::nullopt;
  }
  return parse_scenario_stream(in, error);
}

std::optional<ScenarioResult> run_scenario(const ScenarioSpec& spec,
                                           std::string* error) {
  ScenarioResult result;
  result.spec = spec;
  // The graph draw uses a seed stream disjoint from the trial seeds (and,
  // for fresh mode, matches trial 0's draw), so a scenario is reproducible
  // from its text alone.
  Rng graph_rng(derive_seed(spec.plan.seed ^ kGraphSeedSalt, 0));
  const Graph g = spec.graph.make(graph_rng);
  result.n = g.num_vertices();
  result.edges = g.num_edges();
  // Graph sizes are fixed by the spec, so these checks cover every fresh
  // draw too (the per-draw RUMOR_REQUIRE in the runner stays as backstop).
  if (spec.plan.source >= result.n) {
    set_error(error, "scenario \"" + spec.name() + "\": source=" +
                         std::to_string(spec.plan.source) +
                         " is out of range for " + spec.graph.name() +
                         " (n=" + std::to_string(result.n) + ")");
    return std::nullopt;
  }
  if (const WalkOptions* walk = spec.protocol.walk_if();
      walk != nullptr && walk->placement == Placement::at_vertex &&
      walk->placement_anchor != kNoVertex &&
      walk->placement_anchor >= result.n) {
    set_error(error, "scenario \"" + spec.name() + "\": anchor=" +
                         std::to_string(walk->placement_anchor) +
                         " is out of range for " + spec.graph.name() +
                         " (n=" + std::to_string(result.n) + ")");
    return std::nullopt;
  }
  if (spec.plan.fresh_graph) {
    result.set =
        run_trials_fresh_graph(spec.graph, spec.protocol, spec.plan.source,
                               spec.plan.trials, spec.plan.seed);
  } else {
    result.set = run_trials(g, spec.protocol, spec.plan.source,
                            spec.plan.trials, spec.plan.seed);
  }
  return result;
}

std::optional<std::vector<ScenarioResult>> run_scenarios(
    const std::vector<ScenarioSpec>& specs, std::string* error) {
  std::vector<ScenarioResult> results;
  results.reserve(specs.size());
  for (const ScenarioSpec& spec : specs) {
    auto result = run_scenario(spec, error);
    if (!result) return std::nullopt;
    results.push_back(std::move(*result));
  }
  return results;
}

std::string scenario_table(const std::vector<ScenarioResult>& results) {
  TextTable table({"scenario", "graph", "protocol", "n", "trials", "mean",
                   "median", "min", "max", "incomplete"});
  for (const ScenarioResult& r : results) {
    const Summary s = r.set.summary();
    table.add_row({r.spec.display_label(), r.spec.graph.name(),
                   r.spec.protocol.name(),
                   std::to_string(r.n), std::to_string(s.count),
                   fmt_mean_pm(s), TextTable::num(s.median, 1),
                   TextTable::num(s.min, 1), TextTable::num(s.max, 1),
                   std::to_string(r.set.incomplete)});
  }
  return table.render_plain();
}

void write_scenario_csv(std::ostream& out,
                        const std::vector<ScenarioResult>& results) {
  CsvWriter csv(out,
                {"label", "graph", "protocol", "n", "m", "trials", "seed",
                 "source", "mean", "stddev", "stderr", "min", "q25",
                 "median", "q75", "max", "agent_mean", "incomplete"});
  for (const ScenarioResult& r : results) {
    const Summary s = r.set.summary();
    const Summary agents = r.set.agent_summary();
    csv.row({r.spec.display_label(), r.spec.graph.name(),
             r.spec.protocol.name(), std::to_string(r.n),
             std::to_string(r.edges), std::to_string(s.count),
             std::to_string(r.spec.plan.seed),
             std::to_string(r.spec.plan.source), std::to_string(s.mean),
             std::to_string(s.stddev), std::to_string(s.stderr_mean),
             std::to_string(s.min), std::to_string(s.q25),
             std::to_string(s.median), std::to_string(s.q75),
             std::to_string(s.max), std::to_string(agents.mean),
             std::to_string(r.set.incomplete)});
  }
}

}  // namespace rumor

// Parallel trial runner.
//
// Trials are independent repetitions with seeds derived statelessly from
// (master seed, trial index): the produced sample vector is identical
// regardless of worker count or scheduling.
#pragma once

#include <cstdint>
#include <vector>

#include "experiments/specs.hpp"
#include "support/stats.hpp"

namespace rumor {

struct TrialSet {
  std::vector<double> rounds;   // one entry per trial (cutoff if incomplete)
  std::size_t incomplete = 0;   // trials that hit the round cutoff

  [[nodiscard]] Summary summary() const { return Summary::of(rounds); }
};

// R trials of `spec` on a fixed graph.
[[nodiscard]] TrialSet run_trials(const Graph& g, const ProtocolSpec& spec,
                                  Vertex source, std::size_t trials,
                                  std::uint64_t master_seed);

// R trials where each trial draws a fresh graph from the GraphSpec (for
// random families where graph randomness should be averaged over) and runs
// from `source` (must be valid in every draw; graph sizes are fixed by the
// spec).
[[nodiscard]] TrialSet run_trials_fresh_graph(const GraphSpec& graph_spec,
                                              const ProtocolSpec& spec,
                                              Vertex source,
                                              std::size_t trials,
                                              std::uint64_t master_seed);

}  // namespace rumor

// Parallel trial runner: one global (batch, trial) work queue.
//
// Trials are independent repetitions with seeds derived statelessly from
// (master seed, trial index): the produced sample vectors are identical
// regardless of worker count or scheduling.
//
// A multi-scenario experiment file submits ALL of its scenarios' trials as
// one flattened index space (run_trial_batches), so trials from different
// scenarios interleave across the pool — a long-tail scenario (push on the
// 32k star: ~370k rounds/trial) no longer holds every worker hostage at a
// per-scenario barrier while quick scenarios wait their turn.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiments/specs.hpp"
#include "support/stats.hpp"

namespace rumor {

class ThreadPool;

// Salt separating the graph-draw seed stream from the trial seed stream:
// fresh-graph trial i draws its graph from derive_seed(master ^
// kGraphSeedSalt, i). Shared with run_scenario's single-graph draw so a
// scenario is reproducible from its text alone.
constexpr std::uint64_t kGraphSeedSalt = 0xABCDEF12345678ULL;

// The full per-trial distribution, not just a broadcast-time scalar: one
// slot per trial in every vector.
struct TrialSet {
  std::vector<double> rounds;  // broadcast time (cutoff if incomplete)
  // The all-agents milestone (visit-exchange's agent_rounds); equals
  // `rounds` for protocols without a separate one, 0 for protocols with no
  // agent notion at all (multi-rumor, async).
  std::vector<double> agent_rounds;
  // Final informed-entity counts: the containment measure when a
  // transmission model with interventions stops the rumor short.
  std::vector<double> informed;
  std::size_t incomplete = 0;  // trials that hit the round cutoff
  // Per-trial informed curves; populated only when the protocol spec
  // traces informed_curve. The stifled curves ride along whenever the
  // spec's transmission model stifles (empty per-trial vectors otherwise).
  std::vector<std::vector<std::uint32_t>> informed_curves;
  std::vector<std::vector<std::uint32_t>> stifled_curves;

  [[nodiscard]] Summary summary() const { return Summary::of(rounds); }
  [[nodiscard]] Summary agent_summary() const {
    return Summary::of(agent_rounds);
  }
  [[nodiscard]] Summary informed_summary() const {
    return Summary::of(informed);
  }
};

// R trials of `spec` on a fixed graph; `source` must be a vertex of `g`.
[[nodiscard]] TrialSet run_trials(const Graph& g, const ProtocolSpec& spec,
                                  Vertex source, std::size_t trials,
                                  std::uint64_t master_seed);

// R trials where each trial draws a fresh graph from the GraphSpec (for
// random families where graph randomness should be averaged over) and runs
// from `source`. The source is validated against every draw — a spec whose
// sizes don't cover `source` fails loudly instead of indexing out of
// bounds.
[[nodiscard]] TrialSet run_trials_fresh_graph(const GraphSpec& graph_spec,
                                              const ProtocolSpec& spec,
                                              Vertex source,
                                              std::size_t trials,
                                              std::uint64_t master_seed);

// One scenario's block of trials in the global work queue. Exactly one of
// `graph` (fixed-graph mode), `fresh_spec` (redraw per trial), and
// `lazy_spec` (deterministic spec, built by the scheduler when the batch's
// first trial is claimed and released when its trials drain — a
// many-scenario file holds at most the graphs actively being worked on,
// not the whole file's) is set; `out` is the caller-owned result slot the
// scheduler sizes and fills. Every referenced object must outlive the
// run_trial_batches call.
struct TrialBatch {
  const Graph* graph = nullptr;
  const GraphSpec* fresh_spec = nullptr;
  const GraphSpec* lazy_spec = nullptr;
  const ProtocolSpec* protocol = nullptr;
  Vertex source = 0;
  std::size_t trials = 0;
  std::uint64_t master_seed = 0;
  TrialSet* out = nullptr;
  // Expected relative cost for BatchOrder::longest_first (the n·trials
  // heuristic run_scenarios fills in); 0 falls back to `trials`.
  std::size_t cost_hint = 0;
};

// How the scheduler orders batches in the claim queue. Results and report
// order are IDENTICAL either way (sample i of batch b depends only on
// (master_seed, i), and on_batch_done always fires in batch order); only
// wall-clock tails differ.
enum class BatchOrder {
  file,           // claim trials in submission order (the default)
  longest_first,  // start the highest cost_hint batches first: a long-tail
                  // scenario late in the file no longer finishes last
};

// Thrown by run_trial_batches when a trial throws: carries which batch
// failed so the caller can name the scenario. Remaining trials are
// abandoned (already-emitted on_batch_done batches stay emitted; no
// further batches are reported).
class TrialBatchError : public std::runtime_error {
 public:
  TrialBatchError(std::size_t batch, const std::string& message)
      : std::runtime_error(message), batch_index_(batch) {}
  [[nodiscard]] std::size_t batch_index() const { return batch_index_; }

 private:
  std::size_t batch_index_;
};

// Point-in-time view of a draining trial queue. The invariant
// trials_done <= trials_claimed <= trials_total holds in every snapshot
// (enforced by TrialCounters' load ordering); at drain all three are
// equal and batches_done == batches_total.
struct TrialQueueSnapshot {
  std::size_t trials_total = 0;
  std::size_t trials_claimed = 0;  // handed to a worker (includes done)
  std::size_t trials_done = 0;
  std::size_t batches_total = 0;
  std::size_t batches_done = 0;
  [[nodiscard]] std::size_t in_flight() const {
    return trials_claimed - trials_done;
  }
  [[nodiscard]] std::size_t queued() const {
    return trials_total - trials_claimed;
  }
};

// Shared queue-depth/in-flight counters: run_trial_batches (and the serve
// scheduler, which drains the same per-trial executor) bump these as
// trials are claimed and retired; any thread may snapshot() concurrently —
// the CLI's --progress lines and the serve daemon's STATS reply both do.
//
// The snapshot loads done BEFORE claimed and claimed BEFORE total, and the
// writers order their increments the opposite way (a trial is counted
// claimed before it runs; a batch's trials are counted into total before
// any is claimable), so every snapshot satisfies done <= claimed <= total
// even mid-drain. Totals may grow between snapshots (the serve queue
// accepts jobs while draining) or shrink when a cancellation drops
// never-claimed trials.
class TrialCounters {
 public:
  void add(std::size_t trials, std::size_t batches) {
    trials_total_.fetch_add(trials, std::memory_order_relaxed);
    batches_total_.fetch_add(batches, std::memory_order_relaxed);
  }
  // Cancellation: removes trials that will never be claimed (the batch
  // still counts as done when it retires).
  void drop_trials(std::size_t trials) {
    trials_total_.fetch_sub(trials, std::memory_order_relaxed);
  }
  // Cancellation of a whole batch mid-drain: it will never retire through
  // on_batch_done, so its slot leaves the total.
  void drop_batches(std::size_t batches) {
    batches_total_.fetch_sub(batches, std::memory_order_relaxed);
  }
  void on_claim() { trials_claimed_.fetch_add(1, std::memory_order_relaxed); }
  void on_trial_done() {
    trials_done_.fetch_add(1, std::memory_order_release);
  }
  void on_batch_done() {
    batches_done_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] TrialQueueSnapshot snapshot() const {
    TrialQueueSnapshot s;
    s.batches_done = batches_done_.load(std::memory_order_relaxed);
    s.trials_done = trials_done_.load(std::memory_order_acquire);
    s.trials_claimed = trials_claimed_.load(std::memory_order_relaxed);
    s.trials_total = trials_total_.load(std::memory_order_relaxed);
    s.batches_total = batches_total_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<std::size_t> trials_total_{0};
  std::atomic<std::size_t> trials_claimed_{0};
  std::atomic<std::size_t> trials_done_{0};
  std::atomic<std::size_t> batches_total_{0};
  std::atomic<std::size_t> batches_done_{0};
};

// Build-on-first-claim slot for a lazy batch: the graph materializes when
// some worker claims the batch's first trial and is released (by the
// scheduler, when the batch drains) so a many-scenario queue holds at most
// the graphs actively being worked on. The graph seed derivation matches
// the eager path, so laziness cannot change a result.
class LazyGraphSlot {
 public:
  const Graph& acquire(const TrialBatch& batch);
  void release();

 private:
  std::mutex mutex_;
  std::optional<Graph> graph_;
};

// Validates `batch` (same preconditions run_trial_batches enforces) and
// sizes every vector of *batch.out for batch.trials slots. Returns whether
// the protocol traces per-trial curves. The serve scheduler calls this
// once per accepted batch; run_trial_batches performs it internally.
bool prepare_trial_set(const TrialBatch& batch);

// Runs trial `i` of a prepared batch EXACTLY as run_trial_batches would —
// same (master_seed, i) seed derivation, same per-thread TrialArena reuse,
// same fresh/lazy/fixed graph resolution — and records the outcome into
// batch.out slot i. Returns whether the trial completed (false = hit the
// round cutoff; the caller aggregates TrialSet::incomplete). `lazy` is
// required iff batch.lazy_spec is set. This is the single-claim building
// block the serve fair-share scheduler drains through, so service results
// are byte-identical to a one-shot run by construction.
bool run_batch_trial(const TrialBatch& batch, std::size_t i,
                     LazyGraphSlot* lazy = nullptr);

struct TrialRunOptions {
  // Fired once per batch, in BATCH ORDER (batch b is reported only after
  // batches 0..b-1), as completions allow — the streaming-report hook.
  // Runs on a worker thread under the scheduler's emission lock.
  std::function<void(std::size_t)> on_batch_done;
  ThreadPool* pool = nullptr;  // nullptr = global_pool()
  BatchOrder order = BatchOrder::file;
  // Graceful-stop flag, polled before every claim: once observed true, no
  // further trial starts (in-flight trials finish and are recorded), no
  // further batch is emitted, and the run returns with stopped=true
  // instead of throwing — the SIGINT path.
  const std::atomic<bool>* stop = nullptr;
  // Queue-depth introspection (see TrialCounters); the run add()s its
  // totals on entry and bumps claim/done live.
  TrialCounters* counters = nullptr;
  // Fired after every recorded trial (worker thread, unordered):
  // (batch index, trial index).
  std::function<void(std::size_t, std::size_t)> on_trial_done;
};

struct TrialRunOutcome {
  bool stopped = false;        // the stop flag cut the run short
  std::size_t trials_run = 0;  // trials actually executed and recorded
};

// Drains every batch's trials through ONE parallel-for over the
// concatenated (batch, trial) index space: trials from different batches
// interleave freely across workers, there is no barrier between batches,
// and per-worker TrialArena reuse keeps steady-state allocations at zero.
// Sample i of batch b is still derive_seed(b.master_seed, i) — identical
// to running the batches one at a time, for any worker count and any
// BatchOrder.
//
// `on_batch_done(b)` fires once per batch, in BATCH ORDER (batch b is
// reported only after batches 0..b-1 were reported), as completions allow
// — the streaming-report hook. It runs on a worker thread under the
// scheduler's emission lock; keep it cheap. `pool` defaults to
// global_pool().
void run_trial_batches(
    const std::vector<TrialBatch>& batches,
    const std::function<void(std::size_t)>& on_batch_done = {},
    ThreadPool* pool = nullptr, BatchOrder order = BatchOrder::file);

// As above, with the full option set (stop flag, queue counters, per-trial
// hook). The no-options overload is equivalent to default TrialRunOptions.
TrialRunOutcome run_trial_batches(const std::vector<TrialBatch>& batches,
                                  const TrialRunOptions& options);

}  // namespace rumor

// Parallel trial runner.
//
// Trials are independent repetitions with seeds derived statelessly from
// (master seed, trial index): the produced sample vectors are identical
// regardless of worker count or scheduling.
#pragma once

#include <cstdint>
#include <vector>

#include "experiments/specs.hpp"
#include "support/stats.hpp"

namespace rumor {

// Salt separating the graph-draw seed stream from the trial seed stream:
// fresh-graph trial i draws its graph from derive_seed(master ^
// kGraphSeedSalt, i). Shared with run_scenario's single-graph draw so a
// scenario is reproducible from its text alone.
constexpr std::uint64_t kGraphSeedSalt = 0xABCDEF12345678ULL;

// The full per-trial distribution, not just a broadcast-time scalar: one
// slot per trial in every vector.
struct TrialSet {
  std::vector<double> rounds;  // broadcast time (cutoff if incomplete)
  // The all-agents milestone (visit-exchange's agent_rounds); equals
  // `rounds` for protocols without a separate one, 0 for protocols with no
  // agent notion at all (multi-rumor, async).
  std::vector<double> agent_rounds;
  std::size_t incomplete = 0;  // trials that hit the round cutoff
  // Per-trial informed curves; populated only when the protocol spec
  // traces informed_curve.
  std::vector<std::vector<std::uint32_t>> informed_curves;

  [[nodiscard]] Summary summary() const { return Summary::of(rounds); }
  [[nodiscard]] Summary agent_summary() const {
    return Summary::of(agent_rounds);
  }
};

// R trials of `spec` on a fixed graph; `source` must be a vertex of `g`.
[[nodiscard]] TrialSet run_trials(const Graph& g, const ProtocolSpec& spec,
                                  Vertex source, std::size_t trials,
                                  std::uint64_t master_seed);

// R trials where each trial draws a fresh graph from the GraphSpec (for
// random families where graph randomness should be averaged over) and runs
// from `source`. The source is validated against every draw — a spec whose
// sizes don't cover `source` fails loudly instead of indexing out of
// bounds.
[[nodiscard]] TrialSet run_trials_fresh_graph(const GraphSpec& graph_spec,
                                              const ProtocolSpec& spec,
                                              Vertex source,
                                              std::size_t trials,
                                              std::uint64_t master_seed);

}  // namespace rumor

// Parallel trial runner: one global (batch, trial) work queue.
//
// Trials are independent repetitions with seeds derived statelessly from
// (master seed, trial index): the produced sample vectors are identical
// regardless of worker count or scheduling.
//
// A multi-scenario experiment file submits ALL of its scenarios' trials as
// one flattened index space (run_trial_batches), so trials from different
// scenarios interleave across the pool — a long-tail scenario (push on the
// 32k star: ~370k rounds/trial) no longer holds every worker hostage at a
// per-scenario barrier while quick scenarios wait their turn.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiments/specs.hpp"
#include "support/stats.hpp"

namespace rumor {

class ThreadPool;

// Salt separating the graph-draw seed stream from the trial seed stream:
// fresh-graph trial i draws its graph from derive_seed(master ^
// kGraphSeedSalt, i). Shared with run_scenario's single-graph draw so a
// scenario is reproducible from its text alone.
constexpr std::uint64_t kGraphSeedSalt = 0xABCDEF12345678ULL;

// The full per-trial distribution, not just a broadcast-time scalar: one
// slot per trial in every vector.
struct TrialSet {
  std::vector<double> rounds;  // broadcast time (cutoff if incomplete)
  // The all-agents milestone (visit-exchange's agent_rounds); equals
  // `rounds` for protocols without a separate one, 0 for protocols with no
  // agent notion at all (multi-rumor, async).
  std::vector<double> agent_rounds;
  // Final informed-entity counts: the containment measure when a
  // transmission model with interventions stops the rumor short.
  std::vector<double> informed;
  std::size_t incomplete = 0;  // trials that hit the round cutoff
  // Per-trial informed curves; populated only when the protocol spec
  // traces informed_curve. The stifled curves ride along whenever the
  // spec's transmission model stifles (empty per-trial vectors otherwise).
  std::vector<std::vector<std::uint32_t>> informed_curves;
  std::vector<std::vector<std::uint32_t>> stifled_curves;

  [[nodiscard]] Summary summary() const { return Summary::of(rounds); }
  [[nodiscard]] Summary agent_summary() const {
    return Summary::of(agent_rounds);
  }
  [[nodiscard]] Summary informed_summary() const {
    return Summary::of(informed);
  }
};

// R trials of `spec` on a fixed graph; `source` must be a vertex of `g`.
[[nodiscard]] TrialSet run_trials(const Graph& g, const ProtocolSpec& spec,
                                  Vertex source, std::size_t trials,
                                  std::uint64_t master_seed);

// R trials where each trial draws a fresh graph from the GraphSpec (for
// random families where graph randomness should be averaged over) and runs
// from `source`. The source is validated against every draw — a spec whose
// sizes don't cover `source` fails loudly instead of indexing out of
// bounds.
[[nodiscard]] TrialSet run_trials_fresh_graph(const GraphSpec& graph_spec,
                                              const ProtocolSpec& spec,
                                              Vertex source,
                                              std::size_t trials,
                                              std::uint64_t master_seed);

// One scenario's block of trials in the global work queue. Exactly one of
// `graph` (fixed-graph mode), `fresh_spec` (redraw per trial), and
// `lazy_spec` (deterministic spec, built by the scheduler when the batch's
// first trial is claimed and released when its trials drain — a
// many-scenario file holds at most the graphs actively being worked on,
// not the whole file's) is set; `out` is the caller-owned result slot the
// scheduler sizes and fills. Every referenced object must outlive the
// run_trial_batches call.
struct TrialBatch {
  const Graph* graph = nullptr;
  const GraphSpec* fresh_spec = nullptr;
  const GraphSpec* lazy_spec = nullptr;
  const ProtocolSpec* protocol = nullptr;
  Vertex source = 0;
  std::size_t trials = 0;
  std::uint64_t master_seed = 0;
  TrialSet* out = nullptr;
  // Expected relative cost for BatchOrder::longest_first (the n·trials
  // heuristic run_scenarios fills in); 0 falls back to `trials`.
  std::size_t cost_hint = 0;
};

// How the scheduler orders batches in the claim queue. Results and report
// order are IDENTICAL either way (sample i of batch b depends only on
// (master_seed, i), and on_batch_done always fires in batch order); only
// wall-clock tails differ.
enum class BatchOrder {
  file,           // claim trials in submission order (the default)
  longest_first,  // start the highest cost_hint batches first: a long-tail
                  // scenario late in the file no longer finishes last
};

// Thrown by run_trial_batches when a trial throws: carries which batch
// failed so the caller can name the scenario. Remaining trials are
// abandoned (already-emitted on_batch_done batches stay emitted; no
// further batches are reported).
class TrialBatchError : public std::runtime_error {
 public:
  TrialBatchError(std::size_t batch, const std::string& message)
      : std::runtime_error(message), batch_index_(batch) {}
  [[nodiscard]] std::size_t batch_index() const { return batch_index_; }

 private:
  std::size_t batch_index_;
};

// Drains every batch's trials through ONE parallel-for over the
// concatenated (batch, trial) index space: trials from different batches
// interleave freely across workers, there is no barrier between batches,
// and per-worker TrialArena reuse keeps steady-state allocations at zero.
// Sample i of batch b is still derive_seed(b.master_seed, i) — identical
// to running the batches one at a time, for any worker count and any
// BatchOrder.
//
// `on_batch_done(b)` fires once per batch, in BATCH ORDER (batch b is
// reported only after batches 0..b-1 were reported), as completions allow
// — the streaming-report hook. It runs on a worker thread under the
// scheduler's emission lock; keep it cheap. `pool` defaults to
// global_pool().
void run_trial_batches(
    const std::vector<TrialBatch>& batches,
    const std::function<void(std::size_t)>& on_batch_done = {},
    ThreadPool* pool = nullptr, BatchOrder order = BatchOrder::file);

}  // namespace rumor

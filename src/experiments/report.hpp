// Output helpers shared by the bench binaries and the scenario runner:
// claim verdict lines, mean±stderr cells, optional CSV artifact dumps,
// and the streaming scenario report (rows emitted as scenarios complete,
// in file order — see run_scenarios' on_result hook).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "analysis/scaling.hpp"
#include "experiments/scenario.hpp"
#include "support/csv.hpp"
#include "support/stats.hpp"

namespace rumor {

// "123.4 ±5.6"
[[nodiscard]] std::string fmt_mean_pm(const Summary& s, int precision = 1);

// Prints "[ OK ] claim — measured" or "[WARN] ..." to stdout; returns ok so
// callers can aggregate an exit summary.
bool print_claim(bool ok, std::string_view claim, std::string_view measured);

// Writes a ScalingSeries set as CSV into $RUMOR_RESULTS_DIR/<name>.csv if
// that environment variable is set; otherwise does nothing. Never throws:
// reports failures to stderr (bench output must not die on I/O).
void maybe_dump_csv(const std::string& name,
                    const std::vector<ScalingSeries>& series);

// Streams the terminal scenario report: the header is printed at
// construction, one aligned row per completed scenario. Spec-derived
// column widths are computed from the whole file up front, so streamed
// rows line up without waiting for the last scenario.
class ScenarioTableStream {
 public:
  ScenarioTableStream(const std::vector<ScenarioSpec>& specs,
                      std::ostream& out);
  void row(const ScenarioResult& r);

 private:
  std::ostream& out_;
  std::vector<std::size_t> widths_;
};

// Streams the scenario CSV artifact: header at construction — which is
// what lets the CLI open and validate the sink BEFORE any trial runs —
// then one row per completed scenario, same columns as write_scenario_csv.
class ScenarioCsvStream {
 public:
  explicit ScenarioCsvStream(std::ostream& out);
  void row(const ScenarioResult& r);

 private:
  CsvWriter csv_;
};

// The scenario CSV header and one formatted data row as single lines
// WITHOUT the trailing newline — the serve daemon streams these over the
// wire so a client-collected CSV is byte-identical to write_scenario_csv
// output (same cells, same RFC 4180 escaping).
[[nodiscard]] std::string scenario_csv_header_line();
[[nodiscard]] std::string scenario_csv_line(const ScenarioResult& r);

}  // namespace rumor

// Output helpers shared by the bench binaries: claim verdict lines,
// mean±stderr cells, and optional CSV artifact dumps.
#pragma once

#include <string>
#include <string_view>

#include "analysis/scaling.hpp"
#include "support/stats.hpp"

namespace rumor {

// "123.4 ±5.6"
[[nodiscard]] std::string fmt_mean_pm(const Summary& s, int precision = 1);

// Prints "[ OK ] claim — measured" or "[WARN] ..." to stdout; returns ok so
// callers can aggregate an exit summary.
bool print_claim(bool ok, std::string_view claim, std::string_view measured);

// Writes a ScalingSeries set as CSV into $RUMOR_RESULTS_DIR/<name>.csv if
// that environment variable is set; otherwise does nothing. Never throws:
// reports failures to stderr (bench output must not die on I/O).
void maybe_dump_csv(const std::string& name,
                    const std::vector<ScalingSeries>& series);

}  // namespace rumor

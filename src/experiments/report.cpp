#include "experiments/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "support/csv.hpp"

namespace rumor {

std::string fmt_mean_pm(const Summary& s, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f ±%.*f", precision, s.mean, precision,
                s.stderr_mean);
  return buf;
}

bool print_claim(bool ok, std::string_view claim, std::string_view measured) {
  std::printf("[%s] %.*s — %.*s\n", ok ? " OK " : "WARN",
              static_cast<int>(claim.size()), claim.data(),
              static_cast<int>(measured.size()), measured.data());
  return ok;
}

void maybe_dump_csv(const std::string& name,
                    const std::vector<ScalingSeries>& series) {
  const char* dir = std::getenv("RUMOR_RESULTS_DIR");
  if (dir == nullptr || series.empty()) return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  CsvWriter csv(out, {"series", "n", "trials", "mean", "stddev", "min",
                      "median", "max"});
  for (const auto& s : series) {
    for (const auto& p : s.points) {
      csv.row({s.label, std::to_string(p.n),
               std::to_string(p.summary.count), std::to_string(p.summary.mean),
               std::to_string(p.summary.stddev), std::to_string(p.summary.min),
               std::to_string(p.summary.median),
               std::to_string(p.summary.max)});
    }
  }
}

}  // namespace rumor

#include "experiments/report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "support/table.hpp"

namespace rumor {

std::string fmt_mean_pm(const Summary& s, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f ±%.*f", precision, s.mean, precision,
                s.stderr_mean);
  return buf;
}

bool print_claim(bool ok, std::string_view claim, std::string_view measured) {
  std::printf("[%s] %.*s — %.*s\n", ok ? " OK " : "WARN",
              static_cast<int>(claim.size()), claim.data(),
              static_cast<int>(measured.size()), measured.data());
  return ok;
}

void maybe_dump_csv(const std::string& name,
                    const std::vector<ScalingSeries>& series) {
  const char* dir = std::getenv("RUMOR_RESULTS_DIR");
  if (dir == nullptr || series.empty()) return;
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  CsvWriter csv(out, {"series", "n", "trials", "mean", "stddev", "min",
                      "median", "max"});
  for (const auto& s : series) {
    for (const auto& p : s.points) {
      csv.row({s.label, std::to_string(p.n),
               std::to_string(p.summary.count), std::to_string(p.summary.mean),
               std::to_string(p.summary.stddev), std::to_string(p.summary.min),
               std::to_string(p.summary.median),
               std::to_string(p.summary.max)});
    }
  }
}

// ---- Scenario report ---------------------------------------------------

namespace {

const std::vector<std::string>& scenario_table_header() {
  static const std::vector<std::string> header{
      "scenario", "graph",  "protocol", "n",        "trials",    "mean",
      "median",   "min",    "max",      "informed", "incomplete"};
  return header;
}

std::vector<std::string> scenario_table_cells(const ScenarioResult& r) {
  const Summary s = r.set.summary();
  return {r.spec.display_label(),   r.spec.graph.name(),
          r.spec.protocol.name(),   std::to_string(r.n),
          std::to_string(s.count),  fmt_mean_pm(s),
          TextTable::num(s.median, 1), TextTable::num(s.min, 1),
          TextTable::num(s.max, 1),
          TextTable::num(r.set.informed_summary().mean, 1),
          std::to_string(r.set.incomplete)};
}

const std::vector<std::string>& scenario_csv_header() {
  static const std::vector<std::string> header{
      "label", "graph",  "protocol", "n",   "m",   "trials",
      "seed",  "source", "mean",     "stddev", "stderr", "min",
      "q25",   "median", "q75",      "max", "agent_mean", "informed_mean",
      "incomplete"};
  return header;
}

std::vector<std::string> scenario_csv_cells(const ScenarioResult& r) {
  const Summary s = r.set.summary();
  const Summary agents = r.set.agent_summary();
  return {r.spec.display_label(), r.spec.graph.name(),
          r.spec.protocol.name(), std::to_string(r.n),
          std::to_string(r.edges), std::to_string(s.count),
          std::to_string(r.spec.plan.seed),
          std::to_string(r.spec.plan.source), std::to_string(s.mean),
          std::to_string(s.stddev), std::to_string(s.stderr_mean),
          std::to_string(s.min), std::to_string(s.q25),
          std::to_string(s.median), std::to_string(s.q75),
          std::to_string(s.max), std::to_string(agents.mean),
          std::to_string(r.set.informed_summary().mean),
          std::to_string(r.set.incomplete)};
}

}  // namespace

std::string scenario_table(const std::vector<ScenarioResult>& results) {
  TextTable table(scenario_table_header());
  for (const ScenarioResult& r : results) {
    table.add_row(scenario_table_cells(r));
  }
  return table.render_plain();
}

void write_scenario_csv(std::ostream& out,
                        const std::vector<ScenarioResult>& results) {
  ScenarioCsvStream stream(out);
  for (const ScenarioResult& r : results) stream.row(r);
}

ScenarioTableStream::ScenarioTableStream(
    const std::vector<ScenarioSpec>& specs, std::ostream& out)
    : out_(out) {
  const auto& header = scenario_table_header();
  widths_.assign(header.size(), 0);
  for (std::size_t c = 0; c < header.size(); ++c) {
    widths_[c] = header[c].size();
  }
  // The spec-derived text columns are known before any trial runs; the
  // numeric columns get generous fixed floors (a longer cell only bends
  // its own row, it does not shift the file).
  for (const ScenarioSpec& spec : specs) {
    widths_[0] = std::max(widths_[0], spec.display_label().size());
    widths_[1] = std::max(widths_[1], spec.graph.name().size());
    widths_[2] = std::max(widths_[2], spec.protocol.name().size());
  }
  widths_[3] = std::max<std::size_t>(widths_[3], 8);   // n
  widths_[5] = std::max<std::size_t>(widths_[5], 18);  // mean ±stderr
  widths_[6] = std::max<std::size_t>(widths_[6], 9);   // median
  widths_[7] = std::max<std::size_t>(widths_[7], 9);   // min
  widths_[8] = std::max<std::size_t>(widths_[8], 9);   // max
  widths_[9] = std::max<std::size_t>(widths_[9], 9);   // informed
  TextTable::emit_plain_row(out_, header, widths_);
  out_ << TextTable::plain_rule(widths_) << '\n' << std::flush;
}

void ScenarioTableStream::row(const ScenarioResult& r) {
  TextTable::emit_plain_row(out_, scenario_table_cells(r), widths_);
  out_ << std::flush;  // a streamed row must not sit in a buffer
}

ScenarioCsvStream::ScenarioCsvStream(std::ostream& out)
    : csv_(out, scenario_csv_header()) {}

void ScenarioCsvStream::row(const ScenarioResult& r) {
  csv_.row(scenario_csv_cells(r));
}

namespace {

std::string join_csv(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) line += ',';
    line += CsvWriter::escape(cells[i]);
  }
  return line;
}

}  // namespace

std::string scenario_csv_header_line() {
  return join_csv(scenario_csv_header());
}

std::string scenario_csv_line(const ScenarioResult& r) {
  return join_csv(scenario_csv_cells(r));
}

}  // namespace rumor

#include "experiments/specs.hpp"

#include "core/hybrid.hpp"
#include "core/meet_exchange.hpp"
#include "core/visit_exchange.hpp"
#include "graph/generators.hpp"

namespace rumor {

Graph GraphSpec::make(Rng& rng) const {
  switch (family) {
    case Family::star:
      return gen::star(static_cast<Vertex>(a));
    case Family::double_star:
      return gen::double_star(static_cast<Vertex>(a));
    case Family::heavy_tree:
      return gen::heavy_binary_tree(static_cast<Vertex>(a));
    case Family::siamese:
      return gen::siamese_heavy_tree(static_cast<Vertex>(a));
    case Family::cycle_stars_cliques:
      return gen::cycle_stars_cliques(static_cast<Vertex>(a));
    case Family::complete:
      return gen::complete(static_cast<Vertex>(a));
    case Family::cycle:
      return gen::cycle(static_cast<Vertex>(a));
    case Family::path:
      return gen::path(static_cast<Vertex>(a));
    case Family::grid:
      return gen::grid2d(static_cast<Vertex>(a), static_cast<Vertex>(b));
    case Family::torus:
      return gen::torus2d(static_cast<Vertex>(a), static_cast<Vertex>(b));
    case Family::hypercube:
      return gen::hypercube(static_cast<std::uint32_t>(a));
    case Family::circulant:
      return gen::circulant(static_cast<Vertex>(a),
                            static_cast<std::uint32_t>(b));
    case Family::clique_ring:
      return gen::clique_ring(static_cast<Vertex>(a), static_cast<Vertex>(b));
    case Family::clique_path:
      return gen::clique_path(static_cast<Vertex>(a), static_cast<Vertex>(b));
    case Family::random_regular:
      return gen::random_regular(static_cast<Vertex>(a),
                                 static_cast<std::uint32_t>(b), rng);
    case Family::erdos_renyi:
      return gen::erdos_renyi_connected(static_cast<Vertex>(a), p, rng);
    case Family::barbell:
      return gen::barbell(static_cast<Vertex>(a));
    case Family::star_of_cliques:
      return gen::star_of_cliques(static_cast<Vertex>(a),
                                  static_cast<Vertex>(b));
    case Family::binary_tree:
      return gen::balanced_binary_tree(static_cast<Vertex>(a));
  }
  RUMOR_CHECK(false);  // unreachable
  return gen::complete(2);
}

std::string GraphSpec::name() const {
  const auto num = [](std::uint64_t v) { return std::to_string(v); };
  switch (family) {
    case Family::star:
      return "star(leaves=" + num(a) + ")";
    case Family::double_star:
      return "double_star(leaves=" + num(a) + ")";
    case Family::heavy_tree:
      return "heavy_tree(n=" + num(a) + ")";
    case Family::siamese:
      return "siamese(n=" + num(a) + ")";
    case Family::cycle_stars_cliques:
      return "cycle_stars_cliques(k=" + num(a) + ")";
    case Family::complete:
      return "complete(n=" + num(a) + ")";
    case Family::cycle:
      return "cycle(n=" + num(a) + ")";
    case Family::path:
      return "path(n=" + num(a) + ")";
    case Family::grid:
      return "grid(" + num(a) + "x" + num(b) + ")";
    case Family::torus:
      return "torus(" + num(a) + "x" + num(b) + ")";
    case Family::hypercube:
      return "hypercube(dim=" + num(a) + ")";
    case Family::circulant:
      return "circulant(n=" + num(a) + ",k=" + num(b) + ")";
    case Family::clique_ring:
      return "clique_ring(groups=" + num(a) + ",k=" + num(b) + ")";
    case Family::clique_path:
      return "clique_path(groups=" + num(a) + ",k=" + num(b) + ")";
    case Family::random_regular:
      return "random_regular(n=" + num(a) + ",d=" + num(b) + ")";
    case Family::erdos_renyi:
      return "erdos_renyi(n=" + num(a) + ",p=" + std::to_string(p) + ")";
    case Family::barbell:
      return "barbell(k=" + num(a) + ")";
    case Family::star_of_cliques:
      return "star_of_cliques(c=" + num(a) + ",k=" + num(b) + ")";
    case Family::binary_tree:
      return "binary_tree(n=" + num(a) + ")";
  }
  return "unknown";
}

std::string protocol_name(Protocol p) {
  switch (p) {
    case Protocol::push:
      return "push";
    case Protocol::push_pull:
      return "push-pull";
    case Protocol::visit_exchange:
      return "visit-exchange";
    case Protocol::meet_exchange:
      return "meet-exchange";
    case Protocol::hybrid:
      return "hybrid";
  }
  return "unknown";
}

ProtocolSpec default_spec(Protocol p) {
  ProtocolSpec spec;
  spec.protocol = p;
  if (p == Protocol::meet_exchange) {
    spec.walk.lazy = LazyMode::auto_bipartite;
  }
  return spec;
}

TrialOutcome run_protocol(const Graph& g, const ProtocolSpec& spec,
                          Vertex source, std::uint64_t seed,
                          TrialArena* arena) {
  RunResult r;
  switch (spec.protocol) {
    case Protocol::push:
      r = PushProcess(g, source, seed, spec.push, arena).run();
      break;
    case Protocol::push_pull:
      r = PushPullProcess(g, source, seed, spec.push_pull, arena).run();
      break;
    case Protocol::visit_exchange:
      r = VisitExchangeProcess(g, source, seed, spec.walk, arena).run();
      break;
    case Protocol::meet_exchange:
      r = MeetExchangeProcess(g, source, seed, spec.walk, arena).run();
      break;
    case Protocol::hybrid:
      r = HybridProcess(g, source, seed, spec.walk, arena).run();
      break;
  }
  return {static_cast<double>(r.rounds), r.completed};
}

}  // namespace rumor

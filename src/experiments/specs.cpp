#include "experiments/specs.hpp"

#include <array>

#include "graph/file_graph.hpp"
#include "graph/generators.hpp"
#include "support/spec_text.hpp"

namespace rumor {

namespace {

// One row per family: the spec-grammar head and the parameter keys. The
// same table drives name() and parse(), so the two cannot drift apart.
struct FamilyInfo {
  Family family;
  const char* name;
  const char* key_a;
  const char* key_b;   // nullptr = family has no second parameter
  bool has_p = false;  // erdos_renyi's edge probability
};

constexpr std::array<FamilyInfo, 19> kFamilies{{
    {Family::star, "star", "leaves", nullptr},
    {Family::double_star, "double_star", "leaves", nullptr},
    {Family::heavy_tree, "heavy_tree", "n", nullptr},
    {Family::siamese, "siamese", "n", nullptr},
    {Family::cycle_stars_cliques, "cycle_stars_cliques", "k", nullptr},
    {Family::complete, "complete", "n", nullptr},
    {Family::cycle, "cycle", "n", nullptr},
    {Family::path, "path", "n", nullptr},
    {Family::grid, "grid", "rows", "cols"},
    {Family::torus, "torus", "rows", "cols"},
    {Family::hypercube, "hypercube", "dim", nullptr},
    {Family::circulant, "circulant", "n", "k"},
    {Family::clique_ring, "clique_ring", "groups", "k"},
    {Family::clique_path, "clique_path", "groups", "k"},
    {Family::random_regular, "random_regular", "n", "d"},
    {Family::erdos_renyi, "erdos_renyi", "n", nullptr, true},
    {Family::barbell, "barbell", "k", nullptr},
    {Family::star_of_cliques, "star_of_cliques", "c", "k"},
    {Family::binary_tree, "binary_tree", "n", nullptr},
}};

const FamilyInfo& family_info(Family family) {
  for (const FamilyInfo& info : kFamilies) {
    if (info.family == family) return info;
  }
  RUMOR_CHECK(false);  // unreachable: the table covers the enum
  return kFamilies[0];
}

const FamilyInfo* family_info(std::string_view name) {
  for (const FamilyInfo& info : kFamilies) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

// Families whose adjacency has a closed form (graph/implicit.hpp); the
// parameter order (a, b) matches make_implicit_desc's.
ImplicitKind implicit_kind_of(Family family) {
  switch (family) {
    case Family::star: return ImplicitKind::star;
    case Family::cycle: return ImplicitKind::cycle;
    case Family::complete: return ImplicitKind::complete;
    case Family::grid: return ImplicitKind::grid;
    case Family::torus: return ImplicitKind::torus;
    case Family::circulant: return ImplicitKind::circulant;
    default: return ImplicitKind::none;
  }
}

// Exact private footprint of an owned-CSR build: offsets (n+1 u32) +
// neighbors and edge_ids (2m u32 each) + the (min, max) edge list (m x 8).
std::uint64_t owned_csr_bytes(std::uint64_t n, std::uint64_t m) {
  return 4 * (n + 1) + 24 * m;
}

const char* backend_choice_name(GraphBackendChoice choice) {
  switch (choice) {
    case GraphBackendChoice::automatic: return "auto";
    case GraphBackendChoice::owned: return "owned";
    case GraphBackendChoice::implicit: return "implicit";
  }
  return "?";
}

// Closed-form n/m plus the generator preconditions for the materialized
// deterministic families (the implicit-capable six answer through
// make_implicit_desc instead). Computes in 128-bit so absurd parameters
// report "too large" rather than wrapping.
bool probe_materialized(const GraphSpec& spec, GraphProbe& out,
                        std::string* error) {
  const auto fail = [&](const char* msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  using u128 = unsigned __int128;
  const u128 a = spec.a;
  const u128 b = spec.b;
  u128 n = 0;
  u128 m = 0;
  switch (spec.family) {
    case Family::double_star:
      if (a < 2) return fail("double_star requires leaves >= 2");
      n = 2 + 2 * a;
      m = 2 * a + 1;
      break;
    case Family::heavy_tree:
    case Family::siamese: {
      if (a < 4) return fail("heavy tree families require n >= 4");
      const u128 leaves = a - a / 2;  // heap positions [n/2, n)
      const u128 one = (a - 1) + leaves * (leaves - 1) / 2;
      const bool two = spec.family == Family::siamese;
      n = two ? 2 * a - 1 : a;
      m = two ? 2 * one : one;
      break;
    }
    case Family::cycle_stars_cliques:
      if (a < 3) return fail("cycle_stars_cliques requires k >= 3");
      n = a + a * a + a * a * a;
      m = a + a * a + a * a * (a + a * (a - 1) / 2);
      break;
    case Family::path:
      if (a < 2) return fail("path requires n >= 2");
      n = a;
      m = a - 1;
      break;
    case Family::hypercube:
      if (a < 1 || a >= 31) return fail("hypercube requires 1 <= dim < 31");
      n = u128{1} << spec.a;
      m = a * (u128{1} << (spec.a - 1));
      break;
    case Family::clique_ring:
    case Family::clique_path: {
      if (a < 3 || b < 2) {
        return fail("clique families require groups >= 3, k >= 2");
      }
      const u128 links = spec.family == Family::clique_ring ? a : a - 1;
      n = a * b;
      m = a * (b * (b - 1) / 2) + links * b;
      break;
    }
    case Family::random_regular:
      if (a < 2 || b < 1 || b >= a) {
        return fail("random_regular requires n >= 2, 1 <= d < n");
      }
      if ((a * b) % 2 != 0) {
        return fail("random_regular requires n*d even");
      }
      n = a;
      m = a * b / 2;
      break;
    case Family::erdos_renyi:
      if (a < 2) return fail("erdos_renyi requires n >= 2");
      n = a;
      m = static_cast<u128>(spec.p * 0.5 * static_cast<double>(spec.a) *
                            static_cast<double>(spec.a - 1));
      out.m_estimated = true;
      break;
    case Family::barbell:
      if (a < 2) return fail("barbell requires k >= 2");
      n = 2 * a;
      m = a * (a - 1) + 1;
      break;
    case Family::star_of_cliques:
      if (a < 2 || b < 2) {
        return fail("star_of_cliques requires cliques >= 2, k >= 2");
      }
      n = 1 + a * b;
      m = a + a * (b * (b - 1) / 2);
      break;
    case Family::binary_tree:
      if (a < 2) return fail("binary_tree requires n >= 2");
      n = a;
      m = a - 1;
      break;
    default:
      RUMOR_CHECK(false);  // implicit-capable / file handled by the caller
  }
  if (n > 0xFFFFFFFFull) {
    return fail("graph too large: vertex count exceeds 32-bit ids");
  }
  if (m >= u128{1} << 31) {
    return fail("graph too large: edge count exceeds 32-bit edge ids");
  }
  out.n = static_cast<Vertex>(n);
  out.m = static_cast<std::uint64_t>(m);
  return true;
}

}  // namespace

GraphBackend GraphSpec::resolved_backend() const {
  if (family == Family::file) return GraphBackend::mapped;
  if (backend != GraphBackendChoice::owned &&
      implicit_kind_of(family) != ImplicitKind::none) {
    return GraphBackend::implicit;
  }
  return GraphBackend::owned;
}

std::optional<GraphProbe> GraphSpec::probe(std::string* error) const {
  GraphProbe out;
  out.backend = resolved_backend();
  if (family == Family::file) {
    try {
      const FileGraphInfo info = probe_file_graph(path);
      out.n = info.n;
      out.m = info.m;
      out.graph_bytes = info.cache_bytes;
    } catch (const GraphFileError& e) {
      if (error != nullptr) *error = e.what();
      return std::nullopt;
    }
    return out;
  }
  if (const ImplicitKind kind = implicit_kind_of(family);
      kind != ImplicitKind::none) {
    // The closed forms validate exactly the generator preconditions, so one
    // probe covers both backend choices for these families.
    ImplicitDesc desc;
    if (!make_implicit_desc(kind, a, b, desc, error)) return std::nullopt;
    out.n = desc.n;
    out.m = desc.m;
    out.graph_bytes = out.backend == GraphBackend::implicit
                          ? 0
                          : owned_csr_bytes(desc.n, desc.m);
    return out;
  }
  if (!probe_materialized(*this, out, error)) return std::nullopt;
  out.graph_bytes = owned_csr_bytes(out.n, out.m);
  return out;
}

Graph GraphSpec::make(Rng& rng) const {
  if (family == Family::file) return load_file_graph(path);
  if (resolved_backend() == GraphBackend::implicit) {
    ImplicitDesc desc;
    // Same preconditions the generator enforces with RUMOR_REQUIRE; spec
    // consumers validate through probe() first for a typed error instead.
    RUMOR_REQUIRE(make_implicit_desc(implicit_kind_of(family), a, b, desc));
    return Graph::make_implicit(desc);
  }
  switch (family) {
    case Family::star:
      return gen::star(static_cast<Vertex>(a));
    case Family::double_star:
      return gen::double_star(static_cast<Vertex>(a));
    case Family::heavy_tree:
      return gen::heavy_binary_tree(static_cast<Vertex>(a));
    case Family::siamese:
      return gen::siamese_heavy_tree(static_cast<Vertex>(a));
    case Family::cycle_stars_cliques:
      return gen::cycle_stars_cliques(static_cast<Vertex>(a));
    case Family::complete:
      return gen::complete(static_cast<Vertex>(a));
    case Family::cycle:
      return gen::cycle(static_cast<Vertex>(a));
    case Family::path:
      return gen::path(static_cast<Vertex>(a));
    case Family::grid:
      return gen::grid2d(static_cast<Vertex>(a), static_cast<Vertex>(b));
    case Family::torus:
      return gen::torus2d(static_cast<Vertex>(a), static_cast<Vertex>(b));
    case Family::hypercube:
      return gen::hypercube(static_cast<std::uint32_t>(a));
    case Family::circulant:
      return gen::circulant(static_cast<Vertex>(a),
                            static_cast<std::uint32_t>(b));
    case Family::clique_ring:
      return gen::clique_ring(static_cast<Vertex>(a), static_cast<Vertex>(b));
    case Family::clique_path:
      return gen::clique_path(static_cast<Vertex>(a), static_cast<Vertex>(b));
    case Family::random_regular:
      return gen::random_regular(static_cast<Vertex>(a),
                                 static_cast<std::uint32_t>(b), rng);
    case Family::erdos_renyi:
      return gen::erdos_renyi_connected(static_cast<Vertex>(a), p, rng);
    case Family::barbell:
      return gen::barbell(static_cast<Vertex>(a));
    case Family::star_of_cliques:
      return gen::star_of_cliques(static_cast<Vertex>(a),
                                  static_cast<Vertex>(b));
    case Family::binary_tree:
      return gen::balanced_binary_tree(static_cast<Vertex>(a));
    case Family::file:
      break;  // handled above; unreachable
  }
  RUMOR_CHECK(false);  // unreachable
  return gen::complete(2);
}

std::string GraphSpec::name() const {
  if (family == Family::file) return "file:" + path;
  const FamilyInfo& info = family_info(family);
  spec_text::KeyValWriter writer;
  writer.add(info.key_a, a);
  if (info.key_b != nullptr) writer.add(info.key_b, b);
  if (info.has_p) writer.add("p", p);
  if (backend != GraphBackendChoice::automatic) {
    writer.add("backend", backend_choice_name(backend));
  }
  return std::string(info.name) + "(" + writer.str() + ")";
}

std::optional<GraphSpec> GraphSpec::parse(std::string_view text,
                                          std::string* error) {
  constexpr std::string_view kFilePrefix = "file:";
  if (text.starts_with(kFilePrefix)) {
    const std::string_view file_path = text.substr(kFilePrefix.size());
    if (file_path.empty()) {
      if (error != nullptr) *error = "file: requires a path";
      return std::nullopt;
    }
    GraphSpec spec;
    spec.family = Family::file;
    spec.path = std::string(file_path);
    return spec;
  }
  const auto call = spec_text::parse_call(text, error);
  if (!call) return std::nullopt;
  const FamilyInfo* info = family_info(std::string_view(call->head));
  if (info == nullptr) {
    if (error != nullptr) {
      *error = "unknown graph family \"" + call->head + "\"";
    }
    return std::nullopt;
  }
  GraphSpec spec;
  spec.family = info->family;
  bool have_a = false;
  bool have_b = false;
  bool have_p = false;
  for (const auto& [key, value] : call->args) {
    if (key == info->key_a) {
      const auto v = spec_text::parse_u64(value);
      if (!v) {
        if (error != nullptr) *error = "bad value " + key + "=" + value;
        return std::nullopt;
      }
      spec.a = *v;
      have_a = true;
    } else if (info->key_b != nullptr && key == info->key_b) {
      const auto v = spec_text::parse_u64(value);
      if (!v) {
        if (error != nullptr) *error = "bad value " + key + "=" + value;
        return std::nullopt;
      }
      spec.b = *v;
      have_b = true;
    } else if (key == "backend") {
      if (value == "auto") {
        spec.backend = GraphBackendChoice::automatic;
      } else if (value == "owned") {
        spec.backend = GraphBackendChoice::owned;
      } else if (value == "implicit") {
        if (implicit_kind_of(spec.family) == ImplicitKind::none) {
          if (error != nullptr) {
            *error = "graph family \"" + call->head +
                     "\" has no implicit (closed-form) backend";
          }
          return std::nullopt;
        }
        spec.backend = GraphBackendChoice::implicit;
      } else {
        if (error != nullptr) {
          *error = "bad value backend=" + value +
                   " (expected auto, owned, or implicit)";
        }
        return std::nullopt;
      }
    } else if (info->has_p && key == "p") {
      const auto v = spec_text::parse_double(value);
      // Positive form is NaN-proof; p = 0 is rejected too (the generator
      // requires a positive edge probability).
      if (!v || !(*v > 0.0 && *v <= 1.0)) {
        if (error != nullptr) *error = "bad value p=" + value;
        return std::nullopt;
      }
      spec.p = *v;
      have_p = true;
    } else {
      if (error != nullptr) {
        *error = "graph family \"" + call->head + "\" has no parameter \"" +
                 key + "\"";
      }
      return std::nullopt;
    }
  }
  // Every parameter the family declares is required: a defaulted-to-zero
  // size would only abort later, deep inside the generator.
  const char* missing = !have_a ? info->key_a
                        : (info->key_b != nullptr && !have_b) ? info->key_b
                        : (info->has_p && !have_p)            ? "p"
                                                              : nullptr;
  if (missing != nullptr) {
    if (error != nullptr) {
      *error = "graph family \"" + call->head + "\" requires " +
               std::string(missing) + "=<value>";
    }
    return std::nullopt;
  }
  return spec;
}

std::vector<std::string_view> graph_family_names() {
  std::vector<std::string_view> names;
  names.reserve(kFamilies.size());
  for (const FamilyInfo& info : kFamilies) names.push_back(info.name);
  return names;
}

std::vector<std::string> graph_family_signatures() {
  std::vector<std::string> signatures;
  signatures.reserve(kFamilies.size());
  for (const FamilyInfo& info : kFamilies) {
    std::string sig = std::string(info.name) + "(" + info.key_a;
    if (info.key_b != nullptr) sig += std::string(",") + info.key_b;
    if (info.has_p) sig += ",p";
    sig += ")";
    signatures.push_back(std::move(sig));
  }
  return signatures;
}

TrialResult run_protocol(const Graph& g, const ProtocolSpec& spec,
                         Vertex source, std::uint64_t seed,
                         TrialArena* arena) {
  return SimulatorRegistry::instance().at(spec.protocol).run(
      g, spec.options, source, seed, arena);
}

}  // namespace rumor

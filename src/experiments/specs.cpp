#include "experiments/specs.hpp"

#include <array>

#include "graph/generators.hpp"
#include "support/spec_text.hpp"

namespace rumor {

namespace {

// One row per family: the spec-grammar head and the parameter keys. The
// same table drives name() and parse(), so the two cannot drift apart.
struct FamilyInfo {
  Family family;
  const char* name;
  const char* key_a;
  const char* key_b;   // nullptr = family has no second parameter
  bool has_p = false;  // erdos_renyi's edge probability
};

constexpr std::array<FamilyInfo, 19> kFamilies{{
    {Family::star, "star", "leaves", nullptr},
    {Family::double_star, "double_star", "leaves", nullptr},
    {Family::heavy_tree, "heavy_tree", "n", nullptr},
    {Family::siamese, "siamese", "n", nullptr},
    {Family::cycle_stars_cliques, "cycle_stars_cliques", "k", nullptr},
    {Family::complete, "complete", "n", nullptr},
    {Family::cycle, "cycle", "n", nullptr},
    {Family::path, "path", "n", nullptr},
    {Family::grid, "grid", "rows", "cols"},
    {Family::torus, "torus", "rows", "cols"},
    {Family::hypercube, "hypercube", "dim", nullptr},
    {Family::circulant, "circulant", "n", "k"},
    {Family::clique_ring, "clique_ring", "groups", "k"},
    {Family::clique_path, "clique_path", "groups", "k"},
    {Family::random_regular, "random_regular", "n", "d"},
    {Family::erdos_renyi, "erdos_renyi", "n", nullptr, true},
    {Family::barbell, "barbell", "k", nullptr},
    {Family::star_of_cliques, "star_of_cliques", "c", "k"},
    {Family::binary_tree, "binary_tree", "n", nullptr},
}};

const FamilyInfo& family_info(Family family) {
  for (const FamilyInfo& info : kFamilies) {
    if (info.family == family) return info;
  }
  RUMOR_CHECK(false);  // unreachable: the table covers the enum
  return kFamilies[0];
}

const FamilyInfo* family_info(std::string_view name) {
  for (const FamilyInfo& info : kFamilies) {
    if (name == info.name) return &info;
  }
  return nullptr;
}

}  // namespace

Graph GraphSpec::make(Rng& rng) const {
  switch (family) {
    case Family::star:
      return gen::star(static_cast<Vertex>(a));
    case Family::double_star:
      return gen::double_star(static_cast<Vertex>(a));
    case Family::heavy_tree:
      return gen::heavy_binary_tree(static_cast<Vertex>(a));
    case Family::siamese:
      return gen::siamese_heavy_tree(static_cast<Vertex>(a));
    case Family::cycle_stars_cliques:
      return gen::cycle_stars_cliques(static_cast<Vertex>(a));
    case Family::complete:
      return gen::complete(static_cast<Vertex>(a));
    case Family::cycle:
      return gen::cycle(static_cast<Vertex>(a));
    case Family::path:
      return gen::path(static_cast<Vertex>(a));
    case Family::grid:
      return gen::grid2d(static_cast<Vertex>(a), static_cast<Vertex>(b));
    case Family::torus:
      return gen::torus2d(static_cast<Vertex>(a), static_cast<Vertex>(b));
    case Family::hypercube:
      return gen::hypercube(static_cast<std::uint32_t>(a));
    case Family::circulant:
      return gen::circulant(static_cast<Vertex>(a),
                            static_cast<std::uint32_t>(b));
    case Family::clique_ring:
      return gen::clique_ring(static_cast<Vertex>(a), static_cast<Vertex>(b));
    case Family::clique_path:
      return gen::clique_path(static_cast<Vertex>(a), static_cast<Vertex>(b));
    case Family::random_regular:
      return gen::random_regular(static_cast<Vertex>(a),
                                 static_cast<std::uint32_t>(b), rng);
    case Family::erdos_renyi:
      return gen::erdos_renyi_connected(static_cast<Vertex>(a), p, rng);
    case Family::barbell:
      return gen::barbell(static_cast<Vertex>(a));
    case Family::star_of_cliques:
      return gen::star_of_cliques(static_cast<Vertex>(a),
                                  static_cast<Vertex>(b));
    case Family::binary_tree:
      return gen::balanced_binary_tree(static_cast<Vertex>(a));
  }
  RUMOR_CHECK(false);  // unreachable
  return gen::complete(2);
}

std::string GraphSpec::name() const {
  const FamilyInfo& info = family_info(family);
  spec_text::KeyValWriter writer;
  writer.add(info.key_a, a);
  if (info.key_b != nullptr) writer.add(info.key_b, b);
  if (info.has_p) writer.add("p", p);
  return std::string(info.name) + "(" + writer.str() + ")";
}

std::optional<GraphSpec> GraphSpec::parse(std::string_view text,
                                          std::string* error) {
  const auto call = spec_text::parse_call(text, error);
  if (!call) return std::nullopt;
  const FamilyInfo* info = family_info(std::string_view(call->head));
  if (info == nullptr) {
    if (error != nullptr) {
      *error = "unknown graph family \"" + call->head + "\"";
    }
    return std::nullopt;
  }
  GraphSpec spec;
  spec.family = info->family;
  bool have_a = false;
  bool have_b = false;
  bool have_p = false;
  for (const auto& [key, value] : call->args) {
    if (key == info->key_a) {
      const auto v = spec_text::parse_u64(value);
      if (!v) {
        if (error != nullptr) *error = "bad value " + key + "=" + value;
        return std::nullopt;
      }
      spec.a = *v;
      have_a = true;
    } else if (info->key_b != nullptr && key == info->key_b) {
      const auto v = spec_text::parse_u64(value);
      if (!v) {
        if (error != nullptr) *error = "bad value " + key + "=" + value;
        return std::nullopt;
      }
      spec.b = *v;
      have_b = true;
    } else if (info->has_p && key == "p") {
      const auto v = spec_text::parse_double(value);
      // Positive form is NaN-proof; p = 0 is rejected too (the generator
      // requires a positive edge probability).
      if (!v || !(*v > 0.0 && *v <= 1.0)) {
        if (error != nullptr) *error = "bad value p=" + value;
        return std::nullopt;
      }
      spec.p = *v;
      have_p = true;
    } else {
      if (error != nullptr) {
        *error = "graph family \"" + call->head + "\" has no parameter \"" +
                 key + "\"";
      }
      return std::nullopt;
    }
  }
  // Every parameter the family declares is required: a defaulted-to-zero
  // size would only abort later, deep inside the generator.
  const char* missing = !have_a ? info->key_a
                        : (info->key_b != nullptr && !have_b) ? info->key_b
                        : (info->has_p && !have_p)            ? "p"
                                                              : nullptr;
  if (missing != nullptr) {
    if (error != nullptr) {
      *error = "graph family \"" + call->head + "\" requires " +
               std::string(missing) + "=<value>";
    }
    return std::nullopt;
  }
  return spec;
}

std::vector<std::string_view> graph_family_names() {
  std::vector<std::string_view> names;
  names.reserve(kFamilies.size());
  for (const FamilyInfo& info : kFamilies) names.push_back(info.name);
  return names;
}

std::vector<std::string> graph_family_signatures() {
  std::vector<std::string> signatures;
  signatures.reserve(kFamilies.size());
  for (const FamilyInfo& info : kFamilies) {
    std::string sig = std::string(info.name) + "(" + info.key_a;
    if (info.key_b != nullptr) sig += std::string(",") + info.key_b;
    if (info.has_p) sig += ",p";
    sig += ")";
    signatures.push_back(std::move(sig));
  }
  return signatures;
}

TrialResult run_protocol(const Graph& g, const ProtocolSpec& spec,
                         Vertex source, std::uint64_t seed,
                         TrialArena* arena) {
  return SimulatorRegistry::instance().at(spec.protocol).run(
      g, spec.options, source, seed, arena);
}

}  // namespace rumor

#include "experiments/trials.hpp"

#include <algorithm>

#include "core/sharding.hpp"
#include "support/thread_pool.hpp"
#include "support/trial_arena.hpp"

namespace rumor {

namespace {

// One persistent arena per executing thread. Pool workers live for the
// process, so the scratch buffers — and the per-graph placement cache —
// are reused across invocations: steady-state trials allocate nothing.
// Thread-local (rather than keyed by pool worker index) so two pools
// draining batches concurrently, or a caller thread on the inline path,
// can never hand one arena to two live trials.
TrialArena& arena_for_thread() {
  thread_local TrialArena arena;
  return arena;
}

bool record_trial(TrialSet& set, std::size_t i, TrialResult&& outcome,
                  bool want_curves) {
  set.rounds[i] = outcome.rounds;
  set.agent_rounds[i] = outcome.agent_rounds;
  set.informed[i] = outcome.informed;
  if (want_curves) {
    set.informed_curves[i] = std::move(outcome.informed_curve);
    set.stifled_curves[i] = std::move(outcome.stifled_curve);
  }
  return outcome.completed;
}

bool batch_wants_curves(const TrialBatch& batch) {
  const TraceOptions* trace = batch.protocol->trace();
  return trace != nullptr && trace->informed_curve;
}

// Graph size a batch will run on, without building anything: the eager
// graph answers directly, spec-driven batches answer from the analytic
// probe. A probe failure reads as 0 ("not huge") — make() surfaces the
// real error when the trial actually runs.
std::uint64_t batch_vertex_count(const TrialBatch& batch) {
  if (batch.graph != nullptr) return batch.graph->num_vertices();
  const GraphSpec* spec =
      batch.fresh_spec != nullptr ? batch.fresh_spec : batch.lazy_spec;
  const auto probe = spec->probe();
  return probe ? probe->n : 0;
}

}  // namespace

const Graph& LazyGraphSlot::acquire(const TrialBatch& batch) {
  std::lock_guard lock(mutex_);
  if (!graph_) {
    Rng graph_rng(derive_seed(batch.master_seed ^ kGraphSeedSalt, 0));
    graph_.emplace(batch.lazy_spec->make(graph_rng));
    RUMOR_REQUIRE(batch.source < graph_->num_vertices());
  }
  return *graph_;
}

void LazyGraphSlot::release() {
  std::lock_guard lock(mutex_);
  graph_.reset();
}

bool prepare_trial_set(const TrialBatch& batch) {
  RUMOR_REQUIRE(batch.trials > 0);
  RUMOR_REQUIRE(batch.out != nullptr && batch.protocol != nullptr);
  RUMOR_REQUIRE((batch.graph != nullptr) + (batch.fresh_spec != nullptr) +
                    (batch.lazy_spec != nullptr) ==
                1);
  if (batch.lazy_spec != nullptr) {
    // Laziness needs a reproducible build: a random draw at claim time
    // would depend on scheduling. Random specs use fresh_spec (per-trial
    // redraw) or an eagerly built `graph`.
    RUMOR_REQUIRE(!batch.lazy_spec->is_random());
  }
  if (batch.graph != nullptr) {
    RUMOR_REQUIRE(batch.source < batch.graph->num_vertices());
  }
  TrialSet& set = *batch.out;
  set.rounds.assign(batch.trials, 0.0);
  set.agent_rounds.assign(batch.trials, 0.0);
  set.informed.assign(batch.trials, 0.0);
  set.incomplete = 0;
  set.informed_curves.clear();
  set.stifled_curves.clear();
  const bool want_curves = batch_wants_curves(batch);
  if (want_curves) {
    set.informed_curves.resize(batch.trials);
    set.stifled_curves.resize(batch.trials);
  }
  return want_curves;
}

bool run_batch_trial(const TrialBatch& batch, std::size_t i,
                     LazyGraphSlot* lazy) {
  const bool want_curves = batch_wants_curves(batch);
  if (batch.fresh_spec != nullptr) {
    Rng graph_rng(derive_seed(batch.master_seed ^ kGraphSeedSalt, i));
    const Graph g = batch.fresh_spec->make(graph_rng);
    // Every draw must cover the source; aborting with a clear message
    // beats the out-of-bounds UB a silent mismatch would cause.
    RUMOR_REQUIRE(batch.source < g.num_vertices());
    return record_trial(*batch.out, i,
                        run_protocol(g, *batch.protocol, batch.source,
                                     derive_seed(batch.master_seed, i),
                                     &arena_for_thread()),
                        want_curves);
  }
  // The lazy graph stays alive until the batch's LAST trial completes
  // (the scheduler releases after every trial records), so this reference
  // cannot dangle mid-trial.
  RUMOR_REQUIRE((batch.lazy_spec != nullptr) == (lazy != nullptr));
  const Graph& g = lazy != nullptr ? lazy->acquire(batch) : *batch.graph;
  return record_trial(*batch.out, i,
                      run_protocol(g, *batch.protocol, batch.source,
                                   derive_seed(batch.master_seed, i),
                                   &arena_for_thread()),
                      want_curves);
}

TrialRunOutcome run_trial_batches(const std::vector<TrialBatch>& batches,
                                  const TrialRunOptions& options) {
  TrialRunOutcome outcome;
  if (batches.empty()) return outcome;
  const std::size_t n = batches.size();
  // Validate + size every result slot up front.
  for (const TrialBatch& batch : batches) prepare_trial_set(batch);

  // Claim order: the identity (file order), or highest expected cost
  // first. Only the order in which workers START trials changes — sample
  // values and emission order are claim-order independent.
  std::vector<std::size_t> exec(n);
  for (std::size_t b = 0; b < n; ++b) exec[b] = b;
  if (options.order == BatchOrder::longest_first) {
    std::stable_sort(exec.begin(), exec.end(),
                     [&](std::size_t a, std::size_t b) {
                       const std::size_t ca = batches[a].cost_hint != 0
                                                  ? batches[a].cost_hint
                                                  : batches[a].trials;
                       const std::size_t cb = batches[b].cost_hint != 0
                                                  ? batches[b].cost_hint
                                                  : batches[b].trials;
                       return ca > cb;
                     });
  }
  // offsets[p] = start of exec[p]'s trials in the flattened index space.
  std::vector<std::size_t> offsets(n + 1, 0);
  for (std::size_t p = 0; p < n; ++p) {
    offsets[p + 1] = offsets[p] + batches[exec[p]].trials;
  }
  const std::size_t total = offsets.back();
  if (options.counters != nullptr) options.counters->add(total, n);

  std::vector<std::atomic<std::size_t>> incomplete(n);
  std::vector<std::atomic<std::size_t>> finished(n);
  std::vector<LazyGraphSlot> lazy(n);
  std::atomic<std::size_t> trials_run{0};
  // In-order emission state: done[b] flips when batch b's last trial
  // lands; next_emit advances over the done prefix so on_batch_done sees
  // batches in file order no matter which finishes first.
  std::mutex emit_mutex;
  std::vector<bool> done(n, false);
  std::size_t next_emit = 0;
  // First-failure capture: one trial throwing cancels the remaining work
  // (already-running trials finish; nothing further is claimed or
  // emitted) and surfaces as TrialBatchError after the pool drains. The
  // caller's stop flag shares the claim gate but returns normally with
  // stopped=true instead.
  std::atomic<bool> cancelled{false};
  std::atomic<bool> stopped{false};
  std::size_t failed_batch = 0;
  std::string failure;

  auto complete_batch = [&](std::size_t b) {
    batches[b].out->incomplete = incomplete[b].load();
    if (options.counters != nullptr) options.counters->on_batch_done();
    if (!options.on_batch_done) return;
    std::lock_guard lock(emit_mutex);
    if (cancelled.load(std::memory_order_relaxed)) return;
    if (stopped.load(std::memory_order_relaxed)) return;
    done[b] = true;
    while (next_emit < n && done[next_emit]) {
      options.on_batch_done(next_emit);
      ++next_emit;
    }
  };

  ThreadPool* pool = options.pool != nullptr ? options.pool : &global_pool();

  // One trial, by flat index: claim bookkeeping, the run itself,
  // first-failure capture, and batch retirement. Shared verbatim by both
  // axes of the schedule below, so a trial's observable effects cannot
  // depend on which axis executed it.
  auto run_flat = [&](std::size_t flat) {
    if (cancelled.load(std::memory_order_relaxed)) return;
    if (options.stop != nullptr &&
        options.stop->load(std::memory_order_relaxed)) {
      stopped.store(true, std::memory_order_relaxed);
      return;
    }
    const std::size_t p = static_cast<std::size_t>(
        std::upper_bound(offsets.begin(), offsets.end(), flat) -
        offsets.begin() - 1);
    const std::size_t b = exec[p];
    const std::size_t i = flat - offsets[p];
    if (options.counters != nullptr) options.counters->on_claim();
    try {
      if (!run_batch_trial(batches[b], i,
                           batches[b].lazy_spec != nullptr ? &lazy[b]
                                                           : nullptr)) {
        incomplete[b].fetch_add(1);
      }
    } catch (const std::exception& e) {
      std::lock_guard lock(emit_mutex);
      if (!cancelled.exchange(true)) {
        failed_batch = b;
        failure = e.what();
      }
      return;
    } catch (...) {
      std::lock_guard lock(emit_mutex);
      if (!cancelled.exchange(true)) {
        failed_batch = b;
        failure = "unknown exception";
      }
      return;
    }
    trials_run.fetch_add(1, std::memory_order_relaxed);
    if (options.counters != nullptr) options.counters->on_trial_done();
    if (options.on_trial_done) options.on_trial_done(b, i);
    if (finished[b].fetch_add(1) + 1 == batches[b].trials) {
      lazy[b].release();  // batch drained: drop its lazy-built graph
      complete_batch(b);
    }
  };

  // Two-axis schedule. The narrow axis is the classic one-trial-one-worker
  // drain; the wide axis gives a single trial the WHOLE pool: the caller
  // thread runs it and the sharded round kernels inside fan their frontier
  // ranges across the workers via parallel_for_ranges. A batch's trials go
  // wide only when its sharded engine is on for its graph (spec + probed
  // n, see core/sharding) AND the queued trials cannot fill the pool by
  // themselves — with enough queued trials, trial-level parallelism
  // already saturates the machine and each trial's nested range fan-out
  // flattens inline on its worker. Either way every sample is
  // derive_seed(master_seed, i): the axis changes worker assignment, never
  // results or emission order.
  std::vector<std::size_t> wide_flats;
  std::vector<std::size_t> narrow_flats;
  narrow_flats.reserve(total);
  const std::size_t workers = pool->worker_count();
  const bool wide_eligible = workers >= 2 && total < workers;
  for (std::size_t p = 0; p < n; ++p) {
    const TrialBatch& batch = batches[exec[p]];
    const bool wide =
        wide_eligible && sharding_enabled(batch.protocol->shards(),
                                          batch_vertex_count(batch));
    auto& flats = wide ? wide_flats : narrow_flats;
    for (std::size_t flat = offsets[p]; flat < offsets[p + 1]; ++flat) {
      flats.push_back(flat);
    }
  }

  // Wide trials first, sequentially: the narrow drain that follows starts
  // against a fully idle pool. The ambient shard pool is pointed at THIS
  // run's pool for the duration (and restored — it is thread-local, so
  // concurrent drains on distinct pools, as in the serve daemon, cannot
  // clobber each other).
  if (!wide_flats.empty()) {
    ThreadPool* prev = set_shard_pool(pool);
    for (const std::size_t flat : wide_flats) run_flat(flat);
    set_shard_pool(prev);
  }
  // Trials are macroscopic (a whole protocol run), so claiming them one at
  // a time costs nothing and keeps mixed-duration batches balanced: a
  // worker never gets stuck holding a chunk of long-tail trials while the
  // rest of the pool idles. Each worker's ambient shard pool is this pool,
  // so a sharded trial claimed narrow flattens its range fan-out inline
  // (ThreadPool rejects nested fan-out by flattening) instead of deadlock
  // or oversubscription.
  if (!narrow_flats.empty()) {
    const std::size_t chunk = n > 1 ? 1 : 0;
    pool->parallel_for_indexed(
        narrow_flats.size(),
        [&](std::size_t /*worker*/, std::size_t idx) {
          ThreadPool* prev = set_shard_pool(pool);
          run_flat(narrow_flats[idx]);
          set_shard_pool(prev);
        },
        chunk);
  }
  if (cancelled.load()) throw TrialBatchError(failed_batch, failure);
  outcome.stopped = stopped.load();
  outcome.trials_run = trials_run.load();
  return outcome;
}

void run_trial_batches(const std::vector<TrialBatch>& batches,
                       const std::function<void(std::size_t)>& on_batch_done,
                       ThreadPool* pool, BatchOrder order) {
  TrialRunOptions options;
  options.on_batch_done = on_batch_done;
  options.pool = pool;
  options.order = order;
  run_trial_batches(batches, options);
}

TrialSet run_trials(const Graph& g, const ProtocolSpec& spec, Vertex source,
                    std::size_t trials, std::uint64_t master_seed) {
  TrialSet set;
  TrialBatch batch;
  batch.graph = &g;
  batch.protocol = &spec;
  batch.source = source;
  batch.trials = trials;
  batch.master_seed = master_seed;
  batch.out = &set;
  run_trial_batches({batch});
  return set;
}

TrialSet run_trials_fresh_graph(const GraphSpec& graph_spec,
                                const ProtocolSpec& spec, Vertex source,
                                std::size_t trials,
                                std::uint64_t master_seed) {
  TrialSet set;
  TrialBatch batch;
  batch.fresh_spec = &graph_spec;
  batch.protocol = &spec;
  batch.source = source;
  batch.trials = trials;
  batch.master_seed = master_seed;
  batch.out = &set;
  run_trial_batches({batch});
  return set;
}

}  // namespace rumor

#include "experiments/trials.hpp"

#include <atomic>

#include "support/thread_pool.hpp"

namespace rumor {

TrialSet run_trials(const Graph& g, const ProtocolSpec& spec, Vertex source,
                    std::size_t trials, std::uint64_t master_seed) {
  RUMOR_REQUIRE(trials > 0);
  TrialSet set;
  set.rounds.assign(trials, 0.0);
  std::atomic<std::size_t> incomplete{0};
  global_pool().parallel_for(trials, [&](std::size_t i) {
    const TrialOutcome outcome =
        run_protocol(g, spec, source, derive_seed(master_seed, i));
    set.rounds[i] = outcome.rounds;
    if (!outcome.completed) incomplete.fetch_add(1);
  });
  set.incomplete = incomplete.load();
  return set;
}

TrialSet run_trials_fresh_graph(const GraphSpec& graph_spec,
                                const ProtocolSpec& spec, Vertex source,
                                std::size_t trials,
                                std::uint64_t master_seed) {
  RUMOR_REQUIRE(trials > 0);
  TrialSet set;
  set.rounds.assign(trials, 0.0);
  std::atomic<std::size_t> incomplete{0};
  global_pool().parallel_for(trials, [&](std::size_t i) {
    Rng graph_rng(derive_seed(master_seed ^ 0xABCDEF12345678ULL, i));
    const Graph g = graph_spec.make(graph_rng);
    const TrialOutcome outcome =
        run_protocol(g, spec, source, derive_seed(master_seed, i));
    set.rounds[i] = outcome.rounds;
    if (!outcome.completed) incomplete.fetch_add(1);
  });
  set.incomplete = incomplete.load();
  return set;
}

}  // namespace rumor

#include "experiments/trials.hpp"

#include <atomic>

#include "support/thread_pool.hpp"
#include "support/trial_arena.hpp"

namespace rumor {

namespace {

// One persistent arena per pool worker. Arenas live for the process so the
// scratch buffers — and the per-graph placement cache — are reused across
// run_trials invocations: steady-state trials allocate nothing.
// parallel_for_indexed reports the executing pool thread, so a pool slot is
// never shared by two live tasks even when run_trials calls overlap. Any
// non-pool thread (the caller on the inline path) reports worker_count()
// and gets its own thread-local arena instead — two caller threads hitting
// the inline path concurrently must not share one slot.
TrialArena& arena_for_worker(std::size_t worker) {
  static std::vector<TrialArena> arenas(global_pool().worker_count());
  if (worker < arenas.size()) return arenas[worker];
  thread_local TrialArena caller_arena;
  return caller_arena;
}

}  // namespace

TrialSet run_trials(const Graph& g, const ProtocolSpec& spec, Vertex source,
                    std::size_t trials, std::uint64_t master_seed) {
  RUMOR_REQUIRE(trials > 0);
  TrialSet set;
  set.rounds.assign(trials, 0.0);
  std::atomic<std::size_t> incomplete{0};
  global_pool().parallel_for_indexed(
      trials, [&](std::size_t worker, std::size_t i) {
        const TrialOutcome outcome =
            run_protocol(g, spec, source, derive_seed(master_seed, i),
                         &arena_for_worker(worker));
        set.rounds[i] = outcome.rounds;
        if (!outcome.completed) incomplete.fetch_add(1);
      });
  set.incomplete = incomplete.load();
  return set;
}

TrialSet run_trials_fresh_graph(const GraphSpec& graph_spec,
                                const ProtocolSpec& spec, Vertex source,
                                std::size_t trials,
                                std::uint64_t master_seed) {
  RUMOR_REQUIRE(trials > 0);
  TrialSet set;
  set.rounds.assign(trials, 0.0);
  std::atomic<std::size_t> incomplete{0};
  global_pool().parallel_for_indexed(
      trials, [&](std::size_t worker, std::size_t i) {
        Rng graph_rng(derive_seed(master_seed ^ 0xABCDEF12345678ULL, i));
        const Graph g = graph_spec.make(graph_rng);
        const TrialOutcome outcome =
            run_protocol(g, spec, source, derive_seed(master_seed, i),
                         &arena_for_worker(worker));
        set.rounds[i] = outcome.rounds;
        if (!outcome.completed) incomplete.fetch_add(1);
      });
  set.incomplete = incomplete.load();
  return set;
}

}  // namespace rumor

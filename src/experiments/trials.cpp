#include "experiments/trials.hpp"

#include <atomic>

#include "support/thread_pool.hpp"
#include "support/trial_arena.hpp"

namespace rumor {

namespace {

// One persistent arena per pool worker. Arenas live for the process so the
// scratch buffers — and the per-graph placement cache — are reused across
// run_trials invocations: steady-state trials allocate nothing.
// parallel_for_indexed reports the executing pool thread, so a pool slot is
// never shared by two live tasks even when run_trials calls overlap. Any
// non-pool thread (the caller on the inline path) reports worker_count()
// and gets its own thread-local arena instead — two caller threads hitting
// the inline path concurrently must not share one slot.
TrialArena& arena_for_worker(std::size_t worker) {
  static std::vector<TrialArena> arenas(global_pool().worker_count());
  if (worker < arenas.size()) return arenas[worker];
  thread_local TrialArena caller_arena;
  return caller_arena;
}

void record_trial(TrialSet& set, std::size_t i, TrialResult&& outcome,
                  std::atomic<std::size_t>& incomplete, bool want_curves) {
  set.rounds[i] = outcome.rounds;
  set.agent_rounds[i] = outcome.agent_rounds;
  if (want_curves) set.informed_curves[i] = std::move(outcome.informed_curve);
  if (!outcome.completed) incomplete.fetch_add(1);
}

}  // namespace

TrialSet run_trials(const Graph& g, const ProtocolSpec& spec, Vertex source,
                    std::size_t trials, std::uint64_t master_seed) {
  RUMOR_REQUIRE(trials > 0);
  RUMOR_REQUIRE(source < g.num_vertices());
  TrialSet set;
  set.rounds.assign(trials, 0.0);
  set.agent_rounds.assign(trials, 0.0);
  const TraceOptions* trace = spec.trace();
  const bool want_curves = trace != nullptr && trace->informed_curve;
  if (want_curves) set.informed_curves.resize(trials);
  std::atomic<std::size_t> incomplete{0};
  global_pool().parallel_for_indexed(
      trials, [&](std::size_t worker, std::size_t i) {
        record_trial(set, i,
                     run_protocol(g, spec, source,
                                  derive_seed(master_seed, i),
                                  &arena_for_worker(worker)),
                     incomplete, want_curves);
      });
  set.incomplete = incomplete.load();
  return set;
}

TrialSet run_trials_fresh_graph(const GraphSpec& graph_spec,
                                const ProtocolSpec& spec, Vertex source,
                                std::size_t trials,
                                std::uint64_t master_seed) {
  RUMOR_REQUIRE(trials > 0);
  TrialSet set;
  set.rounds.assign(trials, 0.0);
  set.agent_rounds.assign(trials, 0.0);
  const TraceOptions* trace = spec.trace();
  const bool want_curves = trace != nullptr && trace->informed_curve;
  if (want_curves) set.informed_curves.resize(trials);
  std::atomic<std::size_t> incomplete{0};
  global_pool().parallel_for_indexed(
      trials, [&](std::size_t worker, std::size_t i) {
        Rng graph_rng(derive_seed(master_seed ^ kGraphSeedSalt, i));
        const Graph g = graph_spec.make(graph_rng);
        // Every draw must cover the source; aborting with a clear message
        // beats the out-of-bounds UB a silent mismatch would cause.
        RUMOR_REQUIRE(source < g.num_vertices());
        record_trial(set, i,
                     run_protocol(g, spec, source,
                                  derive_seed(master_seed, i),
                                  &arena_for_worker(worker)),
                     incomplete, want_curves);
      });
  set.incomplete = incomplete.load();
  return set;
}

}  // namespace rumor

// Experiment specifications: declarative graph + protocol descriptions that
// the trial runner, the scenario files, and the bench binaries share.
//
// Both halves have a canonical text round-trip: GraphSpec::parse /
// GraphSpec::name for the graph ("star(leaves=1024)"), ProtocolSpec::parse
// / ProtocolSpec::name for the protocol ("frog(frogs=2,lazy=half)").
// run_protocol dispatches through the SimulatorRegistry, so every
// registered simulator — built-in or downstream — is reachable from a
// parsed spec.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/protocol_spec.hpp"
#include "core/registry.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace rumor {

enum class Family {
  star,              // param a = number of leaves
  double_star,       // a = leaves per star
  heavy_tree,        // a = tree vertices
  siamese,           // a = vertices per copy
  cycle_stars_cliques,  // a = k (n = k + k^2 + k^3)
  complete,          // a = n
  cycle,             // a = n
  path,              // a = n
  grid,              // a = rows, b = cols
  torus,             // a = rows, b = cols
  hypercube,         // a = dimension
  circulant,         // a = n, b = half-degree k
  clique_ring,       // a = groups, b = clique size
  clique_path,       // a = groups, b = clique size
  random_regular,    // a = n, b = degree d
  erdos_renyi,       // a = n, p = edge probability
  barbell,           // a = clique size
  star_of_cliques,   // a = cliques, b = clique size
  binary_tree,       // a = n
  file,              // path = SNAP edge list ("file:<path>" in the grammar)
};

// Storage-backend request in a graph spec (`backend=` key). `automatic`
// resolves to the implicit backend for the families with closed-form
// adjacency (star, cycle, complete, grid, torus, circulant) — identical
// structure and trajectories, O(1) memory — and owned CSR otherwise.
// `owned` forces materialization (reference behavior, equivalence tests);
// `implicit` demands the closed forms and is a parse error elsewhere.
enum class GraphBackendChoice : std::uint8_t { automatic, owned, implicit };

// Analytic size/shape report for a spec — what make() would build, without
// building it. Drives up-front scenario validation, the lazy scheduler's
// source checks, and the --dry-run memory estimates.
struct GraphProbe {
  Vertex n = 0;
  std::uint64_t m = 0;
  // True when m is an expectation, not exact (erdos_renyi).
  bool m_estimated = false;
  GraphBackend backend = GraphBackend::owned;
  // Private adjacency bytes one built instance holds: exact CSR footprint
  // for owned, 0 for implicit, the (shared, page-cache) mapped file size
  // for the file backend.
  std::uint64_t graph_bytes = 0;
};

struct GraphSpec {
  Family family = Family::complete;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  double p = 0.0;
  std::string path;  // Family::file only
  GraphBackendChoice backend = GraphBackendChoice::automatic;

  // Builds the graph; rng is consumed only by random families. File graphs
  // may throw GraphFileError (callers validate via probe() first).
  [[nodiscard]] Graph make(Rng& rng) const;

  // Backend make() will produce, after resolving `automatic`.
  [[nodiscard]] GraphBackend resolved_backend() const;

  // Validates the parameters (the same preconditions make() enforces) and
  // reports the analytic sizes + backend. For file specs this stats the
  // source and parses it once if no fresh cache exists — the typed error
  // path that lets scenario validation reject a bad path before any trial.
  [[nodiscard]] std::optional<GraphProbe> probe(
      std::string* error = nullptr) const;

  // Canonical text form, e.g. "star(leaves=1024)" or
  // "erdos_renyi(n=32,p=0.3)" or "file:data/edges.txt"; a non-default
  // backend choice is emitted as a backend= key. parse(name()) reproduces
  // the spec.
  [[nodiscard]] std::string name() const;
  static std::optional<GraphSpec> parse(std::string_view text,
                                        std::string* error = nullptr);

  // True if make() consumes randomness (trials may want fresh graphs).
  [[nodiscard]] bool is_random() const {
    return family == Family::random_regular || family == Family::erdos_renyi;
  }

  friend bool operator==(const GraphSpec&, const GraphSpec&) = default;
};

// The spec-grammar heads of every graph family, in table order (drives
// `rumor_run --list`; the same table drives name()/parse()).
[[nodiscard]] std::vector<std::string_view> graph_family_names();

// Full parameter signatures, one per family, straight from the grammar
// table — e.g. "grid(rows,cols)", "erdos_renyi(n,p)" — so `rumor_run
// --list` documents the exact keys parse() will accept.
[[nodiscard]] std::vector<std::string> graph_family_signatures();

// Runs one trial of the protocol on the given graph through the simulator
// registry. A non-null `arena` lends reusable scratch buffers (the trial
// runner passes one per worker so steady-state trials allocate nothing).
[[nodiscard]] TrialResult run_protocol(const Graph& g,
                                       const ProtocolSpec& spec,
                                       Vertex source, std::uint64_t seed,
                                       TrialArena* arena = nullptr);

}  // namespace rumor

// Experiment specifications: declarative graph + protocol descriptions that
// the trial runner and the bench binaries share.
#pragma once

#include <cstdint>
#include <string>

#include "core/push.hpp"
#include "core/push_pull.hpp"
#include "core/walk_options.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace rumor {

enum class Family {
  star,              // param a = number of leaves
  double_star,       // a = leaves per star
  heavy_tree,        // a = tree vertices
  siamese,           // a = vertices per copy
  cycle_stars_cliques,  // a = k (n = k + k^2 + k^3)
  complete,          // a = n
  cycle,             // a = n
  path,              // a = n
  grid,              // a = rows, b = cols
  torus,             // a = rows, b = cols
  hypercube,         // a = dimension
  circulant,         // a = n, b = half-degree k
  clique_ring,       // a = groups, b = clique size
  clique_path,       // a = groups, b = clique size
  random_regular,    // a = n, b = degree d
  erdos_renyi,       // a = n, p = edge probability
  barbell,           // a = clique size
  star_of_cliques,   // a = cliques, b = clique size
  binary_tree,       // a = n
};

struct GraphSpec {
  Family family = Family::complete;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  double p = 0.0;

  // Builds the graph; rng is consumed only by random families.
  [[nodiscard]] Graph make(Rng& rng) const;

  // Human-readable, e.g. "star(leaves=1024)".
  [[nodiscard]] std::string name() const;

  // True if make() consumes randomness (trials may want fresh graphs).
  [[nodiscard]] bool is_random() const {
    return family == Family::random_regular || family == Family::erdos_renyi;
  }
};

enum class Protocol {
  push,
  push_pull,
  visit_exchange,
  meet_exchange,
  hybrid,
};

[[nodiscard]] std::string protocol_name(Protocol p);

struct ProtocolSpec {
  Protocol protocol = Protocol::push;
  PushOptions push;          // push / push_pull options
  PushPullOptions push_pull;
  WalkOptions walk;          // agent-based protocol options

  [[nodiscard]] std::string name() const { return protocol_name(protocol); }
};

// Canonical defaults per protocol; notably meet-exchange gets
// LazyMode::auto_bipartite, matching the paper's convention.
[[nodiscard]] ProtocolSpec default_spec(Protocol p);

struct TrialOutcome {
  double rounds = 0.0;
  bool completed = false;
};

// Runs one trial of the protocol on the given graph. A non-null `arena`
// lends reusable scratch buffers (the trial runner passes one per worker
// so steady-state trials allocate nothing).
[[nodiscard]] TrialOutcome run_protocol(const Graph& g,
                                        const ProtocolSpec& spec,
                                        Vertex source, std::uint64_t seed,
                                        TrialArena* arena = nullptr);

}  // namespace rumor

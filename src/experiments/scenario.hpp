// ScenarioSpec: the complete declarative description of one experiment —
// GraphSpec + ProtocolSpec + TrialPlan — with a one-line text form:
//
//   star(leaves=8192) push source=1 trials=50 label=push-star
//
// A scenario file is a sequence of such lines (blank lines and #-comments
// ignored); `rumor_run` executes one and renders the shared table/CSV
// report. parse(name()) round-trips, so specs can be generated, stored,
// and replayed losslessly.
//
// Any numeric value in a line may also be a *sweep* — a range
// (`leaves=2k..32k`, geometric x2; `:factor=`/`:step=` override) or a
// value list (`alpha={0.5,1,2}`) — and the line expands into the cross
// product of concrete scenarios with derived labels:
//
//   star(leaves=2k..32k:factor=4) push source=1 label=push
//     -> star(leaves=2048) push source=1 label=push/2k
//        star(leaves=8192) push source=1 label=push/8k
//        star(leaves=32768) push source=1 label=push/32k
//
// Expanded lines are plain scalar scenarios: parse(name()) round-trips on
// every one of them.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "experiments/trials.hpp"

namespace rumor {

// The master seed every runner defaults to (the PODC'19 date, matching the
// bench harness).
constexpr std::uint64_t kDefaultMasterSeed = 20190729ULL;

struct TrialPlan {
  std::size_t trials = 20;
  std::uint64_t seed = kDefaultMasterSeed;
  Vertex source = 0;
  // Redraw the graph per trial (random families only): averages over graph
  // randomness instead of fixing one draw.
  bool fresh_graph = false;

  friend bool operator==(const TrialPlan&, const TrialPlan&) = default;
};

struct ScenarioSpec {
  GraphSpec graph;
  ProtocolSpec protocol;
  TrialPlan plan;
  std::string label;  // optional series label (single token, no spaces)

  // Canonical line: "<graph> <protocol> [trials=..] [seed=..] [source=..]
  // [fresh=on] [label=..]" with only non-default plan keys emitted.
  [[nodiscard]] std::string name() const;
  // The label, or "<graph> <protocol>" when none was given.
  [[nodiscard]] std::string display_label() const;

  static std::optional<ScenarioSpec> parse(std::string_view line,
                                           std::string* error = nullptr);

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

struct ScenarioResult {
  ScenarioSpec spec;
  Vertex n = 0;           // vertices of the scenario's graph
  std::size_t edges = 0;  // undirected edge count
  TrialSet set;
};

// Expands one scenario line's sweep values (ranges / {...} lists, in graph
// args, protocol args, or plan keys) into the cross product of concrete
// scenarios, leftmost sweep varying slowest. A line without sweeps yields
// exactly ScenarioSpec::parse(line). When the line carries a label, each
// expanded spec's label gains one "/<value>" suffix per swept key (integer
// values in compact magnitude form: 2048 -> "2k"). Rejects what parse
// rejects, plus empty/inverted/overflowing ranges and cross products of
// more than kMaxSweepPoints scenarios.
std::optional<std::vector<ScenarioSpec>> expand_scenario_line(
    std::string_view line, std::string* error = nullptr);

// Parses a scenario stream/file, expanding sweep lines in place. On
// failure returns nullopt and reports "line N: <reason>" through *error.
std::optional<std::vector<ScenarioSpec>> parse_scenario_stream(
    std::istream& in, std::string* error = nullptr);
std::optional<std::vector<ScenarioSpec>> load_scenario_file(
    const std::string& path, std::string* error = nullptr);

// Executes one scenario: builds the graph from the plan seed (or redraws
// per trial when fresh_graph) and fans the trials out over the global
// thread pool through the simulator registry. A plan inconsistent with
// the built graph (source out of range) is reported through *error, not
// aborted on — scenario files are user input.
[[nodiscard]] std::optional<ScenarioResult> run_scenario(
    const ScenarioSpec& spec, std::string* error = nullptr);

// Validates every scenario — builds each graph once, checks source and
// placement anchor — without running any trial. run_scenarios performs
// the same checks itself; this exists for callers that must fail BEFORE
// taking a destructive step (the CLI validates before truncating an
// existing --csv file).
[[nodiscard]] bool validate_scenarios(const std::vector<ScenarioSpec>& specs,
                                      std::string* error = nullptr);

// One scenario vetted for execution: sizes for the report row, plus the
// graph when (and only when) validation had to build it — random non-fresh
// specs, whose single draw IS part of the result. Deterministic specs
// validate analytically (GraphSpec::probe) and are built lazily by the
// trial scheduler; fresh specs redraw per trial and never hold a graph
// here.
struct PreparedScenario {
  std::optional<Graph> graph;
  bool lazy = false;
};

// Validates one scenario and fills the result's spec/size columns WITHOUT
// building deterministic graphs (probe() answers n/m from the closed
// forms). Shared by run_scenarios and the serve daemon's SUBMIT intake, so
// a scenario is accepted or rejected identically in both paths.
[[nodiscard]] bool prepare_scenario(const ScenarioSpec& spec,
                                    ScenarioResult& result,
                                    PreparedScenario& prep,
                                    std::string* error = nullptr);

struct ScenarioRunOptions {
  // Fired once per scenario, in FILE ORDER, as completions allow (the
  // streaming-report hook): by the time it sees index i, results[0..i]
  // are final. Runs on a worker thread under the scheduler's emission
  // lock; keep it cheap.
  std::function<void(const ScenarioResult&, std::size_t index)> on_result;
  // Claim order for the global queue. longest_first starts the highest
  // expected-cost scenarios (n·trials heuristic) first for tighter tails
  // on many-scenario files; results and report order are identical either
  // way.
  BatchOrder order = BatchOrder::file;
  // Graceful-stop flag (the CLI's SIGINT/SIGTERM handler): once true, no
  // further trial is claimed and run_scenarios reports "interrupted"
  // through *error (already-emitted on_result rows stay emitted).
  const std::atomic<bool>* stop = nullptr;
  // Live queue-depth counters shared with --progress reporting.
  TrialCounters* counters = nullptr;
};

// Executes all scenarios through ONE global (scenario, trial) work queue:
// every scenario is validated and its graph built up front (the first
// invalid scenario is reported through *error before any trial runs),
// then trials from all scenarios interleave across the thread pool — no
// per-scenario barrier, so a long-tail scenario cannot serialize the
// file. Results are in file order and identical for any worker count.
[[nodiscard]] std::optional<std::vector<ScenarioResult>> run_scenarios(
    const std::vector<ScenarioSpec>& specs, std::string* error = nullptr,
    const ScenarioRunOptions& options = {});

// The shared report format: an aligned table for terminals, CSV (one row
// per scenario, same columns as the bench artifact dumps plus the spec
// text) for artifacts.
[[nodiscard]] std::string scenario_table(
    const std::vector<ScenarioResult>& results);
void write_scenario_csv(std::ostream& out,
                        const std::vector<ScenarioResult>& results);

}  // namespace rumor

// ScenarioSpec: the complete declarative description of one experiment —
// GraphSpec + ProtocolSpec + TrialPlan — with a one-line text form:
//
//   star(leaves=8192) push source=1 trials=50 label=push-star
//
// A scenario file is a sequence of such lines (blank lines and #-comments
// ignored); `rumor_run` executes one and renders the shared table/CSV
// report. parse(name()) round-trips, so specs can be generated, stored,
// and replayed losslessly.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "experiments/trials.hpp"

namespace rumor {

// The master seed every runner defaults to (the PODC'19 date, matching the
// bench harness).
constexpr std::uint64_t kDefaultMasterSeed = 20190729ULL;

struct TrialPlan {
  std::size_t trials = 20;
  std::uint64_t seed = kDefaultMasterSeed;
  Vertex source = 0;
  // Redraw the graph per trial (random families only): averages over graph
  // randomness instead of fixing one draw.
  bool fresh_graph = false;

  friend bool operator==(const TrialPlan&, const TrialPlan&) = default;
};

struct ScenarioSpec {
  GraphSpec graph;
  ProtocolSpec protocol;
  TrialPlan plan;
  std::string label;  // optional series label (single token, no spaces)

  // Canonical line: "<graph> <protocol> [trials=..] [seed=..] [source=..]
  // [fresh=on] [label=..]" with only non-default plan keys emitted.
  [[nodiscard]] std::string name() const;
  // The label, or "<graph> <protocol>" when none was given.
  [[nodiscard]] std::string display_label() const;

  static std::optional<ScenarioSpec> parse(std::string_view line,
                                           std::string* error = nullptr);

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

struct ScenarioResult {
  ScenarioSpec spec;
  Vertex n = 0;           // vertices of the scenario's graph
  std::size_t edges = 0;  // undirected edge count
  TrialSet set;
};

// Parses a scenario stream/file. On failure returns nullopt and reports
// "line N: <reason>" through *error.
std::optional<std::vector<ScenarioSpec>> parse_scenario_stream(
    std::istream& in, std::string* error = nullptr);
std::optional<std::vector<ScenarioSpec>> load_scenario_file(
    const std::string& path, std::string* error = nullptr);

// Executes one scenario: builds the graph from the plan seed (or redraws
// per trial when fresh_graph) and fans the trials out over the global
// thread pool through the simulator registry. A plan inconsistent with
// the built graph (source out of range) is reported through *error, not
// aborted on — scenario files are user input.
[[nodiscard]] std::optional<ScenarioResult> run_scenario(
    const ScenarioSpec& spec, std::string* error = nullptr);

// Executes scenarios in order (each scenario's trials run in parallel);
// stops at the first failing scenario and reports it through *error.
[[nodiscard]] std::optional<std::vector<ScenarioResult>> run_scenarios(
    const std::vector<ScenarioSpec>& specs, std::string* error = nullptr);

// The shared report format: an aligned table for terminals, CSV (one row
// per scenario, same columns as the bench artifact dumps plus the spec
// text) for artifacts.
[[nodiscard]] std::string scenario_table(
    const std::vector<ScenarioResult>& results);
void write_scenario_csv(std::ostream& out,
                        const std::vector<ScenarioResult>& results);

}  // namespace rumor

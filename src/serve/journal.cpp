#include "serve/journal.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <type_traits>
#include <utility>

#include "support/assert.hpp"

namespace rumor::serve {

namespace {

constexpr char kMagic[8] = {'R', 'S', 'R', 'V', 'J', 'R', 'N', 'L'};
constexpr std::size_t kHeaderSize = sizeof(kMagic) + 2 * sizeof(std::uint32_t);

constexpr std::uint32_t kRecJob = 1;
constexpr std::uint32_t kRecTrial = 2;
constexpr std::uint32_t kRecCancel = 3;
constexpr std::uint32_t kRecFailure = 4;

// A single scenario line is bounded by the spec grammar; a multi-GiB
// length field can only be corruption — reject it instead of allocating.
constexpr std::uint32_t kMaxPayload = 64u << 20;

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

// ---- Little-endian encode/decode over std::string ----------------------

template <typename T>
void put(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  // The repo targets little-endian hosts throughout (the .rcsr graph
  // cache makes the same assumption); memcpy keeps this free of UB.
  out.append(reinterpret_cast<const char*>(bytes), sizeof(T));
}

void put_str(std::string& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

struct Reader {
  const char* p;
  const char* end;

  template <typename T>
  bool get(T* value) {
    if (static_cast<std::size_t>(end - p) < sizeof(T)) return false;
    std::memcpy(value, p, sizeof(T));
    p += sizeof(T);
    return true;
  }
  bool get_str(std::string* s, std::uint32_t max = kMaxPayload) {
    std::uint32_t len = 0;
    if (!get(&len) || len > max) return false;
    if (static_cast<std::size_t>(end - p) < len) return false;
    s->assign(p, len);
    p += len;
    return true;
  }
  [[nodiscard]] bool done() const { return p == end; }
};

JournalJob* find_job(JournalState& state, std::uint64_t id) {
  for (JournalJob& job : state.jobs) {
    if (job.id == id) return &job;
  }
  return nullptr;
}

std::string encode_job(const JournalJob& job) {
  std::string payload;
  put<std::uint64_t>(payload, job.id);
  put_str(payload, job.client);
  put<std::uint32_t>(payload, static_cast<std::uint32_t>(job.lines.size()));
  for (const std::string& line : job.lines) put_str(payload, line);
  return payload;
}

std::string encode_trial(std::uint64_t job, const TrialRecord& rec) {
  std::string payload;
  put<std::uint64_t>(payload, job);
  put<std::uint32_t>(payload, rec.scenario);
  put<std::uint32_t>(payload, rec.trial);
  put<double>(payload, rec.rounds);
  put<double>(payload, rec.agent_rounds);
  put<double>(payload, rec.informed);
  put<std::uint8_t>(payload, rec.completed ? 1 : 0);
  return payload;
}

std::string encode_record(std::uint32_t type, const std::string& payload) {
  std::string framed;
  put<std::uint32_t>(framed, type);
  put<std::uint32_t>(framed, static_cast<std::uint32_t>(payload.size()));
  framed.append(payload);
  put<std::uint32_t>(framed, crc32_ieee(framed.data(), framed.size()));
  return framed;
}

std::string journal_header() {
  std::string header(kMagic, sizeof(kMagic));
  put<std::uint32_t>(header, kJournalVersion);
  put<std::uint32_t>(header, 0);
  return header;
}

// Applies one decoded record payload to the replay state; false = the
// payload does not decode (treated like a CRC failure: replay stops).
bool apply_record(JournalState& state, std::uint32_t type,
                  const char* payload, std::size_t size) {
  Reader r{payload, payload + size};
  switch (type) {
    case kRecJob: {
      JournalJob job;
      std::uint32_t lines = 0;
      if (!r.get(&job.id) || !r.get_str(&job.client) || !r.get(&lines)) {
        return false;
      }
      job.lines.reserve(lines);
      for (std::uint32_t i = 0; i < lines; ++i) {
        std::string line;
        if (!r.get_str(&line)) return false;
        job.lines.push_back(std::move(line));
      }
      if (!r.done() || job.id == 0) return false;
      if (find_job(state, job.id) != nullptr) return false;  // duplicate id
      if (job.id >= state.next_job_id) state.next_job_id = job.id + 1;
      state.jobs.push_back(std::move(job));
      return true;
    }
    case kRecTrial: {
      std::uint64_t id = 0;
      TrialRecord rec;
      std::uint8_t completed = 0;
      if (!r.get(&id) || !r.get(&rec.scenario) || !r.get(&rec.trial) ||
          !r.get(&rec.rounds) || !r.get(&rec.agent_rounds) ||
          !r.get(&rec.informed) || !r.get(&completed) || !r.done()) {
        return false;
      }
      rec.completed = completed != 0;
      JournalJob* job = find_job(state, id);
      if (job == nullptr) return false;  // result for a job never accepted
      job->trials.push_back(rec);
      return true;
    }
    case kRecCancel: {
      std::uint64_t id = 0;
      if (!r.get(&id) || !r.done()) return false;
      JournalJob* job = find_job(state, id);
      if (job == nullptr) return false;
      job->cancelled = true;
      return true;
    }
    case kRecFailure: {
      std::uint64_t id = 0;
      std::string message;
      if (!r.get(&id) || !r.get_str(&message) || !r.done()) return false;
      JournalJob* job = find_job(state, id);
      if (job == nullptr) return false;
      job->failure = message.empty() ? "failed" : message;
      return true;
    }
    default:
      return false;  // unknown type: written by a future version — stop
  }
}

}  // namespace

std::uint32_t crc32_ieee(const void* data, std::size_t size,
                         std::uint32_t seed) {
  // Table-free bitwise form: the journal appends are I/O-bound, so four
  // shifts per byte beat carrying a 1 KiB table around.
  std::uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= p[i];
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ (0xEDB88320u & (crc & 1u ? ~0u : 0u));
    }
  }
  return ~crc;
}

bool replay_journal_bytes(const std::string& bytes, JournalState* state,
                          std::string* error) {
  *state = JournalState{};
  if (bytes.size() < kHeaderSize) {
    set_error(error, "journal shorter than its header");
    return false;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    set_error(error, "not a rumor_serve journal (bad magic)");
    return false;
  }
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
  if (version != kJournalVersion) {
    set_error(error, "journal version " + std::to_string(version) +
                         " (this build reads version " +
                         std::to_string(kJournalVersion) + ")");
    return false;
  }
  std::size_t pos = kHeaderSize;
  std::size_t record_index = 0;
  auto truncated = [&](const std::string& why) {
    state->clean = false;
    state->warning = "record " + std::to_string(record_index) + " at byte " +
                     std::to_string(pos) + ": " + why +
                     "; replayed the valid prefix";
  };
  while (pos < bytes.size()) {
    constexpr std::size_t kFrame = 3 * sizeof(std::uint32_t);
    if (bytes.size() - pos < kFrame) {
      truncated("torn tail");
      break;
    }
    std::uint32_t type = 0;
    std::uint32_t length = 0;
    std::memcpy(&type, bytes.data() + pos, sizeof(type));
    std::memcpy(&length, bytes.data() + pos + 4, sizeof(length));
    if (length > kMaxPayload || bytes.size() - pos - kFrame < length) {
      truncated("torn or oversized record");
      break;
    }
    std::uint32_t stored_crc = 0;
    std::memcpy(&stored_crc, bytes.data() + pos + 8 + length,
                sizeof(stored_crc));
    if (crc32_ieee(bytes.data() + pos, 8 + length) != stored_crc) {
      truncated("CRC mismatch");
      break;
    }
    if (!apply_record(*state, type, bytes.data() + pos + 8, length)) {
      truncated("undecodable record (type " + std::to_string(type) + ")");
      break;
    }
    pos += kFrame + length;
    ++record_index;
  }
  return true;
}

Journal::~Journal() { close(); }

void Journal::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool Journal::open(const std::string& path, JournalState* state,
                   std::string* error) {
  close();
  path_ = path;
  *state = JournalState{};
  std::string bytes;
  if (std::FILE* in = std::fopen(path.c_str(), "rb")) {
    char buf[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof buf, in)) > 0) {
      bytes.append(buf, got);
    }
    std::fclose(in);
  }
  if (!bytes.empty() && !replay_journal_bytes(bytes, state, error)) {
    return false;
  }
  // A recovered (unclean) journal is compacted before appending: writing
  // past a torn tail would orphan every later record behind the break.
  if (!state->clean) return checkpoint(*state, error);
  file_ = std::fopen(path.c_str(), bytes.empty() ? "wb" : "ab");
  if (file_ == nullptr) {
    set_error(error, path + ": cannot open journal for appending");
    return false;
  }
  if (bytes.empty()) {
    const std::string header = journal_header();
    std::fwrite(header.data(), 1, header.size(), file_);
    std::fflush(file_);
  }
  return true;
}

void Journal::append_record(std::uint32_t type, const std::string& payload) {
  RUMOR_REQUIRE(file_ != nullptr);
  const std::string framed = encode_record(type, payload);
  std::fwrite(framed.data(), 1, framed.size(), file_);
  // fflush pushes the record into the kernel page cache: enough to
  // survive SIGKILL of the server (the crash model the resume contract
  // covers). Power-loss durability comes from checkpoint()'s fsync.
  std::fflush(file_);
}

void Journal::append_job(const JournalJob& job) {
  append_record(kRecJob, encode_job(job));
}

void Journal::append_trial(std::uint64_t job, const TrialRecord& rec) {
  append_record(kRecTrial, encode_trial(job, rec));
}

void Journal::append_cancel(std::uint64_t job) {
  std::string payload;
  put<std::uint64_t>(payload, job);
  append_record(kRecCancel, payload);
}

void Journal::append_failure(std::uint64_t job, const std::string& message) {
  std::string payload;
  put<std::uint64_t>(payload, job);
  put_str(payload, message);
  append_record(kRecFailure, payload);
}

bool Journal::checkpoint(const JournalState& state, std::string* error) {
  close();
  // Write to a temp name, fsync, rename into place: a crash mid-compaction
  // leaves the old journal untouched (rename on one filesystem is atomic).
  const std::string tmp = path_ + ".tmp." + std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    set_error(error, tmp + ": cannot open checkpoint for writing");
    return false;
  }
  std::string bytes = journal_header();
  for (const JournalJob& job : state.jobs) {
    bytes += encode_record(kRecJob, encode_job(job));
    // Cancelled jobs will never be resumed: their trial records are the
    // garbage compaction exists to drop.
    if (!job.cancelled) {
      for (const TrialRecord& rec : job.trials) {
        bytes += encode_record(kRecTrial, encode_trial(job.id, rec));
      }
    }
    if (job.cancelled) {
      std::string payload;
      put<std::uint64_t>(payload, job.id);
      bytes += encode_record(kRecCancel, payload);
    }
    if (!job.failure.empty()) {
      std::string payload;
      put<std::uint64_t>(payload, job.id);
      put_str(payload, job.failure);
      bytes += encode_record(kRecFailure, payload);
    }
  }
  const bool wrote = std::fwrite(bytes.data(), 1, bytes.size(), f) ==
                     bytes.size();
  const bool flushed = std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  if (std::fclose(f) != 0 || !wrote || !flushed) {
    std::remove(tmp.c_str());
    set_error(error, tmp + ": short checkpoint write");
    return false;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    set_error(error, path_ + ": cannot rename checkpoint into place");
    return false;
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    set_error(error, path_ + ": cannot reopen journal after checkpoint");
    return false;
  }
  return true;
}

}  // namespace rumor::serve

// Crash-safe job/result journal for the rumor_serve daemon.
//
// Binary, append-only, little-endian. Layout:
//
//   header   8-byte magic "RSRVJRNL" + u32 version + u32 reserved(0)
//   record*  u32 type | u32 payload_len | payload | u32 crc32
//
// The CRC covers type + payload_len + payload, so a torn tail (the server
// was SIGKILL'd mid-append) or a flipped bit is detected per record.
// Replay stops at the first invalid record and keeps everything before it
// — correctness never depends on the journal being complete, because
// trial seeding is deterministic: a missing trial record just means that
// trial re-runs on resume and produces the identical values.
//
// Record types:
//   1 job accepted   u64 id | str client | u32 n | n × str scenario-line
//                    (canonical expanded spec lines; parse(name())
//                    round-trips, so resume rebuilds the exact scenarios)
//   2 trial done     u64 id | u32 scenario | u32 trial | f64 rounds |
//                    f64 agent_rounds | f64 informed | u8 completed
//   3 job cancelled  u64 id
//   4 job failed     u64 id | str message
//
// `str` = u32 length + bytes. Appends go through fwrite+fflush — the
// bytes reach the kernel page cache, which survives SIGKILL (only power
// loss defeats it; checkpoint() fsyncs for that). checkpoint() compacts:
// the replayed state is rewritten to a temp file and atomically renamed
// over the journal, dropping corrupt tails and cancelled jobs' trials.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rumor::serve {

constexpr std::uint32_t kJournalVersion = 1;

// CRC-32 (IEEE 802.3, reflected). Exposed for the corruption tests.
[[nodiscard]] std::uint32_t crc32_ieee(const void* data, std::size_t size,
                                       std::uint32_t seed = 0);

struct TrialRecord {
  std::uint32_t scenario = 0;
  std::uint32_t trial = 0;
  double rounds = 0.0;
  double agent_rounds = 0.0;
  double informed = 0.0;
  bool completed = true;
};

struct JournalJob {
  std::uint64_t id = 0;
  std::string client;
  std::vector<std::string> lines;  // canonical expanded scenario lines
  bool cancelled = false;
  std::string failure;  // non-empty = the job died on a trial error
  std::vector<TrialRecord> trials;  // completed trials, journal order
};

struct JournalState {
  std::vector<JournalJob> jobs;
  std::uint64_t next_job_id = 1;
  // False when replay dropped a torn/corrupt tail; `warning` says where.
  bool clean = true;
  std::string warning;
};

class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Opens (creating if absent) the journal and replays it into *state.
  // Returns false only on unrecoverable problems — unreadable file, bad
  // magic, version mismatch; a truncated or CRC-corrupt tail is recovered
  // (replay keeps the valid prefix, state->clean = false). On success the
  // journal is positioned for appending.
  [[nodiscard]] bool open(const std::string& path, JournalState* state,
                          std::string* error);

  // Appends one record and flushes it to the kernel (SIGKILL-safe).
  void append_job(const JournalJob& job);
  void append_trial(std::uint64_t job, const TrialRecord& rec);
  void append_cancel(std::uint64_t job);
  void append_failure(std::uint64_t job, const std::string& message);

  // Compaction: rewrites the journal to exactly `state` (header + one job
  // record + its trial records per job, cancelled/failed markers last)
  // via temp + fsync + atomic rename, then reopens for appending.
  [[nodiscard]] bool checkpoint(const JournalState& state,
                                std::string* error);

  void close();
  [[nodiscard]] bool is_open() const { return file_ != nullptr; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void append_record(std::uint32_t type, const std::string& payload);

  std::string path_;
  std::FILE* file_ = nullptr;
};

// Pure replay of a journal byte buffer (open() uses it; the robustness
// tests feed it hand-corrupted buffers directly).
[[nodiscard]] bool replay_journal_bytes(const std::string& bytes,
                                        JournalState* state,
                                        std::string* error);

}  // namespace rumor::serve

#include "serve/protocol.hpp"

#include <vector>

#include "support/spec_text.hpp"

namespace rumor::serve {

namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

std::vector<std::string_view> split_words(std::string_view line) {
  std::vector<std::string_view> words;
  while (!line.empty()) {
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string_view::npos) break;
    line.remove_prefix(start);
    const std::size_t end = line.find_first_of(" \t");
    words.push_back(line.substr(0, end));
    if (end == std::string_view::npos) break;
    line.remove_prefix(end);
  }
  return words;
}

}  // namespace

std::string Address::text() const {
  if (kind == Kind::unix_socket) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

std::optional<Address> parse_address(std::string_view text,
                                     std::string* error) {
  Address addr;
  if (text.starts_with("unix:")) {
    addr.kind = Address::Kind::unix_socket;
    addr.path = std::string(text.substr(5));
    if (addr.path.empty()) {
      set_error(error, "unix address needs a path (unix:<path>)");
      return std::nullopt;
    }
    // sockaddr_un.sun_path is a fixed ~108-byte field; reject what bind()
    // would silently truncate.
    if (addr.path.size() >= 100) {
      set_error(error, "unix socket path too long (max 99 bytes)");
      return std::nullopt;
    }
    return addr;
  }
  addr.kind = Address::Kind::tcp;
  const std::size_t colon = text.rfind(':');
  std::string_view port_text = text;
  if (colon != std::string_view::npos) {
    addr.host = std::string(text.substr(0, colon));
    port_text = text.substr(colon + 1);
  } else {
    addr.host = "127.0.0.1";
  }
  if (addr.host.empty()) addr.host = "127.0.0.1";
  const auto port = spec_text::parse_u64(port_text);
  if (!port || *port == 0 || *port > 65535) {
    set_error(error, "bad TCP port \"" + std::string(port_text) +
                         "\" (want unix:<path>, <host>:<port>, or <port>)");
    return std::nullopt;
  }
  addr.port = static_cast<std::uint16_t>(*port);
  return addr;
}

std::optional<Request> parse_request(std::string_view line,
                                     std::string* error) {
  const std::vector<std::string_view> words = split_words(line);
  if (words.empty()) {
    set_error(error, "empty command");
    return std::nullopt;
  }
  Request req;
  const std::string_view verb = words[0];
  auto want_args = [&](std::size_t n) {
    if (words.size() == n + 1) return true;
    set_error(error, std::string(verb) + " takes " + std::to_string(n) +
                         " argument" + (n == 1 ? "" : "s"));
    return false;
  };
  auto parse_job = [&]() -> bool {
    const auto id = spec_text::parse_u64(words[1]);
    if (!id || *id == 0) {
      set_error(error, "bad job id \"" + std::string(words[1]) + "\"");
      return false;
    }
    req.job = *id;
    return true;
  };
  if (verb == "HELLO") {
    if (!want_args(1)) return std::nullopt;
    req.kind = Request::Kind::hello;
    req.name = std::string(words[1]);
    return req;
  }
  if (verb == "SUBMIT") {
    if (!want_args(1)) return std::nullopt;
    const auto n = spec_text::parse_u64(words[1]);
    if (!n || *n == 0 || *n > kMaxSubmitLines) {
      set_error(error, "SUBMIT line count must be 1.." +
                           std::to_string(kMaxSubmitLines));
      return std::nullopt;
    }
    req.kind = Request::Kind::submit;
    req.lines = static_cast<std::size_t>(*n);
    return req;
  }
  if (verb == "STATUS" || verb == "CANCEL" || verb == "RESULTS") {
    if (!want_args(1) || !parse_job()) return std::nullopt;
    req.kind = verb == "STATUS"   ? Request::Kind::status
               : verb == "CANCEL" ? Request::Kind::cancel
                                  : Request::Kind::results;
    return req;
  }
  if (verb == "STATS") {
    if (!want_args(0)) return std::nullopt;
    req.kind = Request::Kind::stats;
    return req;
  }
  if (verb == "QUIT") {
    if (!want_args(0)) return std::nullopt;
    req.kind = Request::Kind::quit;
    return req;
  }
  set_error(error, "unknown command \"" + std::string(verb) + "\"");
  return std::nullopt;
}

std::string sanitize_reply_text(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    out.push_back(c == '\n' || c == '\r' ? ' ' : c);
  }
  const std::size_t first = out.find_first_not_of(' ');
  if (first == std::string::npos) return std::string();
  const std::size_t last = out.find_last_not_of(' ');
  return out.substr(first, last - first + 1);
}

}  // namespace rumor::serve

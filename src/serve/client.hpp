// Blocking client for the rumor_serve protocol: one connection, simple
// request/reply calls plus a watch() loop that collects a job's streamed
// results. Used by the `rumor_run submit/watch/stats` subcommands and the
// serve tests; deliberately synchronous — concurrency lives in the server.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace rumor::serve {

// One trial line streamed by RESULTS.
struct TrialUpdate {
  std::uint32_t scenario = 0;
  std::uint32_t trial = 0;
  double rounds = 0.0;
  double agent_rounds = 0.0;
  double informed = 0.0;
  bool completed = true;
};

// Everything watch() collected: terminal state ("done", "cancelled",
// "failed <why>") and the scenario CSV rows indexed as the server emitted
// them (rows[i] is scenario i's row — identical bytes to write_scenario_csv).
struct WatchResult {
  std::string state;
  std::vector<std::string> rows;
};

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects and HELLOs as `client_name`. False (with *error) on refusal,
  // version mismatch, or socket failure.
  [[nodiscard]] bool connect(const Address& addr,
                             const std::string& client_name,
                             std::string* error);

  // SUBMITs scenario text (whole .scn file contents). On acceptance
  // returns the job id; on BUSY/ERR returns nullopt with the server's
  // reply in *error (prefixed "busy: " for backpressure rejections).
  [[nodiscard]] std::optional<std::uint64_t> submit(
      const std::string& scenario_text, std::string* error);

  // RESULTS <job>: consumes the stream until END. `on_trial` (optional)
  // fires per TRIAL line as it arrives.
  [[nodiscard]] std::optional<WatchResult> watch(
      std::uint64_t job, std::string* error,
      const std::function<void(const TrialUpdate&)>& on_trial = {});

  // STATUS <job>: the raw "OK ..." status line (sans "OK ").
  [[nodiscard]] std::optional<std::string> status(std::uint64_t job,
                                                  std::string* error);

  // CANCEL <job>.
  [[nodiscard]] bool cancel(std::uint64_t job, std::string* error);

  // STATS: every line of the reply up to (excluding) the "." terminator.
  [[nodiscard]] std::optional<std::vector<std::string>> stats(
      std::string* error);

  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

 private:
  [[nodiscard]] bool send_text(const std::string& text, std::string* error);
  [[nodiscard]] std::optional<std::string> read_line(std::string* error);

  int fd_ = -1;
  std::string in_;  // buffered, not-yet-consumed received bytes
};

}  // namespace rumor::serve

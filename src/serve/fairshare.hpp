// Fair-share (job, scenario, trial) intake queue for the serve daemon.
//
// Every accepted job belongs to a named client. Workers claim one trial
// at a time; claims rotate round-robin across the clients that currently
// have runnable work, so a client with a 10-trial smoke test makes
// forward progress at the same per-trial rate as a client draining a
// 10,000-trial sweep — neither submitter can starve the other. Within one
// client, jobs drain in submission order; within one job, trials drain in
// (scenario, trial) order. Because trial values are pure functions of
// (master seed, trial index), claim order affects latency only, never
// results.
//
// Backpressure: a client's *pending* trials (queued + in-flight, across
// all its live jobs) may not exceed the per-client budget. would_exceed()
// is the SUBMIT-time check — the server replies BUSY and enqueues
// nothing. add_job() itself is unconditional, because journal resume must
// reload whatever was accepted before the crash.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace rumor::serve {

struct Claim {
  std::uint64_t job = 0;
  std::uint32_t scenario = 0;
  std::uint32_t trial = 0;

  friend bool operator==(const Claim&, const Claim&) = default;
};

// One client's row in the STATS reply.
struct ClientShare {
  std::string client;
  std::size_t pending = 0;  // queued + in-flight trials, all live jobs
  std::size_t claimed = 0;  // cumulative trials handed to workers
  std::size_t jobs = 0;     // jobs with work still queued
};

class FairShareQueue {
 public:
  explicit FairShareQueue(std::size_t client_budget)
      : budget_(client_budget) {}

  // True when accepting `trials` more pending trials would push `client`
  // past the per-client budget (the BUSY condition).
  [[nodiscard]] bool would_exceed(const std::string& client,
                                  std::size_t trials) const;

  // Enqueues one job: pending[s] lists the trial indices of scenario s
  // still to run (resume passes the not-yet-journaled subset). Trials are
  // claimed scenario-major in the given order.
  void add_job(const std::string& client, std::uint64_t job,
               const std::vector<std::vector<std::uint32_t>>& pending);

  // Drops the job's never-claimed trials; returns how many were dropped
  // (in-flight trials finish normally).
  std::size_t cancel_job(std::uint64_t job);

  // Blocks until a claim is available or close() was called (nullopt).
  [[nodiscard]] std::optional<Claim> wait_claim();
  // Non-blocking variant (tests / opportunistic draining).
  [[nodiscard]] std::optional<Claim> try_claim();

  // Retires a claim handed out by wait_claim/try_claim: releases its
  // budget slot whether the trial succeeded or threw.
  void complete(const Claim& claim);

  // Wakes every blocked wait_claim with nullopt; further claims fail.
  void close();

  [[nodiscard]] std::size_t pending(const std::string& client) const;
  [[nodiscard]] std::vector<ClientShare> shares() const;
  [[nodiscard]] std::size_t budget() const { return budget_; }

 private:
  struct JobQueue {
    std::uint64_t id = 0;
    std::size_t client_index = 0;
    std::deque<Claim> queued;  // scenario-major claim order
  };
  struct Client {
    std::string name;
    std::deque<std::uint64_t> jobs;  // submission order, front = current
    std::size_t pending = 0;         // queued + in-flight trials
    std::size_t claimed = 0;         // cumulative
  };

  std::optional<Claim> claim_locked();
  std::size_t client_index_locked(const std::string& name);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t budget_;
  bool closed_ = false;
  std::vector<Client> clients_;
  std::size_t rotation_ = 0;  // next client offered a claim
  std::unordered_map<std::uint64_t, JobQueue> jobs_;
  // job id -> clients_ index, for the in-flight budget release after the
  // job's claim queue itself is retired. Job ids are never reused, so
  // entries simply accumulate (bounded by accepted jobs).
  std::unordered_map<std::uint64_t, std::size_t> owner_;
};

}  // namespace rumor::serve

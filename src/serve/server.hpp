// rumor_serve: the long-lived scenario service behind `rumor_run --serve`.
//
// One process, two planes:
//
//   * an I/O plane — a poll(2) event loop on the main thread owning every
//     socket (Unix + TCP listeners, client connections), the journal, and
//     all job bookkeeping. Single-threaded by construction, so job state
//     needs no locking beyond the worker handoff below.
//   * a compute plane — N worker threads claiming one (job, scenario,
//     trial) at a time from the FairShareQueue and executing it through
//     run_batch_trial, the exact executor run_trial_batches drains, so a
//     served job's samples are byte-identical to a one-shot `rumor_run`
//     of the same scenario lines.
//
// Workers hand finished trials back through a mutex-guarded event vector
// plus a self-pipe byte that wakes poll(); the main thread journals the
// trial, streams TRIAL/ROW lines to subscribed watchers, and retires
// scenarios/jobs in file order. A SIGKILL at any instant loses at most
// the events not yet journaled — on restart, replay marks the journaled
// trials done and the missing ones simply re-run to identical values
// (deterministic (master_seed, trial) seeding).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace rumor::serve {

struct ServerOptions {
  std::vector<Address> listen;  // at least one address required
  std::string journal_path = "serve.journal";
  std::size_t workers = 0;  // compute threads; 0 = hardware concurrency
  // Per-client pending-trial budget (queued + in-flight, across the
  // client's live jobs); SUBMITs that would exceed it get BUSY.
  std::size_t client_budget = 65536;
};

class Server {
 public:
  Server();
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds every listen address, opens + replays the journal (unfinished
  // jobs are re-queued, finished ones kept for RESULTS re-streaming),
  // compacts it, and spawns the compute workers. False on any failure.
  [[nodiscard]] bool start(const ServerOptions& options, std::string* error);

  // The poll loop. Returns when `stop` flips true (the caller's signal
  // handler): stops claiming, drains in-flight trials, journals them,
  // checkpoints, and closes every socket.
  void run(const std::atomic<bool>& stop);

  // Crash simulation for the resume tests: tears the server down WITHOUT
  // journaling pending events or checkpointing — the journal is left
  // exactly as the last append wrote it, as a SIGKILL would.
  void abandon();

  // Bound addresses, with ephemeral TCP ports resolved (tests bind
  // port 0 and connect to what this reports).
  [[nodiscard]] std::vector<Address> addresses() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rumor::serve

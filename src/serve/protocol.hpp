// Wire protocol of the rumor_serve daemon: address grammar + the
// line-oriented command set (see docs/serve.md for the full grammar).
//
// Requests are single LF-terminated lines; SUBMIT is followed by a fixed,
// pre-announced number of scenario-text lines so the server never has to
// guess where a submission ends. Replies are single lines ("OK ...",
// "ERR <code> ...", "BUSY ...") except STATS (lines until a lone ".") and
// RESULTS (a stream of TRIAL/ROW lines closed by "END <job> <state>").
//
// Everything here is pure parsing/formatting — no sockets — so the
// grammar is unit-testable without a running daemon.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rumor::serve {

// Protocol revision announced in the HELLO reply and checked by clients.
constexpr int kProtocolVersion = 1;

// Upper bound on the scenario-text lines one SUBMIT may carry: a typo'd
// header count cannot make the server buffer an unbounded body.
constexpr std::size_t kMaxSubmitLines = 4096;

// Listen/connect address. Text forms:
//   unix:<path>    Unix-domain stream socket
//   <host>:<port>  TCP (numeric host; no resolver dependency)
//   <port>         TCP on 127.0.0.1
struct Address {
  enum class Kind : std::uint8_t { unix_socket, tcp };
  Kind kind = Kind::tcp;
  std::string path;  // unix_socket
  std::string host;  // tcp
  std::uint16_t port = 0;

  // Canonical text form (parse_address round-trips it).
  [[nodiscard]] std::string text() const;
};

[[nodiscard]] std::optional<Address> parse_address(
    std::string_view text, std::string* error = nullptr);

// One parsed client command line.
struct Request {
  enum class Kind : std::uint8_t {
    hello,    // HELLO <client-name>
    submit,   // SUBMIT <n-lines>   (n scenario-text lines follow)
    status,   // STATUS <job>
    cancel,   // CANCEL <job>
    results,  // RESULTS <job>
    stats,    // STATS
    quit,     // QUIT
  };
  Kind kind = Kind::stats;
  std::string name;       // hello
  std::uint64_t job = 0;  // status/cancel/results
  std::size_t lines = 0;  // submit
};

[[nodiscard]] std::optional<Request> parse_request(
    std::string_view line, std::string* error = nullptr);

// Collapses CR/LF (and leading/trailing space) out of a message so it can
// ride inside a single reply line without breaking the framing.
[[nodiscard]] std::string sanitize_reply_text(std::string_view text);

}  // namespace rumor::serve

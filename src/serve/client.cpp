#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

namespace rumor::serve {

namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

// Counts the LF-terminated lines SUBMIT must announce. A trailing chunk
// without a newline still counts as one line (the server frames on the
// announced count, and we send text with a final newline appended).
std::size_t count_lines(const std::string& text) {
  std::size_t lines = 0;
  bool pending = false;
  for (const char c : text) {
    pending = true;
    if (c == '\n') {
      lines += 1;
      pending = false;
    }
  }
  return lines + (pending ? 1 : 0);
}

}  // namespace

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  in_.clear();
}

bool Client::connect(const Address& addr, const std::string& client_name,
                     std::string* error) {
  close();
  if (addr.kind == Address::Kind::unix_socket) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      set_error(error, "socket: " + std::string(strerror(errno)));
      return false;
    }
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.path.c_str(), sizeof(sa.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      set_error(error, addr.path + ": connect: " + strerror(errno));
      close();
      return false;
    }
  } else {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      set_error(error, "socket: " + std::string(strerror(errno)));
      return false;
    }
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(addr.port);
    if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
      set_error(error, addr.host + ": not a numeric IPv4 address");
      close();
      return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      set_error(error, addr.text() + ": connect: " + strerror(errno));
      close();
      return false;
    }
  }
  if (!send_text("HELLO " + client_name + "\n", error)) return false;
  const auto reply = read_line(error);
  if (!reply) return false;
  if (reply->rfind("OK rumor_serve v", 0) != 0) {
    set_error(error, "unexpected HELLO reply: " + *reply);
    close();
    return false;
  }
  const std::string version = reply->substr(std::strlen("OK rumor_serve v"));
  if (version != std::to_string(kProtocolVersion)) {
    set_error(error, "protocol version mismatch: server v" + version +
                         ", client v" + std::to_string(kProtocolVersion));
    close();
    return false;
  }
  return true;
}

bool Client::send_text(const std::string& text, std::string* error) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    // MSG_NOSIGNAL: a died server yields an error return, not SIGPIPE.
    const ssize_t n = ::send(fd_, text.data() + sent, text.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      set_error(error, "write: " + std::string(strerror(errno)));
      close();
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> Client::read_line(std::string* error) {
  for (;;) {
    const std::size_t nl = in_.find('\n');
    if (nl != std::string::npos) {
      std::string line = in_.substr(0, nl);
      in_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char buf[4096];
    const ssize_t got = ::read(fd_, buf, sizeof buf);
    if (got > 0) {
      in_.append(buf, static_cast<std::size_t>(got));
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    set_error(error, got == 0 ? "server closed the connection"
                              : "read: " + std::string(strerror(errno)));
    close();
    return std::nullopt;
  }
}

std::optional<std::uint64_t> Client::submit(const std::string& scenario_text,
                                            std::string* error) {
  const std::size_t lines = count_lines(scenario_text);
  if (lines == 0) {
    set_error(error, "submission is empty");
    return std::nullopt;
  }
  std::string wire = "SUBMIT " + std::to_string(lines) + "\n";
  wire += scenario_text;
  if (wire.back() != '\n') wire += '\n';
  if (!send_text(wire, error)) return std::nullopt;
  const auto reply = read_line(error);
  if (!reply) return std::nullopt;
  if (reply->rfind("OK ", 0) == 0) {
    std::istringstream in(reply->substr(3));
    std::uint64_t id = 0;
    if (in >> id && id != 0) return id;
    set_error(error, "malformed accept reply: " + *reply);
    return std::nullopt;
  }
  if (reply->rfind("BUSY", 0) == 0) {
    set_error(error, "busy: " + *reply);
    return std::nullopt;
  }
  set_error(error, *reply);
  return std::nullopt;
}

std::optional<WatchResult> Client::watch(
    std::uint64_t job, std::string* error,
    const std::function<void(const TrialUpdate&)>& on_trial) {
  if (!send_text("RESULTS " + std::to_string(job) + "\n", error)) {
    return std::nullopt;
  }
  auto reply = read_line(error);
  if (!reply) return std::nullopt;
  if (reply->rfind("OK ", 0) != 0) {
    set_error(error, *reply);
    return std::nullopt;
  }
  WatchResult result;
  for (;;) {
    auto line = read_line(error);
    if (!line) return std::nullopt;
    std::istringstream in(*line);
    std::string verb;
    in >> verb;
    if (verb == "TRIAL") {
      TrialUpdate update;
      int completed = 1;
      if (in >> update.scenario >> update.trial >> update.rounds >>
          update.agent_rounds >> update.informed >> completed) {
        update.completed = completed != 0;
        if (on_trial) on_trial(update);
      }
    } else if (verb == "ROW") {
      std::size_t index = 0;
      if (!(in >> index)) continue;
      // The row is everything after "ROW <index> " — CSV, may hold spaces.
      const std::string prefix = "ROW " + std::to_string(index) + " ";
      if (result.rows.size() <= index) result.rows.resize(index + 1);
      result.rows[index] = line->substr(prefix.size());
    } else if (verb == "END") {
      std::uint64_t id = 0;
      in >> id;
      std::string state;
      std::getline(in, state);
      const std::size_t start = state.find_first_not_of(' ');
      result.state =
          start == std::string::npos ? "" : state.substr(start);
      return result;
    }
    // Unknown verbs are skipped: a v1 client survives additive streams.
  }
}

std::optional<std::string> Client::status(std::uint64_t job,
                                          std::string* error) {
  if (!send_text("STATUS " + std::to_string(job) + "\n", error)) {
    return std::nullopt;
  }
  const auto reply = read_line(error);
  if (!reply) return std::nullopt;
  if (reply->rfind("OK ", 0) != 0) {
    set_error(error, *reply);
    return std::nullopt;
  }
  return reply->substr(3);
}

bool Client::cancel(std::uint64_t job, std::string* error) {
  if (!send_text("CANCEL " + std::to_string(job) + "\n", error)) {
    return false;
  }
  const auto reply = read_line(error);
  if (!reply) return false;
  if (reply->rfind("OK ", 0) != 0) {
    set_error(error, *reply);
    return false;
  }
  return true;
}

std::optional<std::vector<std::string>> Client::stats(std::string* error) {
  if (!send_text("STATS\n", error)) return std::nullopt;
  std::vector<std::string> lines;
  for (;;) {
    auto line = read_line(error);
    if (!line) return std::nullopt;
    if (*line == ".") return lines;
    if (lines.empty() && line->rfind("ERR", 0) == 0) {
      set_error(error, *line);
      return std::nullopt;
    }
    lines.push_back(std::move(*line));
  }
}

}  // namespace rumor::serve

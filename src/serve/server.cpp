#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "experiments/report.hpp"
#include "experiments/scenario.hpp"
#include "serve/fairshare.hpp"
#include "serve/journal.hpp"

namespace rumor::serve {

namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// A watcher that never reads must not let the server buffer its stream
// forever; past this the connection is dropped.
constexpr std::size_t kMaxConnBuffer = 64u << 20;

// Per-trial completion state: pending, done-complete, done-at-cutoff.
enum : unsigned char { kPending = 0, kDone = 1, kDoneIncomplete = 2 };

}  // namespace

struct Server::Impl {
  // ---- job state (owned by the I/O thread; map guarded for workers) ----

  struct ScenarioState {
    ScenarioResult result;
    PreparedScenario prep;
    TrialBatch batch;
    LazyGraphSlot lazy;
    std::vector<unsigned char> trial_done;
    std::size_t done_count = 0;
    std::size_t incomplete_count = 0;
    // Whether this scenario's pending work was added to the live queue
    // counters (resume skips fully journaled scenarios).
    bool counted = false;
    [[nodiscard]] bool drained() const { return done_count == batch.trials; }
  };

  struct Job {
    std::uint64_t id = 0;
    std::string client;
    std::vector<std::string> lines;  // canonical expanded scenario lines
    std::vector<std::unique_ptr<ScenarioState>> scenarios;
    enum class State : std::uint8_t { running, done, cancelled, failed };
    State state = State::running;
    std::string failure;
    std::size_t next_row = 0;        // scenario rows emitted, in order
    std::vector<std::string> rows;   // emitted CSV rows (re-streamed)
    std::size_t trials_total = 0;
    std::size_t trials_done = 0;     // includes journal-replayed trials
    // After cancel/failure: in-flight trials still owed an event; the
    // job's lazy graphs are released only when this reaches zero (a
    // worker may hold a reference into them until then).
    std::size_t terminal_inflight = 0;
    std::vector<int> watchers;       // conn fds subscribed via RESULTS
  };

  struct TrialEvent {
    std::uint64_t job = 0;
    std::uint32_t scenario = 0;
    std::uint32_t trial = 0;
    double rounds = 0.0;
    double agent_rounds = 0.0;
    double informed = 0.0;
    bool completed = true;
    bool failed = false;
    std::string error;
  };

  struct Conn {
    int fd = -1;
    std::string in;
    std::string out;
    std::string client;
    std::size_t submit_remaining = 0;
    std::string submit_text;
    bool closing = false;  // flush remaining output, then close
  };

  ServerOptions options_;
  Journal journal_;
  std::unique_ptr<FairShareQueue> queue_;
  TrialCounters counters_;
  std::vector<int> listen_fds_;
  std::vector<Address> bound_;
  std::vector<std::string> unix_paths_;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::vector<std::thread> workers_;
  std::mutex events_mutex_;
  std::vector<TrialEvent> events_;
  std::mutex jobs_mutex_;  // insert (I/O thread) vs lookup (workers)
  std::unordered_map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  std::vector<std::uint64_t> job_order_;  // acceptance order, for STATS
  std::uint64_t next_job_id_ = 1;
  std::unordered_map<int, Conn> conns_;
  bool started_ = false;
  // abandon() support: the poll loop exits without graceful teardown when
  // this flips; loop_active_ tracks whether run() currently owns the state
  // (teardown must then happen on the run thread, not the caller's).
  std::atomic<bool> abandon_{false};
  std::atomic<bool> loop_active_{false};
  std::mutex teardown_mutex_;
  bool torn_down_ = false;

  ~Impl() { teardown(/*checkpoint=*/false, /*drain_events=*/false); }

  // ---- lifecycle -------------------------------------------------------

  bool bind_listener(const Address& addr, std::string* error) {
    int fd = -1;
    if (addr.kind == Address::Kind::unix_socket) {
      fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd < 0) {
        set_error(error, "socket(AF_UNIX): " + std::string(strerror(errno)));
        return false;
      }
      sockaddr_un sa{};
      sa.sun_family = AF_UNIX;
      std::strncpy(sa.sun_path, addr.path.c_str(), sizeof(sa.sun_path) - 1);
      // A SIGKILL'd predecessor leaves its socket file behind; the journal
      // (not the socket) is the durable state, so rebinding wins.
      ::unlink(addr.path.c_str());
      if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
        set_error(error, addr.path + ": bind: " + strerror(errno));
        ::close(fd);
        return false;
      }
      unix_paths_.push_back(addr.path);
    } else {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) {
        set_error(error, "socket(AF_INET): " + std::string(strerror(errno)));
        return false;
      }
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in sa{};
      sa.sin_family = AF_INET;
      sa.sin_port = htons(addr.port);
      if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
        set_error(error, addr.host + ": not a numeric IPv4 address");
        ::close(fd);
        return false;
      }
      if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
        set_error(error, addr.text() + ": bind: " + strerror(errno));
        ::close(fd);
        return false;
      }
    }
    if (::listen(fd, 64) != 0 || !set_nonblocking(fd)) {
      set_error(error, addr.text() + ": listen: " + strerror(errno));
      ::close(fd);
      return false;
    }
    Address resolved = addr;
    if (addr.kind == Address::Kind::tcp && addr.port == 0) {
      sockaddr_in sa{};
      socklen_t len = sizeof(sa);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) == 0) {
        resolved.port = ntohs(sa.sin_port);
      }
    }
    listen_fds_.push_back(fd);
    bound_.push_back(resolved);
    return true;
  }

  bool start(const ServerOptions& options, std::string* error) {
    options_ = options;
    if (options_.listen.empty()) {
      set_error(error, "no listen address (need --serve=<addr>)");
      return false;
    }
    if (options_.workers == 0) {
      options_.workers = std::max(1u, std::thread::hardware_concurrency());
    }
    queue_ = std::make_unique<FairShareQueue>(options_.client_budget);
    for (const Address& addr : options_.listen) {
      if (!bind_listener(addr, error)) return false;
    }
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      set_error(error, "pipe: " + std::string(strerror(errno)));
      return false;
    }
    wake_read_ = pipe_fds[0];
    wake_write_ = pipe_fds[1];
    set_nonblocking(wake_read_);
    set_nonblocking(wake_write_);

    JournalState replayed;
    if (!journal_.open(options_.journal_path, &replayed, error)) return false;
    if (!replayed.clean) {
      std::fprintf(stderr, "rumor_serve: journal recovered: %s\n",
                   replayed.warning.c_str());
    }
    next_job_id_ = replayed.next_job_id;
    for (const JournalJob& job : replayed.jobs) resume_job(job);
    // Compact what we just replayed: drops cancelled jobs' trials and any
    // recovered-over tail, and proves the journal is writable.
    if (!journal_.checkpoint(snapshot_journal(), error)) return false;

    workers_.reserve(options_.workers);
    for (std::size_t w = 0; w < options_.workers; ++w) {
      workers_.emplace_back([this] { worker_loop(); });
    }
    started_ = true;
    return true;
  }

  // ---- compute plane ---------------------------------------------------

  void wake() {
    const char byte = 1;
    [[maybe_unused]] const auto n = ::write(wake_write_, &byte, 1);
  }

  void worker_loop() {
    while (auto claim = queue_->wait_claim()) {
      counters_.on_claim();
      ScenarioState* s = nullptr;
      {
        std::lock_guard lock(jobs_mutex_);
        s = jobs_.at(claim->job)->scenarios[claim->scenario].get();
      }
      TrialEvent ev;
      ev.job = claim->job;
      ev.scenario = claim->scenario;
      ev.trial = claim->trial;
      try {
        ev.completed = run_batch_trial(
            s->batch, claim->trial,
            s->batch.lazy_spec != nullptr ? &s->lazy : nullptr);
        ev.rounds = s->result.set.rounds[claim->trial];
        ev.agent_rounds = s->result.set.agent_rounds[claim->trial];
        ev.informed = s->result.set.informed[claim->trial];
      } catch (const std::exception& e) {
        ev.failed = true;
        ev.error = e.what();
      } catch (...) {
        ev.failed = true;
        ev.error = "unknown exception";
      }
      queue_->complete(*claim);
      counters_.on_trial_done();
      {
        std::lock_guard lock(events_mutex_);
        events_.push_back(std::move(ev));
      }
      wake();
    }
  }

  // ---- job construction (submit + resume) ------------------------------

  // Builds a ScenarioState for an already-validated spec whose result/prep
  // were filled by prepare_scenario.
  void init_batch(ScenarioState& s) {
    const ScenarioSpec& spec = s.result.spec;
    TrialBatch& b = s.batch;
    if (spec.plan.fresh_graph) {
      b.fresh_spec = &s.result.spec.graph;
    } else if (s.prep.lazy) {
      b.lazy_spec = &s.result.spec.graph;
    } else {
      b.graph = &*s.prep.graph;
    }
    b.protocol = &s.result.spec.protocol;
    b.source = spec.plan.source;
    b.trials = spec.plan.trials;
    b.master_seed = spec.plan.seed;
    b.out = &s.result.set;
    prepare_trial_set(b);
    s.trial_done.assign(b.trials, kPending);
  }

  // Registers a fully built job and enqueues its pending trials. `pending`
  // lists, per scenario, the trial indices still to run.
  void enqueue_job(std::unique_ptr<Job> job,
                   const std::vector<std::vector<std::uint32_t>>& pending) {
    const std::uint64_t id = job->id;
    const std::string client = job->client;
    std::size_t pending_trials = 0;
    std::size_t pending_batches = 0;
    for (std::size_t i = 0; i < pending.size(); ++i) {
      if (pending[i].empty()) continue;
      pending_trials += pending[i].size();
      pending_batches += 1;
      job->scenarios[i]->counted = true;
    }
    {
      std::lock_guard lock(jobs_mutex_);
      jobs_.emplace(id, std::move(job));
    }
    job_order_.push_back(id);
    if (pending_trials > 0) {
      counters_.add(pending_trials, pending_batches);
      queue_->add_job(client, id, pending);
    }
  }

  void resume_job(const JournalJob& from) {
    auto job = std::make_unique<Job>();
    job->id = from.id;
    job->client = from.client;
    job->lines = from.lines;
    std::string error;
    for (const std::string& line : from.lines) {
      auto spec = ScenarioSpec::parse(line, &error);
      auto s = std::make_unique<ScenarioState>();
      if (!spec ||
          !prepare_scenario(*spec, s->result, s->prep, &error)) {
        // A journaled job that no longer validates (e.g. its file: graph
        // vanished) resumes as failed instead of poisoning startup.
        job->state = Job::State::failed;
        job->failure = "resume: " + error;
        break;
      }
      init_batch(*s);
      job->trials_total += s->batch.trials;
      job->scenarios.push_back(std::move(s));
    }
    if (job->state != Job::State::failed) {
      // Replay completed trials into their slots; the rest re-run to
      // identical values (seeds are pure functions of (master, index)).
      for (const TrialRecord& rec : from.trials) {
        if (rec.scenario >= job->scenarios.size()) continue;
        ScenarioState& s = *job->scenarios[rec.scenario];
        if (rec.trial >= s.batch.trials ||
            s.trial_done[rec.trial] != kPending) {
          continue;
        }
        s.result.set.rounds[rec.trial] = rec.rounds;
        s.result.set.agent_rounds[rec.trial] = rec.agent_rounds;
        s.result.set.informed[rec.trial] = rec.informed;
        s.trial_done[rec.trial] = rec.completed ? kDone : kDoneIncomplete;
        s.done_count += 1;
        if (!rec.completed) s.incomplete_count += 1;
        job->trials_done += 1;
      }
      if (from.cancelled) {
        job->state = Job::State::cancelled;
      } else if (!from.failure.empty()) {
        job->state = Job::State::failed;
        job->failure = from.failure;
      }
    }
    std::vector<std::vector<std::uint32_t>> pending(job->scenarios.size());
    if (job->state == Job::State::running) {
      for (std::size_t i = 0; i < job->scenarios.size(); ++i) {
        ScenarioState& s = *job->scenarios[i];
        if (s.drained()) {
          finalize_scenario_state(s);
        } else {
          for (std::uint32_t t = 0; t < s.batch.trials; ++t) {
            if (s.trial_done[t] == kPending) pending[i].push_back(t);
          }
        }
      }
      advance_rows(*job);
      if (job->next_row == job->scenarios.size() &&
          !job->scenarios.empty()) {
        job->state = Job::State::done;
      }
    }
    enqueue_job(std::move(job), pending);
  }

  // ---- event processing ------------------------------------------------

  void finalize_scenario_state(ScenarioState& s) {
    s.result.set.incomplete = s.incomplete_count;
    s.lazy.release();
  }

  // Emits (stores + streams) the in-order prefix of completed scenario
  // rows, exactly like the one-shot runner's in-file-order emission.
  void advance_rows(Job& job) {
    while (job.next_row < job.scenarios.size() &&
           job.scenarios[job.next_row]->drained()) {
      const std::string row =
          scenario_csv_line(job.scenarios[job.next_row]->result);
      broadcast(job, "ROW " + std::to_string(job.next_row) + " " + row);
      job.rows.push_back(row);
      job.next_row += 1;
    }
  }

  void broadcast(Job& job, const std::string& line) {
    for (const int fd : job.watchers) {
      const auto it = conns_.find(fd);
      if (it != conns_.end()) send_line(it->second, line);
    }
  }

  void end_watch(Job& job) {
    broadcast(job, end_line(job));
    job.watchers.clear();
  }

  std::string state_name(const Job& job) const {
    switch (job.state) {
      case Job::State::running: return "running";
      case Job::State::done: return "done";
      case Job::State::cancelled: return "cancelled";
      case Job::State::failed: return "failed";
    }
    return "unknown";
  }

  std::string end_line(const Job& job) const {
    std::string line = "END " + std::to_string(job.id) + " " +
                       state_name(job);
    if (job.state == Job::State::failed && !job.failure.empty()) {
      line += " " + sanitize_reply_text(job.failure);
    }
    return line;
  }

  void terminate_job(Job& job, Job::State state, const std::string& why) {
    const std::size_t dropped = queue_->cancel_job(job.id);
    counters_.drop_trials(dropped);
    // Scenarios whose batch will now never drain: retire their counter
    // slots so batches_done == batches_total still holds at drain.
    std::size_t dead_batches = 0;
    for (const auto& s : job.scenarios) {
      if (s->counted && !s->drained()) dead_batches += 1;
    }
    counters_.drop_batches(dead_batches);
    job.state = state;
    job.failure = why;
    job.terminal_inflight =
        job.trials_total - job.trials_done - dropped;
    if (state == Job::State::cancelled) {
      journal_.append_cancel(job.id);
    } else {
      journal_.append_failure(job.id, why);
    }
    if (job.terminal_inflight == 0) release_lazy(job);
    end_watch(job);
  }

  // Lazy graphs may be referenced by in-flight workers; only release once
  // every claimed trial has reported back.
  void release_lazy(Job& job) {
    for (const auto& s : job.scenarios) {
      if (!s->drained()) s->lazy.release();
    }
  }

  void process_events() {
    std::vector<TrialEvent> batch;
    {
      std::lock_guard lock(events_mutex_);
      batch.swap(events_);
    }
    for (const TrialEvent& ev : batch) {
      Job* job_ptr = nullptr;
      {
        std::lock_guard lock(jobs_mutex_);
        const auto it = jobs_.find(ev.job);
        if (it != jobs_.end()) job_ptr = it->second.get();
      }
      if (job_ptr == nullptr) continue;
      Job& job = *job_ptr;
      if (job.state == Job::State::cancelled ||
          job.state == Job::State::failed) {
        // Stale completion of a trial claimed before the cancel landed.
        if (job.terminal_inflight > 0 && --job.terminal_inflight == 0) {
          release_lazy(job);
        }
        continue;
      }
      if (ev.failed) {
        job.trials_done += 1;
        terminate_job(job, Job::State::failed, ev.error);
        continue;
      }
      TrialRecord rec;
      rec.scenario = ev.scenario;
      rec.trial = ev.trial;
      rec.rounds = ev.rounds;
      rec.agent_rounds = ev.agent_rounds;
      rec.informed = ev.informed;
      rec.completed = ev.completed;
      journal_.append_trial(ev.job, rec);
      ScenarioState& s = *job.scenarios[ev.scenario];
      if (s.trial_done[ev.trial] != kPending) continue;  // defensive
      s.trial_done[ev.trial] = ev.completed ? kDone : kDoneIncomplete;
      s.done_count += 1;
      if (!ev.completed) s.incomplete_count += 1;
      job.trials_done += 1;
      broadcast(job, trial_line(ev.scenario, ev.trial, s));
      if (s.drained()) {
        finalize_scenario_state(s);
        if (s.counted) counters_.on_batch_done();
        advance_rows(job);
        if (job.next_row == job.scenarios.size()) {
          job.state = Job::State::done;
          end_watch(job);
        }
      }
    }
  }

  std::string trial_line(std::uint32_t scenario, std::uint32_t trial,
                         const ScenarioState& s) const {
    const TrialSet& set = s.result.set;
    return "TRIAL " + std::to_string(scenario) + " " +
           std::to_string(trial) + " " + fmt_double(set.rounds[trial]) +
           " " + fmt_double(set.agent_rounds[trial]) + " " +
           fmt_double(set.informed[trial]) + " " +
           (s.trial_done[trial] == kDoneIncomplete ? "0" : "1");
  }

  // ---- command handling ------------------------------------------------

  void send_line(Conn& conn, const std::string& line) {
    if (conn.closing) return;
    conn.out += line;
    conn.out += '\n';
    if (conn.out.size() > kMaxConnBuffer) conn.closing = true;
  }

  Job* find_job(std::uint64_t id) {
    const auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second.get();
  }

  void handle_submit(Conn& conn) {
    std::string text;
    text.swap(conn.submit_text);
    std::istringstream in(text);
    std::string error;
    auto specs = parse_scenario_stream(in, &error);
    if (!specs) {
      send_line(conn, "ERR parse " + sanitize_reply_text(error));
      return;
    }
    if (specs->empty()) {
      send_line(conn, "ERR parse submission contains no scenarios");
      return;
    }
    auto job = std::make_unique<Job>();
    std::size_t total_trials = 0;
    for (const ScenarioSpec& spec : *specs) {
      if (const TraceOptions* trace = spec.protocol.trace();
          trace != nullptr && trace->informed_curve) {
        send_line(conn, "ERR validate scenario \"" +
                            sanitize_reply_text(spec.name()) +
                            "\": curve tracing is not supported over "
                            "serve (drop trace=curve)");
        return;
      }
      auto s = std::make_unique<ScenarioState>();
      if (!prepare_scenario(spec, s->result, s->prep, &error)) {
        send_line(conn, "ERR validate " + sanitize_reply_text(error));
        return;
      }
      total_trials += spec.plan.trials;
      job->scenarios.push_back(std::move(s));
      job->lines.push_back(spec.name());
    }
    // Backpressure: reject — do not buffer — what the client's budget
    // cannot hold. Checked after validation so the reply names the real
    // problem first.
    if (queue_->would_exceed(conn.client, total_trials)) {
      send_line(conn, "BUSY pending=" +
                          std::to_string(queue_->pending(conn.client)) +
                          " budget=" + std::to_string(queue_->budget()) +
                          " submitted=" + std::to_string(total_trials));
      return;
    }
    job->id = next_job_id_++;
    job->client = conn.client;
    job->trials_total = total_trials;
    std::vector<std::vector<std::uint32_t>> pending(job->scenarios.size());
    for (std::size_t i = 0; i < job->scenarios.size(); ++i) {
      init_batch(*job->scenarios[i]);
      pending[i].resize(job->scenarios[i]->batch.trials);
      for (std::uint32_t t = 0; t < pending[i].size(); ++t) {
        pending[i][t] = t;
      }
    }
    JournalJob record;
    record.id = job->id;
    record.client = job->client;
    record.lines = job->lines;
    journal_.append_job(record);
    const std::uint64_t id = job->id;
    const std::size_t scenarios = job->scenarios.size();
    enqueue_job(std::move(job), pending);
    send_line(conn, "OK " + std::to_string(id) +
                        " scenarios=" + std::to_string(scenarios) +
                        " trials=" + std::to_string(total_trials));
  }

  void handle_results(Conn& conn, std::uint64_t id) {
    Job* job = find_job(id);
    if (job == nullptr) {
      send_line(conn, "ERR nojob " + std::to_string(id));
      return;
    }
    send_line(conn, "OK " + std::to_string(id) + " streaming");
    // Re-stream everything already complete (a reconnecting client after
    // a server restart sees the same rows it would have live), then
    // subscribe for the rest.
    for (std::uint32_t si = 0; si < job->scenarios.size(); ++si) {
      const ScenarioState& s = *job->scenarios[si];
      for (std::uint32_t t = 0; t < s.trial_done.size(); ++t) {
        if (s.trial_done[t] != kPending) {
          send_line(conn, trial_line(si, t, s));
        }
      }
    }
    for (std::size_t r = 0; r < job->rows.size(); ++r) {
      send_line(conn, "ROW " + std::to_string(r) + " " + job->rows[r]);
    }
    if (job->state != Job::State::running) {
      send_line(conn, end_line(*job));
    } else {
      job->watchers.push_back(conn.fd);
    }
  }

  void handle_status(Conn& conn, std::uint64_t id) {
    Job* job = find_job(id);
    if (job == nullptr) {
      send_line(conn, "ERR nojob " + std::to_string(id));
      return;
    }
    send_line(conn,
              "OK " + std::to_string(id) + " state=" + state_name(*job) +
                  " scenarios=" + std::to_string(job->next_row) + "/" +
                  std::to_string(job->scenarios.size()) +
                  " trials=" + std::to_string(job->trials_done) + "/" +
                  std::to_string(job->trials_total));
  }

  void handle_cancel(Conn& conn, std::uint64_t id) {
    Job* job = find_job(id);
    if (job == nullptr) {
      send_line(conn, "ERR nojob " + std::to_string(id));
      return;
    }
    if (job->state != Job::State::running) {
      send_line(conn, "ERR state job " + std::to_string(id) + " already " +
                          state_name(*job));
      return;
    }
    terminate_job(*job, Job::State::cancelled, "cancelled by " +
                                                   conn.client);
    send_line(conn, "OK " + std::to_string(id) + " cancelled");
  }

  void handle_stats(Conn& conn) {
    const TrialQueueSnapshot q = counters_.snapshot();
    send_line(conn, "OK version=" + std::to_string(kProtocolVersion) +
                        " workers=" + std::to_string(workers_.size()) +
                        " jobs=" + std::to_string(job_order_.size()) +
                        " budget=" + std::to_string(queue_->budget()));
    send_line(conn,
              "QUEUE total=" + std::to_string(q.trials_total) +
                  " claimed=" + std::to_string(q.trials_claimed) +
                  " done=" + std::to_string(q.trials_done) +
                  " in_flight=" + std::to_string(q.in_flight()) +
                  " queued=" + std::to_string(q.queued()) + " batches=" +
                  std::to_string(q.batches_done) + "/" +
                  std::to_string(q.batches_total));
    for (const ClientShare& share : queue_->shares()) {
      send_line(conn, "CLIENT " + share.client +
                          " pending=" + std::to_string(share.pending) +
                          " claimed=" + std::to_string(share.claimed) +
                          " jobs=" + std::to_string(share.jobs));
    }
    send_line(conn, ".");
  }

  void handle_line(Conn& conn, std::string line) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (conn.submit_remaining > 0) {
      conn.submit_text += line;
      conn.submit_text += '\n';
      if (--conn.submit_remaining == 0) handle_submit(conn);
      return;
    }
    std::string error;
    const auto req = parse_request(line, &error);
    if (!req) {
      send_line(conn, "ERR proto " + sanitize_reply_text(error));
      return;
    }
    switch (req->kind) {
      case Request::Kind::hello:
        conn.client = req->name;
        send_line(conn, "OK rumor_serve v" +
                            std::to_string(kProtocolVersion));
        break;
      case Request::Kind::submit:
        conn.submit_remaining = req->lines;
        conn.submit_text.clear();
        break;
      case Request::Kind::status:
        handle_status(conn, req->job);
        break;
      case Request::Kind::cancel:
        handle_cancel(conn, req->job);
        break;
      case Request::Kind::results:
        handle_results(conn, req->job);
        break;
      case Request::Kind::stats:
        handle_stats(conn);
        break;
      case Request::Kind::quit:
        send_line(conn, "OK bye");
        conn.closing = true;
        break;
    }
  }

  // ---- poll loop -------------------------------------------------------

  void accept_connections(int listen_fd) {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;
      set_nonblocking(fd);
      Conn conn;
      conn.fd = fd;
      conn.client = "anon#" + std::to_string(fd);
      conns_.emplace(fd, std::move(conn));
    }
  }

  void close_conn(int fd) {
    for (auto& [id, job] : jobs_) {
      auto& w = job->watchers;
      w.erase(std::remove(w.begin(), w.end(), fd), w.end());
    }
    ::close(fd);
    conns_.erase(fd);
  }

  // Reads everything available; false = peer hung up or errored.
  bool read_conn(Conn& conn) {
    char buf[4096];
    for (;;) {
      const ssize_t got = ::read(conn.fd, buf, sizeof buf);
      if (got > 0) {
        conn.in.append(buf, static_cast<std::size_t>(got));
        if (conn.in.size() > kMaxConnBuffer) return false;
        continue;
      }
      if (got == 0) return false;
      return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
    }
  }

  // Flushes buffered output; false = fatal write error. MSG_NOSIGNAL:
  // a watcher that hung up must surface as EPIPE here, not as a SIGPIPE
  // that kills the daemon (or an embedding test binary).
  bool flush_conn(Conn& conn) {
    while (!conn.out.empty()) {
      const ssize_t sent = ::send(conn.fd, conn.out.data(),
                                  conn.out.size(), MSG_NOSIGNAL);
      if (sent > 0) {
        conn.out.erase(0, static_cast<std::size_t>(sent));
        continue;
      }
      return errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR;
    }
    return true;
  }

  void pump_conn_lines(Conn& conn) {
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = conn.in.find('\n', start);
      if (nl == std::string::npos) break;
      handle_line(conn, conn.in.substr(start, nl - start));
      start = nl + 1;
    }
    conn.in.erase(0, start);
  }

  void run(const std::atomic<bool>& stop) {
    loop_active_.store(true, std::memory_order_release);
    while (!stop.load(std::memory_order_relaxed) &&
           !abandon_.load(std::memory_order_relaxed)) {
      std::vector<pollfd> fds;
      fds.push_back({wake_read_, POLLIN, 0});
      for (const int fd : listen_fds_) fds.push_back({fd, POLLIN, 0});
      for (const auto& [fd, conn] : conns_) {
        short events = POLLIN;
        if (!conn.out.empty() || conn.closing) events |= POLLOUT;
        fds.push_back({fd, events, 0});
      }
      // The timeout bounds how late a stop-flag flip is noticed even if
      // no I/O or completion traffic arrives.
      ::poll(fds.data(), fds.size(), 200);
      if (stop.load(std::memory_order_relaxed) ||
          abandon_.load(std::memory_order_relaxed)) {
        break;
      }
      if (fds[0].revents & POLLIN) {
        char drain[256];
        while (::read(wake_read_, drain, sizeof drain) > 0) {
        }
      }
      process_events();
      for (std::size_t i = 0; i < listen_fds_.size(); ++i) {
        if (fds[1 + i].revents & POLLIN) accept_connections(listen_fds_[i]);
      }
      std::vector<int> dead;
      for (std::size_t i = 1 + listen_fds_.size(); i < fds.size(); ++i) {
        const int fd = fds[i].fd;
        const auto it = conns_.find(fd);
        if (it == conns_.end()) continue;
        Conn& conn = it->second;
        bool alive = true;
        if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
          alive = read_conn(conn);
          if (alive) pump_conn_lines(conn);
        }
        if (alive && (fds[i].revents & POLLOUT || !conn.out.empty())) {
          alive = flush_conn(conn);
        }
        if (!alive || (conn.closing && conn.out.empty())) {
          dead.push_back(fd);
        }
      }
      for (const int fd : dead) close_conn(fd);
    }
    const bool abandoned = abandon_.load(std::memory_order_relaxed);
    teardown(/*checkpoint=*/!abandoned, /*drain_events=*/!abandoned);
    loop_active_.store(false, std::memory_order_release);
  }

  // ---- shutdown --------------------------------------------------------

  JournalState snapshot_journal() {
    JournalState state;
    state.next_job_id = next_job_id_;
    for (const std::uint64_t id : job_order_) {
      const Job& job = *jobs_.at(id);
      JournalJob record;
      record.id = job.id;
      record.client = job.client;
      record.lines = job.lines;
      record.cancelled = job.state == Job::State::cancelled;
      if (job.state == Job::State::failed) {
        record.failure = job.failure.empty() ? "failed" : job.failure;
      }
      for (std::uint32_t si = 0; si < job.scenarios.size(); ++si) {
        const ScenarioState& s = *job.scenarios[si];
        for (std::uint32_t t = 0; t < s.trial_done.size(); ++t) {
          if (s.trial_done[t] == kPending) continue;
          TrialRecord rec;
          rec.scenario = si;
          rec.trial = t;
          rec.rounds = s.result.set.rounds[t];
          rec.agent_rounds = s.result.set.agent_rounds[t];
          rec.informed = s.result.set.informed[t];
          rec.completed = s.trial_done[t] == kDone;
          record.trials.push_back(rec);
        }
      }
      state.jobs.push_back(std::move(record));
    }
    return state;
  }

  void teardown(bool checkpoint, bool drain_events) {
    {
      std::lock_guard lock(teardown_mutex_);
      if (torn_down_) return;
      torn_down_ = true;
    }
    if (queue_) queue_->close();
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
    workers_.clear();
    if (drain_events) process_events();
    if (checkpoint && journal_.is_open()) {
      std::string error;
      if (!journal_.checkpoint(snapshot_journal(), &error)) {
        std::fprintf(stderr, "rumor_serve: checkpoint failed: %s\n",
                     error.c_str());
      }
    }
    journal_.close();
    for (const auto& [fd, conn] : conns_) ::close(fd);
    conns_.clear();
    for (const int fd : listen_fds_) ::close(fd);
    listen_fds_.clear();
    if (wake_read_ >= 0) ::close(wake_read_);
    if (wake_write_ >= 0) ::close(wake_write_);
    wake_read_ = wake_write_ = -1;
    if (checkpoint) {
      for (const std::string& path : unix_paths_) ::unlink(path.c_str());
    }
    unix_paths_.clear();
    started_ = false;
  }
};

Server::Server() : impl_(std::make_unique<Impl>()) {}
Server::~Server() = default;

bool Server::start(const ServerOptions& options, std::string* error) {
  return impl_->start(options, error);
}

void Server::run(const std::atomic<bool>& stop) {
  if (!impl_->started_) return;
  impl_->run(stop);
}

void Server::abandon() {
  // The simulated SIGKILL: no event drain, no checkpoint, and the unix
  // socket files stay behind exactly as a killed process would leave
  // them (start() unlinks stale ones). When the poll loop is live the
  // teardown must run on ITS thread — we signal and wait for it; the
  // loop notices within one poll timeout.
  impl_->abandon_.store(true, std::memory_order_relaxed);
  if (impl_->wake_write_ >= 0) impl_->wake();
  if (impl_->loop_active_.load(std::memory_order_acquire)) {
    while (impl_->loop_active_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  } else {
    impl_->teardown(/*checkpoint=*/false, /*drain_events=*/false);
  }
}

std::vector<Address> Server::addresses() const { return impl_->bound_; }

}  // namespace rumor::serve

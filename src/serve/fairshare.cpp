#include "serve/fairshare.hpp"

#include <algorithm>

namespace rumor::serve {

std::size_t FairShareQueue::client_index_locked(const std::string& name) {
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    if (clients_[i].name == name) return i;
  }
  clients_.push_back(Client{name, {}, 0, 0});
  return clients_.size() - 1;
}

bool FairShareQueue::would_exceed(const std::string& client,
                                  std::size_t trials) const {
  std::lock_guard lock(mutex_);
  std::size_t current = 0;
  for (const Client& c : clients_) {
    if (c.name == client) current = c.pending;
  }
  return current + trials > budget_;
}

void FairShareQueue::add_job(
    const std::string& client, std::uint64_t job,
    const std::vector<std::vector<std::uint32_t>>& pending) {
  std::lock_guard lock(mutex_);
  const std::size_t ci = client_index_locked(client);
  JobQueue queue;
  queue.id = job;
  queue.client_index = ci;
  for (std::uint32_t s = 0; s < pending.size(); ++s) {
    for (const std::uint32_t t : pending[s]) {
      queue.queued.push_back(Claim{job, s, t});
    }
  }
  if (queue.queued.empty()) return;  // fully journaled job: nothing to run
  owner_[job] = ci;
  clients_[ci].pending += queue.queued.size();
  clients_[ci].jobs.push_back(job);
  jobs_.emplace(job, std::move(queue));
  cv_.notify_all();
}

std::size_t FairShareQueue::cancel_job(std::uint64_t job) {
  std::lock_guard lock(mutex_);
  const auto it = jobs_.find(job);
  if (it == jobs_.end()) return 0;
  const std::size_t dropped = it->second.queued.size();
  Client& client = clients_[it->second.client_index];
  client.pending -= dropped;
  auto& queue = client.jobs;
  queue.erase(std::remove(queue.begin(), queue.end(), job), queue.end());
  jobs_.erase(it);
  return dropped;
}

std::optional<Claim> FairShareQueue::claim_locked() {
  if (clients_.empty()) return std::nullopt;
  // Round-robin: offer the claim to each client once, starting after the
  // last served one; the first with queued work takes it.
  for (std::size_t step = 0; step < clients_.size(); ++step) {
    const std::size_t ci = (rotation_ + step) % clients_.size();
    Client& client = clients_[ci];
    while (!client.jobs.empty()) {
      const auto it = jobs_.find(client.jobs.front());
      if (it == jobs_.end() || it->second.queued.empty()) {
        // Fully claimed (still in flight) or cancelled: retire the entry.
        if (it != jobs_.end()) jobs_.erase(it);
        client.jobs.pop_front();
        continue;
      }
      const Claim claim = it->second.queued.front();
      it->second.queued.pop_front();
      if (it->second.queued.empty()) {
        jobs_.erase(it);
        client.jobs.pop_front();
      }
      client.claimed += 1;
      rotation_ = (ci + 1) % clients_.size();
      return claim;
    }
  }
  return std::nullopt;
}

std::optional<Claim> FairShareQueue::wait_claim() {
  std::unique_lock lock(mutex_);
  for (;;) {
    // closed_ wins over queued work: shutdown must release the workers
    // promptly, not after they drain whatever is still queued.
    if (closed_) return std::nullopt;
    if (auto claim = claim_locked()) return claim;
    cv_.wait(lock);
  }
}

std::optional<Claim> FairShareQueue::try_claim() {
  std::lock_guard lock(mutex_);
  if (closed_) return std::nullopt;
  return claim_locked();
}

void FairShareQueue::complete(const Claim& claim) {
  std::lock_guard lock(mutex_);
  // The job's claim queue is dropped once its last trial is handed out,
  // so budget accounting resolves through the persistent owner map.
  const auto it = owner_.find(claim.job);
  if (it != owner_.end()) clients_[it->second].pending -= 1;
}

void FairShareQueue::close() {
  std::lock_guard lock(mutex_);
  closed_ = true;
  cv_.notify_all();
}

std::size_t FairShareQueue::pending(const std::string& client) const {
  std::lock_guard lock(mutex_);
  for (const Client& c : clients_) {
    if (c.name == client) return c.pending;
  }
  return 0;
}

std::vector<ClientShare> FairShareQueue::shares() const {
  std::lock_guard lock(mutex_);
  std::vector<ClientShare> out;
  out.reserve(clients_.size());
  for (const Client& c : clients_) {
    ClientShare share;
    share.client = c.name;
    share.pending = c.pending;
    share.claimed = c.claimed;
    share.jobs = c.jobs.size();
    out.push_back(std::move(share));
  }
  return out;
}

}  // namespace rumor::serve

// rumor_run: execute a scenario file through the unified scenario API —
// one-shot, as a long-lived service, or as a client of one.
//
//   rumor_run [options] <scenario-file|->      one-shot run
//   rumor_run --serve=<addr> [options]         scenario service daemon
//   rumor_run submit --to=<addr> <file|->      send a job to a daemon
//   rumor_run watch  --to=<addr> <job>         stream a job's results (CSV)
//   rumor_run stats  --to=<addr>               daemon queue statistics
//
// A scenario file holds one ScenarioSpec per line (see docs/scenarios.md),
// and any numeric value may be a sweep — a range or a value list — that
// expands the line into a series:
//
//   # Figure 1(a), star family, n = 2^11..2^15
//   star(leaves=2k..32k:factor=4) push           source=1 label=push
//   star(leaves=2k..32k:factor=4) visit-exchange source=1 label=visit-exchange
//
// Options:
//   --trials=N   override every scenario's trial count
//   --seed=S     override every scenario's master seed
//   --jobs=N     worker threads (default: hardware concurrency)
//   --order=K    trial claim order: file (default) or longest-first
//                (start the highest n·trials scenarios first for tighter
//                tails; reports are byte-identical either way)
//   --csv=PATH   additionally write the CSV report to PATH (the sink is
//                opened and validated BEFORE any trial runs)
//   --progress   per-scenario completion lines on stderr
//   --dry-run    parse and echo canonical expanded spec lines — each with
//                a trailing "# backend=... n=... m=... mem=..." estimate
//                comment (stripped on re-read, so the output stays valid
//                scenario input) — and run nothing
//   --list       list registered simulators, graph families, graph storage
//                backends, and the shared transmission/intervention keys,
//                then exit
//
// Serve-mode options (with --serve=<addr>, repeatable; addr is unix:<path>,
// <host>:<port>, or <port>):
//   --journal=PATH  job/result journal (default serve.journal); a restart
//                   on the same journal resumes unfinished jobs
//   --budget=N      per-client pending-trial budget before SUBMIT → BUSY
//   --jobs=N        compute worker threads
//
// Exit codes (full table in docs/serve.md): 0 success, 1 a trial failed
// mid-run or the run was interrupted by SIGINT/SIGTERM (the failing
// scenario is named on stderr, and a streamed --csv gains a trailing
// "# truncated" comment) — for the client subcommands, a job that ended
// cancelled/failed or a refused/lost connection; 2 usage/parse/validation
// errors. SIGINT/SIGTERM stop a one-shot run gracefully: no new trial
// starts, in-flight trials finish, streamed rows stay valid.
//
// The whole file drains through ONE global (scenario, trial) work queue:
// trials from different scenarios interleave across the pool, report rows
// stream as scenarios complete (deterministic file order), and the sample
// vectors depend only on (seed, trial index) — never on --jobs or
// scheduling, so --jobs=1 and --jobs=N emit byte-identical reports.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/registry.hpp"
#include "core/sharding.hpp"
#include "experiments/report.hpp"
#include "experiments/scenario.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support/spec_text.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace rumor;

// Flipped by SIGINT/SIGTERM: the one-shot runner stops claiming trials and
// the serve daemon shuts down cleanly. SA_RESETHAND restores the default
// disposition, so a second signal kills the process the ordinary way.
std::atomic<bool> g_stop{false};

void handle_stop_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

void install_stop_handlers() {
  struct sigaction sa = {};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

// "0 B", "12.3 KiB", "2.0 GiB" — estimates, so one decimal is plenty.
std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--trials=N] [--seed=S] [--jobs=N] "
               "[--order=file|longest-first] [--csv=PATH] [--progress] "
               "[--dry-run] [--list] <scenario-file|->\n"
               "       %s --serve=ADDR [--serve=ADDR]... [--journal=PATH] "
               "[--budget=N] [--jobs=N]\n"
               "       %s submit --to=ADDR [--client=NAME] "
               "<scenario-file|->\n"
               "       %s watch --to=ADDR [--client=NAME] [--csv=PATH] "
               "[--progress] <job>\n"
               "       %s stats --to=ADDR\n"
               "addresses: unix:<path>, <host>:<port>, or <port> "
               "(127.0.0.1)\n",
               argv0, argv0, argv0, argv0, argv0);
  return 2;
}

void list_registry() {
  std::printf("registered simulators:\n");
  for (const SimulatorEntry& entry : SimulatorRegistry::instance().all()) {
    std::printf("  %-22s %s\n", entry.name.c_str(), entry.summary.c_str());
  }
  std::printf(
      "\ngraph families (parameter signatures from the spec grammar):\n");
  for (const std::string& signature : graph_family_signatures()) {
    std::printf("  %s\n", signature.c_str());
  }
  std::printf(
      "\ngraph storage backends (backend= key; default auto):\n"
      "  star, cycle, complete, grid, torus, circulant synthesize adjacency\n"
      "  arithmetically (implicit backend, O(1) memory at any n); "
      "backend=owned\n"
      "  forces the materialized CSR. Identical structure and seeded\n"
      "  trajectories either way.\n"
      "  file:<path>  SNAP-style edge list ('#' comments, blank lines,\n"
      "  duplicate/reversed edges deduped; self loops rejected); parsed "
      "once,\n"
      "  cached as <path>.rcsr and memory-mapped on later runs.\n");
  std::printf(
      "\nfrontier-sharded rounds (push, push-pull, visit-exchange, "
      "meet-exchange,\nhybrid):\n"
      "  shards=auto|N  auto: shard iff n >= %llu; N >= 1: always shard,\n"
      "  N partitions. One trial then fans its round across the pool when\n"
      "  queued trials can't fill it. The sharded engine draws from an\n"
      "  addressable per-slot Philox plane, so its trajectories differ\n"
      "  from the serial legacy engine but are identical for every shard\n"
      "  count and worker count. Incompatible with edge_traffic=on and a\n"
      "  non-default engine= key.\n",
      static_cast<unsigned long long>(kShardAutoThreshold));
  std::printf(
      "\ntransmission model & interventions (protocol options; multi-rumor "
      "and async\naccept tp only):\n");
  for (const std::string& signature : transmission_key_signatures()) {
    std::printf("  %s\n", signature.c_str());
  }
  std::printf(
      "\nany numeric value sweeps: lo..hi (geometric x2; :factor=N or "
      ":step=N override,\nk/m suffixes) or {v1,v2,...}; one line expands "
      "to the cross product.\n");
}

struct CliOptions {
  std::optional<std::size_t> trials;
  std::optional<std::uint64_t> seed;
  std::optional<std::size_t> jobs;
  BatchOrder order = BatchOrder::file;
  std::string csv_path;
  bool progress = false;
  bool dry_run = false;
  bool list = false;
  std::string input;
  // Serve mode (set when at least one --serve=ADDR was given).
  std::vector<serve::Address> serve;
  std::string journal = "serve.journal";
  std::optional<std::size_t> budget;
};

std::optional<CliOptions> parse_cli(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--dry-run") {
      cli.dry_run = true;
    } else if (arg == "--list") {
      cli.list = true;
    } else if (arg == "--progress") {
      cli.progress = true;
    } else if (arg.starts_with("--trials=")) {
      const auto v = spec_text::parse_u64(arg.substr(9));
      if (!v || *v == 0) return std::nullopt;
      cli.trials = static_cast<std::size_t>(*v);
    } else if (arg.starts_with("--seed=")) {
      const auto v = spec_text::parse_u64(arg.substr(7));
      if (!v) return std::nullopt;
      cli.seed = *v;
    } else if (arg.starts_with("--jobs=")) {
      const auto v = spec_text::parse_u64(arg.substr(7));
      if (!v || *v == 0 || *v > 1024) return std::nullopt;
      cli.jobs = static_cast<std::size_t>(*v);
    } else if (arg.starts_with("--order=")) {
      const std::string_view value = arg.substr(8);
      if (value == "file") {
        cli.order = BatchOrder::file;
      } else if (value == "longest-first") {
        cli.order = BatchOrder::longest_first;
      } else {
        return std::nullopt;
      }
    } else if (arg.starts_with("--csv=")) {
      cli.csv_path = std::string(arg.substr(6));
      if (cli.csv_path.empty()) return std::nullopt;
    } else if (arg.starts_with("--serve=")) {
      std::string why;
      const auto addr = serve::parse_address(arg.substr(8), &why);
      if (!addr) {
        std::fprintf(stderr, "--serve: %s\n", why.c_str());
        return std::nullopt;
      }
      cli.serve.push_back(*addr);
    } else if (arg.starts_with("--journal=")) {
      cli.journal = std::string(arg.substr(10));
      if (cli.journal.empty()) return std::nullopt;
    } else if (arg.starts_with("--budget=")) {
      const auto v = spec_text::parse_u64(arg.substr(9));
      if (!v || *v == 0) return std::nullopt;
      cli.budget = static_cast<std::size_t>(*v);
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return std::nullopt;
    } else if (cli.input.empty()) {
      cli.input = std::string(arg);
    } else {
      return std::nullopt;  // more than one input file
    }
  }
  return cli;
}

// ---- serve daemon --------------------------------------------------------

int serve_main(const CliOptions& cli) {
  // A watcher disconnecting mid-stream must not SIGPIPE the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  install_stop_handlers();
  serve::ServerOptions options;
  options.listen = cli.serve;
  options.journal_path = cli.journal;
  if (cli.jobs) options.workers = *cli.jobs;
  if (cli.budget) options.client_budget = *cli.budget;
  serve::Server server;
  std::string error;
  if (!server.start(options, &error)) {
    std::fprintf(stderr, "rumor_serve: %s\n", error.c_str());
    return 2;
  }
  for (const serve::Address& addr : server.addresses()) {
    std::fprintf(stderr, "rumor_serve: listening on %s\n",
                 addr.text().c_str());
  }
  std::fprintf(stderr, "rumor_serve: journal %s\n", cli.journal.c_str());
  server.run(g_stop);
  std::fprintf(stderr, "rumor_serve: shut down cleanly\n");
  return 0;
}

// ---- client subcommands --------------------------------------------------

struct ClientCli {
  std::optional<serve::Address> to;
  std::string client = "cli";
  std::string csv_path;
  bool progress = false;
  std::string input;  // submit: scenario file; watch: job id
};

std::optional<ClientCli> parse_client_cli(int argc, char** argv) {
  ClientCli cli;
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.starts_with("--to=")) {
      std::string why;
      const auto addr = serve::parse_address(arg.substr(5), &why);
      if (!addr) {
        std::fprintf(stderr, "--to: %s\n", why.c_str());
        return std::nullopt;
      }
      cli.to = *addr;
    } else if (arg.starts_with("--client=")) {
      cli.client = std::string(arg.substr(9));
      if (cli.client.empty()) return std::nullopt;
    } else if (arg.starts_with("--csv=")) {
      cli.csv_path = std::string(arg.substr(6));
      if (cli.csv_path.empty()) return std::nullopt;
    } else if (arg == "--progress") {
      cli.progress = true;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return std::nullopt;
    } else if (cli.input.empty()) {
      cli.input = std::string(arg);
    } else {
      return std::nullopt;
    }
  }
  if (!cli.to) {
    std::fprintf(stderr, "missing --to=ADDR\n");
    return std::nullopt;
  }
  return cli;
}

int submit_main(const ClientCli& cli) {
  if (cli.input.empty()) {
    std::fprintf(stderr, "submit: missing scenario file\n");
    return 2;
  }
  std::string text;
  if (cli.input == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream file(cli.input);
    if (!file) {
      std::fprintf(stderr, "cannot read %s\n", cli.input.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << file.rdbuf();
    text = buf.str();
  }
  serve::Client client;
  std::string error;
  if (!client.connect(*cli.to, cli.client, &error)) {
    std::fprintf(stderr, "submit: %s\n", error.c_str());
    return 1;
  }
  const auto job = client.submit(text, &error);
  if (!job) {
    std::fprintf(stderr, "submit: %s\n", error.c_str());
    // Server-side rejections of the submission itself are spec errors
    // (exit 2, like one-shot validation); BUSY/transport problems are
    // runtime conditions (exit 1) — retry later.
    return error.rfind("ERR", 0) == 0 ? 2 : 1;
  }
  std::printf("job %llu\n", static_cast<unsigned long long>(*job));
  return 0;
}

int watch_main(const ClientCli& cli) {
  if (cli.input.empty()) {
    std::fprintf(stderr, "watch: missing job id\n");
    return 2;
  }
  const auto job = spec_text::parse_u64(cli.input);
  if (!job || *job == 0) {
    std::fprintf(stderr, "watch: bad job id %s\n", cli.input.c_str());
    return 2;
  }
  serve::Client client;
  std::string error;
  if (!client.connect(*cli.to, cli.client, &error)) {
    std::fprintf(stderr, "watch: %s\n", error.c_str());
    return 1;
  }
  std::function<void(const serve::TrialUpdate&)> on_trial;
  if (cli.progress) {
    on_trial = [](const serve::TrialUpdate& update) {
      std::fprintf(stderr, "progress: scenario %u trial %u done%s\n",
                   update.scenario, update.trial,
                   update.completed ? "" : " (cutoff)");
    };
  }
  const auto result = client.watch(*job, &error, on_trial);
  if (!result) {
    std::fprintf(stderr, "watch: %s\n", error.c_str());
    return 1;
  }
  // The collected rows are byte-identical to a one-shot --csv of the same
  // scenarios, so `watch --to=... N > out.csv` replaces a local run.
  std::ofstream csv_file;
  std::ostream* out = &std::cout;
  if (!cli.csv_path.empty()) {
    csv_file.open(cli.csv_path);
    if (!csv_file) {
      std::fprintf(stderr, "cannot write %s\n", cli.csv_path.c_str());
      return 2;
    }
    out = &csv_file;
  }
  *out << scenario_csv_header_line() << "\n";
  for (const std::string& row : result->rows) *out << row << "\n";
  out->flush();
  if (result->state != "done") {
    std::fprintf(stderr, "watch: job %llu ended %s\n",
                 static_cast<unsigned long long>(*job),
                 result->state.c_str());
    return 1;
  }
  return 0;
}

int stats_main(const ClientCli& cli) {
  serve::Client client;
  std::string error;
  if (!client.connect(*cli.to, cli.client, &error)) {
    std::fprintf(stderr, "stats: %s\n", error.c_str());
    return 1;
  }
  const auto lines = client.stats(&error);
  if (!lines) {
    std::fprintf(stderr, "stats: %s\n", error.c_str());
    return 1;
  }
  for (const std::string& line : *lines) std::printf("%s\n", line.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    const std::string_view command = argv[1];
    if (command == "submit" || command == "watch" || command == "stats") {
      std::signal(SIGPIPE, SIG_IGN);
      const auto client_cli = parse_client_cli(argc, argv);
      if (!client_cli) return usage(argv[0]);
      if (command == "submit") return submit_main(*client_cli);
      if (command == "watch") return watch_main(*client_cli);
      return stats_main(*client_cli);
    }
  }
  const auto cli = parse_cli(argc, argv);
  if (!cli) return usage(argv[0]);
  if (cli->list) {
    list_registry();
    return 0;
  }
  if (!cli->serve.empty()) {
    if (!cli->input.empty()) return usage(argv[0]);
    return serve_main(*cli);
  }
  if (cli->input.empty()) return usage(argv[0]);
  if (cli->jobs) set_global_pool_workers(*cli->jobs);

  std::string error;
  std::optional<std::vector<ScenarioSpec>> specs;
  if (cli->input == "-") {
    specs = parse_scenario_stream(std::cin, &error);
  } else {
    specs = load_scenario_file(cli->input, &error);
  }
  if (!specs) {
    std::fprintf(stderr, "%s: %s\n", cli->input.c_str(), error.c_str());
    return 2;
  }
  if (specs->empty()) {
    std::fprintf(stderr, "%s: no scenarios\n", cli->input.c_str());
    return 2;
  }
  for (ScenarioSpec& spec : *specs) {
    if (cli->trials) spec.plan.trials = *cli->trials;
    if (cli->seed) spec.plan.seed = *cli->seed;
  }

  if (cli->dry_run) {
    for (const ScenarioSpec& spec : *specs) {
      std::string why;
      const auto probe = spec.graph.probe(&why);
      if (!probe) {
        // A parseable line with impossible parameters still echoes (this
        // is a dry run), but carries the reason a real run would exit 2.
        std::printf("%s  # invalid: %s\n", spec.name().c_str(), why.c_str());
        continue;
      }
      // The estimate rides in a '#' comment, so the dry-run output remains
      // valid scenario-file input. Sharded scenarios also report the width
      // this machine would run with (execution-only; results are
      // width-independent) — or "shards=off" when shards=auto resolves
      // disabled below the threshold, so the engine choice is explicit.
      std::string shard_note;
      if (const std::uint32_t shards_opt = spec.protocol.shards();
          shards_opt != 0) {
        shard_note =
            sharding_enabled(shards_opt, probe->n)
                ? " shards=" + std::to_string(resolve_shard_width(shards_opt))
                : " shards=off";
      }
      std::printf("%s  # backend=%s n=%llu m%s=%llu mem=%s%s\n",
                  spec.name().c_str(),
                  graph_backend_name(probe->backend),
                  static_cast<unsigned long long>(probe->n),
                  probe->m_estimated ? "~" : "",
                  static_cast<unsigned long long>(probe->m),
                  format_bytes(probe->graph_bytes).c_str(),
                  shard_note.c_str());
    }
    return 0;
  }

  // Validate every scenario up front: a bad spec exits 2 here, before a
  // --csv sink is truncated and before any trial runs — which also means
  // any run_scenarios failure below IS a runtime trial failure (exit 1),
  // not a validation error, keeping the exit codes unambiguous. The sink
  // itself is opened BEFORE the trials too (an unwritable path must fail
  // in milliseconds, not discard hours of simulation).
  if (!validate_scenarios(*specs, &error)) {
    std::fprintf(stderr, "%s: %s\n", cli->input.c_str(), error.c_str());
    return 2;
  }
  std::ofstream csv_file;
  std::optional<ScenarioCsvStream> csv;
  if (!cli->csv_path.empty()) {
    csv_file.open(cli->csv_path);
    if (!csv_file) {
      std::fprintf(stderr, "cannot write %s\n", cli->csv_path.c_str());
      return 2;
    }
    csv.emplace(csv_file);
  }

  // Rows stream in file order as scenarios complete; the trials
  // themselves interleave across the whole file's work queue. SIGINT and
  // SIGTERM flip g_stop: claimed trials finish, no new one starts, and the
  // truncated-report path below runs (exit 1).
  install_stop_handlers();
  ScenarioTableStream table(*specs, std::cout);
  const std::size_t total = specs->size();
  std::size_t rows_streamed = 0;
  TrialCounters counters;
  ScenarioRunOptions options;
  options.order = cli->order;
  options.stop = &g_stop;
  options.counters = &counters;
  options.on_result = [&](const ScenarioResult& r, std::size_t index) {
    table.row(r);
    if (csv) csv->row(r);
    ++rows_streamed;
    if (cli->progress) {
      const TrialQueueSnapshot q = counters.snapshot();
      std::fprintf(stderr,
                   "progress: %zu/%zu %s done (trials=%zu) "
                   "[queue: %zu/%zu trials done, %zu in flight]\n",
                   index + 1, total, r.spec.display_label().c_str(),
                   r.set.rounds.size(), q.trials_done, q.trials_total,
                   q.in_flight());
    }
  };
  const auto results = run_scenarios(*specs, &error, options);
  if (!results) {
    // Validation passed above, so this is a runtime trial failure: name
    // the scenario, mark any partially streamed CSV — a truncated
    // artifact that looks complete is worse than no artifact — and exit
    // 1 (distinct from the exit-2 spec errors).
    std::fprintf(stderr, "%s: %s\n", cli->input.c_str(), error.c_str());
    if (csv) {
      csv_file << "# truncated: " << rows_streamed << "/" << total
               << " scenarios completed; " << error << "\n";
      csv_file.flush();
    }
    std::fprintf(stderr, "note: report truncated after %zu/%zu scenarios\n",
                 rows_streamed, total);
    return 1;
  }
  if (csv) {
    csv_file.flush();
    if (!csv_file) {
      std::fprintf(stderr, "error writing %s\n", cli->csv_path.c_str());
      return 1;
    }
    // On stderr, like every other status line: piping the stdout table
    // into a file or another tool must never pick up bookkeeping.
    std::fprintf(stderr, "csv: %s\n", cli->csv_path.c_str());
  }
  return 0;
}

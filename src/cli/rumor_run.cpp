// rumor_run: execute a scenario file through the unified scenario API.
//
//   rumor_run [options] <scenario-file|->
//
// A scenario file holds one ScenarioSpec per line (see docs/scenarios.md),
// and any numeric value may be a sweep — a range or a value list — that
// expands the line into a series:
//
//   # Figure 1(a), star family, n = 2^11..2^15
//   star(leaves=2k..32k:factor=4) push           source=1 label=push
//   star(leaves=2k..32k:factor=4) visit-exchange source=1 label=visit-exchange
//
// Options:
//   --trials=N   override every scenario's trial count
//   --seed=S     override every scenario's master seed
//   --jobs=N     worker threads (default: hardware concurrency)
//   --order=K    trial claim order: file (default) or longest-first
//                (start the highest n·trials scenarios first for tighter
//                tails; reports are byte-identical either way)
//   --csv=PATH   additionally write the CSV report to PATH (the sink is
//                opened and validated BEFORE any trial runs)
//   --progress   per-scenario completion lines on stderr
//   --dry-run    parse and echo canonical expanded spec lines — each with
//                a trailing "# backend=... n=... m=... mem=..." estimate
//                comment (stripped on re-read, so the output stays valid
//                scenario input) — and run nothing
//   --list       list registered simulators, graph families, graph storage
//                backends, and the shared transmission/intervention keys,
//                then exit
//
// Exit codes: 0 success, 1 a trial failed mid-run (the failing scenario is
// named on stderr, and a streamed --csv gains a trailing "# truncated"
// comment), 2 usage/parse/validation errors.
//
// The whole file drains through ONE global (scenario, trial) work queue:
// trials from different scenarios interleave across the pool, report rows
// stream as scenarios complete (deterministic file order), and the sample
// vectors depend only on (seed, trial index) — never on --jobs or
// scheduling, so --jobs=1 and --jobs=N emit byte-identical reports.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/registry.hpp"
#include "experiments/report.hpp"
#include "experiments/scenario.hpp"
#include "support/spec_text.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace rumor;

// "0 B", "12.3 KiB", "2.0 GiB" — estimates, so one decimal is plenty.
std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--trials=N] [--seed=S] [--jobs=N] "
               "[--order=file|longest-first] [--csv=PATH] [--progress] "
               "[--dry-run] [--list] <scenario-file|->\n",
               argv0);
  return 2;
}

void list_registry() {
  std::printf("registered simulators:\n");
  for (const SimulatorEntry& entry : SimulatorRegistry::instance().all()) {
    std::printf("  %-22s %s\n", entry.name.c_str(), entry.summary.c_str());
  }
  std::printf(
      "\ngraph families (parameter signatures from the spec grammar):\n");
  for (const std::string& signature : graph_family_signatures()) {
    std::printf("  %s\n", signature.c_str());
  }
  std::printf(
      "\ngraph storage backends (backend= key; default auto):\n"
      "  star, cycle, complete, grid, torus, circulant synthesize adjacency\n"
      "  arithmetically (implicit backend, O(1) memory at any n); "
      "backend=owned\n"
      "  forces the materialized CSR. Identical structure and seeded\n"
      "  trajectories either way.\n"
      "  file:<path>  SNAP-style edge list ('#' comments, blank lines,\n"
      "  duplicate/reversed edges deduped; self loops rejected); parsed "
      "once,\n"
      "  cached as <path>.rcsr and memory-mapped on later runs.\n");
  std::printf(
      "\ntransmission model & interventions (protocol options; multi-rumor "
      "and async\naccept tp only):\n");
  for (const std::string& signature : transmission_key_signatures()) {
    std::printf("  %s\n", signature.c_str());
  }
  std::printf(
      "\nany numeric value sweeps: lo..hi (geometric x2; :factor=N or "
      ":step=N override,\nk/m suffixes) or {v1,v2,...}; one line expands "
      "to the cross product.\n");
}

struct CliOptions {
  std::optional<std::size_t> trials;
  std::optional<std::uint64_t> seed;
  std::optional<std::size_t> jobs;
  BatchOrder order = BatchOrder::file;
  std::string csv_path;
  bool progress = false;
  bool dry_run = false;
  bool list = false;
  std::string input;
};

std::optional<CliOptions> parse_cli(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--dry-run") {
      cli.dry_run = true;
    } else if (arg == "--list") {
      cli.list = true;
    } else if (arg == "--progress") {
      cli.progress = true;
    } else if (arg.starts_with("--trials=")) {
      const auto v = spec_text::parse_u64(arg.substr(9));
      if (!v || *v == 0) return std::nullopt;
      cli.trials = static_cast<std::size_t>(*v);
    } else if (arg.starts_with("--seed=")) {
      const auto v = spec_text::parse_u64(arg.substr(7));
      if (!v) return std::nullopt;
      cli.seed = *v;
    } else if (arg.starts_with("--jobs=")) {
      const auto v = spec_text::parse_u64(arg.substr(7));
      if (!v || *v == 0 || *v > 1024) return std::nullopt;
      cli.jobs = static_cast<std::size_t>(*v);
    } else if (arg.starts_with("--order=")) {
      const std::string_view value = arg.substr(8);
      if (value == "file") {
        cli.order = BatchOrder::file;
      } else if (value == "longest-first") {
        cli.order = BatchOrder::longest_first;
      } else {
        return std::nullopt;
      }
    } else if (arg.starts_with("--csv=")) {
      cli.csv_path = std::string(arg.substr(6));
      if (cli.csv_path.empty()) return std::nullopt;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return std::nullopt;
    } else if (cli.input.empty()) {
      cli.input = std::string(arg);
    } else {
      return std::nullopt;  // more than one input file
    }
  }
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = parse_cli(argc, argv);
  if (!cli) return usage(argv[0]);
  if (cli->list) {
    list_registry();
    return 0;
  }
  if (cli->input.empty()) return usage(argv[0]);
  if (cli->jobs) set_global_pool_workers(*cli->jobs);

  std::string error;
  std::optional<std::vector<ScenarioSpec>> specs;
  if (cli->input == "-") {
    specs = parse_scenario_stream(std::cin, &error);
  } else {
    specs = load_scenario_file(cli->input, &error);
  }
  if (!specs) {
    std::fprintf(stderr, "%s: %s\n", cli->input.c_str(), error.c_str());
    return 2;
  }
  if (specs->empty()) {
    std::fprintf(stderr, "%s: no scenarios\n", cli->input.c_str());
    return 2;
  }
  for (ScenarioSpec& spec : *specs) {
    if (cli->trials) spec.plan.trials = *cli->trials;
    if (cli->seed) spec.plan.seed = *cli->seed;
  }

  if (cli->dry_run) {
    for (const ScenarioSpec& spec : *specs) {
      std::string why;
      const auto probe = spec.graph.probe(&why);
      if (!probe) {
        // A parseable line with impossible parameters still echoes (this
        // is a dry run), but carries the reason a real run would exit 2.
        std::printf("%s  # invalid: %s\n", spec.name().c_str(), why.c_str());
        continue;
      }
      // The estimate rides in a '#' comment, so the dry-run output remains
      // valid scenario-file input.
      std::printf("%s  # backend=%s n=%llu m%s=%llu mem=%s\n",
                  spec.name().c_str(),
                  graph_backend_name(probe->backend),
                  static_cast<unsigned long long>(probe->n),
                  probe->m_estimated ? "~" : "",
                  static_cast<unsigned long long>(probe->m),
                  format_bytes(probe->graph_bytes).c_str());
    }
    return 0;
  }

  // Validate every scenario up front: a bad spec exits 2 here, before a
  // --csv sink is truncated and before any trial runs — which also means
  // any run_scenarios failure below IS a runtime trial failure (exit 1),
  // not a validation error, keeping the exit codes unambiguous. The sink
  // itself is opened BEFORE the trials too (an unwritable path must fail
  // in milliseconds, not discard hours of simulation).
  if (!validate_scenarios(*specs, &error)) {
    std::fprintf(stderr, "%s: %s\n", cli->input.c_str(), error.c_str());
    return 2;
  }
  std::ofstream csv_file;
  std::optional<ScenarioCsvStream> csv;
  if (!cli->csv_path.empty()) {
    csv_file.open(cli->csv_path);
    if (!csv_file) {
      std::fprintf(stderr, "cannot write %s\n", cli->csv_path.c_str());
      return 2;
    }
    csv.emplace(csv_file);
  }

  // Rows stream in file order as scenarios complete; the trials
  // themselves interleave across the whole file's work queue.
  ScenarioTableStream table(*specs, std::cout);
  const std::size_t total = specs->size();
  std::size_t rows_streamed = 0;
  ScenarioRunOptions options;
  options.order = cli->order;
  options.on_result = [&](const ScenarioResult& r, std::size_t index) {
    table.row(r);
    if (csv) csv->row(r);
    ++rows_streamed;
    if (cli->progress) {
      std::fprintf(stderr, "progress: %zu/%zu %s done (trials=%zu)\n",
                   index + 1, total, r.spec.display_label().c_str(),
                   r.set.rounds.size());
    }
  };
  const auto results = run_scenarios(*specs, &error, options);
  if (!results) {
    // Validation passed above, so this is a runtime trial failure: name
    // the scenario, mark any partially streamed CSV — a truncated
    // artifact that looks complete is worse than no artifact — and exit
    // 1 (distinct from the exit-2 spec errors).
    std::fprintf(stderr, "%s: %s\n", cli->input.c_str(), error.c_str());
    if (csv) {
      csv_file << "# truncated: " << rows_streamed << "/" << total
               << " scenarios completed; " << error << "\n";
      csv_file.flush();
    }
    std::fprintf(stderr, "note: report truncated after %zu/%zu scenarios\n",
                 rows_streamed, total);
    return 1;
  }
  if (csv) {
    csv_file.flush();
    if (!csv_file) {
      std::fprintf(stderr, "error writing %s\n", cli->csv_path.c_str());
      return 1;
    }
    std::printf("csv: %s\n", cli->csv_path.c_str());
  }
  return 0;
}

// rumor_run: execute a scenario file through the unified scenario API.
//
//   rumor_run [options] <scenario-file|->
//
// A scenario file holds one ScenarioSpec per line (see docs/scenarios.md):
//
//   # Figure 1(a), star family
//   star(leaves=8192) push source=1 label=push
//   star(leaves=8192) visit-exchange source=1 label=visit-exchange
//
// Options:
//   --trials=N   override every scenario's trial count
//   --seed=S     override every scenario's master seed
//   --csv=PATH   additionally write the CSV report to PATH
//   --dry-run    parse and echo canonical spec lines, run nothing
//   --list       list registered simulators and graph families, then exit
//
// Each scenario's trials fan out over the process thread pool with
// per-worker trial arenas: steady-state trials allocate nothing, and the
// sample vectors depend only on (seed, trial index) — never on worker
// count or scheduling.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/registry.hpp"
#include "experiments/scenario.hpp"
#include "support/spec_text.hpp"

namespace {

using namespace rumor;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--trials=N] [--seed=S] [--csv=PATH] [--dry-run] "
               "[--list] <scenario-file|->\n",
               argv0);
  return 2;
}

void list_registry() {
  std::printf("registered simulators:\n");
  for (const SimulatorEntry& entry : SimulatorRegistry::instance().all()) {
    std::printf("  %-22s %s\n", entry.name.c_str(), entry.summary.c_str());
  }
  std::printf("\ngraph families (see docs/scenarios.md for parameters):\n ");
  for (const std::string_view family : graph_family_names()) {
    std::printf(" %.*s", static_cast<int>(family.size()), family.data());
  }
  std::printf("\n");
}

struct CliOptions {
  std::optional<std::size_t> trials;
  std::optional<std::uint64_t> seed;
  std::string csv_path;
  bool dry_run = false;
  bool list = false;
  std::string input;
};

std::optional<CliOptions> parse_cli(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--dry-run") {
      cli.dry_run = true;
    } else if (arg == "--list") {
      cli.list = true;
    } else if (arg.starts_with("--trials=")) {
      const auto v = spec_text::parse_u64(arg.substr(9));
      if (!v || *v == 0) return std::nullopt;
      cli.trials = static_cast<std::size_t>(*v);
    } else if (arg.starts_with("--seed=")) {
      const auto v = spec_text::parse_u64(arg.substr(7));
      if (!v) return std::nullopt;
      cli.seed = *v;
    } else if (arg.starts_with("--csv=")) {
      cli.csv_path = std::string(arg.substr(6));
      if (cli.csv_path.empty()) return std::nullopt;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      return std::nullopt;
    } else if (cli.input.empty()) {
      cli.input = std::string(arg);
    } else {
      return std::nullopt;  // more than one input file
    }
  }
  return cli;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = parse_cli(argc, argv);
  if (!cli) return usage(argv[0]);
  if (cli->list) {
    list_registry();
    return 0;
  }
  if (cli->input.empty()) return usage(argv[0]);

  std::string error;
  std::optional<std::vector<ScenarioSpec>> specs;
  if (cli->input == "-") {
    specs = parse_scenario_stream(std::cin, &error);
  } else {
    specs = load_scenario_file(cli->input, &error);
  }
  if (!specs) {
    std::fprintf(stderr, "%s: %s\n", cli->input.c_str(), error.c_str());
    return 2;
  }
  if (specs->empty()) {
    std::fprintf(stderr, "%s: no scenarios\n", cli->input.c_str());
    return 2;
  }
  for (ScenarioSpec& spec : *specs) {
    if (cli->trials) spec.plan.trials = *cli->trials;
    if (cli->seed) spec.plan.seed = *cli->seed;
  }

  if (cli->dry_run) {
    for (const ScenarioSpec& spec : *specs) {
      std::printf("%s\n", spec.name().c_str());
    }
    return 0;
  }

  const auto results = run_scenarios(*specs, &error);
  if (!results) {
    std::fprintf(stderr, "%s: %s\n", cli->input.c_str(), error.c_str());
    return 2;
  }
  std::printf("%s", scenario_table(*results).c_str());

  if (!cli->csv_path.empty()) {
    std::ofstream out(cli->csv_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", cli->csv_path.c_str());
      return 1;
    }
    write_scenario_csv(out, *results);
    std::printf("csv: %s\n", cli->csv_path.c_str());
  }
  return 0;
}

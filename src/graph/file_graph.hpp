// Edge-list file graphs with a versioned, memory-mapped CSR cache.
//
// `graph=file:path` scenarios load a SNAP-style whitespace edge list:
//   * lines are "<u> <v>" with arbitrary (non-dense) 64-bit vertex ids;
//   * '#' starts a comment (full-line or trailing); blank lines are skipped;
//   * duplicate edges — in either orientation — are deduplicated;
//   * self loops are a parse error (reported with the line number);
//   * vertex ids are compacted to dense [0, n) in ascending original-id
//     order, so results are reproducible from the file alone.
//
// Parsing and CSR construction happen once: the first load writes a binary
// cache beside the source (`<path>.rcsr`, format documented in
// docs/scenarios.md) holding the finished CSR arrays plus the structural
// summary (degree range, connectivity, bipartiteness). Later runs validate
// the cache against the source's size + mtime and memory-map it read-only —
// the Graph then borrows the mapped arrays (GraphBackend::mapped), so a
// 10^8-edge snapshot costs page-cache, not private RSS, and shares across
// processes.
//
// Errors throw GraphFileError (never abort): a bad path or malformed file
// must surface through scenario validation's typed error path before any
// trial runs.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "graph/graph.hpp"

namespace rumor {

class GraphFileError : public std::runtime_error {
 public:
  explicit GraphFileError(const std::string& what)
      : std::runtime_error(what) {}
};

// Cache file placed beside the source: "<path>.rcsr".
[[nodiscard]] std::string file_graph_cache_path(const std::string& path);

// Loads `path`, building or refreshing the cache as needed, and returns a
// mapped-backend Graph. Throws GraphFileError on any I/O or parse problem.
[[nodiscard]] Graph load_file_graph(const std::string& path);

// Size/shape summary for validation and memory estimates. Ensuring the
// numbers exist may parse the source once (building the cache as a side
// effect); a valid cache answers from its 64-byte header.
struct FileGraphInfo {
  Vertex n = 0;
  std::uint64_t m = 0;
  std::uint64_t cache_bytes = 0;  // size of the mmap'd cache file
  bool cache_was_fresh = false;   // true when an existing cache answered
};
[[nodiscard]] FileGraphInfo probe_file_graph(const std::string& path);

}  // namespace rumor

#include "graph/file_graph.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

namespace rumor {

namespace {

// Cache layout, version 1 (all integers little-endian, arrays uint32):
//   FileHeader (64 bytes)
//   offsets      (n + 1)   CSR row starts
//   neighbors    (2m)      sorted per vertex
//   edge_ids     (2m)      undirected edge id per adjacency slot
//   fwd_offsets  (n + 1)   # edges whose min endpoint < u (edge_endpoints)
// Bump kCacheVersion whenever this layout (or the id-assignment contract)
// changes; a version mismatch is treated exactly like a stale cache.
constexpr char kMagic[8] = {'R', 'U', 'M', 'R', 'C', 'S', 'R', '1'};
constexpr std::uint32_t kCacheVersion = 1;

constexpr std::uint32_t kFlagConnected = 1u << 0;
constexpr std::uint32_t kFlagBipartite = 1u << 1;
constexpr std::uint32_t kFlagPow2 = 1u << 2;

struct FileHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t flags;
  std::uint64_t source_size;
  std::int64_t source_mtime_ns;
  std::uint32_t n;
  std::uint32_t min_degree;
  std::uint32_t max_degree;
  std::uint32_t reserved0;
  std::uint64_t m;
  std::uint64_t reserved1;
};
static_assert(sizeof(FileHeader) == 64);

std::uint64_t cache_payload_bytes(std::uint64_t n, std::uint64_t m) {
  return sizeof(FileHeader) + 4 * (2 * (n + 1) + 4 * m);
}

[[noreturn]] void fail(const std::string& what) { throw GraphFileError(what); }

struct SourceStamp {
  std::uint64_t size = 0;
  std::int64_t mtime_ns = 0;
};

SourceStamp stat_source(const std::string& path) {
  struct stat st {};
  if (::stat(path.c_str(), &st) != 0) {
    fail(path + ": " + std::strerror(errno));
  }
  if (!S_ISREG(st.st_mode)) fail(path + ": not a regular file");
  return {static_cast<std::uint64_t>(st.st_size),
          static_cast<std::int64_t>(st.st_mtim.tv_sec) * 1000000000 +
              st.st_mtim.tv_nsec};
}

// Owns one read-only mapping; Graph pins it via shared_ptr keep-alive.
class MappedFile {
 public:
  MappedFile(void* base, std::size_t len) : base_(base), len_(len) {}
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() {
    if (base_ != nullptr) ::munmap(base_, len_);
  }
  [[nodiscard]] const std::byte* data() const {
    return static_cast<const std::byte*>(base_);
  }

 private:
  void* base_;
  std::size_t len_;
};

// ---- SNAP-style edge-list parser --------------------------------------

struct ParsedEdgeList {
  Vertex n = 0;
  std::vector<std::pair<Vertex, Vertex>> edges;  // deduped, u < v
};

ParsedEdgeList parse_edge_list(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path + ": cannot open for reading");

  std::vector<std::pair<std::uint64_t, std::uint64_t>> raw;
  std::string line;
  std::size_t line_no = 0;
  const auto line_fail = [&](const std::string& msg) {
    fail(path + ":" + std::to_string(line_no) + ": " + msg);
  };
  while (std::getline(in, line)) {
    ++line_no;
    // Trailing comments count too: "0 1  # seed edge" is a data line.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    const char* s = line.c_str();
    const char* end = s + line.size();
    const auto skip_ws = [&] {
      while (s < end && (*s == ' ' || *s == '\t' || *s == '\r')) ++s;
    };
    const auto parse_id = [&](std::uint64_t& out) {
      if (s >= end || *s < '0' || *s > '9') {
        line_fail("expected a vertex id");
      }
      std::uint64_t v = 0;
      while (s < end && *s >= '0' && *s <= '9') {
        const std::uint64_t digit = static_cast<std::uint64_t>(*s - '0');
        if (v > (~std::uint64_t{0} - digit) / 10) {
          line_fail("vertex id out of range");
        }
        v = v * 10 + digit;
        ++s;
      }
      out = v;
    };
    skip_ws();
    if (s == end) continue;  // blank (or comment-only) line
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    parse_id(u);
    skip_ws();
    parse_id(v);
    skip_ws();
    if (s != end) line_fail("trailing characters after edge");
    if (u == v) {
      line_fail("self loop (" + std::to_string(u) + ")");
    }
    raw.emplace_back(u, v);
  }
  if (in.bad()) fail(path + ": read error");
  if (raw.empty()) fail(path + ": no edges found");

  // Compact arbitrary ids to dense [0, n), ascending original-id order.
  std::vector<std::uint64_t> ids;
  ids.reserve(2 * raw.size());
  for (const auto& [u, v] : raw) {
    ids.push_back(u);
    ids.push_back(v);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (ids.size() > std::numeric_limits<Vertex>::max()) {
    fail(path + ": too many distinct vertices for 32-bit ids");
  }
  const auto remap = [&](std::uint64_t id) {
    return static_cast<Vertex>(
        std::lower_bound(ids.begin(), ids.end(), id) - ids.begin());
  };

  ParsedEdgeList out;
  out.n = static_cast<Vertex>(ids.size());
  out.edges.reserve(raw.size());
  for (const auto& [u, v] : raw) {
    const Vertex a = remap(u);
    const Vertex b = remap(v);
    out.edges.emplace_back(std::min(a, b), std::max(a, b));
  }
  // Dedupe duplicate and reversed edges: normalized pairs, sort + unique.
  std::sort(out.edges.begin(), out.edges.end());
  out.edges.erase(std::unique(out.edges.begin(), out.edges.end()),
                  out.edges.end());
  if (out.edges.size() >= std::numeric_limits<EdgeId>::max() / 2) {
    fail(path + ": too many edges for 32-bit edge ids");
  }
  return out;
}

// ---- Cache writer ------------------------------------------------------

void write_u32s(std::FILE* f, const std::uint32_t* p, std::uint64_t count,
                const std::string& path) {
  if (count != 0 && std::fwrite(p, sizeof(std::uint32_t), count, f) != count) {
    fail(path + ": short write");
  }
}

void build_cache(const std::string& path, const std::string& cache_path,
                 const SourceStamp& stamp) {
  const ParsedEdgeList parsed = parse_edge_list(path);
  const Graph g(parsed.n, parsed.edges);
  const GraphProperties& props = g.properties();  // one BFS, stored forever

  // fwd_offsets[u] = # edges with min endpoint < u; the sorted edge list
  // IS in (min, max) order, so a counting pass + prefix sum suffices.
  std::vector<std::uint32_t> fwd(static_cast<std::size_t>(parsed.n) + 1, 0);
  for (const auto& [u, v] : parsed.edges) ++fwd[u + 1];
  for (std::size_t i = 1; i < fwd.size(); ++i) fwd[i] += fwd[i - 1];

  FileHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kCacheVersion;
  h.flags = (props.connected ? kFlagConnected : 0) |
            (props.bipartite ? kFlagBipartite : 0) |
            (g.degrees_all_pow2() ? kFlagPow2 : 0);
  h.source_size = stamp.size;
  h.source_mtime_ns = stamp.mtime_ns;
  h.n = g.num_vertices();
  h.min_degree = g.min_degree();
  h.max_degree = g.max_degree();
  h.m = g.num_edges();

  // Write to a temp name, rename into place: a crashed or concurrent build
  // never leaves a torn cache behind (rename on one filesystem is atomic).
  const std::string tmp = cache_path + ".tmp." + std::to_string(::getpid());
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) fail(tmp + ": cannot open cache for writing");
  const CsrView csr = g.csr();
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  bool ok = std::fwrite(&h, sizeof(h), 1, f) == 1;
  if (!ok) {
    std::fclose(f);
    std::remove(tmp.c_str());
    fail(tmp + ": short write");
  }
  write_u32s(f, csr.offsets, n + 1, tmp);
  write_u32s(f, csr.neighbors, 2 * m, tmp);
  write_u32s(f, csr.edge_ids, 2 * m, tmp);
  write_u32s(f, fwd.data(), n + 1, tmp);
  ok = std::fflush(f) == 0;
  ok = (std::fclose(f) == 0) && ok;
  if (!ok || std::rename(tmp.c_str(), cache_path.c_str()) != 0) {
    std::remove(tmp.c_str());
    fail(cache_path + ": cannot finalize cache");
  }
}

// Reads + validates the header of an existing cache against the source
// stamp. Returns false when missing/stale/foreign (caller rebuilds).
bool read_cache_header(const std::string& cache_path,
                       const SourceStamp& stamp, FileHeader& h,
                       std::uint64_t& file_size) {
  struct stat st {};
  if (::stat(cache_path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) {
    return false;
  }
  std::FILE* f = std::fopen(cache_path.c_str(), "rb");
  if (f == nullptr) return false;
  const bool got = std::fread(&h, sizeof(h), 1, f) == 1;
  std::fclose(f);
  if (!got || std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0 ||
      h.version != kCacheVersion || h.source_size != stamp.size ||
      h.source_mtime_ns != stamp.mtime_ns) {
    return false;
  }
  file_size = static_cast<std::uint64_t>(st.st_size);
  return file_size == cache_payload_bytes(h.n, h.m);
}

// Ensures a valid cache exists; returns its header + size.
FileHeader ensure_cache(const std::string& path, const std::string& cache_path,
                        std::uint64_t& cache_bytes, bool& was_fresh) {
  const SourceStamp stamp = stat_source(path);
  FileHeader h{};
  if (read_cache_header(cache_path, stamp, h, cache_bytes)) {
    was_fresh = true;
    return h;
  }
  build_cache(path, cache_path, stamp);
  if (!read_cache_header(cache_path, stamp, h, cache_bytes)) {
    fail(cache_path + ": cache verification failed after build");
  }
  was_fresh = false;
  return h;
}

}  // namespace

std::string file_graph_cache_path(const std::string& path) {
  return path + ".rcsr";
}

Graph load_file_graph(const std::string& path) {
  const std::string cache_path = file_graph_cache_path(path);
  std::uint64_t cache_bytes = 0;
  bool was_fresh = false;
  const FileHeader h = ensure_cache(path, cache_path, cache_bytes, was_fresh);

  const int fd = ::open(cache_path.c_str(), O_RDONLY);
  if (fd < 0) fail(cache_path + ": " + std::strerror(errno));
  void* base = ::mmap(nullptr, cache_bytes, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) {
    fail(cache_path + ": mmap: " + std::strerror(errno));
  }
  auto mapping = std::make_shared<MappedFile>(base, cache_bytes);

  const std::byte* p = mapping->data() + sizeof(FileHeader);
  const std::uint64_t n = h.n;
  const std::uint64_t m = h.m;
  ExternalCsr ext;
  ext.offsets = reinterpret_cast<const std::uint32_t*>(p);
  p += 4 * (n + 1);
  ext.neighbors = reinterpret_cast<const Vertex*>(p);
  p += 4 * (2 * m);
  ext.edge_ids = reinterpret_cast<const EdgeId*>(p);
  p += 4 * (2 * m);
  ext.fwd_offsets = reinterpret_cast<const std::uint32_t*>(p);
  ext.n = h.n;
  ext.m = h.m;
  ext.min_degree = h.min_degree;
  ext.max_degree = h.max_degree;
  ext.degrees_all_pow2 = (h.flags & kFlagPow2) != 0;
  ext.props.connected = (h.flags & kFlagConnected) != 0;
  ext.props.bipartite = (h.flags & kFlagBipartite) != 0;
  ext.props.regular = h.min_degree == h.max_degree;
  ext.props.degrees_all_pow2 = ext.degrees_all_pow2;
  ext.keep_alive = std::move(mapping);
  return Graph::from_external(std::move(ext));
}

FileGraphInfo probe_file_graph(const std::string& path) {
  FileGraphInfo info;
  const FileHeader h = ensure_cache(path, file_graph_cache_path(path),
                                    info.cache_bytes, info.cache_was_fresh);
  info.n = h.n;
  info.m = h.m;
  return info;
}

}  // namespace rumor

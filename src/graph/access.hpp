// Per-backend graph access policies for hot loops.
//
// Mirrors the transmission::Uniform/General mode-tag pattern: a kernel that
// runs many contacts per round asks with_graph_access() to pick the policy
// ONCE, then instantiates its loop body per policy — so the owned/mapped
// path keeps raw CSR pointer loads (and real prefetches) while the implicit
// path compiles to pure arithmetic, with no per-call branch or virtual
// dispatch inside the loop. Exactly two instantiations exist per kernel,
// which bounds compile time the same way the two transmission tags do.
//
// Both policies enumerate neighbors in identical sorted order and consume
// identical RNG draw sequences, so a seeded trajectory is byte-identical
// whichever policy runs (the backend-equivalence contract pinned in
// tests/test_graph_backend.cpp).
#pragma once

#include <utility>

#include "graph/graph.hpp"
#include "graph/implicit.hpp"

namespace rumor {

// One vertex's adjacency row resolved once: callers that need the degree
// and then pick a slot reuse the row instead of re-deriving it.
struct GraphRow {
  Vertex v;
  std::uint32_t lo;   // CSR row start (unused by the implicit policy)
  std::uint32_t deg;
};

// Materialized backends (owned, mapped): raw pointer loads.
struct CsrAccess {
  const std::uint32_t* offsets;
  const Vertex* neighbors;

  [[nodiscard]] std::uint32_t degree(Vertex v) const {
    return offsets[v + 1] - offsets[v];
  }
  [[nodiscard]] Vertex neighbor(Vertex v, std::uint32_t i) const {
    return neighbors[offsets[v] + i];
  }
  [[nodiscard]] GraphRow row(Vertex v) const {
    const std::uint32_t lo = offsets[v];
    return {v, lo, offsets[v + 1] - lo};
  }
  [[nodiscard]] Vertex pick(const GraphRow& r, std::uint32_t i) const {
    return neighbors[r.lo + i];
  }
  // Warm the offsets cache line for an upcoming row() call.
  void prefetch_degree(Vertex v) const {
    __builtin_prefetch(offsets + v, /*rw=*/0, /*locality=*/3);
  }
};

// Implicit backend: adjacency synthesized from the family closed forms;
// the desc is copied by value so the loop works out of registers.
struct ImplicitAccess {
  ImplicitDesc desc;

  [[nodiscard]] std::uint32_t degree(Vertex v) const {
    return implicit_degree(desc, v);
  }
  [[nodiscard]] Vertex neighbor(Vertex v, std::uint32_t i) const {
    return implicit_neighbor(desc, v, i);
  }
  [[nodiscard]] GraphRow row(Vertex v) const {
    return {v, 0, implicit_degree(desc, v)};
  }
  [[nodiscard]] Vertex pick(const GraphRow& r, std::uint32_t i) const {
    return implicit_neighbor(desc, r.v, i);
  }
  void prefetch_degree(Vertex) const {}  // nothing to load
};

// Resolves the backend once and invokes f with the matching policy.
template <class F>
decltype(auto) with_graph_access(const Graph& g, F&& f) {
  if (g.is_implicit()) {
    return std::forward<F>(f)(ImplicitAccess{g.implicit_desc()});
  }
  const CsrView csr = g.csr();
  return std::forward<F>(f)(CsrAccess{csr.offsets, csr.neighbors});
}

}  // namespace rumor

#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace rumor {

void save_edge_list(const Graph& g, std::ostream& out) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge_endpoints(e);
    out << u << ' ' << v << '\n';
  }
}

namespace {

[[noreturn]] void parse_error(std::size_t line, const std::string& message) {
  throw std::runtime_error("edge list parse error at line " +
                           std::to_string(line) + ": " + message);
}

}  // namespace

Graph load_edge_list(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  Vertex n = 0;
  std::size_t m = 0;
  bool have_header = false;
  std::vector<std::pair<Vertex, Vertex>> edges;

  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    if (!have_header) {
      std::uint64_t n64 = 0, m64 = 0;
      if (!(fields >> n64 >> m64)) parse_error(line_no, "expected 'n m'");
      if (n64 == 0 || n64 > 0xFFFFFFFEull) {
        parse_error(line_no, "vertex count out of range");
      }
      n = static_cast<Vertex>(n64);
      m = static_cast<std::size_t>(m64);
      edges.reserve(m);
      have_header = true;
      continue;
    }
    std::uint64_t u = 0, v = 0;
    if (!(fields >> u >> v)) parse_error(line_no, "expected 'u v'");
    if (u >= n || v >= n) parse_error(line_no, "endpoint out of range");
    if (u == v) parse_error(line_no, "self loop");
    edges.emplace_back(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  if (!have_header) throw std::runtime_error("edge list: missing header");
  if (edges.size() != m) {
    throw std::runtime_error("edge list: header declared " +
                             std::to_string(m) + " edges, found " +
                             std::to_string(edges.size()));
  }
  return Graph(n, edges);
}

void save_edge_list_file(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  save_edge_list(g, out);
  if (!out) throw std::runtime_error("write failed: " + path);
}

Graph load_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return load_edge_list(in);
}

void export_dot(const Graph& g, std::ostream& out, const std::string& name) {
  out << "graph " << name << " {\n";
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto [u, v] = g.edge_endpoints(e);
    out << "  " << u << " -- " << v << ";\n";
  }
  out << "}\n";
}

}  // namespace rumor

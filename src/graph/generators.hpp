// Graph generators.
//
// Families are grouped by role in the reproduction:
//  * Paper Figure-1 families (the separating examples of Section 4):
//    star, double_star, heavy_binary_tree, siamese_heavy_tree,
//    cycle_stars_cliques.
//  * Regular families for Theorems 1/10/19/23/24/25: hypercube, circulant,
//    clique_ring/clique_path (slow mixing), random_regular.
//  * Generic families for tests/examples: complete, path, cycle, trees,
//    grids, Erdős–Rényi, barbell, star_of_cliques.
//
// All generators return connected graphs and document their exact vertex
// layout so tests can address structural roles (e.g. "the star center is
// vertex 0").
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace rumor::gen {

// ---- basic families -------------------------------------------------------

// Complete graph K_n (n >= 2).
[[nodiscard]] Graph complete(Vertex n);

// Path 0-1-...-(n-1), n >= 2.
[[nodiscard]] Graph path(Vertex n);

// Cycle 0-1-...-(n-1)-0, n >= 3.
[[nodiscard]] Graph cycle(Vertex n);

// rows x cols grid, vertex (r, c) = r*cols + c; rows, cols >= 1,
// rows*cols >= 2.
[[nodiscard]] Graph grid2d(Vertex rows, Vertex cols);

// rows x cols torus (wrap-around grid); rows, cols >= 3 so the graph is
// simple (no parallel wrap edges).
[[nodiscard]] Graph torus2d(Vertex rows, Vertex cols);

// Two cliques of size k joined by a single bridge edge (2k vertices).
// Vertices [0,k) form clique A, [k,2k) clique B; bridge is (k-1, k).
[[nodiscard]] Graph barbell(Vertex k);

// ---- tree-like families ---------------------------------------------------

// Star S_n: center 0, leaves 1..n (n+1 vertices total, n >= 2 leaves).
// Paper Fig. 1(a).
[[nodiscard]] Graph star(Vertex leaves);

// Double star S2_n (paper Fig. 1(b)): two stars with `leaves` leaves each,
// centers adjacent. Layout: center A = 0, center B = 1, A's leaves
// [2, 2+leaves), B's leaves [2+leaves, 2+2*leaves).
[[nodiscard]] Graph double_star(Vertex leaves);

// Complete (balanced) binary tree with n vertices in heap layout: vertex i
// has children 2i+1, 2i+2. n >= 1.
[[nodiscard]] Graph balanced_binary_tree(Vertex n);

// ---- paper Figure-1 composite families -------------------------------------

// Heavy binary tree B_n (paper Fig. 1(c)): balanced binary tree with n
// vertices in heap layout plus a clique over its leaves. The leaves are the
// heap positions [n/2, n) (ceil(n/2) of them); the root is vertex 0.
// Requires n >= 4.
[[nodiscard]] Graph heavy_binary_tree(Vertex n);

// Siamese heavy binary trees D_n (paper Fig. 1(d)): two copies of
// heavy_binary_tree(n) sharing a single merged root. The root is vertex 0;
// copy 0 occupies [1, n), copy 1 occupies [n, 2n-1) (heap positions shift).
// Total 2n-1 vertices. Requires n >= 4.
[[nodiscard]] Graph siamese_heavy_tree(Vertex n);

// Cycle of stars of cliques (paper Fig. 1(e)) with parameter k (= n^{1/3} in
// the paper): a cycle of k hub vertices c_i; each hub has k star leaves
// l_{i,j}; each leaf is joined to a k-clique q_{i,j,*} and to every vertex
// of that clique. Total k + k^2 + k^3 vertices. Requires k >= 3.
// Layout: hubs [0, k); leaves [k, k + k^2) with l_{i,j} = k + i*k + j;
// clique vertices follow, q_{i,j,*} contiguous.
[[nodiscard]] Graph cycle_stars_cliques(Vertex k);

// Star of cliques: a hub vertex 0 connected to one vertex of each of
// `cliques` disjoint k-cliques (used in tests/examples as a non-regular
// tree-of-dense-parts family).
[[nodiscard]] Graph star_of_cliques(Vertex cliques, Vertex k);

// ---- regular families -------------------------------------------------------

// Hypercube Q_dim: n = 2^dim vertices, vertex ids are bitstrings, edges
// between ids at Hamming distance 1. dim >= 1. (log2(n)-regular.)
[[nodiscard]] Graph hypercube(std::uint32_t dim);

// Circulant graph C_n(1..k): vertex i adjacent to i +- j (mod n) for
// j = 1..k. 2k-regular, vertex-transitive, connected. Requires n >= 2k+2
// (keeps the graph simple).
[[nodiscard]] Graph circulant(Vertex n, std::uint32_t k);

// Ring of `groups` cliques of size k (groups >= 3, k >= 2): each group is a
// k-clique; group g is joined to group g+1 (mod groups) by a perfect
// matching. Exactly (k+1)-regular and slow-mixing (the paper's "path of
// d-cliques" made regular by closing the ring).
[[nodiscard]] Graph clique_ring(Vertex groups, Vertex k);

// Path variant of the above (end groups have degree k, interior k+1);
// "path of d-cliques" from the paper's discussion of Theorem 1.
[[nodiscard]] Graph clique_path(Vertex groups, Vertex k);

// ---- random families --------------------------------------------------------

// Random d-regular simple graph via the configuration model with edge-swap
// repair of self-loops/multi-edges. n*d must be even, d < n. The result is
// approximately uniform (documented deviation in DESIGN.md) and is rejected
// and resampled if disconnected (connectivity is overwhelmingly likely for
// d >= 3).
[[nodiscard]] Graph random_regular(Vertex n, std::uint32_t d, Rng& rng);

// Erdős–Rényi G(n, p) conditioned on connectivity: resamples until
// connected. Intended for p noticeably above the ln(n)/n threshold.
[[nodiscard]] Graph erdos_renyi_connected(Vertex n, double p, Rng& rng);

}  // namespace rumor::gen

// Generators for the composite families of the paper's Figure 1.
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace rumor::gen {

namespace {

// Heap positions [n/2, n) have no children in a heap of size n.
[[nodiscard]] constexpr Vertex first_leaf_heap_pos(Vertex n) { return n / 2; }

}  // namespace

Graph heavy_binary_tree(Vertex n) {
  RUMOR_REQUIRE(n >= 4);
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) b.add_edge(v, (v - 1) / 2);
  std::vector<Vertex> leaves;
  for (Vertex v = first_leaf_heap_pos(n); v < n; ++v) leaves.push_back(v);
  b.add_clique(leaves);
  return b.build();
}

Graph siamese_heavy_tree(Vertex n) {
  RUMOR_REQUIRE(n >= 4);
  // Copy c in {0, 1} places its heap position p in [1, n) at id
  // p + c*(n-1); heap position 0 is the shared root, id 0.
  GraphBuilder b(2 * n - 1);
  for (Vertex c = 0; c < 2; ++c) {
    const Vertex offset = c * (n - 1);
    auto id = [offset](Vertex heap_pos) -> Vertex {
      return heap_pos == 0 ? 0 : heap_pos + offset;
    };
    for (Vertex p = 1; p < n; ++p) b.add_edge(id(p), id((p - 1) / 2));
    std::vector<Vertex> leaves;
    for (Vertex p = first_leaf_heap_pos(n); p < n; ++p) {
      leaves.push_back(id(p));
    }
    b.add_clique(leaves);
  }
  return b.build();
}

Graph cycle_stars_cliques(Vertex k) {
  RUMOR_REQUIRE(k >= 3);
  const std::uint64_t total =
      static_cast<std::uint64_t>(k) + static_cast<std::uint64_t>(k) * k +
      static_cast<std::uint64_t>(k) * k * k;
  RUMOR_REQUIRE(total <= 0xFFFFFFFEull);
  const auto n = static_cast<Vertex>(total);
  GraphBuilder b(n);

  auto hub = [](Vertex i) { return i; };
  auto leaf = [k](Vertex i, Vertex j) { return k + i * k + j; };
  auto clique_vertex = [k](Vertex i, Vertex j, Vertex r) {
    return k + k * k + (i * k + j) * k + r;
  };

  for (Vertex i = 0; i < k; ++i) {
    b.add_edge(hub(i), hub((i + 1) % k));  // ring of hubs
    for (Vertex j = 0; j < k; ++j) {
      b.add_edge(hub(i), leaf(i, j));  // star spokes
      // Q_{i,j}: the (k+1)-clique on {l_{i,j}} ∪ {q_{i,j,*}}.
      std::vector<Vertex> q;
      q.push_back(leaf(i, j));
      for (Vertex r = 0; r < k; ++r) q.push_back(clique_vertex(i, j, r));
      b.add_clique(q);
    }
  }
  return b.build();
}

Graph star_of_cliques(Vertex cliques, Vertex k) {
  RUMOR_REQUIRE(cliques >= 2 && k >= 2);
  const Vertex n = 1 + cliques * k;
  GraphBuilder b(n);
  std::vector<Vertex> members(k);
  for (Vertex c = 0; c < cliques; ++c) {
    const Vertex base = 1 + c * k;
    for (Vertex i = 0; i < k; ++i) members[i] = base + i;
    b.add_clique(members);
    b.add_edge(0, base);  // hub attaches to one representative per clique
  }
  return b.build();
}

}  // namespace rumor::gen

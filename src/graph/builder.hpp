// Mutable edge accumulator producing an immutable CSR Graph.
//
// Generators add edges freely; build() validates (no self loops, no
// duplicates, all endpoints in range) and hands off to Graph. add_edge_once
// tolerates duplicate insertion attempts, which simplifies generators that
// enumerate edges from overlapping structures (e.g. clique + tree overlays).
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace rumor {

class GraphBuilder {
 public:
  explicit GraphBuilder(Vertex num_vertices);

  [[nodiscard]] Vertex num_vertices() const { return n_; }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

  // Adds undirected edge {u, v}. Requires u != v, both < num_vertices, and
  // that the edge was not added before (checked at build()).
  void add_edge(Vertex u, Vertex v);

  // Adds {u, v} unless it is already present. O(log m) via a sorted check
  // at build time is not possible here, so this keeps a hash-free sorted
  // snapshot lazily; intended for generators with few overlap candidates.
  void add_edge_once(Vertex u, Vertex v);

  // Adds all edges of a clique over the given vertex ids.
  void add_clique(std::span<const Vertex> vertices);

  // Validates and builds the CSR graph. The builder remains usable.
  [[nodiscard]] Graph build() const;

 private:
  [[nodiscard]] static std::uint64_t edge_key(Vertex u, Vertex v) {
    const auto lo = static_cast<std::uint64_t>(std::min(u, v));
    const auto hi = static_cast<std::uint64_t>(std::max(u, v));
    return (hi << 32) | lo;
  }

  Vertex n_;
  std::vector<std::pair<Vertex, Vertex>> edges_;
  // Duplicate tracking is materialized lazily on the first add_edge_once
  // call, so generators that never use it pay nothing.
  std::unordered_set<std::uint64_t> seen_;
  bool seen_active_ = false;
};

}  // namespace rumor

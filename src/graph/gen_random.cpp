// Random graph generators.
#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace rumor::gen {

namespace {

[[nodiscard]] std::uint64_t edge_key(Vertex u, Vertex v) {
  const auto lo = static_cast<std::uint64_t>(std::min(u, v));
  const auto hi = static_cast<std::uint64_t>(std::max(u, v));
  return (hi << 32) | lo;
}

// One configuration-model draw followed by edge-swap repair. Returns edges
// of a simple graph, or an empty vector if repair stalled (caller restarts).
std::vector<std::pair<Vertex, Vertex>> pairing_with_repair(Vertex n,
                                                           std::uint32_t d,
                                                           Rng& rng) {
  std::vector<Vertex> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (Vertex v = 0; v < n; ++v) {
    for (std::uint32_t i = 0; i < d; ++i) stubs.push_back(v);
  }
  // Fisher-Yates shuffle, then pair consecutive stubs.
  for (std::size_t i = stubs.size() - 1; i > 0; --i) {
    std::swap(stubs[i], stubs[rng.below(i + 1)]);
  }

  const std::size_t m = stubs.size() / 2;
  std::vector<std::pair<Vertex, Vertex>> edges(m);
  std::unordered_map<std::uint64_t, std::uint32_t> multiplicity;
  multiplicity.reserve(m * 2);
  for (std::size_t e = 0; e < m; ++e) {
    edges[e] = {stubs[2 * e], stubs[2 * e + 1]};
    ++multiplicity[edge_key(edges[e].first, edges[e].second)];
  }

  auto is_bad = [&](std::size_t e) {
    const auto [u, v] = edges[e];
    return u == v || multiplicity[edge_key(u, v)] > 1;
  };

  std::vector<std::size_t> bad;
  for (std::size_t e = 0; e < m; ++e) {
    if (is_bad(e)) bad.push_back(e);
  }

  // Repair by random edge swaps: take a bad edge (u,v) and a uniformly
  // random partner edge (x,y); replace with (u,x),(v,y). Accept only if both
  // replacements are simple. Each accepted swap strictly reduces the
  // multiset of violations with high probability; a stall cap triggers a
  // full restart so the loop always terminates.
  std::size_t attempts = 0;
  const std::size_t max_attempts = 200 * (bad.size() + 1) + 10000;
  while (!bad.empty()) {
    if (++attempts > max_attempts) return {};
    const std::size_t bi = bad.size() - 1;
    const std::size_t e = bad[bi];
    if (!is_bad(e)) {  // repaired as a side effect of an earlier swap
      bad.pop_back();
      continue;
    }
    const std::size_t partner = rng.below(m);
    if (partner == e) continue;
    auto [u, v] = edges[e];
    auto [x, y] = edges[partner];
    if (rng.coin()) std::swap(x, y);  // both swap orientations reachable

    if (u == x || v == y) continue;  // would create self loops
    const std::uint64_t new1 = edge_key(u, x);
    const std::uint64_t new2 = edge_key(v, y);
    // Count the would-be multiplicities after removal of the two old edges.
    auto mult_after_removal = [&](std::uint64_t key) {
      std::uint32_t c = 0;
      if (auto it = multiplicity.find(key); it != multiplicity.end()) {
        c = it->second;
      }
      if (key == edge_key(edges[e].first, edges[e].second)) --c;
      if (key == edge_key(edges[partner].first, edges[partner].second)) --c;
      return c;
    };
    if (mult_after_removal(new1) > 0) continue;
    if (new2 != new1 && mult_after_removal(new2) > 0) continue;
    if (new1 == new2) continue;  // the two replacements would duplicate

    // Apply the swap.
    auto decrement = [&](Vertex a, Vertex b) {
      auto it = multiplicity.find(edge_key(a, b));
      RUMOR_CHECK(it != multiplicity.end() && it->second > 0);
      --it->second;
    };
    decrement(edges[e].first, edges[e].second);
    decrement(edges[partner].first, edges[partner].second);
    edges[e] = {u, x};
    edges[partner] = {v, y};
    ++multiplicity[new1];
    ++multiplicity[new2];
    if (!is_bad(e)) bad.pop_back();
    if (is_bad(partner)) bad.push_back(partner);
  }
  return edges;
}

}  // namespace

Graph random_regular(Vertex n, std::uint32_t d, Rng& rng) {
  RUMOR_REQUIRE(n >= 2);
  RUMOR_REQUIRE(d >= 1 && d < n);
  RUMOR_REQUIRE((static_cast<std::uint64_t>(n) * d) % 2 == 0);

  for (;;) {
    auto edges = pairing_with_repair(n, d, rng);
    if (edges.empty()) continue;  // repair stalled; redraw
    Graph g(n, edges);
    // d >= 3 random regular graphs are connected w.h.p.; resample the rare
    // exceptions (and the common ones for d <= 2) so callers always get a
    // usable broadcast substrate.
    if (is_connected(g)) return g;
  }
}

Graph erdos_renyi_connected(Vertex n, double p, Rng& rng) {
  RUMOR_REQUIRE(n >= 2);
  RUMOR_REQUIRE(p > 0.0 && p <= 1.0);

  for (;;) {
    GraphBuilder b(n);
    // Geometric skipping over the linearized strictly-upper-triangular pair
    // index space: O(m + n) per draw instead of O(n^2).
    const double log1mp = std::log1p(-p);
    // Geometric(p) number of skipped pairs before the next present edge.
    auto gap = [&]() -> std::uint64_t {
      if (p >= 1.0) return 0;
      const double u = rng.uniform01();
      return static_cast<std::uint64_t>(std::log1p(-u) / log1mp);
    };
    const std::uint64_t total = static_cast<std::uint64_t>(n) * (n - 1) / 2;
    Vertex row = 0;
    std::uint64_t row_start = 0;  // linear index of pair (row, row+1)
    for (std::uint64_t idx = gap(); idx < total; idx += 1 + gap()) {
      // Advance to the row containing idx.
      while (idx >= row_start + (n - 1 - row)) {
        row_start += n - 1 - row;
        ++row;
      }
      const auto col = static_cast<Vertex>(row + 1 + (idx - row_start));
      b.add_edge(row, col);
    }
    Graph g = b.build();
    if (is_connected(g)) return g;
  }
}

}  // namespace rumor::gen

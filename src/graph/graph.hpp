// Immutable undirected graph behind one accessor API, three storage backends.
//
// This is the substrate every protocol runs on. Design points:
//  * Vertices are dense uint32 ids [0, n).
//  * Three backends (see GraphBackend):
//      - owned: in-RAM CSR arrays, built from an edge list (the original
//        behavior; GraphBuilder and the generators produce these).
//      - implicit: star/cycle/complete/grid/torus/circulant synthesize
//        degree/neighbor/edge-id arithmetically from an ImplicitDesc —
//        O(1) memory at any n (see graph/implicit.hpp).
//      - mapped: CSR arrays borrowed from an external owner, typically a
//        memory-mapped cache file (see graph/file_graph.hpp); a shared
//        keep-alive handle pins the mapping.
//    Copies are cheap: owned and mapped storage is shared, never deep-copied.
//  * Adjacency enumerates in sorted order on every backend: neighbor lists
//    ascending, which makes structural tests exact and deterministic, and —
//    because the implicit closed forms reproduce the same order — keeps
//    seeded trajectories byte-identical across backends.
//  * Every directed adjacency slot carries the id of its undirected edge
//    (edge ids dense in [0, m), equal to the lexicographic rank of the
//    (min, max) endpoint pair), so simulators can count per-edge traffic in
//    O(1) — needed for the paper's "locally fair bandwidth" experiments
//    (E11).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "graph/implicit.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace rumor {

using Vertex = std::uint32_t;
using EdgeId = std::uint32_t;

constexpr Vertex kNoVertex = 0xFFFFFFFFu;

enum class GraphBackend : std::uint8_t {
  owned,     // in-RAM CSR vectors
  implicit,  // arithmetic adjacency, no arrays
  mapped,    // borrowed CSR arrays (mmap'd cache file)
};

[[nodiscard]] constexpr const char* graph_backend_name(GraphBackend b) {
  switch (b) {
    case GraphBackend::owned: return "owned-csr";
    case GraphBackend::implicit: return "implicit";
    case GraphBackend::mapped: return "mmap-csr";
  }
  return "?";
}

// Structural flags derived from a whole-graph traversal, memoized per graph
// (see Graph::properties()). Deriving options from these — notably
// LazyMode::auto_bipartite — costs O(1) per trial instead of a BFS.
// Implicit and mapped graphs arrive with the answers precomputed.
struct GraphProperties {
  bool connected = false;  // empty graph counts as NOT connected
  bool bipartite = false;  // empty graph is vacuously two-colorable
  bool regular = false;
  bool degrees_all_pow2 = false;
};

// Borrowed raw view of a graph's CSR arrays for batched kernels that have
// already validated their inputs at the process boundary. Lifetime is tied
// to the owning Graph. Only materialized backends (owned, mapped) have one;
// implicit graphs dispatch through graph/access.hpp instead.
struct CsrView {
  const std::uint32_t* offsets;  // n + 1 entries
  const Vertex* neighbors;       // 2m entries, sorted per vertex
  const EdgeId* edge_ids;        // 2m entries
  Vertex n;
};

// Payload handed to Graph::from_external by the mapped backend: borrowed
// CSR arrays plus the precomputed structural summary the cache stores, and
// a keep-alive handle that owns the arrays (the mapping).
struct ExternalCsr {
  const std::uint32_t* offsets = nullptr;      // n + 1
  const Vertex* neighbors = nullptr;           // 2m, sorted per vertex
  const EdgeId* edge_ids = nullptr;            // 2m
  const std::uint32_t* fwd_offsets = nullptr;  // n + 1: # edges with min < u
  Vertex n = 0;
  std::uint64_t m = 0;
  std::uint32_t min_degree = 0;
  std::uint32_t max_degree = 0;
  bool degrees_all_pow2 = false;
  GraphProperties props;
  std::shared_ptr<const void> keep_alive;
};

class Graph {
 public:
  // Constructs an owned-CSR graph from an undirected edge list. Requires:
  // no self loops, no duplicate edges (in either orientation), endpoints <
  // num_vertices. Prefer GraphBuilder, which validates and reports good
  // errors. Huge edge lists (>= 2^22 edges) build through the sharded
  // path below automatically when the ambient shard pool has workers.
  Graph(Vertex num_vertices, std::span<const std::pair<Vertex, Vertex>> edges);

  // As the constructor, but builds the CSR arrays with `shards` parallel
  // range partitions fanned over shard_pool() — the same shard_range
  // partition the sharded round kernels use, so each worker first-touches
  // exactly the row range it will later step (NUMA page placement follows
  // the compute partition). Content is byte-identical to the serial
  // constructor for every width; shards <= 1 IS the serial path.
  [[nodiscard]] static Graph build_owned(
      Vertex num_vertices, std::span<const std::pair<Vertex, Vertex>> edges,
      std::uint32_t shards);

  // Implicit backend: adjacency synthesized from the family closed forms.
  // `desc` must come from make_implicit_desc (kind != none).
  [[nodiscard]] static Graph make_implicit(const ImplicitDesc& desc);

  // Mapped backend: adjacency borrowed from `ext` (typically an mmap'd
  // cache file pinned by ext.keep_alive).
  [[nodiscard]] static Graph from_external(ExternalCsr ext);

  [[nodiscard]] GraphBackend backend() const { return backend_; }
  [[nodiscard]] bool is_implicit() const {
    return backend_ == GraphBackend::implicit;
  }
  // Valid only when is_implicit(); kernels dispatch on it via
  // graph/access.hpp.
  [[nodiscard]] const ImplicitDesc& implicit_desc() const { return implicit_; }

  [[nodiscard]] Vertex num_vertices() const { return n_; }
  [[nodiscard]] std::size_t num_edges() const { return m_; }

  [[nodiscard]] std::uint32_t degree(Vertex v) const {
    RUMOR_CHECK(v < n_);
    return degree_unchecked(v);
  }

  // Sorted neighbor list of v. Materialized backends only — implicit
  // graphs have no array to span; enumerate via neighbor(v, i) instead.
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const {
    RUMOR_CHECK(v < n_);
    RUMOR_CHECK(offsets_p_ != nullptr);
    return {neighbors_p_ + offsets_p_[v], neighbors_p_ + offsets_p_[v + 1]};
  }

  // i-th neighbor of v (i < degree(v)); lists enumerate ascending.
  [[nodiscard]] Vertex neighbor(Vertex v, std::uint32_t i) const {
    RUMOR_CHECK(i < degree(v));
    return neighbor_unchecked(v, i);
  }

  // Undirected edge id of the i-th adjacency slot of v; ids are dense in
  // [0, num_edges()).
  [[nodiscard]] EdgeId edge_id(Vertex v, std::uint32_t i) const {
    RUMOR_CHECK(i < degree(v));
    return edge_id_unchecked(v, i);
  }

  // Endpoints (u, v) with u < v of an undirected edge id. O(1) for owned
  // graphs, O(log n) for implicit and mapped (offset binary search).
  [[nodiscard]] std::pair<Vertex, Vertex> edge_endpoints(EdgeId e) const;

  // Uniform random neighbor of v; requires degree(v) > 0. This is the single
  // primitive all four protocols are built from.
  [[nodiscard]] Vertex random_neighbor(Vertex v, Rng& rng) const {
    const std::uint32_t deg = degree(v);
    RUMOR_CHECK(deg > 0);
    return neighbor_unchecked(v, static_cast<std::uint32_t>(rng.below(deg)));
  }

  // As above but also reports the adjacency slot chosen (for edge tracing).
  [[nodiscard]] std::pair<Vertex, std::uint32_t> random_neighbor_slot(
      Vertex v, Rng& rng) const {
    const std::uint32_t deg = degree(v);
    RUMOR_CHECK(deg > 0);
    const auto slot = static_cast<std::uint32_t>(rng.below(deg));
    return {neighbor_unchecked(v, slot), slot};
  }

  // ---- Unchecked hot-path kernels -------------------------------------
  //
  // Identical semantics to the checked accessors above minus the
  // RUMOR_CHECK bounds branches, for inner loops that have validated their
  // arguments once at the process boundary (every vertex a simulator holds
  // is < n by construction). The checked accessors remain the public API;
  // these exist so per-step costs are loads and arithmetic only. The
  // backend test is a single perfectly predicted branch; kernels that want
  // it hoisted out of the loop entirely dispatch an access policy once per
  // round via graph/access.hpp. Each random_* variant consumes the RNG
  // exactly like its checked twin, so switching paths (or backends) cannot
  // change a seeded trajectory.

  [[nodiscard]] std::uint32_t degree_unchecked(Vertex v) const {
    if (backend_ == GraphBackend::implicit) {
      return implicit_degree(implicit_, v);
    }
    return offsets_p_[v + 1] - offsets_p_[v];
  }

  // Materialized backends only, like neighbors().
  [[nodiscard]] std::span<const Vertex> neighbors_unchecked(Vertex v) const {
    return {neighbors_p_ + offsets_p_[v], neighbors_p_ + offsets_p_[v + 1]};
  }

  [[nodiscard]] Vertex neighbor_unchecked(Vertex v, std::uint32_t i) const {
    if (backend_ == GraphBackend::implicit) {
      return implicit_neighbor(implicit_, v, i);
    }
    return neighbors_p_[offsets_p_[v] + i];
  }

  [[nodiscard]] EdgeId edge_id_unchecked(Vertex v, std::uint32_t i) const {
    if (backend_ == GraphBackend::implicit) {
      return implicit_edge_id(implicit_, v, i);
    }
    return edge_ids_p_[offsets_p_[v] + i];
  }

  [[nodiscard]] Vertex random_neighbor_unchecked(Vertex v, Rng& rng) const {
    if (backend_ == GraphBackend::implicit) {
      return implicit_neighbor(
          implicit_, v,
          static_cast<std::uint32_t>(rng.below(implicit_degree(implicit_, v))));
    }
    const std::uint32_t lo = offsets_p_[v];
    return neighbors_p_[lo + rng.below(offsets_p_[v + 1] - lo)];
  }

  [[nodiscard]] std::pair<Vertex, std::uint32_t> random_neighbor_slot_unchecked(
      Vertex v, Rng& rng) const {
    const auto slot =
        static_cast<std::uint32_t>(rng.below(degree_unchecked(v)));
    return {neighbor_unchecked(v, slot), slot};
  }

  // Raw CSR arrays for the batched walk kernel. Materialized backends only;
  // implicit graphs take the access-policy path (graph/access.hpp).
  [[nodiscard]] CsrView csr() const {
    RUMOR_CHECK(offsets_p_ != nullptr);
    return {offsets_p_, neighbors_p_, edge_ids_p_, n_};
  }

  // True iff every degree is a (positive) power of two — the regular-graph
  // bench families — enabling the shift-based neighbor-draw fast path.
  [[nodiscard]] bool degrees_all_pow2() const { return degrees_all_pow2_; }

  // Process-unique id (monotone across all Graph constructions), used to
  // key per-graph caches safely across graph rebuilds at recycled
  // addresses.
  [[nodiscard]] std::uint64_t uid() const { return uid_; }

  // True iff {u, v} is an edge. O(log degree) by binary search.
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;

  // Sum of degrees == 2m. Kept as a method because the stationary
  // distribution of the simple random walk is deg(v) / (2m).
  [[nodiscard]] std::uint64_t total_degree() const { return 2 * m_; }

  [[nodiscard]] std::uint32_t min_degree() const { return min_degree_; }
  [[nodiscard]] std::uint32_t max_degree() const { return max_degree_; }
  [[nodiscard]] bool is_regular() const { return min_degree_ == max_degree_; }

  // Memoized structural properties. For owned graphs the first call runs
  // one BFS 2-coloring (computing connectivity and bipartiteness together);
  // implicit and mapped graphs are born with the answers, so every call is
  // O(1) and allocation-free — this is what makes per-trial option
  // resolution (LazyMode::auto_bipartite) free in the hot path. Thread-safe
  // (call_once); copies of a Graph share the cache.
  [[nodiscard]] const GraphProperties& properties() const;

  // True iff properties() has already been computed (assertable by tests
  // that require the per-trial path to be a pure cache hit).
  [[nodiscard]] bool properties_cached() const;

 private:
  struct PropertyState;  // once_flag + the computed GraphProperties

  Graph() = default;  // backends fill the fields via the static factories

  // Owned-CSR builders: init_owned validates and dispatches on the build
  // width (the public constructor picks it automatically; build_owned pins
  // it); the serial and sharded bodies produce byte-identical arrays.
  // finish_owned_build is the shared tail (degree stats from the finished
  // offsets array + uid).
  void init_owned(Vertex num_vertices,
                  std::span<const std::pair<Vertex, Vertex>> edges,
                  std::uint32_t build_width);
  void build_owned_serial(std::span<const std::pair<Vertex, Vertex>> edges);
  void build_owned_sharded(std::span<const std::pair<Vertex, Vertex>> edges,
                           std::uint32_t shards);
  void finish_owned_build(const std::uint32_t* offsets);

  void assign_uid();
  void prefill_properties(const GraphProperties& props);

  GraphBackend backend_ = GraphBackend::owned;
  ImplicitDesc implicit_{};  // kind == none unless backend_ == implicit
  Vertex n_ = 0;
  std::uint64_t m_ = 0;
  // Borrowed views into payload_ (owned backend) or an external mapping
  // pinned by payload_ (mapped backend); all null for implicit.
  const std::uint32_t* offsets_p_ = nullptr;             // n+1 entries
  const Vertex* neighbors_p_ = nullptr;                  // 2m, sorted
  const EdgeId* edge_ids_p_ = nullptr;                   // 2m
  const std::pair<Vertex, Vertex>* edge_list_p_ = nullptr;  // owned: m, u < v
  const std::uint32_t* fwd_offsets_p_ = nullptr;         // mapped: n+1
  std::uint32_t min_degree_ = 0;
  std::uint32_t max_degree_ = 0;
  bool degrees_all_pow2_ = false;
  std::uint64_t uid_ = 0;
  // Owns the arrays the pointers above borrow; shared (not deep-copied) so
  // copies of an immutable graph alias one storage block.
  std::shared_ptr<const void> payload_;
  // Shared (not deep-copied) so copies of an immutable graph reuse one
  // computation; pointer identity never leaks into results.
  std::shared_ptr<PropertyState> property_state_;
};

}  // namespace rumor

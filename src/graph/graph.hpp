// Immutable undirected graph in compressed-sparse-row form.
//
// This is the substrate every protocol runs on. Design points:
//  * Vertices are dense uint32 ids [0, n).
//  * Adjacency is CSR: offsets_[v] .. offsets_[v+1] index into neighbors_.
//    Neighbor lists are sorted, which makes structural tests exact and
//    deterministic.
//  * Every directed adjacency slot carries the id of its undirected edge
//    (edge_ids_), so simulators can count per-edge traffic in O(1) —
//    needed for the paper's "locally fair bandwidth" experiments (E11).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace rumor {

using Vertex = std::uint32_t;
using EdgeId = std::uint32_t;

constexpr Vertex kNoVertex = 0xFFFFFFFFu;

// Structural flags derived from a whole-graph traversal, memoized per graph
// (see Graph::properties()). Deriving options from these — notably
// LazyMode::auto_bipartite — costs O(1) per trial instead of a BFS.
struct GraphProperties {
  bool connected = false;  // empty graph counts as NOT connected
  bool bipartite = false;  // empty graph is vacuously two-colorable
  bool regular = false;
  bool degrees_all_pow2 = false;
};

// Borrowed raw view of a graph's CSR arrays for batched kernels that have
// already validated their inputs at the process boundary. Lifetime is tied
// to the owning Graph.
struct CsrView {
  const std::uint32_t* offsets;  // n + 1 entries
  const Vertex* neighbors;       // 2m entries, sorted per vertex
  const EdgeId* edge_ids;        // 2m entries
  Vertex n;
};

class Graph {
 public:
  // Constructs from an undirected edge list. Requires: no self loops, no
  // duplicate edges (in either orientation), endpoints < num_vertices.
  // Prefer GraphBuilder, which validates and reports good errors.
  Graph(Vertex num_vertices, std::span<const std::pair<Vertex, Vertex>> edges);

  [[nodiscard]] Vertex num_vertices() const { return n_; }
  [[nodiscard]] std::size_t num_edges() const { return m_; }

  [[nodiscard]] std::uint32_t degree(Vertex v) const {
    RUMOR_CHECK(v < n_);
    return offsets_[v + 1] - offsets_[v];
  }

  // Sorted neighbor list of v.
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const {
    RUMOR_CHECK(v < n_);
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  // i-th neighbor of v (i < degree(v)).
  [[nodiscard]] Vertex neighbor(Vertex v, std::uint32_t i) const {
    RUMOR_CHECK(i < degree(v));
    return neighbors_[offsets_[v] + i];
  }

  // Undirected edge id of the i-th adjacency slot of v; ids are dense in
  // [0, num_edges()).
  [[nodiscard]] EdgeId edge_id(Vertex v, std::uint32_t i) const {
    RUMOR_CHECK(i < degree(v));
    return edge_ids_[offsets_[v] + i];
  }

  // Endpoints (u, v) with u < v of an undirected edge id.
  [[nodiscard]] std::pair<Vertex, Vertex> edge_endpoints(EdgeId e) const {
    RUMOR_CHECK(e < m_);
    return edge_list_[e];
  }

  // Uniform random neighbor of v; requires degree(v) > 0. This is the single
  // primitive all four protocols are built from.
  [[nodiscard]] Vertex random_neighbor(Vertex v, Rng& rng) const {
    const std::uint32_t deg = degree(v);
    RUMOR_CHECK(deg > 0);
    return neighbors_[offsets_[v] + rng.below(deg)];
  }

  // As above but also reports the adjacency slot chosen (for edge tracing).
  [[nodiscard]] std::pair<Vertex, std::uint32_t> random_neighbor_slot(
      Vertex v, Rng& rng) const {
    const std::uint32_t deg = degree(v);
    RUMOR_CHECK(deg > 0);
    const auto slot = static_cast<std::uint32_t>(rng.below(deg));
    return {neighbors_[offsets_[v] + slot], slot};
  }

  // ---- Unchecked hot-path kernels -------------------------------------
  //
  // Identical semantics to the checked accessors above minus the
  // RUMOR_CHECK bounds branches, for inner loops that have validated their
  // arguments once at the process boundary (every vertex a simulator holds
  // is < n by construction). The checked accessors remain the public API;
  // these exist so per-step costs are loads and arithmetic only. Each
  // random_* variant consumes the RNG exactly like its checked twin, so
  // switching paths cannot change a seeded trajectory.

  [[nodiscard]] std::uint32_t degree_unchecked(Vertex v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  [[nodiscard]] std::span<const Vertex> neighbors_unchecked(Vertex v) const {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] Vertex neighbor_unchecked(Vertex v, std::uint32_t i) const {
    return neighbors_[offsets_[v] + i];
  }

  [[nodiscard]] EdgeId edge_id_unchecked(Vertex v, std::uint32_t i) const {
    return edge_ids_[offsets_[v] + i];
  }

  [[nodiscard]] Vertex random_neighbor_unchecked(Vertex v, Rng& rng) const {
    return neighbors_[offsets_[v] + rng.below(degree_unchecked(v))];
  }

  [[nodiscard]] std::pair<Vertex, std::uint32_t> random_neighbor_slot_unchecked(
      Vertex v, Rng& rng) const {
    const auto slot =
        static_cast<std::uint32_t>(rng.below(degree_unchecked(v)));
    return {neighbors_[offsets_[v] + slot], slot};
  }

  // Raw CSR arrays for the batched walk kernel.
  [[nodiscard]] CsrView csr() const {
    return {offsets_.data(), neighbors_.data(), edge_ids_.data(), n_};
  }

  // True iff every degree is a (positive) power of two — the regular-graph
  // bench families — enabling the shift-based neighbor-draw fast path.
  [[nodiscard]] bool degrees_all_pow2() const { return degrees_all_pow2_; }

  // Process-unique id (monotone across all Graph constructions), used to
  // key per-graph caches safely across graph rebuilds at recycled
  // addresses.
  [[nodiscard]] std::uint64_t uid() const { return uid_; }

  // True iff {u, v} is an edge. O(log degree) by binary search.
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;

  // Sum of degrees == 2m. Kept as a method because the stationary
  // distribution of the simple random walk is deg(v) / (2m).
  [[nodiscard]] std::uint64_t total_degree() const { return 2 * m_; }

  [[nodiscard]] std::uint32_t min_degree() const { return min_degree_; }
  [[nodiscard]] std::uint32_t max_degree() const { return max_degree_; }
  [[nodiscard]] bool is_regular() const { return min_degree_ == max_degree_; }

  // Memoized structural properties. The first call runs one BFS 2-coloring
  // (computing connectivity and bipartiteness together); every later call is
  // O(1) and allocation-free — this is what makes per-trial option
  // resolution (LazyMode::auto_bipartite) free in the hot path. Thread-safe
  // (call_once); copies of a Graph share the cache.
  [[nodiscard]] const GraphProperties& properties() const;

  // True iff properties() has already been computed (assertable by tests
  // that require the per-trial path to be a pure cache hit).
  [[nodiscard]] bool properties_cached() const;

 private:
  struct PropertyState;  // once_flag + the computed GraphProperties

  Vertex n_ = 0;
  std::size_t m_ = 0;
  std::vector<std::uint32_t> offsets_;              // n+1 entries
  std::vector<Vertex> neighbors_;                   // 2m entries, sorted per vertex
  std::vector<EdgeId> edge_ids_;                    // 2m entries
  std::vector<std::pair<Vertex, Vertex>> edge_list_;  // m entries, u < v
  std::uint32_t min_degree_ = 0;
  std::uint32_t max_degree_ = 0;
  bool degrees_all_pow2_ = false;
  std::uint64_t uid_ = 0;
  // Shared (not deep-copied) so copies of an immutable graph reuse one
  // computation; pointer identity never leaks into results.
  std::shared_ptr<PropertyState> property_state_;
};

}  // namespace rumor

#include "graph/properties.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "support/rng.hpp"

namespace rumor {

namespace {

constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();

}  // namespace

std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex source) {
  // Also rejects every source on the empty graph (0 vertices): there is no
  // valid vertex to start from.
  RUMOR_REQUIRE(source < g.num_vertices());
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreached);
  std::queue<Vertex> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop();
    const std::uint32_t du = g.degree(u);
    for (std::uint32_t i = 0; i < du; ++i) {
      const Vertex v = g.neighbor(u, i);
      if (dist[v] == kUnreached) {
        dist[v] = dist[u] + 1;
        queue.push(v);
      }
    }
  }
  return dist;
}

bool is_connected(const Graph& g) {
  // Memoized in the graph (one traversal ever); guarded for the empty and
  // single-vertex graphs, which must not BFS from a nonexistent vertex 0.
  return g.properties().connected;
}

bool is_bipartite(const Graph& g) {
  return g.properties().bipartite;
}

std::uint32_t eccentricity(const Graph& g, Vertex source) {
  const auto dist = bfs_distances(g, source);
  std::uint32_t ecc = 0;
  for (std::uint32_t d : dist) {
    RUMOR_REQUIRE(d != kUnreached);  // must be connected
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter_exact(const Graph& g) {
  std::uint32_t diam = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    diam = std::max(diam, eccentricity(g, v));
  }
  return diam;
}

std::uint32_t diameter_lower_bound(const Graph& g, std::uint32_t samples,
                                   std::uint64_t seed) {
  RUMOR_REQUIRE(samples >= 1);
  Rng rng(seed);
  std::uint32_t best = 0;
  Vertex start = static_cast<Vertex>(rng.below(g.num_vertices()));
  for (std::uint32_t s = 0; s < samples; ++s) {
    const auto dist = bfs_distances(g, start);
    Vertex farthest = start;
    std::uint32_t far_dist = 0;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      RUMOR_REQUIRE(dist[v] != kUnreached);
      if (dist[v] > far_dist) {
        far_dist = dist[v];
        farthest = v;
      }
    }
    best = std::max(best, far_dist);
    start = farthest;  // double-sweep: next BFS from the farthest vertex
  }
  return best;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  s.min = g.min_degree();
  s.max = g.max_degree();
  s.mean = static_cast<double>(g.total_degree()) /
           static_cast<double>(g.num_vertices());
  return s;
}

}  // namespace rumor

// Deterministic regular families used by the Theorem 1/23/24/25 experiments.
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace rumor::gen {

Graph hypercube(std::uint32_t dim) {
  RUMOR_REQUIRE(dim >= 1 && dim < 31);
  const Vertex n = Vertex{1} << dim;
  GraphBuilder b(n);
  for (Vertex v = 0; v < n; ++v) {
    for (std::uint32_t bit = 0; bit < dim; ++bit) {
      const Vertex mask = Vertex{1} << bit;
      if ((v & mask) == 0) b.add_edge(v, v | mask);
    }
  }
  return b.build();
}

Graph circulant(Vertex n, std::uint32_t k) {
  RUMOR_REQUIRE(k >= 1);
  RUMOR_REQUIRE(n >= 2 * k + 2);
  GraphBuilder b(n);
  for (Vertex i = 0; i < n; ++i) {
    for (std::uint32_t j = 1; j <= k; ++j) {
      // Each undirected edge {i, i+j} has a unique forward representation
      // because j < n/2.
      b.add_edge(i, (i + j) % n);
    }
  }
  return b.build();
}

namespace {

Graph clique_chain(Vertex groups, Vertex k, bool closed) {
  RUMOR_REQUIRE(groups >= 3 && k >= 2);
  const Vertex n = groups * k;
  GraphBuilder b(n);
  std::vector<Vertex> members(k);
  for (Vertex g = 0; g < groups; ++g) {
    for (Vertex i = 0; i < k; ++i) members[i] = g * k + i;
    b.add_clique(members);
  }
  const Vertex last = closed ? groups : groups - 1;
  for (Vertex g = 0; g < last; ++g) {
    const Vertex next = (g + 1) % groups;
    for (Vertex i = 0; i < k; ++i) {
      b.add_edge(g * k + i, next * k + i);  // perfect matching to next group
    }
  }
  return b.build();
}

}  // namespace

Graph clique_ring(Vertex groups, Vertex k) {
  return clique_chain(groups, k, /*closed=*/true);
}

Graph clique_path(Vertex groups, Vertex k) {
  return clique_chain(groups, k, /*closed=*/false);
}

}  // namespace rumor::gen

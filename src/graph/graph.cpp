#include "graph/graph.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>

#include "support/thread_pool.hpp"

namespace rumor {

struct Graph::PropertyState {
  std::once_flag once;
  std::atomic<bool> ready{false};
  GraphProperties props;
};

namespace {

// Backing store for the owned backend; shared by copies via payload_.
struct OwnedCsr {
  std::vector<std::uint32_t> offsets;                 // n+1 entries
  std::vector<Vertex> neighbors;                      // 2m, sorted per vertex
  std::vector<EdgeId> edge_ids;                       // 2m
  std::vector<std::pair<Vertex, Vertex>> edge_list;   // m entries, u < v
};

// Backing store for the sharded build path. Raw arrays instead of vectors:
// vector::resize zero-fills every page on the allocating thread, which
// would defeat NUMA first-touch placement — make_unique_for_overwrite
// leaves the CSR pages untouched until the per-shard passes write them.
struct ShardedCsr {
  std::unique_ptr<std::uint32_t[]> offsets;                // n+1 entries
  std::unique_ptr<Vertex[]> neighbors;                     // 2m, sorted
  std::unique_ptr<EdgeId[]> edge_ids;                      // 2m
  std::unique_ptr<std::pair<Vertex, Vertex>[]> edge_list;  // m, u < v
};

// Edge lists at or above this size build through the sharded path when the
// public constructor picks the width (explicit build_owned widths are never
// overridden). Matches the spirit of kShardAutoThreshold: only graphs big
// enough that page placement and sort time matter pay the fan-out.
constexpr std::size_t kShardedBuildEdgeThreshold = std::size_t{1} << 22;

// Deterministic parallel sort: per-shard std::sort over the shard_range
// chunks, then log2(width) levels of pairwise in-place merges. The result
// is THE sorted order (comparison keys are unique in both uses), so the
// output is independent of width and worker count by construction.
template <class T>
void sharded_sort(ThreadPool& pool, T* data, std::size_t count,
                  std::uint32_t width) {
  std::vector<std::size_t> cur(width + 1);
  for (std::uint32_t s = 0; s < width; ++s) {
    cur[s] = ThreadPool::shard_range(count, width, s).first;
  }
  cur[width] = count;
  pool.parallel_for_ranges(
      width, width, [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t j = begin; j < end; ++j) {
          std::sort(data + cur[j], data + cur[j + 1]);
        }
      });
  while (cur.size() > 2) {
    const std::size_t runs = cur.size() - 1;
    const std::size_t pairs = runs / 2;
    pool.parallel_for_ranges(
        pairs, pairs, [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t q = begin; q < end; ++q) {
            std::inplace_merge(data + cur[2 * q], data + cur[2 * q + 1],
                               data + cur[2 * q + 2]);
          }
        });
    std::vector<std::size_t> next;
    next.reserve(pairs + 2);
    for (std::size_t q = 0; q <= pairs; ++q) next.push_back(cur[2 * q]);
    if (runs % 2 != 0) next.push_back(count);
    cur = std::move(next);
  }
}

}  // namespace

void Graph::assign_uid() {
  static std::atomic<std::uint64_t> next_uid{1};
  uid_ = next_uid.fetch_add(1, std::memory_order_relaxed);
}

void Graph::prefill_properties(const GraphProperties& props) {
  property_state_ = std::make_shared<PropertyState>();
  PropertyState& state = *property_state_;
  std::call_once(state.once, [&] {
    state.props = props;
    state.ready.store(true, std::memory_order_release);
  });
}

Graph::Graph(Vertex num_vertices,
             std::span<const std::pair<Vertex, Vertex>> edges) {
  // Auto width: huge edge lists build sharded over the ambient pool (the
  // first shard_pool() call constructs the global pool — acceptable at
  // this size, the build itself dwarfs it); everything else stays serial
  // and never touches the pool.
  std::uint32_t width = 1;
  if (edges.size() >= kShardedBuildEdgeThreshold) {
    width = static_cast<std::uint32_t>(shard_pool().worker_count());
  }
  init_owned(num_vertices, edges, width);
}

Graph Graph::build_owned(Vertex num_vertices,
                         std::span<const std::pair<Vertex, Vertex>> edges,
                         std::uint32_t shards) {
  Graph g;
  g.init_owned(num_vertices, edges, std::max<std::uint32_t>(shards, 1));
  return g;
}

void Graph::init_owned(Vertex num_vertices,
                       std::span<const std::pair<Vertex, Vertex>> edges,
                       std::uint32_t build_width) {
  n_ = num_vertices;
  m_ = edges.size();
  property_state_ = std::make_shared<PropertyState>();
  // The empty graph (no vertices, no edges) is representable so property
  // queries have a well-defined answer; simulators still require a valid
  // source vertex and therefore reject it.
  RUMOR_REQUIRE(num_vertices > 0 || edges.empty());
  RUMOR_REQUIRE(edges.size() < std::numeric_limits<EdgeId>::max() / 2);
  if (build_width > 1 && !edges.empty()) {
    build_owned_sharded(edges, build_width);
  } else {
    build_owned_serial(edges);
  }
}

void Graph::build_owned_serial(std::span<const std::pair<Vertex, Vertex>> edges) {
  auto owned = std::make_shared<OwnedCsr>();
  owned->edge_list.reserve(m_);
  owned->offsets.assign(static_cast<std::size_t>(n_) + 1, 0);
  auto& offsets = owned->offsets;
  auto& edge_list = owned->edge_list;

  for (const auto& [u, v] : edges) {
    RUMOR_REQUIRE(u < n_ && v < n_);
    RUMOR_REQUIRE(u != v);  // no self loops
    edge_list.emplace_back(std::min(u, v), std::max(u, v));
    ++offsets[u + 1];
    ++offsets[v + 1];
  }

  // Canonical edge order: sort endpoint pairs; also detects duplicates.
  std::sort(edge_list.begin(), edge_list.end());
  for (std::size_t e = 1; e < edge_list.size(); ++e) {
    RUMOR_REQUIRE(edge_list[e] != edge_list[e - 1]);  // no multi-edges
  }

  for (std::size_t v = 0; v < n_; ++v) offsets[v + 1] += offsets[v];

  owned->neighbors.resize(2 * m_);
  owned->edge_ids.resize(2 * m_);
  auto& neighbors = owned->neighbors;
  auto& edge_ids = owned->edge_ids;
  std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t e = 0; e < edge_list.size(); ++e) {
    const auto [u, v] = edge_list[e];
    neighbors[cursor[u]] = v;
    edge_ids[cursor[u]] = static_cast<EdgeId>(e);
    ++cursor[u];
    neighbors[cursor[v]] = u;
    edge_ids[cursor[v]] = static_cast<EdgeId>(e);
    ++cursor[v];
  }

  // With edge_list sorted by (u, v) and u < v, each vertex w receives its
  // back-neighbors (all < w) before its forward-neighbors (all > w), each
  // group ascending — so lists are already sorted and this insertion sort
  // runs in linear time. It is kept as a guard so the sortedness invariant
  // holds even if the fill order above changes.
  for (Vertex v = 0; v < n_; ++v) {
    const std::uint32_t lo = offsets[v];
    const std::uint32_t hi = offsets[v + 1];
    // insertion sort on the (neighbor, edge id) pairs; lists are nearly
    // sorted already, and this avoids a temporary pair buffer.
    for (std::uint32_t i = lo + 1; i < hi; ++i) {
      Vertex nv = neighbors[i];
      EdgeId ne = edge_ids[i];
      std::uint32_t j = i;
      while (j > lo && neighbors[j - 1] > nv) {
        neighbors[j] = neighbors[j - 1];
        edge_ids[j] = edge_ids[j - 1];
        --j;
      }
      neighbors[j] = nv;
      edge_ids[j] = ne;
    }
  }

  offsets_p_ = offsets.data();
  neighbors_p_ = neighbors.data();
  edge_ids_p_ = edge_ids.data();
  edge_list_p_ = edge_list.data();
  payload_ = std::move(owned);
  finish_owned_build(offsets_p_);
}

// Sharded owned-CSR build: every pass fans the same shard_range partition
// the round kernels use over shard_pool(), so shard s first-touches exactly
// the offset/neighbor/edge-id row range it will later step — on a NUMA
// machine the pages land on the worker's node instead of all on the
// allocating thread's. The arrays are byte-identical to the serial build
// for every width: the sorted edge order and the sorted (v, u) reverse
// order are unique total orders, and the serial fill emits each row as
// [back-neighbors ascending][forward-neighbors ascending] — exactly the
// two runs the per-row pass concatenates.
void Graph::build_owned_sharded(
    std::span<const std::pair<Vertex, Vertex>> edges, std::uint32_t shards) {
  ThreadPool& pool = shard_pool();
  const std::size_t m = edges.size();
  const std::size_t n = n_;
  const std::uint32_t width = shards;

  auto owned = std::make_shared<ShardedCsr>();
  owned->offsets = std::make_unique_for_overwrite<std::uint32_t[]>(n + 1);
  owned->neighbors = std::make_unique_for_overwrite<Vertex[]>(2 * m);
  owned->edge_ids = std::make_unique_for_overwrite<EdgeId[]>(2 * m);
  owned->edge_list =
      std::make_unique_for_overwrite<std::pair<Vertex, Vertex>[]>(m);
  auto* el = owned->edge_list.get();
  auto* off = owned->offsets.get();
  auto* nbr = owned->neighbors.get();
  auto* eid = owned->edge_ids.get();

  // Validate + normalize to (min, max), parallel over the input order.
  pool.parallel_for_ranges(
      m, width, [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto [u, v] = edges[i];
          RUMOR_REQUIRE(u < n_ && v < n_);
          RUMOR_REQUIRE(u != v);  // no self loops
          el[i] = {std::min(u, v), std::max(u, v)};
        }
      });

  // Canonical edge order (edge id = lexicographic rank), then the
  // duplicate check parallelized over adjacent pairs.
  sharded_sort(pool, el, m, width);
  pool.parallel_for_ranges(
      m - 1, width, [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          RUMOR_REQUIRE(el[i + 1] != el[i]);  // no multi-edges
        }
      });

  // Reverse index sorted by (v, u): row w's back-neighbors (u < w,
  // ascending, with their edge ids) become one contiguous run per vertex.
  // Keys pack (v, u) into one uint64; pairs are unique, so the sort never
  // compares the payload edge id and the order is deterministic.
  auto rev = std::make_unique_for_overwrite<
      std::pair<std::uint64_t, std::uint32_t>[]>(m);
  pool.parallel_for_ranges(
      m, width, [&](std::size_t, std::size_t begin, std::size_t end) {
        for (std::size_t e = begin; e < end; ++e) {
          rev[e] = {(static_cast<std::uint64_t>(el[e].second) << 32) |
                        el[e].first,
                    static_cast<std::uint32_t>(e)};
        }
      });
  sharded_sort(pool, rev.get(), m, width);

  // Per-row degrees, written by the owning shard (this is the first touch
  // of the offsets pages). Each shard binary-searches its vertex range's
  // run starts once, then walks both sorted arrays linearly.
  const auto fwd_start = [&](Vertex v) {
    return static_cast<std::size_t>(
        std::lower_bound(el, el + m, std::pair<Vertex, Vertex>{v, 0}) - el);
  };
  const auto back_start = [&](Vertex v) {
    return static_cast<std::size_t>(
        std::lower_bound(rev.get(), rev.get() + m,
                         std::pair<std::uint64_t, std::uint32_t>{
                             static_cast<std::uint64_t>(v) << 32, 0}) -
        rev.get());
  };
  off[0] = 0;
  pool.parallel_for_ranges(
      n, width, [&](std::size_t, std::size_t begin, std::size_t end) {
        std::size_t e = fwd_start(static_cast<Vertex>(begin));
        std::size_t r = back_start(static_cast<Vertex>(begin));
        for (std::size_t v = begin; v < end; ++v) {
          std::uint32_t d = 0;
          while (e < m && el[e].first == v) {
            ++e;
            ++d;
          }
          while (r < m && (rev[r].first >> 32) == v) {
            ++r;
            ++d;
          }
          off[v + 1] = d;
        }
      });
  for (std::size_t v = 0; v < n; ++v) off[v + 1] += off[v];

  // Row fill, same partition: shard s writes (first-touches) exactly the
  // neighbor/edge-id range its round kernels will read.
  pool.parallel_for_ranges(
      n, width, [&](std::size_t, std::size_t begin, std::size_t end) {
        std::size_t e = fwd_start(static_cast<Vertex>(begin));
        std::size_t r = back_start(static_cast<Vertex>(begin));
        for (std::size_t v = begin; v < end; ++v) {
          std::uint32_t c = off[v];
          while (r < m && (rev[r].first >> 32) == v) {
            nbr[c] = static_cast<Vertex>(rev[r].first & 0xFFFFFFFFu);
            eid[c] = rev[r].second;
            ++c;
            ++r;
          }
          while (e < m && el[e].first == v) {
            nbr[c] = el[e].second;
            eid[c] = static_cast<EdgeId>(e);
            ++c;
            ++e;
          }
        }
      });

  offsets_p_ = off;
  neighbors_p_ = nbr;
  edge_ids_p_ = eid;
  edge_list_p_ = el;
  payload_ = std::move(owned);
  finish_owned_build(offsets_p_);
}

void Graph::finish_owned_build(const std::uint32_t* offsets) {
  min_degree_ = n_ > 0 ? std::numeric_limits<std::uint32_t>::max() : 0;
  max_degree_ = 0;
  degrees_all_pow2_ = n_ > 0;
  for (Vertex v = 0; v < n_; ++v) {
    const std::uint32_t d = offsets[v + 1] - offsets[v];
    min_degree_ = std::min(min_degree_, d);
    max_degree_ = std::max(max_degree_, d);
    degrees_all_pow2_ = degrees_all_pow2_ && d > 0 && (d & (d - 1)) == 0;
  }
  assign_uid();
}

Graph Graph::make_implicit(const ImplicitDesc& desc) {
  RUMOR_REQUIRE(desc.kind != ImplicitKind::none);
  RUMOR_REQUIRE(desc.n > 0);
  Graph g;
  g.backend_ = GraphBackend::implicit;
  g.implicit_ = desc;
  g.n_ = desc.n;
  g.m_ = desc.m;
  g.min_degree_ = desc.min_degree;
  g.max_degree_ = desc.max_degree;
  g.degrees_all_pow2_ = desc.degrees_all_pow2;
  GraphProperties props;
  props.connected = desc.connected;
  props.bipartite = desc.bipartite;
  props.regular = desc.min_degree == desc.max_degree;
  props.degrees_all_pow2 = desc.degrees_all_pow2;
  g.prefill_properties(props);
  g.assign_uid();
  return g;
}

Graph Graph::from_external(ExternalCsr ext) {
  RUMOR_REQUIRE(ext.offsets != nullptr && ext.neighbors != nullptr &&
                ext.edge_ids != nullptr && ext.fwd_offsets != nullptr);
  RUMOR_REQUIRE(ext.m < std::numeric_limits<EdgeId>::max() / 2);
  Graph g;
  g.backend_ = GraphBackend::mapped;
  g.n_ = ext.n;
  g.m_ = ext.m;
  g.offsets_p_ = ext.offsets;
  g.neighbors_p_ = ext.neighbors;
  g.edge_ids_p_ = ext.edge_ids;
  g.fwd_offsets_p_ = ext.fwd_offsets;
  g.min_degree_ = ext.min_degree;
  g.max_degree_ = ext.max_degree;
  g.degrees_all_pow2_ = ext.degrees_all_pow2;
  g.payload_ = std::move(ext.keep_alive);
  g.prefill_properties(ext.props);
  g.assign_uid();
  return g;
}

std::pair<Vertex, Vertex> Graph::edge_endpoints(EdgeId e) const {
  RUMOR_CHECK(e < m_);
  switch (backend_) {
    case GraphBackend::owned:
      return edge_list_p_[e];
    case GraphBackend::implicit:
      return implicit_edge_endpoints(implicit_, e);
    case GraphBackend::mapped: {
      // Owner u: the unique vertex with fwd_offsets[u] <= e <
      // fwd_offsets[u+1]; its forward neighbors sit after its
      // back-neighbors in the sorted row.
      Vertex lo = 0;
      Vertex hi = n_ - 1;
      while (lo < hi) {
        const Vertex mid = lo + (hi - lo) / 2;
        if (fwd_offsets_p_[mid + 1] > e) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      const std::uint32_t deg = offsets_p_[lo + 1] - offsets_p_[lo];
      const std::uint32_t fwd = fwd_offsets_p_[lo + 1] - fwd_offsets_p_[lo];
      const std::uint32_t back = deg - fwd;
      const Vertex v =
          neighbors_p_[offsets_p_[lo] + back + (e - fwd_offsets_p_[lo])];
      return {lo, v};
    }
  }
  return {0u, 0u};
}

const GraphProperties& Graph::properties() const {
  RUMOR_CHECK(property_state_ != nullptr);  // not moved-from
  PropertyState& state = *property_state_;
  std::call_once(state.once, [&] {
    GraphProperties p;
    p.regular = is_regular();
    p.degrees_all_pow2 = degrees_all_pow2_;
    // One BFS pass computes connectivity (all vertices reached from vertex
    // 0) and bipartiteness (2-coloring across every component) together.
    // 2 = uncolored; the scratch is allocated once per graph, never per
    // trial. Only owned graphs land here — implicit and mapped backends
    // prefill the state at construction.
    std::vector<std::uint8_t> color(n_, 2);
    std::vector<Vertex> queue;
    queue.reserve(n_);
    p.bipartite = true;
    std::size_t reached_from_zero = 0;
    for (Vertex start = 0; start < n_; ++start) {
      if (color[start] != 2) continue;
      color[start] = 0;
      queue.push_back(start);
      std::size_t head = 0;
      while (head < queue.size()) {
        const Vertex u = queue[head++];
        const std::uint32_t deg = degree_unchecked(u);
        for (std::uint32_t i = 0; i < deg; ++i) {
          const Vertex v = neighbor_unchecked(u, i);
          if (color[v] == 2) {
            color[v] = color[u] ^ 1;
            queue.push_back(v);
          } else if (color[v] == color[u]) {
            p.bipartite = false;
          }
        }
      }
      if (start == 0) reached_from_zero = queue.size();
      queue.clear();
    }
    // Convention: a single vertex is connected, the empty graph is not.
    p.connected = n_ > 0 && reached_from_zero == n_;
    state.props = p;
    state.ready.store(true, std::memory_order_release);
  });
  return state.props;
}

bool Graph::properties_cached() const {
  return property_state_ != nullptr &&
         property_state_->ready.load(std::memory_order_acquire);
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  RUMOR_REQUIRE(u < n_ && v < n_);
  // Binary search the sorted neighbor list of u; neighbor_unchecked makes
  // this backend-generic (implicit lists are synthesized, still sorted).
  std::uint32_t lo = 0;
  std::uint32_t hi = degree_unchecked(u);
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const Vertex w = neighbor_unchecked(u, mid);
    if (w == v) return true;
    if (w < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

}  // namespace rumor

#include "graph/graph.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>

namespace rumor {

struct Graph::PropertyState {
  std::once_flag once;
  std::atomic<bool> ready{false};
  GraphProperties props;
};

namespace {

// Backing store for the owned backend; shared by copies via payload_.
struct OwnedCsr {
  std::vector<std::uint32_t> offsets;                 // n+1 entries
  std::vector<Vertex> neighbors;                      // 2m, sorted per vertex
  std::vector<EdgeId> edge_ids;                       // 2m
  std::vector<std::pair<Vertex, Vertex>> edge_list;   // m entries, u < v
};

}  // namespace

void Graph::assign_uid() {
  static std::atomic<std::uint64_t> next_uid{1};
  uid_ = next_uid.fetch_add(1, std::memory_order_relaxed);
}

void Graph::prefill_properties(const GraphProperties& props) {
  property_state_ = std::make_shared<PropertyState>();
  PropertyState& state = *property_state_;
  std::call_once(state.once, [&] {
    state.props = props;
    state.ready.store(true, std::memory_order_release);
  });
}

Graph::Graph(Vertex num_vertices,
             std::span<const std::pair<Vertex, Vertex>> edges)
    : n_(num_vertices),
      m_(edges.size()),
      property_state_(std::make_shared<PropertyState>()) {
  // The empty graph (no vertices, no edges) is representable so property
  // queries have a well-defined answer; simulators still require a valid
  // source vertex and therefore reject it.
  RUMOR_REQUIRE(num_vertices > 0 || edges.empty());
  RUMOR_REQUIRE(edges.size() < std::numeric_limits<EdgeId>::max() / 2);

  auto owned = std::make_shared<OwnedCsr>();
  owned->edge_list.reserve(m_);
  owned->offsets.assign(static_cast<std::size_t>(n_) + 1, 0);
  auto& offsets = owned->offsets;
  auto& edge_list = owned->edge_list;

  for (const auto& [u, v] : edges) {
    RUMOR_REQUIRE(u < n_ && v < n_);
    RUMOR_REQUIRE(u != v);  // no self loops
    edge_list.emplace_back(std::min(u, v), std::max(u, v));
    ++offsets[u + 1];
    ++offsets[v + 1];
  }

  // Canonical edge order: sort endpoint pairs; also detects duplicates.
  std::sort(edge_list.begin(), edge_list.end());
  for (std::size_t e = 1; e < edge_list.size(); ++e) {
    RUMOR_REQUIRE(edge_list[e] != edge_list[e - 1]);  // no multi-edges
  }

  for (std::size_t v = 0; v < n_; ++v) offsets[v + 1] += offsets[v];

  owned->neighbors.resize(2 * m_);
  owned->edge_ids.resize(2 * m_);
  auto& neighbors = owned->neighbors;
  auto& edge_ids = owned->edge_ids;
  std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t e = 0; e < edge_list.size(); ++e) {
    const auto [u, v] = edge_list[e];
    neighbors[cursor[u]] = v;
    edge_ids[cursor[u]] = static_cast<EdgeId>(e);
    ++cursor[u];
    neighbors[cursor[v]] = u;
    edge_ids[cursor[v]] = static_cast<EdgeId>(e);
    ++cursor[v];
  }

  // With edge_list sorted by (u, v) and u < v, each vertex w receives its
  // back-neighbors (all < w) before its forward-neighbors (all > w), each
  // group ascending — so lists are already sorted and this insertion sort
  // runs in linear time. It is kept as a guard so the sortedness invariant
  // holds even if the fill order above changes.
  for (Vertex v = 0; v < n_; ++v) {
    const std::uint32_t lo = offsets[v];
    const std::uint32_t hi = offsets[v + 1];
    // insertion sort on the (neighbor, edge id) pairs; lists are nearly
    // sorted already, and this avoids a temporary pair buffer.
    for (std::uint32_t i = lo + 1; i < hi; ++i) {
      Vertex nv = neighbors[i];
      EdgeId ne = edge_ids[i];
      std::uint32_t j = i;
      while (j > lo && neighbors[j - 1] > nv) {
        neighbors[j] = neighbors[j - 1];
        edge_ids[j] = edge_ids[j - 1];
        --j;
      }
      neighbors[j] = nv;
      edge_ids[j] = ne;
    }
  }

  min_degree_ = n_ > 0 ? std::numeric_limits<std::uint32_t>::max() : 0;
  max_degree_ = 0;
  degrees_all_pow2_ = n_ > 0;
  for (Vertex v = 0; v < n_; ++v) {
    const std::uint32_t d = offsets[v + 1] - offsets[v];
    min_degree_ = std::min(min_degree_, d);
    max_degree_ = std::max(max_degree_, d);
    degrees_all_pow2_ = degrees_all_pow2_ && d > 0 && (d & (d - 1)) == 0;
  }

  offsets_p_ = offsets.data();
  neighbors_p_ = neighbors.data();
  edge_ids_p_ = edge_ids.data();
  edge_list_p_ = edge_list.data();
  payload_ = std::move(owned);
  assign_uid();
}

Graph Graph::make_implicit(const ImplicitDesc& desc) {
  RUMOR_REQUIRE(desc.kind != ImplicitKind::none);
  RUMOR_REQUIRE(desc.n > 0);
  Graph g;
  g.backend_ = GraphBackend::implicit;
  g.implicit_ = desc;
  g.n_ = desc.n;
  g.m_ = desc.m;
  g.min_degree_ = desc.min_degree;
  g.max_degree_ = desc.max_degree;
  g.degrees_all_pow2_ = desc.degrees_all_pow2;
  GraphProperties props;
  props.connected = desc.connected;
  props.bipartite = desc.bipartite;
  props.regular = desc.min_degree == desc.max_degree;
  props.degrees_all_pow2 = desc.degrees_all_pow2;
  g.prefill_properties(props);
  g.assign_uid();
  return g;
}

Graph Graph::from_external(ExternalCsr ext) {
  RUMOR_REQUIRE(ext.offsets != nullptr && ext.neighbors != nullptr &&
                ext.edge_ids != nullptr && ext.fwd_offsets != nullptr);
  RUMOR_REQUIRE(ext.m < std::numeric_limits<EdgeId>::max() / 2);
  Graph g;
  g.backend_ = GraphBackend::mapped;
  g.n_ = ext.n;
  g.m_ = ext.m;
  g.offsets_p_ = ext.offsets;
  g.neighbors_p_ = ext.neighbors;
  g.edge_ids_p_ = ext.edge_ids;
  g.fwd_offsets_p_ = ext.fwd_offsets;
  g.min_degree_ = ext.min_degree;
  g.max_degree_ = ext.max_degree;
  g.degrees_all_pow2_ = ext.degrees_all_pow2;
  g.payload_ = std::move(ext.keep_alive);
  g.prefill_properties(ext.props);
  g.assign_uid();
  return g;
}

std::pair<Vertex, Vertex> Graph::edge_endpoints(EdgeId e) const {
  RUMOR_CHECK(e < m_);
  switch (backend_) {
    case GraphBackend::owned:
      return edge_list_p_[e];
    case GraphBackend::implicit:
      return implicit_edge_endpoints(implicit_, e);
    case GraphBackend::mapped: {
      // Owner u: the unique vertex with fwd_offsets[u] <= e <
      // fwd_offsets[u+1]; its forward neighbors sit after its
      // back-neighbors in the sorted row.
      Vertex lo = 0;
      Vertex hi = n_ - 1;
      while (lo < hi) {
        const Vertex mid = lo + (hi - lo) / 2;
        if (fwd_offsets_p_[mid + 1] > e) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      const std::uint32_t deg = offsets_p_[lo + 1] - offsets_p_[lo];
      const std::uint32_t fwd = fwd_offsets_p_[lo + 1] - fwd_offsets_p_[lo];
      const std::uint32_t back = deg - fwd;
      const Vertex v =
          neighbors_p_[offsets_p_[lo] + back + (e - fwd_offsets_p_[lo])];
      return {lo, v};
    }
  }
  return {0u, 0u};
}

const GraphProperties& Graph::properties() const {
  RUMOR_CHECK(property_state_ != nullptr);  // not moved-from
  PropertyState& state = *property_state_;
  std::call_once(state.once, [&] {
    GraphProperties p;
    p.regular = is_regular();
    p.degrees_all_pow2 = degrees_all_pow2_;
    // One BFS pass computes connectivity (all vertices reached from vertex
    // 0) and bipartiteness (2-coloring across every component) together.
    // 2 = uncolored; the scratch is allocated once per graph, never per
    // trial. Only owned graphs land here — implicit and mapped backends
    // prefill the state at construction.
    std::vector<std::uint8_t> color(n_, 2);
    std::vector<Vertex> queue;
    queue.reserve(n_);
    p.bipartite = true;
    std::size_t reached_from_zero = 0;
    for (Vertex start = 0; start < n_; ++start) {
      if (color[start] != 2) continue;
      color[start] = 0;
      queue.push_back(start);
      std::size_t head = 0;
      while (head < queue.size()) {
        const Vertex u = queue[head++];
        const std::uint32_t deg = degree_unchecked(u);
        for (std::uint32_t i = 0; i < deg; ++i) {
          const Vertex v = neighbor_unchecked(u, i);
          if (color[v] == 2) {
            color[v] = color[u] ^ 1;
            queue.push_back(v);
          } else if (color[v] == color[u]) {
            p.bipartite = false;
          }
        }
      }
      if (start == 0) reached_from_zero = queue.size();
      queue.clear();
    }
    // Convention: a single vertex is connected, the empty graph is not.
    p.connected = n_ > 0 && reached_from_zero == n_;
    state.props = p;
    state.ready.store(true, std::memory_order_release);
  });
  return state.props;
}

bool Graph::properties_cached() const {
  return property_state_ != nullptr &&
         property_state_->ready.load(std::memory_order_acquire);
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  RUMOR_REQUIRE(u < n_ && v < n_);
  // Binary search the sorted neighbor list of u; neighbor_unchecked makes
  // this backend-generic (implicit lists are synthesized, still sorted).
  std::uint32_t lo = 0;
  std::uint32_t hi = degree_unchecked(u);
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const Vertex w = neighbor_unchecked(u, mid);
    if (w == v) return true;
    if (w < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

}  // namespace rumor

#include "graph/graph.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>

namespace rumor {

struct Graph::PropertyState {
  std::once_flag once;
  std::atomic<bool> ready{false};
  GraphProperties props;
};

Graph::Graph(Vertex num_vertices,
             std::span<const std::pair<Vertex, Vertex>> edges)
    : n_(num_vertices),
      m_(edges.size()),
      property_state_(std::make_shared<PropertyState>()) {
  // The empty graph (no vertices, no edges) is representable so property
  // queries have a well-defined answer; simulators still require a valid
  // source vertex and therefore reject it.
  RUMOR_REQUIRE(num_vertices > 0 || edges.empty());
  RUMOR_REQUIRE(edges.size() < std::numeric_limits<EdgeId>::max() / 2);

  edge_list_.reserve(m_);
  offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);

  for (const auto& [u, v] : edges) {
    RUMOR_REQUIRE(u < n_ && v < n_);
    RUMOR_REQUIRE(u != v);  // no self loops
    edge_list_.emplace_back(std::min(u, v), std::max(u, v));
    ++offsets_[u + 1];
    ++offsets_[v + 1];
  }

  // Canonical edge order: sort endpoint pairs; also detects duplicates.
  std::sort(edge_list_.begin(), edge_list_.end());
  for (std::size_t e = 1; e < edge_list_.size(); ++e) {
    RUMOR_REQUIRE(edge_list_[e] != edge_list_[e - 1]);  // no multi-edges
  }

  for (std::size_t v = 0; v < n_; ++v) offsets_[v + 1] += offsets_[v];

  neighbors_.resize(2 * m_);
  edge_ids_.resize(2 * m_);
  std::vector<std::uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t e = 0; e < edge_list_.size(); ++e) {
    const auto [u, v] = edge_list_[e];
    neighbors_[cursor[u]] = v;
    edge_ids_[cursor[u]] = static_cast<EdgeId>(e);
    ++cursor[u];
    neighbors_[cursor[v]] = u;
    edge_ids_[cursor[v]] = static_cast<EdgeId>(e);
    ++cursor[v];
  }

  // With edge_list_ sorted by (u, v) and u < v, each vertex w receives its
  // back-neighbors (all < w) before its forward-neighbors (all > w), each
  // group ascending — so lists are already sorted and this insertion sort
  // runs in linear time. It is kept as a guard so the sortedness invariant
  // holds even if the fill order above changes.
  for (Vertex v = 0; v < n_; ++v) {
    const std::uint32_t lo = offsets_[v];
    const std::uint32_t hi = offsets_[v + 1];
    // insertion sort on the (neighbor, edge id) pairs; lists are nearly
    // sorted already, and this avoids a temporary pair buffer.
    for (std::uint32_t i = lo + 1; i < hi; ++i) {
      Vertex nv = neighbors_[i];
      EdgeId ne = edge_ids_[i];
      std::uint32_t j = i;
      while (j > lo && neighbors_[j - 1] > nv) {
        neighbors_[j] = neighbors_[j - 1];
        edge_ids_[j] = edge_ids_[j - 1];
        --j;
      }
      neighbors_[j] = nv;
      edge_ids_[j] = ne;
    }
  }

  min_degree_ = n_ > 0 ? std::numeric_limits<std::uint32_t>::max() : 0;
  max_degree_ = 0;
  degrees_all_pow2_ = n_ > 0;
  for (Vertex v = 0; v < n_; ++v) {
    const std::uint32_t d = degree(v);
    min_degree_ = std::min(min_degree_, d);
    max_degree_ = std::max(max_degree_, d);
    degrees_all_pow2_ = degrees_all_pow2_ && d > 0 && (d & (d - 1)) == 0;
  }

  static std::atomic<std::uint64_t> next_uid{1};
  uid_ = next_uid.fetch_add(1, std::memory_order_relaxed);
}

const GraphProperties& Graph::properties() const {
  RUMOR_CHECK(property_state_ != nullptr);  // not moved-from
  PropertyState& state = *property_state_;
  std::call_once(state.once, [&] {
    GraphProperties p;
    p.regular = is_regular();
    p.degrees_all_pow2 = degrees_all_pow2_;
    // One BFS pass computes connectivity (all vertices reached from vertex
    // 0) and bipartiteness (2-coloring across every component) together.
    // 2 = uncolored; the scratch is allocated once per graph, never per
    // trial.
    std::vector<std::uint8_t> color(n_, 2);
    std::vector<Vertex> queue;
    queue.reserve(n_);
    p.bipartite = true;
    std::size_t reached_from_zero = 0;
    for (Vertex start = 0; start < n_; ++start) {
      if (color[start] != 2) continue;
      color[start] = 0;
      queue.push_back(start);
      std::size_t head = 0;
      while (head < queue.size()) {
        const Vertex u = queue[head++];
        for (Vertex v : neighbors_unchecked(u)) {
          if (color[v] == 2) {
            color[v] = color[u] ^ 1;
            queue.push_back(v);
          } else if (color[v] == color[u]) {
            p.bipartite = false;
          }
        }
      }
      if (start == 0) reached_from_zero = queue.size();
      queue.clear();
    }
    // Convention: a single vertex is connected, the empty graph is not.
    p.connected = n_ > 0 && reached_from_zero == n_;
    state.props = p;
    state.ready.store(true, std::memory_order_release);
  });
  return state.props;
}

bool Graph::properties_cached() const {
  return property_state_ != nullptr &&
         property_state_->ready.load(std::memory_order_acquire);
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  RUMOR_REQUIRE(u < n_ && v < n_);
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace rumor

// Implicit graph families: adjacency synthesized arithmetically, O(1) memory.
//
// Six deterministic families — star, cycle, complete, grid, torus, circulant
// — have closed forms for degree(v), the i-th sorted neighbor, and the
// lexicographic edge id of every adjacency slot. An ImplicitDesc captures the
// family parameters plus every derived structural fact (n, m, degree range,
// connectivity, bipartiteness), so a Graph backed by a desc answers the full
// accessor API without materializing a single adjacency array.
//
// Equivalence contract (pinned by tests/test_graph_backend.cpp): for every
// family and every valid parameter choice, the implicit accessors agree
// slot-for-slot with the materialized generator output — neighbor lists
// enumerate in sorted CSR order and edge ids equal the rank of the (min,max)
// endpoint pair in lexicographic edge order, exactly as the owned-CSR
// constructor assigns them. That identity is what keeps seeded trajectories
// (and therefore every golden sample) byte-identical across backends.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace rumor {

enum class ImplicitKind : std::uint8_t {
  none,  // not an implicit graph
  star,
  cycle,
  complete,
  grid,
  torus,
  circulant,
};

// Family parameters plus analytically derived structure. Construct only via
// make_implicit_desc, which validates the same preconditions the
// materialized generators assert.
struct ImplicitDesc {
  ImplicitKind kind = ImplicitKind::none;
  std::uint32_t n = 0;   // vertex count
  std::uint64_t m = 0;   // undirected edge count
  std::uint32_t p = 0;   // star: leaves; cycle/complete/circulant: n;
                         // grid/torus: rows
  std::uint32_t q = 0;   // grid/torus: cols; circulant: k
  std::uint32_t min_degree = 0;
  std::uint32_t max_degree = 0;
  bool degrees_all_pow2 = false;
  bool connected = false;
  bool bipartite = false;
};

// Fills `out` for the family, mirroring the generator preconditions
// (star leaves >= 2; cycle n >= 3; complete n >= 2; grid rows, cols >= 1 and
// rows * cols >= 2; torus rows, cols >= 3; circulant k >= 1 and n >= 2k + 2)
// plus the representation limits (n fits Vertex, m < 2^31 so edge ids fit).
// Returns false and explains in *error (if non-null) on violation.
bool make_implicit_desc(ImplicitKind kind, std::uint64_t a, std::uint64_t b,
                        ImplicitDesc& out, std::string* error = nullptr);

// ---- Hot-path arithmetic accessors ------------------------------------
//
// All take v < n and i < degree(v); violations are undefined exactly like
// the owned backend's *_unchecked accessors. Each family's neighbor list is
// enumerated ascending: back-neighbors (< v) first, then forward neighbors,
// matching the sorted order the CSR constructor produces.

namespace implicit_detail {

// star: center 0, leaves 1..L.
inline std::uint32_t star_degree(const ImplicitDesc& d, std::uint32_t v) {
  return v == 0 ? d.p : 1u;
}
inline std::uint32_t star_neighbor(std::uint32_t v, std::uint32_t i) {
  return v == 0 ? i + 1 : 0u;
}
inline std::uint32_t star_edge_id(std::uint32_t v, std::uint32_t i) {
  return v == 0 ? i : v - 1;  // edge {0, w} has id w - 1
}

// cycle over n >= 3 vertices; edge ids: {0,1} -> 0, {0,n-1} -> 1,
// {v,v+1} -> v+1 for v >= 1 (lexicographic rank of the sorted pair list).
inline std::uint32_t cycle_neighbor(const ImplicitDesc& d, std::uint32_t v,
                                    std::uint32_t i) {
  const std::uint32_t n = d.p;
  if (v == 0) return i == 0 ? 1u : n - 1;
  if (v == n - 1) return i == 0 ? 0u : n - 2;
  return i == 0 ? v - 1 : v + 1;
}
inline std::uint32_t cycle_edge_id(const ImplicitDesc& d, std::uint32_t v,
                                   std::uint32_t i) {
  const std::uint32_t n = d.p;
  if (v == 0) return i;  // {0,1} -> 0, {0,n-1} -> 1
  if (v == n - 1) return i == 0 ? 1u : n - 1;
  if (i == 0) return v == 1 ? 0u : v;  // {v-1, v}
  return v + 1;                        // {v, v+1}
}

// complete graph on n >= 2 vertices.
inline std::uint64_t complete_fwd_offset(const ImplicitDesc& d,
                                         std::uint64_t u) {
  // # edges whose min endpoint < u: sum_{t<u} (n-1-t).
  return u * (2 * static_cast<std::uint64_t>(d.p) - u - 1) / 2;
}
inline std::uint32_t complete_neighbor(std::uint32_t v, std::uint32_t i) {
  return i < v ? i : i + 1;
}
inline std::uint32_t complete_edge_id(const ImplicitDesc& d, std::uint32_t v,
                                      std::uint32_t i) {
  const std::uint32_t w = complete_neighbor(v, i);
  const std::uint32_t u = v < w ? v : w;
  const std::uint32_t x = v < w ? w : v;
  return static_cast<std::uint32_t>(complete_fwd_offset(d, u) + (x - u - 1));
}

// grid rows x cols, vertex id r * cols + c, edges right and down.
inline std::uint32_t grid_degree(const ImplicitDesc& d, std::uint32_t v) {
  const std::uint32_t r = v / d.q;
  const std::uint32_t c = v - r * d.q;
  return static_cast<std::uint32_t>((r > 0) + (r + 1 < d.p) + (c > 0) +
                                    (c + 1 < d.q));
}
inline std::uint32_t grid_neighbor(const ImplicitDesc& d, std::uint32_t v,
                                   std::uint32_t i) {
  const std::uint32_t C = d.q;
  const std::uint32_t r = v / C;
  const std::uint32_t c = v - r * C;
  std::uint32_t idx = i;
  if (r > 0) {
    if (idx == 0) return v - C;
    --idx;
  }
  if (c > 0) {
    if (idx == 0) return v - 1;
    --idx;
  }
  if (c + 1 < C && idx == 0) return v + 1;
  return v + C;  // i < degree(v) guarantees r + 1 < rows here
}
inline std::uint64_t grid_fwd_offset(const ImplicitDesc& d, std::uint64_t u) {
  // Horizontal edges with min < u plus vertical edges with min < u; the
  // vertical min set is every vertex off the last row.
  const std::uint64_t C = d.q;
  const std::uint64_t r = u / C;
  const std::uint64_t c = u - r * C;
  const std::uint64_t vcap = static_cast<std::uint64_t>(d.p - 1) * C;
  return r * (C - 1) + c + (u < vcap ? u : vcap);
}
inline std::uint32_t grid_edge_id(const ImplicitDesc& d, std::uint32_t v,
                                  std::uint32_t i) {
  const std::uint32_t w = grid_neighbor(d, v, i);
  const std::uint32_t u = v < w ? v : w;
  const std::uint32_t x = v < w ? w : v;
  // Forward edges of u in sorted order: right (u+1) then down (u+C).
  const std::uint32_t rank =
      x == u + 1 ? 0u : ((u % d.q) + 1 < d.q ? 1u : 0u);
  return static_cast<std::uint32_t>(grid_fwd_offset(d, u) + rank);
}

// torus rows x cols with rows, cols >= 3 (all wrap diffs distinct).
inline std::uint32_t torus_neighbor(const ImplicitDesc& d, std::uint32_t v,
                                    std::uint32_t i) {
  const std::uint32_t R = d.p;
  const std::uint32_t C = d.q;
  const std::uint32_t r = v / C;
  const std::uint32_t c = v - r * C;
  std::uint32_t a = (r == 0 ? R - 1 : r - 1) * C + c;   // up (wrapped)
  std::uint32_t b = (r + 1 == R ? 0 : r + 1) * C + c;   // down (wrapped)
  std::uint32_t x = r * C + (c == 0 ? C - 1 : c - 1);   // left (wrapped)
  std::uint32_t y = r * C + (c + 1 == C ? 0 : c + 1);   // right (wrapped)
  // Sorting network on 4 distinct values; yields a <= b <= x <= y.
  if (a > b) std::swap(a, b);
  if (x > y) std::swap(x, y);
  if (a > x) std::swap(a, x);
  if (b > y) std::swap(b, y);
  if (b > x) std::swap(b, x);
  switch (i) {
    case 0: return a;
    case 1: return b;
    case 2: return x;
    default: return y;
  }
}
inline std::uint64_t torus_fwd_offset(const ImplicitDesc& d, std::uint64_t u) {
  // Horizontal mins before u: C per full row, and within row r the wrap edge
  // shares min r*C with the first regular edge. Vertical mins: every vertex
  // off the last row once, plus the first row again for the wrap edges.
  const std::uint64_t C = d.q;
  const std::uint64_t r = u / C;
  const std::uint64_t c = u - r * C;
  const std::uint64_t vcap = static_cast<std::uint64_t>(d.p - 1) * C;
  return r * C + c + (c > 0 ? 1 : 0) + (u < vcap ? u : vcap) +
         (u < C ? u : C);
}
inline std::uint32_t torus_edge_id(const ImplicitDesc& d, std::uint32_t v,
                                   std::uint32_t i) {
  const std::uint32_t C = d.q;
  const std::uint32_t w = torus_neighbor(d, v, i);
  const std::uint32_t u = v < w ? v : w;
  const std::uint32_t x = v < w ? w : v;
  const std::uint32_t cu = u % C;
  const std::uint32_t diff = x - u;
  // Forward candidates of u ascending: u+1 (c<C-1), u+C-1 (c==0, the row
  // wrap), u+C (r<R-1), u+(R-1)C (r==0, the column wrap).
  const std::uint32_t horiz = cu == 0 ? 2u : (cu + 1 < C ? 1u : 0u);
  std::uint32_t rank;
  if (diff == 1) {
    rank = 0;
  } else if (diff == C - 1) {
    rank = 1;  // row wrap: u is in column 0, so u+1 precedes it
  } else if (diff == C) {
    rank = horiz;
  } else {  // diff == (rows-1)*C: column wrap; u+C always present (rows>=3)
    rank = horiz + 1;
  }
  return static_cast<std::uint32_t>(torus_fwd_offset(d, u) + rank);
}

// circulant C_n(1..k) with n >= 2k + 2: v adjacent to v +- j (mod n).
inline std::uint32_t circulant_neighbor(const ImplicitDesc& d, std::uint32_t v,
                                        std::uint32_t i) {
  const std::uint32_t n = d.p;
  const std::uint32_t k = d.q;
  if (v >= k) {
    if (v < n - k) {  // no wraparound on either side
      return i < k ? v - k + i : v + 1 + (i - k);
    }
    // High band: wrapped forward neighbors come first (they are smallest).
    const std::uint32_t wrap = v + k - n + 1;  // values 0 .. v+k-n
    if (i < wrap) return i;
    if (i < wrap + k) return v - k + (i - wrap);
    return v + 1 + (i - wrap - k);
  }
  // Low band: back-neighbors 0..v-1, then v+1..v+k, then wrapped backs.
  if (i < v) return i;
  const std::uint32_t t = i - v;
  if (t < k) return v + 1 + t;
  return n - k + v + (t - k);
}
inline std::uint32_t circulant_fwd_count(const ImplicitDesc& d,
                                         std::uint32_t u) {
  const std::uint32_t n = d.p;
  const std::uint32_t k = d.q;
  if (u < k) return 2 * k - u;
  if (u < n - k) return k;
  return n - 1 - u;
}
inline std::uint64_t circulant_fwd_offset(const ImplicitDesc& d,
                                          std::uint64_t u) {
  const std::uint64_t n = d.p;
  const std::uint64_t k = d.q;
  const std::uint64_t f_k = 2 * k * k - k * (k - 1) / 2;  // offset at u == k
  if (u <= k) return 2 * k * u - u * (u - 1) / 2;
  if (u <= n - k) return f_k + (u - k) * k;
  const std::uint64_t t = u - (n - k);
  return f_k + (n - 2 * k) * k + t * (k - 1) - t * (t - 1) / 2;
}
inline std::uint32_t circulant_fwd_neighbor(const ImplicitDesc& d,
                                            std::uint32_t u,
                                            std::uint32_t rank) {
  const std::uint32_t n = d.p;
  const std::uint32_t k = d.q;
  if (u < n - k) return rank < k ? u + 1 + rank : n - k + u + (rank - k);
  return u + 1 + rank;
}
inline std::uint32_t circulant_edge_id(const ImplicitDesc& d, std::uint32_t v,
                                       std::uint32_t i) {
  const std::uint32_t n = d.p;
  const std::uint32_t k = d.q;
  const std::uint32_t w = circulant_neighbor(d, v, i);
  const std::uint32_t u = v < w ? v : w;
  const std::uint32_t x = v < w ? w : v;
  const std::uint32_t rank =
      x <= u + k ? x - u - 1 : k + (x - (n - k + u));
  return static_cast<std::uint32_t>(circulant_fwd_offset(d, u) + rank);
}

}  // namespace implicit_detail

inline std::uint32_t implicit_degree(const ImplicitDesc& d, std::uint32_t v) {
  switch (d.kind) {
    case ImplicitKind::star: return implicit_detail::star_degree(d, v);
    case ImplicitKind::cycle: return 2;
    case ImplicitKind::complete: return d.p - 1;
    case ImplicitKind::grid: return implicit_detail::grid_degree(d, v);
    case ImplicitKind::torus: return 4;
    case ImplicitKind::circulant: return 2 * d.q;
    case ImplicitKind::none: break;
  }
  return 0;
}

inline std::uint32_t implicit_neighbor(const ImplicitDesc& d, std::uint32_t v,
                                       std::uint32_t i) {
  switch (d.kind) {
    case ImplicitKind::star: return implicit_detail::star_neighbor(v, i);
    case ImplicitKind::cycle: return implicit_detail::cycle_neighbor(d, v, i);
    case ImplicitKind::complete:
      return implicit_detail::complete_neighbor(v, i);
    case ImplicitKind::grid: return implicit_detail::grid_neighbor(d, v, i);
    case ImplicitKind::torus: return implicit_detail::torus_neighbor(d, v, i);
    case ImplicitKind::circulant:
      return implicit_detail::circulant_neighbor(d, v, i);
    case ImplicitKind::none: break;
  }
  return 0;
}

inline std::uint32_t implicit_edge_id(const ImplicitDesc& d, std::uint32_t v,
                                      std::uint32_t i) {
  switch (d.kind) {
    case ImplicitKind::star: return implicit_detail::star_edge_id(v, i);
    case ImplicitKind::cycle: return implicit_detail::cycle_edge_id(d, v, i);
    case ImplicitKind::complete:
      return implicit_detail::complete_edge_id(d, v, i);
    case ImplicitKind::grid: return implicit_detail::grid_edge_id(d, v, i);
    case ImplicitKind::torus: return implicit_detail::torus_edge_id(d, v, i);
    case ImplicitKind::circulant:
      return implicit_detail::circulant_edge_id(d, v, i);
    case ImplicitKind::none: break;
  }
  return 0;
}

// Endpoints (u, v) with u < v of edge id e: binary search on the monotone
// forward-offset curve, then index the owner's forward list. O(log n).
std::pair<std::uint32_t, std::uint32_t> implicit_edge_endpoints(
    const ImplicitDesc& d, std::uint32_t e);

// True iff {u, v} is an edge; O(log degree) via the sorted neighbor list.
bool implicit_has_edge(const ImplicitDesc& d, std::uint32_t u,
                       std::uint32_t v);

}  // namespace rumor

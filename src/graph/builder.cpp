#include "graph/builder.hpp"

#include <algorithm>

namespace rumor {

GraphBuilder::GraphBuilder(Vertex num_vertices) : n_(num_vertices) {
  RUMOR_REQUIRE(num_vertices > 0);
}

void GraphBuilder::add_edge(Vertex u, Vertex v) {
  RUMOR_REQUIRE(u < n_ && v < n_);
  RUMOR_REQUIRE(u != v);
  edges_.emplace_back(std::min(u, v), std::max(u, v));
  if (seen_active_) seen_.insert(edge_key(u, v));
}

void GraphBuilder::add_edge_once(Vertex u, Vertex v) {
  RUMOR_REQUIRE(u < n_ && v < n_);
  RUMOR_REQUIRE(u != v);
  if (!seen_active_) {
    seen_.reserve(edges_.size() * 2);
    for (const auto& [a, b] : edges_) seen_.insert(edge_key(a, b));
    seen_active_ = true;
  }
  if (!seen_.insert(edge_key(u, v)).second) return;
  edges_.emplace_back(std::min(u, v), std::max(u, v));
}

void GraphBuilder::add_clique(std::span<const Vertex> vertices) {
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (std::size_t j = i + 1; j < vertices.size(); ++j) {
      add_edge(vertices[i], vertices[j]);
    }
  }
}

Graph GraphBuilder::build() const { return Graph(n_, edges_); }

}  // namespace rumor

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace rumor::gen {

Graph complete(Vertex n) {
  RUMOR_REQUIRE(n >= 2);
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

Graph path(Vertex n) {
  RUMOR_REQUIRE(n >= 2);
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph cycle(Vertex n) {
  RUMOR_REQUIRE(n >= 3);
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.add_edge(n - 1, 0);
  return b.build();
}

Graph grid2d(Vertex rows, Vertex cols) {
  RUMOR_REQUIRE(rows >= 1 && cols >= 1);
  RUMOR_REQUIRE(static_cast<std::uint64_t>(rows) * cols >= 2);
  GraphBuilder b(rows * cols);
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph torus2d(Vertex rows, Vertex cols) {
  RUMOR_REQUIRE(rows >= 3 && cols >= 3);
  GraphBuilder b(rows * cols);
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      b.add_edge(id(r, c), id(r, (c + 1) % cols));
      b.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return b.build();
}

Graph barbell(Vertex k) {
  RUMOR_REQUIRE(k >= 2);
  GraphBuilder b(2 * k);
  for (Vertex u = 0; u < k; ++u) {
    for (Vertex v = u + 1; v < k; ++v) {
      b.add_edge(u, v);          // clique A
      b.add_edge(k + u, k + v);  // clique B
    }
  }
  b.add_edge(k - 1, k);  // bridge
  return b.build();
}

}  // namespace rumor::gen

// Structural graph properties used for validation and experiment setup.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace rumor {

// Reachability of every vertex from vertex 0. Memoized per graph via
// Graph::properties(): the first call on a graph traverses it, every later
// call is O(1) and allocation-free. The empty graph reports NOT connected;
// a single vertex reports connected.
[[nodiscard]] bool is_connected(const Graph& g);

// Two-coloring check. Connected bipartite graphs make non-lazy
// meet-exchange potentially non-terminating (paper §3), so the protocol
// consults this to auto-enable laziness. Memoized like is_connected; the
// empty graph is vacuously bipartite.
[[nodiscard]] bool is_bipartite(const Graph& g);

// BFS distances from source; unreachable vertices get UINT32_MAX.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                                       Vertex source);

// Largest BFS distance from `source` (the eccentricity); requires connected.
[[nodiscard]] std::uint32_t eccentricity(const Graph& g, Vertex source);

// Exact diameter via all-sources BFS. O(n*m): intended for test-sized
// graphs only.
[[nodiscard]] std::uint32_t diameter_exact(const Graph& g);

// Diameter lower bound from `samples` BFS sweeps (double sweep heuristic
// seeded deterministically); cheap on large graphs.
[[nodiscard]] std::uint32_t diameter_lower_bound(const Graph& g,
                                                 std::uint32_t samples,
                                                 std::uint64_t seed);

struct DegreeStats {
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  double mean = 0.0;
};

[[nodiscard]] DegreeStats degree_stats(const Graph& g);

}  // namespace rumor

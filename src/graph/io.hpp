// Graph serialization: whitespace edge lists and Graphviz DOT export.
//
// Edge-list format: first non-comment line "n m", then m lines "u v".
// Lines starting with '#' are comments. This is the interchange format the
// custom_graph example consumes.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace rumor {

// Writes the canonical edge list (ids ascending).
void save_edge_list(const Graph& g, std::ostream& out);

// Parses an edge list; throws std::runtime_error with a line number on
// malformed input.
[[nodiscard]] Graph load_edge_list(std::istream& in);

// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_edge_list_file(const Graph& g, const std::string& path);
[[nodiscard]] Graph load_edge_list_file(const std::string& path);

// Graphviz DOT (undirected). Intended for small illustration graphs.
void export_dot(const Graph& g, std::ostream& out,
                const std::string& name = "G");

}  // namespace rumor

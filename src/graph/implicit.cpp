#include "graph/implicit.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>

namespace rumor {

namespace {

constexpr std::uint64_t kMaxVertices =
    std::numeric_limits<std::uint32_t>::max();
// Same ceiling the owned-CSR constructor enforces: 2m directed slots must
// fit EdgeId arithmetic.
constexpr std::uint64_t kMaxEdges =
    std::numeric_limits<std::uint32_t>::max() / 2;

bool fail(std::string* error, const char* msg) {
  if (error) *error = msg;
  return false;
}

bool finish(ImplicitDesc& out, std::string* error) {
  if (out.n > kMaxVertices) {
    return fail(error, "graph too large: vertex count exceeds 32-bit ids");
  }
  if (out.m >= kMaxEdges) {
    return fail(error, "graph too large: edge count exceeds 32-bit edge ids");
  }
  return true;
}

// Degree contributions one grid axis of size s can produce.
void grid_axis_degrees(std::uint64_t s, std::uint32_t out[2], int& count) {
  if (s == 1) {
    out[0] = 0;
    count = 1;
  } else if (s == 2) {
    out[0] = 1;
    count = 1;
  } else {
    out[0] = 1;
    out[1] = 2;
    count = 2;
  }
}

bool is_pow2(std::uint32_t d) { return d > 0 && (d & (d - 1)) == 0; }

// Owner of edge id e: the unique u with fwd_offset(u) <= e < fwd_offset(u+1).
template <typename FwdOffset>
std::uint32_t find_owner(std::uint32_t n, std::uint32_t e, FwdOffset fwd) {
  std::uint32_t lo = 0;
  std::uint32_t hi = n - 1;
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    if (fwd(mid + 1) > e) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace

bool make_implicit_desc(ImplicitKind kind, std::uint64_t a, std::uint64_t b,
                        ImplicitDesc& out, std::string* error) {
  out = ImplicitDesc{};
  out.kind = kind;
  switch (kind) {
    case ImplicitKind::star: {
      if (a < 2) return fail(error, "star requires leaves >= 2");
      if (a > kMaxVertices - 1) return fail(error, "star: too many leaves");
      out.n = static_cast<std::uint32_t>(a + 1);
      out.m = a;
      out.p = static_cast<std::uint32_t>(a);
      out.min_degree = 1;
      out.max_degree = out.p;
      out.degrees_all_pow2 = is_pow2(out.p);
      out.connected = true;
      out.bipartite = true;
      return finish(out, error);
    }
    case ImplicitKind::cycle: {
      if (a < 3) return fail(error, "cycle requires n >= 3");
      if (a > kMaxVertices) return fail(error, "cycle: n too large");
      out.n = static_cast<std::uint32_t>(a);
      out.m = a;
      out.p = out.n;
      out.min_degree = out.max_degree = 2;
      out.degrees_all_pow2 = true;
      out.connected = true;
      out.bipartite = (a % 2) == 0;
      return finish(out, error);
    }
    case ImplicitKind::complete: {
      if (a < 2) return fail(error, "complete requires n >= 2");
      if (a > kMaxVertices) return fail(error, "complete: n too large");
      out.n = static_cast<std::uint32_t>(a);
      out.m = a * (a - 1) / 2;
      out.p = out.n;
      out.min_degree = out.max_degree = out.n - 1;
      out.degrees_all_pow2 = is_pow2(out.n - 1);
      out.connected = true;
      out.bipartite = a == 2;
      return finish(out, error);
    }
    case ImplicitKind::grid: {
      if (a < 1 || b < 1 || a * b < 2) {
        return fail(error, "grid requires rows, cols >= 1 and rows*cols >= 2");
      }
      if (a > kMaxVertices || b > kMaxVertices || a * b > kMaxVertices) {
        return fail(error, "grid: too many vertices");
      }
      out.n = static_cast<std::uint32_t>(a * b);
      out.m = a * (b - 1) + b * (a - 1);
      out.p = static_cast<std::uint32_t>(a);
      out.q = static_cast<std::uint32_t>(b);
      std::uint32_t ra[2];
      std::uint32_t ca[2];
      int rn = 0;
      int cn = 0;
      grid_axis_degrees(a, ra, rn);
      grid_axis_degrees(b, ca, cn);
      out.min_degree = ra[0] + ca[0];
      out.max_degree = ra[rn - 1] + ca[cn - 1];
      out.degrees_all_pow2 = true;
      for (int i = 0; i < rn; ++i) {
        for (int j = 0; j < cn; ++j) {
          out.degrees_all_pow2 =
              out.degrees_all_pow2 && is_pow2(ra[i] + ca[j]);
        }
      }
      out.connected = true;
      out.bipartite = true;
      return finish(out, error);
    }
    case ImplicitKind::torus: {
      if (a < 3 || b < 3) return fail(error, "torus requires rows, cols >= 3");
      if (a > kMaxVertices || b > kMaxVertices || a * b > kMaxVertices) {
        return fail(error, "torus: too many vertices");
      }
      out.n = static_cast<std::uint32_t>(a * b);
      out.m = 2 * a * b;
      out.p = static_cast<std::uint32_t>(a);
      out.q = static_cast<std::uint32_t>(b);
      out.min_degree = out.max_degree = 4;
      out.degrees_all_pow2 = true;
      out.connected = true;
      out.bipartite = (a % 2 == 0) && (b % 2 == 0);
      return finish(out, error);
    }
    case ImplicitKind::circulant: {
      if (b < 1) return fail(error, "circulant requires k >= 1");
      if (a > kMaxVertices || b > kMaxVertices) {
        return fail(error, "circulant: n too large");
      }
      if (a < 2 * b + 2) return fail(error, "circulant requires n >= 2k + 2");
      out.n = static_cast<std::uint32_t>(a);
      out.m = a * b;
      out.p = out.n;
      out.q = static_cast<std::uint32_t>(b);
      out.min_degree = out.max_degree = static_cast<std::uint32_t>(2 * b);
      out.degrees_all_pow2 = is_pow2(out.max_degree);
      out.connected = true;
      // k >= 2 always closes a triangle (0,1,2); k == 1 is the cycle.
      out.bipartite = b == 1 && (a % 2) == 0;
      return finish(out, error);
    }
    case ImplicitKind::none: break;
  }
  return fail(error, "not an implicit family");
}

std::pair<std::uint32_t, std::uint32_t> implicit_edge_endpoints(
    const ImplicitDesc& d, std::uint32_t e) {
  using namespace implicit_detail;
  switch (d.kind) {
    case ImplicitKind::star:
      return {0u, e + 1};
    case ImplicitKind::cycle:
      if (e == 0) return {0u, 1u};
      if (e == 1) return {0u, d.p - 1};
      return {e - 1, e};
    case ImplicitKind::complete: {
      const std::uint32_t u = find_owner(
          d.n, e, [&](std::uint32_t x) { return complete_fwd_offset(d, x); });
      const auto rank = static_cast<std::uint32_t>(e - complete_fwd_offset(d, u));
      return {u, u + 1 + rank};
    }
    case ImplicitKind::grid: {
      const std::uint32_t u = find_owner(
          d.n, e, [&](std::uint32_t x) { return grid_fwd_offset(d, x); });
      const auto rank = static_cast<std::uint32_t>(e - grid_fwd_offset(d, u));
      const std::uint32_t c = u % d.q;
      if (rank == 0 && c + 1 < d.q) return {u, u + 1};
      return {u, u + d.q};
    }
    case ImplicitKind::torus: {
      const std::uint32_t u = find_owner(
          d.n, e, [&](std::uint32_t x) { return torus_fwd_offset(d, x); });
      std::uint32_t rank =
          static_cast<std::uint32_t>(e - torus_fwd_offset(d, u));
      const std::uint32_t r = u / d.q;
      const std::uint32_t c = u % d.q;
      // Forward candidates ascending (see torus_edge_id).
      if (c + 1 < d.q) {
        if (rank == 0) return {u, u + 1};
        --rank;
      }
      if (c == 0) {
        if (rank == 0) return {u, u + d.q - 1};
        --rank;
      }
      if (r + 1 < d.p) {
        if (rank == 0) return {u, u + d.q};
        --rank;
      }
      return {u, u + (d.p - 1) * d.q};  // column wrap, r == 0
    }
    case ImplicitKind::circulant: {
      const std::uint32_t u = find_owner(d.n, e, [&](std::uint32_t x) {
        return circulant_fwd_offset(d, x);
      });
      const auto rank =
          static_cast<std::uint32_t>(e - circulant_fwd_offset(d, u));
      return {u, circulant_fwd_neighbor(d, u, rank)};
    }
    case ImplicitKind::none: break;
  }
  return {0u, 0u};
}

bool implicit_has_edge(const ImplicitDesc& d, std::uint32_t u,
                       std::uint32_t v) {
  // Binary search the sorted (synthesized) neighbor list of u.
  std::uint32_t lo = 0;
  std::uint32_t hi = implicit_degree(d, u);
  while (lo < hi) {
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const std::uint32_t w = implicit_neighbor(d, u, mid);
    if (w == v) return true;
    if (w < v) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return false;
}

}  // namespace rumor

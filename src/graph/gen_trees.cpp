#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace rumor::gen {

Graph star(Vertex leaves) {
  RUMOR_REQUIRE(leaves >= 2);
  GraphBuilder b(leaves + 1);
  for (Vertex leaf = 1; leaf <= leaves; ++leaf) b.add_edge(0, leaf);
  return b.build();
}

Graph double_star(Vertex leaves) {
  RUMOR_REQUIRE(leaves >= 2);
  const Vertex n = 2 + 2 * leaves;
  GraphBuilder b(n);
  b.add_edge(0, 1);  // the bridge between the two centers
  for (Vertex j = 0; j < leaves; ++j) {
    b.add_edge(0, 2 + j);
    b.add_edge(1, 2 + leaves + j);
  }
  return b.build();
}

Graph balanced_binary_tree(Vertex n) {
  RUMOR_REQUIRE(n >= 2);
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) b.add_edge(v, (v - 1) / 2);
  return b.build();
}

}  // namespace rumor::gen

// Shared grammar + policy for the frontier-sharded round kernels.
//
// `shards=` is the one knob: absent (0) keeps the serial legacy engine and
// its byte-pinned golden trajectories; `shards=auto` turns the sharded
// engine on for graphs at or above kShardAutoThreshold vertices;
// `shards=N` (N >= 1) turns it on unconditionally. The sharded engine is a
// DIFFERENT engine — its draws come from the addressable ShardPlane, so
// its trajectories differ from legacy (exactly like engine=counter walks)
// — but within the engine the trajectory depends only on whether sharding
// is ON, never on the partition count: every random decision is keyed by
// its logical slot, and the shard-major merge visits candidates in global
// slot order. shards=1 therefore IS the serial reference the determinism
// tests compare 2/4/7-way runs against, and `auto` can pick its width from
// the machine without breaking reproducibility.
#pragma once

#include <cstdint>
#include <string_view>

namespace rumor {

namespace spec_text {
class KeyValWriter;
}

// Sentinel stored in an options struct's `shards` field for `shards=auto`.
inline constexpr std::uint32_t kShardsAuto = 0xFFFFFFFFu;

// `shards=auto` enables the sharded engine iff the graph has at least this
// many vertices (below it, per-round fan-out overhead beats the win).
inline constexpr std::uint64_t kShardAutoThreshold = std::uint64_t{1} << 22;

// Whether the sharded engine is on for this (option, graph size) pair.
// Pure in its inputs — never consults worker count or machine state, so
// the engine choice (and with it the trajectory) is machine-independent.
[[nodiscard]] constexpr bool sharding_enabled(std::uint32_t shards_option,
                                              std::uint64_t n) {
  if (shards_option == 0) return false;
  if (shards_option == kShardsAuto) return n >= kShardAutoThreshold;
  return true;
}

// Execution width for an enabled sharded run: explicit N uses N partitions,
// auto matches the ambient shard pool's worker count. Width is pure
// execution policy — any width produces the identical trajectory.
[[nodiscard]] std::uint32_t resolve_shard_width(std::uint32_t shards_option);

// Parses `shards=auto|N` (N >= 1; 0 is rejected — "absent" is the only
// spelling of the legacy engine, keeping the text round-trip unique).
[[nodiscard]] bool set_shards_option(std::uint32_t& field,
                                     std::string_view value);

// Round-trip formatting: emits nothing at the default (0), `auto` for the
// sentinel, the number otherwise.
void format_shards_option(std::uint32_t shards, std::uint32_t defaults,
                          spec_text::KeyValWriter& out);

}  // namespace rumor

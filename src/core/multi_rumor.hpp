// Multi-rumor dissemination — the setting that motivates the paper's
// stationary-start assumption (§1):
//
//   "The assumption that agents start from the stationary distribution
//    makes sense in a setting where several pieces of information (or
//    rumors) are generated frequently and distributed in parallel over time
//    by the same set of agents, which execute perpetual independent random
//    walks."
//
// Up to 64 rumors, each with a source vertex and a release round, spread
// over one shared substrate. Exchanges transfer ALL rumors a party holds
// (push-pull "the two nodes exchange all the information they have";
// visit-exchange likewise). Key structural fact, property-tested in
// tests/test_core_multi_rumor.cpp: the marginal process of each rumor is
// exactly the single-rumor protocol started at its release round — rumors
// share bandwidth without interfering — so per-rumor broadcast times match
// the single-rumor distributions.
//
// Rumor masks and per-rumor bookkeeping live in a TrialArena. The primary
// constructors borrow the rumor specs as a span (the caller keeps them
// alive for the simulator's lifetime — the allocation-free trial path); the
// vector&& overloads store a moved-in copy for temporaries.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/walk_options.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"
#include "support/trial_arena.hpp"
#include "walk/agents.hpp"

namespace rumor {

using RumorMask = std::uint64_t;
constexpr std::size_t kMaxRumors = 64;

struct RumorSpec {
  Vertex source = 0;
  Round release_round = 0;  // the round at which the source learns it
};

// Declarative multi-rumor scenario: `rumor_count` rumors on one shared
// substrate, rumor 0 released at the scenario source in round 0 and rumor
// r >= 1 at a seed-derived uniform vertex in round r * release_interval.
// This is the spec-level face of the multi-rumor simulators; callers that
// need explicit per-rumor (source, release) pairs construct the simulator
// classes below directly.
struct MultiRumorOptions {
  // Agent substrate for the visit-exchange variant; the push-pull variant
  // uses only walk.max_rounds (its cutoff) and ignores the agent fields.
  WalkOptions walk;
  std::uint32_t rumor_count = 2;
  Round release_interval = 0;

  friend bool operator==(const MultiRumorOptions&,
                         const MultiRumorOptions&) = default;
};

class SimulatorRegistry;
// Registers both multi-rumor simulators (spec names "multi-push-pull" and
// "multi-visit-exchange").
void register_multi_rumor_simulators(SimulatorRegistry& registry);

struct MultiRumorResult {
  // Per rumor: the absolute round when every vertex (visit-exchange /
  // push-pull) held it, and the latency relative to its release round.
  std::vector<Round> completion_round;
  std::vector<Round> latency;
  bool completed = false;  // all rumors everywhere
  Round rounds = 0;        // final absolute round
};

// Multi-rumor PUSH-PULL: every vertex calls one random neighbor per round;
// the pair unions their rumor sets, each side receiving only rumors the
// other held before the round.
class MultiRumorPushPull {
 public:
  // `transmission` carries the per-rumor transfer probability (only the
  // probability half applies here: the packed rumor masks carry no inform
  // ages, so the intervention keys are rejected at the grammar level).
  MultiRumorPushPull(const Graph& g, std::span<const RumorSpec> rumors,
                     std::uint64_t seed, Round max_rounds = 0,
                     TrialArena* arena = nullptr,
                     TransmissionOptions transmission = {});
  MultiRumorPushPull(const Graph& g, std::vector<RumorSpec>&& rumors,
                     std::uint64_t seed, Round max_rounds = 0,
                     TrialArena* arena = nullptr,
                     TransmissionOptions transmission = {});

  void step();
  [[nodiscard]] bool done() const { return remaining_ == 0; }
  [[nodiscard]] Round round() const { return round_; }
  [[nodiscard]] RumorMask vertex_rumors(Vertex v) const {
    return arena_->vertex_rumors[v];
  }
  [[nodiscard]] MultiRumorResult run();
  // As run(), but reuses `out`'s buffers (allocation-free once warm).
  void run_into(MultiRumorResult& out);

 private:
  void release_due();
  template <class Mode>
  void step_impl();

  const Graph* graph_;
  std::vector<RumorSpec> rumor_storage_;  // only for the vector&& overload
  std::span<const RumorSpec> rumors_;
  Rng rng_;
  TransmissionModel model_;
  Round round_ = 0;
  Round cutoff_;
  std::unique_ptr<TrialArena> owned_arena_;
  TrialArena* arena_;
  std::size_t remaining_;
};

// Multi-rumor VISIT-EXCHANGE: agents walk perpetually; a visit unions the
// vertex's and agent's rumor sets under the paper's one-round-delay rules
// (an agent transfers only rumors it held before the round; the vertex
// hands over everything it holds after its own update — matching §3).
class MultiRumorVisitExchange {
 public:
  MultiRumorVisitExchange(const Graph& g, std::span<const RumorSpec> rumors,
                          std::uint64_t seed, WalkOptions options = {},
                          TrialArena* arena = nullptr);
  MultiRumorVisitExchange(const Graph& g, std::vector<RumorSpec>&& rumors,
                          std::uint64_t seed, WalkOptions options = {},
                          TrialArena* arena = nullptr);

  void step();
  [[nodiscard]] bool done() const { return remaining_ == 0; }
  [[nodiscard]] Round round() const { return round_; }
  [[nodiscard]] RumorMask vertex_rumors(Vertex v) const {
    return arena_->vertex_rumors[v];
  }
  [[nodiscard]] RumorMask agent_rumors(Agent a) const {
    return arena_->agent_rumors[a];
  }
  [[nodiscard]] const AgentSystem& agents() const { return agents_; }
  [[nodiscard]] Laziness laziness() const { return laziness_; }
  [[nodiscard]] MultiRumorResult run();
  // As run(), but reuses `out`'s buffers (allocation-free once warm).
  void run_into(MultiRumorResult& out);

 private:
  void release_due();
  template <class Mode>
  void step_impl();

  const Graph* graph_;
  std::vector<RumorSpec> rumor_storage_;  // only for the vector&& overload
  std::span<const RumorSpec> rumors_;
  Rng rng_;
  WalkOptions options_;
  TransmissionModel model_;
  Laziness laziness_;
  Round round_ = 0;
  Round cutoff_;
  std::unique_ptr<TrialArena> owned_arena_;
  TrialArena* arena_;
  AgentSystem agents_;
  std::size_t remaining_;
};

}  // namespace rumor

#include "core/async.hpp"

#include <vector>

#include "support/assert.hpp"

namespace rumor {

AsyncResult run_async_push_pull(const Graph& g, Vertex source,
                                std::uint64_t seed, AsyncOptions options) {
  RUMOR_REQUIRE(source < g.num_vertices());
  const Vertex n = g.num_vertices();
  const std::uint64_t cutoff =
      options.max_ticks != 0
          ? options.max_ticks
          : static_cast<std::uint64_t>(n) * default_round_cutoff(n);

  Rng rng(seed);
  std::vector<std::uint8_t> informed(n, 0);
  informed[source] = 1;
  std::uint32_t informed_count = 1;

  AsyncResult result;
  while (informed_count < n && result.ticks < cutoff) {
    ++result.ticks;
    const auto u = static_cast<Vertex>(rng.below(n));
    const Vertex v = g.random_neighbor(u, rng);
    // In the asynchronous model there are no rounds, so the exchange acts
    // on the current state.
    if (informed[u] && !informed[v]) {
      informed[v] = 1;
      ++informed_count;
    } else if (!informed[u] && informed[v] && options.pull_enabled) {
      informed[u] = 1;
      ++informed_count;
    }
  }
  result.completed = (informed_count == n);
  result.time_units =
      static_cast<double>(result.ticks) / static_cast<double>(n);
  return result;
}

}  // namespace rumor

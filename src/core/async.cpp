#include "core/async.hpp"

#include <memory>

#include "core/registry.hpp"
#include "support/assert.hpp"
#include "support/spec_text.hpp"

namespace rumor {

namespace {

template <class Mode>
AsyncResult run_async_impl(const Graph& g, Vertex source, std::uint64_t seed,
                           const AsyncOptions& options,
                           TransmissionModel& model, StampSet& informed) {
  const Vertex n = g.num_vertices();
  const std::uint64_t cutoff =
      options.max_ticks != 0
          ? options.max_ticks
          : static_cast<std::uint64_t>(n) * default_round_cutoff(n);
  informed.reset(n);
  informed.insert(source);
  std::uint32_t informed_count = 1;

  Rng rng(seed);
  AsyncResult result;
  while (informed_count < n && result.ticks < cutoff) {
    ++result.ticks;
    const auto u = static_cast<Vertex>(rng.below(n));
    const Vertex v = g.random_neighbor(u, rng);
    // In the asynchronous model there are no rounds, so the exchange acts
    // on the current state. The success draw fires only for state-changing
    // deliveries, mirroring the synchronous simulators.
    const bool u_informed = informed.contains(u);
    const bool v_informed = informed.contains(v);
    if (u_informed && !v_informed) {
      if (!model.attempt<Mode>(u, v)) continue;
      informed.insert(v);
      ++informed_count;
    } else if (!u_informed && v_informed && options.pull_enabled) {
      if (!model.attempt<Mode>(v, u)) continue;
      informed.insert(u);
      ++informed_count;
    }
  }
  result.completed = (informed_count == n);
  result.informed = informed_count;
  result.time_units =
      static_cast<double>(result.ticks) / static_cast<double>(n);
  return result;
}

}  // namespace

AsyncResult run_async_push_pull(const Graph& g, Vertex source,
                                std::uint64_t seed, AsyncOptions options,
                                TrialArena* arena) {
  RUMOR_REQUIRE(source < g.num_vertices());
  // The informed set lives in the arena's vertex marks (O(1) reset, zero
  // steady-state allocations); without an arena a private one is owned for
  // the duration of the run.
  std::unique_ptr<TrialArena> owned_arena;
  if (arena == nullptr) {
    owned_arena = std::make_unique<TrialArena>();
    arena = owned_arena.get();
  }
  TransmissionModel model;
  model.bind(g, options.transmission, *arena, seed);
  if (model.trivial()) {
    return run_async_impl<transmission::Uniform>(g, source, seed, options,
                                                 model, arena->vertex_marks);
  }
  return run_async_impl<transmission::General>(g, source, seed, options,
                                               model, arena->vertex_marks);
}

// ---- Scenario registry entry ------------------------------------------

namespace {

TrialResult async_entry_run(const Graph& g, const ProtocolOptions& options,
                            Vertex source, std::uint64_t seed,
                            TrialArena* arena) {
  const AsyncResult r = run_async_push_pull(
      g, source, seed, std::get<AsyncOptions>(options), arena);
  TrialResult result;
  result.rounds = r.time_units;  // ticks / n: comparable to sync rounds
  result.completed = r.completed;
  result.informed = r.informed;
  return result;
}

void async_entry_format(const ProtocolOptions& options,
                        const ProtocolOptions& defaults,
                        spec_text::KeyValWriter& out) {
  const auto& opt = std::get<AsyncOptions>(options);
  const auto& def = std::get<AsyncOptions>(defaults);
  if (opt.max_ticks != def.max_ticks) out.add("max_ticks", opt.max_ticks);
  if (opt.pull_enabled != def.pull_enabled) {
    out.add("pull", opt.pull_enabled ? "on" : "off");
  }
  format_transmission_probability_options(opt.transmission, def.transmission,
                                          out);
}

bool async_entry_set(ProtocolOptions& options, std::string_view key,
                     std::string_view value) {
  auto& opt = std::get<AsyncOptions>(options);
  if (key == "max_ticks") {
    const auto v = spec_text::parse_u64(value);
    if (!v) return false;
    opt.max_ticks = *v;
    return true;
  }
  if (key == "pull") {
    const auto v = spec_text::parse_bool(value);
    if (!v) return false;
    opt.pull_enabled = *v;
    return true;
  }
  return set_transmission_probability_option(opt.transmission, key, value);
}

TraceOptions* async_entry_trace(ProtocolOptions&) {
  return nullptr;  // the sequential-activation simulator records no traces
}

}  // namespace

void register_async_simulator(SimulatorRegistry& registry) {
  SimulatorEntry entry;
  entry.id = Protocol::async_push_pull;
  entry.name = "async";
  entry.summary =
      "asynchronous push-pull (Poisson clocks via sequential activation); "
      "rounds reported in time units (ticks/n)";
  entry.defaults = AsyncOptions{};
  entry.run = async_entry_run;
  entry.format_options = async_entry_format;
  entry.set_option = async_entry_set;
  entry.trace = async_entry_trace;
  registry.add(std::move(entry));
}

}  // namespace rumor

// VISIT-EXCHANGE (paper §3).
//
// A set A of agents performs independent random walks from the stationary
// distribution. Round 0: the source vertex s is informed, as is every agent
// standing on s. Each round: all agents step; an agent informed in a
// previous round informs the vertex it lands on; an agent standing on a
// vertex informed in this or any earlier round becomes informed.
// T_visitx = rounds until all vertices are informed (all agents follow
// within the same round — both counts are recorded).
//
// Cost is Θ(|A|) per round via the batched walk kernel. Agents iterate in
// ascending id order, which is the canonical total order the paper's
// Section 5 coupling assumes. All O(n + |A|) scratch state lives in a
// TrialArena — lent by the trial runner for allocation-free repeated
// trials, or privately owned when constructed without one.
#pragma once

#include <cstdint>
#include <memory>

#include "core/walk_options.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"
#include "support/trial_arena.hpp"
#include "walk/agents.hpp"

namespace rumor {

class VisitExchangeProcess {
 public:
  VisitExchangeProcess(const Graph& g, Vertex source, std::uint64_t seed,
                       WalkOptions options = {}, TrialArena* arena = nullptr);

  void step();

  [[nodiscard]] bool done() const {
    return informed_vertex_count_ == graph_->num_vertices();
  }
  [[nodiscard]] bool all_agents_informed() const {
    return informed_agent_count_ == agents_.count();
  }
  [[nodiscard]] Round round() const { return round_; }
  [[nodiscard]] std::uint32_t informed_vertex_count() const {
    return informed_vertex_count_;
  }
  [[nodiscard]] std::size_t informed_agent_count() const {
    return informed_agent_count_;
  }
  [[nodiscard]] bool vertex_informed(Vertex v) const {
    return arena_->vertex_inform_round.touched(v);
  }
  [[nodiscard]] std::uint32_t vertex_inform_round(Vertex v) const {
    return arena_->vertex_inform_round.get(v);
  }
  [[nodiscard]] bool agent_informed(Agent a) const {
    return arena_->agent_inform_round.touched(a);
  }
  [[nodiscard]] const AgentSystem& agents() const { return agents_; }
  [[nodiscard]] const Graph& graph() const { return *graph_; }
  [[nodiscard]] Laziness laziness() const { return laziness_; }

  // Runs until all vertices informed (or cutoff). result.agent_rounds is
  // the round when the last agent was informed.
  [[nodiscard]] RunResult run();

 private:
  void inform_vertex(Vertex v);
  void inform_agent_at(std::size_t order_index);
  template <class Mode>
  void step_impl();
  // Frontier-sharded round (sharded_ == true): the sharded walk kernel
  // steps all agents, then phases A and B each run as a parallel
  // candidate pass (per-slot addressable draws, per-shard output
  // segments) followed by a serial shard-major merge. See docs/perf.md
  // for the determinism contract.
  template <class Mode>
  void step_sharded();
  void activate_blocking();
  [[nodiscard]] bool halted() const;

  const Graph* graph_;
  Rng rng_;
  WalkOptions options_;
  TransmissionModel model_;
  Laziness laziness_;
  Round round_ = 0;
  Round cutoff_;
  std::uint32_t target_ = 0;  // blocking containment target (vertices)
  Round last_inform_round_ = 0;
  bool sharded_ = false;           // frontier-sharded engine this trial
  std::uint32_t shard_width_ = 1;  // execution-only; never affects draws
  std::uint64_t seed_ = 0;         // trial seed: keys the shard draw plane
  // Scratch state: the identity-default agent-order permutation and the
  // epoch-stamped inform rounds live here (see TrialArena).
  std::unique_ptr<TrialArena> owned_arena_;
  TrialArena* arena_;
  AgentSystem agents_;
  // Identity-default informed-prefix partition over the arena's order
  // arrays: [0, informed_agent_count_) are the informed agents.
  AgentOrderView order_;
  std::uint32_t informed_vertex_count_ = 0;
  std::size_t informed_agent_count_ = 0;
  Round agent_complete_round_ = kNoRoundYet;
};

[[nodiscard]] RunResult run_visit_exchange(const Graph& g, Vertex source,
                                           std::uint64_t seed,
                                           WalkOptions options = {});

class SimulatorRegistry;
// Registers the VISIT-EXCHANGE simulator (spec name "visit-exchange").
void register_visit_exchange_simulator(SimulatorRegistry& registry);

}  // namespace rumor

// VISIT-EXCHANGE (paper §3).
//
// A set A of agents performs independent random walks from the stationary
// distribution. Round 0: the source vertex s is informed, as is every agent
// standing on s. Each round: all agents step; an agent informed in a
// previous round informs the vertex it lands on; an agent standing on a
// vertex informed in this or any earlier round becomes informed.
// T_visitx = rounds until all vertices are informed (all agents follow
// within the same round — both counts are recorded).
//
// Cost is Θ(|A|) per round. Agents iterate in ascending id order, which is
// the canonical total order the paper's Section 5 coupling assumes.
#pragma once

#include <cstdint>

#include "core/walk_options.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"
#include "walk/agents.hpp"

namespace rumor {

class VisitExchangeProcess {
 public:
  VisitExchangeProcess(const Graph& g, Vertex source, std::uint64_t seed,
                       WalkOptions options = {});

  void step();

  [[nodiscard]] bool done() const {
    return informed_vertex_count_ == graph_->num_vertices();
  }
  [[nodiscard]] bool all_agents_informed() const {
    return informed_agent_count_ == agents_.count();
  }
  [[nodiscard]] Round round() const { return round_; }
  [[nodiscard]] std::uint32_t informed_vertex_count() const {
    return informed_vertex_count_;
  }
  [[nodiscard]] std::size_t informed_agent_count() const {
    return informed_agent_count_;
  }
  [[nodiscard]] bool vertex_informed(Vertex v) const {
    return vertex_inform_round_[v] != kNeverInformed;
  }
  [[nodiscard]] std::uint32_t vertex_inform_round(Vertex v) const {
    return vertex_inform_round_[v];
  }
  [[nodiscard]] bool agent_informed(Agent a) const {
    return agent_inform_round_[a] != kNeverInformed;
  }
  [[nodiscard]] const AgentSystem& agents() const { return agents_; }
  [[nodiscard]] const Graph& graph() const { return *graph_; }
  [[nodiscard]] Laziness laziness() const { return laziness_; }

  // Runs until all vertices informed (or cutoff). result.agent_rounds is
  // the round when the last agent was informed.
  [[nodiscard]] RunResult run();

 private:
  void inform_vertex(Vertex v);
  void inform_agent_at(std::size_t order_index);

  const Graph* graph_;
  Rng rng_;
  WalkOptions options_;
  Laziness laziness_;
  Round round_ = 0;
  Round cutoff_;
  AgentSystem agents_;
  std::uint32_t informed_vertex_count_ = 0;
  std::size_t informed_agent_count_ = 0;
  Round agent_complete_round_ = kNoRoundYet;
  std::vector<std::uint32_t> vertex_inform_round_;
  std::vector<std::uint32_t> agent_inform_round_;
  // Agent ids partitioned so [0, informed_agent_count_) are informed;
  // order_index_of_ inverts the permutation for O(1) swaps.
  std::vector<Agent> agent_order_;
  std::vector<std::uint32_t> order_index_of_;
  std::vector<std::uint32_t> curve_;
  std::vector<std::uint64_t> edge_traffic_;
};

[[nodiscard]] RunResult run_visit_exchange(const Graph& g, Vertex source,
                                           std::uint64_t seed,
                                           WalkOptions options = {});

}  // namespace rumor

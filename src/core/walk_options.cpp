#include "core/walk_options.hpp"

#include "graph/properties.hpp"

namespace rumor {

Laziness resolve_laziness(const Graph& g, LazyMode mode) {
  switch (mode) {
    case LazyMode::never:
      return Laziness::none;
    case LazyMode::always:
      return Laziness::half;
    case LazyMode::auto_bipartite:
      return is_bipartite(g) ? Laziness::half : Laziness::none;
  }
  return Laziness::none;
}

std::size_t resolve_agent_count(Vertex n, std::size_t agent_count,
                                double alpha) {
  return agent_count != 0 ? agent_count : agent_count_for(n, alpha);
}

}  // namespace rumor

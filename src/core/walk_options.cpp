#include "core/walk_options.hpp"

#include "graph/properties.hpp"
#include "support/spec_text.hpp"

namespace rumor {

Laziness resolve_laziness(const Graph& g, LazyMode mode) {
  switch (mode) {
    case LazyMode::never:
      return Laziness::none;
    case LazyMode::always:
      return Laziness::half;
    case LazyMode::auto_bipartite:
      return is_bipartite(g) ? Laziness::half : Laziness::none;
  }
  return Laziness::none;
}

std::size_t resolve_agent_count(Vertex n, std::size_t agent_count,
                                double alpha) {
  return agent_count != 0 ? agent_count : agent_count_for(n, alpha);
}

// ---- Spec text plumbing ------------------------------------------------

namespace {

const char* placement_token(Placement p) {
  switch (p) {
    case Placement::stationary:
      return "stationary";
    case Placement::one_per_vertex:
      return "one_per_vertex";
    case Placement::uniform:
      return "uniform";
    case Placement::at_vertex:
      return "at_vertex";
  }
  return "stationary";
}

const char* lazy_token(LazyMode mode) {
  switch (mode) {
    case LazyMode::never:
      return "never";
    case LazyMode::always:
      return "always";
    case LazyMode::auto_bipartite:
      return "auto";
  }
  return "never";
}

}  // namespace

bool set_trace_option(TraceOptions& trace, std::string_view key,
                      std::string_view value) {
  const auto flag = spec_text::parse_bool(value);
  if (!flag) return false;
  if (key == "curve") {
    trace.informed_curve = *flag;
  } else if (key == "inform_rounds") {
    trace.inform_rounds = *flag;
  } else if (key == "edge_traffic") {
    trace.edge_traffic = *flag;
  } else {
    return false;
  }
  return true;
}

void format_trace_options(const TraceOptions& trace,
                          const TraceOptions& defaults,
                          spec_text::KeyValWriter& out) {
  if (trace.informed_curve != defaults.informed_curve) {
    out.add("curve", trace.informed_curve ? "on" : "off");
  }
  if (trace.inform_rounds != defaults.inform_rounds) {
    out.add("inform_rounds", trace.inform_rounds ? "on" : "off");
  }
  if (trace.edge_traffic != defaults.edge_traffic) {
    out.add("edge_traffic", trace.edge_traffic ? "on" : "off");
  }
}

bool set_walk_option(WalkOptions& options, std::string_view key,
                     std::string_view value) {
  if (set_agent_walk_option(options, key, value)) return true;
  if (set_transmission_intervention_option(options.transmission, key,
                                           value)) {
    return true;
  }
  return set_trace_option(options.trace, key, value);
}

bool set_agent_walk_option(WalkOptions& options, std::string_view key,
                           std::string_view value) {
  if (key == "alpha") {
    const auto v = spec_text::parse_double(value);
    // Positive form rejects NaN; the upper bound rejects inf and the
    // overflow-large values that would make llround(alpha * n) UB.
    if (!v || !(*v > 0.0 && *v <= 1e9)) return false;
    options.alpha = *v;
  } else if (key == "agents") {
    const auto v = spec_text::parse_u64(value);
    if (!v) return false;
    options.agent_count = static_cast<std::size_t>(*v);
  } else if (key == "placement") {
    if (value == "stationary") {
      options.placement = Placement::stationary;
    } else if (value == "one_per_vertex") {
      options.placement = Placement::one_per_vertex;
    } else if (value == "uniform") {
      options.placement = Placement::uniform;
    } else if (value == "at_vertex") {
      options.placement = Placement::at_vertex;
    } else {
      return false;
    }
  } else if (key == "anchor") {
    if (value == "source") {
      options.placement_anchor = kNoVertex;
    } else {
      const auto v = spec_text::parse_u64(value);
      // kNoVertex is the "the source" sentinel; anything at or above it
      // would truncate in the Vertex cast.
      if (!v || *v >= kNoVertex) return false;
      options.placement_anchor = static_cast<Vertex>(*v);
    }
  } else if (key == "lazy") {
    if (value == "never") {
      options.lazy = LazyMode::never;
    } else if (value == "always") {
      options.lazy = LazyMode::always;
    } else if (value == "auto") {
      options.lazy = LazyMode::auto_bipartite;
    } else {
      return false;
    }
  } else if (key == "max_rounds") {
    const auto v = spec_text::parse_u64(value);
    if (!v) return false;
    options.max_rounds = *v;
  } else if (key == "engine") {
    if (value == "batched") {
      options.engine = StepEngine::batched;
    } else if (value == "scalar") {
      options.engine = StepEngine::scalar_checked;
    } else if (value == "counter") {
      options.engine = StepEngine::counter;
    } else {
      return false;
    }
  } else if (key == "tp") {
    return set_transmission_probability_option(options.transmission, key,
                                               value);
  } else {
    return false;
  }
  return true;
}

void format_walk_options(const WalkOptions& options,
                         const WalkOptions& defaults,
                         spec_text::KeyValWriter& out) {
  format_agent_walk_options(options, defaults, out);
  format_transmission_intervention_options(options.transmission,
                                           defaults.transmission, out);
  format_trace_options(options.trace, defaults.trace, out);
}

void format_agent_walk_options(const WalkOptions& options,
                               const WalkOptions& defaults,
                               spec_text::KeyValWriter& out) {
  if (options.alpha != defaults.alpha) out.add("alpha", options.alpha);
  if (options.agent_count != defaults.agent_count) {
    out.add("agents", static_cast<std::uint64_t>(options.agent_count));
  }
  if (options.placement != defaults.placement) {
    out.add("placement", placement_token(options.placement));
  }
  if (options.placement_anchor != defaults.placement_anchor) {
    out.add("anchor",
            static_cast<std::uint64_t>(options.placement_anchor));
  }
  if (options.lazy != defaults.lazy) {
    out.add("lazy", lazy_token(options.lazy));
  }
  if (options.max_rounds != defaults.max_rounds) {
    out.add("max_rounds", static_cast<std::uint64_t>(options.max_rounds));
  }
  if (options.engine != defaults.engine) {
    out.add("engine", options.engine == StepEngine::batched ? "batched"
                      : options.engine == StepEngine::counter
                          ? "counter"
                          : "scalar");
  }
  format_transmission_probability_options(options.transmission,
                                          defaults.transmission, out);
}

}  // namespace rumor

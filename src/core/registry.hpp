// SimulatorRegistry: the single dispatch point of the scenario API.
//
// Every simulator registers one entry — its Protocol tag, spec name,
// default options, an arena-aware trial entry point, and the option
// parse/format hooks that give ProtocolSpec its text round-trip. The
// built-in protocols are registered on first use (each core module exposes
// a register_*_simulator function; instance() calls them all), and
// downstream code can add its own entries with the same mechanism before
// running scenarios — extension is a registration, not a switch edit.
//
// Registration is not thread-safe against concurrent lookups: register
// everything up front, then run trials.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/protocol_spec.hpp"
#include "graph/graph.hpp"
#include "support/trial_arena.hpp"

namespace rumor {

struct SimulatorEntry {
  Protocol id = Protocol::push;
  std::string name;     // spec grammar head, e.g. "visit-exchange"
  std::string summary;  // one-liner for `rumor_run --list`
  ProtocolOptions defaults;

  // Runs one trial; `arena` may be null (the simulator then owns its
  // scratch). Must be a pure function of (g, options, source, seed) so the
  // trial runner's worker-count independence holds.
  TrialResult (*run)(const Graph& g, const ProtocolOptions& options,
                     Vertex source, std::uint64_t seed,
                     TrialArena* arena) = nullptr;

  // Appends the options that differ from `defaults` as key=value pairs
  // (canonical ProtocolSpec::name()).
  void (*format_options)(const ProtocolOptions& options,
                         const ProtocolOptions& defaults,
                         spec_text::KeyValWriter& out) = nullptr;

  // Applies one key=value pair; false = unknown key or bad value.
  bool (*set_option)(ProtocolOptions& options, std::string_view key,
                     std::string_view value) = nullptr;

  // The options' TraceOptions, or nullptr when the simulator records no
  // traces (multi-rumor, async).
  TraceOptions* (*trace)(ProtocolOptions& options) = nullptr;
};

class SimulatorRegistry {
 public:
  // The process-wide registry, with all built-in simulators registered.
  static SimulatorRegistry& instance();

  // Registers an entry; name and Protocol tag must be new, and the hooks
  // non-null (trace may be a function returning nullptr, not a null hook).
  void add(SimulatorEntry entry);

  [[nodiscard]] const SimulatorEntry* find(std::string_view name) const;
  [[nodiscard]] const SimulatorEntry* find(Protocol id) const;
  // As find(id), but a missing registration is a contract violation.
  [[nodiscard]] const SimulatorEntry& at(Protocol id) const;

  // Entries in registration order (built-ins first).
  [[nodiscard]] const std::vector<SimulatorEntry>& all() const {
    return entries_;
  }

 private:
  SimulatorRegistry();

  std::vector<SimulatorEntry> entries_;
};

// Entry hooks shared by the simulators whose options are a bare
// WalkOptions alternative; they delegate to
// set_walk_option/format_walk_options. The shared grammar does NOT parse
// `shards=` — simulators without a sharded round (dynamic-agent,
// multi-rumor) must reject the key rather than silently carry a dead
// option.
void walk_entry_format(const ProtocolOptions& options,
                       const ProtocolOptions& defaults,
                       spec_text::KeyValWriter& out);
bool walk_entry_set(ProtocolOptions& options, std::string_view key,
                    std::string_view value);
TraceOptions* walk_entry_trace(ProtocolOptions& options);

// As walk_entry_format/set, plus the `shards=` key — for the walk
// simulators with a frontier-sharded round engine (visit-exchange,
// meet-exchange, hybrid).
void sharded_walk_entry_format(const ProtocolOptions& options,
                               const ProtocolOptions& defaults,
                               spec_text::KeyValWriter& out);
bool sharded_walk_entry_set(ProtocolOptions& options, std::string_view key,
                            std::string_view value);

}  // namespace rumor

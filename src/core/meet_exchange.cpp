#include "core/meet_exchange.hpp"

#include "core/registry.hpp"
#include "core/sharding.hpp"
#include "support/philox.hpp"
#include "support/thread_pool.hpp"
#include "walk/step_kernel.hpp"

namespace rumor {

MeetExchangeProcess::MeetExchangeProcess(const Graph& g, Vertex source,
                                         std::uint64_t seed,
                                         WalkOptions options,
                                         TrialArena* arena)
    : graph_(&g),
      rng_(seed),
      options_(options),
      laziness_(resolve_laziness(g, options.lazy)),
      cutoff_(options.max_rounds != 0 ? options.max_rounds
                                      : default_round_cutoff(g.num_vertices())),
      owned_arena_(arena != nullptr ? nullptr : std::make_unique<TrialArena>()),
      arena_(arena != nullptr ? arena : owned_arena_.get()),
      agents_(g, resolve_agent_count(g, options), options.placement, rng_,
              resolve_anchor(options, source), arena_),
      source_(source) {
  RUMOR_REQUIRE(source < g.num_vertices());
  model_.bind(g, options_.transmission, *arena_, seed);
  // Sharded mode replaces the stepping engine wholesale (per-walker
  // addressable draws) and cannot express the per-edge traced stream; the
  // CLI rejects both combinations with a message, these REQUIREs are the
  // API-user backstop.
  sharded_ = sharding_enabled(options_.shards, g.num_vertices());
  if (sharded_) {
    RUMOR_REQUIRE(!options_.trace.edge_traffic);
    RUMOR_REQUIRE(options_.engine == StepEngine::batched);
    shard_width_ = resolve_shard_width(options_.shards);
    seed_ = seed;
  }
  const std::size_t count = agents_.count();
  arena_->agent_inform_round.reset(count, kNeverInformed);
  order_.reset(*arena_, count);
  arena_->vertex_marks.reset(g.num_vertices());
  if (options_.trace.informed_curve) arena_->curve.clear();
  if (options_.trace.edge_traffic) {
    arena_->edge_traffic.assign(g.num_edges(), 0);
  }

  // Round 0: agents standing on s are informed; otherwise s stays "active"
  // until its first visitor.
  for (Agent a = 0; a < count; ++a) {
    if (agents_.position(a) == source) {
      inform_agent_at(order_.index_of(a));
    }
  }
  source_active_ = (informed_agent_count_ == 0);
  if (options_.trace.informed_curve) {
    arena_->curve.push_back(static_cast<std::uint32_t>(informed_agent_count_));
  }
}

void MeetExchangeProcess::inform_agent_at(std::size_t order_index) {
  RUMOR_CHECK(order_index >= informed_agent_count_);
  const Agent a = order_.at(order_index);
  RUMOR_CHECK(!arena_->agent_inform_round.touched(a));
  arena_->agent_inform_round.set(a, static_cast<std::uint32_t>(round_));
  order_.swap(order_index, informed_agent_count_);
  ++informed_agent_count_;
  last_inform_round_ = round_;
}

void MeetExchangeProcess::step() {
  if (sharded_) {
    if (model_.trivial()) {
      step_sharded<transmission::Uniform>();
    } else {
      step_sharded<transmission::General>();
    }
  } else if (model_.trivial()) {
    step_impl<transmission::Uniform>();
  } else {
    step_impl<transmission::General>();
  }
}

template <class Mode>
void MeetExchangeProcess::step_impl() {
  constexpr bool kGeneral = std::is_same_v<Mode, transmission::General>;
  ++round_;

  // Traced and untraced stepping run the same kernel and consume the RNG
  // identically, so tracing never changes the trajectory.
  std::uint64_t* traffic =
      options_.trace.edge_traffic ? arena_->edge_traffic.data() : nullptr;
  step_walks(*graph_, agents_.positions_mut(), rng_, laziness_, traffic,
             options_.engine);

  // Mark the vertices occupied by agents that were informed before this
  // round; exchanges only flow from those agents (paper: "exactly one of
  // them was informed in a previous round"). Stifled agents and agents on
  // quarantined vertices mark nothing — they no longer share.
  const std::size_t count = agents_.count();
  const std::size_t informed_at_start = informed_agent_count_;
  arena_->vertex_marks.advance();
  for (std::size_t idx = 0; idx < informed_at_start; ++idx) {
    const Agent a = order_.at(idx);
    const Vertex v = agents_.position(a);
    if constexpr (kGeneral) {
      if (!model_.can_transmit<Mode>(arena_->agent_inform_round.get(a), v,
                                     round_)) {
        continue;
      }
    }
    arena_->vertex_marks.insert(v);
  }

  // Uninformed agents learn from meetings, or from the still-active source
  // (which transmits like an entity informed at round 0).
  bool source_met = false;
  for (std::size_t idx = informed_at_start; idx < count; ++idx) {
    const Agent a = order_.at(idx);
    const Vertex v = agents_.position(a);
    if (arena_->vertex_marks.contains(v)) {
      if constexpr (kGeneral) {
        if (!model_.attempt<Mode>(v, v)) continue;
      }
      inform_agent_at(idx);
    } else if (source_active_ && v == source_) {
      if constexpr (kGeneral) {
        if (!model_.can_transmit<Mode>(0, source_, round_) ||
            !model_.attempt<Mode>(source_, v)) {
          continue;
        }
      }
      // All simultaneous first visitors are informed (paper §3).
      inform_agent_at(idx);
      source_met = true;
    }
  }
  if (source_met) source_active_ = false;

  if (options_.trace.informed_curve) {
    arena_->curve.push_back(static_cast<std::uint32_t>(informed_agent_count_));
  }
}

// One frontier-sharded round — law-equivalent to step_impl<Mode>. The
// sharded walk kernel steps every agent (per-walker addressable draws);
// the mark and meet scans then each run as a parallel candidate pass over
// balanced order-index ranges followed by a serial shard-major merge:
//
//   Mark pass (previously informed agents mark their vertex) draws
//   nothing — can_transmit is deterministic — so its per-shard occupancy
//   candidates (the vertices informed walkers landed on this round) merge
//   into the StampSet in any order; insertion is idempotent and the set
//   is fixed before the meet pass reads it, exactly as in the serial
//   round.
//
//   Meet pass (uninformed agents on a marked vertex, or on the
//   still-active source, become informed) keys every pairing decision by
//   the agent's logical order index via the dedicated `meet` draw phase.
//   The branch an agent takes (marked vertex beats source) depends only
//   on the fixed mark set and round-start source_active_, so candidates
//   are a pure function of the round-start state and the draw plane —
//   independent of partition and worker count. Candidates are order
//   indices, distinct and ascending, so the merge's inform_agent_at(idx)
//   calls only ever swap positions <= idx and the informed-prefix CHECK
//   holds (the i-th candidate's index is >= informed_at_start + i).
//   source_met is re-derived at merge time from the same fixed state the
//   pass branched on; source_active_ flips only after the merge, as the
//   serial loop's post-loop flip does.
template <class Mode>
void MeetExchangeProcess::step_sharded() {
  constexpr bool kGeneral = std::is_same_v<Mode, transmission::General>;
  ++round_;

  step_walks_sharded(*graph_, agents_.positions_mut(), seed_, round_,
                     laziness_, shard_width_);

  auto& scratch = arena_->shard_scratch;
  const std::uint32_t width = shard_width_;
  if (scratch.size() < width) scratch.resize(width);
  const std::size_t count = agents_.count();
  // Reserve the analytic per-shard bound (<= ceil(agents/width) items per
  // range; ~|A| total) once, so steady-state trials stay allocation-free
  // instead of reallocating at each trial's random high-water mark.
  const std::size_t cap = count / width + 1;
  for (std::uint32_t s = 0; s < width; ++s) {
    scratch[s].candidates.reserve(cap);
  }
  const std::size_t informed_at_start = informed_agent_count_;
  const ShardPlane plane(seed_, round_);

  // Mark candidates: the vertex each previously-informed agent occupies
  // (stifled agents and quarantined vertices mark nothing). The clears run
  // serially up front: parallel_for_ranges clamps the shard count to the
  // item count, so a clear inside the callback would skip the tail
  // segments whenever fewer items than width exist and leave stale
  // candidates for the merge.
  arena_->vertex_marks.advance();
  for (std::uint32_t s = 0; s < width; ++s) scratch[s].candidates.clear();
  shard_pool().parallel_for_ranges(
      informed_at_start, width,
      [&](std::size_t s, std::size_t begin, std::size_t end) {
        auto& out = scratch[s].candidates;
        for (std::size_t idx = begin; idx < end; ++idx) {
          const Agent a = order_.at(idx);
          const Vertex v = agents_.position(a);
          if constexpr (kGeneral) {
            if (!model_.can_transmit<Mode>(arena_->agent_inform_round.get(a),
                                           v, round_)) {
              continue;
            }
          }
          out.push_back(v);
        }
      });
  for (std::uint32_t s = 0; s < width; ++s) {
    for (const Vertex v : scratch[s].candidates) {
      arena_->vertex_marks.insert(v);
    }
  }

  // Meet candidates: order indices of uninformed agents on a marked vertex
  // or at the still-active source (marks fixed by now, so the branch
  // choice is deterministic per agent).
  for (std::uint32_t s = 0; s < width; ++s) scratch[s].candidates.clear();
  shard_pool().parallel_for_ranges(
      count - informed_at_start, width,
      [&](std::size_t s, std::size_t begin, std::size_t end) {
        auto& out = scratch[s].candidates;
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t idx = informed_at_start + i;
          const Agent a = order_.at(idx);
          const Vertex v = agents_.position(a);
          if (arena_->vertex_marks.contains(v)) {
            if constexpr (kGeneral) {
              SlotDraws draws(plane, kShardPhaseMeet,
                              static_cast<std::uint32_t>(idx));
              if (!model_.attempt_from<Mode>(v, draws)) continue;
            }
          } else if (source_active_ && v == source_) {
            if constexpr (kGeneral) {
              SlotDraws draws(plane, kShardPhaseMeet,
                              static_cast<std::uint32_t>(idx));
              if (!model_.can_transmit<Mode>(0, source_, round_) ||
                  !model_.attempt_from<Mode>(v, draws)) {
                continue;
              }
            }
          } else {
            continue;
          }
          out.push_back(static_cast<std::uint32_t>(idx));
        }
      });
  // Whether a candidate met the source (rather than a marked vertex) is
  // re-derived from the branch condition above; positions and order_.at(idx)
  // for un-merged indices are stable across inform_agent_at's swaps.
  const bool source_marked =
      source_active_ && arena_->vertex_marks.contains(source_);
  bool source_met = false;
  for (std::uint32_t s = 0; s < width; ++s) {
    for (const std::uint32_t idx : scratch[s].candidates) {
      if (source_active_ && !source_marked &&
          agents_.position(order_.at(idx)) == source_) {
        source_met = true;
      }
      inform_agent_at(idx);
    }
  }
  if (source_met) source_active_ = false;

  if (options_.trace.informed_curve) {
    arena_->curve.push_back(static_cast<std::uint32_t>(informed_agent_count_));
  }
}

bool MeetExchangeProcess::halted() const {
  if (done() || round_ >= cutoff_) return true;
  if (model_.trivial()) return false;
  // The still-active source transmits like an entity informed at round 0 —
  // which is exactly what last_inform_round_'s initial value encodes, so
  // the generic extinction rule covers it.
  return model_.extinct(round_, last_inform_round_);
}

RunResult MeetExchangeProcess::run() {
  while (!halted()) step();
  RunResult result;
  result.rounds = round_;
  result.completed = done();
  result.agent_rounds = round_;
  result.informed = static_cast<std::uint32_t>(informed_agent_count_);
  if (options_.trace.informed_curve) {
    result.informed_curve = arena_->curve;
    result.stifled_curve =
        derive_stifled_curve(result.informed_curve, model_.stifle());
  }
  if (options_.trace.inform_rounds) {
    result.agent_inform_round = arena_->agent_inform_round.to_vector();
  }
  if (options_.trace.edge_traffic) result.edge_traffic = arena_->edge_traffic;
  return result;
}

RunResult run_meet_exchange(const Graph& g, Vertex source, std::uint64_t seed,
                            WalkOptions options) {
  return MeetExchangeProcess(g, source, seed, options).run();
}

// ---- Scenario registry entry ------------------------------------------

namespace {

TrialResult meet_exchange_entry_run(const Graph& g,
                                    const ProtocolOptions& options,
                                    Vertex source, std::uint64_t seed,
                                    TrialArena* arena) {
  return to_trial_result(
      MeetExchangeProcess(g, source, seed, std::get<WalkOptions>(options),
                          arena)
          .run());
}

}  // namespace

void register_meet_exchange_simulator(SimulatorRegistry& registry) {
  SimulatorEntry entry;
  entry.id = Protocol::meet_exchange;
  entry.name = "meet-exchange";
  entry.summary =
      "MEET-EXCHANGE: only agents carry the rumor; meetings exchange it";
  // The paper's convention: lazy walks exactly on bipartite graphs.
  entry.defaults = MeetExchangeProcess::default_options();
  entry.run = meet_exchange_entry_run;
  entry.format_options = sharded_walk_entry_format;
  entry.set_option = sharded_walk_entry_set;
  entry.trace = walk_entry_trace;
  registry.add(std::move(entry));
}

}  // namespace rumor

#include "core/dynamic_agents.hpp"

#include "core/registry.hpp"
#include "support/spec_text.hpp"

#include "walk/alias.hpp"

namespace rumor {

namespace {

// Checked before any member that consumes the stationary distribution is
// built: on an edgeless graph every degree weight is zero, so placement and
// respawn sampling are undefined. Failing here gives the caller the real
// precondition instead of an alias-table invariant.
const Graph& checked_substrate(const Graph& g) {
  RUMOR_REQUIRE(g.num_edges() > 0);
  return g;
}

}  // namespace

DynamicVisitExchangeProcess::DynamicVisitExchangeProcess(
    const Graph& g, Vertex source, std::uint64_t seed,
    DynamicAgentOptions options, TrialArena* arena)
    : graph_(&checked_substrate(g)),
      rng_(seed),
      options_(options),
      cutoff_(options.walk.max_rounds != 0
                  ? options.walk.max_rounds
                  : default_round_cutoff(g.num_vertices())),
      owned_arena_(arena != nullptr ? nullptr : std::make_unique<TrialArena>()),
      arena_(arena != nullptr ? arena : owned_arena_.get()),
      agents_(g, resolve_agent_count(g, options.walk), options.walk.placement,
              rng_, resolve_anchor(options.walk, source), arena_),
      stationary_(&stationary_sampler(g, arena_, sampler_keepalive_)) {
  RUMOR_REQUIRE(source < g.num_vertices());
  RUMOR_REQUIRE(options.churn >= 0.0 && options.churn < 1.0);
  RUMOR_REQUIRE(options.loss_fraction >= 0.0 && options.loss_fraction <= 1.0);
  model_.bind(g, options_.walk.transmission, *arena_, seed);
  target_ = g.num_vertices();
  const std::size_t count = agents_.count();
  alive_count_ = count;
  arena_->vertex_inform_round.reset(g.num_vertices(), kNeverInformed);
  arena_->agent_inform_round.reset(count, kNeverInformed);
  arena_->agent_alive.reset(count, 1);
  arena_->agent_marks.reset(count);  // born-this-round marks
  if (options_.walk.trace.informed_curve) arena_->curve.clear();

  arena_->vertex_inform_round.set(source, 0);
  informed_vertex_count_ = 1;
  for (Agent a = 0; a < count; ++a) {
    if (agents_.position(a) == source) {
      arena_->agent_inform_round.set(a, 0);
      ++informed_agent_count_;
    }
  }
  if (options_.walk.trace.informed_curve) {
    arena_->curve.push_back(informed_vertex_count_);
  }
}

void DynamicVisitExchangeProcess::respawn(Agent a) {
  if (arena_->agent_inform_round.get(a) != kNeverInformed) {
    --informed_agent_count_;
  }
  arena_->agent_inform_round.set(a, kNeverInformed);
  agents_.set_position(a, static_cast<Vertex>(stationary_->sample(rng_)));
}

void DynamicVisitExchangeProcess::kill(Agent a) {
  if (arena_->agent_alive.get(a) == 0) return;
  if (arena_->agent_inform_round.get(a) != kNeverInformed) {
    --informed_agent_count_;
  }
  arena_->agent_inform_round.set(a, kNeverInformed);
  arena_->agent_alive.set(a, 0);
  --alive_count_;
}

void DynamicVisitExchangeProcess::activate_blocking() {
  const Vertex n = graph_->num_vertices();
  target_ =
      n - model_.count_blocked_uninformed(arena_->vertex_inform_round, n);
}

void DynamicVisitExchangeProcess::step() {
  if (model_.trivial()) {
    step_impl<transmission::Uniform>();
  } else {
    step_impl<transmission::General>();
  }
}

template <class Mode>
void DynamicVisitExchangeProcess::step_impl() {
  constexpr bool kGeneral = std::is_same_v<Mode, transmission::General>;
  ++round_;
  if constexpr (kGeneral) {
    if (model_.blocking() && round_ == model_.block_round()) {
      activate_blocking();
    }
  }
  const std::size_t count = agents_.count();

  // Correlated one-shot loss (experiment E16).
  if (round_ == options_.loss_round && options_.loss_fraction > 0.0) {
    for (Agent a = 0; a < count; ++a) {
      if (arena_->agent_alive.get(a) != 0 &&
          rng_.chance(options_.loss_fraction)) {
        kill(a);
      }
    }
  }

  // Churn: dead-and-reborn agents appear uninformed at a stationary vertex
  // and do not move this round (they were just born there).
  arena_->agent_marks.advance();
  for (Agent a = 0; a < count; ++a) {
    if (arena_->agent_alive.get(a) == 0) continue;
    if (options_.churn > 0.0 && rng_.chance(options_.churn)) {
      respawn(a);
      arena_->agent_marks.insert(a);
    }
  }

  // Movement.
  for (Agent a = 0; a < count; ++a) {
    if (arena_->agent_alive.get(a) == 0) continue;
    if (arena_->agent_marks.contains(a)) continue;
    agents_.set_position(
        a, step_from(*graph_, agents_.position(a), rng_, Laziness::none));
  }

  // Phase A: agents informed before this round inform their vertex
  // (stifled agents and quarantined vertices excepted).
  for (Agent a = 0; a < count; ++a) {
    if (arena_->agent_alive.get(a) == 0 ||
        arena_->agent_inform_round.get(a) >= round_) {
      continue;
    }
    const Vertex v = agents_.position(a);
    if (arena_->vertex_inform_round.touched(v)) continue;
    if constexpr (kGeneral) {
      if (!model_.can_transmit<Mode>(arena_->agent_inform_round.get(a), v,
                                     round_) ||
          !model_.attempt<Mode>(v, v)) {
        continue;
      }
    }
    arena_->vertex_inform_round.set(v, static_cast<std::uint32_t>(round_));
    ++informed_vertex_count_;
    last_inform_round_ = round_;
  }

  // Phase B: uninformed agents learn from informed vertices (unless the
  // vertex has stifled or is quarantined).
  for (Agent a = 0; a < count; ++a) {
    if (arena_->agent_alive.get(a) == 0 ||
        arena_->agent_inform_round.get(a) != kNeverInformed) {
      continue;
    }
    const Vertex v = agents_.position(a);
    if (!arena_->vertex_inform_round.touched(v)) continue;
    if constexpr (kGeneral) {
      if (!model_.can_transmit<Mode>(arena_->vertex_inform_round.get(v), v,
                                     round_) ||
          !model_.attempt<Mode>(v, v)) {
        continue;
      }
    }
    arena_->agent_inform_round.set(a, static_cast<std::uint32_t>(round_));
    ++informed_agent_count_;
    last_inform_round_ = round_;
  }

  if (options_.walk.trace.informed_curve) {
    arena_->curve.push_back(informed_vertex_count_);
  }
}

bool DynamicVisitExchangeProcess::halted() const {
  if (done() || round_ >= cutoff_) return true;
  if (model_.trivial()) return false;
  if (informed_vertex_count_ >= target_) return true;  // containment
  return model_.extinct(round_, last_inform_round_);
}

RunResult DynamicVisitExchangeProcess::run() {
  while (!halted()) step();
  RunResult result;
  result.rounds = round_;
  result.completed = done();
  result.agent_rounds = round_;
  result.informed = informed_vertex_count_;
  if (options_.walk.trace.informed_curve) {
    result.informed_curve = arena_->curve;
    result.stifled_curve =
        derive_stifled_curve(result.informed_curve, model_.stifle());
  }
  if (options_.walk.trace.inform_rounds) {
    result.vertex_inform_round = arena_->vertex_inform_round.to_vector();
    result.agent_inform_round = arena_->agent_inform_round.to_vector();
  }
  return result;
}

RunResult run_dynamic_visit_exchange(const Graph& g, Vertex source,
                                     std::uint64_t seed,
                                     DynamicAgentOptions options,
                                     TrialArena* arena) {
  return DynamicVisitExchangeProcess(g, source, seed, options, arena).run();
}

// ---- Scenario registry entry ------------------------------------------

namespace {

TrialResult dynamic_agent_entry_run(const Graph& g,
                                    const ProtocolOptions& options,
                                    Vertex source, std::uint64_t seed,
                                    TrialArena* arena) {
  return to_trial_result(
      DynamicVisitExchangeProcess(g, source, seed,
                                  std::get<DynamicAgentOptions>(options),
                                  arena)
          .run());
}

void dynamic_agent_entry_format(const ProtocolOptions& options,
                                const ProtocolOptions& defaults,
                                spec_text::KeyValWriter& out) {
  const auto& opt = std::get<DynamicAgentOptions>(options);
  const auto& def = std::get<DynamicAgentOptions>(defaults);
  if (opt.churn != def.churn) out.add("churn", opt.churn);
  if (opt.loss_round != def.loss_round) {
    out.add("loss_round", static_cast<std::uint64_t>(opt.loss_round));
  }
  if (opt.loss_fraction != def.loss_fraction) {
    out.add("loss_fraction", opt.loss_fraction);
  }
  format_walk_options(opt.walk, def.walk, out);
}

bool dynamic_agent_entry_set(ProtocolOptions& options, std::string_view key,
                             std::string_view value) {
  auto& opt = std::get<DynamicAgentOptions>(options);
  if (key == "churn") {
    const auto v = spec_text::parse_double(value);
    if (!v || !(*v >= 0.0 && *v <= 1.0)) return false;  // NaN-proof
    opt.churn = *v;
    return true;
  }
  if (key == "loss_round") {
    const auto v = spec_text::parse_u64(value);
    if (!v) return false;
    opt.loss_round = *v;
    return true;
  }
  if (key == "loss_fraction") {
    const auto v = spec_text::parse_double(value);
    if (!v || !(*v >= 0.0 && *v <= 1.0)) return false;  // NaN-proof
    opt.loss_fraction = *v;
    return true;
  }
  return set_walk_option(opt.walk, key, value);
}

TraceOptions* dynamic_agent_entry_trace(ProtocolOptions& options) {
  return &std::get<DynamicAgentOptions>(options).walk.trace;
}

}  // namespace

void register_dynamic_agent_simulator(SimulatorRegistry& registry) {
  SimulatorEntry entry;
  entry.id = Protocol::dynamic_agent;
  entry.name = "dynamic-agent";
  entry.summary =
      "visit-exchange with agent churn, respawn, and one-shot bulk loss";
  entry.defaults = DynamicAgentOptions{};
  entry.run = dynamic_agent_entry_run;
  entry.format_options = dynamic_agent_entry_format;
  entry.set_option = dynamic_agent_entry_set;
  entry.trace = dynamic_agent_entry_trace;
  registry.add(std::move(entry));
}

}  // namespace rumor

#include "core/dynamic_agents.hpp"

#include <vector>

namespace rumor {

namespace {

[[nodiscard]] std::vector<double> degree_weights(const Graph& g) {
  std::vector<double> weights(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    weights[v] = static_cast<double>(g.degree(v));
  }
  return weights;
}

}  // namespace

DynamicVisitExchangeProcess::DynamicVisitExchangeProcess(
    const Graph& g, Vertex source, std::uint64_t seed,
    DynamicAgentOptions options)
    : graph_(&g),
      rng_(seed),
      options_(options),
      cutoff_(options.walk.max_rounds != 0
                  ? options.walk.max_rounds
                  : default_round_cutoff(g.num_vertices())),
      agents_(g, resolve_agent_count(g, options.walk),
              options.walk.placement, rng_, resolve_anchor(options.walk, source)),
      stationary_(degree_weights(g)),
      vertex_inform_round_(g.num_vertices(), kNeverInformed),
      agent_inform_round_(agents_.count(), kNeverInformed),
      agent_alive_(agents_.count(), 1) {
  RUMOR_REQUIRE(source < g.num_vertices());
  RUMOR_REQUIRE(options.churn >= 0.0 && options.churn < 1.0);
  RUMOR_REQUIRE(options.loss_fraction >= 0.0 && options.loss_fraction <= 1.0);
  alive_count_ = agents_.count();

  vertex_inform_round_[source] = 0;
  informed_vertex_count_ = 1;
  for (Agent a = 0; a < agents_.count(); ++a) {
    if (agents_.position(a) == source) {
      agent_inform_round_[a] = 0;
      ++informed_agent_count_;
    }
  }
  if (options_.walk.trace.informed_curve) {
    curve_.push_back(informed_vertex_count_);
  }
}

void DynamicVisitExchangeProcess::respawn(Agent a) {
  if (agent_inform_round_[a] != kNeverInformed) --informed_agent_count_;
  agent_inform_round_[a] = kNeverInformed;
  agents_.set_position(a, static_cast<Vertex>(stationary_.sample(rng_)));
}

void DynamicVisitExchangeProcess::kill(Agent a) {
  if (!agent_alive_[a]) return;
  if (agent_inform_round_[a] != kNeverInformed) --informed_agent_count_;
  agent_inform_round_[a] = kNeverInformed;
  agent_alive_[a] = 0;
  --alive_count_;
}

void DynamicVisitExchangeProcess::step() {
  ++round_;
  const std::size_t count = agents_.count();

  // Correlated one-shot loss (experiment E16).
  if (round_ == options_.loss_round && options_.loss_fraction > 0.0) {
    for (Agent a = 0; a < count; ++a) {
      if (agent_alive_[a] && rng_.chance(options_.loss_fraction)) kill(a);
    }
  }

  // Churn: dead-and-reborn agents appear uninformed at a stationary vertex
  // and do not move this round (they were just born there).
  std::vector<std::uint8_t> born_now;
  if (options_.churn > 0.0) born_now.assign(count, 0);
  for (Agent a = 0; a < count; ++a) {
    if (!agent_alive_[a]) continue;
    if (options_.churn > 0.0 && rng_.chance(options_.churn)) {
      respawn(a);
      born_now[a] = 1;
    }
  }

  // Movement.
  for (Agent a = 0; a < count; ++a) {
    if (!agent_alive_[a]) continue;
    if (!born_now.empty() && born_now[a]) continue;
    agents_.set_position(
        a, step_from(*graph_, agents_.position(a), rng_, Laziness::none));
  }

  // Phase A: agents informed before this round inform their vertex.
  for (Agent a = 0; a < count; ++a) {
    if (!agent_alive_[a] || agent_inform_round_[a] >= round_) continue;
    const Vertex v = agents_.position(a);
    if (vertex_inform_round_[v] == kNeverInformed) {
      vertex_inform_round_[v] = static_cast<std::uint32_t>(round_);
      ++informed_vertex_count_;
    }
  }

  // Phase B: uninformed agents learn from informed vertices.
  for (Agent a = 0; a < count; ++a) {
    if (!agent_alive_[a] || agent_inform_round_[a] != kNeverInformed) continue;
    if (vertex_inform_round_[agents_.position(a)] != kNeverInformed) {
      agent_inform_round_[a] = static_cast<std::uint32_t>(round_);
      ++informed_agent_count_;
    }
  }

  if (options_.walk.trace.informed_curve) {
    curve_.push_back(informed_vertex_count_);
  }
}

RunResult DynamicVisitExchangeProcess::run() {
  while (!done() && round_ < cutoff_) step();
  RunResult result;
  result.rounds = round_;
  result.completed = done();
  result.agent_rounds = round_;
  if (options_.walk.trace.informed_curve) result.informed_curve = curve_;
  if (options_.walk.trace.inform_rounds) {
    result.vertex_inform_round = vertex_inform_round_;
    result.agent_inform_round = agent_inform_round_;
  }
  return result;
}

RunResult run_dynamic_visit_exchange(const Graph& g, Vertex source,
                                     std::uint64_t seed,
                                     DynamicAgentOptions options) {
  return DynamicVisitExchangeProcess(g, source, seed, options).run();
}

}  // namespace rumor

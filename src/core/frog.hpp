// The frog model (related work, §2: Alves et al. '02, Popov '03,
// Hermon '18): one sleeping agent per vertex ("frog"); the source's frog is
// awake and informed. Awake frogs perform independent random walks; when an
// awake frog visits a vertex, all frogs sleeping there wake up (and are
// informed) and start walking in the next round.
//
// This is the natural "activation spreading" counterpart of the paper's
// protocols: unlike visit-exchange the walker population grows with the
// informed set, so early rounds are cheap and the process self-accelerates.
// Included for the related-work comparison bench; the broadcast time is the
// round when the last frog wakes (equivalently, when every vertex has been
// visited by an awake frog).
//
// Scratch state (positions, visit rounds, the awake-prefix permutation)
// lives in a TrialArena — lent for allocation-free repeated trials, or
// privately owned when constructed without one.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/protocol.hpp"
#include "core/transmission.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"
#include "support/trial_arena.hpp"
#include "walk/agents.hpp"

namespace rumor {

struct FrogOptions {
  std::uint32_t frogs_per_vertex = 1;
  Laziness laziness = Laziness::none;
  Round max_rounds = 0;  // 0 = default_round_cutoff(n)
  // Contact rule: a visit wakes the vertex's sleepers with the model's
  // receive probability; stifled frogs keep walking but wake nobody.
  TransmissionOptions transmission;
  TraceOptions trace;

  friend bool operator==(const FrogOptions&, const FrogOptions&) = default;
};

class SimulatorRegistry;
// Registers the frog simulator (spec name "frog").
void register_frog_simulator(SimulatorRegistry& registry);

class FrogProcess {
 public:
  FrogProcess(const Graph& g, Vertex source, std::uint64_t seed,
              FrogOptions options = {}, TrialArena* arena = nullptr);

  void step();

  [[nodiscard]] bool done() const { return awake_count_ == frog_count_; }
  [[nodiscard]] Round round() const { return round_; }
  [[nodiscard]] std::size_t awake_count() const { return awake_count_; }
  [[nodiscard]] std::size_t frog_count() const { return frog_count_; }
  [[nodiscard]] bool vertex_visited(Vertex v) const {
    return arena_->vertex_inform_round.touched(v);
  }

  [[nodiscard]] RunResult run();

 private:
  void wake_at(Vertex v);
  template <class Mode>
  void step_impl();
  void activate_blocking();
  [[nodiscard]] bool halted() const;
  // A frog's wake round is its home vertex's first-visit round.
  [[nodiscard]] std::uint32_t wake_round(std::uint32_t f) const {
    return arena_->vertex_inform_round.get(f / options_.frogs_per_vertex);
  }

  const Graph* graph_;
  Rng rng_;
  FrogOptions options_;
  TransmissionModel model_;
  Round round_ = 0;
  Round cutoff_;
  std::size_t target_awake_ = 0;  // blocking containment target (frogs)
  Round last_inform_round_ = 0;
  std::unique_ptr<TrialArena> owned_arena_;
  TrialArena* arena_;
  // Frog f sleeps at vertex f / frogs_per_vertex until woken; positions use
  // the arena's reusable agent-position buffer, the first-visit rounds its
  // per-vertex EpochArray, and the awake-prefix partition its
  // identity-default order arrays.
  std::vector<Vertex>* positions_;
  AgentOrderView order_;
  std::size_t frog_count_ = 0;
  std::size_t awake_count_ = 0;
};

[[nodiscard]] RunResult run_frog(const Graph& g, Vertex source,
                                 std::uint64_t seed, FrogOptions options = {},
                                 TrialArena* arena = nullptr);

}  // namespace rumor

// Transmission-model layer: who succeeds in passing the rumor on contact.
//
// The paper's protocols assume homogeneous, always-successful transmission;
// this module makes the contact rule a *data* property shared by every
// simulator in the registry instead of a per-simulator flag:
//
//   * per-vertex receive probabilities — uniform (`tp=0.5`) or
//     degree-scaled (`tp=deg^-0.5`, Vega-Oliveros et al.: heterogeneous
//     transmission in social networks), materialized once per (graph,
//     options) binding as CSR-aligned per-vertex and per-edge float fields
//     in TrialArena scratch;
//   * interventions (Zehmakan et al.: why rumors spread fast, and how to
//     stop it) — age-based stifling (`stifle=k`: an informed entity
//     transmits only during the k rounds after it was informed) and
//     targeted vertex blocking (`block=f` quarantines the top f·n
//     highest-degree vertices from round `block@t` on: they neither
//     receive nor transmit).
//
// Every contact site draws through TransmissionModel::attempt(u, v, rng),
// templated on a mode tag: the `transmission::Uniform` instantiation
// compiles to "always succeed" — zero extra work, zero extra RNG draws —
// so the default tp=1/no-intervention configuration reproduces the
// pre-transmission trial samples byte-identically (pinned in
// tests/test_transmission.cpp), and each simulator picks the instantiation
// once per round, not once per contact.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <type_traits>
#include <vector>

#include "core/protocol.hpp"
#include "graph/graph.hpp"
#include "support/philox.hpp"
#include "support/rng.hpp"
#include "support/trial_arena.hpp"

namespace rumor {

namespace spec_text {
class KeyValWriter;
}  // namespace spec_text

namespace transmission {
// Compile-time mode tags for the per-round loop specialization: Uniform is
// the trivial homogeneous model (tp=1, no interventions) whose attempt()
// and intervention predicates fold away entirely; General reads the bound
// fields.
struct Uniform {};
struct General {};
}  // namespace transmission

// The grammar-facing half: what a ProtocolSpec carries. Keys (shared by
// every registered simulator through its option hooks):
//   tp=0.5        uniform contact success probability in (0, 1]
//   tp=deg^-0.5   degree-scaled receive probability min(1, deg(v)^beta)
//   stifle=3      informed entities transmit for 3 rounds, then stifle
//   block=0.1     quarantine the top 10% highest-degree vertices
//   block@t=5     ...starting at round 5 (default 1)
// All values sweep with the range/list syntax (`tp={0.25,0.5,1}`).
struct TransmissionOptions {
  double tp = 1.0;           // uniform success probability
  double tp_exponent = 0.0;  // degree_scaled: p(v) = min(1, deg(v)^exponent)
  bool degree_scaled = false;
  std::uint32_t stifle = 0;     // 0 = spreaders never stifle
  double block_fraction = 0.0;  // 0 = no blocking
  Round block_round = 1;        // blocking activates at this round's start

  // True for the homogeneous always-successful default: the simulators take
  // the byte-identical transmission-free fast path.
  [[nodiscard]] bool trivial() const {
    return !degree_scaled && tp == 1.0 && stifle == 0 &&
           block_fraction == 0.0;
  }

  friend bool operator==(const TransmissionOptions&,
                         const TransmissionOptions&) = default;
};

// Option plumbing shared by the registry entries. The full set accepts
// every key above; the probability-only variant accepts just `tp` — for
// simulators whose bookkeeping cannot honor interventions (multi-rumor's
// packed rumor masks, async's tick clock), where silently parsing
// `stifle=` would be a lie.
[[nodiscard]] bool set_transmission_option(TransmissionOptions& options,
                                           std::string_view key,
                                           std::string_view value);
[[nodiscard]] bool set_transmission_probability_option(
    TransmissionOptions& options, std::string_view key,
    std::string_view value);
// The intervention keys alone (stifle, block, block@t) — composed with the
// probability layer by option stacks that parse `tp` at a different level
// (set_agent_walk_option vs set_walk_option).
[[nodiscard]] bool set_transmission_intervention_option(
    TransmissionOptions& options, std::string_view key,
    std::string_view value);
void format_transmission_options(const TransmissionOptions& options,
                                 const TransmissionOptions& defaults,
                                 spec_text::KeyValWriter& out);
void format_transmission_probability_options(
    const TransmissionOptions& options, const TransmissionOptions& defaults,
    spec_text::KeyValWriter& out);
void format_transmission_intervention_options(
    const TransmissionOptions& options, const TransmissionOptions& defaults,
    spec_text::KeyValWriter& out);

// One-line key summary for `rumor_run --list`.
[[nodiscard]] std::vector<std::string> transmission_key_signatures();

// How a bound model draws its success uniforms, picked once per bind from
// the materialized field:
//   * trivial      — tp=1, no interventions: no draws at all (the Uniform
//                    mode tag; byte-identical golden path);
//   * skip_uniform — the field is a single constant p in (0, 1): contact
//                    sites may replace per-contact coin flips with
//                    geometric skip sampling (next_gap() = failures before
//                    the next success). Degree-scaled options land here too
//                    when the graph is regular — the field is what decides,
//                    not the option flags;
//   * batched      — non-constant field (or a constant 0/1 field with
//                    interventions): per-contact draws against the field,
//                    served from the block-buffered SIMD Philox stream.
enum class SampleMode : std::uint8_t { trivial, skip_uniform, batched };

// The bound model a simulator holds for one trial. Binding a non-trivial
// model materializes the per-vertex receive field, the CSR-slot-aligned
// per-edge field, and the blocked set into the arena's TransmissionScratch;
// the build is cached by (graph uid, parameters), so steady-state trials on
// the same graph rebuild nothing and allocate nothing.
//
// Randomness: a non-trivial bind seeds two counter-based Philox streams
// (stream 0: per-contact success draws, stream 1: geometric gaps) from the
// per-trial seed, so every success draw is a pure function of
// (master_seed, trial) regardless of what the simulator's own xoshiro
// stream did in between — and the trivial path seeds nothing and draws
// nothing.
class TransmissionModel {
 public:
  TransmissionModel() = default;
  // `seed` is the per-trial seed (the same derive_seed(master, trial) value
  // the simulator's Rng was constructed with). `need_edge_field`
  // materializes the 2m-entry per-edge field too — only the edge-traffic
  // traced contact sites read it (attempt_slot), so untraced binds skip the
  // O(m) build and its memory entirely.
  void bind(const Graph& g, const TransmissionOptions& options,
            TrialArena& arena, std::uint64_t seed,
            bool need_edge_field = false);

  [[nodiscard]] bool trivial() const { return trivial_; }
  [[nodiscard]] SampleMode sample_mode() const { return sample_mode_; }
  // The constant field value; valid iff sample_mode() == skip_uniform.
  [[nodiscard]] float uniform_success() const { return uniform_p_; }
  [[nodiscard]] std::uint32_t stifle() const { return stifle_; }
  [[nodiscard]] bool blocking() const { return blocked_ != nullptr; }
  [[nodiscard]] Round block_round() const { return block_round_; }
  // Per-vertex blocked flags (valid iff blocking()); simulators use this to
  // compute their containment target when blocking activates.
  [[nodiscard]] const std::uint8_t* blocked_flags() const { return blocked_; }

  // Vertices that are blocked and still uninformed when blocking
  // activates — they can never be informed, so they come off the
  // completion target (the shared piece of every activate_blocking()).
  [[nodiscard]] std::uint32_t count_blocked_uninformed(
      const EpochArray<std::uint32_t>& vertex_inform_round, Vertex n) const {
    std::uint32_t unreachable = 0;
    for (Vertex v = 0; v < n; ++v) {
      if (blocked_[v] != 0 && !vertex_inform_round.touched(v)) {
        ++unreachable;
      }
    }
    return unreachable;
  }

  // Success draw for a contact delivering the rumor to (an entity at)
  // vertex v; u is the transmitting side's vertex. Uniform: always true,
  // no RNG consumed. General: one uniform draw from the model's own Philox
  // stream against the per-vertex receive field (skipped when the field
  // entry is 1, so tp=1-with-interventions configurations stay draw-free
  // too).
  template <class Mode>
  [[nodiscard]] bool attempt(Vertex u, Vertex v) {
    (void)u;
    if constexpr (std::is_same_v<Mode, transmission::Uniform>) {
      return true;
    } else {
      const float p = vertex_success_[v];
      if (p >= 1.0f) return true;
      return attempt_stream_.next_unit_float() < p;
    }
  }

  // As attempt(), but drawing from the CALLER's word source instead of the
  // model's serial stream — the sharded-round form, where each frontier
  // slot owns an addressable SlotDraws chain and the model must stay
  // read-only across concurrent shards. Same draw-free tp=1 fast path.
  template <class Mode, class WordSource>
  [[nodiscard]] bool attempt_from(Vertex v, WordSource& words) const {
    if constexpr (std::is_same_v<Mode, transmission::Uniform>) {
      return true;
    } else {
      const float p = vertex_success_[v];
      if (p >= 1.0f) return true;
      return static_cast<float>(words.next_u32() >> 8) * 0x1.0p-24f < p;
    }
  }

  // As attempt(), but reads the CSR-aligned per-edge field through the
  // transmitter's adjacency slot — for contact sites that already hold the
  // slot (edge-traffic tracing paths).
  template <class Mode>
  [[nodiscard]] bool attempt_slot(Vertex u, std::uint32_t slot) {
    if constexpr (std::is_same_v<Mode, transmission::Uniform>) {
      return true;
    } else {
      const float p = edge_success_[offsets_[u] + slot];
      if (p >= 1.0f) return true;
      return attempt_stream_.next_unit_float() < p;
    }
  }

  // Filters a multi-rumor mask: each set bit survives an independent
  // attempt() toward receiver v, lowest bit drawn first.
  template <class Mode>
  [[nodiscard]] std::uint64_t filter_mask(std::uint64_t mask, Vertex v) {
    if constexpr (std::is_same_v<Mode, transmission::Uniform>) {
      return mask;
    } else {
      std::uint64_t kept = 0;
      std::uint64_t rest = mask;
      while (rest != 0) {
        const std::uint64_t bit = rest & (0 - rest);
        rest &= rest - 1;
        if (attempt<Mode>(v, v)) kept |= bit;
      }
      return kept;
    }
  }

  // Geometric skip sampling (sample_mode() == skip_uniform only): the
  // number of failed Bernoulli(p) contacts before the next success,
  // floor(log(U) / log(1-p)), batch-computed 64 at a time so the log and
  // the compare vectorize. Capped at kGapCap — a gap no finite run ever
  // reaches, standing in for "never" when U lands in the top ulp.
  [[nodiscard]] std::uint32_t next_gap() {
    if (gap_pos_ == kGapBatch) refill_gaps();
    return gaps_[gap_pos_++];
  }

  static constexpr std::uint32_t kGapCap = 1u << 30;

  // True iff vertex v is quarantined at round `now` (blocked vertices
  // neither receive nor transmit once blocking has activated).
  template <class Mode>
  [[nodiscard]] bool blocked(Vertex v, Round now) const {
    if constexpr (std::is_same_v<Mode, transmission::Uniform>) {
      return false;
    } else {
      return blocked_ != nullptr && now >= block_round_ && blocked_[v] != 0;
    }
  }

  // True iff an entity informed at `inform_round` may still transmit at
  // round `now` (age-based stifling; both arguments in simulator rounds).
  template <class Mode>
  [[nodiscard]] bool spreader_active(std::uint32_t inform_round,
                                     Round now) const {
    if constexpr (std::is_same_v<Mode, transmission::Uniform>) {
      return true;
    } else {
      // 64-bit sum: the parser admits stifle up to 2^32-1 ("effectively
      // never"), which would wrap a uint32 addition.
      return stifle_ == 0 ||
             now <= static_cast<Round>(inform_round) + stifle_;
    }
  }

  // spreader_active and not quarantined: the full "may this informed entity
  // standing at vertex `at` transmit now" predicate.
  template <class Mode>
  [[nodiscard]] bool can_transmit(std::uint32_t inform_round, Vertex at,
                                  Round now) const {
    return spreader_active<Mode>(inform_round, now) &&
           !blocked<Mode>(at, now);
  }

  // Exact extinction test under stifling: an entity informed at round L
  // transmits only in rounds L+1 .. L+stifle, so once `now` reaches
  // last_inform + stifle with the run not done, no contact can ever
  // change the state again.
  [[nodiscard]] bool extinct(Round now, Round last_inform_round) const {
    return stifle_ != 0 && now >= last_inform_round + stifle_;
  }

 private:
  static constexpr std::uint32_t kGapBatch = 64;

  void refill_gaps();

  bool trivial_ = true;
  SampleMode sample_mode_ = SampleMode::trivial;
  std::uint32_t stifle_ = 0;
  Round block_round_ = 1;
  float uniform_p_ = 1.0f;   // constant field value (skip_uniform mode)
  float gap_scale_ = 0.0f;   // 1 / log2(1 - uniform_p_)
  const float* vertex_success_ = nullptr;  // n entries
  const float* edge_success_ = nullptr;    // 2m entries, CSR-slot aligned
  const std::uint8_t* blocked_ = nullptr;  // n entries; nullptr = none
  const std::uint32_t* offsets_ = nullptr;
  PhiloxStream attempt_stream_;  // stream 0: per-contact success draws
  PhiloxStream gap_stream_;      // stream 1: geometric gap uniforms
  std::uint32_t gap_pos_ = kGapBatch;
  alignas(64) std::array<std::uint32_t, kGapBatch> gaps_;
};

// The per-round stifled-entity counts derivable from an informed curve:
// an entity informed at round q transmits in rounds q+1 .. q+stifle and
// counts as stifled from round q+stifle+1 on, so
// stifled[t] = informed[t - stifle - 1] (0 before that index exists).
// Returns an empty vector when stifle == 0 (nothing ever stifles).
[[nodiscard]] std::vector<std::uint32_t> derive_stifled_curve(
    const std::vector<std::uint32_t>& informed_curve, std::uint32_t stifle);

}  // namespace rumor

#include "core/protocol_spec.hpp"

#include "core/registry.hpp"
#include "support/assert.hpp"
#include "support/spec_text.hpp"

namespace rumor {

std::string protocol_name(Protocol p) {
  return SimulatorRegistry::instance().at(p).name;
}

std::string ProtocolSpec::name() const {
  const SimulatorEntry& entry = SimulatorRegistry::instance().at(protocol);
  spec_text::KeyValWriter writer;
  entry.format_options(options, entry.defaults, writer);
  if (writer.empty()) return entry.name;
  return entry.name + "(" + writer.str() + ")";
}

std::optional<ProtocolSpec> ProtocolSpec::parse(std::string_view text,
                                                std::string* error) {
  const auto call = spec_text::parse_call(text, error);
  if (!call) return std::nullopt;
  const SimulatorEntry* entry = SimulatorRegistry::instance().find(call->head);
  if (entry == nullptr) {
    if (error != nullptr) {
      *error = "unknown protocol \"" + call->head + "\"";
    }
    return std::nullopt;
  }
  ProtocolSpec spec;
  spec.protocol = entry->id;
  spec.options = entry->defaults;
  for (const auto& [key, value] : call->args) {
    if (!entry->set_option(spec.options, key, value)) {
      if (error != nullptr) {
        *error = "protocol \"" + entry->name + "\": bad option " + key + "=" +
                 value;
      }
      return std::nullopt;
    }
  }
  return spec;
}

PushOptions& ProtocolSpec::push() {
  RUMOR_REQUIRE(std::holds_alternative<PushOptions>(options));
  return std::get<PushOptions>(options);
}
const PushOptions& ProtocolSpec::push() const {
  RUMOR_REQUIRE(std::holds_alternative<PushOptions>(options));
  return std::get<PushOptions>(options);
}

PushPullOptions& ProtocolSpec::push_pull() {
  RUMOR_REQUIRE(std::holds_alternative<PushPullOptions>(options));
  return std::get<PushPullOptions>(options);
}
const PushPullOptions& ProtocolSpec::push_pull() const {
  RUMOR_REQUIRE(std::holds_alternative<PushPullOptions>(options));
  return std::get<PushPullOptions>(options);
}

WalkOptions* ProtocolSpec::walk_if() {
  if (auto* walk = std::get_if<WalkOptions>(&options)) return walk;
  if (auto* dynamic = std::get_if<DynamicAgentOptions>(&options)) {
    return &dynamic->walk;
  }
  if (auto* multi = std::get_if<MultiRumorOptions>(&options)) {
    return &multi->walk;
  }
  return nullptr;
}
const WalkOptions* ProtocolSpec::walk_if() const {
  return const_cast<ProtocolSpec*>(this)->walk_if();
}

WalkOptions& ProtocolSpec::walk() {
  WalkOptions* walk = walk_if();
  RUMOR_REQUIRE(walk != nullptr);
  return *walk;
}
const WalkOptions& ProtocolSpec::walk() const {
  return const_cast<ProtocolSpec*>(this)->walk();
}

FrogOptions& ProtocolSpec::frog() {
  RUMOR_REQUIRE(std::holds_alternative<FrogOptions>(options));
  return std::get<FrogOptions>(options);
}
const FrogOptions& ProtocolSpec::frog() const {
  RUMOR_REQUIRE(std::holds_alternative<FrogOptions>(options));
  return std::get<FrogOptions>(options);
}

DynamicAgentOptions& ProtocolSpec::dynamic_agent() {
  RUMOR_REQUIRE(std::holds_alternative<DynamicAgentOptions>(options));
  return std::get<DynamicAgentOptions>(options);
}
const DynamicAgentOptions& ProtocolSpec::dynamic_agent() const {
  RUMOR_REQUIRE(std::holds_alternative<DynamicAgentOptions>(options));
  return std::get<DynamicAgentOptions>(options);
}

MultiRumorOptions& ProtocolSpec::multi() {
  RUMOR_REQUIRE(std::holds_alternative<MultiRumorOptions>(options));
  return std::get<MultiRumorOptions>(options);
}
const MultiRumorOptions& ProtocolSpec::multi() const {
  RUMOR_REQUIRE(std::holds_alternative<MultiRumorOptions>(options));
  return std::get<MultiRumorOptions>(options);
}

AsyncOptions& ProtocolSpec::async() {
  RUMOR_REQUIRE(std::holds_alternative<AsyncOptions>(options));
  return std::get<AsyncOptions>(options);
}
const AsyncOptions& ProtocolSpec::async() const {
  RUMOR_REQUIRE(std::holds_alternative<AsyncOptions>(options));
  return std::get<AsyncOptions>(options);
}

std::uint32_t ProtocolSpec::shards() const {
  if (const auto* p = std::get_if<PushOptions>(&options)) return p->shards;
  if (const auto* pp = std::get_if<PushPullOptions>(&options)) {
    return pp->shards;
  }
  if (protocol == Protocol::visit_exchange ||
      protocol == Protocol::meet_exchange || protocol == Protocol::hybrid) {
    return std::get<WalkOptions>(options).shards;
  }
  return 0;
}

TraceOptions* ProtocolSpec::trace() {
  return SimulatorRegistry::instance().at(protocol).trace(options);
}
const TraceOptions* ProtocolSpec::trace() const {
  return const_cast<ProtocolSpec*>(this)->trace();
}

ProtocolSpec default_spec(Protocol p) {
  const SimulatorEntry& entry = SimulatorRegistry::instance().at(p);
  ProtocolSpec spec;
  spec.protocol = entry.id;
  spec.options = entry.defaults;
  return spec;
}

TrialResult to_trial_result(RunResult&& r) {
  TrialResult result;
  result.rounds = static_cast<double>(r.rounds);
  result.agent_rounds = static_cast<double>(r.agent_rounds);
  result.informed = static_cast<double>(r.informed);
  result.completed = r.completed;
  result.informed_curve = std::move(r.informed_curve);
  result.stifled_curve = std::move(r.stifled_curve);
  return result;
}

}  // namespace rumor

#include "core/visit_exchange.hpp"

#include "core/registry.hpp"
#include "core/sharding.hpp"
#include "support/philox.hpp"
#include "support/thread_pool.hpp"
#include "walk/step_kernel.hpp"

namespace rumor {

VisitExchangeProcess::VisitExchangeProcess(const Graph& g, Vertex source,
                                           std::uint64_t seed,
                                           WalkOptions options,
                                           TrialArena* arena)
    : graph_(&g),
      rng_(seed),
      options_(options),
      laziness_(resolve_laziness(g, options.lazy)),
      cutoff_(options.max_rounds != 0 ? options.max_rounds
                                      : default_round_cutoff(g.num_vertices())),
      owned_arena_(arena != nullptr ? nullptr : std::make_unique<TrialArena>()),
      arena_(arena != nullptr ? arena : owned_arena_.get()),
      agents_(g, resolve_agent_count(g, options), options.placement, rng_,
              resolve_anchor(options, source), arena_) {
  RUMOR_REQUIRE(source < g.num_vertices());
  model_.bind(g, options_.transmission, *arena_, seed);
  // Sharded mode replaces the stepping engine wholesale (per-walker
  // addressable draws) and cannot express the per-edge traced stream; the
  // CLI rejects both combinations with a message, these REQUIREs are the
  // API-user backstop.
  sharded_ = sharding_enabled(options_.shards, g.num_vertices());
  if (sharded_) {
    RUMOR_REQUIRE(!options_.trace.edge_traffic);
    RUMOR_REQUIRE(options_.engine == StepEngine::batched);
    shard_width_ = resolve_shard_width(options_.shards);
    seed_ = seed;
  }
  target_ = g.num_vertices();
  const std::size_t count = agents_.count();
  arena_->vertex_inform_round.reset(g.num_vertices(), kNeverInformed);
  arena_->agent_inform_round.reset(count, kNeverInformed);
  order_.reset(*arena_, count);
  if (options_.trace.informed_curve) arena_->curve.clear();
  if (options_.trace.edge_traffic) {
    arena_->edge_traffic.assign(g.num_edges(), 0);
  }

  // Round 0: source informed; agents standing on the source informed.
  inform_vertex(source);
  for (Agent a = 0; a < count; ++a) {
    if (agents_.position(a) == source) {
      inform_agent_at(order_.index_of(a));
    }
  }
  if (all_agents_informed()) agent_complete_round_ = 0;
  if (options_.trace.informed_curve) {
    arena_->curve.push_back(informed_vertex_count_);
  }
}

void VisitExchangeProcess::inform_vertex(Vertex v) {
  RUMOR_CHECK(!arena_->vertex_inform_round.touched(v));
  arena_->vertex_inform_round.set(v, static_cast<std::uint32_t>(round_));
  ++informed_vertex_count_;
  last_inform_round_ = round_;
}

void VisitExchangeProcess::inform_agent_at(std::size_t order_index) {
  RUMOR_CHECK(order_index >= informed_agent_count_);
  const Agent a = order_.at(order_index);
  RUMOR_CHECK(!arena_->agent_inform_round.touched(a));
  arena_->agent_inform_round.set(a, static_cast<std::uint32_t>(round_));
  order_.swap(order_index, informed_agent_count_);
  ++informed_agent_count_;
  last_inform_round_ = round_;
}

void VisitExchangeProcess::activate_blocking() {
  const Vertex n = graph_->num_vertices();
  target_ =
      n - model_.count_blocked_uninformed(arena_->vertex_inform_round, n);
}

void VisitExchangeProcess::step() {
  if (sharded_) {
    if (model_.trivial()) {
      step_sharded<transmission::Uniform>();
    } else {
      step_sharded<transmission::General>();
    }
  } else if (model_.trivial()) {
    step_impl<transmission::Uniform>();
  } else {
    step_impl<transmission::General>();
  }
}

template <class Mode>
void VisitExchangeProcess::step_impl() {
  constexpr bool kGeneral = std::is_same_v<Mode, transmission::General>;
  ++round_;
  if constexpr (kGeneral) {
    if (model_.blocking() && round_ == model_.block_round()) {
      activate_blocking();
    }
  }

  // All agents take one walk step (ascending id = the paper's canonical
  // agent order). Traced and untraced paths run the same kernel and consume
  // the RNG identically, so tracing never changes the trajectory.
  std::uint64_t* traffic =
      options_.trace.edge_traffic ? arena_->edge_traffic.data() : nullptr;
  step_walks(*graph_, agents_.positions_mut(), rng_, laziness_, traffic,
             options_.engine);

  // Phase A: agents informed in a previous round inform their vertex
  // (stifled agents and quarantined vertices excepted; the success draw
  // fires only for state-changing deliveries).
  const std::size_t count = agents_.count();
  const std::size_t informed_at_start = informed_agent_count_;
  for (std::size_t idx = 0; idx < informed_at_start; ++idx) {
    const Agent a = order_.at(idx);
    const Vertex v = agents_.position(a);
    if (arena_->vertex_inform_round.touched(v)) continue;
    if constexpr (kGeneral) {
      if (!model_.can_transmit<Mode>(arena_->agent_inform_round.get(a), v,
                                     round_) ||
          !model_.attempt<Mode>(v, v)) {
        continue;
      }
    }
    inform_vertex(v);
  }

  // Phase B: agents standing on an informed vertex (informed in this round
  // or earlier) become informed — unless the vertex has stifled or is
  // quarantined.
  for (std::size_t idx = informed_at_start; idx < count; ++idx) {
    const Agent a = order_.at(idx);
    const Vertex v = agents_.position(a);
    if (!arena_->vertex_inform_round.touched(v)) continue;
    if constexpr (kGeneral) {
      if (!model_.can_transmit<Mode>(arena_->vertex_inform_round.get(v), v,
                                     round_) ||
          !model_.attempt<Mode>(v, v)) {
        continue;
      }
    }
    inform_agent_at(idx);
  }

  if (all_agents_informed() && agent_complete_round_ == kNoRoundYet) {
    agent_complete_round_ = round_;
  }
  if (options_.trace.informed_curve) {
    arena_->curve.push_back(informed_vertex_count_);
  }
}

// One frontier-sharded round — law-equivalent to step_impl<Mode>. The
// sharded walk kernel steps every agent (per-walker addressable draws);
// phases A and B then each run as a parallel candidate pass over balanced
// order-index ranges followed by a serial shard-major merge:
//
//   Phase A (agents informed before this round inform their vertex) reads
//   round-start vertex state; duplicate candidates for one vertex are
//   resolved by the merge's global slot order, exactly as serial order
//   would — an agent whose vertex was claimed by an earlier slot still
//   drew its own words, which are independent variates deciding nothing
//   observable (the sharded-push argument).
//
//   Phase B (agents standing on an informed vertex become informed) reads
//   the POST-phase-A vertex state, as the serial loop does; that state is
//   itself partition-independent. Candidates are order indices, distinct
//   and ascending, so the merge's inform_agent_at(idx) calls only ever
//   swap positions <= idx — positions above the current idx still hold
//   their phase-time agents, and the informed-prefix CHECK holds because
//   the i-th candidate's index is >= informed_at_start + i.
template <class Mode>
void VisitExchangeProcess::step_sharded() {
  constexpr bool kGeneral = std::is_same_v<Mode, transmission::General>;
  ++round_;
  if constexpr (kGeneral) {
    if (model_.blocking() && round_ == model_.block_round()) {
      activate_blocking();
    }
  }

  step_walks_sharded(*graph_, agents_.positions_mut(), seed_, round_,
                     laziness_, shard_width_);

  auto& scratch = arena_->shard_scratch;
  const std::uint32_t width = shard_width_;
  if (scratch.size() < width) scratch.resize(width);
  const std::size_t count = agents_.count();
  // Reserve the analytic per-shard bound (<= ceil(agents/width) items per
  // range; ~|A| total) once, so steady-state trials stay allocation-free
  // instead of reallocating at each trial's random high-water mark.
  const std::size_t cap = count / width + 1;
  for (std::uint32_t s = 0; s < width; ++s) {
    scratch[s].candidates.reserve(cap);
  }
  const std::size_t informed_at_start = informed_agent_count_;
  const ShardPlane plane(seed_, round_);
  const auto vertex_informed = arena_->vertex_inform_round.view();

  // Phase A candidates: the vertex each previously-informed agent delivers
  // to this round (slot = order index). The clears run serially up front:
  // parallel_for_ranges clamps the shard count to the item count, so a
  // clear inside the callback would skip the tail segments whenever fewer
  // items than width exist and leave stale candidates for the merge.
  for (std::uint32_t s = 0; s < width; ++s) scratch[s].candidates.clear();
  shard_pool().parallel_for_ranges(
      informed_at_start, width,
      [&](std::size_t s, std::size_t begin, std::size_t end) {
        auto& out = scratch[s].candidates;
        for (std::size_t idx = begin; idx < end; ++idx) {
          const Agent a = order_.at(idx);
          const Vertex v = agents_.position(a);
          if (vertex_informed.touched(v)) continue;
          if constexpr (kGeneral) {
            SlotDraws draws(plane, kShardPhaseAgentInform,
                            static_cast<std::uint32_t>(idx));
            if (!model_.can_transmit<Mode>(
                    arena_->agent_inform_round.get(a), v, round_) ||
                !model_.attempt_from<Mode>(v, draws)) {
              continue;
            }
          }
          out.push_back(v);
        }
      });
  for (std::uint32_t s = 0; s < width; ++s) {
    for (const Vertex v : scratch[s].candidates) {
      if (!arena_->vertex_inform_round.touched(v)) inform_vertex(v);
    }
  }

  // Phase B candidates: order indices of uninformed agents standing on an
  // informed vertex (post-phase-A state, like the serial loop).
  for (std::uint32_t s = 0; s < width; ++s) scratch[s].candidates.clear();
  shard_pool().parallel_for_ranges(
      count - informed_at_start, width,
      [&](std::size_t s, std::size_t begin, std::size_t end) {
        auto& out = scratch[s].candidates;
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t idx = informed_at_start + i;
          const Agent a = order_.at(idx);
          const Vertex v = agents_.position(a);
          if (!arena_->vertex_inform_round.touched(v)) continue;
          if constexpr (kGeneral) {
            SlotDraws draws(plane, kShardPhaseAgentCatch,
                            static_cast<std::uint32_t>(idx));
            if (!model_.can_transmit<Mode>(
                    arena_->vertex_inform_round.get(v), v, round_) ||
                !model_.attempt_from<Mode>(v, draws)) {
              continue;
            }
          }
          out.push_back(static_cast<std::uint32_t>(idx));
        }
      });
  for (std::uint32_t s = 0; s < width; ++s) {
    for (const std::uint32_t idx : scratch[s].candidates) {
      inform_agent_at(idx);
    }
  }

  if (all_agents_informed() && agent_complete_round_ == kNoRoundYet) {
    agent_complete_round_ = round_;
  }
  if (options_.trace.informed_curve) {
    arena_->curve.push_back(informed_vertex_count_);
  }
}

bool VisitExchangeProcess::halted() const {
  if (done() || round_ >= cutoff_) return true;
  if (model_.trivial()) return false;
  if (informed_vertex_count_ >= target_) return true;  // containment
  return model_.extinct(round_, last_inform_round_);
}

RunResult VisitExchangeProcess::run() {
  while (!halted()) step();
  RunResult result;
  result.rounds = round_;
  result.completed = done();
  result.agent_rounds =
      agent_complete_round_ != kNoRoundYet ? agent_complete_round_ : round_;
  result.informed = informed_vertex_count_;
  if (options_.trace.informed_curve) {
    result.informed_curve = arena_->curve;
    result.stifled_curve =
        derive_stifled_curve(result.informed_curve, model_.stifle());
  }
  if (options_.trace.inform_rounds) {
    result.vertex_inform_round = arena_->vertex_inform_round.to_vector();
    result.agent_inform_round = arena_->agent_inform_round.to_vector();
  }
  if (options_.trace.edge_traffic) result.edge_traffic = arena_->edge_traffic;
  return result;
}

RunResult run_visit_exchange(const Graph& g, Vertex source,
                             std::uint64_t seed, WalkOptions options) {
  return VisitExchangeProcess(g, source, seed, options).run();
}

// ---- Scenario registry entry ------------------------------------------

namespace {

TrialResult visit_exchange_entry_run(const Graph& g,
                                     const ProtocolOptions& options,
                                     Vertex source, std::uint64_t seed,
                                     TrialArena* arena) {
  return to_trial_result(
      VisitExchangeProcess(g, source, seed, std::get<WalkOptions>(options),
                           arena)
          .run());
}

}  // namespace

void register_visit_exchange_simulator(SimulatorRegistry& registry) {
  SimulatorEntry entry;
  entry.id = Protocol::visit_exchange;
  entry.name = "visit-exchange";
  entry.summary =
      "VISIT-EXCHANGE: stationary random walkers relay via visited vertices";
  entry.defaults = WalkOptions{};
  entry.run = visit_exchange_entry_run;
  // Shared sharded-walk hooks: `shards=` parses and round-trips for every
  // walk simulator with a frontier-sharded round (visit-exchange,
  // meet-exchange, hybrid).
  entry.format_options = sharded_walk_entry_format;
  entry.set_option = sharded_walk_entry_set;
  entry.trace = walk_entry_trace;
  registry.add(std::move(entry));
}

}  // namespace rumor

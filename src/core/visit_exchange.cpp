#include "core/visit_exchange.hpp"

#include "graph/properties.hpp"

namespace rumor {

namespace {

[[nodiscard]] Laziness resolve_laziness(const Graph& g, LazyMode mode) {
  switch (mode) {
    case LazyMode::never:
      return Laziness::none;
    case LazyMode::always:
      return Laziness::half;
    case LazyMode::auto_bipartite:
      return is_bipartite(g) ? Laziness::half : Laziness::none;
  }
  return Laziness::none;
}

[[nodiscard]] std::size_t resolve_agent_count(const Graph& g,
                                              const WalkOptions& options) {
  return options.agent_count != 0
             ? options.agent_count
             : agent_count_for(g.num_vertices(), options.alpha);
}

}  // namespace

VisitExchangeProcess::VisitExchangeProcess(const Graph& g, Vertex source,
                                           std::uint64_t seed,
                                           WalkOptions options)
    : graph_(&g),
      rng_(seed),
      options_(options),
      laziness_(resolve_laziness(g, options.lazy)),
      cutoff_(options.max_rounds != 0 ? options.max_rounds
                                      : default_round_cutoff(g.num_vertices())),
      agents_(g, resolve_agent_count(g, options), options.placement, rng_,
              resolve_anchor(options, source)),
      vertex_inform_round_(g.num_vertices(), kNeverInformed),
      agent_inform_round_(agents_.count(), kNeverInformed),
      agent_order_(agents_.count()),
      order_index_of_(agents_.count()) {
  RUMOR_REQUIRE(source < g.num_vertices());
  for (Agent a = 0; a < agents_.count(); ++a) {
    agent_order_[a] = a;
    order_index_of_[a] = a;
  }
  if (options_.trace.edge_traffic) {
    edge_traffic_.assign(g.num_edges(), 0);
  }

  // Round 0: source informed; agents standing on the source informed.
  inform_vertex(source);
  for (Agent a = 0; a < agents_.count(); ++a) {
    if (agents_.position(a) == source) {
      inform_agent_at(order_index_of_[a]);
    }
  }
  if (all_agents_informed()) agent_complete_round_ = 0;
  if (options_.trace.informed_curve) curve_.push_back(informed_vertex_count_);
}

void VisitExchangeProcess::inform_vertex(Vertex v) {
  RUMOR_CHECK(vertex_inform_round_[v] == kNeverInformed);
  vertex_inform_round_[v] = static_cast<std::uint32_t>(round_);
  ++informed_vertex_count_;
}

void VisitExchangeProcess::inform_agent_at(std::size_t order_index) {
  RUMOR_CHECK(order_index >= informed_agent_count_);
  const Agent a = agent_order_[order_index];
  RUMOR_CHECK(agent_inform_round_[a] == kNeverInformed);
  agent_inform_round_[a] = static_cast<std::uint32_t>(round_);
  const auto dest = static_cast<std::uint32_t>(informed_agent_count_);
  const Agent other = agent_order_[dest];
  agent_order_[dest] = a;
  agent_order_[order_index] = other;
  order_index_of_[a] = dest;
  order_index_of_[other] = static_cast<std::uint32_t>(order_index);
  ++informed_agent_count_;
}

void VisitExchangeProcess::step() {
  ++round_;

  // All agents take one walk step (ascending id = the paper's canonical
  // agent order).
  const std::size_t count = agents_.count();
  if (options_.trace.edge_traffic) {
    for (Agent a = 0; a < count; ++a) {
      const Vertex v = agents_.position(a);
      if (laziness_ == Laziness::half && rng_.coin()) continue;
      const auto [w, slot] = graph_->random_neighbor_slot(v, rng_);
      ++edge_traffic_[graph_->edge_id(v, slot)];
      agents_.set_position(a, w);
    }
  } else {
    for (Agent a = 0; a < count; ++a) {
      agents_.set_position(
          a, step_from(*graph_, agents_.position(a), rng_, laziness_));
    }
  }

  // Phase A: agents informed in a previous round inform their vertex.
  const std::size_t informed_at_start = informed_agent_count_;
  for (std::size_t idx = 0; idx < informed_at_start; ++idx) {
    const Vertex v = agents_.position(agent_order_[idx]);
    if (vertex_inform_round_[v] == kNeverInformed) inform_vertex(v);
  }

  // Phase B: agents standing on an informed vertex (informed in this round
  // or earlier) become informed.
  for (std::size_t idx = informed_at_start; idx < count; ++idx) {
    const Agent a = agent_order_[idx];
    if (vertex_inform_round_[agents_.position(a)] != kNeverInformed) {
      inform_agent_at(idx);
    }
  }

  if (all_agents_informed() && agent_complete_round_ == kNoRoundYet) {
    agent_complete_round_ = round_;
  }
  if (options_.trace.informed_curve) curve_.push_back(informed_vertex_count_);
}

RunResult VisitExchangeProcess::run() {
  while (!done() && round_ < cutoff_) step();
  RunResult result;
  result.rounds = round_;
  result.completed = done();
  result.agent_rounds =
      agent_complete_round_ != kNoRoundYet ? agent_complete_round_ : round_;
  if (options_.trace.informed_curve) result.informed_curve = curve_;
  if (options_.trace.inform_rounds) {
    result.vertex_inform_round = vertex_inform_round_;
    result.agent_inform_round = agent_inform_round_;
  }
  if (options_.trace.edge_traffic) result.edge_traffic = edge_traffic_;
  return result;
}

RunResult run_visit_exchange(const Graph& g, Vertex source,
                             std::uint64_t seed, WalkOptions options) {
  return VisitExchangeProcess(g, source, seed, options).run();
}

}  // namespace rumor

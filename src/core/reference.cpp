#include "core/reference.hpp"

#include <vector>

namespace rumor {

namespace {

// Inverse-CDF stationary placement: intentionally a different algorithm
// from the alias sampler used in production (cross-validation).
std::vector<Vertex> place_stationary(const Graph& g, std::size_t count,
                                     Rng& rng) {
  std::vector<std::uint64_t> cumulative(g.num_vertices());
  std::uint64_t sum = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    sum += g.degree(v);
    cumulative[v] = sum;
  }
  std::vector<Vertex> positions(count);
  for (auto& pos : positions) {
    const std::uint64_t target = rng.below(sum);  // in [0, 2m)
    Vertex lo = 0;
    Vertex hi = g.num_vertices() - 1;
    while (lo < hi) {
      const Vertex mid = lo + (hi - lo) / 2;
      if (cumulative[mid] > target) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    pos = lo;
  }
  return positions;
}

}  // namespace

Round reference_push(const Graph& g, Vertex source, Rng& rng, Round cutoff) {
  RUMOR_REQUIRE(source < g.num_vertices());
  std::vector<std::uint8_t> informed(g.num_vertices(), 0);
  informed[source] = 1;

  for (Round t = 1; t <= cutoff; ++t) {
    const std::vector<std::uint8_t> before = informed;  // snapshot of round t-1
    for (Vertex u = 0; u < g.num_vertices(); ++u) {
      if (!before[u]) continue;
      const Vertex v = g.random_neighbor(u, rng);
      informed[v] = 1;
    }
    bool all = true;
    for (std::uint8_t b : informed) all = all && (b != 0);
    if (all) return t;
  }
  return cutoff;
}

Round reference_push_pull(const Graph& g, Vertex source, Rng& rng,
                          Round cutoff) {
  RUMOR_REQUIRE(source < g.num_vertices());
  std::vector<std::uint8_t> informed(g.num_vertices(), 0);
  informed[source] = 1;

  for (Round t = 1; t <= cutoff; ++t) {
    const std::vector<std::uint8_t> before = informed;
    for (Vertex u = 0; u < g.num_vertices(); ++u) {
      const Vertex v = g.random_neighbor(u, rng);
      if (before[u] != before[v]) {  // exactly one informed before round t
        informed[u] = 1;
        informed[v] = 1;
      }
    }
    bool all = true;
    for (std::uint8_t b : informed) all = all && (b != 0);
    if (all) return t;
  }
  return cutoff;
}

Round reference_visit_exchange(const Graph& g, Vertex source,
                               std::size_t agent_count, Laziness lazy,
                               Rng& rng, Round cutoff) {
  RUMOR_REQUIRE(source < g.num_vertices());
  RUMOR_REQUIRE(agent_count > 0);
  std::vector<Vertex> pos = place_stationary(g, agent_count, rng);
  std::vector<std::uint8_t> vertex_informed(g.num_vertices(), 0);
  std::vector<std::uint8_t> agent_informed(agent_count, 0);

  vertex_informed[source] = 1;
  for (std::size_t a = 0; a < agent_count; ++a) {
    if (pos[a] == source) agent_informed[a] = 1;
  }

  auto all_vertices = [&] {
    for (std::uint8_t b : vertex_informed) {
      if (!b) return false;
    }
    return true;
  };
  if (all_vertices()) return 0;  // single-vertex graph

  for (Round t = 1; t <= cutoff; ++t) {
    for (auto& p : pos) p = step_from(g, p, rng, lazy);
    const std::vector<std::uint8_t> agent_before = agent_informed;
    // Agents informed in a previous round inform the vertex they visit.
    for (std::size_t a = 0; a < agent_count; ++a) {
      if (agent_before[a]) vertex_informed[pos[a]] = 1;
    }
    // Agents on a vertex informed in this or an earlier round get informed.
    for (std::size_t a = 0; a < agent_count; ++a) {
      if (vertex_informed[pos[a]]) agent_informed[a] = 1;
    }
    if (all_vertices()) return t;
  }
  return cutoff;
}

Round reference_meet_exchange(const Graph& g, Vertex source,
                              std::size_t agent_count, Laziness lazy,
                              Rng& rng, Round cutoff) {
  RUMOR_REQUIRE(source < g.num_vertices());
  RUMOR_REQUIRE(agent_count > 0);
  std::vector<Vertex> pos = place_stationary(g, agent_count, rng);
  std::vector<std::uint8_t> informed(agent_count, 0);

  bool source_active = true;
  for (std::size_t a = 0; a < agent_count; ++a) {
    if (pos[a] == source) {
      informed[a] = 1;
      source_active = false;
    }
  }

  auto all_informed = [&] {
    for (std::uint8_t b : informed) {
      if (!b) return false;
    }
    return true;
  };
  if (all_informed()) return 0;

  for (Round t = 1; t <= cutoff; ++t) {
    for (auto& p : pos) p = step_from(g, p, rng, lazy);
    const std::vector<std::uint8_t> before = informed;
    // Meetings with agents informed in a previous round.
    for (std::size_t a = 0; a < agent_count; ++a) {
      if (before[a]) continue;
      for (std::size_t b = 0; b < agent_count; ++b) {
        if (before[b] && pos[b] == pos[a]) {
          informed[a] = 1;
          break;
        }
      }
    }
    // First visitors to a still-active source all get informed.
    if (source_active) {
      bool met = false;
      for (std::size_t a = 0; a < agent_count; ++a) {
        if (!before[a] && !informed[a] && pos[a] == source) {
          informed[a] = 1;
          met = true;
        }
      }
      if (met) source_active = false;
    }
    if (all_informed()) return t;
  }
  return cutoff;
}

}  // namespace rumor

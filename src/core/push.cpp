#include "core/push.hpp"

#include "core/registry.hpp"
#include "support/spec_text.hpp"

namespace rumor {

PushProcess::PushProcess(const Graph& g, Vertex source, std::uint64_t seed,
                         PushOptions options, TrialArena* arena)
    : graph_(&g),
      rng_(seed),
      options_(options),
      cutoff_(options.max_rounds != 0 ? options.max_rounds
                                      : default_round_cutoff(g.num_vertices())),
      owned_arena_(arena != nullptr ? nullptr : std::make_unique<TrialArena>()),
      arena_(arena != nullptr ? arena : owned_arena_.get()) {
  RUMOR_REQUIRE(source < g.num_vertices());
  RUMOR_REQUIRE(options.loss_probability >= 0.0 &&
                options.loss_probability < 1.0);
  model_.bind(g, options_.transmission, *arena_,
              /*need_edge_field=*/options_.trace.edge_traffic);
  target_ = g.num_vertices();
  arena_->vertex_inform_round.reset(g.num_vertices(), kNeverInformed);
  arena_->informed_nbr_count.reset(g.num_vertices(), 0);
  arena_->active.clear();
  arena_->active.reserve(g.num_vertices());  // high-water once, then free
  if (options_.trace.informed_curve) arena_->curve.clear();
  if (options_.trace.edge_traffic) {
    arena_->edge_traffic.assign(g.num_edges(), 0);
  }
  inform(source);
  if (options_.trace.informed_curve) arena_->curve.push_back(informed_count_);
}

void PushProcess::inform(Vertex v) {
  RUMOR_CHECK(!arena_->vertex_inform_round.touched(v));
  arena_->vertex_inform_round.set(v, static_cast<std::uint32_t>(round_));
  ++informed_count_;
  last_inform_round_ = round_;
  arena_->active.push_back(v);
  for (Vertex w : graph_->neighbors_unchecked(v)) {
    arena_->informed_nbr_count.add(w, 1);
  }
}

void PushProcess::activate_blocking() {
  // Vertices quarantined while uninformed can never be informed; informed
  // blocked vertices count toward the (already reached) target. Counting
  // them as "informed" in the neighbor counters lets saturation retirement
  // drop callers whose remaining uninformed neighbors are all quarantined —
  // and an empty caller list then halts the run (see halted()).
  const std::uint8_t* blocked = model_.blocked_flags();
  const Vertex n = graph_->num_vertices();
  for (Vertex v = 0; v < n; ++v) {
    if (blocked[v] != 0 && !arena_->vertex_inform_round.touched(v)) {
      for (Vertex w : graph_->neighbors_unchecked(v)) {
        arena_->informed_nbr_count.add(w, 1);
      }
    }
  }
  target_ =
      n - model_.count_blocked_uninformed(arena_->vertex_inform_round, n);
}

void PushProcess::step() {
  if (model_.trivial()) {
    step_impl<transmission::Uniform>();
  } else {
    step_impl<transmission::General>();
  }
}

template <class Mode>
void PushProcess::step_impl() {
  constexpr bool kGeneral = std::is_same_v<Mode, transmission::General>;
  ++round_;
  if constexpr (kGeneral) {
    if (model_.blocking() && round_ == model_.block_round()) {
      activate_blocking();
    }
  }

  // Retire saturated vertices before taking the round snapshot: everyone in
  // active_ right now was informed in a previous round, so what survives the
  // sweep is exactly the set of useful callers. Stifled and blocked callers
  // retire the same way — both conditions are permanent once true.
  auto& active = arena_->active;
  std::size_t kept = 0;
  for (Vertex v : active) {
    if (arena_->informed_nbr_count.get(v) < graph_->degree_unchecked(v)) {
      if constexpr (kGeneral) {
        if (!model_.can_transmit<Mode>(arena_->vertex_inform_round.get(v), v,
                                       round_)) {
          continue;
        }
      }
      active[kept++] = v;
    }
  }
  active.resize(kept);

  const std::size_t callers = active.size();  // newly informed start next round
  for (std::size_t i = 0; i < callers; ++i) {
    const Vertex u = active[i];
    Vertex v;
    std::uint32_t slot = 0;
    if (options_.trace.edge_traffic) {
      const auto [nbr, s] = graph_->random_neighbor_slot_unchecked(u, rng_);
      v = nbr;
      slot = s;
      ++arena_->edge_traffic[graph_->edge_id_unchecked(u, slot)];
    } else {
      v = graph_->random_neighbor_unchecked(u, rng_);
    }
    if (options_.loss_probability > 0.0 &&
        rng_.chance(options_.loss_probability)) {
      continue;  // the call happened (and was counted) but the message dropped
    }
    if constexpr (kGeneral) {
      // The success draw fires only for state-changing deliveries, on both
      // the traced and untraced paths, so tracing never shifts the stream.
      if (model_.blocked<Mode>(v, round_) ||
          arena_->vertex_inform_round.touched(v)) {
        continue;
      }
      const bool delivered = options_.trace.edge_traffic
                                 ? model_.attempt_slot<Mode>(u, slot, rng_)
                                 : model_.attempt<Mode>(u, v, rng_);
      if (delivered) inform(v);
    } else {
      if (!arena_->vertex_inform_round.touched(v)) inform(v);
    }
  }

  if (options_.trace.informed_curve) arena_->curve.push_back(informed_count_);
}

bool PushProcess::halted() const {
  if (done() || round_ >= cutoff_) return true;
  if (model_.trivial()) return false;
  if (informed_count_ >= target_) return true;  // blocking containment
  // No callers left (all saturated, stifled, or quarantined): push has no
  // pull side, so the state can never change again.
  if (round_ > 0 && arena_->active.empty()) return true;
  return model_.extinct(round_, last_inform_round_);
}

RunResult PushProcess::run() {
  while (!halted()) step();
  RunResult result;
  result.rounds = round_;
  result.completed = done();
  result.agent_rounds = round_;  // no agents in push
  result.informed = informed_count_;
  if (options_.trace.informed_curve) {
    result.informed_curve = arena_->curve;
    result.stifled_curve =
        derive_stifled_curve(result.informed_curve, model_.stifle());
  }
  if (options_.trace.inform_rounds) {
    result.vertex_inform_round = arena_->vertex_inform_round.to_vector();
  }
  if (options_.trace.edge_traffic) result.edge_traffic = arena_->edge_traffic;
  return result;
}

RunResult run_push(const Graph& g, Vertex source, std::uint64_t seed,
                   PushOptions options) {
  return PushProcess(g, source, seed, options).run();
}

// ---- Scenario registry entry ------------------------------------------

namespace {

TrialResult push_entry_run(const Graph& g, const ProtocolOptions& options,
                           Vertex source, std::uint64_t seed,
                           TrialArena* arena) {
  return to_trial_result(
      PushProcess(g, source, seed, std::get<PushOptions>(options), arena)
          .run());
}

void push_entry_format(const ProtocolOptions& options,
                       const ProtocolOptions& defaults,
                       spec_text::KeyValWriter& out) {
  const auto& opt = std::get<PushOptions>(options);
  const auto& def = std::get<PushOptions>(defaults);
  if (opt.loss_probability != def.loss_probability) {
    out.add("loss", opt.loss_probability);
  }
  if (opt.max_rounds != def.max_rounds) {
    out.add("max_rounds", static_cast<std::uint64_t>(opt.max_rounds));
  }
  format_transmission_options(opt.transmission, def.transmission, out);
  format_trace_options(opt.trace, def.trace, out);
}

bool push_entry_set(ProtocolOptions& options, std::string_view key,
                    std::string_view value) {
  auto& opt = std::get<PushOptions>(options);
  if (key == "loss") {
    const auto v = spec_text::parse_double(value);
    if (!v || !(*v >= 0.0 && *v < 1.0)) return false;  // NaN-proof
    opt.loss_probability = *v;
    return true;
  }
  if (key == "max_rounds") {
    const auto v = spec_text::parse_u64(value);
    if (!v) return false;
    opt.max_rounds = *v;
    return true;
  }
  if (set_transmission_option(opt.transmission, key, value)) return true;
  return set_trace_option(opt.trace, key, value);
}

TraceOptions* push_entry_trace(ProtocolOptions& options) {
  return &std::get<PushOptions>(options).trace;
}

}  // namespace

void register_push_simulator(SimulatorRegistry& registry) {
  SimulatorEntry entry;
  entry.id = Protocol::push;
  entry.name = "push";
  entry.summary = "PUSH: informed vertices call a uniform random neighbor";
  entry.defaults = PushOptions{};
  entry.run = push_entry_run;
  entry.format_options = push_entry_format;
  entry.set_option = push_entry_set;
  entry.trace = push_entry_trace;
  registry.add(std::move(entry));
}

}  // namespace rumor

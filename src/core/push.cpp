#include "core/push.hpp"

#include "core/registry.hpp"
#include "core/sharding.hpp"
#include "graph/access.hpp"
#include "support/philox.hpp"
#include "support/spec_text.hpp"
#include "support/thread_pool.hpp"
#include "walk/step_kernel.hpp"  // word_below: the shared Lemire slot draw

namespace rumor {

namespace {
// Hub threshold for parallelizing inform()'s informed-neighbor bump in
// sharded mode: below it the fan-out overhead beats the win. On the star,
// THE dominant round cost is this one O(n) bump when the center informs —
// parallelizing it is what BM_ShardedPush measures.
constexpr std::uint32_t kShardBumpThreshold = 1u << 16;
// Calendar ring size: wakes within the next 63 rounds live in the ring
// (bucket = wake & 63); anything further sits in the far chain (head index
// kWakeBuckets) and is matured back into the ring every 64 rounds. Must be
// a power of two.
constexpr std::uint64_t kWakeBuckets = 64;
// Flat slots per ring bucket. A bucket's wakes are walked with plain
// sequential loads; only bursts beyond the capacity fall back to the
// intrusive spill chain (pointer-chased, like the far chain).
constexpr std::uint32_t kBucketCap = 32;
}  // namespace

PushProcess::PushProcess(const Graph& g, Vertex source, std::uint64_t seed,
                         PushOptions options, TrialArena* arena)
    : graph_(&g),
      rng_(seed),
      options_(options),
      cutoff_(options.max_rounds != 0 ? options.max_rounds
                                      : default_round_cutoff(g.num_vertices())),
      owned_arena_(arena != nullptr ? nullptr : std::make_unique<TrialArena>()),
      arena_(arena != nullptr ? arena : owned_arena_.get()) {
  RUMOR_REQUIRE(source < g.num_vertices());
  RUMOR_REQUIRE(options.loss_probability >= 0.0 &&
                options.loss_probability < 1.0);
  model_.bind(g, options_.transmission, *arena_, seed,
              /*need_edge_field=*/options_.trace.edge_traffic);
  // Engine choice is pure in (options, n) — see core/sharding. The sharded
  // engine draws per-slot from the addressable plane, which the per-edge
  // traced stream cannot express; the CLI rejects the combination with a
  // message, this REQUIRE is the API-user backstop.
  sharded_ = sharding_enabled(options_.shards, g.num_vertices());
  if (sharded_) {
    RUMOR_REQUIRE(!options_.trace.edge_traffic);
    shard_width_ = resolve_shard_width(options_.shards);
    seed_ = seed;
  }
  // The calendar path models exactly the untraced loss-free process (a
  // failed call is then unobservable), and needs a single constant success
  // probability for the geometric gaps. The sharded engine replaces it
  // wholesale (per-slot draws, not a serial calendar).
  skip_ = !sharded_ && model_.sample_mode() == SampleMode::skip_uniform &&
          !options_.trace.edge_traffic && options_.loss_probability == 0.0;
  target_ = g.num_vertices();
  arena_->vertex_inform_round.reset(g.num_vertices(), kNeverInformed);
  arena_->informed_nbr_count.reset(g.num_vertices(), 0);
  arena_->active.clear();
  arena_->active.reserve(g.num_vertices());  // high-water once, then free
  if (skip_) {
    // Chain links and slots are only ever read through a head or an
    // occupancy count, so stale per-vertex entries from a previous trial
    // need no clearing.
    arena_->wake_slots.resize(kWakeBuckets * kBucketCap);
    arena_->wake_counts.assign(kWakeBuckets, 0);
    arena_->wake_heads.assign(kWakeBuckets + 1, kNoVertex);
    arena_->wake_next.resize(g.num_vertices());
    arena_->wake_round.resize(g.num_vertices());
  }
  if (options_.trace.informed_curve) arena_->curve.clear();
  if (options_.trace.edge_traffic) {
    arena_->edge_traffic.assign(g.num_edges(), 0);
  }
  inform(source);
  if (options_.trace.informed_curve) arena_->curve.push_back(informed_count_);
}

void PushProcess::inform(Vertex v) {
  RUMOR_CHECK(!arena_->vertex_inform_round.touched(v));
  arena_->vertex_inform_round.set(v, static_cast<std::uint32_t>(round_));
  ++informed_count_;
  last_inform_round_ = round_;
  if (skip_) {
    // First successful call of the new spreader: its calls start next
    // round, so the wake is round + 1 + (failed calls before the success).
    // A spreader born saturated is never scheduled at all — every one of
    // its calls would land on an informed vertex, so its entire future
    // (gaps included) is unobservable.
    if (arena_->informed_nbr_count.get(v) < graph_->degree_unchecked(v)) {
      schedule(v, round_ + 1 + model_.next_gap());
    }
  } else {
    arena_->active.push_back(v);
  }
  const std::uint32_t deg = graph_->degree_unchecked(v);
  if (sharded_ && deg >= kShardBumpThreshold) {
    // Hub inform: the O(deg) neighbor bump dominates star-like rounds, and
    // the neighbors of one vertex are distinct, so EpochArray::add on them
    // from different shards touches disjoint slots — race-free. The bump
    // order changes, but the counters are order-independent sums.
    with_graph_access(*graph_, [&](const auto& acc) {
      const GraphRow row = acc.row(v);
      shard_pool().parallel_for_ranges(
          deg, shard_width_,
          [&](std::size_t /*shard*/, std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
              arena_->informed_nbr_count.add(
                  acc.pick(row, static_cast<std::uint32_t>(i)), 1);
            }
          });
    });
    return;
  }
  for (std::uint32_t i = 0; i < deg; ++i) {
    arena_->informed_nbr_count.add(graph_->neighbor_unchecked(v, i), 1);
  }
}

void PushProcess::link(Vertex v, std::uint64_t wake) {
  // Ring entries encode their wake round in the bucket index alone; the
  // per-vertex wake_round slot is written only for far-chain entries
  // (maturation is the only reader), which keeps the common-case insert to
  // two stores.
  if (wake - round_ < kWakeBuckets) {
    const std::uint64_t b = wake & (kWakeBuckets - 1);
    const std::uint32_t c = arena_->wake_counts[b];
    if (c < kBucketCap) {
      arena_->wake_slots[b * kBucketCap + c] = v;
      arena_->wake_counts[b] = c + 1;
      return;
    }
    arena_->wake_next[v] = arena_->wake_heads[b];  // burst spill
    arena_->wake_heads[b] = v;
    return;
  }
  arena_->wake_round[v] = wake;
  arena_->wake_next[v] = arena_->wake_heads[kWakeBuckets];
  arena_->wake_heads[kWakeBuckets] = v;
}

void PushProcess::schedule(Vertex v, std::uint64_t wake) {
  ++pending_;
  link(v, wake);
}

void PushProcess::activate_blocking() {
  // Vertices quarantined while uninformed can never be informed; informed
  // blocked vertices count toward the (already reached) target. Counting
  // them as "informed" in the neighbor counters lets saturation retirement
  // drop callers whose remaining uninformed neighbors are all quarantined —
  // and an empty caller list then halts the run (see halted()).
  const std::uint8_t* blocked = model_.blocked_flags();
  const Vertex n = graph_->num_vertices();
  for (Vertex v = 0; v < n; ++v) {
    if (blocked[v] != 0 && !arena_->vertex_inform_round.touched(v)) {
      const std::uint32_t deg = graph_->degree_unchecked(v);
      for (std::uint32_t i = 0; i < deg; ++i) {
        arena_->informed_nbr_count.add(graph_->neighbor_unchecked(v, i), 1);
      }
    }
  }
  target_ =
      n - model_.count_blocked_uninformed(arena_->vertex_inform_round, n);
}

void PushProcess::step() {
  if (sharded_) {
    with_graph_access(*graph_, [&](const auto& acc) {
      if (model_.trivial()) {
        step_sharded<transmission::Uniform>(acc);
      } else {
        step_sharded<transmission::General>(acc);
      }
    });
  } else if (model_.trivial()) {
    step_impl<transmission::Uniform>();
  } else if (skip_) {
    with_graph_access(*graph_, [&](const auto& acc) { step_skip(acc); });
  } else {
    step_impl<transmission::General>();
  }
}

// One calendar round. Equivalent in law to step_impl<General> with a
// constant field p: a caller's per-round coin flips are replaced by the
// geometric gap to its next success, and the uniform neighbor pick happens
// at the success (the success coin is independent of which neighbor was
// drawn, so drawing success-first is the same joint distribution — and the
// neighbor picks of failed calls are unobservable in an untraced loss-free
// run). Saturated / stifled / quarantined callers retire lazily at their
// wake: all three conditions are permanent once true.
template <class Access>
void PushProcess::step_skip(const Access& acc) {
  auto* heads = arena_->wake_heads.data();
  auto* next = arena_->wake_next.data();
  const bool restricted = model_.stifle() != 0 || model_.blocking();
  // Traced or intervention-constrained runs keep the one-round-per-call
  // contract: the informed curve needs a sample after every round, and the
  // stifling/blocking halting rules (extinction windows, activation
  // rounds, containment targets) are re-evaluated by halted() between
  // rounds. The plain heterogeneous-tp workload has neither, so it drains
  // the calendar in a batch — views hoisted once, rounds consumed until a
  // halt condition — turning the dominant per-round cost (view hoists plus
  // a full halted() pass; on a ballistic-spread graph rounds outnumber
  // events per round by a wide margin) into a single bucket probe.
  // Trajectories are identical: the batch breaks on exactly the conditions
  // halted() checks for this configuration (done, cutoff, drained
  // calendar), the last processed round is still exactly cutoff_, and
  // empty buckets consume no RNG.
  const bool single = restricted || options_.trace.informed_curve;
  // Per-vertex state reads go through raw-pointer views — the views stay
  // valid across inform() (it writes through the same stable buffers).
  // Adjacency goes through the access policy resolved by the caller: raw
  // CSR loads on materialized backends, closed-form arithmetic on implicit.
  const auto sat = arena_->informed_nbr_count.view();
  const auto informed = arena_->vertex_inform_round.view();
  const auto process = [&](const Vertex u) {
    const GraphRow row = acc.row(u);
    const std::uint32_t deg = row.deg;
    if (sat.get(u) >= deg) {
      return;  // saturated: no future call can change anything
    }
    if (restricted && !model_.can_transmit<transmission::General>(
                          informed.get(u), u, round_)) {
      return;  // stifled or quarantined: permanent from this wake on
    }
    const Vertex v =
        acc.pick(row, static_cast<std::uint32_t>(rng_.below(deg)));
    if (!model_.blocked<transmission::General>(v, round_) &&
        !informed.touched(v)) {
      inform(v);
      // Informing v bumped u's own informed-neighbor count; retire u here
      // if that was its last uninformed neighbor instead of burning a
      // wake (and a gap draw) to rediscover it later.
      if (sat.get(u) >= deg) return;
    }
    schedule(u, round_ + 1 + model_.next_gap());
  };
  do {
    ++round_;
    if (restricted && model_.blocking() && round_ == model_.block_round()) {
      activate_blocking();
    }
    if ((round_ & (kWakeBuckets - 1)) == 0) {
      // Mature far-future wakes: every wake in the next 64 rounds moves to
      // its ring bucket (possibly this round's, which is detached below
      // after maturation). Any event parked far always crosses a multiple
      // of 64 before its wake, so nothing is ever processed late.
      std::uint32_t cur = heads[kWakeBuckets];
      heads[kWakeBuckets] = kNoVertex;
      while (cur != kNoVertex) {
        const std::uint32_t after = next[cur];
        link(cur, arena_->wake_round[cur]);
        cur = after;
      }
    }
    // Detach this round's bucket first: reschedules land in other buckets
    // (wake - round in [1, 63]) or the far chain, never back here.
    const std::uint64_t b = round_ & (kWakeBuckets - 1);
    const std::uint32_t cnt = arena_->wake_counts[b];
    std::uint32_t spill = heads[b];
    if ((cnt | (spill != kNoVertex ? 1u : 0u)) == 0) {
      continue;  // empty round: nothing wakes, nothing is observable
    }
    const std::uint32_t* slots = arena_->wake_slots.data() + b * kBucketCap;
    arena_->wake_counts[b] = 0;
    heads[b] = kNoVertex;
    pending_ -= cnt;
    for (std::uint32_t i = 0; i < cnt; ++i) {
      if (i + 2 < cnt) {
        // Two-slot lookahead: the adjacency row and saturation counter are
        // random-access loads that miss once the per-vertex state outgrows
        // L2 (the slot array itself streams). The implicit policy's
        // prefetch is a no-op — there is no adjacency memory to warm.
        const Vertex ahead = slots[i + 2];
        acc.prefetch_degree(ahead);
        sat.prefetch(ahead);
      }
      process(slots[i]);
    }
    while (spill != kNoVertex) {
      const Vertex u = spill;
      spill = next[u];
      --pending_;
      process(u);
    }
  } while (!single && pending_ != 0 && informed_count_ < target_ &&
           round_ < cutoff_);
  if (options_.trace.informed_curve) arena_->curve.push_back(informed_count_);
}

template <class Mode>
void PushProcess::step_impl() {
  constexpr bool kGeneral = std::is_same_v<Mode, transmission::General>;
  ++round_;
  if constexpr (kGeneral) {
    if (model_.blocking() && round_ == model_.block_round()) {
      activate_blocking();
    }
  }

  // Retire saturated vertices before taking the round snapshot: everyone in
  // active_ right now was informed in a previous round, so what survives the
  // sweep is exactly the set of useful callers. Stifled and blocked callers
  // retire the same way — both conditions are permanent once true.
  auto& active = arena_->active;
  std::size_t kept = 0;
  for (Vertex v : active) {
    if (arena_->informed_nbr_count.get(v) < graph_->degree_unchecked(v)) {
      if constexpr (kGeneral) {
        if (!model_.can_transmit<Mode>(arena_->vertex_inform_round.get(v), v,
                                       round_)) {
          continue;
        }
      }
      active[kept++] = v;
    }
  }
  active.resize(kept);

  const std::size_t callers = active.size();  // newly informed start next round
  for (std::size_t i = 0; i < callers; ++i) {
    const Vertex u = active[i];
    Vertex v;
    std::uint32_t slot = 0;
    if (options_.trace.edge_traffic) {
      const auto [nbr, s] = graph_->random_neighbor_slot_unchecked(u, rng_);
      v = nbr;
      slot = s;
      ++arena_->edge_traffic[graph_->edge_id_unchecked(u, slot)];
    } else {
      v = graph_->random_neighbor_unchecked(u, rng_);
    }
    if (options_.loss_probability > 0.0 &&
        rng_.chance(options_.loss_probability)) {
      continue;  // the call happened (and was counted) but the message dropped
    }
    if constexpr (kGeneral) {
      // The success draw fires only for state-changing deliveries, on both
      // the traced and untraced paths, so tracing never shifts the stream.
      if (model_.blocked<Mode>(v, round_) ||
          arena_->vertex_inform_round.touched(v)) {
        continue;
      }
      const bool delivered = options_.trace.edge_traffic
                                 ? model_.attempt_slot<Mode>(u, slot)
                                 : model_.attempt<Mode>(u, v);
      if (delivered) inform(v);
    } else {
      if (!arena_->vertex_inform_round.touched(v)) inform(v);
    }
  }

  if (options_.trace.informed_curve) arena_->curve.push_back(informed_count_);
}

// One frontier-sharded round. Law-equivalent to step_impl<Mode> — the only
// behavioral difference is WHICH uniform variates decide each call: serial
// draws them from one stream in execution order, sharded from per-slot
// chains keyed by the caller's compacted frontier index. Both parallel
// passes read exclusively round-start state (vertex_inform_round and
// informed_nbr_count are not written between the round snapshot and the
// merge), and every shard writes only its own scratch segment, so the
// passes are race-free and the merge — visiting candidates in shard-major
// = global slot order — is a pure function of the round-start state and
// the plane. Partition count and worker count cannot move a single draw.
//
// A caller whose pick lands on a vertex another slot informs THIS round
// still draws its loss/attempt words and is discarded at the merge; in the
// serial engine that caller would see touched(v) and not draw. The words
// are independent per-slot variates that decide nothing observable, so the
// process law is identical (same argument as saturation retirement).
template <class Mode, class Access>
void PushProcess::step_sharded(const Access& acc) {
  constexpr bool kGeneral = std::is_same_v<Mode, transmission::General>;
  ++round_;
  if constexpr (kGeneral) {
    if (model_.blocking() && round_ == model_.block_round()) {
      activate_blocking();
    }
  }

  auto& active = arena_->active;
  auto& scratch = arena_->shard_scratch;
  const std::uint32_t width = shard_width_;
  if (scratch.size() < width) scratch.resize(width);
  // A shard's range never exceeds ceil(active/width) <= ceil(n/width), so
  // reserving that bound (a no-op once grown; ~n total across shards, the
  // same order as the other arena buffers) pins steady-state trials at
  // zero allocations instead of leaving reallocation to the random
  // high-water mark of each trial's frontier.
  const std::size_t cap = graph_->num_vertices() / width + 1;
  for (std::uint32_t s = 0; s < width; ++s) {
    scratch[s].survivors.reserve(cap);
    scratch[s].candidates.reserve(cap);
  }

  const auto sat = arena_->informed_nbr_count.view();
  const auto informed = arena_->vertex_inform_round.view();

  // Pass 1 (parallel): survivor filter over the round-start caller list —
  // the sharded form of step_impl's retirement sweep. Shard s filters its
  // range into its own segment; the ordered concat below rebuilds the
  // compacted list exactly as the serial in-place compaction would. The
  // clears run serially UP FRONT because parallel_for_ranges clamps the
  // shard count to the item count: when the frontier is smaller than the
  // width, the tail segments' callbacks never fire, and a clear inside
  // the callback would leave stale entries from an earlier round for the
  // concat to pick up.
  for (std::uint32_t s = 0; s < width; ++s) scratch[s].survivors.clear();
  shard_pool().parallel_for_ranges(
      active.size(), width,
      [&](std::size_t s, std::size_t begin, std::size_t end) {
        auto& out = scratch[s].survivors;
        for (std::size_t i = begin; i < end; ++i) {
          const Vertex v = active[i];
          if (sat.get(v) >= acc.degree(v)) continue;
          if constexpr (kGeneral) {
            if (!model_.can_transmit<Mode>(informed.get(v), v, round_)) {
              continue;
            }
          }
          out.push_back(v);
        }
      });
  active.clear();
  for (std::uint32_t s = 0; s < width; ++s) {
    active.insert(active.end(), scratch[s].survivors.begin(),
                  scratch[s].survivors.end());
  }

  // Pass 2 (parallel): every surviving caller draws its neighbor, loss,
  // and success words from its own chain (slot = compacted index) and
  // stages the vertex it would inform.
  const ShardPlane plane(seed_, round_);
  const double loss = options_.loss_probability;
  for (std::uint32_t s = 0; s < width; ++s) scratch[s].candidates.clear();
  shard_pool().parallel_for_ranges(
      active.size(), width,
      [&](std::size_t s, std::size_t begin, std::size_t end) {
        auto& out = scratch[s].candidates;
        for (std::size_t i = begin; i < end; ++i) {
          const Vertex u = active[i];
          SlotDraws draws(plane, kShardPhasePush,
                          static_cast<std::uint32_t>(i));
          const GraphRow row = acc.row(u);
          const Vertex v = acc.pick(row, word_below(draws, row.deg));
          if (loss > 0.0 && draws.next_unit_double() < loss) continue;
          if constexpr (kGeneral) {
            if (model_.blocked<Mode>(v, round_) || informed.touched(v)) {
              continue;
            }
            if (!model_.attempt_from<Mode>(v, draws)) continue;
          } else {
            if (informed.touched(v)) continue;
          }
          out.push_back(v);
        }
      });

  // Serial merge, shard-major = ascending slot order: the first delivered
  // slot targeting v informs it, exactly as in the serial round.
  for (std::uint32_t s = 0; s < width; ++s) {
    for (const Vertex v : scratch[s].candidates) {
      if (!arena_->vertex_inform_round.touched(v)) inform(v);
    }
  }

  if (options_.trace.informed_curve) arena_->curve.push_back(informed_count_);
}

bool PushProcess::halted() const {
  if (done() || round_ >= cutoff_) return true;
  if (model_.trivial()) return false;
  if (informed_count_ >= target_) return true;  // blocking containment
  // No callers left (all saturated, stifled, or quarantined): push has no
  // pull side, so the state can never change again. On the calendar path
  // the caller set is the outstanding wake events.
  if (round_ > 0 && (skip_ ? pending_ == 0 : arena_->active.empty())) {
    return true;
  }
  return model_.extinct(round_, last_inform_round_);
}

RunResult PushProcess::run() {
  while (!halted()) step();
  RunResult result;
  result.rounds = round_;
  result.completed = done();
  result.agent_rounds = round_;  // no agents in push
  result.informed = informed_count_;
  if (options_.trace.informed_curve) {
    result.informed_curve = arena_->curve;
    result.stifled_curve =
        derive_stifled_curve(result.informed_curve, model_.stifle());
  }
  if (options_.trace.inform_rounds) {
    result.vertex_inform_round = arena_->vertex_inform_round.to_vector();
  }
  if (options_.trace.edge_traffic) result.edge_traffic = arena_->edge_traffic;
  return result;
}

RunResult run_push(const Graph& g, Vertex source, std::uint64_t seed,
                   PushOptions options) {
  return PushProcess(g, source, seed, options).run();
}

// ---- Scenario registry entry ------------------------------------------

namespace {

TrialResult push_entry_run(const Graph& g, const ProtocolOptions& options,
                           Vertex source, std::uint64_t seed,
                           TrialArena* arena) {
  return to_trial_result(
      PushProcess(g, source, seed, std::get<PushOptions>(options), arena)
          .run());
}

void push_entry_format(const ProtocolOptions& options,
                       const ProtocolOptions& defaults,
                       spec_text::KeyValWriter& out) {
  const auto& opt = std::get<PushOptions>(options);
  const auto& def = std::get<PushOptions>(defaults);
  if (opt.loss_probability != def.loss_probability) {
    out.add("loss", opt.loss_probability);
  }
  if (opt.max_rounds != def.max_rounds) {
    out.add("max_rounds", static_cast<std::uint64_t>(opt.max_rounds));
  }
  format_shards_option(opt.shards, def.shards, out);
  format_transmission_options(opt.transmission, def.transmission, out);
  format_trace_options(opt.trace, def.trace, out);
}

bool push_entry_set(ProtocolOptions& options, std::string_view key,
                    std::string_view value) {
  auto& opt = std::get<PushOptions>(options);
  if (key == "loss") {
    const auto v = spec_text::parse_double(value);
    if (!v || !(*v >= 0.0 && *v < 1.0)) return false;  // NaN-proof
    opt.loss_probability = *v;
    return true;
  }
  if (key == "max_rounds") {
    const auto v = spec_text::parse_u64(value);
    if (!v) return false;
    opt.max_rounds = *v;
    return true;
  }
  if (key == "shards") return set_shards_option(opt.shards, value);
  if (set_transmission_option(opt.transmission, key, value)) return true;
  return set_trace_option(opt.trace, key, value);
}

TraceOptions* push_entry_trace(ProtocolOptions& options) {
  return &std::get<PushOptions>(options).trace;
}

}  // namespace

void register_push_simulator(SimulatorRegistry& registry) {
  SimulatorEntry entry;
  entry.id = Protocol::push;
  entry.name = "push";
  entry.summary = "PUSH: informed vertices call a uniform random neighbor";
  entry.defaults = PushOptions{};
  entry.run = push_entry_run;
  entry.format_options = push_entry_format;
  entry.set_option = push_entry_set;
  entry.trace = push_entry_trace;
  registry.add(std::move(entry));
}

}  // namespace rumor

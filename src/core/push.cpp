#include "core/push.hpp"

namespace rumor {

PushProcess::PushProcess(const Graph& g, Vertex source, std::uint64_t seed,
                         PushOptions options, TrialArena* arena)
    : graph_(&g),
      rng_(seed),
      options_(options),
      cutoff_(options.max_rounds != 0 ? options.max_rounds
                                      : default_round_cutoff(g.num_vertices())),
      owned_arena_(arena != nullptr ? nullptr : std::make_unique<TrialArena>()),
      arena_(arena != nullptr ? arena : owned_arena_.get()) {
  RUMOR_REQUIRE(source < g.num_vertices());
  RUMOR_REQUIRE(options.loss_probability >= 0.0 &&
                options.loss_probability < 1.0);
  arena_->vertex_inform_round.reset(g.num_vertices(), kNeverInformed);
  arena_->informed_nbr_count.reset(g.num_vertices(), 0);
  arena_->active.clear();
  arena_->active.reserve(g.num_vertices());  // high-water once, then free
  if (options_.trace.informed_curve) arena_->curve.clear();
  if (options_.trace.edge_traffic) {
    arena_->edge_traffic.assign(g.num_edges(), 0);
  }
  inform(source);
  if (options_.trace.informed_curve) arena_->curve.push_back(informed_count_);
}

void PushProcess::inform(Vertex v) {
  RUMOR_CHECK(!arena_->vertex_inform_round.touched(v));
  arena_->vertex_inform_round.set(v, static_cast<std::uint32_t>(round_));
  ++informed_count_;
  arena_->active.push_back(v);
  for (Vertex w : graph_->neighbors_unchecked(v)) {
    arena_->informed_nbr_count.add(w, 1);
  }
}

void PushProcess::step() {
  ++round_;

  // Retire saturated vertices before taking the round snapshot: everyone in
  // active_ right now was informed in a previous round, so what survives the
  // sweep is exactly the set of useful callers.
  auto& active = arena_->active;
  std::size_t kept = 0;
  for (Vertex v : active) {
    if (arena_->informed_nbr_count.get(v) < graph_->degree_unchecked(v)) {
      active[kept++] = v;
    }
  }
  active.resize(kept);

  const std::size_t callers = active.size();  // newly informed start next round
  for (std::size_t i = 0; i < callers; ++i) {
    const Vertex u = active[i];
    Vertex v;
    if (options_.trace.edge_traffic) {
      const auto [nbr, slot] = graph_->random_neighbor_slot_unchecked(u, rng_);
      v = nbr;
      ++arena_->edge_traffic[graph_->edge_id_unchecked(u, slot)];
    } else {
      v = graph_->random_neighbor_unchecked(u, rng_);
    }
    if (options_.loss_probability > 0.0 &&
        rng_.chance(options_.loss_probability)) {
      continue;  // the call happened (and was counted) but the message dropped
    }
    if (!arena_->vertex_inform_round.touched(v)) inform(v);
  }

  if (options_.trace.informed_curve) arena_->curve.push_back(informed_count_);
}

RunResult PushProcess::run() {
  while (!done() && round_ < cutoff_) step();
  RunResult result;
  result.rounds = round_;
  result.completed = done();
  result.agent_rounds = round_;  // no agents in push
  if (options_.trace.informed_curve) result.informed_curve = arena_->curve;
  if (options_.trace.inform_rounds) {
    result.vertex_inform_round = arena_->vertex_inform_round.to_vector();
  }
  if (options_.trace.edge_traffic) result.edge_traffic = arena_->edge_traffic;
  return result;
}

RunResult run_push(const Graph& g, Vertex source, std::uint64_t seed,
                   PushOptions options) {
  return PushProcess(g, source, seed, options).run();
}

}  // namespace rumor

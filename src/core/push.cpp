#include "core/push.hpp"

namespace rumor {

PushProcess::PushProcess(const Graph& g, Vertex source, std::uint64_t seed,
                         PushOptions options)
    : graph_(&g),
      rng_(seed),
      options_(options),
      cutoff_(options.max_rounds != 0 ? options.max_rounds
                                      : default_round_cutoff(g.num_vertices())),
      inform_round_(g.num_vertices(), kNeverInformed),
      informed_nbr_count_(g.num_vertices(), 0) {
  RUMOR_REQUIRE(source < g.num_vertices());
  RUMOR_REQUIRE(options.loss_probability >= 0.0 &&
                options.loss_probability < 1.0);
  if (options_.trace.edge_traffic) {
    edge_traffic_.assign(g.num_edges(), 0);
  }
  inform(source);
  if (options_.trace.informed_curve) curve_.push_back(informed_count_);
}

void PushProcess::inform(Vertex v) {
  RUMOR_CHECK(inform_round_[v] == kNeverInformed);
  inform_round_[v] = static_cast<std::uint32_t>(round_);
  ++informed_count_;
  active_.push_back(v);
  for (Vertex w : graph_->neighbors(v)) ++informed_nbr_count_[w];
}

void PushProcess::step() {
  ++round_;

  // Retire saturated vertices before taking the round snapshot: everyone in
  // active_ right now was informed in a previous round, so what survives the
  // sweep is exactly the set of useful callers.
  std::size_t kept = 0;
  for (Vertex v : active_) {
    if (informed_nbr_count_[v] < graph_->degree(v)) active_[kept++] = v;
  }
  active_.resize(kept);

  const std::size_t callers = active_.size();  // newly informed start next round
  for (std::size_t i = 0; i < callers; ++i) {
    const Vertex u = active_[i];
    Vertex v;
    if (options_.trace.edge_traffic) {
      const auto [nbr, slot] = graph_->random_neighbor_slot(u, rng_);
      v = nbr;
      ++edge_traffic_[graph_->edge_id(u, slot)];
    } else {
      v = graph_->random_neighbor(u, rng_);
    }
    if (options_.loss_probability > 0.0 &&
        rng_.chance(options_.loss_probability)) {
      continue;  // the call happened (and was counted) but the message dropped
    }
    if (inform_round_[v] == kNeverInformed) inform(v);
  }

  if (options_.trace.informed_curve) curve_.push_back(informed_count_);
}

RunResult PushProcess::run() {
  while (!done() && round_ < cutoff_) step();
  RunResult result;
  result.rounds = round_;
  result.completed = done();
  result.agent_rounds = round_;  // no agents in push
  if (options_.trace.informed_curve) result.informed_curve = curve_;
  if (options_.trace.inform_rounds) result.vertex_inform_round = inform_round_;
  if (options_.trace.edge_traffic) result.edge_traffic = edge_traffic_;
  return result;
}

RunResult run_push(const Graph& g, Vertex source, std::uint64_t seed,
                   PushOptions options) {
  return PushProcess(g, source, seed, options).run();
}

}  // namespace rumor

#include "core/registry.hpp"

#include "core/hybrid.hpp"
#include "core/meet_exchange.hpp"
#include "core/sharding.hpp"
#include "core/visit_exchange.hpp"
#include "support/assert.hpp"

namespace rumor {

SimulatorRegistry& SimulatorRegistry::instance() {
  static SimulatorRegistry registry;
  return registry;
}

SimulatorRegistry::SimulatorRegistry() {
  // Built-ins, in Protocol enum order. Each core module owns its entry.
  register_push_simulator(*this);
  register_push_pull_simulator(*this);
  register_visit_exchange_simulator(*this);
  register_meet_exchange_simulator(*this);
  register_hybrid_simulator(*this);
  register_frog_simulator(*this);
  register_dynamic_agent_simulator(*this);
  register_multi_rumor_simulators(*this);
  register_async_simulator(*this);
}

void SimulatorRegistry::add(SimulatorEntry entry) {
  RUMOR_REQUIRE(!entry.name.empty());
  RUMOR_REQUIRE(entry.run != nullptr);
  RUMOR_REQUIRE(entry.format_options != nullptr);
  RUMOR_REQUIRE(entry.set_option != nullptr);
  RUMOR_REQUIRE(entry.trace != nullptr);
  RUMOR_REQUIRE(find(entry.name) == nullptr);
  RUMOR_REQUIRE(find(entry.id) == nullptr);
  entries_.push_back(std::move(entry));
}

const SimulatorEntry* SimulatorRegistry::find(std::string_view name) const {
  for (const SimulatorEntry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

const SimulatorEntry* SimulatorRegistry::find(Protocol id) const {
  for (const SimulatorEntry& entry : entries_) {
    if (entry.id == id) return &entry;
  }
  return nullptr;
}

const SimulatorEntry& SimulatorRegistry::at(Protocol id) const {
  const SimulatorEntry* entry = find(id);
  RUMOR_REQUIRE(entry != nullptr);
  return *entry;
}

void walk_entry_format(const ProtocolOptions& options,
                       const ProtocolOptions& defaults,
                       spec_text::KeyValWriter& out) {
  format_walk_options(std::get<WalkOptions>(options),
                      std::get<WalkOptions>(defaults), out);
}

bool walk_entry_set(ProtocolOptions& options, std::string_view key,
                    std::string_view value) {
  return set_walk_option(std::get<WalkOptions>(options), key, value);
}

TraceOptions* walk_entry_trace(ProtocolOptions& options) {
  return &std::get<WalkOptions>(options).trace;
}

void sharded_walk_entry_format(const ProtocolOptions& options,
                               const ProtocolOptions& defaults,
                               spec_text::KeyValWriter& out) {
  const auto& opt = std::get<WalkOptions>(options);
  const auto& def = std::get<WalkOptions>(defaults);
  format_walk_options(opt, def, out);
  format_shards_option(opt.shards, def.shards, out);
}

bool sharded_walk_entry_set(ProtocolOptions& options, std::string_view key,
                            std::string_view value) {
  auto& opt = std::get<WalkOptions>(options);
  if (key == "shards") return set_shards_option(opt.shards, value);
  return set_walk_option(opt, key, value);
}

}  // namespace rumor

#include "core/multi_rumor.hpp"

#include <bit>

namespace rumor {

namespace {

// Applies newly acquired rumor bits to the per-rumor holder counts and
// completion bookkeeping.
template <typename OnComplete>
void account_new_bits(RumorMask fresh, std::vector<std::uint32_t>& have_count,
                      std::uint32_t full_count, std::vector<Round>& completion,
                      Round round, std::size_t& remaining,
                      OnComplete on_complete) {
  while (fresh != 0) {
    const int r = std::countr_zero(fresh);
    fresh &= fresh - 1;
    if (++have_count[static_cast<std::size_t>(r)] == full_count) {
      completion[static_cast<std::size_t>(r)] = round;
      --remaining;
      on_complete(static_cast<std::size_t>(r));
    }
  }
}

MultiRumorResult make_result(const std::vector<RumorSpec>& rumors,
                             const std::vector<Round>& completion,
                             std::size_t remaining, Round round) {
  MultiRumorResult result;
  result.completed = (remaining == 0);
  result.rounds = round;
  result.completion_round = completion;
  result.latency.resize(rumors.size());
  for (std::size_t r = 0; r < rumors.size(); ++r) {
    result.latency[r] = completion[r] == kNoRoundYet
                            ? kNoRoundYet
                            : completion[r] - rumors[r].release_round;
  }
  return result;
}

void validate(const Graph& g, const std::vector<RumorSpec>& rumors) {
  RUMOR_REQUIRE(!rumors.empty());
  RUMOR_REQUIRE(rumors.size() <= kMaxRumors);
  for (const auto& r : rumors) RUMOR_REQUIRE(r.source < g.num_vertices());
}

}  // namespace

// ---------------------------------------------------------------------------
// push-pull
// ---------------------------------------------------------------------------

MultiRumorPushPull::MultiRumorPushPull(const Graph& g,
                                       std::vector<RumorSpec> rumors,
                                       std::uint64_t seed, Round max_rounds)
    : graph_(&g),
      rumors_(std::move(rumors)),
      rng_(seed),
      cutoff_(max_rounds != 0 ? max_rounds
                              : default_round_cutoff(g.num_vertices())),
      held_(g.num_vertices(), 0),
      held_before_(g.num_vertices(), 0),
      have_count_(rumors_.size(), 0),
      completion_(rumors_.size(), kNoRoundYet),
      remaining_(rumors_.size()) {
  validate(g, rumors_);
  release_due();
}

void MultiRumorPushPull::release_due() {
  for (std::size_t r = 0; r < rumors_.size(); ++r) {
    if (rumors_[r].release_round != round_) continue;
    const RumorMask bit = RumorMask{1} << r;
    if ((held_[rumors_[r].source] & bit) == 0) {
      held_[rumors_[r].source] |= bit;
      account_new_bits(bit, have_count_, graph_->num_vertices(), completion_,
                       round_, remaining_, [](std::size_t) {});
    }
  }
}

void MultiRumorPushPull::step() {
  ++round_;
  held_before_ = held_;
  const Vertex n = graph_->num_vertices();
  for (Vertex u = 0; u < n; ++u) {
    const Vertex v = graph_->random_neighbor(u, rng_);
    // Symmetric exchange of everything held before the round.
    const RumorMask to_v = held_before_[u] & ~held_[v];
    if (to_v != 0) {
      held_[v] |= to_v;
      account_new_bits(to_v, have_count_, n, completion_, round_, remaining_,
                       [](std::size_t) {});
    }
    const RumorMask to_u = held_before_[v] & ~held_[u];
    if (to_u != 0) {
      held_[u] |= to_u;
      account_new_bits(to_u, have_count_, n, completion_, round_, remaining_,
                       [](std::size_t) {});
    }
  }
  release_due();
}

MultiRumorResult MultiRumorPushPull::run() {
  // Run at least until every rumor has been released.
  Round last_release = 0;
  for (const auto& r : rumors_) last_release = std::max(last_release, r.release_round);
  while ((!done() || round_ < last_release) && round_ < cutoff_) step();
  return make_result(rumors_, completion_, remaining_, round_);
}

// ---------------------------------------------------------------------------
// visit-exchange
// ---------------------------------------------------------------------------

MultiRumorVisitExchange::MultiRumorVisitExchange(const Graph& g,
                                                 std::vector<RumorSpec> rumors,
                                                 std::uint64_t seed,
                                                 WalkOptions options)
    : graph_(&g),
      rumors_(std::move(rumors)),
      rng_(seed),
      options_(options),
      cutoff_(options.max_rounds != 0 ? options.max_rounds
                                      : default_round_cutoff(g.num_vertices())),
      agents_(g, resolve_agent_count(g, options), options.placement, rng_,
              resolve_anchor(options, rumors_.empty() ? 0 : rumors_[0].source)),
      held_(g.num_vertices(), 0),
      agent_held_(agents_.count(), 0),
      agent_held_before_(agents_.count(), 0),
      have_count_(rumors_.size(), 0),
      completion_(rumors_.size(), kNoRoundYet),
      remaining_(rumors_.size()) {
  validate(g, rumors_);
  release_due();
}

void MultiRumorVisitExchange::release_due() {
  for (std::size_t r = 0; r < rumors_.size(); ++r) {
    if (rumors_[r].release_round != round_) continue;
    const RumorMask bit = RumorMask{1} << r;
    const Vertex source = rumors_[r].source;
    if ((held_[source] & bit) == 0) {
      held_[source] |= bit;
      account_new_bits(bit, have_count_, graph_->num_vertices(), completion_,
                       round_, remaining_, [](std::size_t) {});
    }
    // As in §3 round zero: agents standing on the source learn it at once.
    for (Agent a = 0; a < agents_.count(); ++a) {
      if (agents_.position(a) == source) agent_held_[a] |= bit;
    }
  }
}

void MultiRumorVisitExchange::step() {
  ++round_;
  const std::size_t count = agents_.count();
  const Laziness lazy =
      options_.lazy == LazyMode::always ? Laziness::half : Laziness::none;
  step_walks(*graph_, agents_.positions_mut(), rng_, lazy, nullptr,
             options_.engine);
  agent_held_before_ = agent_held_;

  // Phase A: rumors the agent held before the round land on its vertex.
  const Vertex n = graph_->num_vertices();
  for (Agent a = 0; a < count; ++a) {
    const Vertex v = agents_.position(a);
    const RumorMask fresh = agent_held_before_[a] & ~held_[v];
    if (fresh != 0) {
      held_[v] |= fresh;
      account_new_bits(fresh, have_count_, n, completion_, round_, remaining_,
                       [](std::size_t) {});
    }
  }
  // Phase B: agents absorb everything their vertex holds (including rumors
  // delivered this round by other agents — §3's same-round pickup).
  for (Agent a = 0; a < count; ++a) {
    agent_held_[a] |= held_[agents_.position(a)];
  }
  release_due();
}

MultiRumorResult MultiRumorVisitExchange::run() {
  Round last_release = 0;
  for (const auto& r : rumors_) last_release = std::max(last_release, r.release_round);
  while ((!done() || round_ < last_release) && round_ < cutoff_) step();
  return make_result(rumors_, completion_, remaining_, round_);
}

}  // namespace rumor

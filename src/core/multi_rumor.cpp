#include "core/multi_rumor.hpp"

#include "core/registry.hpp"
#include "support/spec_text.hpp"

#include <bit>

#include "walk/step_kernel.hpp"

namespace rumor {

namespace {

// Applies newly acquired rumor bits to the per-rumor holder counts and
// completion bookkeeping.
void account_new_bits(RumorMask fresh, std::vector<std::uint32_t>& have_count,
                      std::uint32_t full_count, std::vector<Round>& completion,
                      Round round, std::size_t& remaining) {
  while (fresh != 0) {
    const int r = std::countr_zero(fresh);
    fresh &= fresh - 1;
    if (++have_count[static_cast<std::size_t>(r)] == full_count) {
      completion[static_cast<std::size_t>(r)] = round;
      --remaining;
    }
  }
}

void fill_result(MultiRumorResult& out, std::span<const RumorSpec> rumors,
                 const std::vector<Round>& completion, std::size_t remaining,
                 Round round) {
  out.completed = (remaining == 0);
  out.rounds = round;
  out.completion_round.assign(completion.begin(), completion.end());
  out.latency.resize(rumors.size());
  for (std::size_t r = 0; r < rumors.size(); ++r) {
    out.latency[r] = completion[r] == kNoRoundYet
                         ? kNoRoundYet
                         : completion[r] - rumors[r].release_round;
  }
}

void validate(const Graph& g, std::span<const RumorSpec> rumors) {
  RUMOR_REQUIRE(!rumors.empty());
  RUMOR_REQUIRE(rumors.size() <= kMaxRumors);
  for (const auto& r : rumors) RUMOR_REQUIRE(r.source < g.num_vertices());
}

Round last_release_round(std::span<const RumorSpec> rumors) {
  Round last = 0;
  for (const auto& r : rumors) last = std::max(last, r.release_round);
  return last;
}

}  // namespace

// ---------------------------------------------------------------------------
// push-pull
// ---------------------------------------------------------------------------

MultiRumorPushPull::MultiRumorPushPull(const Graph& g,
                                       std::span<const RumorSpec> rumors,
                                       std::uint64_t seed, Round max_rounds,
                                       TrialArena* arena,
                                       TransmissionOptions transmission)
    : graph_(&g),
      rumors_(rumors),
      rng_(seed),
      cutoff_(max_rounds != 0 ? max_rounds
                              : default_round_cutoff(g.num_vertices())),
      owned_arena_(arena != nullptr ? nullptr : std::make_unique<TrialArena>()),
      arena_(arena != nullptr ? arena : owned_arena_.get()),
      remaining_(rumors.size()) {
  validate(g, rumors_);
  model_.bind(g, transmission, *arena_, seed);
  // Every vertex calls a random neighbor every round (the definition), so
  // the per-round loop may use the unchecked neighbor draw.
  RUMOR_REQUIRE(g.min_degree() > 0);
  arena_->vertex_rumors.assign(g.num_vertices(), 0);
  arena_->vertex_rumors_before.assign(g.num_vertices(), 0);
  arena_->rumor_have_count.assign(rumors_.size(), 0);
  arena_->rumor_completion.assign(rumors_.size(), kNoRoundYet);
  release_due();
}

MultiRumorPushPull::MultiRumorPushPull(const Graph& g,
                                       std::vector<RumorSpec>&& rumors,
                                       std::uint64_t seed, Round max_rounds,
                                       TrialArena* arena,
                                       TransmissionOptions transmission)
    : MultiRumorPushPull(g, std::span<const RumorSpec>(rumors), seed,
                         max_rounds, arena, transmission) {
  // The delegated constructor ran against the caller's vector; adopt it
  // (the move transfers the same heap buffer, so the span stays valid) and
  // re-point the span at the stored copy for clarity.
  rumor_storage_ = std::move(rumors);
  rumors_ = rumor_storage_;
}

void MultiRumorPushPull::release_due() {
  auto& held = arena_->vertex_rumors;
  for (std::size_t r = 0; r < rumors_.size(); ++r) {
    if (rumors_[r].release_round != round_) continue;
    const RumorMask bit = RumorMask{1} << r;
    if ((held[rumors_[r].source] & bit) == 0) {
      held[rumors_[r].source] |= bit;
      account_new_bits(bit, arena_->rumor_have_count, graph_->num_vertices(),
                       arena_->rumor_completion, round_, remaining_);
    }
  }
}

void MultiRumorPushPull::step() {
  if (model_.trivial()) {
    step_impl<transmission::Uniform>();
  } else {
    step_impl<transmission::General>();
  }
}

template <class Mode>
void MultiRumorPushPull::step_impl() {
  ++round_;
  auto& held = arena_->vertex_rumors;
  auto& held_before = arena_->vertex_rumors_before;
  held_before.assign(held.begin(), held.end());
  const Vertex n = graph_->num_vertices();
  for (Vertex u = 0; u < n; ++u) {
    const Vertex v = graph_->random_neighbor_unchecked(u, rng_);
    // Symmetric exchange of everything held before the round; each rumor
    // transfer succeeds independently with the receiver's probability.
    const RumorMask to_v =
        model_.filter_mask<Mode>(held_before[u] & ~held[v], v);
    if (to_v != 0) {
      held[v] |= to_v;
      account_new_bits(to_v, arena_->rumor_have_count, n,
                       arena_->rumor_completion, round_, remaining_);
    }
    const RumorMask to_u =
        model_.filter_mask<Mode>(held_before[v] & ~held[u], u);
    if (to_u != 0) {
      held[u] |= to_u;
      account_new_bits(to_u, arena_->rumor_have_count, n,
                       arena_->rumor_completion, round_, remaining_);
    }
  }
  release_due();
}

void MultiRumorPushPull::run_into(MultiRumorResult& out) {
  // Run at least until every rumor has been released.
  const Round last_release = last_release_round(rumors_);
  while ((!done() || round_ < last_release) && round_ < cutoff_) step();
  fill_result(out, rumors_, arena_->rumor_completion, remaining_, round_);
}

MultiRumorResult MultiRumorPushPull::run() {
  MultiRumorResult result;
  run_into(result);
  return result;
}

// ---------------------------------------------------------------------------
// visit-exchange
// ---------------------------------------------------------------------------

MultiRumorVisitExchange::MultiRumorVisitExchange(
    const Graph& g, std::span<const RumorSpec> rumors, std::uint64_t seed,
    WalkOptions options, TrialArena* arena)
    : graph_(&g),
      rumors_(rumors),
      rng_(seed),
      options_(options),
      laziness_(resolve_laziness(g, options.lazy)),
      cutoff_(options.max_rounds != 0 ? options.max_rounds
                                      : default_round_cutoff(g.num_vertices())),
      owned_arena_(arena != nullptr ? nullptr : std::make_unique<TrialArena>()),
      arena_(arena != nullptr ? arena : owned_arena_.get()),
      agents_(g, resolve_agent_count(g, options), options.placement, rng_,
              resolve_anchor(options, rumors.empty() ? 0 : rumors[0].source),
              arena_),
      remaining_(rumors.size()) {
  validate(g, rumors_);
  model_.bind(g, options_.transmission, *arena_, seed);
  arena_->vertex_rumors.assign(g.num_vertices(), 0);
  arena_->agent_rumors.assign(agents_.count(), 0);
  arena_->agent_rumors_before.assign(agents_.count(), 0);
  arena_->rumor_have_count.assign(rumors_.size(), 0);
  arena_->rumor_completion.assign(rumors_.size(), kNoRoundYet);
  release_due();
}

MultiRumorVisitExchange::MultiRumorVisitExchange(
    const Graph& g, std::vector<RumorSpec>&& rumors, std::uint64_t seed,
    WalkOptions options, TrialArena* arena)
    : MultiRumorVisitExchange(g, std::span<const RumorSpec>(rumors), seed,
                              options, arena) {
  rumor_storage_ = std::move(rumors);
  rumors_ = rumor_storage_;
}

void MultiRumorVisitExchange::release_due() {
  auto& held = arena_->vertex_rumors;
  auto& agent_held = arena_->agent_rumors;
  for (std::size_t r = 0; r < rumors_.size(); ++r) {
    if (rumors_[r].release_round != round_) continue;
    const RumorMask bit = RumorMask{1} << r;
    const Vertex source = rumors_[r].source;
    if ((held[source] & bit) == 0) {
      held[source] |= bit;
      account_new_bits(bit, arena_->rumor_have_count, graph_->num_vertices(),
                       arena_->rumor_completion, round_, remaining_);
    }
    // As in §3 round zero: agents standing on the source learn it at once.
    for (Agent a = 0; a < agents_.count(); ++a) {
      if (agents_.position(a) == source) agent_held[a] |= bit;
    }
  }
}

void MultiRumorVisitExchange::step() {
  if (model_.trivial()) {
    step_impl<transmission::Uniform>();
  } else {
    step_impl<transmission::General>();
  }
}

template <class Mode>
void MultiRumorVisitExchange::step_impl() {
  constexpr bool kGeneral = std::is_same_v<Mode, transmission::General>;
  ++round_;
  const std::size_t count = agents_.count();
  step_walks(*graph_, agents_.positions_mut(), rng_, laziness_, nullptr,
             options_.engine);
  auto& held = arena_->vertex_rumors;
  auto& agent_held = arena_->agent_rumors;
  auto& agent_held_before = arena_->agent_rumors_before;
  agent_held_before.assign(agent_held.begin(), agent_held.end());

  // Phase A: rumors the agent held before the round land on its vertex,
  // each transfer drawn independently against the vertex's receive
  // probability.
  const Vertex n = graph_->num_vertices();
  for (Agent a = 0; a < count; ++a) {
    const Vertex v = agents_.position(a);
    const RumorMask fresh =
        model_.filter_mask<Mode>(agent_held_before[a] & ~held[v], v);
    if (fresh != 0) {
      held[v] |= fresh;
      account_new_bits(fresh, arena_->rumor_have_count, n,
                       arena_->rumor_completion, round_, remaining_);
    }
  }
  // Phase B: agents absorb everything their vertex holds (including rumors
  // delivered this round by other agents — §3's same-round pickup); under
  // a heterogeneous model each pickup succeeds with the location's
  // probability.
  for (Agent a = 0; a < count; ++a) {
    const Vertex v = agents_.position(a);
    if constexpr (kGeneral) {
      agent_held[a] |=
          model_.filter_mask<Mode>(held[v] & ~agent_held[a], v);
    } else {
      agent_held[a] |= held[v];
    }
  }
  release_due();
}

void MultiRumorVisitExchange::run_into(MultiRumorResult& out) {
  const Round last_release = last_release_round(rumors_);
  while ((!done() || round_ < last_release) && round_ < cutoff_) step();
  fill_result(out, rumors_, arena_->rumor_completion, remaining_, round_);
}

MultiRumorResult MultiRumorVisitExchange::run() {
  MultiRumorResult result;
  run_into(result);
  return result;
}

// ---- Scenario registry entries ----------------------------------------

namespace {

// Materializes the declarative rumor set: rumor 0 at the scenario source
// (round 0), rumor r >= 1 at a seed-derived uniform vertex, released at
// r * release_interval. Deterministic in (options, source, seed) — the
// trial runner's worker-count independence needs nothing more. The
// thread-local buffers keep steady-state trials allocation-free.
std::span<const RumorSpec> materialize_rumors(const MultiRumorOptions& opt,
                                              const Graph& g, Vertex source,
                                              std::uint64_t seed) {
  static thread_local std::vector<RumorSpec> rumors;
  rumors.clear();
  rumors.push_back({source, 0});
  Rng placement_rng(derive_seed(seed, 0x5EED5EEDULL));
  for (std::uint32_t r = 1; r < opt.rumor_count; ++r) {
    rumors.push_back(
        {static_cast<Vertex>(placement_rng.below(g.num_vertices())),
         static_cast<Round>(r) * opt.release_interval});
  }
  return rumors;
}

TrialResult run_multi_entry(const Graph& g, const ProtocolOptions& options,
                            Vertex source, std::uint64_t seed,
                            TrialArena* arena, bool walks) {
  const auto& opt = std::get<MultiRumorOptions>(options);
  const std::span<const RumorSpec> rumors =
      materialize_rumors(opt, g, source, seed);
  static thread_local MultiRumorResult scratch;
  if (walks) {
    MultiRumorVisitExchange(g, rumors, seed, opt.walk, arena)
        .run_into(scratch);
  } else {
    MultiRumorPushPull(g, rumors, seed, opt.walk.max_rounds, arena,
                       opt.walk.transmission)
        .run_into(scratch);
  }
  TrialResult result;
  result.rounds = static_cast<double>(scratch.rounds);
  result.completed = scratch.completed;
  // "informed" for multi-rumor: how many rumors reached everyone.
  std::uint32_t completed_rumors = 0;
  for (const Round r : scratch.completion_round) {
    if (r != kNoRoundYet) ++completed_rumors;
  }
  result.informed = completed_rumors;
  return result;
}

TrialResult multi_push_pull_entry_run(const Graph& g,
                                      const ProtocolOptions& options,
                                      Vertex source, std::uint64_t seed,
                                      TrialArena* arena) {
  return run_multi_entry(g, options, source, seed, arena, /*walks=*/false);
}

TrialResult multi_visit_exchange_entry_run(const Graph& g,
                                           const ProtocolOptions& options,
                                           Vertex source, std::uint64_t seed,
                                           TrialArena* arena) {
  return run_multi_entry(g, options, source, seed, arena, /*walks=*/true);
}

// Each variant's formatter mirrors its set hook exactly — a formatter that
// emits a key its parser rejects would break the parse(name()) round-trip
// for programmatically built specs.
void multi_entry_format_common(const MultiRumorOptions& opt,
                               const MultiRumorOptions& def,
                               spec_text::KeyValWriter& out) {
  if (opt.rumor_count != def.rumor_count) {
    out.add("rumors", static_cast<std::uint64_t>(opt.rumor_count));
  }
  if (opt.release_interval != def.release_interval) {
    out.add("interval", static_cast<std::uint64_t>(opt.release_interval));
  }
}

void multi_visit_exchange_entry_format(const ProtocolOptions& options,
                                       const ProtocolOptions& defaults,
                                       spec_text::KeyValWriter& out) {
  const auto& opt = std::get<MultiRumorOptions>(options);
  const auto& def = std::get<MultiRumorOptions>(defaults);
  multi_entry_format_common(opt, def, out);
  format_agent_walk_options(opt.walk, def.walk, out);
}

void multi_push_pull_entry_format(const ProtocolOptions& options,
                                  const ProtocolOptions& defaults,
                                  spec_text::KeyValWriter& out) {
  const auto& opt = std::get<MultiRumorOptions>(options);
  const auto& def = std::get<MultiRumorOptions>(defaults);
  multi_entry_format_common(opt, def, out);
  if (opt.walk.max_rounds != def.walk.max_rounds) {
    out.add("max_rounds", static_cast<std::uint64_t>(opt.walk.max_rounds));
  }
  format_transmission_probability_options(opt.walk.transmission,
                                          def.walk.transmission, out);
}

bool multi_entry_set_common(MultiRumorOptions& opt, std::string_view key,
                            std::string_view value, bool* handled) {
  *handled = true;
  if (key == "rumors") {
    const auto v = spec_text::parse_u64(value);
    if (!v || *v == 0 || *v > kMaxRumors) return false;
    opt.rumor_count = static_cast<std::uint32_t>(*v);
    return true;
  }
  if (key == "interval") {
    const auto v = spec_text::parse_u64(value);
    if (!v) return false;
    opt.release_interval = *v;
    return true;
  }
  *handled = false;
  return false;
}

// Neither simulator records traces (the registry trace() hook below is
// null), so the trace keys are rejected here rather than parsed into a
// silently ignored WalkOptions::trace.
bool multi_visit_exchange_entry_set(ProtocolOptions& options,
                                    std::string_view key,
                                    std::string_view value) {
  auto& opt = std::get<MultiRumorOptions>(options);
  bool handled = false;
  const bool ok = multi_entry_set_common(opt, key, value, &handled);
  if (handled) return ok;
  return set_agent_walk_option(opt.walk, key, value);
}

// The push-pull variant has no agent substrate at all: only the cutoff
// survives from the walk block.
bool multi_push_pull_entry_set(ProtocolOptions& options, std::string_view key,
                               std::string_view value) {
  auto& opt = std::get<MultiRumorOptions>(options);
  bool handled = false;
  const bool ok = multi_entry_set_common(opt, key, value, &handled);
  if (handled) return ok;
  if (key == "max_rounds") {
    const auto v = spec_text::parse_u64(value);
    if (!v) return false;
    opt.walk.max_rounds = *v;
    return true;
  }
  return set_transmission_probability_option(opt.walk.transmission, key,
                                             value);
}

TraceOptions* multi_entry_trace(ProtocolOptions&) {
  return nullptr;  // the multi-rumor simulators record no traces
}

}  // namespace

void register_multi_rumor_simulators(SimulatorRegistry& registry) {
  SimulatorEntry push_pull_entry;
  push_pull_entry.id = Protocol::multi_push_pull;
  push_pull_entry.name = "multi-push-pull";
  push_pull_entry.summary =
      "parallel rumors over one shared push-pull call schedule";
  push_pull_entry.defaults = MultiRumorOptions{};
  push_pull_entry.run = multi_push_pull_entry_run;
  push_pull_entry.format_options = multi_push_pull_entry_format;
  push_pull_entry.set_option = multi_push_pull_entry_set;
  push_pull_entry.trace = multi_entry_trace;
  registry.add(std::move(push_pull_entry));

  SimulatorEntry visit_entry;
  visit_entry.id = Protocol::multi_visit_exchange;
  visit_entry.name = "multi-visit-exchange";
  visit_entry.summary =
      "parallel rumors carried by one perpetual agent population";
  visit_entry.defaults = MultiRumorOptions{};
  visit_entry.run = multi_visit_exchange_entry_run;
  visit_entry.format_options = multi_visit_exchange_entry_format;
  visit_entry.set_option = multi_visit_exchange_entry_set;
  visit_entry.trace = multi_entry_trace;
  registry.add(std::move(visit_entry));
}

}  // namespace rumor

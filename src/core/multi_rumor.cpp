#include "core/multi_rumor.hpp"

#include <bit>

#include "walk/step_kernel.hpp"

namespace rumor {

namespace {

// Applies newly acquired rumor bits to the per-rumor holder counts and
// completion bookkeeping.
void account_new_bits(RumorMask fresh, std::vector<std::uint32_t>& have_count,
                      std::uint32_t full_count, std::vector<Round>& completion,
                      Round round, std::size_t& remaining) {
  while (fresh != 0) {
    const int r = std::countr_zero(fresh);
    fresh &= fresh - 1;
    if (++have_count[static_cast<std::size_t>(r)] == full_count) {
      completion[static_cast<std::size_t>(r)] = round;
      --remaining;
    }
  }
}

void fill_result(MultiRumorResult& out, std::span<const RumorSpec> rumors,
                 const std::vector<Round>& completion, std::size_t remaining,
                 Round round) {
  out.completed = (remaining == 0);
  out.rounds = round;
  out.completion_round.assign(completion.begin(), completion.end());
  out.latency.resize(rumors.size());
  for (std::size_t r = 0; r < rumors.size(); ++r) {
    out.latency[r] = completion[r] == kNoRoundYet
                         ? kNoRoundYet
                         : completion[r] - rumors[r].release_round;
  }
}

void validate(const Graph& g, std::span<const RumorSpec> rumors) {
  RUMOR_REQUIRE(!rumors.empty());
  RUMOR_REQUIRE(rumors.size() <= kMaxRumors);
  for (const auto& r : rumors) RUMOR_REQUIRE(r.source < g.num_vertices());
}

Round last_release_round(std::span<const RumorSpec> rumors) {
  Round last = 0;
  for (const auto& r : rumors) last = std::max(last, r.release_round);
  return last;
}

}  // namespace

// ---------------------------------------------------------------------------
// push-pull
// ---------------------------------------------------------------------------

MultiRumorPushPull::MultiRumorPushPull(const Graph& g,
                                       std::span<const RumorSpec> rumors,
                                       std::uint64_t seed, Round max_rounds,
                                       TrialArena* arena)
    : graph_(&g),
      rumors_(rumors),
      rng_(seed),
      cutoff_(max_rounds != 0 ? max_rounds
                              : default_round_cutoff(g.num_vertices())),
      owned_arena_(arena != nullptr ? nullptr : std::make_unique<TrialArena>()),
      arena_(arena != nullptr ? arena : owned_arena_.get()),
      remaining_(rumors.size()) {
  validate(g, rumors_);
  // Every vertex calls a random neighbor every round (the definition), so
  // the per-round loop may use the unchecked neighbor draw.
  RUMOR_REQUIRE(g.min_degree() > 0);
  arena_->vertex_rumors.assign(g.num_vertices(), 0);
  arena_->vertex_rumors_before.assign(g.num_vertices(), 0);
  arena_->rumor_have_count.assign(rumors_.size(), 0);
  arena_->rumor_completion.assign(rumors_.size(), kNoRoundYet);
  release_due();
}

MultiRumorPushPull::MultiRumorPushPull(const Graph& g,
                                       std::vector<RumorSpec>&& rumors,
                                       std::uint64_t seed, Round max_rounds,
                                       TrialArena* arena)
    : MultiRumorPushPull(g, std::span<const RumorSpec>(rumors), seed,
                         max_rounds, arena) {
  // The delegated constructor ran against the caller's vector; adopt it
  // (the move transfers the same heap buffer, so the span stays valid) and
  // re-point the span at the stored copy for clarity.
  rumor_storage_ = std::move(rumors);
  rumors_ = rumor_storage_;
}

void MultiRumorPushPull::release_due() {
  auto& held = arena_->vertex_rumors;
  for (std::size_t r = 0; r < rumors_.size(); ++r) {
    if (rumors_[r].release_round != round_) continue;
    const RumorMask bit = RumorMask{1} << r;
    if ((held[rumors_[r].source] & bit) == 0) {
      held[rumors_[r].source] |= bit;
      account_new_bits(bit, arena_->rumor_have_count, graph_->num_vertices(),
                       arena_->rumor_completion, round_, remaining_);
    }
  }
}

void MultiRumorPushPull::step() {
  ++round_;
  auto& held = arena_->vertex_rumors;
  auto& held_before = arena_->vertex_rumors_before;
  held_before.assign(held.begin(), held.end());
  const Vertex n = graph_->num_vertices();
  for (Vertex u = 0; u < n; ++u) {
    const Vertex v = graph_->random_neighbor_unchecked(u, rng_);
    // Symmetric exchange of everything held before the round.
    const RumorMask to_v = held_before[u] & ~held[v];
    if (to_v != 0) {
      held[v] |= to_v;
      account_new_bits(to_v, arena_->rumor_have_count, n,
                       arena_->rumor_completion, round_, remaining_);
    }
    const RumorMask to_u = held_before[v] & ~held[u];
    if (to_u != 0) {
      held[u] |= to_u;
      account_new_bits(to_u, arena_->rumor_have_count, n,
                       arena_->rumor_completion, round_, remaining_);
    }
  }
  release_due();
}

void MultiRumorPushPull::run_into(MultiRumorResult& out) {
  // Run at least until every rumor has been released.
  const Round last_release = last_release_round(rumors_);
  while ((!done() || round_ < last_release) && round_ < cutoff_) step();
  fill_result(out, rumors_, arena_->rumor_completion, remaining_, round_);
}

MultiRumorResult MultiRumorPushPull::run() {
  MultiRumorResult result;
  run_into(result);
  return result;
}

// ---------------------------------------------------------------------------
// visit-exchange
// ---------------------------------------------------------------------------

MultiRumorVisitExchange::MultiRumorVisitExchange(
    const Graph& g, std::span<const RumorSpec> rumors, std::uint64_t seed,
    WalkOptions options, TrialArena* arena)
    : graph_(&g),
      rumors_(rumors),
      rng_(seed),
      options_(options),
      laziness_(resolve_laziness(g, options.lazy)),
      cutoff_(options.max_rounds != 0 ? options.max_rounds
                                      : default_round_cutoff(g.num_vertices())),
      owned_arena_(arena != nullptr ? nullptr : std::make_unique<TrialArena>()),
      arena_(arena != nullptr ? arena : owned_arena_.get()),
      agents_(g, resolve_agent_count(g, options), options.placement, rng_,
              resolve_anchor(options, rumors.empty() ? 0 : rumors[0].source),
              arena_),
      remaining_(rumors.size()) {
  validate(g, rumors_);
  arena_->vertex_rumors.assign(g.num_vertices(), 0);
  arena_->agent_rumors.assign(agents_.count(), 0);
  arena_->agent_rumors_before.assign(agents_.count(), 0);
  arena_->rumor_have_count.assign(rumors_.size(), 0);
  arena_->rumor_completion.assign(rumors_.size(), kNoRoundYet);
  release_due();
}

MultiRumorVisitExchange::MultiRumorVisitExchange(
    const Graph& g, std::vector<RumorSpec>&& rumors, std::uint64_t seed,
    WalkOptions options, TrialArena* arena)
    : MultiRumorVisitExchange(g, std::span<const RumorSpec>(rumors), seed,
                              options, arena) {
  rumor_storage_ = std::move(rumors);
  rumors_ = rumor_storage_;
}

void MultiRumorVisitExchange::release_due() {
  auto& held = arena_->vertex_rumors;
  auto& agent_held = arena_->agent_rumors;
  for (std::size_t r = 0; r < rumors_.size(); ++r) {
    if (rumors_[r].release_round != round_) continue;
    const RumorMask bit = RumorMask{1} << r;
    const Vertex source = rumors_[r].source;
    if ((held[source] & bit) == 0) {
      held[source] |= bit;
      account_new_bits(bit, arena_->rumor_have_count, graph_->num_vertices(),
                       arena_->rumor_completion, round_, remaining_);
    }
    // As in §3 round zero: agents standing on the source learn it at once.
    for (Agent a = 0; a < agents_.count(); ++a) {
      if (agents_.position(a) == source) agent_held[a] |= bit;
    }
  }
}

void MultiRumorVisitExchange::step() {
  ++round_;
  const std::size_t count = agents_.count();
  step_walks(*graph_, agents_.positions_mut(), rng_, laziness_, nullptr,
             options_.engine);
  auto& held = arena_->vertex_rumors;
  auto& agent_held = arena_->agent_rumors;
  auto& agent_held_before = arena_->agent_rumors_before;
  agent_held_before.assign(agent_held.begin(), agent_held.end());

  // Phase A: rumors the agent held before the round land on its vertex.
  const Vertex n = graph_->num_vertices();
  for (Agent a = 0; a < count; ++a) {
    const Vertex v = agents_.position(a);
    const RumorMask fresh = agent_held_before[a] & ~held[v];
    if (fresh != 0) {
      held[v] |= fresh;
      account_new_bits(fresh, arena_->rumor_have_count, n,
                       arena_->rumor_completion, round_, remaining_);
    }
  }
  // Phase B: agents absorb everything their vertex holds (including rumors
  // delivered this round by other agents — §3's same-round pickup).
  for (Agent a = 0; a < count; ++a) {
    agent_held[a] |= held[agents_.position(a)];
  }
  release_due();
}

void MultiRumorVisitExchange::run_into(MultiRumorResult& out) {
  const Round last_release = last_release_round(rumors_);
  while ((!done() || round_ < last_release) && round_ < cutoff_) step();
  fill_result(out, rumors_, arena_->rumor_completion, remaining_, round_);
}

MultiRumorResult MultiRumorVisitExchange::run() {
  MultiRumorResult result;
  run_into(result);
  return result;
}

}  // namespace rumor

#include "core/frog.hpp"

#include "core/registry.hpp"
#include "support/spec_text.hpp"

namespace rumor {

FrogProcess::FrogProcess(const Graph& g, Vertex source, std::uint64_t seed,
                         FrogOptions options, TrialArena* arena)
    : graph_(&g),
      rng_(seed),
      options_(options),
      cutoff_(options.max_rounds != 0 ? options.max_rounds
                                      : default_round_cutoff(g.num_vertices())),
      owned_arena_(arena != nullptr ? nullptr : std::make_unique<TrialArena>()),
      arena_(arena != nullptr ? arena : owned_arena_.get()),
      positions_(&arena_->agent_positions),
      frog_count_(static_cast<std::size_t>(g.num_vertices()) *
                  options.frogs_per_vertex) {
  RUMOR_REQUIRE(source < g.num_vertices());
  RUMOR_REQUIRE(options.frogs_per_vertex >= 1);
  model_.bind(g, options_.transmission, *arena_, seed);
  target_awake_ = frog_count_;
  positions_->resize(frog_count_);
  for (std::size_t f = 0; f < frog_count_; ++f) {
    (*positions_)[f] = static_cast<Vertex>(f / options_.frogs_per_vertex);
  }
  arena_->vertex_inform_round.reset(g.num_vertices(), kNeverInformed);
  order_.reset(*arena_, frog_count_);
  if (options_.trace.informed_curve) arena_->curve.clear();

  // Round 0: the source is "visited"; its frogs wake.
  wake_at(source);
  if (options_.trace.informed_curve) {
    arena_->curve.push_back(static_cast<std::uint32_t>(awake_count_));
  }
}

void FrogProcess::wake_at(Vertex v) {
  if (arena_->vertex_inform_round.touched(v)) return;
  arena_->vertex_inform_round.set(v, static_cast<std::uint32_t>(round_));
  last_inform_round_ = round_;
  // Wake the frogs native to v (they are asleep iff v was unvisited).
  const std::size_t base =
      static_cast<std::size_t>(v) * options_.frogs_per_vertex;
  for (std::uint32_t i = 0; i < options_.frogs_per_vertex; ++i) {
    const auto f = static_cast<std::uint32_t>(base + i);
    const std::uint32_t idx = order_.index_of(f);
    RUMOR_CHECK(idx >= awake_count_);
    order_.swap(idx, awake_count_);
    ++awake_count_;
  }
}

void FrogProcess::activate_blocking() {
  // Sleepers at quarantined unvisited vertices can never wake.
  const Vertex n = graph_->num_vertices();
  const std::size_t unreachable =
      model_.count_blocked_uninformed(arena_->vertex_inform_round, n);
  target_awake_ = frog_count_ - unreachable * options_.frogs_per_vertex;
}

void FrogProcess::step() {
  if (model_.trivial()) {
    step_impl<transmission::Uniform>();
  } else {
    step_impl<transmission::General>();
  }
}

template <class Mode>
void FrogProcess::step_impl() {
  constexpr bool kGeneral = std::is_same_v<Mode, transmission::General>;
  ++round_;
  if constexpr (kGeneral) {
    if (model_.blocking() && round_ == model_.block_round()) {
      activate_blocking();
    }
  }
  // Frogs awake at the start of the round walk one step; every vertex they
  // land on wakes its sleepers (who start walking next round). Stifled
  // frogs keep walking but wake nobody; quarantined vertices never wake.
  const std::size_t awake_at_start = awake_count_;
  for (std::size_t idx = 0; idx < awake_at_start; ++idx) {
    const std::uint32_t f = order_.at(idx);
    const Vertex v =
        step_from(*graph_, (*positions_)[f], rng_, options_.laziness);
    (*positions_)[f] = v;
    if constexpr (kGeneral) {
      if (arena_->vertex_inform_round.touched(v) ||
          !model_.can_transmit<Mode>(wake_round(f), v, round_) ||
          !model_.attempt<Mode>(v, v)) {
        continue;
      }
    }
    wake_at(v);
  }
  if (options_.trace.informed_curve) {
    arena_->curve.push_back(static_cast<std::uint32_t>(awake_count_));
  }
}

bool FrogProcess::halted() const {
  if (done() || round_ >= cutoff_) return true;
  if (model_.trivial()) return false;
  if (awake_count_ >= target_awake_) return true;  // blocking containment
  return model_.extinct(round_, last_inform_round_);
}

RunResult FrogProcess::run() {
  while (!halted()) step();
  RunResult result;
  result.rounds = round_;
  result.completed = done();
  result.agent_rounds = round_;
  result.informed = static_cast<std::uint32_t>(awake_count_);
  if (options_.trace.informed_curve) {
    result.informed_curve = arena_->curve;
    result.stifled_curve =
        derive_stifled_curve(result.informed_curve, model_.stifle());
  }
  if (options_.trace.inform_rounds) {
    result.vertex_inform_round = arena_->vertex_inform_round.to_vector();
  }
  return result;
}

RunResult run_frog(const Graph& g, Vertex source, std::uint64_t seed,
                   FrogOptions options, TrialArena* arena) {
  return FrogProcess(g, source, seed, options, arena).run();
}

// ---- Scenario registry entry ------------------------------------------

namespace {

TrialResult frog_entry_run(const Graph& g, const ProtocolOptions& options,
                           Vertex source, std::uint64_t seed,
                           TrialArena* arena) {
  return to_trial_result(
      FrogProcess(g, source, seed, std::get<FrogOptions>(options), arena)
          .run());
}

void frog_entry_format(const ProtocolOptions& options,
                       const ProtocolOptions& defaults,
                       spec_text::KeyValWriter& out) {
  const auto& opt = std::get<FrogOptions>(options);
  const auto& def = std::get<FrogOptions>(defaults);
  if (opt.frogs_per_vertex != def.frogs_per_vertex) {
    out.add("frogs", static_cast<std::uint64_t>(opt.frogs_per_vertex));
  }
  if (opt.laziness != def.laziness) {
    out.add("lazy", opt.laziness == Laziness::half ? "half" : "none");
  }
  if (opt.max_rounds != def.max_rounds) {
    out.add("max_rounds", static_cast<std::uint64_t>(opt.max_rounds));
  }
  format_transmission_options(opt.transmission, def.transmission, out);
  format_trace_options(opt.trace, def.trace, out);
}

bool frog_entry_set(ProtocolOptions& options, std::string_view key,
                    std::string_view value) {
  auto& opt = std::get<FrogOptions>(options);
  if (key == "frogs") {
    const auto v = spec_text::parse_u64(value);
    if (!v || *v == 0) return false;
    opt.frogs_per_vertex = static_cast<std::uint32_t>(*v);
    return true;
  }
  if (key == "lazy") {
    if (value == "none") {
      opt.laziness = Laziness::none;
    } else if (value == "half") {
      opt.laziness = Laziness::half;
    } else {
      return false;
    }
    return true;
  }
  if (key == "max_rounds") {
    const auto v = spec_text::parse_u64(value);
    if (!v) return false;
    opt.max_rounds = *v;
    return true;
  }
  if (set_transmission_option(opt.transmission, key, value)) return true;
  return set_trace_option(opt.trace, key, value);
}

TraceOptions* frog_entry_trace(ProtocolOptions& options) {
  return &std::get<FrogOptions>(options).trace;
}

}  // namespace

void register_frog_simulator(SimulatorRegistry& registry) {
  SimulatorEntry entry;
  entry.id = Protocol::frog;
  entry.name = "frog";
  entry.summary =
      "frog model: sleeping per-vertex walkers woken (and recruited) by "
      "visits";
  entry.defaults = FrogOptions{};
  entry.run = frog_entry_run;
  entry.format_options = frog_entry_format;
  entry.set_option = frog_entry_set;
  entry.trace = frog_entry_trace;
  registry.add(std::move(entry));
}

}  // namespace rumor

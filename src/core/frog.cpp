#include "core/frog.hpp"

namespace rumor {

FrogProcess::FrogProcess(const Graph& g, Vertex source, std::uint64_t seed,
                         FrogOptions options)
    : graph_(&g),
      rng_(seed),
      options_(options),
      cutoff_(options.max_rounds != 0 ? options.max_rounds
                                      : default_round_cutoff(g.num_vertices())),
      positions_(static_cast<std::size_t>(g.num_vertices()) *
                 options.frogs_per_vertex),
      visit_round_(g.num_vertices(), kNeverInformed),
      frog_order_(positions_.size()),
      order_index_of_(positions_.size()) {
  RUMOR_REQUIRE(source < g.num_vertices());
  RUMOR_REQUIRE(options.frogs_per_vertex >= 1);
  for (std::size_t f = 0; f < positions_.size(); ++f) {
    positions_[f] = static_cast<Vertex>(f / options_.frogs_per_vertex);
    frog_order_[f] = static_cast<std::uint32_t>(f);
    order_index_of_[f] = static_cast<std::uint32_t>(f);
  }
  // Round 0: the source is "visited"; its frogs wake.
  wake_at(source);
  if (options_.trace.informed_curve) {
    curve_.push_back(static_cast<std::uint32_t>(awake_count_));
  }
}

void FrogProcess::wake_at(Vertex v) {
  if (visit_round_[v] != kNeverInformed) return;
  visit_round_[v] = static_cast<std::uint32_t>(round_);
  // Wake the frogs native to v (they are asleep iff v was unvisited).
  const std::size_t base =
      static_cast<std::size_t>(v) * options_.frogs_per_vertex;
  for (std::uint32_t i = 0; i < options_.frogs_per_vertex; ++i) {
    const auto f = static_cast<std::uint32_t>(base + i);
    const std::uint32_t idx = order_index_of_[f];
    RUMOR_CHECK(idx >= awake_count_);
    const auto dest = static_cast<std::uint32_t>(awake_count_);
    const std::uint32_t other = frog_order_[dest];
    frog_order_[dest] = f;
    frog_order_[idx] = other;
    order_index_of_[f] = dest;
    order_index_of_[other] = idx;
    ++awake_count_;
  }
}

void FrogProcess::step() {
  ++round_;
  // Frogs awake at the start of the round walk one step; every vertex they
  // land on wakes its sleepers (who start walking next round).
  const std::size_t awake_at_start = awake_count_;
  for (std::size_t idx = 0; idx < awake_at_start; ++idx) {
    const std::uint32_t f = frog_order_[idx];
    const Vertex v =
        step_from(*graph_, positions_[f], rng_, options_.laziness);
    positions_[f] = v;
    wake_at(v);
  }
  if (options_.trace.informed_curve) {
    curve_.push_back(static_cast<std::uint32_t>(awake_count_));
  }
}

RunResult FrogProcess::run() {
  while (!done() && round_ < cutoff_) step();
  RunResult result;
  result.rounds = round_;
  result.completed = done();
  result.agent_rounds = round_;
  if (options_.trace.informed_curve) result.informed_curve = curve_;
  if (options_.trace.inform_rounds) result.vertex_inform_round = visit_round_;
  return result;
}

RunResult run_frog(const Graph& g, Vertex source, std::uint64_t seed,
                   FrogOptions options) {
  return FrogProcess(g, source, seed, options).run();
}

}  // namespace rumor

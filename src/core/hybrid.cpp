#include "core/hybrid.hpp"

#include "graph/properties.hpp"

namespace rumor {

HybridProcess::HybridProcess(const Graph& g, Vertex source,
                             std::uint64_t seed, WalkOptions options)
    : graph_(&g),
      rng_(seed),
      options_(options),
      laziness_(options.lazy == LazyMode::always ? Laziness::half
                                                 : Laziness::none),
      cutoff_(options.max_rounds != 0 ? options.max_rounds
                                      : default_round_cutoff(g.num_vertices())),
      agents_(g, resolve_agent_count(g, options), options.placement, rng_,
              resolve_anchor(options, source)),
      vertex_inform_round_(g.num_vertices(), kNeverInformed),
      agent_inform_round_(agents_.count(), kNeverInformed),
      agent_order_(agents_.count()),
      order_index_of_(agents_.count()),
      informed_nbr_count_(g.num_vertices(), 0),
      in_frontier_(g.num_vertices(), 0) {
  RUMOR_REQUIRE(source < g.num_vertices());
  // Vertex-informed walks never need laziness for termination; only the
  // explicit `always` mode is honored (auto_bipartite is a meet-exchange
  // concern).
  for (Agent a = 0; a < agents_.count(); ++a) {
    agent_order_[a] = a;
    order_index_of_[a] = a;
  }
  inform_vertex(source);
  for (Agent a = 0; a < agents_.count(); ++a) {
    if (agents_.position(a) == source) inform_agent_at(order_index_of_[a]);
  }
  if (options_.trace.informed_curve) curve_.push_back(informed_vertex_count_);
}

void HybridProcess::inform_vertex(Vertex v) {
  RUMOR_CHECK(vertex_inform_round_[v] == kNeverInformed);
  vertex_inform_round_[v] = static_cast<std::uint32_t>(round_);
  ++informed_vertex_count_;
  active_.push_back(v);
  for (Vertex w : graph_->neighbors(v)) {
    ++informed_nbr_count_[w];
    if (vertex_inform_round_[w] == kNeverInformed && !in_frontier_[w]) {
      in_frontier_[w] = 1;
      frontier_.push_back(w);
    }
  }
}

void HybridProcess::inform_agent_at(std::size_t order_index) {
  RUMOR_CHECK(order_index >= informed_agent_count_);
  const Agent a = agent_order_[order_index];
  agent_inform_round_[a] = static_cast<std::uint32_t>(round_);
  const auto dest = static_cast<std::uint32_t>(informed_agent_count_);
  const Agent other = agent_order_[dest];
  agent_order_[dest] = a;
  agent_order_[order_index] = other;
  order_index_of_[a] = dest;
  order_index_of_[other] = static_cast<std::uint32_t>(order_index);
  ++informed_agent_count_;
}

void HybridProcess::step() {
  ++round_;
  const std::size_t count = agents_.count();

  // (1) agents move (batched walk kernel).
  step_walks(*graph_, agents_.positions_mut(), rng_, laziness_, nullptr,
             options_.engine);

  // (2) previously informed agents inform their vertices.
  const std::size_t informed_agents_at_start = informed_agent_count_;
  for (std::size_t idx = 0; idx < informed_agents_at_start; ++idx) {
    const Vertex v = agents_.position(agent_order_[idx]);
    if (vertex_inform_round_[v] == kNeverInformed) inform_vertex(v);
  }

  // (3) push-pull calls on informed-before-round state (fast path: only
  // state-changing calls, exactly as in PushPullProcess).
  std::size_t kept = 0;
  for (Vertex v : active_) {
    if (informed_nbr_count_[v] < graph_->degree(v)) active_[kept++] = v;
  }
  active_.resize(kept);
  kept = 0;
  for (Vertex w : frontier_) {
    if (vertex_inform_round_[w] == kNeverInformed) frontier_[kept++] = w;
  }
  frontier_.resize(kept);

  const std::size_t pushers = active_.size();
  for (std::size_t i = 0; i < pushers; ++i) {
    const Vertex u = active_[i];
    if (!informed_before_this_round(u)) continue;  // informed in step (2)
    const Vertex v = graph_->random_neighbor(u, rng_);
    if (vertex_inform_round_[v] == kNeverInformed) inform_vertex(v);
  }
  const std::size_t pullers = frontier_.size();
  for (std::size_t i = 0; i < pullers; ++i) {
    const Vertex w = frontier_[i];
    if (vertex_inform_round_[w] != kNeverInformed) continue;
    const Vertex v = graph_->random_neighbor(w, rng_);
    if (informed_before_this_round(v)) inform_vertex(w);
  }

  // (4) agents standing on informed vertices become informed.
  for (std::size_t idx = informed_agents_at_start; idx < count; ++idx) {
    const Agent a = agent_order_[idx];
    if (vertex_inform_round_[agents_.position(a)] != kNeverInformed) {
      inform_agent_at(idx);
    }
  }

  if (options_.trace.informed_curve) curve_.push_back(informed_vertex_count_);
}

RunResult HybridProcess::run() {
  while (!done() && round_ < cutoff_) step();
  RunResult result;
  result.rounds = round_;
  result.completed = done();
  result.agent_rounds = round_;
  if (options_.trace.informed_curve) result.informed_curve = curve_;
  if (options_.trace.inform_rounds) {
    result.vertex_inform_round = vertex_inform_round_;
    result.agent_inform_round = agent_inform_round_;
  }
  return result;
}

RunResult run_hybrid(const Graph& g, Vertex source, std::uint64_t seed,
                     WalkOptions options) {
  return HybridProcess(g, source, seed, options).run();
}

}  // namespace rumor

#include "core/hybrid.hpp"

#include "core/registry.hpp"
#include "core/sharding.hpp"
#include "graph/access.hpp"
#include "support/philox.hpp"
#include "support/thread_pool.hpp"
#include "walk/step_kernel.hpp"

namespace rumor {

HybridProcess::HybridProcess(const Graph& g, Vertex source,
                             std::uint64_t seed, WalkOptions options,
                             TrialArena* arena)
    : graph_(&g),
      rng_(seed),
      options_(options),
      laziness_(resolve_laziness(g, options.lazy)),
      cutoff_(options.max_rounds != 0 ? options.max_rounds
                                      : default_round_cutoff(g.num_vertices())),
      owned_arena_(arena != nullptr ? nullptr : std::make_unique<TrialArena>()),
      arena_(arena != nullptr ? arena : owned_arena_.get()),
      agents_(g, resolve_agent_count(g, options), options.placement, rng_,
              resolve_anchor(options, source), arena_) {
  RUMOR_REQUIRE(source < g.num_vertices());
  model_.bind(g, options_.transmission, *arena_, seed);
  // Sharded mode replaces the stepping engine wholesale (per-walker
  // addressable draws); the CLI rejects the incompatible combinations
  // with a message, these REQUIREs are the API-user backstop.
  sharded_ = sharding_enabled(options_.shards, g.num_vertices());
  if (sharded_) {
    RUMOR_REQUIRE(!options_.trace.edge_traffic);
    RUMOR_REQUIRE(options_.engine == StepEngine::batched);
    shard_width_ = resolve_shard_width(options_.shards);
    seed_ = seed;
  }
  target_ = g.num_vertices();
  const std::size_t count = agents_.count();
  arena_->vertex_inform_round.reset(g.num_vertices(), kNeverInformed);
  arena_->agent_inform_round.reset(count, kNeverInformed);
  arena_->informed_nbr_count.reset(g.num_vertices(), 0);
  arena_->vertex_marks.reset(g.num_vertices());  // ever-in-frontier marks
  order_.reset(*arena_, count);
  arena_->active.clear();
  arena_->active.reserve(g.num_vertices());  // high-water once, then free
  arena_->frontier.clear();
  arena_->frontier.reserve(g.num_vertices());
  if (options_.trace.informed_curve) arena_->curve.clear();

  inform_vertex(source);
  for (Agent a = 0; a < count; ++a) {
    if (agents_.position(a) == source) inform_agent_at(order_.index_of(a));
  }
  if (options_.trace.informed_curve) {
    arena_->curve.push_back(informed_vertex_count_);
  }
}

void HybridProcess::inform_vertex(Vertex v) {
  RUMOR_CHECK(!arena_->vertex_inform_round.touched(v));
  arena_->vertex_inform_round.set(v, static_cast<std::uint32_t>(round_));
  ++informed_vertex_count_;
  last_inform_round_ = round_;
  arena_->active.push_back(v);
  const std::uint32_t deg = graph_->degree_unchecked(v);
  for (std::uint32_t i = 0; i < deg; ++i) {
    const Vertex w = graph_->neighbor_unchecked(v, i);
    arena_->informed_nbr_count.add(w, 1);
    if (!arena_->vertex_inform_round.touched(w) &&
        !arena_->vertex_marks.contains(w)) {
      arena_->vertex_marks.insert(w);
      arena_->frontier.push_back(w);
    }
  }
}

void HybridProcess::inform_agent_at(std::size_t order_index) {
  RUMOR_CHECK(order_index >= informed_agent_count_);
  const Agent a = order_.at(order_index);
  RUMOR_CHECK(!arena_->agent_inform_round.touched(a));
  arena_->agent_inform_round.set(a, static_cast<std::uint32_t>(round_));
  order_.swap(order_index, informed_agent_count_);
  ++informed_agent_count_;
  last_inform_round_ = round_;
}

void HybridProcess::activate_blocking() {
  // Also feed the neighbor counters so the push-pull half's saturation
  // retirement treats quarantined-uninformed vertices as unreachable.
  const std::uint8_t* blocked = model_.blocked_flags();
  const Vertex n = graph_->num_vertices();
  for (Vertex v = 0; v < n; ++v) {
    if (blocked[v] != 0 && !arena_->vertex_inform_round.touched(v)) {
      const std::uint32_t deg = graph_->degree_unchecked(v);
      for (std::uint32_t i = 0; i < deg; ++i) {
        arena_->informed_nbr_count.add(graph_->neighbor_unchecked(v, i), 1);
      }
    }
  }
  target_ =
      n - model_.count_blocked_uninformed(arena_->vertex_inform_round, n);
}

void HybridProcess::step() {
  if (sharded_) {
    with_graph_access(*graph_, [&](const auto& acc) {
      if (model_.trivial()) {
        step_sharded<transmission::Uniform>(acc);
      } else {
        step_sharded<transmission::General>(acc);
      }
    });
  } else if (model_.trivial()) {
    step_impl<transmission::Uniform>();
  } else {
    step_impl<transmission::General>();
  }
}

template <class Mode>
void HybridProcess::step_impl() {
  constexpr bool kGeneral = std::is_same_v<Mode, transmission::General>;
  ++round_;
  if constexpr (kGeneral) {
    if (model_.blocking() && round_ == model_.block_round()) {
      activate_blocking();
    }
  }
  const std::size_t count = agents_.count();

  // (1) agents move (batched walk kernel).
  step_walks(*graph_, agents_.positions_mut(), rng_, laziness_, nullptr,
             options_.engine);

  // (2) previously informed agents inform their vertices (stifled agents
  // and quarantined vertices excepted).
  const std::size_t informed_agents_at_start = informed_agent_count_;
  for (std::size_t idx = 0; idx < informed_agents_at_start; ++idx) {
    const Agent a = order_.at(idx);
    const Vertex v = agents_.position(a);
    if (arena_->vertex_inform_round.touched(v)) continue;
    if constexpr (kGeneral) {
      if (!model_.can_transmit<Mode>(arena_->agent_inform_round.get(a), v,
                                     round_) ||
          !model_.attempt<Mode>(v, v)) {
        continue;
      }
    }
    inform_vertex(v);
  }

  // (3) push-pull calls on informed-before-round state (fast path: only
  // state-changing calls, exactly as in PushPullProcess).
  auto& active = arena_->active;
  auto& frontier = arena_->frontier;
  std::size_t kept = 0;
  for (Vertex v : active) {
    if (arena_->informed_nbr_count.get(v) < graph_->degree_unchecked(v)) {
      if constexpr (kGeneral) {
        if (!model_.can_transmit<Mode>(arena_->vertex_inform_round.get(v), v,
                                       round_)) {
          continue;
        }
      }
      active[kept++] = v;
    }
  }
  active.resize(kept);
  kept = 0;
  for (Vertex w : frontier) {
    if (!arena_->vertex_inform_round.touched(w)) {
      if constexpr (kGeneral) {
        if (model_.blocked<Mode>(w, round_)) continue;
      }
      frontier[kept++] = w;
    }
  }
  frontier.resize(kept);

  const std::size_t pushers = active.size();
  for (std::size_t i = 0; i < pushers; ++i) {
    const Vertex u = active[i];
    if (!informed_before_this_round(u)) continue;  // informed in step (2)
    const Vertex v = graph_->random_neighbor_unchecked(u, rng_);
    if constexpr (kGeneral) {
      if (model_.blocked<Mode>(v, round_) ||
          arena_->vertex_inform_round.touched(v) ||
          !model_.attempt<Mode>(u, v)) {
        continue;
      }
      inform_vertex(v);
    } else {
      if (!arena_->vertex_inform_round.touched(v)) inform_vertex(v);
    }
  }
  const std::size_t pullers = frontier.size();
  for (std::size_t i = 0; i < pullers; ++i) {
    const Vertex w = frontier[i];
    if (arena_->vertex_inform_round.touched(w)) continue;
    const Vertex v = graph_->random_neighbor_unchecked(w, rng_);
    if (!informed_before_this_round(v)) continue;
    if constexpr (kGeneral) {
      if (!model_.can_transmit<Mode>(arena_->vertex_inform_round.get(v), v,
                                     round_) ||
          !model_.attempt<Mode>(v, w)) {
        continue;
      }
    }
    inform_vertex(w);
  }

  // (4) agents standing on informed vertices become informed (unless the
  // vertex has stifled or is quarantined).
  for (std::size_t idx = informed_agents_at_start; idx < count; ++idx) {
    const Agent a = order_.at(idx);
    const Vertex v = agents_.position(a);
    if (!arena_->vertex_inform_round.touched(v)) continue;
    if constexpr (kGeneral) {
      if (!model_.can_transmit<Mode>(arena_->vertex_inform_round.get(v), v,
                                     round_) ||
          !model_.attempt<Mode>(v, v)) {
        continue;
      }
    }
    inform_agent_at(idx);
  }

  if (options_.trace.informed_curve) {
    arena_->curve.push_back(informed_vertex_count_);
  }
}

// One frontier-sharded round — law-equivalent to step_impl<Mode>. The
// dual phase composes the sharded walk kernel with the visit-exchange
// agent passes and the push-pull round structure behind pre-cleared
// fan-outs, preserving the legacy intra-round ordering:
//
//   (1) sharded walk step  (per-walker addressable draws)
//   (2) agent-inform pass  (kShardPhaseAgentInform; slot = order index)
//       -> serial merge informs vertices
//   (3) caller/puller filters on the POST-(2) lists, as the serial round
//       filters after the agent informs; pusher draws (kShardPhasePush;
//       slot = compacted caller index) skip vertices informed in (2) this
//       round BEFORE drawing, exactly like the serial
//       informed_before_this_round guard -> serial push merge; puller
//       draws (kShardPhasePull; slot = filtered frontier index) read the
//       post-push-merge state and skip "pushed now" -> serial pull merge
//   (4) agent-catch pass   (kShardPhaseAgentCatch; slot = order index) on
//       the post-(3) vertex state -> serial merge informs agents
//
// Every parallel slot draws from its own addressable chain, every shard
// writes only its own scratch segment, and each merge visits candidates
// in shard-major = global slot order, so the round is a pure function of
// the round-start state and the draw plane — independent of partition and
// worker count. As in sharded push, a slot whose target was claimed by an
// earlier slot still draws its words and is discarded at the merge:
// independent variates deciding nothing observable.
template <class Mode, class Access>
void HybridProcess::step_sharded(const Access& acc) {
  constexpr bool kGeneral = std::is_same_v<Mode, transmission::General>;
  ++round_;
  if constexpr (kGeneral) {
    if (model_.blocking() && round_ == model_.block_round()) {
      activate_blocking();
    }
  }
  const std::size_t count = agents_.count();

  // (1) agents move (sharded walk kernel).
  step_walks_sharded(*graph_, agents_.positions_mut(), seed_, round_,
                     laziness_, shard_width_);

  auto& scratch = arena_->shard_scratch;
  const std::uint32_t width = shard_width_;
  if (scratch.size() < width) scratch.resize(width);
  // Reserve the analytic per-shard bound (<= ceil(max(n, agents)/width)
  // items per range) once, so steady-state trials stay allocation-free.
  const std::size_t cap =
      std::max<std::size_t>(graph_->num_vertices(), count) / width + 1;
  for (std::uint32_t s = 0; s < width; ++s) {
    scratch[s].survivors.reserve(cap);
    scratch[s].candidates.reserve(cap);
  }
  const ShardPlane plane(seed_, round_);
  const std::size_t informed_agents_at_start = informed_agent_count_;

  // (2) agent-inform candidates: the vertex each previously-informed agent
  // delivers to (round-start vertex state). The clears run serially before
  // every fan-out: parallel_for_ranges clamps the shard count to the item
  // count, so a clear inside the callback would skip tail segments
  // whenever fewer items than width exist and leave stale entries.
  {
    const auto informed = arena_->vertex_inform_round.view();
    for (std::uint32_t s = 0; s < width; ++s) scratch[s].candidates.clear();
    shard_pool().parallel_for_ranges(
        informed_agents_at_start, width,
        [&](std::size_t s, std::size_t begin, std::size_t end) {
          auto& out = scratch[s].candidates;
          for (std::size_t idx = begin; idx < end; ++idx) {
            const Agent a = order_.at(idx);
            const Vertex v = agents_.position(a);
            if (informed.touched(v)) continue;
            if constexpr (kGeneral) {
              SlotDraws draws(plane, kShardPhaseAgentInform,
                              static_cast<std::uint32_t>(idx));
              if (!model_.can_transmit<Mode>(
                      arena_->agent_inform_round.get(a), v, round_) ||
                  !model_.attempt_from<Mode>(v, draws)) {
                continue;
              }
            }
            out.push_back(v);
          }
        });
    for (std::uint32_t s = 0; s < width; ++s) {
      for (const Vertex v : scratch[s].candidates) {
        if (!arena_->vertex_inform_round.touched(v)) inform_vertex(v);
      }
    }
  }

  // (3) push-pull calls, filters on the post-(2) lists exactly as the
  // serial round orders them.
  auto& active = arena_->active;
  auto& frontier = arena_->frontier;
  {
    const auto sat = arena_->informed_nbr_count.view();
    const auto informed = arena_->vertex_inform_round.view();

    for (std::uint32_t s = 0; s < width; ++s) scratch[s].survivors.clear();
    shard_pool().parallel_for_ranges(
        active.size(), width,
        [&](std::size_t s, std::size_t begin, std::size_t end) {
          auto& out = scratch[s].survivors;
          for (std::size_t i = begin; i < end; ++i) {
            const Vertex v = active[i];
            if (sat.get(v) >= acc.degree(v)) continue;
            if constexpr (kGeneral) {
              if (!model_.can_transmit<Mode>(informed.get(v), v, round_)) {
                continue;
              }
            }
            out.push_back(v);
          }
        });
    active.clear();
    for (std::uint32_t s = 0; s < width; ++s) {
      active.insert(active.end(), scratch[s].survivors.begin(),
                    scratch[s].survivors.end());
    }

    for (std::uint32_t s = 0; s < width; ++s) scratch[s].survivors.clear();
    shard_pool().parallel_for_ranges(
        frontier.size(), width,
        [&](std::size_t s, std::size_t begin, std::size_t end) {
          auto& out = scratch[s].survivors;
          for (std::size_t i = begin; i < end; ++i) {
            const Vertex w = frontier[i];
            if (informed.touched(w)) continue;
            if constexpr (kGeneral) {
              if (model_.blocked<Mode>(w, round_)) continue;
            }
            out.push_back(w);
          }
        });
    frontier.clear();
    for (std::uint32_t s = 0; s < width; ++s) {
      frontier.insert(frontier.end(), scratch[s].survivors.begin(),
                      scratch[s].survivors.end());
    }
    // The push merge's informs append NEW frontier vertices; as in the
    // serial round, those pull starting NEXT round.
    const std::size_t pullers = frontier.size();

    // Pusher phase: slot = compacted caller index. Vertices informed in
    // step (2) this round survive the filter but make no call yet — the
    // serial informed_before_this_round guard, applied before any draw.
    for (std::uint32_t s = 0; s < width; ++s) scratch[s].candidates.clear();
    shard_pool().parallel_for_ranges(
        active.size(), width,
        [&](std::size_t s, std::size_t begin, std::size_t end) {
          auto& out = scratch[s].candidates;
          for (std::size_t i = begin; i < end; ++i) {
            const Vertex u = active[i];
            if (!informed_before_this_round(u)) continue;
            SlotDraws draws(plane, kShardPhasePush,
                            static_cast<std::uint32_t>(i));
            const GraphRow row = acc.row(u);
            const Vertex v = acc.pick(row, word_below(draws, row.deg));
            if constexpr (kGeneral) {
              if (model_.blocked<Mode>(v, round_) || informed.touched(v)) {
                continue;
              }
              if (!model_.attempt_from<Mode>(v, draws)) continue;
            } else {
              if (informed.touched(v)) continue;
            }
            out.push_back(v);
          }
        });
    for (std::uint32_t s = 0; s < width; ++s) {
      for (const Vertex v : scratch[s].candidates) {
        if (!arena_->vertex_inform_round.touched(v)) inform_vertex(v);
      }
    }

    // Puller phase: slot = filtered frontier index; reads the post-push
    // state, as the serial pull loop does. Frontier entries are distinct
    // (ever-in-frontier marks), so candidate pullers never collide.
    for (std::uint32_t s = 0; s < width; ++s) scratch[s].candidates.clear();
    shard_pool().parallel_for_ranges(
        pullers, width,
        [&](std::size_t s, std::size_t begin, std::size_t end) {
          auto& out = scratch[s].candidates;
          for (std::size_t i = begin; i < end; ++i) {
            const Vertex w = frontier[i];
            if (arena_->vertex_inform_round.touched(w)) continue;  // pushed
            SlotDraws draws(plane, kShardPhasePull,
                            static_cast<std::uint32_t>(i));
            const GraphRow row = acc.row(w);
            const Vertex v = acc.pick(row, word_below(draws, row.deg));
            if (!informed_before_this_round(v)) continue;
            if constexpr (kGeneral) {
              if (!model_.can_transmit<Mode>(
                      arena_->vertex_inform_round.get(v), v, round_) ||
                  !model_.attempt_from<Mode>(v, draws)) {
                continue;
              }
            }
            out.push_back(w);
          }
        });
    for (std::uint32_t s = 0; s < width; ++s) {
      for (const Vertex w : scratch[s].candidates) {
        RUMOR_CHECK(!arena_->vertex_inform_round.touched(w));
        inform_vertex(w);
      }
    }
  }

  // (4) agent-catch candidates: order indices of uninformed agents on an
  // informed vertex (post-(3) state, like the serial loop). Candidates are
  // ascending distinct order indices, so the merge's inform_agent_at(idx)
  // calls keep the informed-prefix CHECK.
  for (std::uint32_t s = 0; s < width; ++s) scratch[s].candidates.clear();
  shard_pool().parallel_for_ranges(
      count - informed_agents_at_start, width,
      [&](std::size_t s, std::size_t begin, std::size_t end) {
        auto& out = scratch[s].candidates;
        for (std::size_t i = begin; i < end; ++i) {
          const std::size_t idx = informed_agents_at_start + i;
          const Agent a = order_.at(idx);
          const Vertex v = agents_.position(a);
          if (!arena_->vertex_inform_round.touched(v)) continue;
          if constexpr (kGeneral) {
            SlotDraws draws(plane, kShardPhaseAgentCatch,
                            static_cast<std::uint32_t>(idx));
            if (!model_.can_transmit<Mode>(
                    arena_->vertex_inform_round.get(v), v, round_) ||
                !model_.attempt_from<Mode>(v, draws)) {
              continue;
            }
          }
          out.push_back(static_cast<std::uint32_t>(idx));
        }
      });
  for (std::uint32_t s = 0; s < width; ++s) {
    for (const std::uint32_t idx : scratch[s].candidates) {
      inform_agent_at(idx);
    }
  }

  if (options_.trace.informed_curve) {
    arena_->curve.push_back(informed_vertex_count_);
  }
}

bool HybridProcess::halted() const {
  if (done() || round_ >= cutoff_) return true;
  if (model_.trivial()) return false;
  if (informed_vertex_count_ >= target_) return true;  // containment
  return model_.extinct(round_, last_inform_round_);
}

RunResult HybridProcess::run() {
  while (!halted()) step();
  RunResult result;
  result.rounds = round_;
  result.completed = done();
  result.agent_rounds = round_;
  result.informed = informed_vertex_count_;
  if (options_.trace.informed_curve) {
    result.informed_curve = arena_->curve;
    result.stifled_curve =
        derive_stifled_curve(result.informed_curve, model_.stifle());
  }
  if (options_.trace.inform_rounds) {
    result.vertex_inform_round = arena_->vertex_inform_round.to_vector();
    result.agent_inform_round = arena_->agent_inform_round.to_vector();
  }
  return result;
}

RunResult run_hybrid(const Graph& g, Vertex source, std::uint64_t seed,
                     WalkOptions options, TrialArena* arena) {
  return HybridProcess(g, source, seed, options, arena).run();
}

// ---- Scenario registry entry ------------------------------------------

namespace {

TrialResult hybrid_entry_run(const Graph& g, const ProtocolOptions& options,
                             Vertex source, std::uint64_t seed,
                             TrialArena* arena) {
  return to_trial_result(
      HybridProcess(g, source, seed, std::get<WalkOptions>(options), arena)
          .run());
}

}  // namespace

void register_hybrid_simulator(SimulatorRegistry& registry) {
  SimulatorEntry entry;
  entry.id = Protocol::hybrid;
  entry.name = "hybrid";
  entry.summary =
      "hybrid: push-pull and visit-exchange on shared informed-vertex state";
  entry.defaults = WalkOptions{};
  entry.run = hybrid_entry_run;
  // Shared sharded-walk hooks: the walk grammar plus the shards= key.
  entry.format_options = sharded_walk_entry_format;
  entry.set_option = sharded_walk_entry_set;
  entry.trace = walk_entry_trace;
  registry.add(std::move(entry));
}

}  // namespace rumor

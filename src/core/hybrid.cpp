#include "core/hybrid.hpp"

#include "core/registry.hpp"

#include "walk/step_kernel.hpp"

namespace rumor {

HybridProcess::HybridProcess(const Graph& g, Vertex source,
                             std::uint64_t seed, WalkOptions options,
                             TrialArena* arena)
    : graph_(&g),
      rng_(seed),
      options_(options),
      laziness_(resolve_laziness(g, options.lazy)),
      cutoff_(options.max_rounds != 0 ? options.max_rounds
                                      : default_round_cutoff(g.num_vertices())),
      owned_arena_(arena != nullptr ? nullptr : std::make_unique<TrialArena>()),
      arena_(arena != nullptr ? arena : owned_arena_.get()),
      agents_(g, resolve_agent_count(g, options), options.placement, rng_,
              resolve_anchor(options, source), arena_) {
  RUMOR_REQUIRE(source < g.num_vertices());
  model_.bind(g, options_.transmission, *arena_, seed);
  target_ = g.num_vertices();
  const std::size_t count = agents_.count();
  arena_->vertex_inform_round.reset(g.num_vertices(), kNeverInformed);
  arena_->agent_inform_round.reset(count, kNeverInformed);
  arena_->informed_nbr_count.reset(g.num_vertices(), 0);
  arena_->vertex_marks.reset(g.num_vertices());  // ever-in-frontier marks
  order_.reset(*arena_, count);
  arena_->active.clear();
  arena_->active.reserve(g.num_vertices());  // high-water once, then free
  arena_->frontier.clear();
  arena_->frontier.reserve(g.num_vertices());
  if (options_.trace.informed_curve) arena_->curve.clear();

  inform_vertex(source);
  for (Agent a = 0; a < count; ++a) {
    if (agents_.position(a) == source) inform_agent_at(order_.index_of(a));
  }
  if (options_.trace.informed_curve) {
    arena_->curve.push_back(informed_vertex_count_);
  }
}

void HybridProcess::inform_vertex(Vertex v) {
  RUMOR_CHECK(!arena_->vertex_inform_round.touched(v));
  arena_->vertex_inform_round.set(v, static_cast<std::uint32_t>(round_));
  ++informed_vertex_count_;
  last_inform_round_ = round_;
  arena_->active.push_back(v);
  const std::uint32_t deg = graph_->degree_unchecked(v);
  for (std::uint32_t i = 0; i < deg; ++i) {
    const Vertex w = graph_->neighbor_unchecked(v, i);
    arena_->informed_nbr_count.add(w, 1);
    if (!arena_->vertex_inform_round.touched(w) &&
        !arena_->vertex_marks.contains(w)) {
      arena_->vertex_marks.insert(w);
      arena_->frontier.push_back(w);
    }
  }
}

void HybridProcess::inform_agent_at(std::size_t order_index) {
  RUMOR_CHECK(order_index >= informed_agent_count_);
  const Agent a = order_.at(order_index);
  RUMOR_CHECK(!arena_->agent_inform_round.touched(a));
  arena_->agent_inform_round.set(a, static_cast<std::uint32_t>(round_));
  order_.swap(order_index, informed_agent_count_);
  ++informed_agent_count_;
  last_inform_round_ = round_;
}

void HybridProcess::activate_blocking() {
  // Also feed the neighbor counters so the push-pull half's saturation
  // retirement treats quarantined-uninformed vertices as unreachable.
  const std::uint8_t* blocked = model_.blocked_flags();
  const Vertex n = graph_->num_vertices();
  for (Vertex v = 0; v < n; ++v) {
    if (blocked[v] != 0 && !arena_->vertex_inform_round.touched(v)) {
      const std::uint32_t deg = graph_->degree_unchecked(v);
      for (std::uint32_t i = 0; i < deg; ++i) {
        arena_->informed_nbr_count.add(graph_->neighbor_unchecked(v, i), 1);
      }
    }
  }
  target_ =
      n - model_.count_blocked_uninformed(arena_->vertex_inform_round, n);
}

void HybridProcess::step() {
  if (model_.trivial()) {
    step_impl<transmission::Uniform>();
  } else {
    step_impl<transmission::General>();
  }
}

template <class Mode>
void HybridProcess::step_impl() {
  constexpr bool kGeneral = std::is_same_v<Mode, transmission::General>;
  ++round_;
  if constexpr (kGeneral) {
    if (model_.blocking() && round_ == model_.block_round()) {
      activate_blocking();
    }
  }
  const std::size_t count = agents_.count();

  // (1) agents move (batched walk kernel).
  step_walks(*graph_, agents_.positions_mut(), rng_, laziness_, nullptr,
             options_.engine);

  // (2) previously informed agents inform their vertices (stifled agents
  // and quarantined vertices excepted).
  const std::size_t informed_agents_at_start = informed_agent_count_;
  for (std::size_t idx = 0; idx < informed_agents_at_start; ++idx) {
    const Agent a = order_.at(idx);
    const Vertex v = agents_.position(a);
    if (arena_->vertex_inform_round.touched(v)) continue;
    if constexpr (kGeneral) {
      if (!model_.can_transmit<Mode>(arena_->agent_inform_round.get(a), v,
                                     round_) ||
          !model_.attempt<Mode>(v, v)) {
        continue;
      }
    }
    inform_vertex(v);
  }

  // (3) push-pull calls on informed-before-round state (fast path: only
  // state-changing calls, exactly as in PushPullProcess).
  auto& active = arena_->active;
  auto& frontier = arena_->frontier;
  std::size_t kept = 0;
  for (Vertex v : active) {
    if (arena_->informed_nbr_count.get(v) < graph_->degree_unchecked(v)) {
      if constexpr (kGeneral) {
        if (!model_.can_transmit<Mode>(arena_->vertex_inform_round.get(v), v,
                                       round_)) {
          continue;
        }
      }
      active[kept++] = v;
    }
  }
  active.resize(kept);
  kept = 0;
  for (Vertex w : frontier) {
    if (!arena_->vertex_inform_round.touched(w)) {
      if constexpr (kGeneral) {
        if (model_.blocked<Mode>(w, round_)) continue;
      }
      frontier[kept++] = w;
    }
  }
  frontier.resize(kept);

  const std::size_t pushers = active.size();
  for (std::size_t i = 0; i < pushers; ++i) {
    const Vertex u = active[i];
    if (!informed_before_this_round(u)) continue;  // informed in step (2)
    const Vertex v = graph_->random_neighbor_unchecked(u, rng_);
    if constexpr (kGeneral) {
      if (model_.blocked<Mode>(v, round_) ||
          arena_->vertex_inform_round.touched(v) ||
          !model_.attempt<Mode>(u, v)) {
        continue;
      }
      inform_vertex(v);
    } else {
      if (!arena_->vertex_inform_round.touched(v)) inform_vertex(v);
    }
  }
  const std::size_t pullers = frontier.size();
  for (std::size_t i = 0; i < pullers; ++i) {
    const Vertex w = frontier[i];
    if (arena_->vertex_inform_round.touched(w)) continue;
    const Vertex v = graph_->random_neighbor_unchecked(w, rng_);
    if (!informed_before_this_round(v)) continue;
    if constexpr (kGeneral) {
      if (!model_.can_transmit<Mode>(arena_->vertex_inform_round.get(v), v,
                                     round_) ||
          !model_.attempt<Mode>(v, w)) {
        continue;
      }
    }
    inform_vertex(w);
  }

  // (4) agents standing on informed vertices become informed (unless the
  // vertex has stifled or is quarantined).
  for (std::size_t idx = informed_agents_at_start; idx < count; ++idx) {
    const Agent a = order_.at(idx);
    const Vertex v = agents_.position(a);
    if (!arena_->vertex_inform_round.touched(v)) continue;
    if constexpr (kGeneral) {
      if (!model_.can_transmit<Mode>(arena_->vertex_inform_round.get(v), v,
                                     round_) ||
          !model_.attempt<Mode>(v, v)) {
        continue;
      }
    }
    inform_agent_at(idx);
  }

  if (options_.trace.informed_curve) {
    arena_->curve.push_back(informed_vertex_count_);
  }
}

bool HybridProcess::halted() const {
  if (done() || round_ >= cutoff_) return true;
  if (model_.trivial()) return false;
  if (informed_vertex_count_ >= target_) return true;  // containment
  return model_.extinct(round_, last_inform_round_);
}

RunResult HybridProcess::run() {
  while (!halted()) step();
  RunResult result;
  result.rounds = round_;
  result.completed = done();
  result.agent_rounds = round_;
  result.informed = informed_vertex_count_;
  if (options_.trace.informed_curve) {
    result.informed_curve = arena_->curve;
    result.stifled_curve =
        derive_stifled_curve(result.informed_curve, model_.stifle());
  }
  if (options_.trace.inform_rounds) {
    result.vertex_inform_round = arena_->vertex_inform_round.to_vector();
    result.agent_inform_round = arena_->agent_inform_round.to_vector();
  }
  return result;
}

RunResult run_hybrid(const Graph& g, Vertex source, std::uint64_t seed,
                     WalkOptions options, TrialArena* arena) {
  return HybridProcess(g, source, seed, options, arena).run();
}

// ---- Scenario registry entry ------------------------------------------

namespace {

TrialResult hybrid_entry_run(const Graph& g, const ProtocolOptions& options,
                             Vertex source, std::uint64_t seed,
                             TrialArena* arena) {
  return to_trial_result(
      HybridProcess(g, source, seed, std::get<WalkOptions>(options), arena)
          .run());
}

}  // namespace

void register_hybrid_simulator(SimulatorRegistry& registry) {
  SimulatorEntry entry;
  entry.id = Protocol::hybrid;
  entry.name = "hybrid";
  entry.summary =
      "hybrid: push-pull and visit-exchange on shared informed-vertex state";
  entry.defaults = WalkOptions{};
  entry.run = hybrid_entry_run;
  entry.format_options = walk_entry_format;
  entry.set_option = walk_entry_set;
  entry.trace = walk_entry_trace;
  registry.add(std::move(entry));
}

}  // namespace rumor

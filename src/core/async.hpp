// Asynchronous (sequential-activation) rumor spreading.
//
// In the asynchronous model each vertex holds an independent unit-rate
// Poisson clock (paper §2's related work: Sauerwald 2010; Giakkoupis,
// Nazari, Woelfel PODC 2016). By standard uniformization this is equivalent
// to a sequential process: at each tick a uniformly random vertex activates
// and performs its call, and n ticks make one time unit. Experiment E15
// compares sync vs async push-pull on regular graphs.
#pragma once

#include <cstdint>

#include "core/protocol.hpp"
#include "core/transmission.hpp"
#include "support/rng.hpp"
#include "support/trial_arena.hpp"

namespace rumor {

struct AsyncOptions {
  std::uint64_t max_ticks = 0;  // 0 = n * default_round_cutoff(n)
  bool pull_enabled = true;     // false = async push only
  // Only the probability half applies (the tick clock keeps no inform
  // ages, so intervention keys are rejected at the grammar level).
  TransmissionOptions transmission;

  friend bool operator==(const AsyncOptions&, const AsyncOptions&) = default;
};

struct AsyncResult {
  std::uint64_t ticks = 0;   // activations until completion (or cutoff)
  double time_units = 0.0;   // ticks / n, comparable to synchronous rounds
  std::uint32_t informed = 0;  // final informed-vertex count
  bool completed = false;
};

// Runs asynchronous push(-pull) from `source` to completion or cutoff. A
// non-null arena lends the informed-vertex marks (StampSet), making
// repeated trials allocation-free like the synchronous simulators.
[[nodiscard]] AsyncResult run_async_push_pull(const Graph& g, Vertex source,
                                              std::uint64_t seed,
                                              AsyncOptions options = {},
                                              TrialArena* arena = nullptr);

class SimulatorRegistry;
// Registers the asynchronous push-pull simulator (spec name "async").
void register_async_simulator(SimulatorRegistry& registry);

}  // namespace rumor

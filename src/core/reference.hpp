// Deliberately naive reference implementations of all four protocols.
//
// These transcribe Section 3 of the paper literally — every vertex/agent
// acts every round, state snapshots are full copies, placement uses CDF
// inversion instead of the alias method — with no optimizations at all.
// They exist purely as differential-test oracles for the production
// simulators (tests/test_core_differential.cpp): on small graphs, the
// optimized and reference processes must agree in distribution.
#pragma once

#include <cstdint>

#include "core/protocol.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"
#include "walk/agents.hpp"

namespace rumor {

[[nodiscard]] Round reference_push(const Graph& g, Vertex source, Rng& rng,
                                   Round cutoff);

[[nodiscard]] Round reference_push_pull(const Graph& g, Vertex source,
                                        Rng& rng, Round cutoff);

// Rounds until all vertices informed; agents placed from the stationary
// distribution by inverse-CDF sampling.
[[nodiscard]] Round reference_visit_exchange(const Graph& g, Vertex source,
                                             std::size_t agent_count,
                                             Laziness lazy, Rng& rng,
                                             Round cutoff);

// Rounds until all agents informed.
[[nodiscard]] Round reference_meet_exchange(const Graph& g, Vertex source,
                                            std::size_t agent_count,
                                            Laziness lazy, Rng& rng,
                                            Round cutoff);

}  // namespace rumor

// The protocol half of the unified scenario API.
//
// Every simulator in src/core/ is named by a `Protocol` tag and configured
// by its own option struct; `ProtocolSpec` folds the two into a tagged
// variant with a canonical text round-trip:
//
//   ProtocolSpec::parse("frog(frogs=2,lazy=half)")  ->  spec
//   spec.name()                                     ->  same string back
//
// parse/name and the per-protocol defaults are data held by the
// SimulatorRegistry (core/registry.hpp): protocols — including ones
// registered by downstream code — are reachable by name without a central
// switch. `default_spec(p).name()` is always the bare protocol name, so a
// scenario file mentions only what it overrides.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/async.hpp"
#include "core/dynamic_agents.hpp"
#include "core/frog.hpp"
#include "core/multi_rumor.hpp"
#include "core/push.hpp"
#include "core/push_pull.hpp"
#include "core/walk_options.hpp"

namespace rumor {

enum class Protocol {
  push,
  push_pull,
  visit_exchange,
  meet_exchange,
  hybrid,
  frog,
  dynamic_agent,
  multi_push_pull,
  multi_visit_exchange,
  async_push_pull,
};

// One alternative per option shape. visit-exchange, meet-exchange, and
// hybrid share WalkOptions (the Protocol tag distinguishes them).
using ProtocolOptions =
    std::variant<PushOptions, PushPullOptions, WalkOptions, FrogOptions,
                 DynamicAgentOptions, MultiRumorOptions, AsyncOptions>;

// Canonical spec name, e.g. "push-pull" (registry lookup).
[[nodiscard]] std::string protocol_name(Protocol p);

struct ProtocolSpec {
  Protocol protocol = Protocol::push;
  ProtocolOptions options = PushOptions{};

  // Canonical text form: the protocol name, plus a parenthesized
  // key=value list of exactly the options that differ from the protocol's
  // defaults. parse(name()) reproduces the spec bit-for-bit.
  [[nodiscard]] std::string name() const;
  static std::optional<ProtocolSpec> parse(std::string_view text,
                                           std::string* error = nullptr);

  // Typed option accessors; RUMOR_REQUIRE the matching alternative.
  [[nodiscard]] PushOptions& push();
  [[nodiscard]] const PushOptions& push() const;
  [[nodiscard]] PushPullOptions& push_pull();
  [[nodiscard]] const PushPullOptions& push_pull() const;
  // The WalkOptions of any agent-based alternative: WalkOptions itself,
  // DynamicAgentOptions::walk, or MultiRumorOptions::walk. walk() requires
  // one; walk_if() returns nullptr for the walk-free protocols.
  [[nodiscard]] WalkOptions& walk();
  [[nodiscard]] const WalkOptions& walk() const;
  [[nodiscard]] WalkOptions* walk_if();
  [[nodiscard]] const WalkOptions* walk_if() const;
  [[nodiscard]] FrogOptions& frog();
  [[nodiscard]] const FrogOptions& frog() const;
  [[nodiscard]] DynamicAgentOptions& dynamic_agent();
  [[nodiscard]] const DynamicAgentOptions& dynamic_agent() const;
  [[nodiscard]] MultiRumorOptions& multi();
  [[nodiscard]] const MultiRumorOptions& multi() const;
  [[nodiscard]] AsyncOptions& async();
  [[nodiscard]] const AsyncOptions& async() const;

  // The spec's TraceOptions, or nullptr for protocols without traces
  // (multi-rumor, async).
  [[nodiscard]] TraceOptions* trace();
  [[nodiscard]] const TraceOptions* trace() const;

  // The spec's shards= option for the simulators that honor the
  // frontier-sharded round engine (push, push-pull, visit-exchange,
  // meet-exchange, hybrid); 0 — i.e. "serial legacy" — for every other
  // protocol. Feeds the two-axis trial schedule (experiments/trials).
  [[nodiscard]] std::uint32_t shards() const;

  friend bool operator==(const ProtocolSpec&, const ProtocolSpec&) = default;
};

// The protocol's registered defaults (meet-exchange: the paper's
// LazyMode::auto_bipartite convention).
[[nodiscard]] ProtocolSpec default_spec(Protocol p);

// What one trial of any registered simulator reports: the broadcast time
// in rounds (time units for async), the all-agents milestone where the
// protocol has one, and the informed curve when the spec traces it. This
// is the distribution payload TrialSet aggregates.
struct TrialResult {
  double rounds = 0.0;
  // The all-agents milestone; mirrors RunResult::agent_rounds (equal to
  // rounds when the protocol has no separate milestone, 0 for multi-rumor
  // and async).
  double agent_rounds = 0.0;
  // Final informed-entity count (completed rumors for multi-rumor): the
  // containment measure under interventions.
  double informed = 0.0;
  bool completed = false;
  std::vector<std::uint32_t> informed_curve;  // filled iff traced
  // Filled iff traced AND the spec's transmission model stifles.
  std::vector<std::uint32_t> stifled_curve;
};

// Maps a stepwise simulator's RunResult onto the trial payload.
[[nodiscard]] TrialResult to_trial_result(RunResult&& r);

}  // namespace rumor

// The Section 6 coupling (push bounded below by visit-exchange).
//
// Here the shared choices are consumed on a parity schedule: push's i-th
// sample of u is w_u(i), while in visit-exchange only the agents making the
// i-th EVEN-round visit to an informed u follow w_u(i) at the next (odd)
// round; even-round moves are independent. The paper proves that under this
// coupling t'_u ≤ c·(τ_u + log n) w.h.p. for a constant c (Lemma 22), which
// experiment E14 and the property tests measure directly.
#pragma once

#include <cstdint>
#include <vector>

#include "core/coupling/shared_choices.hpp"
#include "core/protocol.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"
#include "walk/agents.hpp"

namespace rumor {

struct OddEvenOptions {
  double alpha = 1.0;
  std::size_t agent_count = 0;
  Placement placement = Placement::stationary;
  Round max_rounds = 0;
};

struct OddEvenResult {
  Round push_rounds = 0;
  Round visitx_rounds = 0;
  bool push_completed = false;
  bool visitx_completed = false;
  std::vector<std::uint32_t> push_inform_round;    // τ_u
  std::vector<std::uint32_t> visitx_inform_round;  // t'_u
  // max_u t'_u / (τ_u + ln n): the empirical constant of Lemma 22.
  double max_ratio = 0.0;
};

// Runs the coupled pair and reports both inform-time vectors.
[[nodiscard]] OddEvenResult run_odd_even_coupling(const Graph& g,
                                                  Vertex source,
                                                  std::uint64_t seed,
                                                  OddEvenOptions options = {});

}  // namespace rumor

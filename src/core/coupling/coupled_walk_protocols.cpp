#include "core/coupling/coupled_walk_protocols.hpp"

#include "graph/properties.hpp"

namespace rumor {

CoupledWalkProtocols::CoupledWalkProtocols(const Graph& g, Vertex source,
                                           std::uint64_t seed,
                                           WalkOptions options)
    : graph_(&g),
      rng_(seed),
      options_(options),
      laziness_(resolve_laziness(g, options.lazy)),
      cutoff_(options.max_rounds != 0 ? options.max_rounds
                                      : default_round_cutoff(g.num_vertices())),
      agents_(g, resolve_agent_count(g, options), options.placement, rng_,
              resolve_anchor(options, source)),
      source_(source),
      vertex_inform_round_(g.num_vertices(), kNeverInformed),
      visitx_informed_(agents_.count()),
      meetx_informed_(agents_.count()),
      meetx_informed_before_(agents_.count()),
      meetx_here_(g.num_vertices()),
      visitx_informed_before_(agents_.count()) {
  if (!options.transmission.trivial()) {
    throw CouplingOptionsError(
        "coupled walk protocols require trivial transmission (tp=1, no "
        "stifle/block): the shared-trajectory coupling of Theorem 23 has no "
        "per-protocol success draws to honor a contact rule with");
  }
  RUMOR_REQUIRE(source < g.num_vertices());

  // Round 0 for both protocols: agents standing on the source.
  vertex_inform_round_[source] = 0;
  visitx_informed_vertices_ = 1;
  for (Agent a = 0; a < agents_.count(); ++a) {
    if (agents_.position(a) == source) {
      visitx_informed_.set(a);
      ++visitx_informed_agents_;
      meetx_informed_.set(a);
      ++meetx_informed_count_;
    }
  }
  source_active_ = (meetx_informed_count_ == 0);
  if (visitx_vertices_done()) visitx_vertex_round_ = 0;
  if (visitx_agents_done()) visitx_agent_round_ = 0;
  if (meetx_done()) meetx_round_ = 0;
}

void CoupledWalkProtocols::step() {
  ++round_;
  const std::size_t count = agents_.count();

  // Shared movement: THE coupling — both protocols see these trajectories
  // (one batched kernel pass, so both views consume the same draws).
  step_walks(*graph_, agents_.positions_mut(), rng_, laziness_, nullptr,
             options_.engine);

  // Snapshots of "informed before this round".
  visitx_informed_before_ = visitx_informed_;
  meetx_informed_before_ = meetx_informed_;

  // --- visit-exchange phases ---
  for (Agent a = 0; a < count; ++a) {
    if (!visitx_informed_before_.test(a)) continue;
    const Vertex v = agents_.position(a);
    if (vertex_inform_round_[v] == kNeverInformed) {
      vertex_inform_round_[v] = static_cast<std::uint32_t>(round_);
      ++visitx_informed_vertices_;
    }
  }
  for (Agent a = 0; a < count; ++a) {
    if (visitx_informed_.test(a)) continue;
    if (vertex_inform_round_[agents_.position(a)] != kNeverInformed) {
      visitx_informed_.set(a);
      ++visitx_informed_agents_;
    }
  }

  // --- meet-exchange phases ---
  meetx_here_.advance();
  for (Agent a = 0; a < count; ++a) {
    if (meetx_informed_before_.test(a)) {
      meetx_here_.insert(agents_.position(a));
    }
  }
  bool source_met = false;
  for (Agent a = 0; a < count; ++a) {
    if (meetx_informed_.test(a)) continue;
    const Vertex v = agents_.position(a);
    if (meetx_here_.contains(v)) {
      meetx_informed_.set(a);
      ++meetx_informed_count_;
    } else if (source_active_ && v == source_) {
      meetx_informed_.set(a);
      ++meetx_informed_count_;
      source_met = true;
    }
  }
  if (source_met) source_active_ = false;

  if (visitx_vertices_done() && visitx_vertex_round_ == kNoRoundYet) {
    visitx_vertex_round_ = round_;
  }
  if (visitx_agents_done() && visitx_agent_round_ == kNoRoundYet) {
    visitx_agent_round_ = round_;
  }
  if (meetx_done() && meetx_round_ == kNoRoundYet) meetx_round_ = round_;
}

CoupledWalkResult CoupledWalkProtocols::run() {
  bool subset_ok = meetx_subset_of_visitx();
  while ((!meetx_done() || !visitx_vertices_done()) && round_ < cutoff_) {
    step();
    subset_ok = subset_ok && meetx_subset_of_visitx();
  }
  CoupledWalkResult result;
  result.meetx_completed = meetx_done();
  result.visitx_completed = visitx_vertices_done();
  result.meetx_rounds = meetx_round_ != kNoRoundYet ? meetx_round_ : round_;
  result.visitx_agent_rounds =
      visitx_agent_round_ != kNoRoundYet ? visitx_agent_round_ : round_;
  result.visitx_vertex_rounds =
      visitx_vertex_round_ != kNoRoundYet ? visitx_vertex_round_ : round_;
  result.subset_invariant_held = subset_ok;
  return result;
}

CoupledWalkResult run_coupled_walk_protocols(const Graph& g, Vertex source,
                                             std::uint64_t seed,
                                             WalkOptions options) {
  return CoupledWalkProtocols(g, source, seed, options).run();
}

}  // namespace rumor

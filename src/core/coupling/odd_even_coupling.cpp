#include "core/coupling/odd_even_coupling.hpp"

#include "core/walk_options.hpp"

#include <algorithm>
#include <cmath>

namespace rumor {

OddEvenResult run_odd_even_coupling(const Graph& g, Vertex source,
                                    std::uint64_t seed,
                                    OddEvenOptions options) {
  RUMOR_REQUIRE(source < g.num_vertices());
  const Vertex n = g.num_vertices();
  const Round cutoff = options.max_rounds != 0 ? options.max_rounds
                                               : default_round_cutoff(n);
  SharedChoices choices(g, derive_seed(seed, 1));
  Rng rng(derive_seed(seed, 0));
  OddEvenResult result;

  // --- coupled push: u's i-th sample is w_u(i) --------------------------
  {
    std::vector<std::uint32_t> inform_round(n, kNeverInformed);
    std::vector<std::uint32_t> informed_nbr(n, 0);
    std::vector<std::uint32_t> next_index(n, 0);
    std::vector<Vertex> active;
    std::uint32_t informed = 0;
    Round round = 0;
    auto inform = [&](Vertex v) {
      inform_round[v] = static_cast<std::uint32_t>(round);
      ++informed;
      active.push_back(v);
      const std::uint32_t dv = g.degree(v);
      for (std::uint32_t i = 0; i < dv; ++i) ++informed_nbr[g.neighbor(v, i)];
    };
    inform(source);
    while (informed < n && round < cutoff) {
      ++round;
      std::size_t kept = 0;
      for (Vertex v : active) {
        if (informed_nbr[v] < g.degree(v)) active[kept++] = v;
      }
      active.resize(kept);
      const std::size_t callers = active.size();
      for (std::size_t i = 0; i < callers; ++i) {
        const Vertex u = active[i];
        const Vertex v = choices.get(u, ++next_index[u]);
        if (inform_round[v] == kNeverInformed) inform(v);
      }
    }
    result.push_rounds = round;
    result.push_completed = (informed == n);
    result.push_inform_round = std::move(inform_round);
  }

  // --- coupled visit-exchange: agents visiting an informed u in an even
  // round follow w_u(i) at the next odd round ----------------------------
  {
    const std::size_t agent_count =
        resolve_agent_count(n, options.agent_count, options.alpha);
    AgentSystem agents(g, agent_count, options.placement, rng, source);
    std::vector<std::uint32_t> inform_round(n, kNeverInformed);
    std::vector<std::uint32_t> even_rank(n, 0);
    std::vector<std::uint8_t> agent_informed(agent_count, 0);
    std::uint32_t informed_vertices = 1;
    Round round = 0;

    inform_round[source] = 0;
    for (Agent a = 0; a < agent_count; ++a) {
      if (agents.position(a) == source) agent_informed[a] = 1;
    }

    std::vector<std::uint8_t> informed_before(agent_count);
    while (informed_vertices < n && round < cutoff) {
      ++round;
      const bool odd_round = (round % 2 == 1);
      // Departures at an odd round t+1 leave positions occupied at the even
      // round t: those from informed vertices follow the shared choices.
      for (Agent a = 0; a < agent_count; ++a) {
        const Vertex u = agents.position(a);
        Vertex dest;
        if (odd_round && inform_round[u] != kNeverInformed) {
          dest = choices.get(u, ++even_rank[u]);
        } else {
          dest = g.random_neighbor(u, rng);
        }
        agents.set_position(a, dest);
      }
      // Standard visit-exchange exchange phases.
      std::copy(agent_informed.begin(), agent_informed.end(),
                informed_before.begin());
      for (Agent a = 0; a < agent_count; ++a) {
        if (!informed_before[a]) continue;
        const Vertex v = agents.position(a);
        if (inform_round[v] == kNeverInformed) {
          inform_round[v] = static_cast<std::uint32_t>(round);
          ++informed_vertices;
        }
      }
      for (Agent a = 0; a < agent_count; ++a) {
        if (agent_informed[a]) continue;
        if (inform_round[agents.position(a)] != kNeverInformed) {
          agent_informed[a] = 1;
        }
      }
    }
    result.visitx_rounds = round;
    result.visitx_completed = (informed_vertices == n);
    result.visitx_inform_round = std::move(inform_round);
  }

  // Empirical Lemma 22 constant.
  if (result.push_completed && result.visitx_completed) {
    const double log_n = std::log(static_cast<double>(n));
    for (Vertex u = 0; u < n; ++u) {
      const double ratio =
          static_cast<double>(result.visitx_inform_round[u]) /
          (static_cast<double>(result.push_inform_round[u]) + log_n);
      result.max_ratio = std::max(result.max_ratio, ratio);
    }
  }
  return result;
}

}  // namespace rumor

#include "core/coupling/shared_choices.hpp"

namespace rumor {

SharedChoices::SharedChoices(const Graph& g, std::uint64_t seed)
    : graph_(&g), rng_(seed), lists_(g.num_vertices()) {}

Vertex SharedChoices::get(Vertex u, std::size_t i) {
  RUMOR_REQUIRE(u < graph_->num_vertices());
  RUMOR_REQUIRE(i >= 1);
  auto& list = lists_[u];
  while (list.size() < i) {
    list.push_back(graph_->random_neighbor(u, rng_));
  }
  return list[i - 1];
}

}  // namespace rumor

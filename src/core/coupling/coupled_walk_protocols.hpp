// The Theorem 23 "natural coupling": visit-exchange and meet-exchange
// driven by the SAME walk trajectories.
//
// One agent population moves once per round; both protocol state machines
// observe the identical movement. Under this coupling the paper notes it is
// immediate that meet-exchange-informed agents are always a subset of
// visit-exchange-informed agents, hence R_visitx (all agents informed in
// visit-exchange) ≤ T_meetx. The subset relation is exposed per round so
// the property tests can check it after every step.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/walk_options.hpp"
#include "graph/graph.hpp"
#include "support/bitset.hpp"
#include "support/rng.hpp"
#include "support/stamp_set.hpp"
#include "walk/agents.hpp"

namespace rumor {

// Thrown when coupling machinery is handed options it cannot honor. The
// Theorem 23 subset argument leans on every contact succeeding: under
// heterogeneous transmission or interventions the two protocol views would
// need their OWN success draws, which breaks the shared-randomness coupling
// (and would silently void the invariant the property tests check). Typed
// so option-validation failures are distinguishable from trial failures at
// the experiment boundary.
class CouplingOptionsError : public std::invalid_argument {
 public:
  explicit CouplingOptionsError(const std::string& message)
      : std::invalid_argument(message) {}
};

struct CoupledWalkResult {
  Round meetx_rounds = 0;         // T_meetx
  Round visitx_agent_rounds = 0;  // R_visitx: all agents informed in visitx
  Round visitx_vertex_rounds = 0;  // T_visitx
  bool meetx_completed = false;
  bool visitx_completed = false;
  bool subset_invariant_held = false;  // meetx-informed ⊆ visitx-informed
                                       // after every round
};

class CoupledWalkProtocols {
 public:
  // Throws CouplingOptionsError if options.transmission is non-trivial
  // (tp < 1, degree-scaled, stifling, or blocking) — the coupling argument
  // only holds for always-successful homogeneous transmission.
  CoupledWalkProtocols(const Graph& g, Vertex source, std::uint64_t seed,
                       WalkOptions options = {});

  void step();

  [[nodiscard]] Round round() const { return round_; }
  [[nodiscard]] bool meetx_done() const {
    return meetx_informed_count_ == agents_.count();
  }
  [[nodiscard]] bool visitx_vertices_done() const {
    return visitx_informed_vertices_ == graph_->num_vertices();
  }
  [[nodiscard]] bool visitx_agents_done() const {
    return visitx_informed_agents_ == agents_.count();
  }
  // The coupling invariant, checkable after any round.
  [[nodiscard]] bool meetx_subset_of_visitx() const {
    return meetx_informed_.is_subset_of(visitx_informed_);
  }
  [[nodiscard]] const DynamicBitset& meetx_informed() const {
    return meetx_informed_;
  }
  [[nodiscard]] const DynamicBitset& visitx_informed() const {
    return visitx_informed_;
  }

  // Runs until both protocols complete (or cutoff); verifies the subset
  // invariant after every round.
  [[nodiscard]] CoupledWalkResult run();

 private:
  const Graph* graph_;
  Rng rng_;
  WalkOptions options_;
  Laziness laziness_;
  Round round_ = 0;
  Round cutoff_;
  AgentSystem agents_;
  Vertex source_;
  bool source_active_ = false;
  // visit-exchange state
  std::vector<std::uint32_t> vertex_inform_round_;
  DynamicBitset visitx_informed_;  // agents
  std::uint32_t visitx_informed_vertices_ = 0;
  std::size_t visitx_informed_agents_ = 0;
  Round visitx_vertex_round_ = kNoRoundYet;
  Round visitx_agent_round_ = kNoRoundYet;
  // meet-exchange state
  DynamicBitset meetx_informed_;  // agents
  DynamicBitset meetx_informed_before_;
  std::size_t meetx_informed_count_ = 0;
  Round meetx_round_ = kNoRoundYet;
  StampSet meetx_here_;
  DynamicBitset visitx_informed_before_;
};

[[nodiscard]] CoupledWalkResult run_coupled_walk_protocols(
    const Graph& g, Vertex source, std::uint64_t seed,
    WalkOptions options = {});

}  // namespace rumor

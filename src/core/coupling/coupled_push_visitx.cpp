#include "core/coupling/coupled_push_visitx.hpp"

#include "core/walk_options.hpp"

#include <algorithm>

namespace rumor {

CoupledPushVisitx::CoupledPushVisitx(const Graph& g, Vertex source,
                                     std::uint64_t seed,
                                     CoupledOptions options)
    : graph_(&g),
      source_(source),
      rng_(derive_seed(seed, 0)),
      options_(options),
      cutoff_(options.max_rounds != 0 ? options.max_rounds
                                      : default_round_cutoff(g.num_vertices())),
      choices_(g, derive_seed(seed, 1)) {
  RUMOR_REQUIRE(source < g.num_vertices());
}

CoupledResult CoupledPushVisitx::run() {
  run_visitx();
  if (result_.visitx_completed) run_push();

  result_.lemma13_holds = result_.push_completed && result_.visitx_completed;
  if (result_.lemma13_holds) {
    for (Vertex u = 0; u < graph_->num_vertices(); ++u) {
      if (result_.push_inform_round[u] == kNeverInformed ||
          result_.push_inform_round[u] > result_.ccounter_at_inform[u]) {
        result_.lemma13_holds = false;
        break;
      }
    }
  }
  return result_;
}

void CoupledPushVisitx::run_visitx() {
  const Graph& g = *graph_;
  const Vertex n = g.num_vertices();
  const std::size_t agent_count =
      resolve_agent_count(n, options_.agent_count, options_.alpha);
  AgentSystem agents(g, agent_count, options_.placement, rng_, source_);

  std::vector<std::uint32_t> inform_round(n, kNeverInformed);
  std::vector<std::uint32_t> rank_next(n, 0);  // consumed shared choices
  std::vector<std::uint64_t> c_val(n, 0);
  std::vector<std::uint64_t> c_at_inform(n, 0);
  std::vector<Vertex> parent(n, kNoVertex);
  std::vector<Vertex> prev_pos(agent_count);
  std::vector<Agent> order(agent_count);
  std::vector<std::uint32_t> index_of(agent_count);
  for (Agent a = 0; a < agent_count; ++a) {
    order[a] = a;
    index_of[a] = a;
  }
  std::size_t informed_agents = 0;
  std::uint32_t informed_vertices = 0;
  Round round = 0;

  auto inform_agent_at = [&](std::size_t order_index) {
    RUMOR_CHECK(order_index >= informed_agents);
    const Agent a = order[order_index];
    const auto dest = static_cast<std::uint32_t>(informed_agents);
    const Agent other = order[dest];
    order[dest] = a;
    order[order_index] = other;
    index_of[a] = dest;
    index_of[other] = static_cast<std::uint32_t>(order_index);
    ++informed_agents;
  };

  auto end_of_round = [&] {
    // C_u(t+1) = C_u(t) + |Z_u(t)| for informed u: one increment per agent
    // standing on an informed vertex.
    for (Agent a = 0; a < agent_count; ++a) {
      const Vertex v = agents.position(a);
      if (inform_round[v] != kNeverInformed) ++c_val[v];
    }
    if (options_.record_occupancy_history) {
      occupancy_history_.push_back(agents.occupancy());
      ccounter_history_.push_back(c_val);
    }
  };

  // Round 0: source informed; agents on the source informed.
  inform_round[source_] = 0;
  informed_vertices = 1;
  c_at_inform[source_] = 0;
  for (Agent a = 0; a < agent_count; ++a) {
    if (agents.position(a) == source_) inform_agent_at(index_of[a]);
  }
  end_of_round();

  std::vector<Vertex> newly_informed;
  while (informed_vertices < n && round < cutoff_) {
    ++round;

    // Movement: departures from informed vertices follow the shared
    // choices, in ascending agent id (the canonical visit order).
    for (Agent a = 0; a < agent_count; ++a) {
      const Vertex u = agents.position(a);
      prev_pos[a] = u;
      Vertex dest;
      if (inform_round[u] != kNeverInformed) {
        dest = choices_.get(u, ++rank_next[u]);
      } else {
        dest = g.random_neighbor(u, rng_);
      }
      agents.set_position(a, dest);
    }

    // Phase A: previously informed agents inform their vertex; maintain the
    // C-counter initialization C_u(t_u) = min_{v in S_u} C_v(t_u).
    const std::size_t informed_at_start = informed_agents;
    newly_informed.clear();
    for (std::size_t idx = 0; idx < informed_at_start; ++idx) {
      const Agent a = order[idx];
      const Vertex u = agents.position(a);
      const Vertex v = prev_pos[a];
      RUMOR_CHECK(inform_round[v] != kNeverInformed);  // informed agents
                                                       // stand on informed
                                                       // vertices
      if (inform_round[u] == kNeverInformed) {
        inform_round[u] = static_cast<std::uint32_t>(round);
        ++informed_vertices;
        c_val[u] = c_val[v];
        parent[u] = v;
        newly_informed.push_back(u);
      } else if (inform_round[u] == round && c_val[v] < c_val[u]) {
        c_val[u] = c_val[v];  // tighter member of S_u
        parent[u] = v;
      }
    }
    for (Vertex u : newly_informed) c_at_inform[u] = c_val[u];

    // Phase B: uninformed agents standing on informed vertices.
    for (std::size_t idx = informed_at_start; idx < agent_count; ++idx) {
      const Agent a = order[idx];
      if (inform_round[agents.position(a)] != kNeverInformed) {
        inform_agent_at(idx);
      }
    }

    end_of_round();
  }

  result_.visitx_rounds = round;
  result_.visitx_completed = (informed_vertices == n);
  result_.visitx_inform_round = std::move(inform_round);
  result_.ccounter_at_inform = std::move(c_at_inform);
  result_.parent = std::move(parent);
  result_.max_ccounter = 0;
  if (result_.visitx_completed) {
    result_.max_ccounter = *std::max_element(
        result_.ccounter_at_inform.begin(), result_.ccounter_at_inform.end());
  }
}

void CoupledPushVisitx::run_push() {
  const Graph& g = *graph_;
  const Vertex n = g.num_vertices();
  // Lemma 13 bounds every τ_u by C_u(t_u), so the coupled push must finish
  // within max_ccounter rounds; the +2 slack means a violation surfaces as
  // push_completed == false instead of an infinite loop.
  const Round push_cutoff = result_.max_ccounter + 2;

  std::vector<std::uint32_t> inform_round(n, kNeverInformed);
  std::vector<std::uint32_t> informed_nbr(n, 0);
  std::vector<std::uint32_t> next_index(n, 0);
  std::vector<Vertex> active;
  std::uint32_t informed = 0;
  Round round = 0;

  auto inform = [&](Vertex v) {
    inform_round[v] = static_cast<std::uint32_t>(round);
    ++informed;
    active.push_back(v);
    const std::uint32_t dv = g.degree(v);
    for (std::uint32_t i = 0; i < dv; ++i) ++informed_nbr[g.neighbor(v, i)];
  };

  inform(source_);
  while (informed < n && round < push_cutoff) {
    ++round;
    std::size_t kept = 0;
    for (Vertex v : active) {
      if (informed_nbr[v] < g.degree(v)) active[kept++] = v;
    }
    active.resize(kept);
    const std::size_t callers = active.size();
    for (std::size_t i = 0; i < callers; ++i) {
      const Vertex u = active[i];
      const Vertex v = choices_.get(u, ++next_index[u]);
      if (inform_round[v] == kNeverInformed) inform(v);
    }
  }

  result_.push_rounds = round;
  result_.push_completed = (informed == n);
  result_.push_inform_round = std::move(inform_round);
}

std::uint64_t CoupledPushVisitx::ccounter_at(Vertex u, Round t) const {
  RUMOR_REQUIRE(options_.record_occupancy_history);
  RUMOR_REQUIRE(u < graph_->num_vertices());
  const std::uint32_t t_u = result_.visitx_inform_round[u];
  RUMOR_REQUIRE(t_u != kNeverInformed);
  if (t < t_u) return 0;
  if (t == t_u) return result_.ccounter_at_inform[u];
  // ccounter_history_[r][u] holds the counter after round r's end-of-round
  // increment, which by eq. (4) is C_u(r+1).
  RUMOR_REQUIRE(t - 1 < ccounter_history_.size());
  return ccounter_history_[t - 1][u];
}

}  // namespace rumor

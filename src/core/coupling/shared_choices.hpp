// SharedChoices: the coupling randomness of Sections 5 and 6.
//
// The paper couples push with visit-exchange through one collection
// {w_u(i)} of independent uniform neighbor choices per vertex: push uses
// w_u(i) as the i-th neighbor u samples after being informed, and
// visit-exchange uses it as the destination of the agent making the i-th
// (even-round, for Section 6) visit to u after u is informed. Both coupled
// simulators read from one SharedChoices instance; lists are materialized
// lazily, so the object is exactly "the same randomness, consumed twice".
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace rumor {

class SharedChoices {
 public:
  SharedChoices(const Graph& g, std::uint64_t seed);

  // w_u(i), 1-indexed as in the paper. Draws and caches every choice of u
  // up to i on first access.
  [[nodiscard]] Vertex get(Vertex u, std::size_t i);

  // Number of choices materialized for u so far (test introspection).
  [[nodiscard]] std::size_t materialized(Vertex u) const {
    return lists_[u].size();
  }

 private:
  const Graph* graph_;
  Rng rng_;
  std::vector<std::vector<Vertex>> lists_;
};

}  // namespace rumor

// The Section 5 coupling of push and visit-exchange, executable.
//
// One SharedChoices collection {w_u(i)} drives both processes:
//  * visit-exchange: the agent making the i-th visit to u at a round
//    >= t_u (u's inform round) moves next to w_u(i). Visits are ordered by
//    (round, agent id) exactly as in the paper. Moves out of uninformed
//    vertices use independent randomness.
//  * push: vertex u's i-th sample after its inform round τ_u is w_u(i).
//
// Alongside the coupled visit-exchange we maintain the C-counters of
// eq. (4): C_u is initialized when u is informed to min_{v∈S_u} C_v(t_u)
// (S_u = informed neighbors that delivered an agent to u at t_u) and then
// grows by |Z_u(t-1)| each round. The paper proves two a.s. invariants
// under this coupling, both of which the tests check on every run:
//   Lemma 13:  τ_u ≤ C_u(t_u)            (push is at most the C-counter)
//   Lemma 14:  C_u(t) equals the congestion Q(θ) of the canonical walk
//              reconstructed through the parent pointers.
#pragma once

#include <cstdint>
#include <vector>

#include "core/coupling/shared_choices.hpp"
#include "core/protocol.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"
#include "walk/agents.hpp"

namespace rumor {

struct CoupledOptions {
  double alpha = 1.0;
  std::size_t agent_count = 0;  // 0 = round(alpha * n)
  Placement placement = Placement::stationary;
  Round max_rounds = 0;  // 0 = default_round_cutoff(n)
  // Stores per-round occupancy vectors so tests can evaluate canonical-walk
  // congestion directly (memory Θ(n · rounds): small graphs only).
  bool record_occupancy_history = false;
};

struct CoupledResult {
  Round visitx_rounds = 0;  // T_visitx
  Round push_rounds = 0;    // T_push under the shared randomness
  bool visitx_completed = false;
  bool push_completed = false;
  bool lemma13_holds = false;  // ∀u: τ_u ≤ C_u(t_u)
  std::uint64_t max_ccounter = 0;  // max_u C_u(t_u)

  std::vector<std::uint32_t> visitx_inform_round;  // t_u
  std::vector<std::uint32_t> push_inform_round;    // τ_u
  std::vector<std::uint64_t> ccounter_at_inform;   // C_u(t_u)
  std::vector<Vertex> parent;  // argmin neighbor at inform time (s: none)
};

class CoupledPushVisitx {
 public:
  CoupledPushVisitx(const Graph& g, Vertex source, std::uint64_t seed,
                    CoupledOptions options = {});

  // Runs the coupled visit-exchange to completion, then replays the coupled
  // push from the same shared choices.
  [[nodiscard]] CoupledResult run();

  // Z_v(t) for the finished run; valid when record_occupancy_history.
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>&
  occupancy_history() const {
    return occupancy_history_;
  }

  // C_u(t) evaluated from the stored per-round counter trajectory; valid
  // when record_occupancy_history. t must be >= t_u and <= final round.
  [[nodiscard]] std::uint64_t ccounter_at(Vertex u, Round t) const;

  [[nodiscard]] const Graph& graph() const { return *graph_; }
  [[nodiscard]] Vertex source() const { return source_; }

 private:
  void run_visitx();
  void run_push();

  const Graph* graph_;
  Vertex source_;
  Rng rng_;
  CoupledOptions options_;
  Round cutoff_;
  SharedChoices choices_;
  CoupledResult result_;
  std::vector<std::vector<std::uint32_t>> occupancy_history_;
  // ccounter_history_[t][u] = C_u(t+1)'s base, i.e. counter value after the
  // end-of-round-t increment; see ccounter_at().
  std::vector<std::vector<std::uint64_t>> ccounter_history_;
};

}  // namespace rumor

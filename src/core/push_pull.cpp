#include "core/push_pull.hpp"

#include "core/registry.hpp"
#include "core/sharding.hpp"
#include "graph/access.hpp"
#include "support/philox.hpp"
#include "support/spec_text.hpp"
#include "support/thread_pool.hpp"
#include "walk/step_kernel.hpp"  // word_below: the shared Lemire slot draw

namespace rumor {

PushPullProcess::PushPullProcess(const Graph& g, Vertex source,
                                 std::uint64_t seed, PushPullOptions options,
                                 TrialArena* arena)
    : graph_(&g),
      rng_(seed),
      options_(options),
      cutoff_(options.max_rounds != 0 ? options.max_rounds
                                      : default_round_cutoff(g.num_vertices())),
      owned_arena_(arena != nullptr ? nullptr : std::make_unique<TrialArena>()),
      arena_(arena != nullptr ? arena : owned_arena_.get()) {
  RUMOR_REQUIRE(source < g.num_vertices());
  RUMOR_REQUIRE(options.loss_probability >= 0.0 &&
                options.loss_probability < 1.0);
  model_.bind(g, options_.transmission, *arena_, seed,
              /*need_edge_field=*/options_.trace.edge_traffic);
  // The sharded engine covers the untraced fast path only: the
  // exact-bandwidth traced round is defined by one serial call per vertex.
  // The CLI rejects shards x edge_traffic with a message; this REQUIRE is
  // the API-user backstop.
  sharded_ = sharding_enabled(options_.shards, g.num_vertices());
  if (sharded_) {
    RUMOR_REQUIRE(!options_.trace.edge_traffic);
    shard_width_ = resolve_shard_width(options_.shards);
    seed_ = seed;
  }
  target_ = g.num_vertices();
  arena_->vertex_inform_round.reset(g.num_vertices(), kNeverInformed);
  arena_->informed_nbr_count.reset(g.num_vertices(), 0);
  arena_->vertex_marks.reset(g.num_vertices());  // ever-in-frontier marks
  arena_->active.clear();
  arena_->active.reserve(g.num_vertices());  // high-water once, then free
  arena_->frontier.clear();
  arena_->frontier.reserve(g.num_vertices());
  if (options_.trace.informed_curve) arena_->curve.clear();
  if (options_.trace.edge_traffic) {
    // The exact-bandwidth path makes every vertex call a neighbor each
    // round; validated once here so the unchecked per-round loop needs no
    // per-vertex degree branch.
    RUMOR_REQUIRE(g.min_degree() > 0);
    arena_->edge_traffic.assign(g.num_edges(), 0);
  }
  inform(source);
  if (options_.trace.informed_curve) arena_->curve.push_back(informed_count_);
}

void PushPullProcess::inform(Vertex v) {
  RUMOR_CHECK(!arena_->vertex_inform_round.touched(v));
  arena_->vertex_inform_round.set(v, static_cast<std::uint32_t>(round_));
  ++informed_count_;
  last_inform_round_ = round_;
  arena_->active.push_back(v);
  const std::uint32_t deg = graph_->degree_unchecked(v);
  for (std::uint32_t i = 0; i < deg; ++i) {
    const Vertex w = graph_->neighbor_unchecked(v, i);
    arena_->informed_nbr_count.add(w, 1);
    if (!arena_->vertex_inform_round.touched(w) &&
        !arena_->vertex_marks.contains(w)) {
      arena_->vertex_marks.insert(w);
      arena_->frontier.push_back(w);
    }
  }
}

void PushPullProcess::step() {
  if (sharded_) {
    with_graph_access(*graph_, [&](const auto& acc) {
      if (model_.trivial()) {
        step_sharded<transmission::Uniform>(acc);
      } else {
        step_sharded<transmission::General>(acc);
      }
    });
  } else if (model_.trivial()) {
    step_impl<transmission::Uniform>();
  } else {
    step_impl<transmission::General>();
  }
}

void PushPullProcess::activate_blocking() {
  // As in PushProcess: quarantined-uninformed vertices count into the
  // neighbor counters so saturation retirement treats them as permanently
  // unreachable, and an empty caller list halts the run.
  const std::uint8_t* blocked = model_.blocked_flags();
  const Vertex n = graph_->num_vertices();
  for (Vertex v = 0; v < n; ++v) {
    if (blocked[v] != 0 && !arena_->vertex_inform_round.touched(v)) {
      const std::uint32_t deg = graph_->degree_unchecked(v);
      for (std::uint32_t i = 0; i < deg; ++i) {
        arena_->informed_nbr_count.add(graph_->neighbor_unchecked(v, i), 1);
      }
    }
  }
  target_ =
      n - model_.count_blocked_uninformed(arena_->vertex_inform_round, n);
}

template <class Mode>
void PushPullProcess::step_impl() {
  constexpr bool kGeneral = std::is_same_v<Mode, transmission::General>;
  ++round_;
  if constexpr (kGeneral) {
    if (model_.blocking() && round_ == model_.block_round()) {
      activate_blocking();
    }
  }

  if (options_.trace.edge_traffic) {
    // Exact-bandwidth path: every vertex makes its call (the definition) so
    // per-edge utilization counts every call, not only state-changing ones.
    // Used by the fairness experiments; O(n) per round. Quarantined callers
    // initiate no call at all; calls TO a quarantined callee still count as
    // traffic but deliver nothing.
    const Vertex n = graph_->num_vertices();
    for (Vertex u = 0; u < n; ++u) {
      if constexpr (kGeneral) {
        if (model_.blocked<Mode>(u, round_)) continue;
      }
      const auto [v, slot] = graph_->random_neighbor_slot_unchecked(u, rng_);
      ++arena_->edge_traffic[graph_->edge_id_unchecked(u, slot)];
      if (options_.loss_probability > 0.0 &&
          rng_.chance(options_.loss_probability)) {
        continue;
      }
      const bool u_was = informed_before_this_round(u);
      const bool v_was = informed_before_this_round(v);
      if (u_was == v_was) continue;
      const Vertex target = u_was ? v : u;
      if (arena_->vertex_inform_round.touched(target)) continue;
      if constexpr (kGeneral) {
        const Vertex transmitter = u_was ? u : v;
        if (!model_.can_transmit<Mode>(
                arena_->vertex_inform_round.get(transmitter), transmitter,
                round_) ||
            model_.blocked<Mode>(target, round_)) {
          continue;
        }
        // The callee-side delivery reads the per-edge field through the
        // caller's slot; the pull direction reads the per-vertex field.
        const bool delivered =
            target == v ? model_.attempt_slot<Mode>(u, slot)
                        : model_.attempt<Mode>(v, u);
        if (!delivered) continue;
      }
      inform(target);
    }
  } else {
    // Fast path: iterate exactly the calls that can change state. Stifled
    // and quarantined pushers retire like saturated ones (both conditions
    // are permanent); quarantined frontier vertices can never be informed
    // and drop out the same way.
    auto& active = arena_->active;
    auto& frontier = arena_->frontier;
    std::size_t kept = 0;
    for (Vertex v : active) {
      if (arena_->informed_nbr_count.get(v) < graph_->degree_unchecked(v)) {
        if constexpr (kGeneral) {
          if (!model_.can_transmit<Mode>(arena_->vertex_inform_round.get(v),
                                         v, round_)) {
            continue;
          }
        }
        active[kept++] = v;
      }
    }
    active.resize(kept);
    kept = 0;
    for (Vertex w : frontier) {
      if (!arena_->vertex_inform_round.touched(w)) {
        if constexpr (kGeneral) {
          if (model_.blocked<Mode>(w, round_)) continue;
        }
        frontier[kept++] = w;
      }
    }
    frontier.resize(kept);

    const std::size_t pushers = active.size();
    const std::size_t pullers = frontier.size();

    for (std::size_t i = 0; i < pushers; ++i) {
      const Vertex u = active[i];
      const Vertex v = graph_->random_neighbor_unchecked(u, rng_);
      if (options_.loss_probability > 0.0 &&
          rng_.chance(options_.loss_probability)) {
        continue;
      }
      if constexpr (kGeneral) {
        if (model_.blocked<Mode>(v, round_) ||
            arena_->vertex_inform_round.touched(v) ||
            !model_.attempt<Mode>(u, v)) {
          continue;
        }
        inform(v);
      } else {
        if (!arena_->vertex_inform_round.touched(v)) inform(v);
      }
    }
    for (std::size_t i = 0; i < pullers; ++i) {
      const Vertex w = frontier[i];
      if (arena_->vertex_inform_round.touched(w)) continue;  // pushed now
      const Vertex v = graph_->random_neighbor_unchecked(w, rng_);
      if (options_.loss_probability > 0.0 &&
          rng_.chance(options_.loss_probability)) {
        continue;
      }
      if (!informed_before_this_round(v)) continue;
      if constexpr (kGeneral) {
        if (!model_.can_transmit<Mode>(arena_->vertex_inform_round.get(v), v,
                                       round_) ||
            !model_.attempt<Mode>(v, w)) {
          continue;
        }
      }
      inform(w);
    }
  }

  if (options_.trace.informed_curve) arena_->curve.push_back(informed_count_);
}

// One frontier-sharded round — law-equivalent to the untraced fast path of
// step_impl<Mode>. Structure (P = parallel over balanced ranges on the
// ambient shard pool, S = serial):
//
//   P filter callers (round-start state)     -> S ordered concat
//   P filter pullers (round-start state)     -> S ordered concat
//   P pusher draws   (round-start state)     -> S push merge (informs)
//   P puller draws   (post-push-merge state) -> S pull merge (informs)
//
// Every parallel slot draws from its own addressable chain (phase
// separates pushers from pullers), every shard writes only its own scratch
// segment, and each merge visits candidates in shard-major = global slot
// order, so the whole round is a pure function of the round-start state
// and the draw plane — independent of partition and worker count. The
// puller phase reading post-push state mirrors the serial ordering (pulls
// run after pushes and skip vertices "pushed now"); it is deterministic
// because the push merge it reads is itself partition-independent. As in
// sharded push, a slot whose target was claimed earlier in slot order
// still draws its words and is discarded at the merge — independent
// variates that decide nothing observable, so the process law matches.
template <class Mode, class Access>
void PushPullProcess::step_sharded(const Access& acc) {
  constexpr bool kGeneral = std::is_same_v<Mode, transmission::General>;
  ++round_;
  if constexpr (kGeneral) {
    if (model_.blocking() && round_ == model_.block_round()) {
      activate_blocking();
    }
  }

  auto& active = arena_->active;
  auto& frontier = arena_->frontier;
  auto& scratch = arena_->shard_scratch;
  const std::uint32_t width = shard_width_;
  if (scratch.size() < width) scratch.resize(width);
  // Reserve the analytic per-shard bound (<= ceil(n/width) items per
  // range; ~n total) once, so steady-state trials stay allocation-free
  // instead of reallocating at each trial's random high-water mark.
  const std::size_t cap = graph_->num_vertices() / width + 1;
  for (std::uint32_t s = 0; s < width; ++s) {
    scratch[s].survivors.reserve(cap);
    scratch[s].candidates.reserve(cap);
  }

  const auto sat = arena_->informed_nbr_count.view();
  const auto informed = arena_->vertex_inform_round.view();

  // Caller filter (the serial retirement sweep, shard-concatenated). Every
  // pass clears ALL width segments serially up front: parallel_for_ranges
  // clamps the shard count to the item count, so a clear inside the
  // callback would skip the tail segments whenever the list is shorter
  // than the width and leave stale entries for the concat/merge.
  for (std::uint32_t s = 0; s < width; ++s) scratch[s].survivors.clear();
  shard_pool().parallel_for_ranges(
      active.size(), width,
      [&](std::size_t s, std::size_t begin, std::size_t end) {
        auto& out = scratch[s].survivors;
        for (std::size_t i = begin; i < end; ++i) {
          const Vertex v = active[i];
          if (sat.get(v) >= acc.degree(v)) continue;
          if constexpr (kGeneral) {
            if (!model_.can_transmit<Mode>(informed.get(v), v, round_)) {
              continue;
            }
          }
          out.push_back(v);
        }
      });
  active.clear();
  for (std::uint32_t s = 0; s < width; ++s) {
    active.insert(active.end(), scratch[s].survivors.begin(),
                  scratch[s].survivors.end());
  }

  // Puller filter: still round-start state (runs before any inform).
  for (std::uint32_t s = 0; s < width; ++s) scratch[s].survivors.clear();
  shard_pool().parallel_for_ranges(
      frontier.size(), width,
      [&](std::size_t s, std::size_t begin, std::size_t end) {
        auto& out = scratch[s].survivors;
        for (std::size_t i = begin; i < end; ++i) {
          const Vertex w = frontier[i];
          if (informed.touched(w)) continue;
          if constexpr (kGeneral) {
            if (model_.blocked<Mode>(w, round_)) continue;
          }
          out.push_back(w);
        }
      });
  frontier.clear();
  for (std::uint32_t s = 0; s < width; ++s) {
    frontier.insert(frontier.end(), scratch[s].survivors.begin(),
                    scratch[s].survivors.end());
  }
  // The push merge's informs append NEW frontier vertices; as in the
  // serial round, those pull starting NEXT round.
  const std::size_t pullers = frontier.size();

  const ShardPlane plane(seed_, round_);
  const double loss = options_.loss_probability;

  // Pusher phase: slot = compacted caller index.
  for (std::uint32_t s = 0; s < width; ++s) scratch[s].candidates.clear();
  shard_pool().parallel_for_ranges(
      active.size(), width,
      [&](std::size_t s, std::size_t begin, std::size_t end) {
        auto& out = scratch[s].candidates;
        for (std::size_t i = begin; i < end; ++i) {
          const Vertex u = active[i];
          SlotDraws draws(plane, kShardPhasePush,
                          static_cast<std::uint32_t>(i));
          const GraphRow row = acc.row(u);
          const Vertex v = acc.pick(row, word_below(draws, row.deg));
          if (loss > 0.0 && draws.next_unit_double() < loss) continue;
          if constexpr (kGeneral) {
            if (model_.blocked<Mode>(v, round_) || informed.touched(v)) {
              continue;
            }
            if (!model_.attempt_from<Mode>(v, draws)) continue;
          } else {
            if (informed.touched(v)) continue;
          }
          out.push_back(v);
        }
      });
  for (std::uint32_t s = 0; s < width; ++s) {
    for (const Vertex v : scratch[s].candidates) {
      if (!arena_->vertex_inform_round.touched(v)) inform(v);
    }
  }

  // Puller phase: slot = filtered frontier index; reads the post-push
  // state, as the serial pull loop does. Frontier entries are distinct
  // (ever-in-frontier marks), so candidate pullers never collide; a puller
  // informed by a push THIS round is skipped exactly like serial "pushed
  // now". A vertex informed this round (r == round_) is not a valid pull
  // source in either engine (informed_before_this_round).
  for (std::uint32_t s = 0; s < width; ++s) scratch[s].candidates.clear();
  shard_pool().parallel_for_ranges(
      pullers, width, [&](std::size_t s, std::size_t begin, std::size_t end) {
        auto& out = scratch[s].candidates;
        for (std::size_t i = begin; i < end; ++i) {
          const Vertex w = frontier[i];
          if (arena_->vertex_inform_round.touched(w)) continue;  // pushed now
          SlotDraws draws(plane, kShardPhasePull,
                          static_cast<std::uint32_t>(i));
          const GraphRow row = acc.row(w);
          const Vertex v = acc.pick(row, word_below(draws, row.deg));
          if (loss > 0.0 && draws.next_unit_double() < loss) continue;
          if (!informed_before_this_round(v)) continue;
          if constexpr (kGeneral) {
            if (!model_.can_transmit<Mode>(
                    arena_->vertex_inform_round.get(v), v, round_) ||
                !model_.attempt_from<Mode>(v, draws)) {
              continue;
            }
          }
          out.push_back(w);
        }
      });
  for (std::uint32_t s = 0; s < width; ++s) {
    for (const Vertex w : scratch[s].candidates) {
      RUMOR_CHECK(!arena_->vertex_inform_round.touched(w));
      inform(w);
    }
  }

  if (options_.trace.informed_curve) arena_->curve.push_back(informed_count_);
}

bool PushPullProcess::halted() const {
  if (done() || round_ >= cutoff_) return true;
  if (model_.trivial()) return false;
  if (informed_count_ >= target_) return true;  // blocking containment
  // No active transmitters: pushes are gone, and a successful pull would
  // need an informed, transmitting vertex with an uninformed unblocked
  // neighbor — which is exactly a vertex the caller filter would have
  // kept. (Only meaningful on the untraced fast path, where the filter
  // runs; the exact-bandwidth path iterates all vertices regardless.)
  if (!options_.trace.edge_traffic && round_ > 0 && arena_->active.empty()) {
    return true;
  }
  return model_.extinct(round_, last_inform_round_);
}

RunResult PushPullProcess::run() {
  while (!halted()) step();
  RunResult result;
  result.rounds = round_;
  result.completed = done();
  result.agent_rounds = round_;
  result.informed = informed_count_;
  if (options_.trace.informed_curve) {
    result.informed_curve = arena_->curve;
    result.stifled_curve =
        derive_stifled_curve(result.informed_curve, model_.stifle());
  }
  if (options_.trace.inform_rounds) {
    result.vertex_inform_round = arena_->vertex_inform_round.to_vector();
  }
  if (options_.trace.edge_traffic) result.edge_traffic = arena_->edge_traffic;
  return result;
}

RunResult run_push_pull(const Graph& g, Vertex source, std::uint64_t seed,
                        PushPullOptions options) {
  return PushPullProcess(g, source, seed, options).run();
}

// ---- Scenario registry entry ------------------------------------------

namespace {

TrialResult push_pull_entry_run(const Graph& g, const ProtocolOptions& options,
                                Vertex source, std::uint64_t seed,
                                TrialArena* arena) {
  return to_trial_result(
      PushPullProcess(g, source, seed, std::get<PushPullOptions>(options),
                      arena)
          .run());
}

void push_pull_entry_format(const ProtocolOptions& options,
                            const ProtocolOptions& defaults,
                            spec_text::KeyValWriter& out) {
  const auto& opt = std::get<PushPullOptions>(options);
  const auto& def = std::get<PushPullOptions>(defaults);
  if (opt.loss_probability != def.loss_probability) {
    out.add("loss", opt.loss_probability);
  }
  if (opt.max_rounds != def.max_rounds) {
    out.add("max_rounds", static_cast<std::uint64_t>(opt.max_rounds));
  }
  format_shards_option(opt.shards, def.shards, out);
  format_transmission_options(opt.transmission, def.transmission, out);
  format_trace_options(opt.trace, def.trace, out);
}

bool push_pull_entry_set(ProtocolOptions& options, std::string_view key,
                         std::string_view value) {
  auto& opt = std::get<PushPullOptions>(options);
  if (key == "loss") {
    const auto v = spec_text::parse_double(value);
    if (!v || !(*v >= 0.0 && *v < 1.0)) return false;  // NaN-proof
    opt.loss_probability = *v;
    return true;
  }
  if (key == "max_rounds") {
    const auto v = spec_text::parse_u64(value);
    if (!v) return false;
    opt.max_rounds = *v;
    return true;
  }
  if (key == "shards") return set_shards_option(opt.shards, value);
  if (set_transmission_option(opt.transmission, key, value)) return true;
  return set_trace_option(opt.trace, key, value);
}

TraceOptions* push_pull_entry_trace(ProtocolOptions& options) {
  return &std::get<PushPullOptions>(options).trace;
}

}  // namespace

void register_push_pull_simulator(SimulatorRegistry& registry) {
  SimulatorEntry entry;
  entry.id = Protocol::push_pull;
  entry.name = "push-pull";
  entry.summary = "PUSH-PULL: every vertex calls; informed pairs exchange";
  entry.defaults = PushPullOptions{};
  entry.run = push_pull_entry_run;
  entry.format_options = push_pull_entry_format;
  entry.set_option = push_pull_entry_set;
  entry.trace = push_pull_entry_trace;
  registry.add(std::move(entry));
}

}  // namespace rumor

#include "core/push_pull.hpp"

namespace rumor {

PushPullProcess::PushPullProcess(const Graph& g, Vertex source,
                                 std::uint64_t seed, PushPullOptions options)
    : graph_(&g),
      rng_(seed),
      options_(options),
      cutoff_(options.max_rounds != 0 ? options.max_rounds
                                      : default_round_cutoff(g.num_vertices())),
      inform_round_(g.num_vertices(), kNeverInformed),
      informed_nbr_count_(g.num_vertices(), 0),
      in_frontier_(g.num_vertices(), 0) {
  RUMOR_REQUIRE(source < g.num_vertices());
  RUMOR_REQUIRE(options.loss_probability >= 0.0 &&
                options.loss_probability < 1.0);
  if (options_.trace.edge_traffic) {
    edge_traffic_.assign(g.num_edges(), 0);
  }
  inform(source);
  if (options_.trace.informed_curve) curve_.push_back(informed_count_);
}

void PushPullProcess::inform(Vertex v) {
  RUMOR_CHECK(inform_round_[v] == kNeverInformed);
  inform_round_[v] = static_cast<std::uint32_t>(round_);
  ++informed_count_;
  active_.push_back(v);
  for (Vertex w : graph_->neighbors(v)) {
    ++informed_nbr_count_[w];
    if (inform_round_[w] == kNeverInformed && !in_frontier_[w]) {
      in_frontier_[w] = 1;
      frontier_.push_back(w);
    }
  }
}

void PushPullProcess::step() {
  ++round_;

  if (options_.trace.edge_traffic) {
    // Exact-bandwidth path: every vertex makes its call (the definition) so
    // per-edge utilization counts every call, not only state-changing ones.
    // Used by the fairness experiments; O(n) per round.
    const Vertex n = graph_->num_vertices();
    for (Vertex u = 0; u < n; ++u) {
      const auto [v, slot] = graph_->random_neighbor_slot(u, rng_);
      ++edge_traffic_[graph_->edge_id(u, slot)];
      if (options_.loss_probability > 0.0 &&
          rng_.chance(options_.loss_probability)) {
        continue;
      }
      const bool u_was = informed_before_this_round(u);
      const bool v_was = informed_before_this_round(v);
      if (u_was == v_was) continue;
      const Vertex target = u_was ? v : u;
      if (inform_round_[target] == kNeverInformed) inform(target);
    }
  } else {
    // Fast path: iterate exactly the calls that can change state.
    std::size_t kept = 0;
    for (Vertex v : active_) {
      if (informed_nbr_count_[v] < graph_->degree(v)) active_[kept++] = v;
    }
    active_.resize(kept);
    kept = 0;
    for (Vertex w : frontier_) {
      if (inform_round_[w] == kNeverInformed) frontier_[kept++] = w;
    }
    frontier_.resize(kept);

    const std::size_t pushers = active_.size();
    const std::size_t pullers = frontier_.size();

    for (std::size_t i = 0; i < pushers; ++i) {
      const Vertex u = active_[i];
      const Vertex v = graph_->random_neighbor(u, rng_);
      if (options_.loss_probability > 0.0 &&
          rng_.chance(options_.loss_probability)) {
        continue;
      }
      if (inform_round_[v] == kNeverInformed) inform(v);
    }
    for (std::size_t i = 0; i < pullers; ++i) {
      const Vertex w = frontier_[i];
      if (inform_round_[w] != kNeverInformed) continue;  // pushed this round
      const Vertex v = graph_->random_neighbor(w, rng_);
      if (options_.loss_probability > 0.0 &&
          rng_.chance(options_.loss_probability)) {
        continue;
      }
      if (informed_before_this_round(v)) inform(w);
    }
  }

  if (options_.trace.informed_curve) curve_.push_back(informed_count_);
}

RunResult PushPullProcess::run() {
  while (!done() && round_ < cutoff_) step();
  RunResult result;
  result.rounds = round_;
  result.completed = done();
  result.agent_rounds = round_;
  if (options_.trace.informed_curve) result.informed_curve = curve_;
  if (options_.trace.inform_rounds) result.vertex_inform_round = inform_round_;
  if (options_.trace.edge_traffic) result.edge_traffic = edge_traffic_;
  return result;
}

RunResult run_push_pull(const Graph& g, Vertex source, std::uint64_t seed,
                        PushPullOptions options) {
  return PushPullProcess(g, source, seed, options).run();
}

}  // namespace rumor

// Dynamic-agent visit-exchange: the paper's §9 fault-tolerance sketch.
//
// "...the protocols could tolerate some number of lost agents, if a dynamic
//  set of agents were used, where agents age with time and die, while new
//  agents are born at a proportional rate."
//
// Model: each round, every agent independently dies with probability
// `churn`; a replacement is immediately born, uninformed, at a vertex drawn
// from the stationary distribution (population stays |A|, which matches the
// birth-rate-proportional-to-death-rate regime). A one-shot bulk loss
// (fraction `loss_fraction` killed without replacement at round
// `loss_round`) models a correlated failure; lost slots stay dead.
// Broadcast semantics are visit-exchange's (vertices store the rumor, so
// agent churn delays but does not destroy progress).
//
// Requires a graph with at least one edge: the degree-weighted stationary
// distribution that places and respawns agents is degenerate (all-zero
// weights) on an edgeless graph. Scratch state lives in a TrialArena for
// allocation-free repeated trials.
#pragma once

#include <cstdint>
#include <memory>

#include "core/walk_options.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"
#include "support/trial_arena.hpp"
#include "walk/agents.hpp"

namespace rumor {

class AliasSampler;

struct DynamicAgentOptions {
  WalkOptions walk;
  double churn = 0.0;  // per-agent per-round death+rebirth probability
  // Optional one-shot correlated failure.
  Round loss_round = kNoRoundYet;
  double loss_fraction = 0.0;

  friend bool operator==(const DynamicAgentOptions&,
                         const DynamicAgentOptions&) = default;
};

class SimulatorRegistry;
// Registers the dynamic-agent simulator (spec name "dynamic-agent").
void register_dynamic_agent_simulator(SimulatorRegistry& registry);

class DynamicVisitExchangeProcess {
 public:
  DynamicVisitExchangeProcess(const Graph& g, Vertex source,
                              std::uint64_t seed,
                              DynamicAgentOptions options = {},
                              TrialArena* arena = nullptr);

  void step();

  [[nodiscard]] bool done() const {
    return informed_vertex_count_ == graph_->num_vertices();
  }
  [[nodiscard]] Round round() const { return round_; }
  [[nodiscard]] std::uint32_t informed_vertex_count() const {
    return informed_vertex_count_;
  }
  [[nodiscard]] std::size_t alive_agent_count() const { return alive_count_; }
  [[nodiscard]] std::size_t informed_agent_count() const {
    return informed_agent_count_;
  }
  [[nodiscard]] const Graph& graph() const { return *graph_; }

  [[nodiscard]] RunResult run();

 private:
  void respawn(Agent a);
  void kill(Agent a);
  template <class Mode>
  void step_impl();
  void activate_blocking();
  [[nodiscard]] bool halted() const;

  const Graph* graph_;
  Rng rng_;
  DynamicAgentOptions options_;
  TransmissionModel model_;
  Round round_ = 0;
  Round cutoff_;
  std::uint32_t target_ = 0;  // blocking containment target (vertices)
  Round last_inform_round_ = 0;
  std::unique_ptr<TrialArena> owned_arena_;
  TrialArena* arena_;
  AgentSystem agents_;
  // Respawn sampler: the arena-cached stationary alias table (keepalive
  // owns it when no arena was lent).
  std::shared_ptr<AliasSampler> sampler_keepalive_;
  const AliasSampler* stationary_;
  std::uint32_t informed_vertex_count_ = 0;
  std::size_t informed_agent_count_ = 0;  // informed AND alive
  std::size_t alive_count_ = 0;
  // Per-agent inform round (kNeverInformed when uninformed) and liveness
  // live in the arena ("informed before round t" is inform_round < t, which
  // is what the churn logic resets); born-this-round marks use the arena's
  // agent StampSet, advanced once per round.
};

[[nodiscard]] RunResult run_dynamic_visit_exchange(
    const Graph& g, Vertex source, std::uint64_t seed,
    DynamicAgentOptions options = {}, TrialArena* arena = nullptr);

}  // namespace rumor

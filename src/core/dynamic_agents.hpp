// Dynamic-agent visit-exchange: the paper's §9 fault-tolerance sketch.
//
// "...the protocols could tolerate some number of lost agents, if a dynamic
//  set of agents were used, where agents age with time and die, while new
//  agents are born at a proportional rate."
//
// Model: each round, every agent independently dies with probability
// `churn`; a replacement is immediately born, uninformed, at a vertex drawn
// from the stationary distribution (population stays |A|, which matches the
// birth-rate-proportional-to-death-rate regime). A one-shot bulk loss
// (fraction `loss_fraction` killed without replacement at round
// `loss_round`) models a correlated failure; lost slots stay dead.
// Broadcast semantics are visit-exchange's (vertices store the rumor, so
// agent churn delays but does not destroy progress).
#pragma once

#include <cstdint>
#include <optional>

#include "core/walk_options.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"
#include "walk/agents.hpp"
#include "walk/alias.hpp"

namespace rumor {

struct DynamicAgentOptions {
  WalkOptions walk;
  double churn = 0.0;  // per-agent per-round death+rebirth probability
  // Optional one-shot correlated failure.
  Round loss_round = kNoRoundYet;
  double loss_fraction = 0.0;
};

class DynamicVisitExchangeProcess {
 public:
  DynamicVisitExchangeProcess(const Graph& g, Vertex source,
                              std::uint64_t seed,
                              DynamicAgentOptions options = {});

  void step();

  [[nodiscard]] bool done() const {
    return informed_vertex_count_ == graph_->num_vertices();
  }
  [[nodiscard]] Round round() const { return round_; }
  [[nodiscard]] std::uint32_t informed_vertex_count() const {
    return informed_vertex_count_;
  }
  [[nodiscard]] std::size_t alive_agent_count() const { return alive_count_; }
  [[nodiscard]] std::size_t informed_agent_count() const {
    return informed_agent_count_;
  }
  [[nodiscard]] const Graph& graph() const { return *graph_; }

  [[nodiscard]] RunResult run();

 private:
  void respawn(Agent a);
  void kill(Agent a);

  const Graph* graph_;
  Rng rng_;
  DynamicAgentOptions options_;
  Round round_ = 0;
  Round cutoff_;
  AgentSystem agents_;
  AliasSampler stationary_;
  std::uint32_t informed_vertex_count_ = 0;
  std::size_t informed_agent_count_ = 0;  // informed AND alive
  std::size_t alive_count_ = 0;
  std::vector<std::uint32_t> vertex_inform_round_;
  // Per-agent inform round (kNeverInformed when uninformed); "informed
  // before round t" is the natural comparison inform_round < t, which is
  // what the churn logic resets.
  std::vector<std::uint32_t> agent_inform_round_;
  std::vector<std::uint8_t> agent_alive_;
  std::vector<std::uint32_t> curve_;
};

[[nodiscard]] RunResult run_dynamic_visit_exchange(
    const Graph& g, Vertex source, std::uint64_t seed,
    DynamicAgentOptions options = {});

}  // namespace rumor

#include "core/sharding.hpp"

#include <algorithm>

#include "support/spec_text.hpp"
#include "support/thread_pool.hpp"

namespace rumor {

std::uint32_t resolve_shard_width(std::uint32_t shards_option) {
  if (shards_option == kShardsAuto) {
    return static_cast<std::uint32_t>(
        std::max<std::size_t>(1, shard_pool().worker_count()));
  }
  return std::max<std::uint32_t>(1, shards_option);
}

bool set_shards_option(std::uint32_t& field, std::string_view value) {
  if (value == "auto") {
    field = kShardsAuto;
    return true;
  }
  const auto v = spec_text::parse_u64(value);
  if (!v || *v == 0 || *v >= kShardsAuto) return false;
  field = static_cast<std::uint32_t>(*v);
  return true;
}

void format_shards_option(std::uint32_t shards, std::uint32_t defaults,
                          spec_text::KeyValWriter& out) {
  if (shards == defaults) return;
  if (shards == kShardsAuto) {
    out.add("shards", std::string_view{"auto"});
  } else {
    out.add("shards", static_cast<std::uint64_t>(shards));
  }
}

}  // namespace rumor

#include "core/transmission.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>

#include "support/spec_text.hpp"

namespace rumor {

namespace {

// Parses a `tp=` value: a plain probability in (0, 1] or the degree-scaled
// form `deg^<exponent>` (exponent a finite double in [-8, 8] — enough for
// every published degree-scaling law, small enough that pow stays finite).
bool parse_tp_value(TransmissionOptions& options, std::string_view value) {
  constexpr std::string_view kDegPrefix = "deg^";
  if (value.starts_with(kDegPrefix)) {
    const auto e = spec_text::parse_double(value.substr(kDegPrefix.size()));
    if (!e || !(*e >= -8.0 && *e <= 8.0)) return false;  // NaN-proof
    options.degree_scaled = true;
    options.tp_exponent = *e;
    options.tp = 1.0;
    return true;
  }
  const auto v = spec_text::parse_double(value);
  if (!v || !(*v > 0.0 && *v <= 1.0)) return false;  // NaN-proof
  options.degree_scaled = false;
  options.tp_exponent = 0.0;
  options.tp = *v;
  return true;
}

std::string format_tp_value(const TransmissionOptions& options) {
  if (options.degree_scaled) {
    return "deg^" + spec_text::fmt_double(options.tp_exponent);
  }
  return spec_text::fmt_double(options.tp);
}

}  // namespace

bool set_transmission_probability_option(TransmissionOptions& options,
                                         std::string_view key,
                                         std::string_view value) {
  if (key != "tp") return false;
  return parse_tp_value(options, value);
}

bool set_transmission_option(TransmissionOptions& options,
                             std::string_view key, std::string_view value) {
  if (key == "tp") return parse_tp_value(options, value);
  return set_transmission_intervention_option(options, key, value);
}

bool set_transmission_intervention_option(TransmissionOptions& options,
                                          std::string_view key,
                                          std::string_view value) {
  if (key == "stifle") {
    const auto v = spec_text::parse_u64(value);
    if (!v || *v > 0xFFFFFFFFULL) return false;
    options.stifle = static_cast<std::uint32_t>(*v);
    return true;
  }
  if (key == "block") {
    const auto v = spec_text::parse_double(value);
    if (!v || !(*v >= 0.0 && *v < 1.0)) return false;  // NaN-proof
    options.block_fraction = *v;
    return true;
  }
  if (key == "block@t") {
    const auto v = spec_text::parse_u64(value);
    if (!v || *v == 0) return false;  // round 0 is initialization
    options.block_round = *v;
    return true;
  }
  return false;
}

void format_transmission_probability_options(
    const TransmissionOptions& options, const TransmissionOptions& defaults,
    spec_text::KeyValWriter& out) {
  if (options.tp != defaults.tp ||
      options.degree_scaled != defaults.degree_scaled ||
      options.tp_exponent != defaults.tp_exponent) {
    out.add("tp", format_tp_value(options));
  }
}

void format_transmission_options(const TransmissionOptions& options,
                                 const TransmissionOptions& defaults,
                                 spec_text::KeyValWriter& out) {
  format_transmission_probability_options(options, defaults, out);
  format_transmission_intervention_options(options, defaults, out);
}

void format_transmission_intervention_options(
    const TransmissionOptions& options, const TransmissionOptions& defaults,
    spec_text::KeyValWriter& out) {
  if (options.stifle != defaults.stifle) {
    out.add("stifle", static_cast<std::uint64_t>(options.stifle));
  }
  if (options.block_fraction != defaults.block_fraction) {
    out.add("block", options.block_fraction);
  }
  if (options.block_round != defaults.block_round) {
    out.add("block@t", static_cast<std::uint64_t>(options.block_round));
  }
}

std::vector<std::string> transmission_key_signatures() {
  return {
      "tp=<p in (0,1]> | tp=deg^<exp>   contact success probability "
      "(uniform / degree-scaled receive)",
      "stifle=<k>                       informed entities transmit for k "
      "rounds, then stifle",
      "block=<f> [block@t=<round>]      quarantine the top f*n "
      "highest-degree vertices from that round on",
  };
}

namespace {

// The per-edge field is the per-vertex field scattered to CSR slots; only
// the edge-traffic traced contact sites read it, so it is filled on demand.
// On the implicit backend there is no CSR to scatter along, so the slot
// layout (and the offsets array attempt_slot indexes through) is
// materialized from the closed-form adjacency — the one place a traced
// run pays O(m) memory for an implicit graph.
void fill_edge_field(const Graph& g, TransmissionScratch& s) {
  const std::size_t slots = 2 * g.num_edges();
  s.edge_success.resize(slots);
  if (g.is_implicit()) {
    const Vertex n = g.num_vertices();
    s.implicit_offsets.resize(static_cast<std::size_t>(n) + 1);
    std::uint32_t off = 0;
    for (Vertex v = 0; v < n; ++v) {
      s.implicit_offsets[v] = off;
      const std::uint32_t deg = g.degree_unchecked(v);
      for (std::uint32_t i = 0; i < deg; ++i) {
        s.edge_success[off + i] =
            s.vertex_success[g.neighbor_unchecked(v, i)];
      }
      off += deg;
    }
    s.implicit_offsets[n] = off;
    return;
  }
  const CsrView csr = g.csr();
  for (std::size_t i = 0; i < slots; ++i) {
    s.edge_success[i] = s.vertex_success[csr.neighbors[i]];
  }
}

void rebuild_fields(const Graph& g, const TransmissionOptions& options,
                    TransmissionScratch& s, bool need_edge_field) {
  const Vertex n = g.num_vertices();
  s.vertex_success.assign(n, static_cast<float>(options.tp));
  if (options.degree_scaled) {
    for (Vertex v = 0; v < n; ++v) {
      const std::uint32_t deg = g.degree_unchecked(v);
      // Degree-0 vertices are never contacted; keep them at tp so the
      // field stays well-defined for negative exponents.
      const double p =
          deg == 0 ? options.tp
                   : options.tp * std::pow(static_cast<double>(deg),
                                           options.tp_exponent);
      s.vertex_success[v] = static_cast<float>(std::clamp(p, 0.0, 1.0));
    }
  }
  s.field_min = 1.0f;
  s.field_max = 0.0f;
  for (Vertex v = 0; v < n; ++v) {
    s.field_min = std::min(s.field_min, s.vertex_success[v]);
    s.field_max = std::max(s.field_max, s.vertex_success[v]);
  }
  if (n == 0) s.field_min = s.field_max = 1.0f;
  s.edge_success.clear();
  if (need_edge_field) fill_edge_field(g, s);

  s.blocked.assign(n, 0);
  s.blocked_count = 0;
  if (options.block_fraction > 0.0) {
    const auto count = static_cast<std::uint32_t>(std::min<double>(
        n, std::llround(options.block_fraction * static_cast<double>(n))));
    if (count > 0) {
      // Targeted quarantine: the highest-degree vertices go first (ties by
      // ascending id) — deterministic, so blocking consumes no RNG and the
      // trial stream is unchanged by where the blocked set lands.
      auto& order = s.order;
      order.resize(n);
      std::iota(order.begin(), order.end(), 0u);
      std::partial_sort(order.begin(), order.begin() + count, order.end(),
                        [&](std::uint32_t a, std::uint32_t b) {
                          const std::uint32_t da = g.degree_unchecked(a);
                          const std::uint32_t db = g.degree_unchecked(b);
                          if (da != db) return da > db;
                          return a < b;
                        });
      for (std::uint32_t i = 0; i < count; ++i) s.blocked[order[i]] = 1;
      s.blocked_count = count;
    }
  }
}

}  // namespace

void TransmissionModel::bind(const Graph& g,
                             const TransmissionOptions& options,
                             TrialArena& arena, std::uint64_t seed,
                             bool need_edge_field) {
  trivial_ = options.trivial();
  sample_mode_ = SampleMode::trivial;
  stifle_ = options.stifle;
  block_round_ = options.block_round;
  uniform_p_ = 1.0f;
  gap_scale_ = 0.0f;
  vertex_success_ = nullptr;
  edge_success_ = nullptr;
  blocked_ = nullptr;
  offsets_ = nullptr;
  if (trivial_) return;  // golden path: no fields, no streams, no draws

  TransmissionScratch& s = arena.transmission;
  const bool cache_hit =
      s.graph_uid == g.uid() && s.tp == options.tp &&
      s.exponent == options.tp_exponent &&
      s.degree_scaled == options.degree_scaled &&
      s.block_fraction == options.block_fraction;
  if (!cache_hit) {
    rebuild_fields(g, options, s, need_edge_field);
    s.graph_uid = g.uid();
    s.tp = options.tp;
    s.exponent = options.tp_exponent;
    s.degree_scaled = options.degree_scaled;
    s.block_fraction = options.block_fraction;
  } else if (need_edge_field && s.edge_success.size() != 2 * g.num_edges()) {
    // Cache built by an untraced bind: scatter the per-edge view now.
    fill_edge_field(g, s);
  }
  vertex_success_ = s.vertex_success.data();
  if (need_edge_field) edge_success_ = s.edge_success.data();
  blocked_ = s.blocked_count > 0 ? s.blocked.data() : nullptr;
  // attempt_slot's slot->entry indexing; only traced binds read it. The
  // implicit backend has no CSR, so the offsets materialized alongside the
  // edge field stand in (and untraced implicit binds leave it null).
  offsets_ = g.is_implicit()
                 ? (need_edge_field ? s.implicit_offsets.data() : nullptr)
                 : g.csr().offsets;

  // Mode pick from the materialized field, not the option flags: a
  // degree-scaled spec on a regular graph produces a constant field and
  // earns the skip fast path; a constant 1.0 field (tp=1 + interventions)
  // must stay draw-free, so it routes to batched where attempt() folds to
  // "always succeed" per entry.
  const bool constant_sub_one =
      s.field_min == s.field_max && s.field_max < 1.0f && s.field_max > 0.0f;
  sample_mode_ =
      constant_sub_one ? SampleMode::skip_uniform : SampleMode::batched;
  if (constant_sub_one) {
    uniform_p_ = s.field_max;
    gap_scale_ = 1.0f / fast_log2f(1.0f - uniform_p_);
  }
  attempt_stream_.reseed(seed, 0);
  gap_stream_.reseed(seed, 1);
  gap_pos_ = kGapBatch;
}

void TransmissionModel::refill_gaps() {
  // Whole Philox blocks in, one SIMD pass out per block (the uniforms are
  // centered on (w >> 8) + 0.5 to keep log finite at both ends without a
  // branch). The word sequence is the plain sequential stream-1 order;
  // the dispatched kernel is bit-identical on every ISA.
  static_assert(kGapBatch % PhiloxStream::kBufWords == 0);
  philox_fill_gaps(gap_stream_, kGapBatch, gap_scale_, kGapCap,
                   gaps_.data());
  gap_pos_ = 0;
}

std::vector<std::uint32_t> derive_stifled_curve(
    const std::vector<std::uint32_t>& informed_curve, std::uint32_t stifle) {
  if (stifle == 0 || informed_curve.empty()) return {};
  std::vector<std::uint32_t> stifled(informed_curve.size(), 0);
  for (std::size_t t = stifle + 1; t < informed_curve.size(); ++t) {
    stifled[t] = informed_curve[t - stifle - 1];
  }
  return stifled;
}

}  // namespace rumor

// Shared types for the four dissemination protocols (paper §3).
//
// Each protocol is a stepwise simulator class (construct → step() until
// done() → inspect) plus a run() convenience that returns a RunResult.
// Stepwise execution is what the coupling machinery and the invariant tests
// hook into; run() is what experiments use.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace rumor {

using Round = std::uint64_t;

constexpr std::uint32_t kNeverInformed =
    std::numeric_limits<std::uint32_t>::max();

// Sentinel for "this milestone round has not happened yet".
constexpr Round kNoRoundYet = std::numeric_limits<Round>::max();

// What a simulator records beyond the broadcast time. Everything here is
// off by default; traces cost memory proportional to what they record.
struct TraceOptions {
  bool informed_curve = false;  // per-round count of informed vertices/agents
  bool inform_rounds = false;   // per-vertex (and per-agent) inform rounds
  bool edge_traffic = false;    // per-undirected-edge utilization counters

  friend bool operator==(const TraceOptions&, const TraceOptions&) = default;
};

struct RunResult {
  // Broadcast time: rounds until all vertices informed (push, push-pull,
  // visit-exchange) or all agents informed (meet-exchange). Equals the
  // cutoff when completed == false.
  Round rounds = 0;
  bool completed = false;

  // visit-exchange also reports when all agents became informed (the
  // quantity coupled against meet-exchange in Theorem 23).
  Round agent_rounds = 0;

  // Final informed-entity count (vertices, or agents for the agent-counting
  // protocols). Equals n on completed runs; with interventions (stifling,
  // blocking) it measures how far the rumor got before dying out.
  std::uint32_t informed = 0;

  // Populated according to TraceOptions.
  std::vector<std::uint32_t> informed_curve;
  // Per-round stifled-entity counts; populated alongside informed_curve
  // when the transmission model stifles (see derive_stifled_curve).
  std::vector<std::uint32_t> stifled_curve;
  std::vector<std::uint32_t> vertex_inform_round;
  std::vector<std::uint32_t> agent_inform_round;
  std::vector<std::uint64_t> edge_traffic;
};

// Default safety cutoff: generous enough for every family in the benches
// (the slowest case we exercise is push on the star, Θ(n log n)).
[[nodiscard]] inline Round default_round_cutoff(Vertex n) {
  Round bits = 1;
  while ((Vertex{1} << bits) < n && bits < 31) ++bits;
  return 1000 + 400 * static_cast<Round>(n) * bits;
}

}  // namespace rumor

// PUSH rumor spreading (paper §3).
//
// Round 0: the source is informed. In each round t >= 1, every vertex
// informed in a previous round samples a uniform random neighbor and informs
// it. T_push = rounds until all vertices informed.
//
// Implementation note — saturation retirement: a vertex whose entire
// neighborhood is informed can never change the process again; its future
// calls are skipped. The skipped calls are independent uniform samples whose
// outcomes cannot alter the informed set, so the simulated process law is
// exactly that of the definition (differentially tested against
// reference_push). This turns e.g. the star from Θ(n²log n) simulation work
// into Θ(n log n).
//
// Scratch state (inform rounds, neighbor counters, the active list) lives
// in a TrialArena: epoch-stamped members make per-trial reset O(1) instead
// of O(n + m), and a runner-lent arena makes repeated trials allocation
// free.
#pragma once

#include <cstdint>
#include <memory>

#include "core/protocol.hpp"
#include "core/transmission.hpp"
#include "support/rng.hpp"
#include "support/trial_arena.hpp"

namespace rumor {

struct PushOptions {
  // Transmission failure probability: each call is dropped independently
  // with this probability (robustness ablation, cf. Elsässer–Sauerwald).
  double loss_probability = 0.0;
  Round max_rounds = 0;  // 0 = default_round_cutoff(n)
  // Frontier-sharded round engine (core/sharding): 0 = serial legacy,
  // kShardsAuto = on for huge graphs, N >= 1 = on with N partitions. The
  // sharded trajectory depends only on whether the engine is ON, never on
  // the partition count. Incompatible with trace.edge_traffic.
  std::uint32_t shards = 0;
  // Contact rule: success probabilities + interventions (core/transmission).
  TransmissionOptions transmission;
  TraceOptions trace;

  friend bool operator==(const PushOptions&, const PushOptions&) = default;
};

class SimulatorRegistry;
// Registers the PUSH simulator (spec name "push") with the scenario
// registry; called once by SimulatorRegistry::instance().
void register_push_simulator(SimulatorRegistry& registry);

class PushProcess {
 public:
  PushProcess(const Graph& g, Vertex source, std::uint64_t seed,
              PushOptions options = {}, TrialArena* arena = nullptr);

  // Executes one round.
  void step();

  [[nodiscard]] bool done() const {
    return informed_count_ == graph_->num_vertices();
  }
  [[nodiscard]] Round round() const { return round_; }
  [[nodiscard]] std::uint32_t informed_count() const {
    return informed_count_;
  }
  [[nodiscard]] bool vertex_informed(Vertex v) const {
    return arena_->vertex_inform_round.touched(v);
  }
  [[nodiscard]] std::uint32_t vertex_inform_round(Vertex v) const {
    return arena_->vertex_inform_round.get(v);
  }
  [[nodiscard]] const Graph& graph() const { return *graph_; }

  // Steps until done or the cutoff; fills a RunResult.
  [[nodiscard]] RunResult run();

 private:
  void inform(Vertex v);
  template <class Mode>
  void step_impl();
  // Frontier-sharded round (sharded_ == true): a parallel survivor filter
  // and a parallel caller phase — both reading round-start state only,
  // each slot drawing from its own addressable chain — bracketing a serial
  // shard-major merge that performs the informs. See docs/perf.md for the
  // determinism contract.
  template <class Mode, class Access>
  void step_sharded(const Access& acc);
  // Geometric skip-sampling round (sample_mode == skip_uniform, untraced,
  // loss-free): instead of one Bernoulli(p) coin per caller per round, each
  // caller sits in a calendar queue keyed by the round of its next
  // *successful* call, so a round costs O(successes), not O(callers).
  // Templated on the graph access policy (CsrAccess/ImplicitAccess, picked
  // once per step by with_graph_access) so the event loop runs raw CSR
  // loads or closed-form arithmetic with no per-event backend branch.
  template <class Access>
  void step_skip(const Access& acc);
  void schedule(Vertex v, std::uint64_t wake);
  // Inserts v into the calendar (ring slot array, spill chain, or far
  // chain) without touching the pending count; maturation re-links through
  // this, schedule() adds the accounting.
  void link(Vertex v, std::uint64_t wake);
  void activate_blocking();
  // True when the run loop must stop before the cutoff: completion,
  // blocking containment, or stifling extinction.
  [[nodiscard]] bool halted() const;

  const Graph* graph_;
  Rng rng_;
  PushOptions options_;
  TransmissionModel model_;
  Round round_ = 0;
  Round cutoff_;
  std::uint32_t informed_count_ = 0;
  // Containment target under blocking: vertices that can ever be informed.
  std::uint32_t target_;
  Round last_inform_round_ = 0;
  bool skip_ = false;          // calendar path active this trial
  bool sharded_ = false;       // frontier-sharded engine active this trial
  std::uint32_t shard_width_ = 1;  // execution-only; never affects draws
  std::uint64_t seed_ = 0;         // trial seed: keys the shard draw plane
  std::uint64_t pending_ = 0;  // wake events outstanding (ring + far)
  std::unique_ptr<TrialArena> owned_arena_;
  TrialArena* arena_;
};

// One-call convenience.
[[nodiscard]] RunResult run_push(const Graph& g, Vertex source,
                                 std::uint64_t seed, PushOptions options = {});

}  // namespace rumor

// HYBRID: push-pull and visit-exchange running on one shared
// informed-vertex state (paper §1 suggests agent-based dissemination "in
// combination with push-pull" as a best-of-both protocol; experiment E12).
//
// Round structure: (1) all agents step; (2) agents informed in a previous
// round inform their vertices; (3) every vertex performs its push-pull call,
// exchanges judged on informed-before-round state; (4) agents standing on an
// informed vertex (any round <= current) become informed. Hence each round
// costs one call per useful vertex plus one step per agent — the same
// per-round budget as running the two protocols side by side.
#pragma once

#include <cstdint>

#include "core/walk_options.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"
#include "walk/agents.hpp"

namespace rumor {

class HybridProcess {
 public:
  HybridProcess(const Graph& g, Vertex source, std::uint64_t seed,
                WalkOptions options = {});

  void step();

  [[nodiscard]] bool done() const {
    return informed_vertex_count_ == graph_->num_vertices();
  }
  [[nodiscard]] Round round() const { return round_; }
  [[nodiscard]] std::uint32_t informed_vertex_count() const {
    return informed_vertex_count_;
  }
  [[nodiscard]] bool vertex_informed(Vertex v) const {
    return vertex_inform_round_[v] != kNeverInformed;
  }
  [[nodiscard]] const Graph& graph() const { return *graph_; }

  [[nodiscard]] RunResult run();

 private:
  void inform_vertex(Vertex v);
  void inform_agent_at(std::size_t order_index);
  [[nodiscard]] bool informed_before_this_round(Vertex v) const {
    return vertex_inform_round_[v] != kNeverInformed &&
           vertex_inform_round_[v] < round_;
  }

  const Graph* graph_;
  Rng rng_;
  WalkOptions options_;
  Laziness laziness_;
  Round round_ = 0;
  Round cutoff_;
  AgentSystem agents_;
  std::uint32_t informed_vertex_count_ = 0;
  std::size_t informed_agent_count_ = 0;
  std::vector<std::uint32_t> vertex_inform_round_;
  std::vector<std::uint32_t> agent_inform_round_;
  std::vector<Agent> agent_order_;
  std::vector<std::uint32_t> order_index_of_;
  // push-pull working sets (see PushPullProcess)
  std::vector<std::uint32_t> informed_nbr_count_;
  std::vector<Vertex> active_;
  std::vector<Vertex> frontier_;
  std::vector<std::uint8_t> in_frontier_;
  std::vector<std::uint32_t> curve_;
};

[[nodiscard]] RunResult run_hybrid(const Graph& g, Vertex source,
                                   std::uint64_t seed,
                                   WalkOptions options = {});

}  // namespace rumor

// HYBRID: push-pull and visit-exchange running on one shared
// informed-vertex state (paper §1 suggests agent-based dissemination "in
// combination with push-pull" as a best-of-both protocol; experiment E12).
//
// Round structure: (1) all agents step; (2) agents informed in a previous
// round inform their vertices; (3) every vertex performs its push-pull call,
// exchanges judged on informed-before-round state; (4) agents standing on an
// informed vertex (any round <= current) become informed. Hence each round
// costs one call per useful vertex plus one step per agent — the same
// per-round budget as running the two protocols side by side.
//
// All O(n + |A|) scratch state lives in a TrialArena — lent by the trial
// runner for allocation-free repeated trials, or privately owned when
// constructed without one. Laziness goes through resolve_laziness, so
// LazyMode::auto_bipartite enables lazy walks on bipartite graphs exactly
// as it does for the pure agent protocols.
#pragma once

#include <cstdint>
#include <memory>

#include "core/walk_options.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"
#include "support/trial_arena.hpp"
#include "walk/agents.hpp"

namespace rumor {

class HybridProcess {
 public:
  HybridProcess(const Graph& g, Vertex source, std::uint64_t seed,
                WalkOptions options = {}, TrialArena* arena = nullptr);

  void step();

  [[nodiscard]] bool done() const {
    return informed_vertex_count_ == graph_->num_vertices();
  }
  [[nodiscard]] Round round() const { return round_; }
  [[nodiscard]] std::uint32_t informed_vertex_count() const {
    return informed_vertex_count_;
  }
  [[nodiscard]] bool vertex_informed(Vertex v) const {
    return arena_->vertex_inform_round.touched(v);
  }
  [[nodiscard]] const Graph& graph() const { return *graph_; }
  [[nodiscard]] Laziness laziness() const { return laziness_; }

  [[nodiscard]] RunResult run();

 private:
  void inform_vertex(Vertex v);
  void inform_agent_at(std::size_t order_index);
  template <class Mode>
  void step_impl();
  template <class Mode, class Access>
  void step_sharded(const Access& acc);
  void activate_blocking();
  [[nodiscard]] bool halted() const;
  [[nodiscard]] bool informed_before_this_round(Vertex v) const {
    const std::uint32_t r = arena_->vertex_inform_round.get(v);
    return r != kNeverInformed && r < round_;
  }

  const Graph* graph_;
  Rng rng_;
  WalkOptions options_;
  TransmissionModel model_;
  Laziness laziness_;
  Round round_ = 0;
  Round cutoff_;
  std::uint32_t target_ = 0;  // blocking containment target (vertices)
  Round last_inform_round_ = 0;
  std::unique_ptr<TrialArena> owned_arena_;
  TrialArena* arena_;
  AgentSystem agents_;
  // Identity-default informed-prefix partition over the arena's order
  // arrays: [0, informed_agent_count_) are the informed agents.
  AgentOrderView order_;
  std::uint32_t informed_vertex_count_ = 0;
  std::size_t informed_agent_count_ = 0;
  // Frontier-sharded round engine (core/sharding): fixed at construction.
  bool sharded_ = false;
  std::uint32_t shard_width_ = 1;
  std::uint64_t seed_ = 0;  // ShardPlane key seed (the trial seed)
};

[[nodiscard]] RunResult run_hybrid(const Graph& g, Vertex source,
                                   std::uint64_t seed,
                                   WalkOptions options = {},
                                   TrialArena* arena = nullptr);

class SimulatorRegistry;
// Registers the hybrid simulator (spec name "hybrid").
void register_hybrid_simulator(SimulatorRegistry& registry);

}  // namespace rumor

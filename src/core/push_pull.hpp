// PUSH-PULL rumor spreading (paper §3, Karp et al. 2000).
//
// Round 0: the source is informed. In each round t >= 1, every vertex
// (informed or not) samples a uniform random neighbor; if exactly one of the
// pair was informed before round t, the other becomes informed.
//
// Implementation note: only two kinds of calls can change the state —
// pushes by informed vertices with an uninformed neighbor, and pulls by
// uninformed vertices adjacent to an informed one. All other calls are
// no-ops by definition, so the simulator iterates exactly those two sets
// (see DESIGN.md "law-preserving optimizations"; differentially tested
// against reference_push_pull).
//
// Scratch state (inform rounds, neighbor counters, caller/frontier lists)
// lives in a TrialArena for O(1) per-trial reset and allocation-free
// repeated trials.
#pragma once

#include <cstdint>
#include <memory>

#include "core/protocol.hpp"
#include "core/transmission.hpp"
#include "support/rng.hpp"
#include "support/trial_arena.hpp"

namespace rumor {

struct PushPullOptions {
  double loss_probability = 0.0;  // per-call drop probability
  Round max_rounds = 0;           // 0 = default_round_cutoff(n)
  // Frontier-sharded round engine (core/sharding): 0 = serial legacy,
  // kShardsAuto = on for huge graphs, N >= 1 = on with N partitions.
  // Trajectory depends only on on/off, never on the partition count.
  // Incompatible with trace.edge_traffic (the exact-bandwidth path).
  std::uint32_t shards = 0;
  // Contact rule: success probabilities + interventions (core/transmission).
  TransmissionOptions transmission;
  TraceOptions trace;

  friend bool operator==(const PushPullOptions&,
                         const PushPullOptions&) = default;
};

class SimulatorRegistry;
// Registers the PUSH-PULL simulator (spec name "push-pull").
void register_push_pull_simulator(SimulatorRegistry& registry);

class PushPullProcess {
 public:
  PushPullProcess(const Graph& g, Vertex source, std::uint64_t seed,
                  PushPullOptions options = {}, TrialArena* arena = nullptr);

  void step();

  [[nodiscard]] bool done() const {
    return informed_count_ == graph_->num_vertices();
  }
  [[nodiscard]] Round round() const { return round_; }
  [[nodiscard]] std::uint32_t informed_count() const {
    return informed_count_;
  }
  [[nodiscard]] bool vertex_informed(Vertex v) const {
    return arena_->vertex_inform_round.touched(v);
  }
  [[nodiscard]] std::uint32_t vertex_inform_round(Vertex v) const {
    return arena_->vertex_inform_round.get(v);
  }
  [[nodiscard]] const Graph& graph() const { return *graph_; }

  [[nodiscard]] RunResult run();

 private:
  void inform(Vertex v);
  template <class Mode>
  void step_impl();
  // Frontier-sharded round (sharded_ == true; untraced fast path only):
  // parallel filters over callers and pullers, a parallel pusher phase, the
  // serial push merge, then a parallel puller phase reading the post-push
  // state (valid: the push merge result is partition-independent) and the
  // serial pull merge. Each parallel slot draws from its own addressable
  // chain; see docs/perf.md for the determinism contract.
  template <class Mode, class Access>
  void step_sharded(const Access& acc);
  void activate_blocking();
  [[nodiscard]] bool halted() const;
  [[nodiscard]] bool informed_before_this_round(Vertex v) const {
    const std::uint32_t r = arena_->vertex_inform_round.get(v);
    return r != kNeverInformed && r < round_;
  }

  const Graph* graph_;
  Rng rng_;
  PushPullOptions options_;
  TransmissionModel model_;
  Round round_ = 0;
  Round cutoff_;
  std::uint32_t informed_count_ = 0;
  std::uint32_t target_;  // blocking containment target
  Round last_inform_round_ = 0;
  bool sharded_ = false;           // frontier-sharded engine this trial
  std::uint32_t shard_width_ = 1;  // execution-only; never affects draws
  std::uint64_t seed_ = 0;         // trial seed: keys the shard draw plane
  std::unique_ptr<TrialArena> owned_arena_;
  TrialArena* arena_;
};

[[nodiscard]] RunResult run_push_pull(const Graph& g, Vertex source,
                                      std::uint64_t seed,
                                      PushPullOptions options = {});

}  // namespace rumor

// Options shared by the agent-based protocols (visit-exchange,
// meet-exchange, hybrid, dynamic variants).
#pragma once

#include <cstddef>

#include "core/protocol.hpp"
#include "walk/agents.hpp"
#include "walk/step_kernel.hpp"

namespace rumor {

// Walk laziness policy. The paper uses non-lazy walks for visit-exchange
// and lazy walks for meet-exchange "when the graph is bipartite"; the
// auto mode reproduces exactly that rule.
enum class LazyMode {
  never,
  always,
  auto_bipartite,  // lazy iff the graph is bipartite
};

struct WalkOptions {
  // |A| = round(alpha * n) unless agent_count overrides it (nonzero).
  double alpha = 1.0;
  std::size_t agent_count = 0;
  Placement placement = Placement::stationary;
  // Start vertex for Placement::at_vertex; kNoVertex means "the source".
  Vertex placement_anchor = kNoVertex;
  LazyMode lazy = LazyMode::never;
  Round max_rounds = 0;  // 0 = default_round_cutoff(n)
  // Stepping-loop implementation; scalar_checked is the differential
  // baseline (identical trajectories by construction).
  StepEngine engine = StepEngine::batched;
  TraceOptions trace;
};

// Resolves the at_vertex anchor against the broadcast source.
[[nodiscard]] inline Vertex resolve_anchor(const WalkOptions& options,
                                           Vertex source) {
  return options.placement_anchor == kNoVertex ? source
                                               : options.placement_anchor;
}

// Maps the laziness policy onto the graph at hand. auto_bipartite reads the
// graph's memoized property cache, so resolution is O(1) and
// allocation-free per trial (the one-time traversal happens on the first
// query against each graph).
[[nodiscard]] Laziness resolve_laziness(const Graph& g, LazyMode mode);

// The explicit agent-count override, or |A| = round(alpha * n).
[[nodiscard]] std::size_t resolve_agent_count(Vertex n,
                                              std::size_t agent_count,
                                              double alpha);
[[nodiscard]] inline std::size_t resolve_agent_count(
    const Graph& g, const WalkOptions& options) {
  return resolve_agent_count(g.num_vertices(), options.agent_count,
                             options.alpha);
}

}  // namespace rumor

// Options shared by the agent-based protocols (visit-exchange,
// meet-exchange, hybrid, dynamic variants).
#pragma once

#include <cstddef>
#include <string_view>

#include "core/protocol.hpp"
#include "core/transmission.hpp"
#include "walk/agents.hpp"
#include "walk/step_kernel.hpp"

namespace rumor {

namespace spec_text {
class KeyValWriter;
}  // namespace spec_text

// Walk laziness policy. The paper uses non-lazy walks for visit-exchange
// and lazy walks for meet-exchange "when the graph is bipartite"; the
// auto mode reproduces exactly that rule.
enum class LazyMode {
  never,
  always,
  auto_bipartite,  // lazy iff the graph is bipartite
};

struct WalkOptions {
  // |A| = round(alpha * n) unless agent_count overrides it (nonzero).
  double alpha = 1.0;
  std::size_t agent_count = 0;
  Placement placement = Placement::stationary;
  // Start vertex for Placement::at_vertex; kNoVertex means "the source".
  Vertex placement_anchor = kNoVertex;
  LazyMode lazy = LazyMode::never;
  Round max_rounds = 0;  // 0 = default_round_cutoff(n)
  // Stepping-loop implementation; scalar_checked is the differential
  // baseline (identical trajectories by construction), counter draws the
  // step words from an addressable Philox stream instead of the serial
  // xoshiro stream (deterministic per seed, distinct trajectories).
  StepEngine engine = StepEngine::batched;
  // Frontier-sharded round engine (core/sharding): 0 = serial legacy,
  // kShardsAuto = on for huge graphs, N >= 1 = on with N partitions.
  // Honored by visit-exchange, meet-exchange, and hybrid (their shared
  // sharded_walk_entry hooks parse the key); the plain walk grammar
  // rejects it, so the remaining walk specs (frog, dynamic-agent,
  // multi-rumor) cannot silently carry a dead option. Incompatible with
  // trace.edge_traffic and with a non-default engine= (the sharded stepper
  // replaces the engine choice).
  std::uint32_t shards = 0;
  // Contact rule (success probabilities + interventions); the default is
  // the paper's always-successful homogeneous transmission.
  TransmissionOptions transmission;
  TraceOptions trace;

  friend bool operator==(const WalkOptions&, const WalkOptions&) = default;
};

// Resolves the at_vertex anchor against the broadcast source.
[[nodiscard]] inline Vertex resolve_anchor(const WalkOptions& options,
                                           Vertex source) {
  return options.placement_anchor == kNoVertex ? source
                                               : options.placement_anchor;
}

// Maps the laziness policy onto the graph at hand. auto_bipartite reads the
// graph's memoized property cache, so resolution is O(1) and
// allocation-free per trial (the one-time traversal happens on the first
// query against each graph).
[[nodiscard]] Laziness resolve_laziness(const Graph& g, LazyMode mode);

// The explicit agent-count override, or |A| = round(alpha * n).
[[nodiscard]] std::size_t resolve_agent_count(Vertex n,
                                              std::size_t agent_count,
                                              double alpha);
[[nodiscard]] inline std::size_t resolve_agent_count(
    const Graph& g, const WalkOptions& options) {
  return resolve_agent_count(g.num_vertices(), options.agent_count,
                             options.alpha);
}

// Scenario-spec plumbing shared by every WalkOptions-based simulator
// (visit-exchange, meet-exchange, hybrid, dynamic-agent, multi-rumor).
// Keys: alpha, agents, placement (stationary|one_per_vertex|uniform|
// at_vertex), anchor (vertex id or "source"), lazy (never|always|auto),
// max_rounds, engine (batched|scalar|counter), tp, curve, inform_rounds,
// edge_traffic, plus the intervention keys (stifle, block, block@t).
// set_walk_option returns false for an unknown key or unparsable value;
// format_walk_options appends only keys that differ from `defaults`, so the
// canonical spec text of a default spec is the bare protocol name.
[[nodiscard]] bool set_walk_option(WalkOptions& options, std::string_view key,
                                   std::string_view value);
// As set_walk_option but WITHOUT the trace and intervention keys — for
// simulators that honor the agent substrate and the transmission
// probability but can honor neither traces nor interventions (multi-rumor:
// its packed rumor masks carry no inform ages): accepting curve=on or
// stifle=3 there would parse, round-trip, and silently do nothing.
[[nodiscard]] bool set_agent_walk_option(WalkOptions& options,
                                         std::string_view key,
                                         std::string_view value);
void format_walk_options(const WalkOptions& options,
                         const WalkOptions& defaults,
                         spec_text::KeyValWriter& out);
// Formatter mirror of set_agent_walk_option (no trace keys): a formatter
// must never emit a key its set hook rejects, or parse(name()) breaks.
void format_agent_walk_options(const WalkOptions& options,
                               const WalkOptions& defaults,
                               spec_text::KeyValWriter& out);

// TraceOptions plumbing (also used by the non-walk protocols).
[[nodiscard]] bool set_trace_option(TraceOptions& trace, std::string_view key,
                                    std::string_view value);
void format_trace_options(const TraceOptions& trace,
                          const TraceOptions& defaults,
                          spec_text::KeyValWriter& out);

}  // namespace rumor

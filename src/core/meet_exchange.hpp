// MEET-EXCHANGE (paper §3).
//
// Only agents store information. Round 0: every agent standing on the
// source s is informed; if there is none, the first agent(s) to visit s in
// a later round become informed, after which s stops informing. Whenever
// two agents meet (same vertex, same round) and exactly one of them was
// informed in a previous round, the other becomes informed.
// T_meetx = rounds until all agents are informed.
//
// On bipartite graphs non-lazy walks may never meet (T = ∞, paper §3);
// the default LazyMode::auto_bipartite reproduces the paper's lazy-walk
// fix, and the non-lazy mode reports completed=false at the cutoff rather
// than hanging.
//
// Stepping runs the batched walk kernel; all O(n + |A|) scratch state lives
// in a TrialArena (lent by the trial runner, or privately owned).
#pragma once

#include <cstdint>
#include <memory>

#include "core/walk_options.hpp"
#include "graph/graph.hpp"
#include "support/rng.hpp"
#include "support/trial_arena.hpp"
#include "walk/agents.hpp"

namespace rumor {

class MeetExchangeProcess {
 public:
  // Note: unlike the other protocols the default laziness here is
  // auto_bipartite; pass LazyMode::never explicitly to study the
  // non-terminating regime (experiment E10).
  MeetExchangeProcess(const Graph& g, Vertex source, std::uint64_t seed,
                      WalkOptions options = default_options(),
                      TrialArena* arena = nullptr);

  [[nodiscard]] static WalkOptions default_options() {
    WalkOptions options;
    options.lazy = LazyMode::auto_bipartite;
    return options;
  }

  void step();

  [[nodiscard]] bool done() const {
    return informed_agent_count_ == agents_.count();
  }
  [[nodiscard]] Round round() const { return round_; }
  [[nodiscard]] std::size_t informed_agent_count() const {
    return informed_agent_count_;
  }
  [[nodiscard]] bool agent_informed(Agent a) const {
    return arena_->agent_inform_round.touched(a);
  }
  [[nodiscard]] std::uint32_t agent_inform_round(Agent a) const {
    return arena_->agent_inform_round.get(a);
  }
  // True while the source vertex is still waiting for its first visitor.
  [[nodiscard]] bool source_active() const { return source_active_; }
  [[nodiscard]] const AgentSystem& agents() const { return agents_; }
  [[nodiscard]] const Graph& graph() const { return *graph_; }
  [[nodiscard]] Laziness laziness() const { return laziness_; }

  [[nodiscard]] RunResult run();

 private:
  void inform_agent_at(std::size_t order_index);
  template <class Mode>
  void step_impl();
  template <class Mode>
  void step_sharded();
  [[nodiscard]] bool halted() const;

  const Graph* graph_;
  Rng rng_;
  WalkOptions options_;
  TransmissionModel model_;
  Laziness laziness_;
  Round round_ = 0;
  Round cutoff_;
  Round last_inform_round_ = 0;
  std::unique_ptr<TrialArena> owned_arena_;
  TrialArena* arena_;
  AgentSystem agents_;
  // Identity-default informed-prefix partition over the arena's order
  // arrays: [0, informed_agent_count_) are the informed agents.
  AgentOrderView order_;
  Vertex source_;
  bool source_active_ = false;
  std::size_t informed_agent_count_ = 0;
  // Frontier-sharded round engine (core/sharding): fixed at construction.
  bool sharded_ = false;
  std::uint32_t shard_width_ = 1;
  std::uint64_t seed_ = 0;  // ShardPlane key seed (the trial seed)
};

[[nodiscard]] RunResult run_meet_exchange(
    const Graph& g, Vertex source, std::uint64_t seed,
    WalkOptions options = MeetExchangeProcess::default_options());

class SimulatorRegistry;
// Registers the MEET-EXCHANGE simulator (spec name "meet-exchange").
void register_meet_exchange_simulator(SimulatorRegistry& registry);

}  // namespace rumor

// Batched random-walk stepping kernel.
//
// All agent-based protocols advance Θ(|A|) walkers per round; this kernel
// is that inner loop. It replaces per-agent calls through the checked Graph
// API with a single pass over a position array (SoA) that:
//
//  * uses the unchecked CSR accessors — argument validity is the caller's
//    invariant, established once at the process boundary;
//  * software-prefetches the CSR offset and neighbor-row cache lines of
//    upcoming agents, hiding the random-access latency that dominates at
//    large n;
//  * fuses the laziness coin and the neighbor slot into one RNG draw (bit
//    63 is the coin; the low 63 bits drive an unbiased Lemire rejection
//    sampler for the slot);
//  * when every degree is a power of two (the regular-graph bench
//    families), replaces the 128-bit Lemire multiply with a plain shift —
//    bit-for-bit the same slot Rng::below would produce, so the fast path
//    cannot change a seeded trajectory.
//
// Both engines (batched and the checked scalar reference) consume the RNG
// identically, and the traced variant consumes it identically to the
// untraced one — so enabling tracing or switching engines never changes
// the simulated trajectory for a given seed. The scalar engine is retained
// as the differential baseline for the equivalence tests and benchmarks.
#pragma once

#include <cstdint>
#include <span>

#include "graph/graph.hpp"
#include "support/rng.hpp"
#include "walk/agents.hpp"

namespace rumor {

// Which implementation of the stepping loop to run. batched and
// scalar_checked produce identical trajectories by construction
// (scalar_checked exists for differential testing and as the
// microbenchmark baseline). counter replaces the serial xoshiro word
// stream with a block-buffered Philox stream keyed by ONE xoshiro draw per
// step_walks call: trajectories are still a pure function of the trial
// seed (and differ from the batched/scalar ones), but the per-agent draw
// words become addressable — the whole round's randomness is (key, block
// index), generated 64 words at a time through the SIMD refill.
enum class StepEngine : std::uint8_t { batched, scalar_checked, counter };

// Lazy-step draw shared by every stepping path: one 64-bit draw yields the
// stay/move coin (bit 63, matching Rng::coin) and the neighbor slot
// (low 63 bits, unbiased via Lemire rejection). Returns false to stay put.
// Templated on the word source so the xoshiro engines and the Philox
// counter engine consume bit-identical draw *semantics* from their
// respective streams.
template <class WordSource>
[[nodiscard]] inline bool fused_lazy_slot(WordSource& rng, std::uint32_t deg,
                                          std::uint32_t& slot) {
  constexpr std::uint64_t kMask63 = (std::uint64_t{1} << 63) - 1;
  std::uint64_t x = rng();
  if ((x >> 63) != 0) return false;  // stay
  std::uint64_t x63 = x & kMask63;
  __extension__ using u128 = unsigned __int128;
  u128 m = static_cast<u128>(x63) * deg;
  auto low = static_cast<std::uint64_t>(m) & kMask63;
  if (low < deg) {
    const std::uint64_t threshold = ((kMask63 - deg) + 1) % deg;  // 2^63 mod deg
    while (low < threshold) {
      x63 = rng() & kMask63;
      m = static_cast<u128>(x63) * deg;
      low = static_cast<std::uint64_t>(m) & kMask63;
    }
  }
  slot = static_cast<std::uint32_t>(m >> 63);
  return true;
}

// Non-lazy slot draw for generic word sources: the full-width Lemire
// rejection sampler, bit-identical to Rng::below on the same word stream.
template <class WordSource>
[[nodiscard]] inline std::uint32_t word_below(WordSource& rng,
                                              std::uint32_t bound) {
  __extension__ using u128 = unsigned __int128;
  std::uint64_t x = rng();
  u128 m = static_cast<u128>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - std::uint64_t{bound}) % bound;
    while (low < threshold) {
      x = rng();
      m = static_cast<u128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint32_t>(m >> 64);
}

// Advances every position one walk step in place (ascending index — the
// paper's canonical agent order). If edge_traffic is non-null it must point
// at g.num_edges() counters, and every traversal increments the traversed
// edge's counter; the RNG consumption is identical either way. Requires
// g.min_degree() > 0 and every position < g.num_vertices().
void step_walks(const Graph& g, std::span<Vertex> positions, Rng& rng,
                Laziness lazy, std::uint64_t* edge_traffic = nullptr,
                StepEngine engine = StepEngine::batched);

// Frontier-sharded stepping: the walker span is split into balanced
// contiguous ranges executed on the ambient shard_pool(). Walker i draws
// from its OWN addressable chain — SlotDraws(plane(trial_seed, round),
// kShardPhaseWalk, i) — so the trajectory is a pure function of
// (trial_seed, round, positions): bit-identical for every shard count and
// worker count, by construction. Trajectories differ from the serial
// engines above (a different draw plane), which is why sharding is an
// explicit engine choice, not a transparent fast path. Position writes are
// range-disjoint, so the parallel pass is race-free. Edge-traffic tracing
// is not offered here: callers reject shards x edge_traffic upstream.
void step_walks_sharded(const Graph& g, std::span<Vertex> positions,
                        std::uint64_t trial_seed, std::uint64_t round,
                        Laziness lazy, std::uint32_t shards);

}  // namespace rumor

#include "walk/agents.hpp"

#include <cmath>
#include <memory>

#include "walk/alias.hpp"
#include "walk/step_kernel.hpp"

namespace rumor {

const AliasSampler& stationary_sampler(const Graph& g, TrialArena* arena,
                                       std::shared_ptr<AliasSampler>& keepalive) {
  if (arena != nullptr && arena->placement_cache_key == g.uid() &&
      arena->placement_cache != nullptr) {
    return *static_cast<const AliasSampler*>(arena->placement_cache.get());
  }
  std::vector<double> weights(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    weights[v] = static_cast<double>(g.degree(v));
  }
  keepalive = std::make_shared<AliasSampler>(weights);
  if (arena != nullptr) {
    arena->placement_cache = keepalive;
    arena->placement_cache_key = g.uid();
  }
  return *keepalive;
}

std::size_t agent_count_for(Vertex n, double alpha) {
  RUMOR_REQUIRE(alpha > 0.0);
  const auto count =
      static_cast<std::size_t>(std::llround(alpha * static_cast<double>(n)));
  return count > 0 ? count : 1;
}

AgentSystem::AgentSystem(const Graph& g, std::size_t count,
                         Placement placement, Rng& rng, Vertex anchor,
                         TrialArena* arena)
    : graph_(&g),
      positions_(arena != nullptr ? &arena->agent_positions
                                  : &owned_positions_) {
  RUMOR_REQUIRE(count > 0);
  positions_->resize(count);
  switch (placement) {
    case Placement::stationary: {
      std::shared_ptr<AliasSampler> local;
      const AliasSampler& sampler = stationary_sampler(g, arena, local);
      for (auto& pos : *positions_) {
        pos = static_cast<Vertex>(sampler.sample(rng));
      }
      break;
    }
    case Placement::one_per_vertex: {
      RUMOR_REQUIRE(count == g.num_vertices());
      for (Agent a = 0; a < count; ++a) (*positions_)[a] = a;
      break;
    }
    case Placement::uniform: {
      for (auto& pos : *positions_) {
        pos = static_cast<Vertex>(rng.below(g.num_vertices()));
      }
      break;
    }
    case Placement::at_vertex: {
      RUMOR_REQUIRE(anchor < g.num_vertices());
      for (auto& pos : *positions_) pos = anchor;
      break;
    }
  }
}

void AgentSystem::step_all(Rng& rng, Laziness lazy) {
  step_walks(*graph_, positions_mut(), rng, lazy);
}

std::vector<std::uint32_t> AgentSystem::occupancy() const {
  std::vector<std::uint32_t> occ(graph_->num_vertices(), 0);
  for (Vertex pos : *positions_) ++occ[pos];
  return occ;
}

}  // namespace rumor

#include "walk/step_kernel.hpp"

#include <bit>

#include "graph/access.hpp"
#include "support/philox.hpp"
#include "support/thread_pool.hpp"

namespace rumor {

namespace {

// Two-stage prefetch pipeline for the irregular path: the offsets entry is
// prefetched kOffsetsAhead agents early; by the time the pipeline reaches
// kRowAhead it can *read* that (now cached) offset and prefetch the
// neighbor row itself, still far enough ahead to cover the cache-miss
// latency of the row. A degree-16 row of uint32 is one cache line, so one
// prefetch covers every slot the draw can pick.
constexpr std::size_t kOffsetsAhead = 16;
constexpr std::size_t kRowAhead = 4;
// Regular graphs need no offsets stage (row base = v * degree), so the row
// prefetch can run deeper.
constexpr std::size_t kRegularRowAhead = 32;

inline void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

// Checked scalar reference: one agent at a time through the public Graph
// API. Shares the draw helpers with the batched engine, so trajectories are
// bit-identical across engines.
template <bool kLazy, bool kTraced, class WordSource>
void step_scalar(const Graph& g, std::span<Vertex> positions, WordSource& rng,
                 std::uint64_t* traffic) {
  for (Vertex& p : positions) {
    const Vertex v = p;
    const std::uint32_t deg = g.degree(v);
    std::uint32_t slot;
    if constexpr (kLazy) {
      if (!fused_lazy_slot(rng, deg, slot)) continue;
    } else {
      slot = word_below(rng, deg);
    }
    if constexpr (kTraced) ++traffic[g.edge_id(v, slot)];
    p = g.neighbor(v, slot);
  }
}

// Batched engine, irregular degrees: unchecked CSR, two-stage prefetch
// pipeline, Lemire slot draw (identical to Rng::below).
template <bool kLazy, bool kTraced, class WordSource>
void step_batched(const CsrView csr, std::span<Vertex> positions,
                  WordSource& rng, std::uint64_t* traffic) {
  const std::size_t count = positions.size();
  Vertex* pos = positions.data();
  for (std::size_t i = 0; i < count; ++i) {
    if (i + kOffsetsAhead < count) {
      prefetch(&csr.offsets[pos[i + kOffsetsAhead]]);
    }
    if (i + kRowAhead < count) {
      // offsets[pos[i + kRowAhead]] was prefetched kOffsetsAhead - kRowAhead
      // iterations ago, so this read is (almost always) an L1 hit.
      prefetch(&csr.neighbors[csr.offsets[pos[i + kRowAhead]]]);
    }
    const Vertex v = pos[i];
    const std::uint32_t off = csr.offsets[v];
    const std::uint32_t deg = csr.offsets[v + 1] - off;
    std::uint32_t slot;
    if constexpr (kLazy) {
      if (!fused_lazy_slot(rng, deg, slot)) continue;
    } else {
      slot = word_below(rng, deg);
    }
    if constexpr (kTraced) ++traffic[csr.edge_ids[off + slot]];
    pos[i] = csr.neighbors[off + slot];
  }
}

// Batched engine, regular graphs: every row starts at v * deg, so the
// offsets array is never touched — one random memory stream instead of
// two, and the row prefetch needs no pipeline stage.
template <bool kLazy, bool kTraced, class WordSource>
void step_batched_regular(const CsrView csr, std::uint32_t deg,
                          std::span<Vertex> positions, WordSource& rng,
                          std::uint64_t* traffic) {
  const std::size_t count = positions.size();
  Vertex* pos = positions.data();
  auto body = [&](std::size_t i) {
    const Vertex v = pos[i];
    const std::uint64_t off = static_cast<std::uint64_t>(v) * deg;
    std::uint32_t slot;
    if constexpr (kLazy) {
      if (!fused_lazy_slot(rng, deg, slot)) return;
    } else {
      slot = word_below(rng, deg);
    }
    if constexpr (kTraced) ++traffic[csr.edge_ids[off + slot]];
    pos[i] = csr.neighbors[off + slot];
  };
  const std::size_t main_end =
      count > kRegularRowAhead ? count - kRegularRowAhead : 0;
  for (std::size_t i = 0; i < main_end; ++i) {
    prefetch(&csr.neighbors[static_cast<std::uint64_t>(
                                pos[i + kRegularRowAhead]) *
                            deg]);
    body(i);
  }
  for (std::size_t i = main_end; i < count; ++i) body(i);
}

// Batched engine, regular graphs with power-of-two degree: additionally,
// the Lemire draw for a pow2 bound never rejects and reduces to taking the
// top log2(deg) bits of the draw, so the slot is a shift of the same
// 64-bit word — no 128-bit multiply, no rejection branch, and bit-identical
// to the general path. This is the mask/shift fast path for the
// regular-graph bench families.
template <bool kLazy, bool kTraced, class WordSource>
void step_batched_regular_pow2(const CsrView csr, std::uint32_t deg,
                               std::span<Vertex> positions, WordSource& rng,
                               std::uint64_t* traffic) {
  const int log2deg = std::countr_zero(deg);
  const std::size_t count = positions.size();
  Vertex* pos = positions.data();
  auto body = [&](std::size_t i) {
    const Vertex v = pos[i];
    const std::uint64_t off = static_cast<std::uint64_t>(v) << log2deg;
    const std::uint64_t x = rng();
    std::uint32_t slot;
    if constexpr (kLazy) {
      if ((x >> 63) != 0) return;  // the fused coin, as in fused_lazy_slot
      // low 63 bits, top log2(deg) of them — what the 63-bit Lemire yields.
      slot = static_cast<std::uint32_t>(((x << 1) >> 1) >> (63 - log2deg));
    } else {
      // Rng::below(2^k) == x >> (64 - k); double shift handles deg == 1.
      slot = static_cast<std::uint32_t>((x >> 1) >> (63 - log2deg));
    }
    if constexpr (kTraced) ++traffic[csr.edge_ids[off + slot]];
    pos[i] = csr.neighbors[off + slot];
  };
  // Main loop prefetches unconditionally, 4x unrolled to amortize loop
  // control around the serial RNG chain; the tail runs without prefetch.
  // Body order stays strictly ascending, so draws and trajectories are
  // unchanged.
  const std::size_t main_end =
      count > kRegularRowAhead ? count - kRegularRowAhead : 0;
  const std::size_t unrolled_end = main_end - main_end % 4;
  std::size_t i = 0;
  for (; i < unrolled_end; i += 4) {
    prefetch(&csr.neighbors[static_cast<std::uint64_t>(
                                pos[i + kRegularRowAhead])
                            << log2deg]);
    prefetch(&csr.neighbors[static_cast<std::uint64_t>(
                                pos[i + 1 + kRegularRowAhead])
                            << log2deg]);
    prefetch(&csr.neighbors[static_cast<std::uint64_t>(
                                pos[i + 2 + kRegularRowAhead])
                            << log2deg]);
    prefetch(&csr.neighbors[static_cast<std::uint64_t>(
                                pos[i + 3 + kRegularRowAhead])
                            << log2deg]);
    body(i);
    body(i + 1);
    body(i + 2);
    body(i + 3);
  }
  for (; i < main_end; ++i) {
    prefetch(&csr.neighbors[static_cast<std::uint64_t>(
                                pos[i + kRegularRowAhead])
                            << log2deg]);
    body(i);
  }
  for (; i < count; ++i) body(i);
}

// Batched engine, implicit backend: degree, neighbor, and edge id are
// closed-form arithmetic, so there is no memory stream to prefetch — the
// loop is draw-dominated. The draw helpers are shared with every other
// path (and the pow2 shift path is bit-identical to them by construction),
// so the trajectory for a seed is the same one the materialized backend
// would produce.
template <bool kLazy, bool kTraced, class WordSource>
void step_implicit(const ImplicitDesc& d, std::span<Vertex> positions,
                   WordSource& rng, std::uint64_t* traffic) {
  const std::size_t count = positions.size();
  Vertex* pos = positions.data();
  for (std::size_t i = 0; i < count; ++i) {
    const Vertex v = pos[i];
    const std::uint32_t deg = implicit_degree(d, v);
    std::uint32_t slot;
    if constexpr (kLazy) {
      if (!fused_lazy_slot(rng, deg, slot)) continue;
    } else {
      slot = word_below(rng, deg);
    }
    if constexpr (kTraced) ++traffic[implicit_edge_id(d, v, slot)];
    pos[i] = implicit_neighbor(d, v, slot);
  }
}

// Structure-based batched dispatch, shared by the xoshiro and Philox word
// sources: the implicit backend takes the arithmetic loop, regular
// power-of-two degrees take the shift path, regular degrees skip the
// offsets stream, everything else runs the two-stage prefetch pipeline.
template <bool kLazy, bool kTraced, class WordSource>
void dispatch_batched(const Graph& g, std::span<Vertex> positions,
                      WordSource& rng, std::uint64_t* traffic) {
  if (g.is_implicit()) {
    step_implicit<kLazy, kTraced>(g.implicit_desc(), positions, rng, traffic);
  } else if (g.is_regular() && g.degrees_all_pow2()) {
    step_batched_regular_pow2<kLazy, kTraced>(g.csr(), g.min_degree(),
                                              positions, rng, traffic);
  } else if (g.is_regular()) {
    step_batched_regular<kLazy, kTraced>(g.csr(), g.min_degree(), positions,
                                         rng, traffic);
  } else {
    step_batched<kLazy, kTraced>(g.csr(), positions, rng, traffic);
  }
}

template <bool kLazy, bool kTraced>
void dispatch(const Graph& g, std::span<Vertex> positions, Rng& rng,
              std::uint64_t* traffic, StepEngine engine) {
  if (engine == StepEngine::scalar_checked) {
    step_scalar<kLazy, kTraced>(g, positions, rng, traffic);
  } else if (engine == StepEngine::counter) {
    // Counter engine: ONE draw from the caller's serial stream keys a
    // Philox stream for the whole call; every per-agent word then comes
    // from the block-buffered SIMD refill. Trajectories stay a pure
    // function of the trial seed and the round's randomness is fully
    // addressable as (key, block index) — but they differ from the
    // batched/scalar trajectories, which is why this is an opt-in engine,
    // not a transparent fast path.
    PhiloxStream words(rng(), /*stream=*/0);
    dispatch_batched<kLazy, kTraced>(g, positions, words, traffic);
  } else {
    dispatch_batched<kLazy, kTraced>(g, positions, rng, traffic);
  }
}

// One shard's range of the sharded step: every walker owns its addressable
// draw chain, so execution order across shards is immaterial. Templated on
// the access policy like the serial kernels (CSR loads vs closed-form
// arithmetic, resolved once per call).
template <bool kLazy, class Access>
void step_range_sharded(const Access& acc, Vertex* pos, std::size_t begin,
                        std::size_t end, const ShardPlane& plane) {
  for (std::size_t i = begin; i < end; ++i) {
    const GraphRow row = acc.row(pos[i]);
    SlotDraws draws(plane, kShardPhaseWalk, static_cast<std::uint32_t>(i));
    std::uint32_t slot;
    if constexpr (kLazy) {
      if (!fused_lazy_slot(draws, row.deg, slot)) continue;
    } else {
      slot = word_below(draws, row.deg);
    }
    pos[i] = acc.pick(row, slot);
  }
}

}  // namespace

void step_walks_sharded(const Graph& g, std::span<Vertex> positions,
                        std::uint64_t trial_seed, std::uint64_t round,
                        Laziness lazy, std::uint32_t shards) {
  RUMOR_CHECK(g.min_degree() > 0);
  const ShardPlane plane(trial_seed, round);
  Vertex* pos = positions.data();
  const bool lazy_half = lazy == Laziness::half;
  with_graph_access(g, [&](const auto& acc) {
    shard_pool().parallel_for_ranges(
        positions.size(), shards,
        [&](std::size_t /*shard*/, std::size_t begin, std::size_t end) {
          if (lazy_half) {
            step_range_sharded<true>(acc, pos, begin, end, plane);
          } else {
            step_range_sharded<false>(acc, pos, begin, end, plane);
          }
        });
  });
}

void step_walks(const Graph& g, std::span<Vertex> positions, Rng& rng,
                Laziness lazy, std::uint64_t* edge_traffic,
                StepEngine engine) {
  // The single process-boundary validation the unchecked inner loops rely
  // on: a walk step is defined from every vertex, and every position a
  // simulator hands us was produced by placement or a previous step.
  RUMOR_CHECK(g.min_degree() > 0);
  const bool lazy_half = lazy == Laziness::half;
  if (edge_traffic != nullptr) {
    if (lazy_half) {
      dispatch<true, true>(g, positions, rng, edge_traffic, engine);
    } else {
      dispatch<false, true>(g, positions, rng, edge_traffic, engine);
    }
  } else {
    if (lazy_half) {
      dispatch<true, false>(g, positions, rng, nullptr, engine);
    } else {
      dispatch<false, false>(g, positions, rng, nullptr, engine);
    }
  }
}

}  // namespace rumor

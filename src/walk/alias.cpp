#include "walk/alias.hpp"

#include <vector>

#include "support/assert.hpp"

namespace rumor {

AliasSampler::AliasSampler(std::span<const double> weights) {
  RUMOR_REQUIRE(!weights.empty());
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    RUMOR_REQUIRE(w >= 0.0);
    total += w;
  }
  RUMOR_REQUIRE(total > 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Scale weights so the mean column holds probability 1.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Residual columns are (numerically) exactly 1.
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::size_t AliasSampler::sample(Rng& rng) const {
  const std::size_t column = rng.below(prob_.size());
  return rng.uniform01() < prob_[column] ? column : alias_[column];
}

}  // namespace rumor

// Vose's alias method for O(1) sampling from a fixed discrete distribution.
//
// Used to place agents by the random-walk stationary distribution
// π(v) = deg(v) / 2|E| (paper §3) in O(1) per agent after O(n) setup.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/rng.hpp"

namespace rumor {

class AliasSampler {
 public:
  // Weights must be non-negative with a positive sum.
  explicit AliasSampler(std::span<const double> weights);

  // Index in [0, size()) with probability weight[i] / sum(weights).
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;        // acceptance probability per column
  std::vector<std::uint32_t> alias_;  // fallback index per column
};

}  // namespace rumor

#include "walk/walk_stats.hpp"

#include "support/bitset.hpp"

namespace rumor {

std::uint64_t cover_time_once(const Graph& g, Vertex start, Rng& rng,
                              Laziness lazy, std::uint64_t cutoff) {
  RUMOR_REQUIRE(start < g.num_vertices());
  RUMOR_REQUIRE(cutoff > 0);
  DynamicBitset visited(g.num_vertices());
  visited.set(start);
  std::size_t seen = 1;
  Vertex pos = start;
  for (std::uint64_t t = 1; t <= cutoff; ++t) {
    pos = step_from(g, pos, rng, lazy);
    if (!visited.test(pos)) {
      visited.set(pos);
      if (++seen == g.num_vertices()) return t;
    }
  }
  return cutoff;
}

std::uint64_t hitting_time_once(const Graph& g, Vertex start, Vertex target,
                                Rng& rng, Laziness lazy,
                                std::uint64_t cutoff) {
  RUMOR_REQUIRE(start < g.num_vertices() && target < g.num_vertices());
  RUMOR_REQUIRE(cutoff > 0);
  if (start == target) return 0;
  Vertex pos = start;
  for (std::uint64_t t = 1; t <= cutoff; ++t) {
    pos = step_from(g, pos, rng, lazy);
    if (pos == target) return t;
  }
  return cutoff;
}

std::uint64_t meeting_time_once(const Graph& g, Vertex a, Vertex b, Rng& rng,
                                Laziness lazy, std::uint64_t cutoff) {
  RUMOR_REQUIRE(a < g.num_vertices() && b < g.num_vertices());
  RUMOR_REQUIRE(cutoff > 0);
  if (a == b) return 0;
  for (std::uint64_t t = 1; t <= cutoff; ++t) {
    a = step_from(g, a, rng, lazy);
    b = step_from(g, b, rng, lazy);
    if (a == b) return t;
  }
  return cutoff;
}

}  // namespace rumor

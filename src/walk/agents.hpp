// AgentSystem: the population of independent random walkers shared by
// visit-exchange, meet-exchange, and their variants.
//
// The system stores only positions; protocol state (who is informed) lives
// in the protocol simulators, because the two agent-based protocols track
// it differently. Movement is exposed both in bulk (step_all, which runs
// the batched walk kernel) and per agent (set_position + step_from), the
// latter for the coupled simulators of Sections 5/6 that dictate some steps
// from shared randomness.
//
// When constructed with a TrialArena the position array is the arena's
// reusable buffer (zero allocation in steady state) and the stationary
// placement's alias sampler is cached in the arena per graph.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"
#include "support/trial_arena.hpp"

namespace rumor {

class AliasSampler;

using Agent = std::uint32_t;

// Initial placement of agents (paper §3 uses `stationary`; the remark after
// Lemma 11 covers `one_per_vertex`).
enum class Placement {
  stationary,      // independent draws from π(v) = deg(v)/2|E|
  one_per_vertex,  // agent i starts at vertex i (count must equal n)
  uniform,         // independent uniform vertex draws
  at_vertex,       // all agents start at a designated vertex
};

// Walk laziness. `half` stays put with probability 1/2 each round — the
// paper's fix for bipartite periodicity in meet-exchange.
enum class Laziness { none, half };

// |A| = round(alpha * n), at least 1.
[[nodiscard]] std::size_t agent_count_for(Vertex n, double alpha);

// The alias sampler of the walk's stationary distribution π(v) =
// deg(v)/2|E|, cached in the arena per Graph::uid() so repeated trials on
// one graph build the O(n) table once. With no arena, `keepalive` owns the
// freshly built sampler (callers hold it for the sampler's lifetime).
// Shared by stationary placement and the dynamic-agent respawn path.
[[nodiscard]] const AliasSampler& stationary_sampler(
    const Graph& g, TrialArena* arena,
    std::shared_ptr<AliasSampler>& keepalive);

// One walk step from v: uniform neighbor, or stay put on the lazy coin.
// This is the per-agent primitive the coupling machinery dictates steps
// with; bulk movement goes through the batched kernel (walk/step_kernel.hpp)
// instead.
[[nodiscard]] inline Vertex step_from(const Graph& g, Vertex v, Rng& rng,
                                      Laziness lazy) {
  if (lazy == Laziness::half && rng.coin()) return v;
  return g.random_neighbor(v, rng);
}

class AgentSystem {
 public:
  // `anchor` is the start vertex for Placement::at_vertex (ignored
  // otherwise). Placement::one_per_vertex requires count == g.num_vertices().
  // A non-null `arena` lends the (reused) position buffer and placement
  // cache; the arena must outlive the system.
  AgentSystem(const Graph& g, std::size_t count, Placement placement,
              Rng& rng, Vertex anchor = 0, TrialArena* arena = nullptr);

  // Positions may live in a borrowed arena buffer; copies would alias it.
  AgentSystem(const AgentSystem&) = delete;
  AgentSystem& operator=(const AgentSystem&) = delete;

  [[nodiscard]] std::size_t count() const { return positions_->size(); }

  [[nodiscard]] Vertex position(Agent a) const {
    RUMOR_CHECK(a < positions_->size());
    return (*positions_)[a];
  }

  void set_position(Agent a, Vertex v) {
    RUMOR_CHECK(a < positions_->size());
    RUMOR_CHECK(v < graph_->num_vertices());
    (*positions_)[a] = v;
  }

  [[nodiscard]] std::span<const Vertex> positions() const {
    return *positions_;
  }

  // Mutable position array for the batched stepping kernel.
  [[nodiscard]] std::span<Vertex> positions_mut() { return *positions_; }

  // Moves every agent one independent step (agent order is the canonical
  // total order used by the paper's couplings: ascending agent id) via the
  // batched walk kernel.
  void step_all(Rng& rng, Laziness lazy);

  // Number of agents currently on each vertex (O(n + |A|)).
  [[nodiscard]] std::vector<std::uint32_t> occupancy() const;

  [[nodiscard]] const Graph& graph() const { return *graph_; }

 private:
  const Graph* graph_;
  std::vector<Vertex> owned_positions_;  // used when no arena is lent
  std::vector<Vertex>* positions_;
};

}  // namespace rumor

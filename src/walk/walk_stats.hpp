// Random-walk statistics: cover, hitting, and meeting times.
//
// These are the classical quantities the related work (§2) relates to
// meet-exchange broadcast times ([16]: T_meetx = O(meeting time · log n)),
// and they double as statistical tests of the walk substrate against known
// closed forms (e.g. cycle cover time n(n-1)/2).
#pragma once

#include <cstdint>

#include "walk/agents.hpp"

namespace rumor {

// Rounds for a single walk from `start` to visit every vertex; one sample.
// Returns cutoff if not covered by then (cutoff > 0).
[[nodiscard]] std::uint64_t cover_time_once(const Graph& g, Vertex start,
                                            Rng& rng, Laziness lazy,
                                            std::uint64_t cutoff);

// Rounds for a single walk from `start` to first reach `target`.
[[nodiscard]] std::uint64_t hitting_time_once(const Graph& g, Vertex start,
                                              Vertex target, Rng& rng,
                                              Laziness lazy,
                                              std::uint64_t cutoff);

// Rounds until two independent walks from a, b occupy the same vertex
// (checked after each synchronous step; 0 if a == b).
[[nodiscard]] std::uint64_t meeting_time_once(const Graph& g, Vertex a,
                                              Vertex b, Rng& rng,
                                              Laziness lazy,
                                              std::uint64_t cutoff);

}  // namespace rumor

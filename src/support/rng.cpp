#include "support/rng.hpp"

// Header-only by design (hot-path inlining); this translation unit exists so
// the library has a home for the module and to force the header to compile
// standalone.

namespace rumor {

static_assert(Rng::min() == 0);
static_assert(Rng::max() == 0xFFFFFFFFFFFFFFFFULL);

}  // namespace rumor

#include "support/csv.hpp"

#include "support/assert.hpp"

namespace rumor {

CsvWriter::CsvWriter(std::ostream& out, std::vector<std::string> header)
    : out_(out), columns_(header.size()) {
  RUMOR_REQUIRE(columns_ > 0);
  row(header);
  rows_ = 0;  // header does not count as a data row
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  RUMOR_REQUIRE(cells.size() == columns_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::escape(std::string_view field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace rumor

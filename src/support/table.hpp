// Aligned text tables for bench/example output.
//
// Collects rows of string cells and renders either a column-aligned plain
// table or GitHub-flavored markdown (used verbatim in EXPERIMENTS.md).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace rumor {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  [[nodiscard]] static std::string num(double value, int precision = 2);
  [[nodiscard]] static std::string num(std::uint64_t value);

  // The plain-format building blocks — one padded row (two-space
  // separators), and the dash rule for a width set. Shared between
  // render_plain and streaming writers (ScenarioTableStream) so the two
  // outputs cannot drift. A cell longer than its width bends only its
  // own row.
  static void emit_plain_row(std::ostream& out,
                             const std::vector<std::string>& cells,
                             const std::vector<std::size_t>& widths);
  [[nodiscard]] static std::string plain_rule(
      const std::vector<std::size_t>& widths);

  [[nodiscard]] std::string render_plain() const;
  [[nodiscard]] std::string render_markdown() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  [[nodiscard]] std::vector<std::size_t> widths() const;

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rumor

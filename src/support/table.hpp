// Aligned text tables for bench/example output.
//
// Collects rows of string cells and renders either a column-aligned plain
// table or GitHub-flavored markdown (used verbatim in EXPERIMENTS.md).
#pragma once

#include <string>
#include <vector>

namespace rumor {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  [[nodiscard]] static std::string num(double value, int precision = 2);
  [[nodiscard]] static std::string num(std::uint64_t value);

  [[nodiscard]] std::string render_plain() const;
  [[nodiscard]] std::string render_markdown() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  [[nodiscard]] std::vector<std::size_t> widths() const;

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rumor

// Random number generation substrate.
//
// All randomness in the library flows through rumor::Rng (xoshiro256++),
// seeded via SplitMix64 so that any 64-bit seed gives a well-mixed state.
// Trial seeds are derived with derive_seed(master, index) which is stable
// across platforms and independent of thread scheduling, making every
// experiment reproducible from a single master seed.
#pragma once

#include <cstdint>
#include <limits>

namespace rumor {

// SplitMix64: used for seeding and for stateless seed derivation.
// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
// generators" (OOPSLA 2014).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Stateless derivation of an independent stream seed from (master, index).
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t master,
                                                  std::uint64_t index) {
  std::uint64_t s = master ^ (0x6A09E667F3BCC909ULL + index * 0x9E3779B97F4A7C15ULL);
  std::uint64_t a = splitmix64(s);
  std::uint64_t b = splitmix64(s);
  return a ^ (b << 1 | b >> 63);
}

// xoshiro256++ by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0xD1B54A32D192ED03ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Unbiased uniform integer in [0, bound). Lemire's multiply-shift
  // rejection method; bound must be nonzero.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) {
    __extension__ using u128 = unsigned __int128;
    std::uint64_t x = (*this)();
    u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<u128>(x) * static_cast<u128>(bound);
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  [[nodiscard]] std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  // Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) { return uniform01() < p; }

  // Fair coin; one RNG draw per call (used on hot lazy-walk paths).
  [[nodiscard]] bool coin() { return ((*this)() >> 63) != 0; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace rumor

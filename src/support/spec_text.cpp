#include "support/spec_text.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace rumor::spec_text {

namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

bool is_identifier(std::string_view token) {
  if (token.empty()) return false;
  for (char c : token) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-')) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::optional<Call> parse_call(std::string_view text, std::string* error) {
  text = trim(text);
  Call call;
  const std::size_t open = text.find('(');
  if (open == std::string_view::npos) {
    if (!is_identifier(text)) {
      set_error(error, "expected `name` or `name(key=value,...)`, got \"" +
                           std::string(text) + "\"");
      return std::nullopt;
    }
    call.head = std::string(text);
    return call;
  }
  if (text.back() != ')') {
    set_error(error, "missing closing `)` in \"" + std::string(text) + "\"");
    return std::nullopt;
  }
  const std::string_view head = trim(text.substr(0, open));
  if (!is_identifier(head)) {
    set_error(error,
              "bad spec name \"" + std::string(head) + "\" in \"" +
                  std::string(text) + "\"");
    return std::nullopt;
  }
  call.head = std::string(head);
  std::string_view args = text.substr(open + 1, text.size() - open - 2);
  if (trim(args).empty()) return call;
  while (!args.empty()) {
    const std::size_t comma = args.find(',');
    const std::string_view item =
        trim(comma == std::string_view::npos ? args : args.substr(0, comma));
    args = comma == std::string_view::npos ? std::string_view{}
                                           : args.substr(comma + 1);
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      set_error(error, "expected key=value, got \"" + std::string(item) +
                           "\" in \"" + std::string(text) + "\"");
      return std::nullopt;
    }
    const std::string_view key = trim(item.substr(0, eq));
    const std::string_view value = trim(item.substr(eq + 1));
    if (key.empty() || value.empty()) {
      set_error(error, "empty key or value in \"" + std::string(item) + "\"");
      return std::nullopt;
    }
    call.args.push_back({std::string(key), std::string(value)});
  }
  return call;
}

void KeyValWriter::add(std::string_view key, double value) {
  add(key, std::string_view(fmt_double(value)));
}

std::string KeyValWriter::str() const {
  std::string out;
  for (const auto& [key, value] : pairs_) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

std::string fmt_double(double value) {
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::optional<double> parse_double(std::string_view text) {
  const std::string token(trim(text));
  if (token.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  const std::string token(trim(text));
  if (token.empty() || token.front() == '-' || token.front() == '+') {
    return std::nullopt;
  }
  char* end = nullptr;
  errno = 0;
  const std::uint64_t value = std::strtoull(token.c_str(), &end, 10);
  // ERANGE check: strtoull silently clamps overflow to UINT64_MAX, which
  // would turn a typo'd literal into a different (huge) value.
  if (end != token.c_str() + token.size() || errno == ERANGE) {
    return std::nullopt;
  }
  return value;
}

std::optional<bool> parse_bool(std::string_view text) {
  const std::string_view token = trim(text);
  if (token == "on" || token == "true" || token == "1") return true;
  if (token == "off" || token == "false" || token == "0") return false;
  return std::nullopt;
}

}  // namespace rumor::spec_text

#include "support/spec_text.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace rumor::spec_text {

namespace {

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

bool is_identifier(std::string_view token) {
  if (token.empty()) return false;
  for (char c : token) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-')) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::size_t find_top_level_comma(std::string_view text) {
  int depth = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '{') {
      ++depth;
    } else if (text[i] == '}' && depth > 0) {
      --depth;
    } else if (text[i] == ',' && depth == 0) {
      return i;
    }
  }
  return std::string_view::npos;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::optional<Call> parse_call(std::string_view text, std::string* error) {
  text = trim(text);
  Call call;
  const std::size_t open = text.find('(');
  if (open == std::string_view::npos) {
    if (!is_identifier(text)) {
      set_error(error, "expected `name` or `name(key=value,...)`, got \"" +
                           std::string(text) + "\"");
      return std::nullopt;
    }
    call.head = std::string(text);
    return call;
  }
  if (text.back() != ')') {
    set_error(error, "missing closing `)` in \"" + std::string(text) + "\"");
    return std::nullopt;
  }
  const std::string_view head = trim(text.substr(0, open));
  if (!is_identifier(head)) {
    set_error(error,
              "bad spec name \"" + std::string(head) + "\" in \"" +
                  std::string(text) + "\"");
    return std::nullopt;
  }
  call.head = std::string(head);
  std::string_view args = text.substr(open + 1, text.size() - open - 2);
  if (trim(args).empty()) return call;
  while (!args.empty()) {
    const std::size_t comma = find_top_level_comma(args);
    const std::string_view item =
        trim(comma == std::string_view::npos ? args : args.substr(0, comma));
    args = comma == std::string_view::npos ? std::string_view{}
                                           : args.substr(comma + 1);
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      set_error(error, "expected key=value, got \"" + std::string(item) +
                           "\" in \"" + std::string(text) + "\"");
      return std::nullopt;
    }
    const std::string_view key = trim(item.substr(0, eq));
    const std::string_view value = trim(item.substr(eq + 1));
    if (key.empty() || value.empty()) {
      set_error(error, "empty key or value in \"" + std::string(item) + "\"");
      return std::nullopt;
    }
    call.args.push_back({std::string(key), std::string(value)});
  }
  return call;
}

void KeyValWriter::add(std::string_view key, double value) {
  add(key, std::string_view(fmt_double(value)));
}

std::string KeyValWriter::str() const {
  std::string out;
  for (const auto& [key, value] : pairs_) {
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

std::string fmt_double(double value) {
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::optional<double> parse_double(std::string_view text) {
  const std::string token(trim(text));
  if (token.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  const std::string token(trim(text));
  if (token.empty() || token.front() == '-' || token.front() == '+') {
    return std::nullopt;
  }
  char* end = nullptr;
  errno = 0;
  const std::uint64_t value = std::strtoull(token.c_str(), &end, 10);
  // ERANGE check: strtoull silently clamps overflow to UINT64_MAX, which
  // would turn a typo'd literal into a different (huge) value.
  if (end != token.c_str() + token.size() || errno == ERANGE) {
    return std::nullopt;
  }
  return value;
}

std::optional<bool> parse_bool(std::string_view text) {
  const std::string_view token = trim(text);
  if (token == "on" || token == "true" || token == "1") return true;
  if (token == "off" || token == "false" || token == "0") return false;
  return std::nullopt;
}

// ---- Sweep values ------------------------------------------------------

bool is_sweep_value(std::string_view text) {
  text = trim(text);
  return text.find("..") != std::string_view::npos ||
         (!text.empty() && text.front() == '{');
}

std::optional<std::uint64_t> parse_magnitude(std::string_view text) {
  text = trim(text);
  std::uint64_t scale = 1;
  if (!text.empty() && (text.back() == 'k' || text.back() == 'm')) {
    scale = text.back() == 'k' ? 1024ULL : 1024ULL * 1024ULL;
    text.remove_suffix(1);
  }
  const auto base = parse_u64(text);
  if (!base) return std::nullopt;
  if (scale != 1 && *base > UINT64_MAX / scale) return std::nullopt;
  return *base * scale;
}

std::string fmt_magnitude(std::uint64_t value) {
  constexpr std::uint64_t kMega = 1024ULL * 1024ULL;
  if (value != 0 && value % kMega == 0) {
    return std::to_string(value / kMega) + "m";
  }
  if (value != 0 && value % 1024ULL == 0) {
    return std::to_string(value / 1024ULL) + "k";
  }
  return std::to_string(value);
}

namespace {

std::optional<std::vector<std::string>> expand_value_list(
    std::string_view body, std::string_view original, std::string* error) {
  std::vector<std::string> values;
  while (true) {
    const std::size_t comma = body.find(',');
    const std::string_view item =
        trim(comma == std::string_view::npos ? body : body.substr(0, comma));
    if (item.empty()) {
      set_error(error, "empty item in value list \"" + std::string(original) +
                           "\"");
      return std::nullopt;
    }
    values.emplace_back(item);
    if (comma == std::string_view::npos) break;
    body.remove_prefix(comma + 1);
  }
  return values;
}

std::optional<std::vector<std::string>> expand_range(
    std::string_view text, std::string_view original, std::string* error) {
  // lo..hi with an optional :factor=N (geometric) or :step=N (arithmetic)
  // tail; geometric x2 is the default.
  bool geometric = true;
  std::uint64_t stride = 2;
  const std::size_t colon = text.find(':');
  if (colon != std::string_view::npos) {
    const std::string_view tail = text.substr(colon + 1);
    const std::size_t eq = tail.find('=');
    const std::string_view key =
        eq == std::string_view::npos ? tail : trim(tail.substr(0, eq));
    const auto v = eq == std::string_view::npos
                       ? std::nullopt
                       : parse_magnitude(tail.substr(eq + 1));
    if (key == "factor" && v && *v >= 2) {
      stride = *v;
    } else if (key == "step" && v && *v >= 1) {
      geometric = false;
      stride = *v;
    } else {
      set_error(error, "bad range modifier \"" + std::string(tail) +
                           "\" in \"" + std::string(original) +
                           "\" (want factor=N>=2 or step=N>=1)");
      return std::nullopt;
    }
    text = text.substr(0, colon);
  }
  const std::size_t dots = text.find("..");
  const auto lo = parse_magnitude(text.substr(0, dots));
  const auto hi = parse_magnitude(text.substr(dots + 2));
  if (!lo || !hi) {
    set_error(error, "bad range endpoints in \"" + std::string(original) +
                         "\" (want <lo>..<hi>, integers with optional k/m "
                         "suffix)");
    return std::nullopt;
  }
  if (*lo > *hi) {
    set_error(error, "inverted range " + std::to_string(*lo) + ".." +
                         std::to_string(*hi) + " in \"" +
                         std::string(original) + "\"");
    return std::nullopt;
  }
  std::vector<std::string> values;
  for (std::uint64_t v = *lo;;) {
    values.push_back(std::to_string(v));
    if (values.size() > kMaxSweepPoints) {
      set_error(error, "range \"" + std::string(original) + "\" expands to "
                           "more than " + std::to_string(kMaxSweepPoints) +
                           " points");
      return std::nullopt;
    }
    if (geometric) {
      // Stop when the next point would pass hi (or overflow); lo=0 never
      // grows, so it is a single-point range.
      if (v == 0 || v > *hi / stride) break;
      v *= stride;
    } else {
      if (*hi - v < stride) break;
      v += stride;
    }
  }
  return values;
}

}  // namespace

std::optional<std::vector<std::string>> expand_sweep_value(
    std::string_view text, std::string* error) {
  const std::string_view original = text;
  text = trim(text);
  if (!text.empty() && text.front() == '{') {
    if (text.back() != '}' || text.size() < 3 ||
        trim(text.substr(1, text.size() - 2)).empty()) {
      set_error(error, "bad value list \"" + std::string(original) +
                           "\" (want {v,v,...})");
      return std::nullopt;
    }
    return expand_value_list(text.substr(1, text.size() - 2), original,
                             error);
  }
  if (text.find("..") != std::string_view::npos) {
    return expand_range(text, original, error);
  }
  // A scalar "expands" to itself so callers can treat every value
  // uniformly.
  return std::vector<std::string>{std::string(text)};
}

}  // namespace rumor::spec_text

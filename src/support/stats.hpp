// Descriptive statistics over trial samples.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace rumor {

// Five-number-plus summary of a sample. Produced once per (experiment point,
// protocol) from R trial broadcast times.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;   // sample standard deviation (n-1 denominator)
  double stderr_mean = 0.0;
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;

  // Computes the summary; an empty sample yields an all-zero Summary.
  [[nodiscard]] static Summary of(std::span<const double> samples);
};

// Linear-interpolated quantile (type-7, numpy default); q in [0, 1].
// `sorted` must be ascending and non-empty.
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

[[nodiscard]] double mean_of(std::span<const double> samples);
[[nodiscard]] double stddev_of(std::span<const double> samples);

// Fixed-width histogram used by examples for traffic-fairness reporting.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_[bin]; }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;

  // Multi-line ASCII rendering (one row per bin, bar scaled to max count).
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace rumor

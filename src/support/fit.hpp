// Growth-law fitting for scaling experiments.
//
// The paper's claims are asymptotic: T = Θ(log n), Θ(n), Θ(n log n),
// Θ(n^{2/3}), ... We observe T(n) at a geometric range of n and decide which
// law fits best. Two primitives:
//   * fit_power     — least squares on (ln n, ln T): T ≈ a·n^b
//   * fit_log_law   — least squares on (ln n, T):    T ≈ a·ln n + c
// plus a model-selection helper that compares the candidate laws the paper
// uses by R² on the appropriate transformed axes.
#pragma once

#include <span>
#include <string>

namespace rumor {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  // 1 - SS_res/SS_tot on the fitted axes
};

// Ordinary least squares of y against x. Sizes must match; needs >= 2 points.
[[nodiscard]] LinearFit fit_linear(std::span<const double> x,
                                   std::span<const double> y);

// T ≈ a·n^b. Returns slope=b, intercept=ln a, fitted on (ln n, ln T).
// All inputs must be strictly positive.
[[nodiscard]] LinearFit fit_power(std::span<const double> n,
                                  std::span<const double> t);

// T ≈ a·ln n + c. Returns slope=a, intercept=c, fitted on (ln n, T).
[[nodiscard]] LinearFit fit_log_law(std::span<const double> n,
                                    std::span<const double> t);

// The growth laws appearing in the paper's claims.
enum class GrowthLaw {
  logarithmic,   // Θ(log n)
  power,         // Θ(n^b) for fitted b (includes linear b≈1)
  linearithmic,  // Θ(n log n)
};

struct LawVerdict {
  GrowthLaw best = GrowthLaw::power;
  double power_exponent = 0.0;  // b from the power fit (always reported)
  double r2_log = 0.0;          // R² of T vs ln n
  double r2_power = 0.0;        // R² of ln T vs ln n
  double r2_nlogn = 0.0;        // R² of T vs n·ln n (through-origin slope fit)
  std::string describe() const;
};

// Classifies measured growth. Heuristic, intended for the claim-check lines
// in bench output: a power fit with exponent < 0.15 and a good log-law fit
// is reported as logarithmic; exponent within 0.15 of 1 with a good
// n·log n fit is reported as linearithmic when that fit dominates.
[[nodiscard]] LawVerdict classify_growth(std::span<const double> n,
                                         std::span<const double> t);

}  // namespace rumor

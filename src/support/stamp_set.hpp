// StampSet: membership set over [0, n) with O(1) clear.
//
// Each element stores the "epoch" at which it was last inserted; advancing
// the epoch empties the set without touching memory. Protocol simulators use
// one epoch per round (e.g. "which vertices hold a previously-informed agent
// this round" in meet-exchange).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace rumor {

class StampSet {
 public:
  StampSet() = default;
  explicit StampSet(std::size_t size) : stamps_(size, 0) {}

  [[nodiscard]] std::size_t size() const { return stamps_.size(); }

  // Re-targets the set to cover [0, n) and empties it; O(1) when capacity
  // suffices (arena reuse across trials), grows otherwise.
  void reset(std::size_t n) {
    if (n > stamps_.size()) {
      stamps_.assign(n, 0);
      epoch_ = 0;
    }
    advance();
  }

  // Empties the set. O(1) except when the 64-bit epoch wraps (never in
  // practice: 2^64 rounds).
  void advance() {
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: do the (amortized-free) hard reset
      std::fill(stamps_.begin(), stamps_.end(), std::uint64_t{0});
      epoch_ = 1;
    }
  }

  void insert(std::size_t i) {
    RUMOR_CHECK(i < stamps_.size());
    stamps_[i] = epoch_;
  }

  [[nodiscard]] bool contains(std::size_t i) const {
    RUMOR_CHECK(i < stamps_.size());
    return stamps_[i] == epoch_;
  }

 private:
  std::vector<std::uint64_t> stamps_;
  std::uint64_t epoch_ = 1;
};

}  // namespace rumor

// TrialArena: reusable per-worker scratch state for simulation trials.
//
// Every protocol trial needs the same O(n + m) working set: per-vertex
// inform rounds, per-vertex counters, agent orderings, frontier lists.
// Allocating and zeroing that state per trial dominates wall-clock once a
// single round is cheap, so the trial runner keeps one arena per worker
// thread and hands it to every trial that worker executes. Epoch-stamped
// members reset in O(1); plain vectors are clear()ed, which keeps their
// capacity, so a steady-state trial performs zero heap allocations.
//
// An arena serves one trial at a time (each worker owns one); simulators
// that are constructed without an arena fall back to a privately owned one,
// preserving the allocate-per-run behavior of the original API.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "support/epoch_array.hpp"
#include "support/stamp_set.hpp"

namespace rumor {

// Transmission-model fields (core/transmission) materialized per (graph,
// parameters) binding: the per-vertex receive probabilities, the CSR-slot
// aligned per-edge copies, and the blocked set. Cached by graph uid +
// parameters so steady-state trials on one graph rebuild nothing; vectors
// keep their capacity across rebinds, so rebinding allocates only at a new
// high-water mark.
struct TransmissionScratch {
  std::uint64_t graph_uid = 0;  // 0 = empty cache
  double tp = 1.0;
  double exponent = 0.0;
  double block_fraction = 0.0;
  bool degree_scaled = false;
  std::vector<float> vertex_success;   // n entries
  std::vector<float> edge_success;     // 2m entries, CSR-slot aligned
  // Implicit-backend graphs have no CSR offsets array; when a traced bind
  // needs the slot-aligned edge field, the degree prefix sums are
  // materialized here (n + 1 entries) so attempt_slot keeps its one-load
  // indexing on every backend.
  std::vector<std::uint32_t> implicit_offsets;
  // Field extrema, recorded at build time: a constant sub-1 field
  // (min == max < 1) is what licenses the geometric skip-sampling mode.
  float field_min = 1.0f;
  float field_max = 1.0f;
  std::vector<std::uint8_t> blocked;   // n entries (1 = quarantined)
  std::uint32_t blocked_count = 0;
  std::vector<std::uint32_t> order;    // degree-sort scratch for blocking
};

struct TrialArena {
  // Per-vertex / per-agent inform rounds (default = kNeverInformed).
  EpochArray<std::uint32_t> vertex_inform_round;
  EpochArray<std::uint32_t> agent_inform_round;
  // Per-vertex informed-neighbor counters for push/push-pull saturation
  // retirement (default = 0).
  EpochArray<std::uint32_t> informed_nbr_count;
  // Generic vertex membership: meet-exchange's per-round "informed agent
  // stands here" marks, push-pull's and hybrid's ever-in-frontier marks.
  StampSet vertex_marks;
  // Generic agent membership: the dynamic-agent simulator's born-this-round
  // marks (advance()d per round).
  StampSet agent_marks;
  // Per-agent liveness for the dynamic-agent simulator (default = alive).
  EpochArray<std::uint8_t> agent_alive;

  // Agent-order permutation and its inverse, epoch-reset to the identity:
  // an untouched slot reads as the sentinel default and is interpreted as
  // "order[i] == i" by the owning simulator.
  EpochArray<std::uint32_t> agent_order;
  EpochArray<std::uint32_t> order_index_of;

  // Reusable plain buffers (clear() keeps capacity across trials).
  std::vector<std::uint32_t> agent_positions;
  std::vector<std::uint32_t> active;    // push/push-pull caller list
  std::vector<std::uint32_t> frontier;  // push-pull puller list
  // Calendar buckets for push's geometric skip-sampling path: a 64-round
  // wake ring plus a far-future overflow chain, matured back into the ring
  // every 64 rounds. Each ring bucket is a small flat slot array (walked
  // with plain sequential loads at its round) backed by an intrusive
  // linked-list spill for bursts; the far chain is list-only. Every caller
  // has at most one outstanding wake, so the lists thread through
  // per-vertex arrays — per-trial reset writes the 65 heads plus 64
  // counts, and steady-state trials allocate nothing.
  std::vector<std::uint32_t> wake_slots;  // 64 buckets x capacity, flat
  std::vector<std::uint32_t> wake_counts;  // per-bucket slot occupancy
  std::vector<std::uint32_t> wake_heads;  // 64 spill chains + 1 far head
  std::vector<std::uint32_t> wake_next;   // per-vertex chain link
  std::vector<std::uint64_t> wake_round;  // per-vertex wake round (far only)
  std::vector<std::uint32_t> curve;     // informed-curve trace
  std::vector<std::uint64_t> edge_traffic;  // per-edge trace counters

  // Multi-rumor scratch: per-vertex / per-agent rumor bitmasks, their
  // round-start snapshots, and the (≤ 64-entry) per-rumor bookkeeping.
  std::vector<std::uint64_t> vertex_rumors;
  std::vector<std::uint64_t> vertex_rumors_before;
  std::vector<std::uint64_t> agent_rumors;
  std::vector<std::uint64_t> agent_rumors_before;
  std::vector<std::uint32_t> rumor_have_count;
  std::vector<std::uint64_t> rumor_completion;

  // Per-shard output segments for the frontier-sharded round kernels:
  // shard s filters survivors into shard_scratch[s].survivors and appends
  // its delivery candidates to shard_scratch[s].candidates; the serial
  // shard-major merge then drains them in slot order. Sized (resize, then
  // per-round clear()) by the sharded simulators; capacity persists across
  // rounds and trials, so steady-state rounds allocate nothing.
  struct ShardScratch {
    std::vector<std::uint32_t> survivors;
    std::vector<std::uint32_t> candidates;
  };
  std::vector<ShardScratch> shard_scratch;

  // Transmission-model field cache (see core/transmission).
  TransmissionScratch transmission;

  // Cache for expensive per-graph placement structures (the stationary
  // alias sampler). Keyed by Graph::uid() so a rebuilt graph at a recycled
  // address cannot alias a stale cache. Opaque here to keep support/ free
  // of walk-layer dependencies.
  std::uint64_t placement_cache_key = 0;  // 0 = empty
  std::shared_ptr<void> placement_cache;
};

// View over the arena's agent-order permutation and its inverse, decoding
// the identity-default sentinel (an untouched slot i reads as "order[i] ==
// i"). Shared by the simulators that maintain an informed-prefix partition
// (visit-exchange, meet-exchange, hybrid).
class AgentOrderView {
 public:
  // Re-targets both arrays to the identity permutation over [0, count).
  void reset(TrialArena& arena, std::size_t count) {
    order_ = &arena.agent_order;
    inverse_ = &arena.order_index_of;
    order_->reset(count, kIdentitySlot);
    inverse_->reset(count, kIdentitySlot);
  }

  [[nodiscard]] std::uint32_t at(std::size_t idx) const {
    const std::uint32_t raw = order_->get(idx);
    return raw == kIdentitySlot ? static_cast<std::uint32_t>(idx) : raw;
  }

  [[nodiscard]] std::uint32_t index_of(std::uint32_t element) const {
    const std::uint32_t raw = inverse_->get(element);
    return raw == kIdentitySlot ? element : raw;
  }

  // Swaps the permutation entries at positions i and j.
  void swap(std::size_t i, std::size_t j) {
    const std::uint32_t a = at(i);
    const std::uint32_t b = at(j);
    order_->set(j, a);
    order_->set(i, b);
    inverse_->set(a, static_cast<std::uint32_t>(j));
    inverse_->set(b, static_cast<std::uint32_t>(i));
  }

 private:
  static constexpr std::uint32_t kIdentitySlot = 0xFFFFFFFFu;

  EpochArray<std::uint32_t>* order_ = nullptr;
  EpochArray<std::uint32_t>* inverse_ = nullptr;
};

}  // namespace rumor

#include "support/philox.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#if defined(__GNUC__) || defined(__clang__)
// Runtime-dispatched AVX2 kernels below: the TU is compiled for the
// x86-64 baseline, and the wide variants opt in per-function via the
// target attribute, selected once per process with
// __builtin_cpu_supports. Output is bit-identical across every path.
#include <immintrin.h>
#define RUMOR_PHILOX_AVX2_DISPATCH 1
#endif
#endif

namespace rumor {

// Known-answer vectors from the Random123 reference distribution
// (kat_vectors, philox4x32 rows, R=10) — compile-time proof that the round
// function, multipliers, and key schedule match the published generator.
static_assert(philox4x32({0u, 0u, 0u, 0u}, 0u, 0u) ==
              std::array<std::uint32_t, 4>{0x6627E8D5u, 0xE169C58Du,
                                           0xBC57AC4Cu, 0x9B00DBD8u});
static_assert(philox4x32({0xFFFFFFFFu, 0xFFFFFFFFu, 0xFFFFFFFFu,
                          0xFFFFFFFFu},
                         0xFFFFFFFFu, 0xFFFFFFFFu) ==
              std::array<std::uint32_t, 4>{0x408F276Du, 0x41C83B0Eu,
                                           0xA20BC7C6u, 0x6D5451FDu});
static_assert(philox4x32({0x243F6A88u, 0x85A308D3u, 0x13198A2Eu,
                          0x03707344u},
                         0xA4093822u, 0x299F31D0u) ==
              std::array<std::uint32_t, 4>{0xD16CFE09u, 0x94FDCCEBu,
                                           0x5001E420u, 0x24126EA1u});

namespace {

constexpr std::size_t kBufWords = PhiloxStream::kBufWords;

// Scalar refill core: four-blocks-per-group structure mirroring the SIMD
// paths, in plain integer arithmetic — bit-identical output, and the
// fallback for non-x86 targets.
[[maybe_unused]] void refill_scalar(std::uint32_t* buf, std::uint64_t block,
                                    std::uint32_t stream, std::uint32_t key0,
                                    std::uint32_t key1) {
  constexpr std::size_t kLanes = 4;
  constexpr std::size_t kGroups = kBufWords / (4 * kLanes);
  for (std::size_t g = 0; g < kGroups; ++g) {
    std::uint32_t x0[kLanes], x1[kLanes], x2[kLanes], x3[kLanes];
    std::uint32_t k0[kLanes], k1[kLanes];
    for (std::size_t l = 0; l < kLanes; ++l) {
      const std::uint64_t b = block + g * kLanes + l;
      x0[l] = static_cast<std::uint32_t>(b);
      x1[l] = static_cast<std::uint32_t>(b >> 32);
      x2[l] = stream;
      x3[l] = 0;
      k0[l] = key0;
      k1[l] = key1;
    }
    for (int round = 0; round < 10; ++round) {
      for (std::size_t l = 0; l < kLanes; ++l) {
        const std::uint64_t p0 = std::uint64_t{kPhiloxM0} * x0[l];
        const std::uint64_t p1 = std::uint64_t{kPhiloxM1} * x2[l];
        const std::uint32_t y0 =
            static_cast<std::uint32_t>(p1 >> 32) ^ x1[l] ^ k0[l];
        const std::uint32_t y1 = static_cast<std::uint32_t>(p1);
        const std::uint32_t y2 =
            static_cast<std::uint32_t>(p0 >> 32) ^ x3[l] ^ k1[l];
        const std::uint32_t y3 = static_cast<std::uint32_t>(p0);
        x0[l] = y0;
        x1[l] = y1;
        x2[l] = y2;
        x3[l] = y3;
        k0[l] += kPhiloxW0;
        k1[l] += kPhiloxW1;
      }
    }
    for (std::size_t l = 0; l < kLanes; ++l) {
      const std::size_t at = (g * kLanes + l) * 4;
      buf[at + 0] = x0[l];
      buf[at + 1] = x1[l];
      buf[at + 2] = x2[l];
      buf[at + 3] = x3[l];
    }
  }
}

#if defined(__SSE2__)

// Full 4-lane 32x32->64 multiply from the even-lane pmuludq primitive:
// multiply lanes {0,2} directly and lanes {1,3} after a 32-bit shift, then
// interleave the half-products back into lane order.
struct WideProduct {
  __m128i lo;
  __m128i hi;
};

inline WideProduct mul_wide_u32(__m128i x, __m128i m) {
  const __m128i even = _mm_mul_epu32(x, m);                      // lanes 0,2
  const __m128i odd = _mm_mul_epu32(_mm_srli_epi64(x, 32), m);   // lanes 1,3
  // even as u32 = [lo0 hi0 lo2 hi2], odd = [lo1 hi1 lo3 hi3].
  const __m128i lo02_13 = _mm_castps_si128(_mm_shuffle_ps(
      _mm_castsi128_ps(even), _mm_castsi128_ps(odd), _MM_SHUFFLE(2, 0, 2, 0)));
  const __m128i hi02_13 = _mm_castps_si128(_mm_shuffle_ps(
      _mm_castsi128_ps(even), _mm_castsi128_ps(odd), _MM_SHUFFLE(3, 1, 3, 1)));
  return {_mm_shuffle_epi32(lo02_13, _MM_SHUFFLE(3, 1, 2, 0)),
          _mm_shuffle_epi32(hi02_13, _MM_SHUFFLE(3, 1, 2, 0))};
}

// Four blocks per iteration in SoA registers; pmuludq is the widening
// multiply Philox is built around, so the whole round function is
// branch-free SSE2 (the x86-64 baseline).
void refill_sse2(std::uint32_t* buf, std::uint64_t block, std::uint32_t stream,
                 std::uint32_t key0, std::uint32_t key1) {
  constexpr std::size_t kLanes = 4;
  constexpr std::size_t kGroups = kBufWords / (4 * kLanes);
  const __m128i m0 = _mm_set1_epi32(static_cast<int>(kPhiloxM0));
  const __m128i m1 = _mm_set1_epi32(static_cast<int>(kPhiloxM1));
  const __m128i w0 = _mm_set1_epi32(static_cast<int>(kPhiloxW0));
  const __m128i w1 = _mm_set1_epi32(static_cast<int>(kPhiloxW1));
  for (std::size_t g = 0; g < kGroups; ++g) {
    const std::uint64_t b = block + g * kLanes;
    __m128i x0 = _mm_set_epi32(static_cast<int>(b + 3), static_cast<int>(b + 2),
                               static_cast<int>(b + 1), static_cast<int>(b));
    __m128i x1 = _mm_set1_epi32(static_cast<int>(b >> 32));
    // Lane counters b..b+3 share the same high word unless the low word
    // carries inside the group; groups are 4-aligned only when block_ is,
    // so handle the general case.
    if (static_cast<std::uint32_t>(b) > static_cast<std::uint32_t>(b + 3)) {
      x1 = _mm_set_epi32(
          static_cast<int>((b + 3) >> 32), static_cast<int>((b + 2) >> 32),
          static_cast<int>((b + 1) >> 32), static_cast<int>(b >> 32));
    }
    __m128i x2 = _mm_set1_epi32(static_cast<int>(stream));
    __m128i x3 = _mm_setzero_si128();
    __m128i k0 = _mm_set1_epi32(static_cast<int>(key0));
    __m128i k1 = _mm_set1_epi32(static_cast<int>(key1));
    for (int round = 0; round < 10; ++round) {
      const WideProduct p0 = mul_wide_u32(x0, m0);
      const WideProduct p1 = mul_wide_u32(x2, m1);
      const __m128i y0 = _mm_xor_si128(_mm_xor_si128(p1.hi, x1), k0);
      const __m128i y2 = _mm_xor_si128(_mm_xor_si128(p0.hi, x3), k1);
      x0 = y0;
      x1 = p1.lo;
      x2 = y2;
      x3 = p0.lo;
      k0 = _mm_add_epi32(k0, w0);
      k1 = _mm_add_epi32(k1, w1);
    }
    // Transpose SoA lanes back to block-sequential AoS order so the stream
    // reads exactly as if blocks were generated one at a time.
    const __m128i t0 = _mm_unpacklo_epi32(x0, x1);
    const __m128i t1 = _mm_unpacklo_epi32(x2, x3);
    const __m128i t2 = _mm_unpackhi_epi32(x0, x1);
    const __m128i t3 = _mm_unpackhi_epi32(x2, x3);
    auto* out = reinterpret_cast<__m128i*>(buf + g * kLanes * 4);
    _mm_store_si128(out + 0, _mm_unpacklo_epi64(t0, t1));
    _mm_store_si128(out + 1, _mm_unpackhi_epi64(t0, t1));
    _mm_store_si128(out + 2, _mm_unpacklo_epi64(t2, t3));
    _mm_store_si128(out + 3, _mm_unpackhi_epi64(t2, t3));
  }
}

#endif  // __SSE2__

#if defined(RUMOR_PHILOX_AVX2_DISPATCH)

// mul_wide_u32, widened to eight lanes: the 128-bit shuffle idioms apply
// per 256-bit half-lane, so the SSE2 interleave pattern carries over
// unchanged.
__attribute__((target("avx2"))) inline void mul_wide_u32_avx2(__m256i x,
                                                              __m256i m,
                                                              __m256i* lo,
                                                              __m256i* hi) {
  const __m256i even = _mm256_mul_epu32(x, m);
  const __m256i odd = _mm256_mul_epu32(_mm256_srli_epi64(x, 32), m);
  const __m256i lo_pairs = _mm256_castps_si256(
      _mm256_shuffle_ps(_mm256_castsi256_ps(even), _mm256_castsi256_ps(odd),
                        _MM_SHUFFLE(2, 0, 2, 0)));
  const __m256i hi_pairs = _mm256_castps_si256(
      _mm256_shuffle_ps(_mm256_castsi256_ps(even), _mm256_castsi256_ps(odd),
                        _MM_SHUFFLE(3, 1, 3, 1)));
  *lo = _mm256_shuffle_epi32(lo_pairs, _MM_SHUFFLE(3, 1, 2, 0));
  *hi = _mm256_shuffle_epi32(hi_pairs, _MM_SHUFFLE(3, 1, 2, 0));
}

// Eight blocks per iteration; bit-identical to refill_sse2 / refill_scalar.
__attribute__((target("avx2"))) void refill_avx2(std::uint32_t* buf,
                                                 std::uint64_t block,
                                                 std::uint32_t stream,
                                                 std::uint32_t key0,
                                                 std::uint32_t key1) {
  constexpr std::size_t kLanes = 8;
  constexpr std::size_t kGroups = kBufWords / (4 * kLanes);
  const __m256i m0 = _mm256_set1_epi32(static_cast<int>(kPhiloxM0));
  const __m256i m1 = _mm256_set1_epi32(static_cast<int>(kPhiloxM1));
  const __m256i w0 = _mm256_set1_epi32(static_cast<int>(kPhiloxW0));
  const __m256i w1 = _mm256_set1_epi32(static_cast<int>(kPhiloxW1));
  for (std::size_t g = 0; g < kGroups; ++g) {
    const std::uint64_t b = block + g * kLanes;
    __m256i x0 = _mm256_set_epi32(
        static_cast<int>(b + 7), static_cast<int>(b + 6),
        static_cast<int>(b + 5), static_cast<int>(b + 4),
        static_cast<int>(b + 3), static_cast<int>(b + 2),
        static_cast<int>(b + 1), static_cast<int>(b));
    __m256i x1 = _mm256_set1_epi32(static_cast<int>(b >> 32));
    if (static_cast<std::uint32_t>(b) > static_cast<std::uint32_t>(b + 7)) {
      x1 = _mm256_set_epi32(
          static_cast<int>((b + 7) >> 32), static_cast<int>((b + 6) >> 32),
          static_cast<int>((b + 5) >> 32), static_cast<int>((b + 4) >> 32),
          static_cast<int>((b + 3) >> 32), static_cast<int>((b + 2) >> 32),
          static_cast<int>((b + 1) >> 32), static_cast<int>(b >> 32));
    }
    __m256i x2 = _mm256_set1_epi32(static_cast<int>(stream));
    __m256i x3 = _mm256_setzero_si256();
    __m256i k0 = _mm256_set1_epi32(static_cast<int>(key0));
    __m256i k1 = _mm256_set1_epi32(static_cast<int>(key1));
    for (int round = 0; round < 10; ++round) {
      __m256i p0_lo, p0_hi, p1_lo, p1_hi;
      mul_wide_u32_avx2(x0, m0, &p0_lo, &p0_hi);
      mul_wide_u32_avx2(x2, m1, &p1_lo, &p1_hi);
      const __m256i y0 = _mm256_xor_si256(_mm256_xor_si256(p1_hi, x1), k0);
      const __m256i y2 = _mm256_xor_si256(_mm256_xor_si256(p0_hi, x3), k1);
      x0 = y0;
      x1 = p1_lo;
      x2 = y2;
      x3 = p0_lo;
      k0 = _mm256_add_epi32(k0, w0);
      k1 = _mm256_add_epi32(k1, w1);
    }
    // 4x8 transpose back to block-sequential AoS order: 32-bit and 64-bit
    // unpacks give [blk0|blk4].. pairs per half-lane; the cross-lane
    // permute then restores sequential block order.
    const __m256i t0 = _mm256_unpacklo_epi32(x0, x1);
    const __m256i t1 = _mm256_unpacklo_epi32(x2, x3);
    const __m256i t2 = _mm256_unpackhi_epi32(x0, x1);
    const __m256i t3 = _mm256_unpackhi_epi32(x2, x3);
    const __m256i b04 = _mm256_unpacklo_epi64(t0, t1);  // [blk0 | blk4]
    const __m256i b15 = _mm256_unpackhi_epi64(t0, t1);  // [blk1 | blk5]
    const __m256i b26 = _mm256_unpacklo_epi64(t2, t3);  // [blk2 | blk6]
    const __m256i b37 = _mm256_unpackhi_epi64(t2, t3);  // [blk3 | blk7]
    auto* out = reinterpret_cast<__m256i*>(buf + g * kLanes * 4);
    _mm256_store_si256(out + 0, _mm256_permute2x128_si256(b04, b15, 0x20));
    _mm256_store_si256(out + 1, _mm256_permute2x128_si256(b26, b37, 0x20));
    _mm256_store_si256(out + 2, _mm256_permute2x128_si256(b04, b15, 0x31));
    _mm256_store_si256(out + 3, _mm256_permute2x128_si256(b26, b37, 0x31));
  }
}

[[nodiscard]] bool cpu_has_avx2() {
  static const bool kHasAvx2 = __builtin_cpu_supports("avx2") != 0;
  return kHasAvx2;
}

#endif  // RUMOR_PHILOX_AVX2_DISPATCH

}  // namespace

void PhiloxStream::refill() {
#if defined(RUMOR_PHILOX_AVX2_DISPATCH)
  if (cpu_has_avx2()) {
    refill_avx2(buf_.data(), block_, stream_, k0_, k1_);
  } else {
    refill_sse2(buf_.data(), block_, stream_, k0_, k1_);
  }
#elif defined(__SSE2__)
  refill_sse2(buf_.data(), block_, stream_, k0_, k1_);
#else
  refill_scalar(buf_.data(), block_, stream_, k0_, k1_);
#endif
  block_ += kBufWords / 4;
  pos_ = 0;
}

// ---- Geometric gap kernel ----------------------------------------------

namespace {

// One word -> one gap, the reference op sequence: center the 24-bit
// uniform, fast_log2f, scale, clamp. Every SIMD variant below replicates
// these exact IEEE single operations in the same order, so the dispatch is
// invisible in the output.
inline std::uint32_t gap_from_word(std::uint32_t w, float scale,
                                   std::uint32_t cap) {
  const float u = (static_cast<float>(w >> 8) + 0.5f) * 0x1.0p-24f;
  const float gap = fast_log2f(u) * scale;
  return gap >= static_cast<float>(cap) ? cap
                                        : static_cast<std::uint32_t>(gap);
}

#if defined(RUMOR_PHILOX_AVX2_DISPATCH)

// Eight gaps per iteration. Mirrors gap_from_word / fast_log2f operation
// for operation (separate mul and add steps — no FMA contraction; the
// target attribute enables avx2 only, so the compiler cannot fuse them
// either), so the results are bit-identical to the scalar path on every
// input.
__attribute__((target("avx2"))) void fill_gaps_avx2(const std::uint32_t* w,
                                                    std::uint32_t count,
                                                    float scale,
                                                    std::uint32_t cap,
                                                    std::uint32_t* out) {
  const __m256 half = _mm256_set1_ps(0.5f);
  const __m256 two24 = _mm256_set1_ps(0x1.0p-24f);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256 vcap = _mm256_set1_ps(static_cast<float>(cap));
  const __m256i icap = _mm256_set1_epi32(static_cast<int>(cap));
  const __m256i mant_mask = _mm256_set1_epi32(0x007FFFFF);
  const __m256i one_bits = _mm256_set1_epi32(0x3F800000);
  const __m256i exp_bias = _mm256_set1_epi32(127);
  for (std::uint32_t i = 0; i < count; i += 8) {
    const __m256i words =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(w + i));
    const __m256i top24 = _mm256_srli_epi32(words, 8);
    // (float(w >> 8) + 0.5f) * 2^-24 — exact: the 24-bit int converts
    // losslessly and the add/mul match the scalar rounding.
    const __m256 u = _mm256_mul_ps(
        _mm256_add_ps(_mm256_cvtepi32_ps(top24), half), two24);
    const __m256i bits = _mm256_castps_si256(u);
    const __m256i iexp = _mm256_sub_epi32(
        _mm256_and_si256(_mm256_srli_epi32(bits, 23),
                         _mm256_set1_epi32(0xFF)),
        exp_bias);
    const __m256 m = _mm256_castsi256_ps(
        _mm256_or_si256(_mm256_and_si256(bits, mant_mask), one_bits));
    const __m256 t = _mm256_sub_ps(m, one);
    __m256 poly = _mm256_set1_ps(7.395402161e-03f);
    poly = _mm256_add_ps(_mm256_mul_ps(poly, t),
                         _mm256_set1_ps(-4.194500901e-02f));
    poly = _mm256_add_ps(_mm256_mul_ps(poly, t),
                         _mm256_set1_ps(1.118320740e-01f));
    poly = _mm256_add_ps(_mm256_mul_ps(poly, t),
                         _mm256_set1_ps(-1.962389519e-01f));
    poly = _mm256_add_ps(_mm256_mul_ps(poly, t),
                         _mm256_set1_ps(2.752212123e-01f));
    poly = _mm256_add_ps(_mm256_mul_ps(poly, t),
                         _mm256_set1_ps(-3.582990696e-01f));
    poly = _mm256_add_ps(_mm256_mul_ps(poly, t),
                         _mm256_set1_ps(4.806788896e-01f));
    poly = _mm256_add_ps(_mm256_mul_ps(poly, t),
                         _mm256_set1_ps(-7.213395131e-01f));
    poly = _mm256_add_ps(_mm256_mul_ps(poly, t),
                         _mm256_set1_ps(1.442694992e+00f));
    const __m256 log2u = _mm256_add_ps(_mm256_cvtepi32_ps(iexp),
                                       _mm256_mul_ps(t, poly));
    const __m256 gap = _mm256_mul_ps(log2u, vscale);
    const __m256 capped = _mm256_cmp_ps(gap, vcap, _CMP_GE_OQ);
    const __m256i igap = _mm256_cvttps_epi32(gap);
    const __m256i result =
        _mm256_blendv_epi8(igap, icap, _mm256_castps_si256(capped));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), result);
  }
}

#endif  // RUMOR_PHILOX_AVX2_DISPATCH

}  // namespace

void philox_fill_gaps_reference(const std::uint32_t* words,
                                std::uint32_t count, float scale,
                                std::uint32_t cap, std::uint32_t* out) {
  for (std::uint32_t i = 0; i < count; ++i) {
    out[i] = gap_from_word(words[i], scale, cap);
  }
}

void philox_fill_gaps(PhiloxStream& stream, std::uint32_t count, float scale,
                      std::uint32_t cap, std::uint32_t* out) {
  // Whole blocks in, one flat pass out per block; the word sequence is the
  // plain sequential stream order.
  for (std::uint32_t base = 0; base < count;
       base += PhiloxStream::kBufWords) {
    const std::uint32_t* w = stream.next_block();
#if defined(RUMOR_PHILOX_AVX2_DISPATCH)
    if (cpu_has_avx2()) {
      fill_gaps_avx2(w, PhiloxStream::kBufWords, scale, cap, out + base);
      continue;
    }
#endif
    philox_fill_gaps_reference(w, PhiloxStream::kBufWords, scale, cap,
                               out + base);
  }
}

}  // namespace rumor

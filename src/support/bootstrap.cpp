#include "support/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace rumor {

BootstrapCi bootstrap_mean_ci(std::span<const double> samples,
                              double confidence, std::size_t resamples,
                              std::uint64_t seed) {
  RUMOR_REQUIRE(!samples.empty());
  RUMOR_REQUIRE(confidence > 0.0 && confidence < 1.0);
  RUMOR_REQUIRE(resamples >= 2);

  BootstrapCi ci;
  ci.point = mean_of(samples);

  Rng rng(seed);
  std::vector<double> means(resamples);
  const std::size_t n = samples.size();
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += samples[rng.below(n)];
    means[r] = sum / static_cast<double>(n);
  }
  std::sort(means.begin(), means.end());
  const double alpha = 1.0 - confidence;
  ci.lo = quantile_sorted(means, alpha / 2.0);
  ci.hi = quantile_sorted(means, 1.0 - alpha / 2.0);
  return ci;
}

}  // namespace rumor

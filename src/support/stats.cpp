#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/assert.hpp"

namespace rumor {

double mean_of(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double v : samples) sum += v;
  return sum / static_cast<double>(samples.size());
}

double stddev_of(std::span<const double> samples) {
  if (samples.size() < 2) return 0.0;
  const double m = mean_of(samples);
  double ss = 0.0;
  for (double v : samples) ss += (v - m) * (v - m);
  return std::sqrt(ss / static_cast<double>(samples.size() - 1));
}

double quantile_sorted(std::span<const double> sorted, double q) {
  RUMOR_REQUIRE(!sorted.empty());
  RUMOR_REQUIRE(q >= 0.0 && q <= 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary Summary::of(std::span<const double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  s.mean = mean_of(sorted);
  s.stddev = stddev_of(sorted);
  s.stderr_mean = s.stddev / std::sqrt(static_cast<double>(s.count));
  s.min = sorted.front();
  s.max = sorted.back();
  s.q25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.q75 = quantile_sorted(sorted, 0.75);
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  RUMOR_REQUIRE(hi > lo);
  RUMOR_REQUIRE(bins > 0);
}

void Histogram::add(double value) {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((value - lo_) / width);
  bin = std::min(bin, counts_.size() - 1);  // guard FP edge at hi_
  ++counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const {
  return bin_low(bin + 1);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t max_count = 1;
  for (std::size_t c : counts_) max_count = std::max(max_count, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[b]) / static_cast<double>(max_count) *
        static_cast<double>(width));
    char buf[64];
    std::snprintf(buf, sizeof buf, "[%10.3g, %10.3g) %8zu |", bin_low(b),
                  bin_high(b), counts_[b]);
    out << buf << std::string(bar, '#') << '\n';
  }
  return out.str();
}

}  // namespace rumor

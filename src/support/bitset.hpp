// DynamicBitset: a fixed-capacity bitset sized at runtime.
//
// Used for informed-vertex / informed-agent sets in the protocol simulators
// where std::vector<bool> is too slow to scan and std::bitset needs a
// compile-time size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace rumor {

class DynamicBitset {
 public:
  DynamicBitset() = default;

  explicit DynamicBitset(std::size_t size, bool value = false)
      : size_(size), words_((size + 63) / 64, value ? ~0ULL : 0ULL) {
    trim();
  }

  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] bool test(std::size_t i) const {
    RUMOR_CHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i) {
    RUMOR_CHECK(i < size_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }

  void reset(std::size_t i) {
    RUMOR_CHECK(i < size_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  void fill() {
    for (auto& w : words_) w = ~0ULL;
    trim();
  }

  // Number of set bits.
  [[nodiscard]] std::size_t count() const;

  // Index of the first clear bit, or size() if all bits are set.
  [[nodiscard]] std::size_t find_first_unset() const;

  [[nodiscard]] bool all() const { return count() == size_; }
  [[nodiscard]] bool none() const { return count() == 0; }

  // True iff every set bit of this is also set in other (subset relation).
  // Sizes must match.
  [[nodiscard]] bool is_subset_of(const DynamicBitset& other) const;

  [[nodiscard]] bool operator==(const DynamicBitset& other) const = default;

 private:
  void trim() {
    if (size_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (1ULL << (size_ % 64)) - 1;
    }
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace rumor

// Minimal CSV emission for experiment artifacts.
//
// Quoting follows RFC 4180: fields containing comma, quote, or newline are
// quoted, embedded quotes doubled.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace rumor {

class CsvWriter {
 public:
  // Writes to an externally owned stream; the header row is emitted
  // immediately. Every subsequent row must have exactly header.size() cells.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  void row(const std::vector<std::string>& cells);

  [[nodiscard]] std::size_t columns() const { return columns_; }
  [[nodiscard]] std::size_t rows_written() const { return rows_; }

  // Escapes a single field per RFC 4180.
  [[nodiscard]] static std::string escape(std::string_view field);

 private:
  std::ostream& out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace rumor

// Wall-clock timing helper for bench harness progress lines.
#pragma once

#include <chrono>

namespace rumor {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace rumor

// Counter-based RNG substrate: Philox4x32-10 (Salmon et al., SC'11), the
// addressable companion to the serial xoshiro stream in support/rng.hpp.
//
// A counter-based generator is a pure function: block = philox(key,
// counter). There is no hidden serial state, so any draw of a trial is
// computable from its logical coordinate alone — philox_draw(master_seed,
// trial, round, slot) — which is what makes batched draw generation,
// frontier-sharded execution, and multi-node reproduction possible: two
// workers that agree on coordinates agree on randomness without ever
// exchanging generator state.
//
// Two consumption shapes:
//   * philox_draw(master, trial, round, slot) — the stateless addressable
//     form (constexpr; pinned cross-platform in
//     tests/test_support_philox.cpp);
//   * PhiloxStream — a buffered sequential view for hot loops: key =
//     (seed, stream id), counter = running block index. Refills generate
//     four independent blocks per inner iteration in SoA form, so the
//     compiler can vectorize the 32x32->64 multiplies across lanes
//     (pmuludq/vpmuludq where available; the same loop is the scalar
//     fallback elsewhere).
//
// The tp=1 golden paths never touch this module: simulators keep drawing
// their trajectories from Rng (xoshiro), byte-identically to before.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "support/rng.hpp"

namespace rumor {

inline constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
inline constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
inline constexpr std::uint32_t kPhiloxW0 = 0x9E3779B9u;  // golden ratio
inline constexpr std::uint32_t kPhiloxW1 = 0xBB67AE85u;  // sqrt(3) - 1

// One Philox4x32-10 block: 4 counter words + 2 key words -> 4 output words.
// Matches the Random123 reference bit-for-bit (known-answer vectors are
// static_asserted in philox.cpp and pinned in the tests).
[[nodiscard]] constexpr std::array<std::uint32_t, 4> philox4x32(
    std::array<std::uint32_t, 4> ctr, std::uint32_t k0, std::uint32_t k1) {
  for (int round = 0; round < 10; ++round) {
    const std::uint64_t p0 = std::uint64_t{kPhiloxM0} * ctr[0];
    const std::uint64_t p1 = std::uint64_t{kPhiloxM1} * ctr[2];
    ctr = {static_cast<std::uint32_t>(p1 >> 32) ^ ctr[1] ^ k0,
           static_cast<std::uint32_t>(p1),
           static_cast<std::uint32_t>(p0 >> 32) ^ ctr[3] ^ k1,
           static_cast<std::uint32_t>(p0)};
    k0 += kPhiloxW0;
    k1 += kPhiloxW1;
  }
  return ctr;
}

// 64-bit key from a 64-bit seed, one splitmix step away so that related
// seeds (derive_seed(master, i) for consecutive i) land on unrelated keys.
[[nodiscard]] constexpr std::uint64_t philox_key(std::uint64_t seed) {
  std::uint64_t state = seed;
  return splitmix64(state);
}

// The addressable draw: one 64-bit uniform for the logical coordinate
// (master_seed, trial, round, slot). Key <- derive_seed(master, trial)
// (the same per-trial seed derivation every runner uses), counter <-
// (slot, round). Pure and constexpr: no state, no ordering requirements.
[[nodiscard]] constexpr std::uint64_t philox_draw(std::uint64_t master_seed,
                                                  std::uint64_t trial,
                                                  std::uint64_t round,
                                                  std::uint64_t slot) {
  const std::uint64_t key = philox_key(derive_seed(master_seed, trial));
  const auto out = philox4x32(
      {static_cast<std::uint32_t>(slot),
       static_cast<std::uint32_t>(slot >> 32),
       static_cast<std::uint32_t>(round),
       static_cast<std::uint32_t>(round >> 32)},
      static_cast<std::uint32_t>(key), static_cast<std::uint32_t>(key >> 32));
  return out[0] | (std::uint64_t{out[1]} << 32);
}

// Deterministic base-2 log for the geometric skip-sampling gap computation:
// plain IEEE float arithmetic (exponent extraction + a degree-9 polynomial
// for the mantissa), no libm call, so every platform that runs the same
// binary semantics computes the same gaps. Division-free on purpose: the
// hot consumer is the lane-parallel gap kernel, where a Horner chain of
// mul/add pipelines several times better than divps. The polynomial is a
// Chebyshev interpolant of log2(1+t)/t on t in [0, 1) (2.6e-8 in exact
// arithmetic); exhaustive evaluation over every mantissa puts the float
// implementation at |error| < 1.7e-7 over (0, inf) normals — far below
// the 2^-24 resolution of the uniforms it is applied to. t*P(t) is
// exactly 0 at t = 0, so powers of two stay exact. Requires v > 0 and
// finite.
[[nodiscard]] inline float fast_log2f(float v) {
  const auto bits = std::bit_cast<std::uint32_t>(v);
  const int exponent = static_cast<int>((bits >> 23) & 0xFFu) - 127;
  const float m =
      std::bit_cast<float>((bits & 0x007FFFFFu) | 0x3F800000u);  // [1, 2)
  const float t = m - 1.0f;
  float p = 7.395402161e-03f;
  p = p * t + -4.194500901e-02f;
  p = p * t + 1.118320740e-01f;
  p = p * t + -1.962389519e-01f;
  p = p * t + 2.752212123e-01f;
  p = p * t + -3.582990696e-01f;
  p = p * t + 4.806788896e-01f;
  p = p * t + -7.213395131e-01f;
  p = p * t + 1.442694992e+00f;  // log2(1+t)/t, Chebyshev on [0, 1)
  return static_cast<float>(exponent) + t * p;
}

// Buffered sequential view over one Philox stream: key = (seed, stream id),
// counter = running block index. Distinct stream ids on the same seed are
// independent streams (disjoint counter planes); the block index never
// wraps in any realistic run (2^64 blocks).
class PhiloxStream {
 public:
  PhiloxStream() = default;
  PhiloxStream(std::uint64_t seed, std::uint32_t stream) {
    reseed(seed, stream);
  }

  void reseed(std::uint64_t seed, std::uint32_t stream) {
    const std::uint64_t key = philox_key(seed);
    k0_ = static_cast<std::uint32_t>(key);
    k1_ = static_cast<std::uint32_t>(key >> 32);
    stream_ = stream;
    block_ = 0;
    pos_ = kBufWords;  // force refill on first draw
  }

  [[nodiscard]] std::uint32_t next_u32() {
    if (pos_ == kBufWords) refill();
    return buf_[pos_++];
  }

  [[nodiscard]] std::uint64_t next_u64() {
    const std::uint64_t lo = next_u32();
    return lo | (std::uint64_t{next_u32()} << 32);
  }

  // Word-source call form, so generic draw helpers (walk/step_kernel) can
  // consume a Philox stream exactly like an Rng.
  [[nodiscard]] std::uint64_t operator()() { return next_u64(); }

  // Uniform in [0, 1) with 24-bit resolution — the natural grain for
  // comparisons against float probability fields.
  [[nodiscard]] float next_unit_float() {
    return static_cast<float>(next_u32() >> 8) * 0x1.0p-24f;
  }

  // Advances to the next block boundary and exposes the freshly generated
  // kBufWords-word buffer — for consumers that digest draws in whole-buffer
  // batches (the geometric gap sampler) and skip the per-word buffered
  // reads. Any partially consumed words are discarded; the pointer is valid
  // until the next draw.
  [[nodiscard]] const std::uint32_t* next_block() {
    refill();
    pos_ = kBufWords;  // the caller owns this whole block
    return buf_.data();
  }

  static constexpr std::size_t kBufWords = 64;  // 16 blocks per refill

 private:
  void refill();

  alignas(64) std::array<std::uint32_t, kBufWords> buf_;
  std::uint32_t pos_ = kBufWords;
  std::uint64_t block_ = 0;
  std::uint32_t stream_ = 0;
  std::uint32_t k0_ = 0;
  std::uint32_t k1_ = 0;
};

// ---- Sharded-kernel draw plane -------------------------------------------
//
// The frontier-sharded round kernels need every random decision of a round
// addressable by the LOGICAL slot it belongs to (walker index, compacted
// frontier position, ...), never by execution order: a shard boundary or a
// different worker count must not shift a single draw. Each slot therefore
// owns a private chain of Philox blocks:
//
//   key     = philox_key(derive_seed(trial_seed, kShardDrawSalt))
//   counter = { slot, (seq << 8) | phase, round_lo, round_hi }
//
// The dedicated salt keys this plane off every other Philox consumer (the
// skip calendar, engine=counter walks), so counters may overlap freely with
// theirs. `phase` separates draw sites within one round (a pusher and a
// puller can share slot numbers); `seq` advances when a slot consumes more
// than one block — rejection sampling may draw any number of words, and the
// chain keeps those continuation words addressable by slot alone. 2^24
// blocks per (slot, phase) is ~6e7 words: beyond any rejection loop.

inline constexpr std::uint64_t kShardDrawSalt = 0x51AED2A9C0DE5A17ULL;

inline constexpr std::uint32_t kShardPhaseWalk = 0;         // walker steps
inline constexpr std::uint32_t kShardPhasePush = 1;         // push callers
inline constexpr std::uint32_t kShardPhasePull = 2;         // pull callers
inline constexpr std::uint32_t kShardPhaseAgentInform = 3;  // agent -> vertex
inline constexpr std::uint32_t kShardPhaseAgentCatch = 4;   // vertex -> agent
inline constexpr std::uint32_t kShardPhaseMeet = 5;         // agent meetings

// One (trial, round)'s worth of the plane: the precomputed key plus the
// round words every SlotDraws of that round shares. Cheap to copy into
// per-shard closures.
struct ShardPlane {
  std::uint32_t k0 = 0;
  std::uint32_t k1 = 0;
  std::uint32_t round_lo = 0;
  std::uint32_t round_hi = 0;

  ShardPlane() = default;
  ShardPlane(std::uint64_t trial_seed, std::uint64_t round) {
    const std::uint64_t key =
        philox_key(derive_seed(trial_seed, kShardDrawSalt));
    k0 = static_cast<std::uint32_t>(key);
    k1 = static_cast<std::uint32_t>(key >> 32);
    round_lo = static_cast<std::uint32_t>(round);
    round_hi = static_cast<std::uint32_t>(round >> 32);
  }
};

// The per-slot word source: drop-in for the WordSource shape the draw
// helpers consume (next_u32/next_u64/operator()/unit floats). Constructed
// fresh per (phase, slot) — a handful of registers, no heap.
class SlotDraws {
 public:
  SlotDraws(const ShardPlane& plane, std::uint32_t phase, std::uint32_t slot)
      : plane_(plane), slot_(slot), word1_(phase) {}

  [[nodiscard]] std::uint32_t next_u32() {
    if (pos_ == 4) refill();
    return buf_[pos_++];
  }

  [[nodiscard]] std::uint64_t next_u64() {
    const std::uint64_t lo = next_u32();
    return lo | (std::uint64_t{next_u32()} << 32);
  }

  [[nodiscard]] std::uint64_t operator()() { return next_u64(); }

  [[nodiscard]] float next_unit_float() {
    return static_cast<float>(next_u32() >> 8) * 0x1.0p-24f;
  }

  // 53-bit grain for loss-probability comparisons (doubles in the specs).
  [[nodiscard]] double next_unit_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  void refill() {
    buf_ = philox4x32({slot_, word1_, plane_.round_lo, plane_.round_hi},
                      plane_.k0, plane_.k1);
    word1_ += 256;  // seq lives in bits 8..31; phase keeps bits 0..7
    pos_ = 0;
  }

  const ShardPlane& plane_;
  std::array<std::uint32_t, 4> buf_{};
  std::uint32_t pos_ = 4;  // refill on first draw
  std::uint32_t slot_;
  std::uint32_t word1_;
};

// Batch geometric-gap kernel: draws `count` words from `stream` (whole
// blocks; count must be a multiple of PhiloxStream::kBufWords) and writes
// floor(log2(u) * scale) gaps, clamped to `cap`, where u is the centered
// 24-bit uniform ((w >> 8) + 0.5) * 2^-24. `scale` is 1 / log2(1 - p) for
// a geometric with success probability p. Runtime-dispatches to an AVX2
// lane-parallel variant when available; every path replicates the exact
// scalar IEEE operation sequence (fast_log2f included), so the output is
// bit-identical across machines.
void philox_fill_gaps(PhiloxStream& stream, std::uint32_t count, float scale,
                      std::uint32_t cap, std::uint32_t* out);

// The always-scalar reference for the kernel above, operating on an
// already-drawn word buffer — exposed so tests can pin the dispatched
// path against it on whatever ISA the host offers.
void philox_fill_gaps_reference(const std::uint32_t* words,
                                std::uint32_t count, float scale,
                                std::uint32_t cap, std::uint32_t* out);

}  // namespace rumor

// Percentile bootstrap confidence intervals for the mean.
//
// Broadcast-time distributions are skewed (coupon-collector tails), so we
// report bootstrap CIs instead of normal-theory intervals in the experiment
// tables.
#pragma once

#include <cstdint>
#include <span>

namespace rumor {

struct BootstrapCi {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;  // sample mean
};

// Percentile bootstrap CI for the mean at the given confidence level.
// `resamples` resampled means are drawn with the given seed; deterministic.
[[nodiscard]] BootstrapCi bootstrap_mean_ci(std::span<const double> samples,
                                            double confidence = 0.95,
                                            std::size_t resamples = 1000,
                                            std::uint64_t seed = 0x9E3779B9ULL);

}  // namespace rumor

// Text substrate for the declarative spec grammar: `name(key=value,...)`
// calls, key=value option lists, and value formatting that round-trips
// exactly through parse (the invariant the scenario API is built on:
// parse(x.name()) == x).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rumor::spec_text {

struct KeyValue {
  std::string key;
  std::string value;
};

// A parsed `head(key=value,...)` call; bare `head` has no arguments.
struct Call {
  std::string head;
  std::vector<KeyValue> args;
};

// Parses "head" or "head(k=v,k=v,...)" (whitespace around tokens allowed).
// Returns nullopt and fills *error (when non-null) on malformed input.
[[nodiscard]] std::optional<Call> parse_call(std::string_view text,
                                             std::string* error = nullptr);

// Collects key=value pairs and renders them as "k=v,k=v".
class KeyValWriter {
 public:
  void add(std::string_view key, std::string_view value) {
    pairs_.push_back({std::string(key), std::string(value)});
  }
  void add(std::string_view key, double value);
  void add(std::string_view key, std::uint64_t value) {
    add(key, std::string_view(std::to_string(value)));
  }

  [[nodiscard]] bool empty() const { return pairs_.empty(); }
  [[nodiscard]] std::string str() const;

 private:
  std::vector<KeyValue> pairs_;
};

// Shortest decimal representation that strtod parses back to exactly
// `value` — canonical spec text stays readable ("0.1", not
// "0.10000000000000001") without losing round-trip fidelity.
[[nodiscard]] std::string fmt_double(double value);

// Strict scalar parsers: the full token must be consumed.
[[nodiscard]] std::optional<double> parse_double(std::string_view text);
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view text);
// "on"/"off"/"true"/"false"/"1"/"0".
[[nodiscard]] std::optional<bool> parse_bool(std::string_view text);

// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text);

}  // namespace rumor::spec_text

// Text substrate for the declarative spec grammar: `name(key=value,...)`
// calls, key=value option lists, and value formatting that round-trips
// exactly through parse (the invariant the scenario API is built on:
// parse(x.name()) == x).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rumor::spec_text {

struct KeyValue {
  std::string key;
  std::string value;
};

// A parsed `head(key=value,...)` call; bare `head` has no arguments.
struct Call {
  std::string head;
  std::vector<KeyValue> args;
};

// Parses "head" or "head(k=v,k=v,...)" (whitespace around tokens allowed).
// Returns nullopt and fills *error (when non-null) on malformed input.
[[nodiscard]] std::optional<Call> parse_call(std::string_view text,
                                             std::string* error = nullptr);

// Collects key=value pairs and renders them as "k=v,k=v".
class KeyValWriter {
 public:
  void add(std::string_view key, std::string_view value) {
    pairs_.push_back({std::string(key), std::string(value)});
  }
  void add(std::string_view key, double value);
  void add(std::string_view key, std::uint64_t value) {
    add(key, std::string_view(std::to_string(value)));
  }

  [[nodiscard]] bool empty() const { return pairs_.empty(); }
  [[nodiscard]] std::string str() const;

 private:
  std::vector<KeyValue> pairs_;
};

// Shortest decimal representation that strtod parses back to exactly
// `value` — canonical spec text stays readable ("0.1", not
// "0.10000000000000001") without losing round-trip fidelity.
[[nodiscard]] std::string fmt_double(double value);

// Strict scalar parsers: the full token must be consumed.
[[nodiscard]] std::optional<double> parse_double(std::string_view text);
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view text);
// "on"/"off"/"true"/"false"/"1"/"0".
[[nodiscard]] std::optional<bool> parse_bool(std::string_view text);

// Trims ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text);

// Position of the first comma outside any {...} run (npos if none):
// top-level commas separate call arguments, braced commas belong to a
// sweep value list. Shared by parse_call and the sweep-expansion slicer
// so the tokenization rule cannot drift between them.
[[nodiscard]] std::size_t find_top_level_comma(std::string_view text);

// ---- Sweep values ------------------------------------------------------
//
// Any numeric spec value may be a *sweep*: a range or an explicit list
// that expands one spec line into a series of concrete lines.
//
//   leaves=2k..32k            geometric, factor 2 (2048 4096 ... 32768)
//   leaves=2k..32k:factor=4   geometric, factor 4 (2048 8192 32768)
//   n=100..500:step=200       arithmetic (100 300 500)
//   alpha={0.5,1,2}           explicit list (any value text, not only
//                             integers; items re-parse downstream)
//
// Range endpoints are unsigned integers with an optional k (x1024) or m
// (x1048576) suffix. A range emits every point <= hi; hi itself appears
// only when the progression lands on it exactly.

// True when `text` uses sweep syntax (a `..` range or a {...} list) and
// must go through expand_sweep_value before scalar parsing.
[[nodiscard]] bool is_sweep_value(std::string_view text);

// Expands a sweep value into its concrete value strings (ranges render as
// plain decimal). Rejects empty lists/items, inverted or overflowing
// ranges, factor < 2, step = 0, and ranges of more than kMaxSweepPoints
// points. nullopt + *error on rejection.
inline constexpr std::size_t kMaxSweepPoints = 1024;
[[nodiscard]] std::optional<std::vector<std::string>> expand_sweep_value(
    std::string_view text, std::string* error = nullptr);

// parse_u64 plus the k/m magnitude suffixes ("2k" -> 2048).
[[nodiscard]] std::optional<std::uint64_t> parse_magnitude(
    std::string_view text);

// Compact magnitude rendering for derived sweep labels: 2048 -> "2k",
// 3145728 -> "3m", 100 -> "100". parse_magnitude(fmt_magnitude(v)) == v.
[[nodiscard]] std::string fmt_magnitude(std::uint64_t value);

}  // namespace rumor::spec_text

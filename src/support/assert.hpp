// Contract-checking macros. Always on: the simulators in this library are
// used as experimental evidence, so silently wrong states are worse than an
// abort. Checks on hot paths are cheap comparisons only.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rumor::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s failed: %s (%s:%d)\n", kind, expr, file, line);
  std::abort();
}

}  // namespace rumor::detail

// Precondition on public API arguments.
#define RUMOR_REQUIRE(expr)                                                 \
  ((expr) ? static_cast<void>(0)                                            \
          : ::rumor::detail::contract_failure("precondition", #expr,        \
                                              __FILE__, __LINE__))

// Internal invariant.
#define RUMOR_CHECK(expr)                                                   \
  ((expr) ? static_cast<void>(0)                                            \
          : ::rumor::detail::contract_failure("invariant", #expr, __FILE__, \
                                              __LINE__))

#include "support/thread_pool.hpp"

#include <atomic>

#include "support/assert.hpp"

namespace rumor {

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || threads_.size() == 1) {  // avoid queueing overhead
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  // Work is claimed via a shared atomic index; one queued shard per worker.
  // parallel_for blocks until every shard finishes, so capturing locals by
  // reference in the shard closure is safe. The completion count is
  // decremented under done_mutex so the waiter cannot observe zero (and
  // destroy the condition variable) while a worker still holds it.
  std::atomic<std::size_t> next{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  const std::size_t shards = std::min(threads_.size(), count);
  std::size_t remaining = shards;

  auto shard_fn = [&next, &remaining, count, &fn, &done_mutex, &done_cv] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) break;
      fn(i);
    }
    std::lock_guard lock(done_mutex);
    if (--remaining == 0) done_cv.notify_all();
  };

  {
    std::lock_guard lock(mutex_);
    RUMOR_CHECK(!stopping_);
    for (std::size_t s = 0; s < shards; ++s) tasks_.push(shard_fn);
  }
  cv_.notify_all();

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace rumor
